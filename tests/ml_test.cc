#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ml/correlation.h"
#include "src/ml/feature.h"
#include "src/ml/her.h"
#include "src/ml/library.h"
#include "src/ml/linear.h"
#include "src/ml/lsh.h"
#include "src/ml/ranking.h"
#include "src/ml/tree.h"
#include "src/workload/ecommerce.h"

namespace rock::ml {
namespace {

// ---------- Features ----------

TEST(PairFeaturizerTest, LayoutAndExactMatch) {
  PairFeaturizer featurizer(2);
  EXPECT_EQ(featurizer.dimension(), 12);
  std::vector<Value> a = {Value::String("apple"), Value::Int(5)};
  std::vector<Value> b = {Value::String("apple"), Value::Int(10)};
  FeatureVector f = featurizer.Extract(a, b);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // exact match on attr 0
  EXPECT_DOUBLE_EQ(f[6], 0.0);  // not exact on attr 1
  EXPECT_GT(f[11], 0.0);        // numeric closeness populated
}

TEST(PairFeaturizerTest, NullHandling) {
  PairFeaturizer featurizer(1);
  FeatureVector both_null =
      featurizer.Extract({Value::Null()}, {Value::Null()});
  EXPECT_DOUBLE_EQ(both_null[1], 1.0);
  FeatureVector one_null =
      featurizer.Extract({Value::String("x")}, {Value::Null()});
  for (double v : one_null) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(HashedTextFeaturizerTest, SimilarTextsShareBuckets) {
  HashedTextFeaturizer featurizer(128);
  FeatureVector a = featurizer.ExtractNormalized("Beijing West Road");
  FeatureVector b = featurizer.ExtractNormalized("Beijing West Rd");
  FeatureVector c = featurizer.ExtractNormalized("quantum flux");
  EXPECT_GT(Cosine(a, b), Cosine(a, c));
  EXPECT_NEAR(Dot(a, a), 1.0, 1e-9);  // normalized
}

TEST(FeatureMathTest, CosineEdgeCases) {
  EXPECT_DOUBLE_EQ(Cosine({0, 0}, {1, 1}), 0.0);
  EXPECT_NEAR(Cosine({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(Cosine({1, 0}, {0, 1}), 0.0, 1e-12);
}

// ---------- Logistic regression ----------

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  Rng rng(3);
  std::vector<FeatureVector> x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    double a = rng.NextDouble() * 2 - 1;
    double b = rng.NextDouble() * 2 - 1;
    x.push_back({a, b});
    y.push_back(a + b > 0 ? 1 : 0);
  }
  LogisticRegression model;
  model.Train(x, y);
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    correct += model.Predict(x[i]) == (y[i] == 1);
  }
  EXPECT_GT(correct, 380);
}

TEST(LogisticRegressionTest, UntrainedScoresHalf) {
  LogisticRegression model;
  EXPECT_FALSE(model.trained());
  EXPECT_DOUBLE_EQ(model.Score({1.0, 2.0}), 0.5);
}

// ---------- LASSO ----------

TEST(LassoTest, RecoversSparseLinearModel) {
  Rng rng(7);
  std::vector<FeatureVector> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    FeatureVector row = {rng.NextDouble(), rng.NextDouble(),
                         rng.NextDouble(), rng.NextDouble()};
    x.push_back(row);
    y.push_back(3.0 * row[1] - 2.0 * row[3] + 0.5);
  }
  Lasso::Options options;
  options.lambda = 0.001;
  Lasso lasso(options);
  lasso.Train(x, y);
  EXPECT_NEAR(lasso.weights()[1], 3.0, 0.1);
  EXPECT_NEAR(lasso.weights()[3], -2.0, 0.1);
  EXPECT_NEAR(lasso.bias(), 0.5, 0.1);
  // Irrelevant features shrink to (near) zero.
  EXPECT_LT(std::abs(lasso.weights()[0]), 0.05);
  EXPECT_LT(std::abs(lasso.weights()[2]), 0.05);
}

TEST(LassoTest, StrongPenaltyZeroesEverything) {
  std::vector<FeatureVector> x = {{1}, {2}, {3}, {4}};
  std::vector<double> y = {1, 2, 3, 4};
  Lasso::Options options;
  options.lambda = 100.0;
  Lasso lasso(options);
  lasso.Train(x, y);
  EXPECT_TRUE(lasso.SelectedFeatures().empty());
  // Prediction collapses to the mean.
  EXPECT_NEAR(lasso.Predict({2.5}), 2.5, 1e-6);
}

// ---------- Trees ----------

TEST(DecisionTreeTest, FitsStepFunction) {
  std::vector<FeatureVector> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 50 ? 1.0 : 5.0);
  }
  DecisionTree tree;
  tree.Train(x, y);
  EXPECT_NEAR(tree.Predict({10}), 1.0, 1e-9);
  EXPECT_NEAR(tree.Predict({90}), 5.0, 1e-9);
  EXPECT_GT(tree.feature_gain()[0], 0.0);
}

TEST(GbdtTest, LearnsAdditiveFunction) {
  Rng rng(13);
  std::vector<FeatureVector> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    double a = rng.NextDouble() * 10;
    double b = rng.NextDouble() * 10;
    x.push_back({a, b});
    y.push_back(2 * a + 7 * b);
  }
  GradientBoostedTrees gbt;
  gbt.Train(x, y);
  double err = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    err += std::abs(gbt.Predict(x[i]) - y[i]);
  }
  EXPECT_LT(err / static_cast<double>(x.size()), 6.0);
  // b contributes more variance, so it should dominate importance.
  auto importance = gbt.FeatureImportance();
  EXPECT_GT(importance[1], importance[0]);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
}

TEST(GbdtTest, UntrainedPredictsZero) {
  GradientBoostedTrees gbt;
  EXPECT_FALSE(gbt.trained());
  EXPECT_DOUBLE_EQ(gbt.Predict({1, 2}), 0.0);
}

// ---------- MinHash / LSH ----------

TEST(MinHashTest, SimilarityTracksJaccard) {
  MinHash minhash(128);
  std::vector<std::string> a = {"a", "b", "c", "d"};
  std::vector<std::string> b = {"a", "b", "c", "e"};   // jaccard 0.6
  std::vector<std::string> c = {"x", "y", "z", "w"};   // jaccard 0
  auto sa = minhash.Signature(a);
  auto sb = minhash.Signature(b);
  auto sc = minhash.Signature(c);
  EXPECT_NEAR(MinHash::Similarity(sa, sb), 0.6, 0.15);
  EXPECT_LT(MinHash::Similarity(sa, sc), 0.1);
  EXPECT_DOUBLE_EQ(MinHash::Similarity(sa, sa), 1.0);
}

TEST(LshBlockerTest, NearDuplicatesBecomeCandidates) {
  LshBlocker blocker;
  blocker.Add(1, {"james", "smith", "beijing"});
  blocker.Add(2, {"james", "smith", "beijin"});
  blocker.Add(3, {"unrelated", "tokens", "here"});
  auto candidates = blocker.Candidates({"james", "smith", "beijing"});
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 1),
            candidates.end());
  // The unrelated record should not surface.
  EXPECT_EQ(std::find(candidates.begin(), candidates.end(), 3),
            candidates.end());
}

TEST(LshBlockerTest, CandidatePairsAreOrderedAndDeduped) {
  LshBlocker blocker;
  for (int64_t id = 0; id < 6; ++id) {
    blocker.Add(id, {"shared", "tokens", "block"});
  }
  auto pairs = blocker.CandidatePairs();
  EXPECT_EQ(pairs.size(), 15u);  // C(6,2)
  for (const auto& [a, b] : pairs) EXPECT_LT(a, b);
}

TEST(SimHashTest, SimilarVectorsHaveCloseHashes) {
  HashedTextFeaturizer featurizer(128);
  uint64_t a = SimHash64(featurizer.Extract("Beijing West Road"));
  uint64_t b = SimHash64(featurizer.Extract("Beijing West Rd"));
  uint64_t c = SimHash64(featurizer.Extract("totally different"));
  EXPECT_LT(__builtin_popcountll(a ^ b), __builtin_popcountll(a ^ c));
}

// ---------- Pair classifiers + library ----------

TEST(SimilarityClassifierTest, TypoPairsMatchUnrelatedDoNot) {
  SimilarityClassifier model(0.8);
  EXPECT_TRUE(model.Predict({Value::String("James Smith 42")},
                            {Value::String("Jmaes Smith 42")}));
  EXPECT_FALSE(model.Predict({Value::String("James Smith 42")},
                             {Value::String("Elena Rossi 7")}));
}

TEST(LogisticPairClassifierTest, TrainsOnLabeledPairs) {
  Rng rng(5);
  std::vector<std::pair<std::vector<Value>, std::vector<Value>>> pairs;
  std::vector<int> labels;
  const char* names[] = {"alpha corp", "beta ltd", "gamma inc",
                         "delta group"};
  for (int i = 0; i < 200; ++i) {
    std::string base = names[rng.NextBounded(4)];
    if (rng.NextBernoulli(0.5)) {
      std::string variant = base;
      variant[1 + rng.NextBounded(3)] = 'z';
      pairs.push_back({{Value::String(base)}, {Value::String(variant)}});
      labels.push_back(1);
    } else {
      pairs.push_back({{Value::String(base)},
                       {Value::String(names[rng.NextBounded(4)] +
                                      std::string(" other"))}});
      labels.push_back(0);
    }
  }
  LogisticPairClassifier model(1);
  ASSERT_TRUE(model.Train(pairs, labels).ok());
  EXPECT_TRUE(model.trained());
  EXPECT_TRUE(model.Predict({Value::String("alpha corp")},
                            {Value::String("alpha zorp")}));
  EXPECT_FALSE(model.Predict({Value::String("alpha corp")},
                             {Value::String("delta group other")}));
}

TEST(MlLibraryTest, RegistryRoundTrips) {
  MlLibrary library;
  EXPECT_EQ(library.FindPair("MER"), nullptr);
  library.RegisterPair("MER", std::make_shared<SimilarityClassifier>());
  EXPECT_NE(library.FindPair("MER"), nullptr);
  EXPECT_EQ(library.FindRanker("Mrank"), nullptr);
  EXPECT_EQ(library.her(), nullptr);
  EXPECT_EQ(library.PairModelNames(), std::vector<std::string>{"MER"});
}

// ---------- Ranking model ----------

Schema VersionSchema() {
  return Schema("V", {{"status", ValueType::kString},
                      {"points", ValueType::kDouble}});
}

Tuple VersionTuple(int64_t eid, const char* status, double points,
                   int64_t ts = kNoTimestamp) {
  Tuple t;
  t.eid = eid;
  t.values = {Value::String(status), Value::Double(points)};
  t.timestamps = {ts, kNoTimestamp};
  return t;
}

TEST(RankingModelTest, TimestampsDominate) {
  RankingModel model(VersionSchema(), 0);
  Tuple older = VersionTuple(1, "standard", 10, 100);
  Tuple newer = VersionTuple(1, "premium", 20, 200);
  EXPECT_DOUBLE_EQ(model.Confidence(older, newer, 0, false), 1.0);
  EXPECT_DOUBLE_EQ(model.Confidence(newer, older, 0, false), 0.0);
  EXPECT_DOUBLE_EQ(model.Confidence(older, newer, 0, true), 1.0);
}

TEST(RankingModelTest, CreatorCriticLearnsMonotoneSignal) {
  // Entities have two versions: the one with more points is newer, and
  // its status text is "premium" vs "standard". The critic knows the
  // monotone attribute; the creator generalizes to unstamped pairs.
  Relation relation(VersionSchema());
  Rng rng(21);
  for (int e = 0; e < 60; ++e) {
    double base = 10 + static_cast<double>(rng.NextBounded(100));
    ASSERT_TRUE(relation
                    .Append(VersionTuple(e, "standard", base))
                    .ok());
    ASSERT_TRUE(relation
                    .Append(VersionTuple(e, "premium", base * 2))
                    .ok());
  }
  std::vector<CurrencyConstraint> constraints;
  constraints.push_back(
      {"points-monotone",
       [](const Schema&, const Tuple& t1, const Tuple& t2, int) {
         if (t1.eid != t2.eid) return 0;
         int cmp = t1.values[1].Compare(t2.values[1]);
         return cmp == 0 ? 0 : (cmp < 0 ? 1 : -1);
       }});
  RankingModel model(VersionSchema(), 0);
  model.TrainCreatorCritic(relation, constraints);

  // Unseen pair with no timestamps and an unseen entity: the learned
  // embedding/numeric signal must still order standard ⪯ premium.
  Tuple standard = VersionTuple(999, "standard", 40);
  Tuple premium = VersionTuple(999, "premium", 80);
  EXPECT_GT(model.Confidence(standard, premium, 0, false), 0.5);
  EXPECT_LT(model.Confidence(premium, standard, 0, false), 0.5);
}

TEST(RankingModelTest, StrictOnEqualValuesIsFalse) {
  RankingModel model(VersionSchema(), 0);
  Tuple a = VersionTuple(1, "same", 1);
  Tuple b = VersionTuple(2, "same", 1);
  EXPECT_DOUBLE_EQ(model.Confidence(a, b, 0, true), 0.0);
}

// ---------- Correlation models ----------

TEST(CooccurrenceModelTest, StrengthFollowsConditionalFrequency) {
  Relation relation(Schema("T", {{"com", ValueType::kString},
                                 {"mfg", ValueType::kString}}));
  auto add = [&relation](const char* com, const char* mfg) {
    Tuple t;
    t.values = {Value::String(com), Value::String(mfg)};
    ASSERT_TRUE(relation.Append(std::move(t)).ok());
  };
  for (int i = 0; i < 9; ++i) add("iphone", "Apple");
  add("iphone", "Huawei");  // one corrupted pairing
  CooccurrenceModel model;
  model.TrainOnRelation(relation);

  std::vector<Value> tuple = {Value::String("iphone"), Value::Null()};
  double apple = model.Strength(tuple, {0}, 1, Value::String("Apple"));
  double huawei = model.Strength(tuple, {0}, 1, Value::String("Huawei"));
  EXPECT_GT(apple, 0.7);
  EXPECT_GT(apple, huawei * 2);
}

TEST(CooccurrenceModelTest, PredictValueReturnsDominantPairing) {
  Relation relation(Schema("T", {{"city", ValueType::kString},
                                 {"code", ValueType::kString}}));
  auto add = [&relation](const char* a, const char* b) {
    Tuple t;
    t.values = {Value::String(a), Value::String(b)};
    ASSERT_TRUE(relation.Append(std::move(t)).ok());
  };
  for (int i = 0; i < 5; ++i) add("Beijing", "010");
  for (int i = 0; i < 5; ++i) add("Shanghai", "021");
  CooccurrenceModel model;
  model.TrainOnRelation(relation);
  std::vector<Value> tuple = {Value::String("Beijing"), Value::Null()};
  auto predicted = model.PredictValue(tuple, {0}, 1);
  ASSERT_TRUE(predicted.ok());
  EXPECT_EQ(predicted->AsString(), "010");
  // No evidence at all -> NotFound.
  std::vector<Value> unknown = {Value::String("Atlantis"), Value::Null()};
  EXPECT_FALSE(model.PredictValue(unknown, {0}, 1).ok());
}

TEST(CooccurrenceModelTest, GraphTrainingAddsCandidates) {
  kg::KnowledgeGraph graph;
  auto z = graph.AddVertex("Z10001");
  auto area = graph.AddVertex("Chaoyang");
  ASSERT_TRUE(graph.AddEdge(z, "AreaOf", area).ok());
  CooccurrenceModel model;
  model.TrainOnGraph(graph, /*subject_attr=*/0, /*object_attr=*/1);
  std::vector<Value> tuple = {Value::String("Z10001"), Value::Null()};
  auto predicted = model.PredictValue(tuple, {0}, 1);
  ASSERT_TRUE(predicted.ok());
  EXPECT_EQ(predicted->AsString(), "Chaoyang");
}

// ---------- HER + path matcher ----------

TEST(HerModelTest, MatchesTupleToItsVertex) {
  workload::EcommerceData data = workload::MakeEcommerceData();
  HerModel her;
  her.IndexGraph(data.graph);
  const Relation& store = data.db.relation(data.store);
  const Schema& schema = store.schema();
  // Row 2 is "Huawei Flagship": it must match its own vertex and not
  // Nike's.
  std::vector<Value> values = store.tuple(2).values;
  EXPECT_TRUE(her.Match(values, schema, data.graph,
                        data.huawei_store_vertex));
  EXPECT_FALSE(her.Match(values, schema, data.graph,
                         data.nike_store_vertex));
  // Blocking candidates include the matching vertex.
  auto candidates = her.Candidates(values, schema);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                      data.huawei_store_vertex),
            candidates.end());
}

TEST(PathMatchModelTest, SynonymsAndEmbeddingScore) {
  PathMatchModel model;
  model.AddSynonym("location", {"LocationAt"});
  EXPECT_TRUE(model.Matches("location", {"LocationAt"}));
  EXPECT_DOUBLE_EQ(model.Score("location", {"LocationAt"}), 1.0);
  // Char-ngram backoff: similar names score higher than unrelated ones.
  EXPECT_GT(model.Score("area", {"AreaOf"}),
            model.Score("area", {"ManufacturedBy"}));
}

}  // namespace
}  // namespace rock::ml
