#include <memory>

#include <gtest/gtest.h>

#include "src/baselines/baselines.h"
#include "src/common/strings.h"
#include "src/core/quality.h"
#include "src/discovery/evidence.h"
#include "src/ml/library.h"
#include "src/rules/parser.h"
#include "src/workload/ecommerce.h"
#include "src/workload/generator.h"
#include "src/workload/scoring.h"

namespace rock {
namespace {

using workload::GeneratorOptions;
using workload::InjectedError;

GeneratorOptions SmallOptions() {
  GeneratorOptions options;
  options.rows = 120;
  options.error_rate = 0.1;
  options.seed = 31;
  return options;
}

// ---------- Workload generators ----------

TEST(GeneratorTest, BankShapesAndInvariants) {
  auto data = workload::MakeBankData(SmallOptions());
  EXPECT_EQ(data.db.num_relations(), 3u);
  EXPECT_GT(data.db.TotalTuples(), 300u);
  // Payment totals: clean rows satisfy total = amount + fee + tax.
  const Relation& payment = data.db.relation(2);
  std::set<int64_t> corrupted;
  for (const auto& entry : data.errors) {
    if (entry.rel == 2) corrupted.insert(entry.tid);
  }
  for (size_t row = 0; row < payment.size(); ++row) {
    const Tuple& t = payment.tuple(row);
    if (corrupted.count(t.tid) || t.value(5).is_null()) continue;
    double expected = t.value(2).AsDouble() + t.value(3).AsDouble() +
                      t.value(4).AsDouble();
    EXPECT_NEAR(t.value(5).AsDouble(), expected, 0.01);
  }
}

TEST(GeneratorTest, ErrorLogMatchesData) {
  auto data = workload::MakeBankData(SmallOptions());
  for (const auto& entry : data.errors) {
    const Relation& relation = data.db.relation(entry.rel);
    int row = relation.RowOfTid(entry.tid);
    ASSERT_GE(row, 0);
    const Tuple& t = relation.tuple(static_cast<size_t>(row));
    switch (entry.type) {
      case InjectedError::kNull:
        EXPECT_TRUE(t.value(entry.attr).is_null());
        EXPECT_FALSE(entry.clean_value.is_null());
        break;
      case InjectedError::kConflict:
        EXPECT_FALSE(t.value(entry.attr) == entry.clean_value);
        break;
      case InjectedError::kDuplicate: {
        int orig = relation.RowOfTid(entry.tid2);
        ASSERT_GE(orig, 0);
        // The clone wrongly has its own entity.
        EXPECT_NE(t.eid, relation.tuple(static_cast<size_t>(orig)).eid);
        break;
      }
      case InjectedError::kStale: {
        int current = relation.RowOfTid(entry.tid2);
        ASSERT_GE(current, 0);
        // Versions share the entity; the stale one has the older stamp.
        EXPECT_EQ(t.eid, relation.tuple(static_cast<size_t>(current)).eid);
        EXPECT_LT(t.timestamp(entry.attr),
                  relation.tuple(static_cast<size_t>(current))
                      .timestamp(entry.attr));
        break;
      }
    }
  }
}

TEST(GeneratorTest, CleanTuplesCarryNoErrors) {
  auto data = workload::MakeLogisticsData(SmallOptions());
  std::set<std::pair<int, int64_t>> truth = workload::TruthTuples(data);
  for (const auto& clean : data.clean_tuples) {
    EXPECT_EQ(truth.count(clean), 0u);
  }
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  auto a = workload::MakeSalesData(SmallOptions());
  auto b = workload::MakeSalesData(SmallOptions());
  ASSERT_EQ(a.db.TotalTuples(), b.db.TotalTuples());
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].tid, b.errors[i].tid);
    EXPECT_EQ(static_cast<int>(a.errors[i].type),
              static_cast<int>(b.errors[i].type));
  }
}

TEST(GeneratorTest, RuleTextParsesForEveryApp) {
  for (const char* app : {"Bank", "Logistics", "Sales"}) {
    auto data = workload::MakeAppData(app, SmallOptions());
    auto rules = rules::ParseRules(data.rule_text, data.db.schema());
    ASSERT_TRUE(rules.ok()) << app << ": " << rules.status().ToString();
    EXPECT_GE(rules->size(), 5u) << app;
  }
}

TEST(GeneratorTest, TypoInjectionChangesString) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::string original = "James Smith 42";
    std::string typo = workload::InjectTypo(original, &rng);
    EXPECT_NE(typo, original);
    EXPECT_GT(JaroWinkler(original, typo), 0.8);
  }
}

// ---------- Scoring ----------

TEST(ScoringTest, PrfArithmetic) {
  workload::Prf prf;
  prf.true_positives = 8;
  prf.false_positives = 2;
  prf.false_negatives = 8;
  EXPECT_DOUBLE_EQ(prf.precision(), 0.8);
  EXPECT_DOUBLE_EQ(prf.recall(), 0.5);
  EXPECT_NEAR(prf.f1(), 0.6154, 1e-3);
  workload::Prf empty;
  EXPECT_DOUBLE_EQ(empty.f1(), 0.0);
}

TEST(ScoringTest, DetectionCountsFlaggedTruth) {
  auto data = workload::MakeBankData(SmallOptions());
  auto truth = workload::TruthTuples(data);
  // Flag exactly the truth: perfect score.
  workload::Prf perfect = workload::ScoreDetection(data, truth);
  EXPECT_DOUBLE_EQ(perfect.f1(), 1.0);
  // Flag nothing: recall 0.
  workload::Prf nothing = workload::ScoreDetection(data, {});
  EXPECT_DOUBLE_EQ(nothing.recall(), 0.0);
  // Flag one clean tuple: a false positive.
  std::set<std::pair<int, int64_t>> wrong = {data.clean_tuples[0]};
  workload::Prf fp = workload::ScoreDetection(data, wrong);
  EXPECT_EQ(fp.false_positives, 1u);
}

TEST(ScoringTest, TaskFilterRestrictsTruth) {
  auto data = workload::MakeBankData(SmallOptions());
  workload::TaskFilter task;
  task.name = "TPA";
  task.types = {InjectedError::kConflict, InjectedError::kNull};
  task.rels = {2};
  auto truth = workload::TruthTuples(data);
  workload::Prf prf = workload::ScoreDetectionTask(data, truth, task);
  // Flagging everything gives perfect recall on the task subset and no
  // false positives (other flags are out of the task's relations or on
  // known-dirty tuples).
  EXPECT_DOUBLE_EQ(prf.recall(), 1.0);
  EXPECT_EQ(prf.false_positives, 0u);
}

// ---------- Baselines ----------

TEST(T5sTest, FlagsImprobableTextAndNulls) {
  auto data = workload::MakeLogisticsData(SmallOptions());
  baselines::T5sModel::Options options;
  options.epochs = 2;  // keep the test fast
  baselines::T5sModel model(options);
  model.Train(data.db);
  EXPECT_GT(model.parameters_trained(), 100000u);
  auto report = model.Detect(data.db);
  EXPECT_GT(report.violations, 0u);
  // Every null cell scores rock-bottom.
  const Relation& shipment = data.db.relation(0);
  for (size_t row = 0; row < shipment.size() && row < 50; ++row) {
    const Tuple& t = shipment.tuple(row);
    for (size_t attr = 0; attr < t.values.size(); ++attr) {
      if (t.values[attr].is_null()) {
        EXPECT_LT(model.CellScore(0, t, static_cast<int>(attr)), -1e20);
      }
    }
  }
}

TEST(T5sTest, SuggestsNearbyFrequentValue) {
  auto data = workload::MakeLogisticsData(SmallOptions());
  baselines::T5sModel::Options options;
  options.epochs = 2;
  baselines::T5sModel model(options);
  model.Train(data.db);
  // A shipment with a typo'd seller name: the suggestion should be a
  // known value within small edit distance.
  for (const auto& entry : data.errors) {
    if (entry.type != InjectedError::kConflict || entry.attr != 7) continue;
    const Relation& rel = data.db.relation(entry.rel);
    int row = rel.RowOfTid(entry.tid);
    Value suggestion = model.SuggestCorrection(
        data.db, entry.rel, rel.tuple(static_cast<size_t>(row)), entry.attr);
    if (!suggestion.is_null()) {
      EXPECT_LE(EditDistance(suggestion.ToString(),
                             rel.tuple(static_cast<size_t>(row))
                                 .value(entry.attr).ToString()),
                3);
    }
    break;
  }
}

TEST(RbTest, SupervisedDetectionBeatsChance) {
  auto data = workload::MakeLogisticsData(SmallOptions());
  std::vector<std::pair<int, int64_t>> tuples;
  std::vector<std::tuple<int, int64_t, int>> errors;
  // Train on 60% of labels.
  size_t take = data.clean_tuples.size() * 6 / 10;
  for (size_t i = 0; i < take; ++i) tuples.push_back(data.clean_tuples[i]);
  for (size_t i = 0; i < data.errors.size() * 6 / 10; ++i) {
    const auto& entry = data.errors[i];
    if (entry.attr < 0) continue;
    tuples.emplace_back(entry.rel, entry.tid);
    errors.emplace_back(entry.rel, entry.tid, entry.attr);
  }
  baselines::RbCleaner::Options options;
  options.trees = 10;
  baselines::RbCleaner cleaner(options);
  cleaner.Train(data.db, tuples, errors);
  EXPECT_GT(cleaner.features_generated(), 0u);
  auto report = cleaner.Detect(data.db);
  workload::Prf prf = workload::ScoreDetection(data, report.DirtyTuples());
  EXPECT_GT(prf.f1(), 0.3);
}

TEST(SqlEngineTest, TranslatesReeToSql) {
  auto data = workload::MakeEcommerceData();
  auto rule = rules::ParseRee(
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ t0.sid = t1.sid -> "
      "t0.mfg = t1.mfg",
      data.db.schema());
  ASSERT_TRUE(rule.ok());
  rules::EvalContext ctx;
  ctx.db = &data.db;
  baselines::NaiveSqlEngine engine(ctx);
  std::string sql = engine.ToSql(*rule);
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("FROM Trans t0, Trans t1"), std::string::npos);
  EXPECT_NE(sql.find("udf_MER(t0, t1)"), std::string::npos);
  EXPECT_NE(sql.find("NOT (t0.mfg = t1.mfg)"), std::string::npos);
}

TEST(SqlEngineTest, DetectMatchesRockWithoutBlocking) {
  auto data = workload::MakeEcommerceData();
  ml::MlLibrary models;
  models.RegisterPair("MER", std::make_shared<ml::SimilarityClassifier>(0.6));
  auto rule = rules::ParseRee(
      "Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg",
      data.db.schema());
  ASSERT_TRUE(rule.ok());
  rules::EvalContext ctx;
  ctx.db = &data.db;
  ctx.models = &models;
  baselines::NaiveSqlEngine engine(ctx);
  auto report = engine.Detect({*rule});
  EXPECT_EQ(report.violations, 2u);
}

TEST(EsMinerTest, ExploresWithoutPruning) {
  auto data = workload::MakeLogisticsData(SmallOptions());
  rules::EvalContext ctx;
  ctx.db = &data.db;
  rules::Evaluator eval(ctx);
  discovery::PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  auto space = discovery::BuildPairSpace(data.db, 0, space_options);
  baselines::EsMiner miner(0.9);
  auto rules = miner.Mine(eval, space);
  EXPECT_GT(miner.candidates_explored(), 100u);
  for (const auto& rule : rules) {
    EXPECT_GE(rule.confidence, 0.9);
  }
}

// ---------- Quality monitors ----------

TEST(QualityTest, CompletenessAndConsistency) {
  auto data = workload::MakeLogisticsData(SmallOptions());
  auto rules = rules::ParseRules(data.rule_text, data.db.schema());
  ASSERT_TRUE(rules.ok());
  // Drop rules needing models (no models registered in ctx).
  std::vector<rules::Ree> logic_rules;
  for (auto& rule : *rules) {
    if (!rule.UsesMl() && rule.num_vertex_vars == 0) {
      logic_rules.push_back(rule);
    }
  }
  rules::EvalContext ctx;
  ctx.db = &data.db;
  auto report = core::AssessQuality(data.db, logic_rules, ctx);
  EXPECT_FALSE(report.attributes.empty());
  EXPECT_LT(report.OverallCompleteness(), 1.0);  // nulls injected
  EXPECT_GT(report.OverallCompleteness(), 0.7);
  EXPECT_LT(report.consistency, 1.0);  // violations present
  EXPECT_GT(report.violations, 0u);
  // ship_id is unique: zero duplication; area repeats heavily.
  for (const auto& attr : report.attributes) {
    if (attr.name == "Shipment.ship_id") {
      // Only the duplicated shipments repeat an id.
      EXPECT_LT(attr.duplication, 0.1);
    }
    if (attr.name == "Shipment.area") {
      EXPECT_GT(attr.duplication, 0.5);
    }
  }
}

TEST(QualityTest, TemplatesEvaluatePerTuple) {
  auto data = workload::MakeBankData(SmallOptions());
  core::QualityTemplate positive_totals;
  positive_totals.name = "payment totals positive";
  positive_totals.rel = 2;
  positive_totals.check = [](const Tuple& t) {
    return !t.value(5).is_null() && t.value(5).AsDouble() > 0;
  };
  auto results = core::RunQualityTemplates(data.db, {positive_totals});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].checked, 0u);
  EXPECT_GT(results[0].pass_rate(), 0.8);
  EXPECT_LT(results[0].pass_rate(), 1.0);  // nulled totals fail
}

}  // namespace
}  // namespace rock
