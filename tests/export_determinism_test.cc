// Determinism contract for the export surface: everything that reaches
// /telemetry.json, /metrics, or BENCH_*.json must come out byte-identical
// regardless of registration order, hash seeds, or repeat exports. This is
// the dynamic twin of rock_analyze.py's nondeterministic-iteration check:
// the analyzer proves no hash-ordered drain reaches an exporter, and this
// test locks the resulting byte layout with golden files.

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/exporters.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rock::obs {
namespace {

std::string ReadGolden(const std::string& name) {
  std::ifstream golden(std::string(ROCK_TEST_SRCDIR) + "/golden/" + name);
  EXPECT_TRUE(golden.is_open()) << "missing golden file " << name;
  std::ostringstream contents;
  contents << golden.rdbuf();
  return contents.str();
}

// A registry populated in deliberately scrambled (anti-alphabetical,
// interleaved) order: Snap() must sort it, and the exporters must emit it
// in that sorted order.
MetricsRegistry::Snapshot ScrambledSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("zeta_fixes_total")->Add(7);
  registry.GetGauge("queue_depth")->Set(42);
  registry.GetCounter("alpha_violations_total")->Add(3);
  registry.SetHelp("zeta_fixes_total", "Fixes applied by the chase.");
  registry.GetHistogram("detect_seconds", {0.001, 0.01, 0.1})->Observe(0.005);
  registry.GetHistogram("detect_seconds", {})->Observe(0.05);
  registry.GetCounter("ml_cache_hits_total")->Add(11);
  registry.GetGauge("alpha_live_workers")->Set(4);
  registry.SetHelp("alpha_violations_total", "Violations detected.");
  return registry.Snap();
}

std::map<std::string, SpanStats> FixedSpans() {
  std::map<std::string, SpanStats> spans;
  SpanStats detect;
  detect.count = 2;
  detect.total_seconds = 0.25;
  detect.max_seconds = 0.15;
  detect.p50_seconds = 0.1;
  detect.p95_seconds = 0.15;
  detect.p99_seconds = 0.15;
  detect.cpu_seconds = 0.2;
  detect.alloc_bytes = 4096;
  spans["rock.detect_errors"] = detect;
  SpanStats chase;
  chase.count = 1;
  chase.total_seconds = 0.5;
  chase.max_seconds = 0.5;
  chase.p50_seconds = 0.5;
  chase.p95_seconds = 0.5;
  chase.p99_seconds = 0.5;
  spans["rock.correct_errors"] = chase;
  return spans;
}

std::vector<WorkerBreakdown> FixedBreakdowns() {
  WorkerBreakdown breakdown;
  breakdown.label = "threads-2#1";
  breakdown.mode = "threads";
  breakdown.workers = 2;
  breakdown.wall_seconds = 0.75;
  breakdown.busy_seconds = {0.5, 0.25};
  breakdown.wait_seconds = {0.1, 0.05};
  breakdown.idle_seconds = {0.15, 0.45};
  return {breakdown};
}

TEST(ExportDeterminism, SnapshotIsSortedByName) {
  MetricsRegistry::Snapshot snapshot = ScrambledSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha_violations_total");
  EXPECT_EQ(snapshot.counters[1].name, "ml_cache_hits_total");
  EXPECT_EQ(snapshot.counters[2].name, "zeta_fixes_total");
  ASSERT_EQ(snapshot.gauges.size(), 2u);
  EXPECT_EQ(snapshot.gauges[0].name, "alpha_live_workers");
  EXPECT_EQ(snapshot.gauges[1].name, "queue_depth");
  ASSERT_EQ(snapshot.histograms.size(), 1u);
}

TEST(ExportDeterminism, JsonMatchesGolden) {
  std::string json = ExportJson(ScrambledSnapshot(), FixedSpans(), 3,
                                FixedBreakdowns());
  EXPECT_EQ(json, ReadGolden("telemetry_export.json"));
}

TEST(ExportDeterminism, PrometheusMatchesGolden) {
  std::string prom = ExportPrometheus(ScrambledSnapshot(), FixedSpans(), 3);
  EXPECT_EQ(prom, ReadGolden("telemetry_export.prom"));
}

TEST(ExportDeterminism, RepeatExportsAreByteIdentical) {
  MetricsRegistry::Snapshot snapshot = ScrambledSnapshot();
  std::map<std::string, SpanStats> spans = FixedSpans();
  std::vector<WorkerBreakdown> breakdowns = FixedBreakdowns();
  EXPECT_EQ(ExportJson(snapshot, spans, 3, breakdowns),
            ExportJson(snapshot, spans, 3, breakdowns));
  EXPECT_EQ(ExportPrometheus(snapshot, spans, 3),
            ExportPrometheus(snapshot, spans, 3));
}

}  // namespace
}  // namespace rock::obs
