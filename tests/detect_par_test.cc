#include <memory>

#include <gtest/gtest.h>

#include "src/detect/detector.h"
#include "src/ml/library.h"
#include "src/par/executor.h"
#include "src/rules/parser.h"
#include "src/workload/ecommerce.h"

namespace rock {
namespace {

using workload::EcommerceData;
using workload::MakeEcommerceData;

class DetectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeEcommerceData();
    models_.RegisterPair("MER",
                         std::make_shared<ml::SimilarityClassifier>(0.6));
  }

  rules::EvalContext Ctx() {
    rules::EvalContext ctx;
    ctx.db = &data_.db;
    ctx.graph = &data_.graph;
    ctx.models = &models_;
    return ctx;
  }

  rules::Ree Parse(const std::string& text) {
    auto rule = rules::ParseRee(text, data_.db.schema());
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    rules::Ree out = rule.ok() ? *rule : rules::Ree{};
    out.id = "t";
    return out;
  }

  EcommerceData data_;
  ml::MlLibrary models_;
};

TEST_F(DetectTest, CrViolationFlagsCells) {
  // φ2: same commodity, different manufactory (rows 3 vs 4).
  std::vector<rules::Ree> rules = {
      Parse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg")};
  detect::ErrorDetector detector(Ctx());
  auto report = detector.Detect(rules);
  EXPECT_EQ(report.violations, 2u);  // both orientations
  for (const auto& error : report.errors) {
    EXPECT_EQ(error.error_class, detect::ErrorClass::kConflict);
  }
  // Majority-side flagging has no guard info to split a 1-vs-1 tie; both
  // mfg cells are implicated.
  EXPECT_GE(report.DirtyCells().size(), 2u);
}

TEST_F(DetectTest, MissingValueClassification) {
  std::vector<rules::Ree> rules = {Parse(
      "Store(t0) ^ Store(t1) ^ t0.location = t1.location -> "
      "t0.area_code = t1.area_code")};
  detect::ErrorDetector detector(Ctx());
  auto report = detector.Detect(rules);
  // Beijing stores have null area codes: flagged as missing, and only the
  // null cells are implicated.
  bool any_missing = false;
  for (const auto& error : report.errors) {
    if (error.error_class == detect::ErrorClass::kMissing) {
      any_missing = true;
      for (const auto& cell : error.cells) {
        const Relation& rel = data_.db.relation(cell.rel);
        int row = rel.RowOfTid(cell.tid);
        EXPECT_TRUE(rel.tuple(static_cast<size_t>(row))
                        .value(cell.attr).is_null());
      }
    }
  }
  EXPECT_TRUE(any_missing);
}

TEST_F(DetectTest, ErViolationFlagsTuplePairs) {
  std::vector<rules::Ree> rules = {Parse(
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ t0.date = t1.date ^ "
      "t0.sid = t1.sid -> t0.eid = t1.eid")};
  detect::ErrorDetector detector(Ctx());
  auto report = detector.Detect(rules);
  EXPECT_GE(report.violations, 2u);
  for (const auto& error : report.errors) {
    EXPECT_EQ(error.error_class, detect::ErrorClass::kDuplicate);
    for (const auto& cell : error.cells) EXPECT_EQ(cell.attr, -1);
  }
}

TEST_F(DetectTest, BlockingPathMatchesExhaustive) {
  // A pure-ML rule (no equality join): the blocking path must find the
  // same violations as the exhaustive path.
  std::vector<rules::Ree> rules = {Parse(
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) -> t0.mfg = t1.mfg")};

  detect::DetectorOptions with;
  with.use_ml_blocking = true;
  detect::ErrorDetector blocking(Ctx(), with);
  auto blocked = blocking.Detect(rules);
  EXPECT_GT(blocked.blocked_pairs_checked, 0u);

  detect::DetectorOptions without;
  without.use_ml_blocking = false;
  detect::ErrorDetector exhaustive(Ctx(), without);
  auto full = exhaustive.Detect(rules);

  EXPECT_EQ(blocked.DirtyCells(), full.DirtyCells());
  // And the candidate set is smaller than the cross product.
  size_t n = data_.db.relation(data_.trans).size();
  EXPECT_LT(blocked.blocked_pairs_checked, n * (n - 1));
}

TEST_F(DetectTest, IncrementalOnlySeesDelta) {
  std::vector<rules::Ree> rules = {
      Parse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg")};
  detect::ErrorDetector detector(Ctx());
  // Dirty set = one clean tuple: no violation involves it.
  const Relation& trans = data_.db.relation(data_.trans);
  auto report = detector.DetectIncremental(
      rules, {{data_.trans, trans.tuple(0).tid}});
  EXPECT_EQ(report.violations, 0u);
  // Dirty set = the conflicting tuple: both orientations reported.
  report = detector.DetectIncremental(
      rules, {{data_.trans, trans.tuple(4).tid}});
  EXPECT_EQ(report.violations, 2u);
}

TEST_F(DetectTest, ParallelMatchesSerial) {
  std::vector<rules::Ree> rules = {
      Parse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg"),
      Parse("Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'")};
  detect::ErrorDetector detector(Ctx());
  auto serial = detector.Detect(rules);
  for (par::ExecutionMode mode :
       {par::ExecutionMode::kThreads, par::ExecutionMode::kSimulated}) {
    for (int workers : {1, 3, 8}) {
      par::ScheduleReport schedule;
      detect::DetectorOptions options;
      options.block_rows = 2;
      options.execution_mode = mode;
      detect::ErrorDetector parallel(Ctx(), options);
      auto report = parallel.DetectParallel(rules, workers, &schedule);
      EXPECT_EQ(report.DirtyCells(), serial.DirtyCells())
          << par::ExecutionModeName(mode) << " x" << workers;
      EXPECT_EQ(schedule.num_workers, workers);
      EXPECT_EQ(schedule.mode, mode);
      EXPECT_GT(schedule.makespan_seconds, 0.0);
      EXPECT_LE(schedule.makespan_seconds, schedule.serial_seconds + 1e-9);
      EXPECT_GT(schedule.wall_seconds, 0.0);
    }
  }
}

TEST_F(DetectTest, PairFrequencyCacheSafeUnderConcurrentFirstUse) {
  // Regression for the pair-frequency cache's check-then-insert: the first
  // DetectParallel run populates the (rel, guard, cons) table from several
  // worker threads at once. Fresh detectors each iteration keep the cache
  // cold so every run exercises the racy first-miss path; the reported
  // cells must match the serial result every time (under TSan this also
  // proves the double-checked insert is race-free).
  std::vector<rules::Ree> rules = {
      Parse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg")};
  detect::ErrorDetector serial_detector(Ctx());
  auto serial = serial_detector.Detect(rules);
  ASSERT_FALSE(serial.DirtyCells().empty());
  for (int iteration = 0; iteration < 20; ++iteration) {
    par::ScheduleReport schedule;
    detect::DetectorOptions options;
    options.block_rows = 1;  // many small units -> real thread contention
    options.execution_mode = par::ExecutionMode::kThreads;
    detect::ErrorDetector parallel(Ctx(), options);
    auto report = parallel.DetectParallel(rules, 8, &schedule);
    ASSERT_EQ(report.DirtyCells(), serial.DirtyCells())
        << "iteration " << iteration;
  }
}

// ---------- par ----------

TEST(HyperCubeTest, UnitsCoverCrossProduct) {
  EcommerceData data = MakeEcommerceData();
  auto units = par::BuildHyperCubeUnits(data.db, 0, {0, 0}, 2);
  // Person has 5 rows -> 3 blocks per variable -> 9 units.
  EXPECT_EQ(units.size(), 9u);
  // Every (row_a, row_b) combination is covered exactly once.
  std::vector<std::vector<int>> covered(5, std::vector<int>(5, 0));
  for (const auto& unit : units) {
    for (int a = unit.ranges[0].begin; a < unit.ranges[0].end; ++a) {
      for (int b = unit.ranges[1].begin; b < unit.ranges[1].end; ++b) {
        covered[static_cast<size_t>(a)][static_cast<size_t>(b)]++;
      }
    }
  }
  for (const auto& row : covered) {
    for (int count : row) EXPECT_EQ(count, 1);
  }
}

TEST(HyperCubeTest, EmptyRelationYieldsEmptyUnit) {
  DatabaseSchema schema;
  ASSERT_TRUE(
      schema.AddRelation(Schema("E", {{"x", ValueType::kInt}})).ok());
  Database db(std::move(schema));
  auto units = par::BuildHyperCubeUnits(db, 0, {0}, 4);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].ranges[0].begin, units[0].ranges[0].end);
}

TEST(WorkerPoolTest, ExecutesEveryUnitOnce) {
  std::vector<par::WorkUnit> units;
  for (int i = 0; i < 40; ++i) {
    par::WorkUnit unit;
    unit.rule_index = i;
    unit.ranges.push_back({0, i, i + 1});
    units.push_back(unit);
  }
  std::vector<int> executed(40, 0);
  par::WorkerPool pool(6, par::ExecutionMode::kSimulated);
  auto report = pool.Execute(units, [&](const par::WorkUnit& unit) {
    executed[static_cast<size_t>(unit.rule_index)]++;
  });
  for (int count : executed) EXPECT_EQ(count, 1);
  int placed = 0, run = 0;
  for (int c : report.initial_units) placed += c;
  for (int c : report.executed_units) run += c;
  EXPECT_EQ(placed, 40);
  EXPECT_EQ(run, 40);
}

TEST(WorkerPoolTest, MakespanShrinksWithWorkers) {
  std::vector<par::WorkUnit> units;
  for (int i = 0; i < 64; ++i) {
    par::WorkUnit unit;
    unit.rule_index = i;
    unit.ranges.push_back({0, i, i + 1});
    units.push_back(unit);
  }
  auto busy_work = [](const par::WorkUnit&) {
    volatile double x = 0;
    for (int i = 0; i < 80000; ++i) x = x + i * 0.5;
  };
  // The simulated schedule model: the makespan must shrink with workers
  // regardless of host parallelism.
  par::WorkerPool two(2, par::ExecutionMode::kSimulated);
  double makespan2 = two.Execute(units, busy_work).makespan_seconds;
  par::WorkerPool eight(8, par::ExecutionMode::kSimulated);
  double makespan8 = eight.Execute(units, busy_work).makespan_seconds;
  // 4x the workers: comfortably less than the 2-worker makespan even with
  // measurement noise.
  EXPECT_LT(makespan8, makespan2 * 0.7);
}

TEST(WorkerPoolTest, StealingKeepsWorkersBusy) {
  // All units hash... wherever; with many workers and few distinct keys,
  // stealing must move units so every worker's executed count is bounded
  // by a fair share plus slack.
  std::vector<par::WorkUnit> units;
  for (int i = 0; i < 100; ++i) {
    par::WorkUnit unit;
    unit.rule_index = 0;  // same rule
    unit.ranges.push_back({0, i, i + 1});
    units.push_back(unit);
  }
  auto busy_work = [](const par::WorkUnit&) {
    volatile double x = 0;
    for (int i = 0; i < 5000; ++i) x = x + i;
  };
  par::WorkerPool pool(10, par::ExecutionMode::kSimulated);
  auto report = pool.Execute(units, busy_work);
  int max_executed = 0;
  for (int c : report.executed_units) max_executed = std::max(max_executed, c);
  EXPECT_LT(max_executed, 35);  // far below "one worker does everything"
}

TEST(CostModelTest, JoinSelectivityDiscountsCost) {
  EcommerceData data = MakeEcommerceData();
  DatabaseStats stats = DatabaseStats::Compute(data.db);
  par::CostModel model(&stats);
  par::WorkUnit unit;
  unit.ranges.push_back({data.trans, 0, 5});
  unit.ranges.push_back({data.trans, 0, 5});
  double cross = model.Estimate(unit, -1);
  double joined = model.Estimate(unit, 2);  // join on com (4 distinct)
  EXPECT_GT(cross, joined);
  EXPECT_DOUBLE_EQ(cross, 25.0);
}

}  // namespace
}  // namespace rock
