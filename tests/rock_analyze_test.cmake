# Contract tests for scripts/rock_analyze.py, the semantic static analyzer.
#
# Three layers:
#   rock_analyze_selftest            in-memory fixture suite inside the script
#   rock_analyze_contract_*          on-disk fixtures under
#                                    tests/rock_analyze_fixtures/: every bad
#                                    TU yields >= 2 findings of its check,
#                                    every good TU is clean across all checks
#   rock_analyze_clean_tree          the real tree has zero findings above
#                                    scripts/rock_analyze_baseline.txt
#
# The analyzer's textual frontend is dependency-free, so these run wherever
# Python 3 does; CI re-runs the same contracts with the libclang backend.

find_package(Python3 COMPONENTS Interpreter)
if(NOT Python3_FOUND)
  message(STATUS "Python3 not found: skipping rock_analyze contract tests")
  return()
endif()

set(ROCK_ANALYZE "${CMAKE_SOURCE_DIR}/scripts/rock_analyze.py")
set(ROCK_ANALYZE_FIXTURES "${CMAKE_CURRENT_SOURCE_DIR}/rock_analyze_fixtures")
set(ROCK_ANALYZE_LOCK_ORDER "${ROCK_ANALYZE_FIXTURES}/lock_order_fixture.txt")

add_test(NAME rock_analyze_selftest
         COMMAND ${Python3_EXECUTABLE} ${ROCK_ANALYZE} --self-test)

# add_rock_analyze_contract(<name> <fixture> <extra args...>)
function(add_rock_analyze_contract name fixture)
  add_test(NAME rock_analyze_contract_${name}
           COMMAND ${Python3_EXECUTABLE} ${ROCK_ANALYZE}
                   --root ${CMAKE_SOURCE_DIR}
                   --files ${ROCK_ANALYZE_FIXTURES}/${fixture}
                   ${ARGN})
endfunction()

add_rock_analyze_contract(nondet_drain_bad bad_nondet_drain.cc
    --expect nondeterministic-iteration=2)
add_rock_analyze_contract(nondet_provenance_bad bad_nondet_provenance.cc
    --expect nondeterministic-iteration=2)
add_rock_analyze_contract(nondet_good good_nondet.cc --expect-clean)

add_rock_analyze_contract(guarded_fields_bad bad_guarded_fields.cc
    --expect guarded-field=2)
add_rock_analyze_contract(guarded_raw_mutex_bad bad_guarded_raw_mutex.cc
    --expect guarded-field=2)
add_rock_analyze_contract(guarded_good good_guarded.cc --expect-clean)

add_rock_analyze_contract(lock_cycle_bad bad_lock_cycle.cc
    --lock-order ${ROCK_ANALYZE_LOCK_ORDER} --expect lock-order=2)
add_rock_analyze_contract(lock_self_bad bad_lock_self.cc
    --lock-order ${ROCK_ANALYZE_LOCK_ORDER} --expect lock-order=2)
add_rock_analyze_contract(lock_good good_lock_order.cc
    --lock-order ${ROCK_ANALYZE_LOCK_ORDER} --expect-clean)

add_rock_analyze_contract(signal_handler_bad bad_signal_handler.cc
    --expect signal-safety=2)
add_rock_analyze_contract(signal_seam_bad bad_signal_seam.cc
    --expect signal-safety=2)
add_rock_analyze_contract(signal_good good_signal.cc --expect-clean)

add_rock_analyze_contract(span_inline_bad bad_span_inline.cc
    --expect span-coverage=2)
add_rock_analyze_contract(span_outofline_bad bad_span_outofline.cc
    --expect span-coverage=2)
add_rock_analyze_contract(span_good good_span.cc --expect-clean)

# The tree itself stays at or below the checked-in baseline (which is
# empty: every real finding is fixed or carries a justified annotation).
add_test(NAME rock_analyze_clean_tree
         COMMAND ${Python3_EXECUTABLE} ${ROCK_ANALYZE}
                 --root ${CMAKE_SOURCE_DIR}
                 --build-dir ${CMAKE_BINARY_DIR}
                 --backend textual)
