// Tests for the threaded WorkerPool executor: determinism of merged
// results across worker counts, real work stealing under skewed
// placement, and stress cases that give TSan genuine interleavings.

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/detect/detector.h"
#include "src/ml/library.h"
#include "src/obs/exporters.h"
#include "src/par/executor.h"
#include "src/rules/parser.h"
#include "src/workload/ecommerce.h"
#include "src/workload/generator.h"

namespace rock {
namespace {

using workload::EcommerceData;
using workload::MakeEcommerceData;

// Serializes everything a DetectionReport carries, in order, so two
// reports can be compared bitwise.
std::string ReportFingerprint(const detect::DetectionReport& report) {
  std::ostringstream out;
  out << report.violations << "|" << report.blocked_pairs_checked << "|"
      << report.exhaustive_pairs_checked << "\n";
  for (const detect::ErrorRecord& error : report.errors) {
    out << error.rule_id << ":"
        << detect::ErrorClassName(error.error_class);
    for (const auto& cell : error.cells) {
      out << " (" << cell.rel << "," << cell.tid << "," << cell.attr << ")";
    }
    out << "\n";
  }
  return out.str();
}

std::vector<par::WorkUnit> MakeUnits(int count, int rule_index = 0) {
  std::vector<par::WorkUnit> units;
  for (int i = 0; i < count; ++i) {
    par::WorkUnit unit;
    unit.rule_index = rule_index;
    unit.ranges.push_back({0, i, i + 1});
    units.push_back(unit);
  }
  return units;
}

TEST(IdleAccountingTest, ClampedIdleSecondsNeverNegative) {
  // Regression: idle = wall - busy went negative for straggler workers
  // whose busy time (their own clock) exceeded the pool's wall clock.
  EXPECT_DOUBLE_EQ(par::ClampedIdleSeconds(1.0, 0.25), 0.75);
  EXPECT_DOUBLE_EQ(par::ClampedIdleSeconds(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(par::ClampedIdleSeconds(1.0, 1.5), 0.0);
  EXPECT_DOUBLE_EQ(par::ClampedIdleSeconds(0.0, 0.0), 0.0);
}

TEST(IdleAccountingTest, ExecuteReportsPerWorkerBreakdownsClampedAtZero) {
  // Oversubscribe workers so per-worker busy clocks race the wall clock;
  // every idle entry must still come out non-negative.
  const int kUnits = 64;
  const int kWorkers = 8;
  std::vector<par::WorkUnit> units = MakeUnits(kUnits);
  par::WorkerPool pool(kWorkers, par::ExecutionMode::kThreads);
  auto report = pool.Execute(
      units, [&](const par::WorkUnit&, size_t, int) {
        volatile double acc = 0;
        for (int i = 0; i < 20000; ++i) acc = acc + i;
      });
  ASSERT_EQ(report.busy_seconds.size(), static_cast<size_t>(kWorkers));
  ASSERT_EQ(report.wait_seconds.size(), static_cast<size_t>(kWorkers));
  ASSERT_EQ(report.idle_seconds.size(), static_cast<size_t>(kWorkers));
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_GE(report.busy_seconds[w], 0.0);
    EXPECT_GE(report.wait_seconds[w], 0.0);
    EXPECT_GE(report.idle_seconds[w], 0.0) << "worker " << w;
  }
}

TEST(IdleAccountingTest, SimulatedModeFillsBreakdowns) {
  std::vector<par::WorkUnit> units = MakeUnits(32);
  par::WorkerPool pool(4, par::ExecutionMode::kSimulated);
  auto report = pool.Execute(units, [](const par::WorkUnit&, size_t, int) {});
  ASSERT_EQ(report.busy_seconds.size(), 4u);
  ASSERT_EQ(report.wait_seconds.size(), 4u);
  ASSERT_EQ(report.idle_seconds.size(), 4u);
  for (int w = 0; w < 4; ++w) {
    EXPECT_GE(report.idle_seconds[w], 0.0);
    EXPECT_GE(report.wait_seconds[w], 0.0);
  }
}

TEST(IdleAccountingTest, ExecutePublishesScheduleBreakdown) {
  obs::ScheduleBreakdowns::Global().Reset();
  std::vector<par::WorkUnit> units = MakeUnits(16);
  par::WorkerPool pool(2, par::ExecutionMode::kThreads);
  pool.Execute(units, [](const par::WorkUnit&, size_t, int) {});
  std::vector<obs::WorkerBreakdown> breakdowns =
      obs::ScheduleBreakdowns::Global().Snapshot();
  ASSERT_FALSE(breakdowns.empty());
  const obs::WorkerBreakdown& last = breakdowns.back();
  EXPECT_EQ(last.mode, "threads");
  EXPECT_EQ(last.workers, 2);
  EXPECT_EQ(last.busy_seconds.size(), 2u);
  EXPECT_EQ(last.wait_seconds.size(), 2u);
  EXPECT_EQ(last.idle_seconds.size(), 2u);
  EXPECT_GT(last.wall_seconds, 0.0);
}

TEST(ThreadedPoolTest, ExecutesEveryUnitExactlyOnce) {
  const int kUnits = 200;
  std::vector<par::WorkUnit> units = MakeUnits(kUnits);
  std::vector<std::atomic<int>> executed(kUnits);
  for (auto& e : executed) e.store(0);
  par::WorkerPool pool(8, par::ExecutionMode::kThreads);
  auto report = pool.Execute(
      units, [&](const par::WorkUnit&, size_t unit_index, int worker) {
        ASSERT_GE(worker, 0);
        ASSERT_LT(worker, 8);
        executed[unit_index].fetch_add(1);
      });
  for (const auto& e : executed) EXPECT_EQ(e.load(), 1);
  EXPECT_EQ(report.mode, par::ExecutionMode::kThreads);
  EXPECT_GT(report.wall_seconds, 0.0);
  int placed = 0, run = 0;
  for (int c : report.initial_units) placed += c;
  for (int c : report.executed_units) run += c;
  EXPECT_EQ(placed, kUnits);
  EXPECT_EQ(run, kUnits);
}

TEST(ThreadedPoolTest, StealsUnderSkewedPlacement) {
  // Every unit shares one placement key, so hash placement drops the whole
  // batch on a single worker; the other workers' only source of work is
  // stealing. Units are slow enough that the owner cannot drain its queue
  // before the thieves arrive.
  std::vector<par::WorkUnit> units;
  for (int i = 0; i < 64; ++i) {
    par::WorkUnit unit;
    unit.rule_index = 7;
    unit.ranges.push_back({0, 0, 0});  // identical block coordinates
    units.push_back(unit);
  }
  par::WorkerPool pool(4, par::ExecutionMode::kThreads);
  auto report = pool.Execute(units, [](const par::WorkUnit&) {
    volatile double x = 0;
    for (int i = 0; i < 200000; ++i) x = x + i * 0.5;
  });
  int max_initial = 0;
  for (int c : report.initial_units) max_initial = std::max(max_initial, c);
  ASSERT_EQ(max_initial, 64) << "placement should be fully skewed";
  EXPECT_GT(report.stolen_units, 0);
  int run = 0;
  for (int c : report.executed_units) run += c;
  EXPECT_EQ(run, 64);
}

TEST(ThreadedPoolTest, RepeatedRunsStress) {
  // Many small units over many iterations: a TSan target that exercises
  // pop-vs-steal races on the per-worker deques from fresh threads each
  // round.
  for (int round = 0; round < 20; ++round) {
    const int kUnits = 100;
    std::vector<par::WorkUnit> units = MakeUnits(kUnits, round);
    std::vector<std::atomic<int>> executed(kUnits);
    for (auto& e : executed) e.store(0);
    par::WorkerPool pool(6, par::ExecutionMode::kThreads);
    pool.Execute(units,
                 [&](const par::WorkUnit&, size_t unit_index, int) {
                   executed[unit_index].fetch_add(1);
                 });
    for (const auto& e : executed) ASSERT_EQ(e.load(), 1) << round;
  }
}

TEST(ThreadedPoolTest, StealRacesDrainOnWorkerDeathStress) {
  // Regression for the steal-vs-drain race: thieves used to sample a
  // victim's queue size without re-checking emptiness *and* closed state
  // under the victim's mutex before popping, so a thief could pop from a
  // queue its dying owner was concurrently draining to survivors. With the
  // whole batch placed on one worker (identical placement keys) and that
  // worker crashing on its first unit while slow bodies keep the thieves
  // circling, every round forces drain and steal to overlap. Run under
  // TSan in CI's fault-matrix job; exactly-once execution proves no unit
  // is lost or duplicated across the handoff.
  par::FaultPlan plan;
  plan.crash_at_attempt[0] = 1;
  for (int round = 0; round < 10; ++round) {
    const int kUnits = 48;
    std::vector<par::WorkUnit> units;
    for (int i = 0; i < kUnits; ++i) {
      par::WorkUnit unit;
      unit.rule_index = round;
      unit.ranges.push_back({0, 0, 0});  // identical block coordinates
      units.push_back(unit);
    }
    std::vector<std::atomic<int>> executed(kUnits);
    for (auto& e : executed) e.store(0);
    par::PoolOptions options;
    options.fault_plan = &plan;
    par::WorkerPool pool(4, par::ExecutionMode::kThreads, options);
    auto report = pool.Execute(
        units, [&](const par::WorkUnit&, size_t unit_index, int) {
          executed[unit_index].fetch_add(1);
          volatile double x = 0;
          for (int i = 0; i < 20000; ++i) x = x + i * 0.5;
        });
    for (const auto& e : executed) ASSERT_EQ(e.load(), 1) << round;
    EXPECT_EQ(report.faults.worker_deaths, 1u) << round;
    // The acquired unit re-places without counting as a steal; everything
    // else drained from the dead worker's deque counts as both.
    EXPECT_EQ(report.faults.steals_on_death + 1,
              report.faults.units_reassigned)
        << round;
    EXPECT_GE(report.faults.units_reassigned, 1u) << round;
    EXPECT_TRUE(report.faults.unrecovered_units.empty()) << round;
  }
}

TEST(ThreadedPoolTest, SimulatedModeIsDeterministic) {
  std::vector<par::WorkUnit> units = MakeUnits(50);
  par::WorkerPool pool(5, par::ExecutionMode::kSimulated);
  auto a = pool.Execute(units, [](const par::WorkUnit&) {});
  auto b = pool.Execute(units, [](const par::WorkUnit&) {});
  EXPECT_EQ(a.initial_units, b.initial_units);
  EXPECT_EQ(a.num_workers, 5);
  EXPECT_EQ(a.mode, par::ExecutionMode::kSimulated);
}

class ParDetectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeEcommerceData();
    models_.RegisterPair("MER",
                         std::make_shared<ml::SimilarityClassifier>(0.6));
  }

  rules::EvalContext Ctx() {
    rules::EvalContext ctx;
    ctx.db = &data_.db;
    ctx.graph = &data_.graph;
    ctx.models = &models_;
    return ctx;
  }

  rules::Ree Parse(const std::string& text) {
    auto rule = rules::ParseRee(text, data_.db.schema());
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    rules::Ree out = rule.ok() ? *rule : rules::Ree{};
    out.id = "t";
    return out;
  }

  EcommerceData data_;
  ml::MlLibrary models_;
};

TEST_F(ParDetectTest, ReportIdenticalAcrossWorkerCountsAndModes) {
  // The acceptance bar for the threaded executor: the full report —
  // violation counts, error records, cell lists, in order — is bitwise
  // identical for 1 vs. N workers and for threads vs. simulated modes,
  // because per-unit reports merge in unit order.
  std::vector<rules::Ree> rules = {
      Parse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg"),
      Parse("Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'"),
      Parse("Store(t0) ^ Store(t1) ^ t0.location = t1.location -> "
            "t0.area_code = t1.area_code")};
  std::string baseline;
  for (par::ExecutionMode mode :
       {par::ExecutionMode::kThreads, par::ExecutionMode::kSimulated}) {
    for (int workers : {1, 2, 4, 7}) {
      detect::DetectorOptions options;
      options.block_rows = 2;
      options.execution_mode = mode;
      detect::ErrorDetector detector(Ctx(), options);
      par::ScheduleReport schedule;
      auto report = detector.DetectParallel(rules, workers, &schedule);
      std::string fingerprint = ReportFingerprint(report);
      if (baseline.empty()) {
        baseline = fingerprint;
        EXPECT_GT(report.violations, 0u);
      } else {
        EXPECT_EQ(fingerprint, baseline)
            << par::ExecutionModeName(mode) << " x" << workers;
      }
    }
  }
}

TEST_F(ParDetectTest, ThreadedStressOverGeneratedWorkload) {
  // Larger generated workload, small blocks, several worker counts and
  // repetitions: real contention for TSan on the detector path (shared
  // pair-frequency cache, per-worker evaluators, per-unit reports).
  workload::GeneratorOptions options;
  options.rows = 60;
  options.error_rate = 0.1;
  options.seed = 13;
  workload::GeneratedData data =
      workload::MakeAppData("Logistics", options);
  auto rules = rules::ParseRules(data.rule_text, data.db.schema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();

  rules::EvalContext ctx;
  ctx.db = &data.db;
  ctx.graph = &data.graph;

  std::string baseline;
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (int workers : {2, 5}) {
      detect::DetectorOptions options;
      options.block_rows = 8;
      options.execution_mode = par::ExecutionMode::kThreads;
      detect::ErrorDetector detector(ctx, options);
      par::ScheduleReport schedule;
      auto report = detector.DetectParallel(*rules, workers, &schedule);
      std::string fingerprint = ReportFingerprint(report);
      if (baseline.empty()) {
        baseline = fingerprint;
      } else {
        EXPECT_EQ(fingerprint, baseline) << workers << "@" << repeat;
      }
    }
  }
}

}  // namespace
}  // namespace rock
