#include <memory>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/workload/generator.h"
#include "src/workload/scoring.h"

namespace rock::core {
namespace {

using workload::GeneratedData;
using workload::GeneratorOptions;
using workload::InjectedError;

GeneratorOptions SmallOptions() {
  GeneratorOptions options;
  options.rows = 150;
  options.error_rate = 0.08;
  options.seed = 17;
  return options;
}

ModelTrainingSpec BankSpec() {
  ModelTrainingSpec spec;
  spec.rank_targets = {{"Customer", "city"}};
  spec.monotone_attrs = {{"Customer", "points"}};
  spec.path_synonyms = {{"area", {"AreaOf"}}};
  return spec;
}

class CoreBankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = workload::MakeBankData(SmallOptions());
  }
  GeneratedData data_;
};

TEST_F(CoreBankTest, GeneratorProducesErrorsAndCleanTuples) {
  EXPECT_GT(data_.errors.size(), 10u);
  EXPECT_GT(data_.clean_tuples.size(), 100u);
  // All four channels present.
  std::set<InjectedError> kinds;
  for (const auto& e : data_.errors) kinds.insert(e.type);
  EXPECT_EQ(kinds.size(), 4u);
}

TEST_F(CoreBankTest, CuratedRulesParse) {
  Rock rock(&data_.db, &data_.graph);
  auto rules = rock.LoadRules(data_.rule_text);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_GE(rules->size(), 5u);
}

TEST_F(CoreBankTest, NoMlVariantStripsMlRules) {
  RockOptions options;
  options.variant = Variant::kNoMl;
  Rock rock(&data_.db, &data_.graph, options);
  auto rules = rock.LoadRules(data_.rule_text);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_FALSE(rule.UsesMl());
  }
}

TEST_F(CoreBankTest, DetectionFindsMostInjectedErrors) {
  Rock rock(&data_.db, &data_.graph);
  rock.TrainModels(BankSpec());
  rock.DiscoverPolynomials();
  auto rules = rock.LoadRules(data_.rule_text);
  ASSERT_TRUE(rules.ok());
  auto report = rock.DetectErrors(*rules);
  EXPECT_GT(report.violations, 0u);
  workload::Prf prf = workload::ScoreDetection(data_, report.DirtyTuples());
  EXPECT_GT(prf.f1(), 0.5) << "P=" << prf.precision()
                           << " R=" << prf.recall();
}

TEST_F(CoreBankTest, PolynomialDiscoveryFindsTotal) {
  Rock rock(&data_.db, &data_.graph);
  auto polys = rock.DiscoverPolynomials();
  // Payment.total = amount + fee + tax must be discovered.
  bool found_total = false;
  for (const auto& poly : polys) {
    if (poly.rel == 2 && poly.expr.target_attr == 5) {
      found_total = true;
      EXPECT_GT(poly.expr.r_squared, 0.99);
    }
  }
  EXPECT_TRUE(found_total);
}

TEST_F(CoreBankTest, CorrectionRecoversErrors) {
  Rock rock(&data_.db, &data_.graph);
  rock.TrainModels(BankSpec());
  rock.DiscoverPolynomials();
  auto rules = rock.LoadRules(data_.rule_text);
  ASSERT_TRUE(rules.ok());

  CorrectionResult result;
  auto engine = rock.CorrectErrors(*rules, data_.clean_tuples, &result);
  EXPECT_TRUE(result.chase.converged);
  auto score = workload::ScoreCorrection(data_, *engine);
  EXPECT_GT(score.overall.f1(), 0.6)
      << "P=" << score.overall.precision()
      << " R=" << score.overall.recall()
      << " TP=" << score.overall.true_positives
      << " FP=" << score.overall.false_positives
      << " FN=" << score.overall.false_negatives;
}

TEST_F(CoreBankTest, VariantsOrderAsInPaper) {
  // F1(Rock) >= F1(Rock_noML) and F1(Rock) > F1(Rock_noC) (paper §6
  // ablations: ML predicates and task interaction both help).
  auto run = [this](Variant variant) {
    GeneratedData data = workload::MakeBankData(SmallOptions());
    RockOptions options;
    options.variant = variant;
    Rock rock(&data.db, &data.graph, options);
    rock.TrainModels(BankSpec());
    rock.DiscoverPolynomials();
    auto rules = rock.LoadRules(data.rule_text);
    EXPECT_TRUE(rules.ok());
    CorrectionResult result;
    auto engine = rock.CorrectErrors(*rules, data.clean_tuples, &result);
    return workload::ScoreCorrection(data, *engine).overall.f1();
  };
  double rock_f1 = run(Variant::kRock);
  double noml_f1 = run(Variant::kNoMl);
  double noc_f1 = run(Variant::kNoChase);
  double seq_f1 = run(Variant::kSequential);
  EXPECT_GE(rock_f1 + 1e-9, noml_f1);
  EXPECT_GT(rock_f1, noc_f1);
  EXPECT_NEAR(rock_f1, seq_f1, 0.05);  // same fixpoint, same accuracy
}

TEST(CoreLogisticsTest, ImputationViaGraphWorks) {
  auto data = workload::MakeLogisticsData(SmallOptions());
  Rock rock(&data.db, &data.graph);
  ModelTrainingSpec spec;
  spec.path_synonyms = {{"area", {"AreaOf"}}, {"city", {"CityOf"}}};
  rock.TrainModels(spec);
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  CorrectionResult result;
  auto engine = rock.CorrectErrors(*rules, data.clean_tuples, &result);
  auto score = workload::ScoreCorrection(data, *engine);
  // Nulls dominate logistics errors; most must be recovered.
  auto it = score.by_type.find(InjectedError::kNull);
  ASSERT_NE(it, score.by_type.end());
  EXPECT_GT(it->second.recall(), 0.6)
      << "TP=" << it->second.true_positives
      << " FN=" << it->second.false_negatives;
}

TEST(CoreSalesTest, EndToEndPerTaskScores) {
  auto data = workload::MakeSalesData(SmallOptions());
  Rock rock(&data.db, &data.graph);
  ModelTrainingSpec spec;
  spec.rank_targets = {{"Client", "discount"}};
  spec.monotone_attrs = {{"Client", "lifetime_value"}};
  rock.TrainModels(spec);
  rock.DiscoverPolynomials();
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  CorrectionResult result;
  auto engine = rock.CorrectErrors(*rules, data.clean_tuples, &result);
  auto score = workload::ScoreCorrection(data, *engine);
  EXPECT_GT(score.overall.f1(), 0.5)
      << "P=" << score.overall.precision() << " R=" << score.overall.recall();
  // TD must be exercised: stale versions ordered below current.
  auto stale = score.by_type.find(InjectedError::kStale);
  ASSERT_NE(stale, score.by_type.end());
  EXPECT_GT(stale->second.recall(), 0.5)
      << "TP=" << stale->second.true_positives
      << " FN=" << stale->second.false_negatives;
}

TEST(CoreDiscoveryTest, MinerRecoversCuratedDependencies) {
  GeneratorOptions options = SmallOptions();
  options.rows = 120;
  auto data = workload::MakeLogisticsData(options);
  Rock rock(&data.db, &data.graph);
  discovery::PredicateSpaceOptions space;
  space.max_constants_per_attr = 0;
  auto mined = rock.DiscoverRules(space);
  // zip -> area (or street/city) must be among the mined rules.
  bool found = false;
  for (const auto& rule : mined) {
    std::string text = rule.rule.ToString(data.db.schema());
    if (text.find("t0.zip = t1.zip") != std::string::npos &&
        text.find("-> t0.area = t1.area") != std::string::npos) {
      found = true;
      EXPECT_GT(rule.confidence, 0.85);
    }
  }
  EXPECT_TRUE(found) << "mined " << mined.size() << " rules";
}

}  // namespace
}  // namespace rock::core
