#include <memory>

#include <gtest/gtest.h>

#include "src/ml/correlation.h"
#include "src/ml/her.h"
#include "src/ml/library.h"
#include "src/rules/eval.h"
#include "src/rules/parser.h"
#include "src/rules/ree.h"
#include "src/workload/ecommerce.h"

namespace rock::rules {
namespace {

using workload::EcommerceData;
using workload::MakeEcommerceData;

class RulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeEcommerceData();
    // An ER model over commodity descriptions: matches when the two
    // commodity strings share most tokens (e.g. the same discount code).
    auto mer = std::make_shared<ml::SimilarityClassifier>(0.6);
    models_.RegisterPair("MER", mer);
    auto her = std::make_shared<ml::HerModel>();
    her->IndexGraph(data_.graph);
    models_.RegisterHer(her);
    auto matcher = std::make_shared<ml::PathMatchModel>();
    matcher->AddSynonym("location", {"LocationAt"});
    matcher->AddSynonym("type", {"TypeOf"});
    models_.RegisterPathMatcher(matcher);
    auto corr = std::make_shared<ml::CooccurrenceModel>();
    corr->TrainOnRelation(data_.db.relation(data_.trans));
    models_.RegisterCorrelation("Mc", corr);
    models_.RegisterPredictor("Md", corr);
  }

  EvalContext Ctx() {
    EvalContext ctx;
    ctx.db = &data_.db;
    ctx.graph = &data_.graph;
    ctx.models = &models_;
    return ctx;
  }

  Ree Parse(const std::string& text) {
    auto rule = ParseRee(text, data_.db.schema());
    EXPECT_TRUE(rule.ok()) << rule.status().ToString() << " for " << text;
    return rule.ok() ? *rule : Ree{};
  }

  Relation& out_trans() { return data_.db.relation(data_.trans); }

  EcommerceData data_;
  ml::MlLibrary models_;
};

// ---------- Parser ----------

TEST_F(RulesTest, ParsesPhi2CfdStyle) {
  Ree rule =
      Parse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg");
  EXPECT_EQ(rule.tuple_vars.size(), 2u);
  ASSERT_EQ(rule.precondition.size(), 1u);
  EXPECT_EQ(rule.precondition[0].kind, PredicateKind::kAttrCompare);
  EXPECT_EQ(rule.Task(), RuleTask::kCr);
  EXPECT_FALSE(rule.UsesMl());
}

TEST_F(RulesTest, ParsesPhi1WithMlPredicate) {
  Ree rule = Parse(
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ t0.date = t1.date ^ "
      "t0.sid = t1.sid -> t0.pid = t1.pid");
  ASSERT_EQ(rule.precondition.size(), 3u);
  EXPECT_EQ(rule.precondition[0].kind, PredicateKind::kMlPair);
  EXPECT_EQ(rule.precondition[0].model, "MER");
  EXPECT_TRUE(rule.UsesMl());
}

TEST_F(RulesTest, ParsesEidConsequence) {
  Ree rule = Parse(
      "Person(t0) ^ Person(t1) ^ t0.LN = t1.LN ^ t0.FN = t1.FN ^ "
      "t0.home = t1.home -> t0.eid = t1.eid");
  EXPECT_EQ(rule.consequence.attr, kEidAttr);
  EXPECT_EQ(rule.Task(), RuleTask::kEr);
}

TEST_F(RulesTest, ParsesConstantPredicate) {
  Ree rule = Parse(
      "Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'");
  ASSERT_EQ(rule.precondition.size(), 1u);
  EXPECT_EQ(rule.precondition[0].kind, PredicateKind::kConstant);
  EXPECT_EQ(rule.precondition[0].constant.AsString(), "Beijing");
  EXPECT_EQ(rule.Task(), RuleTask::kCr);
}

TEST_F(RulesTest, ParsesTemporalPredicates) {
  Ree rule = Parse(
      "Person(t0) ^ Person(t1) ^ t0.status = 'single' ^ "
      "t1.status = 'married' -> t0 <=[status] t1");
  EXPECT_EQ(rule.consequence.kind, PredicateKind::kTemporal);
  EXPECT_FALSE(rule.consequence.strict);
  EXPECT_EQ(rule.Task(), RuleTask::kTd);

  Ree strict = Parse("Person(t0) ^ Person(t1) ^ t0 <[home] t1 -> "
                     "t0 <[status] t1");
  EXPECT_TRUE(strict.consequence.strict);
  ASSERT_EQ(strict.precondition.size(), 1u);
  EXPECT_TRUE(strict.precondition[0].strict);
}

TEST_F(RulesTest, ParsesRankerBackedTemporal) {
  Ree rule = Parse(
      "Person(t0) ^ Person(t1) ^ Mrank(t0, t1, <=[LN]) -> t0 <=[LN] t1");
  ASSERT_EQ(rule.precondition.size(), 1u);
  EXPECT_EQ(rule.precondition[0].kind, PredicateKind::kTemporal);
  EXPECT_EQ(rule.precondition[0].model, "Mrank");
  EXPECT_TRUE(rule.UsesMl());
}

TEST_F(RulesTest, ParsesKnowledgeGraphPredicates) {
  Ree rule = Parse(
      "Store(t0) ^ vertex(x0, G) ^ HER(t0, x0) ^ "
      "match(t0.location, x0.(LocationAt)) -> "
      "t0.location = val(x0.(LocationAt))");
  EXPECT_EQ(rule.num_vertex_vars, 1);
  ASSERT_EQ(rule.precondition.size(), 2u);
  EXPECT_EQ(rule.precondition[0].kind, PredicateKind::kHer);
  EXPECT_EQ(rule.precondition[1].kind, PredicateKind::kPathMatch);
  EXPECT_EQ(rule.consequence.kind, PredicateKind::kValExtract);
  EXPECT_EQ(rule.Task(), RuleTask::kMi);
}

TEST_F(RulesTest, ParsesCorrelationAndPrediction) {
  Ree rule = Parse(
      "Trans(t0) ^ Mc(t0[com,mfg], t0.price) >= 0.8 -> "
      "t0.price = Md(t0[com,mfg], price)");
  ASSERT_EQ(rule.precondition.size(), 1u);
  EXPECT_EQ(rule.precondition[0].kind, PredicateKind::kCorrelation);
  EXPECT_DOUBLE_EQ(rule.precondition[0].threshold, 0.8);
  EXPECT_EQ(rule.consequence.kind, PredicateKind::kPredictValue);
  EXPECT_EQ(rule.Task(), RuleTask::kMi);
}

TEST_F(RulesTest, ParsesCorrelationWithConstant) {
  Ree rule = Parse(
      "Store(t0) ^ Mc(t0[name], t0.location='Beijing') >= 0.7 -> "
      "t0.location = 'Beijing'");
  ASSERT_EQ(rule.precondition.size(), 1u);
  EXPECT_TRUE(rule.precondition[0].has_constant);
  EXPECT_EQ(rule.precondition[0].constant.AsString(), "Beijing");
}

TEST_F(RulesTest, ParsesNullGuard) {
  Ree rule = Parse(
      "Trans(t0) ^ null(t0.price) -> t0.price = Md(t0[com,mfg], price)");
  ASSERT_EQ(rule.precondition.size(), 1u);
  EXPECT_EQ(rule.precondition[0].kind, PredicateKind::kIsNull);
  EXPECT_EQ(rule.Task(), RuleTask::kMi);
}

TEST_F(RulesTest, RoundTripsThroughToString) {
  const char* kRules[] = {
      "Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg",
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ t0.date = t1.date -> "
      "t0.pid = t1.pid",
      "Person(t0) ^ Person(t1) ^ t0.status = 'single' -> t0 <=[status] t1",
      "Store(t0) ^ vertex(x0, G) ^ HER(t0, x0) -> "
      "t0.location = val(x0.(LocationAt))",
      "Trans(t0) ^ null(t0.price) -> t0.price = Md(t0[com], price)",
  };
  for (const char* text : kRules) {
    Ree rule = Parse(text);
    std::string printed = rule.ToString(data_.db.schema());
    auto reparsed = ParseRee(printed, data_.db.schema());
    ASSERT_TRUE(reparsed.ok())
        << printed << " => " << reparsed.status().ToString();
    EXPECT_TRUE(rule.SameRule(*reparsed)) << printed;
  }
}

TEST_F(RulesTest, RejectsBadRules) {
  EXPECT_FALSE(ParseRee("Trans(t0) ^ t0.com = t1.com", data_.db.schema()).ok());
  EXPECT_FALSE(
      ParseRee("Trans(t0) -> t0.nosuch = 'x'", data_.db.schema()).ok());
  EXPECT_FALSE(
      ParseRee("Nope(t0) -> t0.com = 'x'", data_.db.schema()).ok());
  EXPECT_FALSE(ParseRee("Trans(t0) ^ t1.com = 'x' -> t0.mfg = 'y'",
                        data_.db.schema())
                   .ok());
}

TEST_F(RulesTest, ParsesRuleList) {
  auto rules = ParseRules(
      "# comment\n"
      "Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg\n"
      "\n"
      "Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'\n",
      data_.db.schema());
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].id, "r0");
}

// ---------- Evaluation semantics ----------

TEST_F(RulesTest, Phi2FindsTheManufactoryConflict) {
  // φ2: same commodity => same manufactory. Rows 3 (Huawei) and 4 (Apple)
  // share "Mate X2 (Limited Sold)" — a violation in each direction.
  Ree rule =
      Parse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg");
  Evaluator eval(Ctx());
  int violations = 0;
  eval.ForEachViolation(rule, [&](const Valuation& v) {
    EXPECT_NE(v.rows[0], v.rows[1]);
    ++violations;
    return true;
  });
  EXPECT_EQ(violations, 2);
}

TEST_F(RulesTest, Phi1IdentifiesDiscountCodeUsers) {
  // φ1: MER-matched commodities, same date + store => same person.
  // Rows 1 and 2 (IPhone 14 Discount ID/Code 41) violate: p1 vs p2.
  Ree rule = Parse(
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ t0.date = t1.date ^ "
      "t0.sid = t1.sid ^ t0.pid != t1.pid -> t0.eid = t1.eid");
  Evaluator eval(Ctx());
  int violations = 0;
  eval.ForEachViolation(rule, [&](const Valuation& v) {
    int lo = std::min(v.rows[0], v.rows[1]);
    int hi = std::max(v.rows[0], v.rows[1]);
    EXPECT_EQ(lo, 1);
    EXPECT_EQ(hi, 2);
    ++violations;
    return true;
  });
  EXPECT_EQ(violations, 2);  // both orientations
}

TEST_F(RulesTest, NullComparisonsNeverSatisfy) {
  // t5's home is null: equality against it must not hold.
  Ree rule = Parse(
      "Person(t0) ^ Person(t1) ^ t0.home = t1.home -> t0.eid = t1.eid");
  Evaluator eval(Ctx());
  eval.ForEachSatisfying(rule, [&](const Valuation& v) {
    EXPECT_NE(v.rows[0], 4);
    EXPECT_NE(v.rows[1], 4);
    return true;
  });
}

TEST_F(RulesTest, TimestampsDriveTemporalPredicates) {
  // Transactions carry dates in `date`; give rows timestamps on price and
  // check ⪯price via timestamps.
  Relation& trans = out_trans();
  for (size_t row = 0; row < trans.size(); ++row) {
    Tuple& t = trans.mutable_tuple(row);
    t.timestamps.assign(trans.schema().num_attributes(), kNoTimestamp);
    t.timestamps[4] = static_cast<int64_t>(row);  // price confirmed later
  }
  Ree rule =
      Parse("Trans(t0) ^ Trans(t1) ^ t0 <=[price] t1 -> t0 <=[price] t1");
  Evaluator eval(Ctx());
  Valuation v;
  v.rows = {0, 3};
  EXPECT_TRUE(eval.SatisfiesPrecondition(rule, v));
  v.rows = {3, 0};
  EXPECT_FALSE(eval.SatisfiesPrecondition(rule, v));
  v.rows = {2, 2};
  EXPECT_TRUE(eval.SatisfiesPrecondition(rule, v));  // reflexive for ⪯
  Ree strict =
      Parse("Trans(t0) ^ Trans(t1) ^ t0 <[price] t1 -> t0 <[price] t1");
  EXPECT_FALSE(eval.SatisfiesPrecondition(strict, v));  // irreflexive for ≺
}

TEST_F(RulesTest, Phi7ExtractsLocationFromGraph) {
  // φ7: HER + match => location = val(x.(LocationAt)). The Huawei Flagship
  // store (row 2) matches its graph vertex whose LocationAt is Beijing; its
  // stored location is already Beijing so the rule is satisfied, while the
  // Nike store (row 4, Shanghai) is satisfied via its own vertex.
  Ree rule = Parse(
      "Store(t0) ^ vertex(x0, G) ^ HER(t0, x0) ^ "
      "match(t0.location, x0.(LocationAt)) -> "
      "t0.location = val(x0.(LocationAt))");
  Evaluator eval(Ctx());
  int satisfied = 0;
  int violated = 0;
  eval.ForEachSatisfying(rule, [&](const Valuation& v) {
    if (eval.Satisfies(rule, v, rule.consequence)) {
      ++satisfied;
    } else {
      ++violated;
      // Violations are stores whose location cell is null or wrong.
    }
    return true;
  });
  EXPECT_GE(satisfied, 2);
}

TEST_F(RulesTest, CorrelationPredicateThresholds) {
  // Mate X2 co-occurs with Huawei (row 3) once and Apple (row 4) once in
  // the training relation; IPhone 13 co-occurs only with Apple.
  Ree rule = Parse(
      "Trans(t0) ^ Mc(t0[com], t0.mfg) >= 0.45 -> t0.mfg = t0.mfg");
  Evaluator eval(Ctx());
  Valuation v;
  v.rows = {0};
  EXPECT_TRUE(eval.SatisfiesPrecondition(rule, v));  // IPhone 13 -> Apple
  v.rows = {3};
  // Mate X2 -> Huawei has probability ~0.5: below a higher threshold.
  Ree tight = Parse(
      "Trans(t0) ^ Mc(t0[com], t0.mfg) >= 0.75 -> t0.mfg = t0.mfg");
  EXPECT_FALSE(eval.SatisfiesPrecondition(tight, v));
}

TEST_F(RulesTest, CountSupportMatchesManualCounts) {
  // t0.com = t1.com (distinct rows t0!=t1 not required; reflexive pairs
  // count). 5 reflexive + 2 cross pairs (rows 3,4 both ways) = 7; the
  // consequence holds on 5 reflexive pairs only.
  Ree rule =
      Parse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg");
  Evaluator eval(Ctx());
  auto [support_x, support_both] = eval.CountSupport(rule);
  EXPECT_EQ(support_x, 7u);
  EXPECT_EQ(support_both, 5u);
}

TEST_F(RulesTest, EarlyStopRespectsCallback) {
  Ree rule = Parse("Trans(t0) ^ Trans(t1) ^ t0.date = t1.date -> "
                   "t0.pid = t1.pid");
  Evaluator eval(Ctx());
  int seen = 0;
  eval.ForEachSatisfying(rule, [&](const Valuation&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3);
}

TEST_F(RulesTest, MentionsTracksMlAttributeVectors) {
  Ree rule = Parse(
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com,mfg], t1[com,mfg]) -> "
      "t0.pid = t1.pid");
  const Predicate& ml = rule.precondition[0];
  int com = data_.db.schema().relation(data_.trans).AttributeIndex("com");
  int price = data_.db.schema().relation(data_.trans).AttributeIndex("price");
  EXPECT_TRUE(ml.Mentions(0, com));
  EXPECT_TRUE(ml.Mentions(1, com));
  EXPECT_FALSE(ml.Mentions(0, price));
}

// REE++s subsume CFDs, DCs and MDs (paper §2.1 Properties): encode one of
// each and check the expected violation counts.
TEST_F(RulesTest, SubsumesCfd) {
  // CFD: Store(location='Beijing' -> area_code='010'); stores 0 and 2 are
  // in Beijing with null area codes => 2 violations.
  Ree cfd =
      Parse("Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'");
  Evaluator eval(Ctx());
  int violations = 0;
  eval.ForEachViolation(cfd, [&](const Valuation&) {
    ++violations;
    return true;
  });
  EXPECT_EQ(violations, 2);
}

TEST_F(RulesTest, SubsumesDc) {
  // DC: no two stores in the same location may have area codes that differ
  // (¬(t0.location = t1.location ∧ t0.area_code != t1.area_code)); encoded
  // with consequence t0.area_code = t1.area_code.
  Ree dc = Parse(
      "Store(t0) ^ Store(t1) ^ t0.location = t1.location -> "
      "t0.area_code = t1.area_code");
  Evaluator eval(Ctx());
  int violations = 0;
  eval.ForEachViolation(dc, [&](const Valuation&) {
    ++violations;
    return true;
  });
  // Stores 3 and 4 share Shanghai/021: consequence holds. The two Beijing
  // stores (rows 0, 2) have null area codes, so the consequence never
  // holds for the pairs (0,2), (2,0) and the reflexive pairs (0,0), (2,2):
  // 4 violations (all flagging the same missing-value defect).
  EXPECT_EQ(violations, 4);
}

TEST_F(RulesTest, SubsumesMd) {
  // MD: similar commodity descriptions (ML predicate) in the same store
  // identify the buyers — the matching-dependency shape of φ1.
  Ree md = Parse(
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ t0.sid = t1.sid -> "
      "t0.eid = t1.eid");
  Evaluator eval(Ctx());
  int violations = 0;
  eval.ForEachViolation(md, [&](const Valuation&) {
    ++violations;
    return true;
  });
  EXPECT_EQ(violations, 2);  // rows (1,2) and (2,1)
}

}  // namespace
}  // namespace rock::rules
