// Tests for the rock::obs subsystem: sharded metrics, the span ring
// buffer and RAII span nesting, and the Prometheus/JSON exporters. The
// concurrency tests run under the CI sanitizer matrix (TSan gates the
// sharded counters and the tracer's per-slot publication latches).

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/obs/exporters.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rock::obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
}

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(0.5);    // bucket 0
  hist.Observe(1.0);    // bucket 0 (<= bound)
  hist.Observe(5.0);    // bucket 1
  hist.Observe(50.0);   // bucket 2
  hist.Observe(500.0);  // +Inf bucket
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_NEAR(hist.Sum(), 556.5, 1e-6);
  std::vector<uint64_t> cumulative = hist.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 4u);
  EXPECT_EQ(cumulative[0], 2u);  // <= 1
  EXPECT_EQ(cumulative[1], 3u);  // <= 10
  EXPECT_EQ(cumulative[2], 4u);  // <= 100
  EXPECT_EQ(cumulative[3], 5u);  // +Inf == total
}

TEST(HistogramTest, ConcurrentObservations) {
  Histogram hist(LatencyBucketsSeconds());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) hist.Observe(1e-4);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(hist.Sum(), kThreads * kPerThread * 1e-4, 1e-3);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  Histogram hist({1.0, 2.0, 4.0});
  // 10 observations uniform in (0, 1]: every percentile lands in the
  // first bucket, interpolated from its (0, 1] range.
  for (int i = 0; i < 10; ++i) hist.Observe(0.5);
  EXPECT_NEAR(hist.Percentile(0.5), 0.5, 1e-9);
  EXPECT_NEAR(hist.Percentile(1.0), 1.0, 1e-9);
  // Push two observations into (2, 4]: p99 moves to the third bucket.
  hist.Observe(3.0);
  hist.Observe(3.0);
  EXPECT_GT(hist.Percentile(0.99), 2.0);
  EXPECT_LE(hist.Percentile(0.99), 4.0);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram empty({1.0});
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
  // Everything beyond the last finite bound clamps to that bound.
  Histogram overflow({1.0});
  overflow.Observe(100.0);
  EXPECT_EQ(overflow.Percentile(0.99), 1.0);
  // Free-function form over raw snapshot data.
  EXPECT_EQ(PercentileFromCumulative({}, {}, 0.5), 0.0);
  EXPECT_NEAR(PercentileFromCumulative({1.0, 2.0}, {0, 4, 4}, 0.5), 1.5,
              1e-9);
}

TEST(HistogramTest, PercentileExtremeQuantiles) {
  // Empty histogram: every quantile, including the extremes, reads 0.
  Histogram empty({1.0, 2.0});
  EXPECT_EQ(empty.Percentile(0.0), 0.0);
  EXPECT_EQ(empty.Percentile(1.0), 0.0);

  // Single finite bucket: q=0 clamps to rank 1 (the smallest observation's
  // interpolated position), q=1 reaches the bucket's upper bound, and
  // every q in between stays inside it.
  Histogram single({1.0});
  for (int i = 0; i < 8; ++i) single.Observe(0.5);
  EXPECT_NEAR(single.Percentile(0.0), 1.0 / 8, 1e-9);
  EXPECT_NEAR(single.Percentile(1.0), 1.0, 1e-9);
  EXPECT_GT(single.Percentile(0.5), 0.0);
  EXPECT_LE(single.Percentile(0.5), 1.0);

  // With observations split across buckets the extremes still bracket the
  // distribution: q=0 in the first occupied bucket, q=1 at the last
  // occupied finite bound.
  Histogram split({1.0, 2.0, 4.0});
  split.Observe(0.5);
  split.Observe(3.0);
  EXPECT_LE(split.Percentile(0.0), 1.0);
  EXPECT_NEAR(split.Percentile(1.0), 4.0, 1e-9);
}

TEST(MetricsRegistryTest, HelpTextReachesSnapshotAndExport) {
  MetricsRegistry registry;
  registry.GetCounter("rock_help_total")->Add(1);
  registry.SetHelp("rock_help_total", "Counts helpful things");
  MetricsRegistry::Snapshot snap = registry.Snap();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].help, "Counts helpful things");
  std::string text = ExportPrometheus(snap);
  EXPECT_NE(text.find("# HELP rock_help_total Counts helpful things\n"
                      "# TYPE rock_help_total counter\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SameNameSameMetric) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test_total");
  Counter* b = registry.GetCounter("test_total");
  EXPECT_EQ(a, b);
  a->Add(3);
  MetricsRegistry::Snapshot snap = registry.Snap();
  EXPECT_EQ(snap.CounterValue("test_total"), 3u);
  EXPECT_EQ(snap.CounterValue("absent"), 0u);
}

TEST(MetricsRegistryTest, PointersSurviveResetAndNewRegistrations) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stable_total");
  counter->Add(7);
  // New registrations must not invalidate the cached pointer...
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler_" + std::to_string(i));
  }
  // ...and Reset zeroes in place rather than replacing the metric.
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);
  counter->Add(1);
  EXPECT_EQ(registry.Snap().CounterValue("stable_total"), 1u);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zz_total");
  registry.GetCounter("aa_total");
  MetricsRegistry::Snapshot snap = registry.Snap();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "aa_total");
  EXPECT_EQ(snap.counters[1].name, "zz_total");
}

TEST(TracerTest, RecordsNestedSpansWithParentIds) {
  Tracer tracer(64);
  {
    ScopedSpan outer("outer", tracer);
    EXPECT_EQ(CurrentSpanId(), outer.id());
    {
      ScopedSpan inner("inner", tracer);
      EXPECT_EQ(CurrentSpanId(), inner.id());
    }
    EXPECT_EQ(CurrentSpanId(), outer.id());
  }
  EXPECT_EQ(CurrentSpanId(), 0u);

  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes first, so it is the older record.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_GE(spans[0].duration_seconds, 0.0);
  EXPECT_GE(spans[1].duration_seconds, 0.0);
}

TEST(TracerTest, AggregateByName) {
  Tracer tracer(64);
  for (int i = 0; i < 3; ++i) ScopedSpan span("repeat", tracer);
  std::map<std::string, SpanStats> stats = tracer.AggregateByName();
  ASSERT_EQ(stats.count("repeat"), 1u);
  EXPECT_EQ(stats["repeat"].count, 3u);
  EXPECT_GE(stats["repeat"].total_seconds, 0.0);
  EXPECT_GE(stats["repeat"].max_seconds, 0.0);
}

TEST(TracerTest, AggregateByNameOnEmptySnapshot) {
  Tracer tracer(64);
  std::map<std::string, SpanStats> stats = tracer.AggregateByName();
  EXPECT_TRUE(stats.empty());
  // Reset after activity must also yield an empty aggregate, not stale
  // stats.
  { ScopedSpan span("ephemeral", tracer); }
  tracer.Reset();
  EXPECT_TRUE(tracer.AggregateByName().empty());
}

TEST(TracerTest, RingOverwritesOldestAndCountsDropped) {
  Tracer tracer(4);  // already a power of two
  for (int i = 0; i < 10; ++i) ScopedSpan span("s", tracer);
  std::vector<SpanRecord> spans = tracer.Snapshot();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Oldest-first: retained ids are the last four, in order.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].id, spans[i - 1].id);
  }
  tracer.Reset();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, ConcurrentRecordAndSnapshot) {
  Tracer tracer(256);
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&tracer, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ScopedSpan span("w", tracer);
      }
    });
  }
  // Concurrent snapshots must be race-free and only ever see fully
  // published records.
  for (int i = 0; i < 50; ++i) {
    for (const SpanRecord& span : tracer.Snapshot()) {
      EXPECT_STREQ(span.name, "w");
      EXPECT_GT(span.id, 0u);
    }
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
}

TEST(TracerTest, SpanIdsUniqueAcrossThreads) {
  Tracer tracer(1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) ScopedSpan span("u", tracer);
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads) * kPerThread);
  std::set<uint64_t> ids;
  for (const SpanRecord& span : spans) ids.insert(span.id);
  EXPECT_EQ(ids.size(), spans.size());
}

TEST(TracerTest, AggregatePercentilesNearestRank) {
  Tracer tracer(256);
  // 100 synthetic spans with known durations 0.01..1.00.
  for (int i = 1; i <= 100; ++i) {
    SpanRecord record;
    record.id = tracer.NextSpanId();
    record.name = "p";
    record.duration_seconds = 0.01 * i;
    tracer.Record(record);
  }
  std::map<std::string, SpanStats> stats = tracer.AggregateByName();
  ASSERT_EQ(stats.count("p"), 1u);
  // Nearest-rank over the sorted durations: index floor(q * n).
  EXPECT_NEAR(stats["p"].p50_seconds, 0.51, 1e-9);
  EXPECT_NEAR(stats["p"].p95_seconds, 0.96, 1e-9);
  EXPECT_NEAR(stats["p"].p99_seconds, 1.00, 1e-9);
  EXPECT_NEAR(stats["p"].max_seconds, 1.00, 1e-9);
}

TEST(TracerTest, FlowConstructorStampsFlowFrom) {
  Tracer tracer(16);
  uint64_t source_id = 0;
  {
    ScopedSpan source("scheduler", tracer);
    source_id = source.id();
  }
  { ScopedSpan unit("unit", tracer, source_id); }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].flow_from, 0u);
  EXPECT_EQ(spans[1].flow_from, source_id);
}

TEST(TracerTest, ThreadNamesRegistryAndTraceIds) {
  Tracer tracer(16);
  tracer.SetThisThreadName("main");
  uint32_t other_id = 0;
  std::thread worker([&tracer, &other_id] {
    other_id = ThisThreadTraceId();
    tracer.SetThisThreadName("worker-0");
  });
  worker.join();
  EXPECT_NE(other_id, ThisThreadTraceId());
  std::map<uint32_t, std::string> names = tracer.ThreadNames();
  EXPECT_EQ(names[ThisThreadTraceId()], "main");
  EXPECT_EQ(names[other_id], "worker-0");
  // Names survive Reset (they describe threads, not spans).
  tracer.Reset();
  EXPECT_EQ(tracer.ThreadNames().size(), names.size());
}

TEST(TracerTest, CapacityFromEnv) {
  // Tests run single-threaded at this point; nothing races the env.
  ::unsetenv("ROCK_OBS_TRACE_CAPACITY");  // NOLINT(concurrency-mt-unsafe)
  EXPECT_EQ(TraceCapacityFromEnv(1024), 1024u);
  ::setenv("ROCK_OBS_TRACE_CAPACITY", "4096", 1);  // NOLINT(concurrency-mt-unsafe)
  EXPECT_EQ(TraceCapacityFromEnv(1024), 4096u);
  ::setenv("ROCK_OBS_TRACE_CAPACITY", "garbage", 1);  // NOLINT(concurrency-mt-unsafe)
  EXPECT_EQ(TraceCapacityFromEnv(1024), 1024u);
  ::setenv("ROCK_OBS_TRACE_CAPACITY", "0", 1);  // NOLINT(concurrency-mt-unsafe)
  EXPECT_EQ(TraceCapacityFromEnv(1024), 1024u);
  ::unsetenv("ROCK_OBS_TRACE_CAPACITY");  // NOLINT(concurrency-mt-unsafe)
  // Non-power-of-two env capacities round up at construction.
  Tracer tracer(TraceCapacityFromEnv(3));
  EXPECT_EQ(tracer.capacity(), 4u);
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a \"b\"\n");
  w.Key("list").BeginArray().Int(1).Int(2).EndArray();
  w.Key("nested").BeginObject().Key("x").Number(1.5).EndObject();
  w.Key("flag").Bool(true);
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a \\\"b\\\"\\n\",\"list\":[1,2],"
            "\"nested\":{\"x\":1.5},\"flag\":true}");
}

TEST(ExportersTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("rock_test_total")->Add(5);
  registry.GetGauge("rock_test_depth")->Set(-2);
  Histogram* hist = registry.GetHistogram("rock_test_seconds", {0.1, 1.0});
  hist->Observe(0.05);
  hist->Observe(0.5);
  hist->Observe(5.0);
  std::string text = ExportPrometheus(registry.Snap());
  EXPECT_NE(text.find("# TYPE rock_test_total counter\n"
                      "rock_test_total 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rock_test_depth gauge\n"
                      "rock_test_depth -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rock_test_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rock_test_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rock_test_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rock_test_seconds_count 3\n"), std::string::npos);
}

TEST(ExportersTest, JsonTelemetryShape) {
  MetricsRegistry registry;
  registry.GetCounter("c_total")->Add(2);
  Tracer tracer(16);
  { ScopedSpan span("phase", tracer); }
  std::string json =
      ExportJson(registry.Snap(), tracer.AggregateByName(), 0);
  EXPECT_NE(json.find("\"counters\":{\"c_total\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":{\"phase\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
}

TEST(ExportersTest, PromEscapes) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PromEscapeLabelValue("line1\nline2"), "line1\\nline2");
  // HELP text escapes backslash and newline but leaves quotes alone.
  EXPECT_EQ(PromEscapeHelp("a\\b \"q\"\nc"), "a\\\\b \"q\"\\nc");
}

TEST(ExportersTest, SpanSummaryFamilyWithQuantiles) {
  MetricsRegistry registry;
  Tracer tracer(16);
  SpanStats stats;
  stats.count = 50;
  stats.total_seconds = 0.5;
  stats.max_seconds = 0.05;
  stats.p50_seconds = 0.01;
  stats.p95_seconds = 0.04;
  stats.p99_seconds = 0.05;
  std::map<std::string, SpanStats> spans;
  spans["chase"] = stats;
  std::string text = ExportPrometheus(registry.Snap(), spans, 3);
  EXPECT_NE(text.find("# TYPE rock_obs_span_seconds summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("rock_obs_span_seconds{name=\"chase\","
                      "quantile=\"0.5\"} 0.01\n"),
            std::string::npos);
  EXPECT_NE(text.find("rock_obs_span_seconds{name=\"chase\","
                      "quantile=\"0.99\"} 0.05\n"),
            std::string::npos);
  EXPECT_NE(text.find("rock_obs_span_seconds_sum{name=\"chase\"} 0.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("rock_obs_span_seconds_count{name=\"chase\"} 50\n"),
            std::string::npos);
  EXPECT_NE(text.find("rock_obs_span_seconds_max{name=\"chase\"} 0.05\n"),
            std::string::npos);
  // The drop gauge is appended when the snapshot lacks it.
  EXPECT_NE(text.find("# TYPE rock_obs_dropped_spans gauge\n"
                      "rock_obs_dropped_spans 3\n"),
            std::string::npos);
}

TEST(ExportersTest, PrometheusEscapesMatchGolden) {
  // Hand-built snapshot exercising every escape the exposition format
  // defines. The golden file is what scrapers must be able to parse —
  // regenerate it only alongside a matching check_prometheus.py run.
  MetricsRegistry::Snapshot snap;
  snap.counters.push_back(
      {"rock_x_total", 5,
       "Counts x; backslash \\ then newline\nand \"quotes\""});
  snap.gauges.push_back({"rock_q", -3, ""});
  MetricsRegistry::HistogramSample hist;
  hist.name = "rock_lat_seconds";
  hist.bounds = {0.1, 1.0};
  hist.cumulative_counts = {1, 3, 4};
  hist.count = 4;
  hist.sum = 1.25;
  hist.p50 = 0.5;
  hist.p95 = 0.9;
  hist.p99 = 0.99;
  snap.histograms.push_back(hist);
  SpanStats stats;
  stats.count = 50;
  stats.total_seconds = 0.5;
  stats.max_seconds = 0.05;
  stats.p50_seconds = 0.01;
  stats.p95_seconds = 0.04;
  stats.p99_seconds = 0.05;
  std::map<std::string, SpanStats> spans;
  spans["detect \"fast\"\npass\\one"] = stats;

  std::string text = ExportPrometheus(snap, spans, 7);

  std::ifstream golden(std::string(ROCK_TEST_SRCDIR) +
                       "/golden/prometheus_escapes.txt");
  ASSERT_TRUE(golden.is_open());
  std::stringstream contents;
  contents << golden.rdbuf();
  EXPECT_EQ(text, contents.str());
}

TEST(ExportersTest, ChromeTraceEventsAndFlows) {
  SpanRecord sched;
  sched.id = 1;
  sched.name = "par.execute";
  sched.thread = 1;
  sched.start_seconds = 1.0;
  sched.duration_seconds = 0.5;
  SpanRecord unit;
  unit.id = 2;
  unit.name = "par.unit";
  unit.thread = 2;
  unit.start_seconds = 1.1;
  unit.duration_seconds = 0.2;
  unit.flow_from = 1;
  std::map<uint32_t, std::string> names{{1, "main"}, {2, "worker-0"}};

  std::string json = ExportChromeTrace({sched, unit}, names);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Metadata: process plus both named threads.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"pid\":1,\"tid\":2,"
                      "\"args\":{\"name\":\"worker-0\"}"),
            std::string::npos);
  // Complete events carry microsecond timestamps on their own threads.
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"par.execute\",\"cat\":"
                      "\"rock\",\"pid\":1,\"tid\":1,\"ts\":1000000,"
                      "\"dur\":500000"),
            std::string::npos);
  // Flow pair keyed by the destination span id: start on the scheduler
  // thread at the submit span's start, finish (bp:"e") on the worker.
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":2"),
            std::string::npos);

  // A flow whose source span fell off the ring is skipped, not dangling.
  std::string orphan = ExportChromeTrace({unit}, names);
  EXPECT_EQ(orphan.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(orphan.find("\"ph\":\"f\""), std::string::npos);
}

TEST(ObsIntegrationTest, GlobalCaptureSeesMacroSpans) {
  MetricsRegistry::Global().Reset();
  Tracer::Global().Reset();
  MetricsRegistry::Global().GetCounter("rock_obs_test_total")->Add(1);
  { ROCK_OBS_SPAN("obs_test.phase"); }
  TelemetrySnapshot snap = CaptureGlobalTelemetry();
  EXPECT_EQ(snap.metrics.CounterValue("rock_obs_test_total"), 1u);
#ifndef ROCK_OBS_DISABLE_SPANS
  ASSERT_EQ(snap.spans.count("obs_test.phase"), 1u);
  EXPECT_EQ(snap.spans["obs_test.phase"].count, 1u);
#endif
  EXPECT_NE(snap.ToJson().find("rock_obs_test_total"), std::string::npos);
  EXPECT_NE(snap.ToPrometheus().find("rock_obs_test_total"),
            std::string::npos);
}

TEST(LoggingTest, CheckStreamingPassesOnTrue) {
  // The streamed context must not evaluate when the condition holds.
  int evaluations = 0;
  ROCK_CHECK(true) << "never evaluated " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
}

TEST(LoggingTest, CheckAbortsWithContextOnFalse) {
  EXPECT_DEATH(ROCK_CHECK(1 == 2) << "rule=" << 42, "1 == 2.*rule=42");
}

TEST(LoggingTest, LogLevelParsing) {
  // SetLogLevel is exercised directly; ROCK_LOG_LEVEL is read once at
  // startup (see InitialLevel), so here we only check the setter round-trip.
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

}  // namespace
}  // namespace rock::obs
