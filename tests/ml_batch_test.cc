#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/detect/detector.h"
#include "src/ml/batch.h"
#include "src/ml/library.h"
#include "src/rules/parser.h"
#include "src/workload/ecommerce.h"

namespace rock {
namespace {

using ml::BatchScratch;
using ml::MlScoreCache;
using ml::PairBatch;
using workload::EcommerceData;
using workload::MakeEcommerceData;

// ---------------------------------------------------------------------------
// Batch-vs-scalar bitwise equivalence across model types and batch sizes.

std::vector<Value> RandomRecord(Rng& rng, int num_attrs) {
  static const char* kWords[] = {"iphone", "galaxy", "pixel", "discount",
                                 "store",  "north",  "west",  "14 pro"};
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(num_attrs));
  for (int i = 0; i < num_attrs; ++i) {
    const uint64_t kind = rng.NextBounded(10);
    if (kind == 0) {
      out.push_back(Value::Null());
    } else if (kind <= 2) {
      out.push_back(Value::Double(rng.NextDouble() * 100.0));
    } else {
      std::string s(kWords[rng.NextBounded(8)]);
      if (rng.NextBernoulli(0.5)) {
        s += " ";
        s += kWords[rng.NextBounded(8)];
      }
      if (rng.NextBernoulli(0.3)) s[rng.NextBounded(s.size())] = 'x';
      out.push_back(Value::String(std::move(s)));
    }
  }
  return out;
}

PairBatch MakeBatch(Rng& rng, size_t size, int num_attrs) {
  PairBatch batch;
  for (size_t i = 0; i < size; ++i) {
    std::vector<Value> a = RandomRecord(rng, num_attrs);
    // Half the pairs are near-duplicates so both predicate outcomes and
    // the scratch's value-reuse paths are exercised.
    std::vector<Value> b =
        rng.NextBernoulli(0.5) ? a : RandomRecord(rng, num_attrs);
    batch.Add(std::move(a), std::move(b));
  }
  return batch;
}

std::vector<std::unique_ptr<ml::PairClassifier>> AllModelTypes(
    int num_attrs) {
  std::vector<std::unique_ptr<ml::PairClassifier>> models;
  models.push_back(std::make_unique<ml::SimilarityClassifier>(0.6));

  // Trained models: labels from a threshold on the similarity signal, so
  // training sees both classes.
  Rng rng(99);
  std::vector<std::pair<std::vector<Value>, std::vector<Value>>> pairs;
  std::vector<int> labels;
  ml::SimilarityClassifier labeler(0.6);
  for (int i = 0; i < 80; ++i) {
    std::vector<Value> a = RandomRecord(rng, num_attrs);
    std::vector<Value> b =
        rng.NextBernoulli(0.5) ? a : RandomRecord(rng, num_attrs);
    labels.push_back(labeler.Score(a, b) >= 0.6 ? 1 : 0);
    pairs.emplace_back(std::move(a), std::move(b));
  }
  auto logistic = std::make_unique<ml::LogisticPairClassifier>(num_attrs);
  EXPECT_TRUE(logistic->Train(pairs, labels).ok());
  models.push_back(std::move(logistic));

  auto boosted = std::make_unique<ml::BoostedPairClassifier>(num_attrs);
  EXPECT_TRUE(boosted->Train(pairs, labels).ok());
  models.push_back(std::move(boosted));
  return models;
}

TEST(MlBatchTest, ScoreBatchMatchesScalarBitwise) {
  constexpr int kAttrs = 3;
  auto models = AllModelTypes(kAttrs);
  Rng rng(1);
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{256}}) {
    PairBatch batch = MakeBatch(rng, batch_size, kAttrs);
    for (const auto& model : models) {
      BatchScratch scratch;
      std::vector<double> scores;
      model->ScoreBatch(batch, &scratch, &scores);
      ASSERT_EQ(scores.size(), batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        // EXPECT_EQ, not NEAR: the contract is bitwise identity.
        EXPECT_EQ(scores[i], model->Score(batch.a[i], batch.b[i]))
            << "batch_size=" << batch_size << " row=" << i;
      }
      // The nullptr-scratch fallback must agree as well.
      std::vector<double> fallback;
      model->ScoreBatch(batch, nullptr, &fallback);
      EXPECT_EQ(scores, fallback);
    }
  }
}

TEST(MlBatchTest, ShuffledBatchOrderDoesNotChangeScores) {
  constexpr int kAttrs = 3;
  auto models = AllModelTypes(kAttrs);
  Rng rng(2);
  PairBatch batch = MakeBatch(rng, 64, kAttrs);

  std::vector<size_t> order(batch.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng shuffler(3);
  shuffler.Shuffle(order);
  PairBatch shuffled;
  for (size_t i : order) shuffled.Add(batch.a[i], batch.b[i]);

  for (const auto& model : models) {
    BatchScratch scratch;
    std::vector<double> scores;
    model->ScoreBatch(batch, &scratch, &scores);
    scratch.Reset();
    std::vector<double> shuffled_scores;
    model->ScoreBatch(shuffled, &scratch, &shuffled_scores);
    for (size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(shuffled_scores[i], scores[order[i]]);
    }
  }
}

TEST(MlBatchTest, ScratchMemoizesTokenizations) {
  BatchScratch scratch;
  const uint32_t id1 = scratch.InternString("apple store");
  const uint32_t id2 = scratch.InternString("apple shop");
  EXPECT_EQ(scratch.InternString("apple store"), id1);
  EXPECT_EQ(scratch.num_interned(), 2u);
  EXPECT_EQ(scratch.RawTokens(id1).size(), 2u);
  EXPECT_EQ(scratch.SortedTokens(id2).front(), "apple");
  scratch.Reset();
  EXPECT_EQ(scratch.num_interned(), 0u);
  EXPECT_EQ(scratch.InternString("other"), 0u);
}

// ---------------------------------------------------------------------------
// MlScoreCache semantics.

TEST(MlScoreCacheTest, FirstInsertWinsAndStatsTrack) {
  MlScoreCache cache;
  std::vector<Value> a = {Value::String("x")};
  std::vector<Value> b = {Value::String("y")};
  const MlScoreCache::Key key = MlScoreCache::MakeKey("m", a, b);
  EXPECT_EQ(MlScoreCache::MakeKey("m", a, b), key);
  EXPECT_FALSE(MlScoreCache::MakeKey("other", a, b) == key);
  EXPECT_FALSE(MlScoreCache::MakeKey("m", b, a) == key);

  double score = -1.0;
  EXPECT_FALSE(cache.Lookup(key, &score));
  EXPECT_FALSE(cache.Contains(key));
  cache.Insert(key, 0.25);
  cache.Insert(key, 0.75);  // loses: first insert wins
  ASSERT_TRUE(cache.Lookup(key, &score));
  EXPECT_EQ(score, 0.25);
  EXPECT_TRUE(cache.Contains(key));
  EXPECT_EQ(cache.size(), 1u);

  const MlScoreCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Contains(key));
}

TEST(MlScoreCacheTest, InsertBatchGroupsByShardAndKeepsFirst) {
  MlScoreCache cache;
  std::vector<MlScoreCache::Key> keys;
  std::vector<double> scores;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::vector<Value> a = {Value::Int(i)};
    std::vector<Value> b = {Value::Int(static_cast<int>(rng.NextBounded(50)))};
    keys.push_back(MlScoreCache::MakeKey("m", a, b));
    scores.push_back(static_cast<double>(i));
  }
  cache.InsertBatch(keys, scores);
  // Re-inserting different values must not overwrite.
  std::vector<double> other(scores.size(), -1.0);
  cache.InsertBatch(keys, other);
  for (size_t i = 0; i < keys.size(); ++i) {
    double score = -2.0;
    ASSERT_TRUE(cache.Lookup(keys[i], &score));
    // Duplicate keys keep the first batch's first occurrence.
    EXPECT_GE(score, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Detection equivalence: batched predicates must not change any report.

class MlBatchDetectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeEcommerceData();
    models_.RegisterPair("MER",
                         std::make_shared<ml::SimilarityClassifier>(0.6));
  }

  rules::EvalContext Ctx() {
    rules::EvalContext ctx;
    ctx.db = &data_.db;
    ctx.graph = &data_.graph;
    ctx.models = &models_;
    return ctx;
  }

  rules::Ree Parse(const std::string& text) {
    auto rule = rules::ParseRee(text, data_.db.schema());
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    rules::Ree out = rule.ok() ? *rule : rules::Ree{};
    out.id = "t";
    return out;
  }

  std::vector<rules::Ree> MlRules() {
    return {
        // Blocking-eligible ER rule (ML link, no equality join).
        Parse("Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) -> "
              "t0.eid = t1.eid"),
        // Equality-joined ER rule: exhaustive path with a deepest-var ML
        // predicate (warm-eligible).
        Parse("Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ "
              "t0.date = t1.date ^ t0.sid = t1.sid -> t0.eid = t1.eid"),
        // Non-ML rule rides along unchanged.
        Parse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg"),
    };
  }

  EcommerceData data_;
  ml::MlLibrary models_;
};

void ExpectSameReport(const detect::DetectionReport& x,
                      const detect::DetectionReport& y) {
  EXPECT_EQ(x.violations, y.violations);
  EXPECT_EQ(x.blocked_pairs_checked, y.blocked_pairs_checked);
  EXPECT_EQ(x.exhaustive_pairs_checked, y.exhaustive_pairs_checked);
  ASSERT_EQ(x.errors.size(), y.errors.size());
  for (size_t i = 0; i < x.errors.size(); ++i) {
    EXPECT_EQ(x.errors[i].error_class, y.errors[i].error_class);
    EXPECT_EQ(x.errors[i].rule_id, y.errors[i].rule_id);
    EXPECT_EQ(x.errors[i].cells, y.errors[i].cells);
  }
}

TEST_F(MlBatchDetectTest, BatchedDetectMatchesScalarDetect) {
  std::vector<rules::Ree> rules = MlRules();
  detect::DetectorOptions scalar;
  scalar.batch_ml_predicates = false;
  detect::ErrorDetector scalar_detector(Ctx(), scalar);
  const auto scalar_report = scalar_detector.Detect(rules);
  ASSERT_GT(scalar_report.violations, 0u);

  detect::DetectorOptions batched;
  batched.batch_ml_predicates = true;
  detect::ErrorDetector batched_detector(Ctx(), batched);
  ExpectSameReport(batched_detector.Detect(rules), scalar_report);
}

TEST_F(MlBatchDetectTest, BatchedParallelMatchesScalarAcrossWorkerCounts) {
  std::vector<rules::Ree> rules = MlRules();
  detect::DetectorOptions scalar;
  scalar.batch_ml_predicates = false;
  detect::ErrorDetector scalar_detector(Ctx(), scalar);
  const auto scalar_report = scalar_detector.DetectParallel(rules, 1,
                                                           nullptr);
  for (int workers : {1, 4}) {
    detect::DetectorOptions batched;
    batched.batch_ml_predicates = true;
    detect::ErrorDetector batched_detector(Ctx(), batched);
    ExpectSameReport(batched_detector.DetectParallel(rules, workers, nullptr),
                     scalar_report);
  }
}

TEST_F(MlBatchDetectTest, BatchedIncrementalMatchesScalar) {
  std::vector<rules::Ree> rules = MlRules();
  std::vector<std::pair<int, int64_t>> dirty;
  for (size_t row = 0; row < data_.db.relation(data_.trans).size(); row += 2) {
    dirty.emplace_back(data_.trans,
                       data_.db.relation(data_.trans).tuple(row).tid);
  }
  detect::DetectorOptions scalar;
  scalar.batch_ml_predicates = false;
  detect::ErrorDetector scalar_detector(Ctx(), scalar);
  detect::DetectorOptions batched;
  batched.batch_ml_predicates = true;
  detect::ErrorDetector batched_detector(Ctx(), batched);
  ExpectSameReport(batched_detector.DetectIncremental(rules, dirty),
                   scalar_detector.DetectIncremental(rules, dirty));
}

TEST_F(MlBatchDetectTest, PrewarmedShuffledCacheYieldsIdenticalReports) {
  // Property: the report must not depend on the order (or origin) of cache
  // entries. Seed an external cache by running parallel detection with 4
  // workers (nondeterministic arrival order), then reuse it for a serial
  // run and compare against a cold serial run.
  std::vector<rules::Ree> rules = MlRules();
  MlScoreCache shared;
  detect::DetectorOptions warm_opts;
  warm_opts.ml_cache = &shared;
  detect::ErrorDetector warmer(Ctx(), warm_opts);
  (void)warmer.DetectParallel(rules, 4, nullptr);
  EXPECT_GT(shared.size(), 0u);

  detect::ErrorDetector warm_detector(Ctx(), warm_opts);
  detect::ErrorDetector cold_detector(Ctx());
  const auto warm_report = warm_detector.Detect(rules);
  const auto cold_report = cold_detector.Detect(rules);
  ExpectSameReport(warm_report, cold_report);
  // The warmed run should have answered its ML predicates from the memo.
  const MlScoreCache::Stats stats = shared.GetStats();
  EXPECT_GT(stats.hits, 0u);
}

TEST_F(MlBatchDetectTest, WarmMlCachePopulatesAndNeverChangesSatisfies) {
  std::vector<rules::Ree> rules = MlRules();
  MlScoreCache cache;
  rules::EvalContext ctx = Ctx();
  ctx.ml_cache = &cache;
  rules::Evaluator eval(ctx);
  BatchScratch scratch;
  // Rule 1 is warm-eligible (ML predicate binds at the deepest var).
  const size_t scored = eval.WarmMlCache(rules[1], &scratch);
  EXPECT_GT(scored, 0u);
  EXPECT_EQ(cache.size(), scored);
  // Warming twice adds nothing: everything is already memoized.
  EXPECT_EQ(eval.WarmMlCache(rules[1], &scratch), 0u);

  // Satisfies answers from the memo and matches an uncached evaluator.
  rules::Evaluator uncached(Ctx());
  eval.ForEachSatisfying(rules[1], [&](const rules::Valuation& v) {
    EXPECT_TRUE(uncached.SatisfiesPrecondition(rules[1], v));
    return true;
  });
}

}  // namespace
}  // namespace rock
