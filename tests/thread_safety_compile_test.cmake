# Negative-compilation contract for the thread-safety annotations
# (src/common/thread_annotations.h): an unguarded write to a
# ROCK_GUARDED_BY field must be a COMPILE ERROR, and the properly guarded
# twin must compile cleanly. Both checks run at configure time via
# try_compile (so a broken contract fails the build immediately) and are
# also registered as ctest cases so `ctest` reports them.
#
# The analysis is Clang-only; under GCC the annotations expand to nothing
# and there is nothing to assert.
if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  return()
endif()
if(NOT ROCK_THREAD_SAFETY)
  return()
endif()

set(_tsa_fixture_dir ${CMAKE_CURRENT_SOURCE_DIR}/thread_safety_compile)
set(_tsa_flags -Wthread-safety -Werror=thread-safety)

# --- Configure-time assertions -------------------------------------------

try_compile(_tsa_good_compiles
  ${CMAKE_CURRENT_BINARY_DIR}/tsa_good_check
  SOURCES ${_tsa_fixture_dir}/good_guarded_write.cc
  COMPILE_DEFINITIONS "${_tsa_flags}"
  CMAKE_FLAGS
    "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}"
    "-DCMAKE_CXX_STANDARD=20"
  OUTPUT_VARIABLE _tsa_good_output)
if(NOT _tsa_good_compiles)
  message(FATAL_ERROR
      "thread-safety contract: the GUARDED fixture failed to compile, so "
      "the annotation macros themselves are broken:\n${_tsa_good_output}")
endif()

try_compile(_tsa_bad_compiles
  ${CMAKE_CURRENT_BINARY_DIR}/tsa_bad_check
  SOURCES ${_tsa_fixture_dir}/bad_unguarded_write.cc
  COMPILE_DEFINITIONS "${_tsa_flags}"
  CMAKE_FLAGS
    "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}"
    "-DCMAKE_CXX_STANDARD=20"
  OUTPUT_VARIABLE _tsa_bad_output)
if(_tsa_bad_compiles)
  message(FATAL_ERROR
      "thread-safety contract: an UNGUARDED write to a ROCK_GUARDED_BY "
      "field compiled — the analysis is not enforcing anything. Check "
      "that ROCK_THREAD_SAFETY flags reach try_compile.")
endif()
if(NOT _tsa_bad_output MATCHES "thread-safety")
  message(FATAL_ERROR
      "thread-safety contract: the unguarded fixture failed for a reason "
      "other than a thread-safety diagnostic:\n${_tsa_bad_output}")
endif()
message(STATUS
    "thread-safety contract: unguarded ROCK_GUARDED_BY write rejected")

# --- ctest registration ---------------------------------------------------
# -fsyntax-only keeps the ctest cases link-free and fast. The bad case
# passes iff the compiler emits a thread-safety diagnostic
# (PASS_REGULAR_EXPRESSION replaces exit-code checking).

add_test(NAME thread_safety_contract_accepts_guarded_write
  COMMAND ${CMAKE_CXX_COMPILER} -std=c++20 -I${CMAKE_SOURCE_DIR}
          ${_tsa_flags} -fsyntax-only
          ${_tsa_fixture_dir}/good_guarded_write.cc)

add_test(NAME thread_safety_contract_rejects_unguarded_write
  COMMAND ${CMAKE_CXX_COMPILER} -std=c++20 -I${CMAKE_SOURCE_DIR}
          ${_tsa_flags} -fsyntax-only
          ${_tsa_fixture_dir}/bad_unguarded_write.cc)
set_tests_properties(thread_safety_contract_rejects_unguarded_write
  PROPERTIES PASS_REGULAR_EXPRESSION "thread-safety")
