// Cross-module property tests, parameterized over applications, seeds and
// worker counts (TEST_P sweeps). These pin the invariants DESIGN.md lists:
// Church-Rosser convergence, batch ≡ incremental, serial ≡ parallel,
// rule-language round-trips, and certain-fix justification.

#include <memory>

#include <gtest/gtest.h>

#include "src/chase/chase.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/detect/detector.h"
#include "src/rules/parser.h"
#include "src/workload/generator.h"
#include "src/workload/scoring.h"

namespace rock {
namespace {

struct AppParam {
  const char* app;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const AppParam& p) {
  return os << p.app << "_seed" << p.seed;
}

workload::GeneratedData MakeData(const AppParam& param, size_t rows = 100) {
  workload::GeneratorOptions options;
  options.rows = rows;
  options.error_rate = 0.1;
  options.seed = param.seed;
  return workload::MakeAppData(param.app, options);
}

core::ModelTrainingSpec SpecFor(const std::string& app) {
  core::ModelTrainingSpec spec;
  if (app == "Bank") {
    spec.rank_targets = {{"Customer", "city"}};
    spec.monotone_attrs = {{"Customer", "points"}};
  } else if (app == "Sales") {
    spec.rank_targets = {{"Client", "discount"}};
    spec.monotone_attrs = {{"Client", "lifetime_value"}};
  } else {
    spec.path_synonyms = {{"area", {"AreaOf"}}, {"city", {"CityOf"}}};
  }
  return spec;
}

/// Canonical serialization of a chase outcome for equality comparison.
std::string FixStoreDigest(const chase::ChaseEngine& engine,
                           const Database& db) {
  std::string digest;
  for (const chase::CellFix& fix : engine.CellFixes()) {
    digest += std::to_string(fix.rel) + ":" + std::to_string(fix.tid) +
              ":" + std::to_string(fix.attr) + "=" +
              fix.new_value.ToString() + ";";
  }
  for (size_t rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& relation = db.relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      digest += std::to_string(
                    engine.fix_store().eids().Find(relation.tuple(row).eid)) +
                ",";
    }
  }
  return digest;
}

// ---------------- Church-Rosser across apps and seeds ----------------

class ChurchRosserTest : public ::testing::TestWithParam<AppParam> {};

TEST_P(ChurchRosserTest, ShuffledRuleOrdersConvergeInCertainMode) {
  // Church-Rosser is guaranteed under §4.1's condition (1): an REE++ is
  // applied only when its premises are validated by U. Relaxed "deep
  // cleaning" mode may read not-yet-repaired cells, so its outcome can
  // depend on rule order (observed empirically); the guarantee — and this
  // test — applies to certain-fix mode.
  workload::GeneratedData data = MakeData(GetParam());
  core::Rock rock(&data.db, &data.graph);
  rock.TrainModels(SpecFor(GetParam().app));
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok());

  chase::ChaseOptions options;
  options.certain_fixes_only = true;
  std::string baseline;
  Rng rng(GetParam().seed ^ 0xC0DE);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<rules::Ree> shuffled = *rules;
    rng.Shuffle(shuffled);
    chase::ChaseEngine engine(&data.db, &data.graph, rock.models(),
                              options);
    for (const auto& [rel, tid] : data.clean_tuples) {
      Status ignored = engine.fix_store().AddGroundTruthTuple(rel, tid);
      (void)ignored;
    }
    chase::ChaseResult result = engine.Run(shuffled);
    EXPECT_TRUE(result.converged);
    std::string digest = FixStoreDigest(engine, data.db);
    if (trial == 0) {
      baseline = digest;
      EXPECT_GT(result.fixes_applied, 0u);
    } else {
      EXPECT_EQ(digest, baseline) << "trial " << trial;
    }
  }
}

TEST_P(ChurchRosserTest, EveryFixIsJustifiedByARule) {
  workload::GeneratedData data = MakeData(GetParam());
  core::Rock rock(&data.db, &data.graph);
  rock.TrainModels(SpecFor(GetParam().app));
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok());
  rock.DiscoverPolynomials();

  core::CorrectionResult result;
  auto engine = rock.CorrectErrors(*rules, data.clean_tuples, &result);
  std::set<std::string> known_ids = {"Γ"};
  for (const rules::Ree& rule : *rules) known_ids.insert(rule.id);
  for (const core::PolyRule& poly : rock.poly_rules()) {
    known_ids.insert("poly_" + std::to_string(poly.rel) + "_" +
                     std::to_string(poly.expr.target_attr));
  }
  for (const chase::FixRecord& fix : engine->fix_store().fixes()) {
    EXPECT_TRUE(known_ids.count(fix.rule_id) > 0)
        << "unjustified fix: " << fix.ToString();
  }
}

TEST_P(ChurchRosserTest, CertainModeIsConservativeAndPrecise) {
  // Certain-fix mode admits a subset of rule applications: it can never
  // deduce more fixes than relaxed mode, and the fixes it does deduce are
  // backed by validated premises, so precision stays high in absolute
  // terms.
  workload::GeneratedData data = MakeData(GetParam());
  core::Rock rock(&data.db, &data.graph);
  rock.TrainModels(SpecFor(GetParam().app));
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok());

  core::RockOptions certain_options;
  certain_options.chase.certain_fixes_only = true;
  core::Rock certain_rock(&data.db, &data.graph, certain_options);
  certain_rock.TrainModels(SpecFor(GetParam().app));

  core::CorrectionResult full_result, certain_result;
  auto full = rock.CorrectErrors(*rules, data.clean_tuples, &full_result);
  auto certain = certain_rock.CorrectErrors(*rules, data.clean_tuples,
                                            &certain_result);
  (void)full;
  EXPECT_LE(certain_result.chase.fixes_applied,
            full_result.chase.fixes_applied);
  auto certain_score = workload::ScoreCorrection(data, *certain);
  EXPECT_GT(certain_score.overall.precision(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndSeeds, ChurchRosserTest,
    ::testing::Values(AppParam{"Bank", 101}, AppParam{"Bank", 202},
                      AppParam{"Logistics", 101}, AppParam{"Logistics", 303},
                      AppParam{"Sales", 101}, AppParam{"Sales", 404}));

// ---------------- Batch ≡ incremental detection ----------------

class IncrementalEquivalenceTest
    : public ::testing::TestWithParam<AppParam> {};

TEST_P(IncrementalEquivalenceTest, AllDirtyIncrementalEqualsBatch) {
  workload::GeneratedData data = MakeData(GetParam());
  core::Rock rock(&data.db, &data.graph);
  rock.TrainModels(SpecFor(GetParam().app));
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok());

  auto batch = rock.DetectErrors(*rules);
  std::vector<std::pair<int, int64_t>> everything;
  for (size_t rel = 0; rel < data.db.num_relations(); ++rel) {
    const Relation& relation = data.db.relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      everything.emplace_back(static_cast<int>(rel),
                              relation.tuple(row).tid);
    }
  }
  auto incremental = rock.DetectErrorsIncremental(*rules, everything);
  // Polynomial violations are batch-only extras; compare rule violations
  // via dirty tuples of rule-based errors.
  std::set<std::pair<int, int64_t>> batch_tuples;
  for (const auto& error : batch.errors) {
    if (error.rule_id.rfind("poly_", 0) == 0) continue;
    for (const auto& cell : error.cells) {
      batch_tuples.emplace(cell.rel, cell.tid);
    }
  }
  EXPECT_EQ(incremental.DirtyTuples(), batch_tuples);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, IncrementalEquivalenceTest,
    ::testing::Values(AppParam{"Bank", 11}, AppParam{"Logistics", 11},
                      AppParam{"Sales", 11}));

// ---------------- Serial ≡ parallel across worker counts ----------------

class ParallelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalenceTest, DetectionIndependentOfWorkerCount) {
  workload::GeneratedData data = MakeData({"Logistics", 7}, 80);
  core::Rock rock(&data.db, &data.graph);
  rock.TrainModels(SpecFor("Logistics"));
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok());

  rules::EvalContext ctx;
  ctx.db = &data.db;
  ctx.graph = &data.graph;
  ctx.models = rock.models();
  detect::ErrorDetector serial(ctx);
  auto expected = serial.Detect(*rules).DirtyCells();

  for (par::ExecutionMode mode :
       {par::ExecutionMode::kThreads, par::ExecutionMode::kSimulated}) {
    detect::DetectorOptions options;
    options.block_rows = 16;
    options.execution_mode = mode;
    detect::ErrorDetector parallel(ctx, options);
    par::ScheduleReport schedule;
    auto report = parallel.DetectParallel(*rules, GetParam(), &schedule);
    EXPECT_EQ(report.DirtyCells(), expected) << par::ExecutionModeName(mode);
    EXPECT_EQ(schedule.num_workers, GetParam());
  }
}

TEST_P(ParallelEquivalenceTest, ChaseIndependentOfWorkerCount) {
  workload::GeneratedData serial_data = MakeData({"Logistics", 7}, 80);
  core::Rock serial_rock(&serial_data.db, &serial_data.graph);
  serial_rock.TrainModels(SpecFor("Logistics"));
  auto rules = serial_rock.LoadRules(serial_data.rule_text);
  ASSERT_TRUE(rules.ok());
  chase::ChaseEngine serial_engine(&serial_data.db, &serial_data.graph,
                                   serial_rock.models());
  for (const auto& [rel, tid] : serial_data.clean_tuples) {
    Status ignored = serial_engine.fix_store().AddGroundTruthTuple(rel, tid);
    (void)ignored;
  }
  serial_engine.Run(*rules);
  std::string expected = FixStoreDigest(serial_engine, serial_data.db);

  for (par::ExecutionMode mode :
       {par::ExecutionMode::kThreads, par::ExecutionMode::kSimulated}) {
    workload::GeneratedData parallel_data = MakeData({"Logistics", 7}, 80);
    core::Rock parallel_rock(&parallel_data.db, &parallel_data.graph);
    parallel_rock.TrainModels(SpecFor("Logistics"));
    chase::ChaseEngine parallel_engine(&parallel_data.db,
                                       &parallel_data.graph,
                                       parallel_rock.models());
    for (const auto& [rel, tid] : parallel_data.clean_tuples) {
      Status ignored =
          parallel_engine.fix_store().AddGroundTruthTuple(rel, tid);
      (void)ignored;
    }
    par::ScheduleReport schedule;
    parallel_engine.RunParallel(*rules, GetParam(), /*block_rows=*/16,
                                &schedule, mode);
    EXPECT_EQ(FixStoreDigest(parallel_engine, parallel_data.db), expected)
        << par::ExecutionModeName(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ParallelEquivalenceTest,
                         ::testing::Values(1, 2, 5, 9, 16));

// ---------------- Metamorphic: execution order never matters ----------------

/// Greedy shrinker for failing fault plans: repeatedly tries dropping each
/// entry, keeping any removal after which `fails` still holds, until no
/// single entry can be removed. The result is a locally minimal plan whose
/// ToSpec() string replays the failure via ROCK_FAULT_PLAN.
par::FaultPlan ShrinkFaultPlan(
    par::FaultPlan plan,
    const std::function<bool(const par::FaultPlan&)>& fails) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (auto it = plan.crash_at_attempt.begin();
         it != plan.crash_at_attempt.end(); ++it) {
      par::FaultPlan candidate = plan;
      candidate.crash_at_attempt.erase(it->first);
      if (fails(candidate)) {
        plan = candidate;
        shrunk = true;
        break;
      }
    }
    if (shrunk) continue;
    for (auto it = plan.delay_seconds.begin(); it != plan.delay_seconds.end();
         ++it) {
      par::FaultPlan candidate = plan;
      candidate.delay_seconds.erase(it->first);
      if (fails(candidate)) {
        plan = candidate;
        shrunk = true;
        break;
      }
    }
    if (shrunk) continue;
    for (auto it = plan.transient_failures.begin();
         it != plan.transient_failures.end(); ++it) {
      par::FaultPlan candidate = plan;
      candidate.transient_failures.erase(it->first);
      if (fails(candidate)) {
        plan = candidate;
        shrunk = true;
        break;
      }
    }
  }
  return plan;
}

TEST(FaultPlanShrinkTest, ShrinkerFindsMinimalFailingPlan) {
  // Synthetic failure predicate: the "bug" triggers iff the plan delays
  // unit 3 AND fails unit 5 transiently. The shrinker must strip all noise
  // and keep exactly those two entries.
  auto fails = [](const par::FaultPlan& p) {
    return p.delay_seconds.count(3) > 0 && p.transient_failures.count(5) > 0;
  };
  par::FaultPlan noisy = par::FaultPlan::FromSeed(42, 30, 4);
  noisy.delay_seconds[3] = 0.001;
  noisy.transient_failures[5] = 2;
  ASSERT_TRUE(fails(noisy));
  par::FaultPlan minimal = ShrinkFaultPlan(noisy, fails);
  EXPECT_TRUE(fails(minimal));
  EXPECT_EQ(minimal.size(), 2u) << minimal.ToSpec();
  EXPECT_EQ(minimal.ToSpec(), "delay:3=1000us;flaky:5x2");
}

class DelayPermutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DelayPermutationTest, UnitOrderPermutationsNeverChangeChaseOutput) {
  // Metamorphic property: seeded straggler delays permute the order in
  // which workers pick up and finish units — a different interleaving of
  // the same work. Because unit buffers merge in unit order at the
  // barrier, the chase output must be invariant under every such
  // permutation. On failure, the offending plan is shrunk to a locally
  // minimal replayable spec.
  workload::GeneratedData data = MakeData({"Logistics", 7}, 80);
  core::Rock rock(&data.db, &data.graph);
  rock.TrainModels(SpecFor("Logistics"));
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok());

  auto digest_under = [&](const par::FaultPlan* plan) {
    workload::GeneratedData run_data = MakeData({"Logistics", 7}, 80);
    core::Rock run_rock(&run_data.db, &run_data.graph);
    run_rock.TrainModels(SpecFor("Logistics"));
    chase::ChaseOptions options;
    options.fault_plan = plan;
    chase::ChaseEngine engine(&run_data.db, &run_data.graph,
                              run_rock.models(), options);
    for (const auto& [rel, tid] : run_data.clean_tuples) {
      Status ignored = engine.fix_store().AddGroundTruthTuple(rel, tid);
      (void)ignored;
    }
    par::ScheduleReport schedule;
    engine.RunParallel(*rules, /*num_workers=*/4, /*block_rows=*/16,
                       &schedule, par::ExecutionMode::kThreads);
    return FixStoreDigest(engine, run_data.db);
  };
  std::string expected = digest_under(nullptr);

  // Delay-only plans: pure execution-order permutations (no retries, no
  // deaths), several per seed to vary which units straggle.
  Rng rng(GetParam() ^ 0xDE1A);
  for (int trial = 0; trial < 3; ++trial) {
    par::FaultPlan plan;
    size_t stragglers = 2 + rng.NextBounded(5);
    for (size_t i = 0; i < stragglers; ++i) {
      plan.delay_seconds[rng.NextBounded(48)] =
          0.0002 + 0.0015 * rng.NextDouble();
    }
    if (digest_under(&plan) != expected) {
      auto fails = [&](const par::FaultPlan& p) {
        return digest_under(&p) != expected;
      };
      par::FaultPlan minimal = ShrinkFaultPlan(plan, fails);
      FAIL() << "chase output changed under delay permutation; minimal "
                "replayable plan (set ROCK_FAULT_PLAN to reproduce): "
             << minimal.ToSpec();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelayPermutationTest,
                         ::testing::Values(1u, 2u, 3u));

// ---------------- Rule-language round-trips ----------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, CuratedRulesRoundTripThroughTheParser) {
  workload::GeneratedData data = MakeData({GetParam(), 5}, 40);
  auto rules = rules::ParseRules(data.rule_text, data.db.schema());
  ASSERT_TRUE(rules.ok());
  for (const rules::Ree& rule : *rules) {
    std::string printed = rule.ToString(data.db.schema());
    auto reparsed = rules::ParseRee(printed, data.db.schema());
    ASSERT_TRUE(reparsed.ok())
        << printed << " => " << reparsed.status().ToString();
    EXPECT_TRUE(rule.SameRule(*reparsed)) << printed;
  }
}

TEST_P(RoundTripTest, MinedRulesRoundTripThroughTheParser) {
  workload::GeneratedData data = MakeData({GetParam(), 5}, 60);
  core::Rock rock(&data.db, &data.graph);
  discovery::PredicateSpaceOptions space;
  space.max_constants_per_attr = 1;
  auto mined = rock.DiscoverRules(space);
  size_t checked = 0;
  for (const auto& rule : mined) {
    if (checked++ > 40) break;  // bound the sweep
    std::string printed = rule.rule.ToString(data.db.schema());
    auto reparsed = rules::ParseRee(printed, data.db.schema());
    ASSERT_TRUE(reparsed.ok())
        << printed << " => " << reparsed.status().ToString();
    EXPECT_TRUE(rule.rule.SameRule(*reparsed)) << printed;
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Apps, RoundTripTest,
                         ::testing::Values("Bank", "Logistics", "Sales"));

// ---------------- Repairs never corrupt clean ground truth ----------------

class RepairSafetyTest : public ::testing::TestWithParam<AppParam> {};

TEST_P(RepairSafetyTest, GroundTruthCellsAreNeverRewritten) {
  workload::GeneratedData data = MakeData(GetParam());
  core::Rock rock(&data.db, &data.graph);
  rock.TrainModels(SpecFor(GetParam().app));
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok());
  core::CorrectionResult result;
  auto engine = rock.CorrectErrors(*rules, data.clean_tuples, &result);
  Database repaired = engine->MaterializeRepairs();
  for (const auto& [rel, tid] : data.clean_tuples) {
    const Relation& before = data.db.relation(rel);
    const Relation& after = repaired.relation(rel);
    int row = before.RowOfTid(tid);
    ASSERT_GE(row, 0);
    for (size_t attr = 0; attr < before.schema().num_attributes(); ++attr) {
      EXPECT_EQ(after.tuple(static_cast<size_t>(row)).value(
                    static_cast<int>(attr)),
                before.tuple(static_cast<size_t>(row)).value(
                    static_cast<int>(attr)))
          << "rel " << rel << " tid " << tid << " attr " << attr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, RepairSafetyTest,
    ::testing::Values(AppParam{"Bank", 77}, AppParam{"Logistics", 77},
                      AppParam{"Sales", 77}));

}  // namespace
}  // namespace rock
