// Determinism tests for the closed-loop load generator (src/serve/loadgen.h).
//
// The contract under test: the request sequence is a pure function of
// LoadGenOptions — same seed and config, same plan, same workload-mix
// counters — and a real run against a live rockd reports non-negative
// latencies for exactly the planned measured requests.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/serve/loadgen.h"
#include "src/serve/server.h"
#include "src/workload/generator.h"

namespace rock::serve {
namespace {

bool PlansEqual(const std::vector<std::vector<PlannedRequest>>& a,
                const std::vector<std::vector<PlannedRequest>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t c = 0; c < a.size(); ++c) {
    if (a[c].size() != b[c].size()) return false;
    for (size_t i = 0; i < a[c].size(); ++i) {
      if (a[c][i].verb != b[c][i].verb || a[c][i].pick != b[c][i].pick) {
        return false;
      }
    }
  }
  return true;
}

/// Measured-phase verb counts implied by a plan — the ground truth the
/// live run's counters must match.
struct MixCounts {
  uint64_t ingest = 0, detect = 0, explain = 0, ping = 0;
};

MixCounts CountMeasured(const std::vector<std::vector<PlannedRequest>>& plans,
                        int warmup_requests) {
  MixCounts counts;
  for (const auto& plan : plans) {
    for (size_t i = static_cast<size_t>(warmup_requests); i < plan.size();
         ++i) {
      switch (plan[i].verb) {
        case Verb::kIngest: ++counts.ingest; break;
        case Verb::kDetect: ++counts.detect; break;
        case Verb::kExplain: ++counts.explain; break;
        default: ++counts.ping; break;
      }
    }
  }
  return counts;
}

TEST(ServeLoadGenTest, PlanIsAPureFunctionOfOptions) {
  LoadGenOptions options;
  options.clients = 3;
  options.warmup_requests = 5;
  options.measure_requests = 40;
  options.seed = 99;
  options.pool.resize(10);
  options.explain_targets = {{0, 1, 2}, {0, 3, 4}};

  auto first = BuildLoadPlan(options);
  auto second = BuildLoadPlan(options);
  EXPECT_TRUE(PlansEqual(first, second)) << "same options, different plans";
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].size(), 45u);

  // Clients have independent streams: client 0's plan should not simply
  // repeat as client 1's.
  EXPECT_FALSE(PlansEqual({first[0]}, {first[1]}));

  // A different seed produces a different plan.
  options.seed = 100;
  auto reseeded = BuildLoadPlan(options);
  EXPECT_FALSE(PlansEqual(first, reseeded));
}

TEST(ServeLoadGenTest, PlanHonorsDisabledVerbs) {
  LoadGenOptions options;
  options.clients = 2;
  options.warmup_requests = 0;
  options.measure_requests = 50;
  options.ingest_weight = 0;
  options.explain_weight = 0;
  options.detect_weight = 1;
  for (const auto& plan : BuildLoadPlan(options)) {
    for (const PlannedRequest& planned : plan) {
      EXPECT_EQ(planned.verb, Verb::kDetect);
    }
  }

  options.detect_weight = 0;  // nothing enabled -> pings, not a crash
  for (const auto& plan : BuildLoadPlan(options)) {
    for (const PlannedRequest& planned : plan) {
      EXPECT_EQ(planned.verb, Verb::kPing);
    }
  }
}

TEST(ServeLoadGenTest, LatencyPercentileIsNearestRank) {
  LoadReport report;
  EXPECT_EQ(report.LatencyPercentile(0.5), 0.0);  // empty: defined, zero
  report.latencies_seconds = {0.4, 0.1, 0.3, 0.2, 0.5};
  EXPECT_DOUBLE_EQ(report.LatencyPercentile(0.5), 0.3);
  EXPECT_DOUBLE_EQ(report.LatencyPercentile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(report.LatencyPercentile(1.0), 0.5);
  EXPECT_DOUBLE_EQ(report.LatencyPercentile(0.99), 0.5);
}

TEST(ServeLoadGenTest, RunLoadValidatesOptions) {
  LoadGenOptions options;
  options.clients = 0;
  EXPECT_FALSE(RunLoad(options).ok());

  options.clients = 1;
  options.ingest_weight = 1;
  options.pool.clear();
  EXPECT_FALSE(RunLoad(options).ok());
}

class LoadGenLiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::GeneratorOptions data_options;
    data_options.rows = 100;
    data_options.error_rate = 0.08;
    data_options.seed = 17;
    data_ = workload::MakeBankData(data_options);
    rock_ = std::make_unique<core::Rock>(&data_.db, &data_.graph);
    core::ModelTrainingSpec spec;
    spec.rank_targets = {{"Customer", "city"}};
    spec.monotone_attrs = {{"Customer", "points"}};
    spec.path_synonyms = {{"area", {"AreaOf"}}};
    rock_->TrainModels(spec);
    ASSERT_TRUE(rock_->ActivateRules(data_.rule_text).ok());
    auto server = RockServer::Start(rock_.get(), {});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  LoadGenOptions LiveOptions() const {
    LoadGenOptions options;
    options.port = server_->port();
    options.clients = 2;
    options.warmup_requests = 3;
    options.measure_requests = 12;
    options.seed = 7;
    options.ingest_weight = 1;
    options.detect_weight = 4;
    options.explain_weight = 1;
    options.ingest_batch_rows = 2;
    options.ingest_rel = 0;
    Tuple sample = data_.db.relation(0).tuple(0);
    sample.tid = -1;
    sample.eid = -1;
    options.pool = {sample, sample};
    // No correction pass ran, so these explain to empty proofs — which is
    // exactly the cheap read-only round trip the mix needs.
    options.explain_targets = {{0, 1, 1}, {0, 2, 1}};
    options.detect_scope = DetectScope::kSession;
    return options;
  }

  workload::GeneratedData data_;
  std::unique_ptr<core::Rock> rock_;
  std::unique_ptr<RockServer> server_;
};

TEST_F(LoadGenLiveTest, SameSeedSameMixCountersAndSaneLatencies) {
  const LoadGenOptions options = LiveOptions();
  const MixCounts planned =
      CountMeasured(BuildLoadPlan(options), options.warmup_requests);

  Result<LoadReport> first = RunLoad(options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<LoadReport> second = RunLoad(options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  // The measured mix equals the plan's mix, run after run — even though
  // the first run's ingests changed the server's database.
  EXPECT_EQ(first->ingest_requests, planned.ingest);
  EXPECT_EQ(first->detect_requests, planned.detect);
  EXPECT_EQ(first->explain_requests, planned.explain);
  EXPECT_EQ(first->ping_requests, planned.ping);
  EXPECT_EQ(second->ingest_requests, first->ingest_requests);
  EXPECT_EQ(second->detect_requests, first->detect_requests);
  EXPECT_EQ(second->explain_requests, first->explain_requests);
  EXPECT_EQ(second->error_responses, first->error_responses);
  EXPECT_EQ(first->error_responses, 0u);

  const uint64_t expected_measured = static_cast<uint64_t>(
      options.clients * options.measure_requests);
  ASSERT_EQ(first->latencies_seconds.size(), expected_measured);
  ASSERT_EQ(second->latencies_seconds.size(), expected_measured);
  for (double latency : first->latencies_seconds) {
    EXPECT_GE(latency, 0.0);
  }
  EXPECT_GT(first->throughput_rps, 0.0);
  EXPECT_GE(first->LatencyPercentile(0.99),
            first->LatencyPercentile(0.50));
}

}  // namespace
}  // namespace rock::serve
