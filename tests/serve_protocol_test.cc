// Robustness suite for the rockd wire protocol (src/serve/protocol.h).
//
// The decoder's contract: a pure function over untrusted bytes that never
// crashes, never over-reads, never allocates from an unvalidated length
// field, and never silently accepts a corrupted frame. Round-trip tests pin
// the canonical-encoding half of the contract; a seeded byte-mutation
// fuzzer and hand-crafted adversarial frames pin the rejection half.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/serve/protocol.h"

namespace rock::serve {
namespace {

bool TupleEquals(const Tuple& a, const Tuple& b) {
  return a.tid == b.tid && a.eid == b.eid && a.values == b.values &&
         a.timestamps == b.timestamps;
}

bool RequestEquals(const Request& a, const Request& b) {
  if (a.verb != b.verb || a.id != b.id) return false;
  switch (a.verb) {
    case Verb::kIngest: {
      if (a.rel != b.rel || a.tuples.size() != b.tuples.size()) return false;
      for (size_t i = 0; i < a.tuples.size(); ++i) {
        if (!TupleEquals(a.tuples[i], b.tuples[i])) return false;
      }
      return true;
    }
    case Verb::kDetect:
      return a.scope == b.scope;
    case Verb::kExplain:
      return a.explain_rel == b.explain_rel &&
             a.explain_tid == b.explain_tid &&
             a.explain_attr == b.explain_attr &&
             a.explain_max_depth == b.explain_max_depth;
    default:
      return true;
  }
}

bool ResponseEquals(const Response& a, const Response& b) {
  if (a.verb != b.verb || a.id != b.id || a.code != b.code ||
      a.error != b.error) {
    return false;
  }
  if (a.code != StatusCode::kOk) return true;  // error responses: no body
  if (a.tids != b.tids) return false;
  if (a.report.violations != b.report.violations ||
      a.report.blocked_pairs_checked != b.report.blocked_pairs_checked ||
      a.report.exhaustive_pairs_checked != b.report.exhaustive_pairs_checked ||
      a.report.errors.size() != b.report.errors.size()) {
    return false;
  }
  for (size_t i = 0; i < a.report.errors.size(); ++i) {
    if (a.report.errors[i].error_class != b.report.errors[i].error_class ||
        a.report.errors[i].rule_id != b.report.errors[i].rule_id ||
        a.report.errors[i].cells != b.report.errors[i].cells) {
      return false;
    }
  }
  return a.explain_text == b.explain_text &&
         a.explain_json == b.explain_json &&
         a.telemetry_json == b.telemetry_json;
}

Tuple SampleTuple(int64_t tid) {
  Tuple tuple;
  tuple.tid = tid;
  tuple.eid = tid * 7 + 1;
  tuple.values = {Value::Int(42), Value::String("Bridgeview"),
                  Value::Double(3.25), Value::Null(), Value::Time(170000000)};
  tuple.timestamps = {1, 2, 3, 4, 5};
  return tuple;
}

/// One representative request per verb (bodies exercising every field).
std::vector<Request> SampleRequests() {
  std::vector<Request> requests;

  Request ping;
  ping.verb = Verb::kPing;
  ping.id = 1;
  requests.push_back(ping);

  Request ingest;
  ingest.verb = Verb::kIngest;
  ingest.id = 0xDEADBEEFCAFEBABEull;
  ingest.rel = 2;
  ingest.tuples = {SampleTuple(-1), SampleTuple(99)};
  requests.push_back(ingest);

  Request detect;
  detect.verb = Verb::kDetect;
  detect.id = 3;
  detect.scope = DetectScope::kSession;
  requests.push_back(detect);

  Request explain;
  explain.verb = Verb::kExplain;
  explain.id = 4;
  explain.explain_rel = 0;
  explain.explain_tid = 123;
  explain.explain_attr = 5;
  explain.explain_max_depth = 7;
  requests.push_back(explain);

  Request telemetry;
  telemetry.verb = Verb::kTelemetry;
  telemetry.id = 5;
  requests.push_back(telemetry);

  Request shutdown;
  shutdown.verb = Verb::kShutdown;
  shutdown.id = 6;
  requests.push_back(shutdown);

  return requests;
}

/// One representative response per verb, plus an error response.
std::vector<Response> SampleResponses() {
  std::vector<Response> responses;

  Response ping;
  ping.verb = Verb::kPing;
  ping.id = 1;
  responses.push_back(ping);

  Response ingest;
  ingest.verb = Verb::kIngest;
  ingest.id = 2;
  ingest.tids = {100, 101, 102};
  responses.push_back(ingest);

  Response detect;
  detect.verb = Verb::kDetect;
  detect.id = 3;
  detect.report.violations = 17;
  detect.report.blocked_pairs_checked = 1000;
  detect.report.exhaustive_pairs_checked = 50;
  detect::ErrorRecord record;
  record.error_class = detect::ErrorClass::kConflict;
  record.rule_id = "cic-1";
  record.cells = {{0, 12, 3}, {1, 7, -1}};
  detect.report.errors = {record};
  responses.push_back(detect);

  Response explain;
  explain.verb = Verb::kExplain;
  explain.id = 4;
  explain.explain_text = "fix: Customer[12].city <- \"Chicago\"";
  explain.explain_json = "{\"rule\":\"cic-1\"}";
  responses.push_back(explain);

  Response telemetry;
  telemetry.verb = Verb::kTelemetry;
  telemetry.id = 5;
  telemetry.telemetry_json = "{\"counters\":{}}";
  responses.push_back(telemetry);

  Response error;
  error.verb = Verb::kIngest;
  error.id = 6;
  error.code = StatusCode::kInvalidArgument;
  error.error = "relation index 9 out of range";
  responses.push_back(error);

  Response shutdown;
  shutdown.verb = Verb::kShutdown;
  shutdown.id = 7;
  responses.push_back(shutdown);

  return responses;
}

// --------------------------------------------------------------------------
// Round trips: Decode(Encode(x)) == x, and re-encoding is byte-identical
// (canonical encoding — the determinism anchor for bitwise comparisons).

TEST(ServeProtocolTest, EveryRequestVerbRoundTrips) {
  for (const Request& request : SampleRequests()) {
    std::string payload = EncodeRequest(request);
    Request decoded;
    Status status = DecodeRequest(payload, &decoded);
    ASSERT_TRUE(status.ok())
        << VerbName(request.verb) << ": " << status.ToString();
    EXPECT_TRUE(RequestEquals(request, decoded)) << VerbName(request.verb);
    EXPECT_EQ(payload, EncodeRequest(decoded))
        << VerbName(request.verb) << ": re-encoding is not canonical";
  }
}

TEST(ServeProtocolTest, EveryResponseVerbRoundTrips) {
  for (const Response& response : SampleResponses()) {
    std::string payload = EncodeResponse(response);
    Response decoded;
    Status status = DecodeResponse(payload, &decoded);
    ASSERT_TRUE(status.ok())
        << VerbName(response.verb) << ": " << status.ToString();
    EXPECT_TRUE(ResponseEquals(response, decoded)) << VerbName(response.verb);
    EXPECT_EQ(payload, EncodeResponse(decoded))
        << VerbName(response.verb) << ": re-encoding is not canonical";
  }
}

TEST(ServeProtocolTest, FramedRoundTrip) {
  for (const Request& request : SampleRequests()) {
    std::string frame = EncodeFrame(EncodeRequest(request));
    Request decoded;
    ASSERT_TRUE(DecodeFramedRequest(frame, &decoded).ok());
    EXPECT_TRUE(RequestEquals(request, decoded));
  }
  for (const Response& response : SampleResponses()) {
    std::string frame = EncodeFrame(EncodeResponse(response));
    Response decoded;
    ASSERT_TRUE(DecodeFramedResponse(frame, &decoded).ok());
    EXPECT_TRUE(ResponseEquals(response, decoded));
  }
}

// --------------------------------------------------------------------------
// Adversarial frames.

TEST(ServeProtocolTest, OversizedLengthPrefixRejectedFromHeaderAlone) {
  // Header claiming a 2 GiB payload: must fail before any payload is
  // buffered — DecodeFrameHeader sees only the 12 header bytes.
  WireWriter w;
  w.U32(kFrameMagic);
  w.U32(0x80000000u);
  w.U32(0);  // CRC irrelevant: rejection happens first
  FrameHeader header;
  Status status = DecodeFrameHeader(w.bytes(), kMaxFrameBytes, &header);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);

  // One byte above the configured cap is rejected; at the cap is not.
  WireWriter above;
  above.U32(kFrameMagic);
  above.U32(1025);
  above.U32(0);
  EXPECT_FALSE(DecodeFrameHeader(above.bytes(), 1024, &header).ok());
  WireWriter at;
  at.U32(kFrameMagic);
  at.U32(1024);
  at.U32(0);
  EXPECT_TRUE(DecodeFrameHeader(at.bytes(), 1024, &header).ok());
}

TEST(ServeProtocolTest, BadMagicRejected) {
  std::string frame = EncodeFrame(EncodeRequest(SampleRequests()[0]));
  frame[0] ^= 0x01;
  Request decoded;
  EXPECT_FALSE(DecodeFramedRequest(frame, &decoded).ok());
}

TEST(ServeProtocolTest, EveryTruncationRejected) {
  for (const Request& request : SampleRequests()) {
    std::string frame = EncodeFrame(EncodeRequest(request));
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      Request decoded;
      EXPECT_FALSE(
          DecodeFramedRequest(std::string_view(frame.data(), cut), &decoded)
              .ok())
          << VerbName(request.verb) << " truncated to " << cut << " bytes";
    }
  }
}

TEST(ServeProtocolTest, TrailingBytesRejected) {
  std::string payload = EncodeRequest(SampleRequests()[1]);
  payload.push_back('\0');
  Request decoded;
  EXPECT_FALSE(DecodeRequest(payload, &decoded).ok());
}

TEST(ServeProtocolTest, KindDirectionMismatchRejected) {
  // A response payload fed to the request decoder (and vice versa).
  std::string response_payload = EncodeResponse(SampleResponses()[0]);
  Request request;
  EXPECT_FALSE(DecodeRequest(response_payload, &request).ok());
  std::string request_payload = EncodeRequest(SampleRequests()[0]);
  Response response;
  EXPECT_FALSE(DecodeResponse(request_payload, &response).ok());
}

TEST(ServeProtocolTest, BadVersionAndVerbRejected) {
  std::string payload = EncodeRequest(SampleRequests()[0]);
  std::string bad_version = payload;
  bad_version[0] = static_cast<char>(kProtocolVersion + 1);
  Request decoded;
  EXPECT_FALSE(DecodeRequest(bad_version, &decoded).ok());

  std::string bad_verb = payload;
  bad_verb[2] = static_cast<char>(0x7F);
  EXPECT_FALSE(DecodeRequest(bad_verb, &decoded).ok());
}

TEST(ServeProtocolTest, HugeRepeatedFieldCountRejectedBeforeAllocation) {
  // An ingest request whose tuple count claims 400M entries in a payload
  // of a few dozen bytes. WireReader::Count rejects it against the bytes
  // remaining, so the decoder never reserves for it (under ASan this would
  // OOM or crash if it did).
  WireWriter w;
  w.U8(kProtocolVersion);
  w.U8(0);  // request
  w.U8(static_cast<uint8_t>(Verb::kIngest));
  w.U64(1);
  w.I32(0);            // rel
  w.U32(0x18000000u);  // tuple count: ~400M
  Request decoded;
  Status status = DecodeRequest(w.bytes(), &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("count"), std::string::npos)
      << status.ToString();

  // Same for a tuple's inner value count and an ingest-response tid count.
  WireWriter inner;
  inner.U8(kProtocolVersion);
  inner.U8(1);  // response
  inner.U8(static_cast<uint8_t>(Verb::kIngest));
  inner.U64(1);
  inner.U8(static_cast<uint8_t>(StatusCode::kOk));
  inner.Str("");
  inner.U32(0xFFFFFFFFu);  // tid count
  Response response;
  EXPECT_FALSE(DecodeResponse(inner.bytes(), &response).ok());
}

TEST(ServeProtocolTest, CorruptedPayloadCaughtByCrc) {
  std::string frame = EncodeFrame(EncodeRequest(SampleRequests()[1]));
  // Flip one bit in every payload position; the CRC must catch each one.
  for (size_t i = kFrameHeaderBytes; i < frame.size(); ++i) {
    std::string corrupt = frame;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x10);
    Request decoded;
    EXPECT_FALSE(DecodeFramedRequest(corrupt, &decoded).ok())
        << "bit flip at offset " << i << " accepted";
  }
}

// --------------------------------------------------------------------------
// Seeded fuzzers. Deterministic (fixed seed, rock::Rng) so a failure is
// reproducible; run under ASan/TSan in CI, where an over-read or wild
// allocation is a hard failure, not a flake.

TEST(ServeProtocolTest, SeededByteMutationFuzzerNeverAcceptsCorruption) {
  Rng rng(0xF00DF00Dull);
  std::vector<std::string> frames;
  for (const Request& request : SampleRequests()) {
    frames.push_back(EncodeFrame(EncodeRequest(request)));
  }
  for (const Response& response : SampleResponses()) {
    frames.push_back(EncodeFrame(EncodeResponse(response)));
  }

  constexpr int kIterations = 4000;
  for (int iter = 0; iter < kIterations; ++iter) {
    const std::string& original = frames[rng.NextBounded(frames.size())];
    std::string mutated = original;
    const int mutations = static_cast<int>(rng.NextBounded(4)) + 1;
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBounded(mutated.size());
      mutated[pos] = static_cast<char>(rng.NextBounded(256));
    }
    // The decoder must return an error status for any actual corruption;
    // an OK decode is legitimate only if the mutations happened to write
    // back the original bytes.
    Request request;
    if (DecodeFramedRequest(mutated, &request).ok()) {
      EXPECT_EQ(mutated, original)
          << "iteration " << iter << ": corrupted request frame accepted";
    }
    Response response;
    if (DecodeFramedResponse(mutated, &response).ok()) {
      EXPECT_EQ(mutated, original)
          << "iteration " << iter << ": corrupted response frame accepted";
    }
  }
}

TEST(ServeProtocolTest, SeededGarbageFuzzerNeverCrashes) {
  Rng rng(0xBADC0DEull);
  constexpr int kIterations = 2000;
  for (int iter = 0; iter < kIterations; ++iter) {
    std::string garbage(rng.NextBounded(256), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    // Half the iterations get a valid magic so the fuzz reaches the
    // length/CRC/payload layers instead of dying on the first 4 bytes.
    if (garbage.size() >= 4 && rng.NextBounded(2) == 0) {
      garbage[0] = 'R';
      garbage[1] = 'O';
      garbage[2] = 'C';
      garbage[3] = 'K';
    }
    Request request;
    EXPECT_FALSE(DecodeFramedRequest(garbage, &request).ok());
    Response response;
    EXPECT_FALSE(DecodeFramedResponse(garbage, &response).ok());
  }
}

TEST(ServeProtocolTest, SeededTruncationFuzzerOnLargeIngest) {
  // A bigger ingest frame (many tuples) cut at random offsets: exercises
  // truncation deep inside nested repeated fields.
  Request ingest;
  ingest.verb = Verb::kIngest;
  ingest.id = 77;
  ingest.rel = 1;
  for (int i = 0; i < 64; ++i) ingest.tuples.push_back(SampleTuple(i));
  const std::string frame = EncodeFrame(EncodeRequest(ingest));

  Rng rng(0x5EEDull);
  for (int iter = 0; iter < 1000; ++iter) {
    const size_t cut = rng.NextBounded(frame.size());
    Request decoded;
    EXPECT_FALSE(
        DecodeFramedRequest(std::string_view(frame.data(), cut), &decoded)
            .ok())
        << "cut at " << cut;
  }
}

TEST(ServeProtocolTest, VerbNamesAreStable) {
  EXPECT_STREQ(VerbName(Verb::kPing), "ping");
  EXPECT_STREQ(VerbName(Verb::kIngest), "ingest");
  EXPECT_STREQ(VerbName(Verb::kDetect), "detect");
  EXPECT_STREQ(VerbName(Verb::kExplain), "explain");
  EXPECT_STREQ(VerbName(Verb::kTelemetry), "telemetry");
  EXPECT_STREQ(VerbName(Verb::kShutdown), "shutdown");
  Verb verb;
  EXPECT_TRUE(VerbFromByte(0, &verb));
  EXPECT_TRUE(VerbFromByte(5, &verb));
  EXPECT_FALSE(VerbFromByte(6, &verb));
  EXPECT_FALSE(VerbFromByte(255, &verb));
}

}  // namespace
}  // namespace rock::serve
