#include <set>

#include <gtest/gtest.h>

#include "src/crystal/hash_ring.h"
#include "src/crystal/object_store.h"
#include "src/kg/graph.h"

namespace rock {
namespace {

// ---------- Knowledge graph ----------

TEST(KnowledgeGraphTest, VerticesAndEdges) {
  kg::KnowledgeGraph g;
  auto a = g.AddVertex("A");
  auto b = g.AddVertex("B");
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_TRUE(g.HasVertex(a));
  EXPECT_FALSE(g.HasVertex(99));
  ASSERT_TRUE(g.AddEdge(a, "rel", b).ok());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Neighbors(a, "rel"), std::vector<kg::VertexId>{b});
  EXPECT_TRUE(g.Neighbors(a, "other").empty());
  EXPECT_EQ(g.AddEdge(a, "rel", 99).code(), StatusCode::kOutOfRange);
}

TEST(KnowledgeGraphTest, PathMatchingMultiHop) {
  kg::KnowledgeGraph g;
  auto store = g.AddVertex("Store");
  auto city = g.AddVertex("Beijing");
  auto country = g.AddVertex("China");
  ASSERT_TRUE(g.AddEdge(store, "LocationAt", city).ok());
  ASSERT_TRUE(g.AddEdge(city, "InCountry", country).ok());
  EXPECT_TRUE(g.HasPath(store, {"LocationAt"}));
  EXPECT_TRUE(g.HasPath(store, {"LocationAt", "InCountry"}));
  EXPECT_FALSE(g.HasPath(store, {"InCountry"}));
  auto terminals = g.MatchPath(store, {"LocationAt", "InCountry"});
  ASSERT_EQ(terminals.size(), 1u);
  EXPECT_EQ(g.Label(terminals[0]), "China");
}

TEST(KnowledgeGraphTest, ValueAtPathDeterministicOnBranching) {
  kg::KnowledgeGraph g;
  auto root = g.AddVertex("root");
  auto z = g.AddVertex("zeta");
  auto a = g.AddVertex("alpha");
  ASSERT_TRUE(g.AddEdge(root, "p", z).ok());
  ASSERT_TRUE(g.AddEdge(root, "p", a).ok());
  // Lexicographically-least terminal keeps the chase deterministic.
  auto value = g.ValueAtPath(root, {"p"});
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsString(), "alpha");
  EXPECT_EQ(g.ValueAtPath(root, {"nope"}).status().code(),
            StatusCode::kNotFound);
}

TEST(KnowledgeGraphTest, EmptyPathMatchesSelf) {
  kg::KnowledgeGraph g;
  auto v = g.AddVertex("self");
  auto terminals = g.MatchPath(v, {});
  ASSERT_EQ(terminals.size(), 1u);
  EXPECT_EQ(terminals[0], v);
}

TEST(KnowledgeGraphTest, LabelIndex) {
  kg::KnowledgeGraph g;
  auto a = g.AddVertex("dup");
  auto b = g.AddVertex("dup");
  g.AddVertex("other");
  auto found = g.FindByLabel("dup");
  EXPECT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0], a);
  EXPECT_EQ(found[1], b);
  EXPECT_TRUE(g.FindByLabel("missing").empty());
}

// ---------- Consistent-hash ring ----------

TEST(HashRingTest, EmptyRingFails) {
  crystal::HashRing ring;
  EXPECT_EQ(ring.Locate("key").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HashRingTest, AddRemoveNodes) {
  crystal::HashRing ring;
  ASSERT_TRUE(ring.AddNode("10.0.0.1").ok());
  EXPECT_EQ(ring.AddNode("10.0.0.1").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(ring.AddNode("10.0.0.2").ok());
  EXPECT_EQ(ring.num_nodes(), 2u);
  ASSERT_TRUE(ring.RemoveNode("10.0.0.1").ok());
  EXPECT_EQ(ring.RemoveNode("10.0.0.1").code(), StatusCode::kNotFound);
  EXPECT_EQ(ring.num_nodes(), 1u);
}

TEST(HashRingTest, LookupsAreDeterministic) {
  crystal::HashRing ring;
  ASSERT_TRUE(ring.AddNode("a").ok());
  ASSERT_TRUE(ring.AddNode("b").ok());
  ASSERT_TRUE(ring.AddNode("c").ok());
  for (int i = 0; i < 50; ++i) {
    std::string key = "key-" + std::to_string(i);
    auto first = ring.Locate(key);
    auto second = ring.Locate(key);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(*first, *second);
  }
}

TEST(HashRingTest, LoadRoughlyBalanced) {
  crystal::HashRing ring(/*virtual_nodes=*/128);
  for (int n = 0; n < 4; ++n) {
    ASSERT_TRUE(ring.AddNode("node-" + std::to_string(n)).ok());
  }
  std::map<std::string, int> counts;
  const int kKeys = 4000;
  for (int i = 0; i < kKeys; ++i) {
    auto owner = ring.Locate("key-" + std::to_string(i));
    ASSERT_TRUE(owner.ok());
    counts[*owner]++;
  }
  for (const auto& [node, count] : counts) {
    // Within a generous band around the fair share of 1000.
    EXPECT_GT(count, 500) << node;
    EXPECT_LT(count, 1700) << node;
  }
}

TEST(HashRingTest, MinimalRemappingOnMembershipChange) {
  crystal::HashRing ring(128);
  ASSERT_TRUE(ring.AddNode("a").ok());
  ASSERT_TRUE(ring.AddNode("b").ok());
  ASSERT_TRUE(ring.AddNode("c").ok());
  const int kKeys = 3000;
  std::vector<std::string> before(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    before[i] = *ring.Locate("key-" + std::to_string(i));
  }
  ASSERT_TRUE(ring.AddNode("d").ok());
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (*ring.Locate("key-" + std::to_string(i)) != before[i]) ++moved;
  }
  // Expected ~ K/n = 750; consistent hashing keeps it near that, far from
  // the ~2/3 a mod-hash would remap.
  EXPECT_LT(moved, kKeys / 2);
  EXPECT_GT(moved, kKeys / 10);
}

// ---------- Object store ----------

TEST(ObjectStoreTest, PutGetRoundTrip) {
  crystal::ObjectStore store(64, /*block_size=*/8);
  ASSERT_TRUE(store.AddNode("n1").ok());
  ASSERT_TRUE(store.AddNode("n2").ok());
  std::string payload = "The quick brown fox jumps over the lazy dog";
  ASSERT_TRUE(store.Put("doc", payload).ok());
  auto loaded = store.Get("doc");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, payload);
  EXPECT_EQ(store.num_objects(), 1u);
}

TEST(ObjectStoreTest, BlocksSpreadAcrossNodes) {
  crystal::ObjectStore store(64, /*block_size=*/4);
  ASSERT_TRUE(store.AddNode("n1").ok());
  ASSERT_TRUE(store.AddNode("n2").ok());
  ASSERT_TRUE(store.AddNode("n3").ok());
  ASSERT_TRUE(store.Put("big", std::string(400, 'x')).ok());  // 100 blocks
  size_t total = store.BlocksOnNode("n1") + store.BlocksOnNode("n2") +
                 store.BlocksOnNode("n3");
  EXPECT_EQ(total, 100u);
  EXPECT_GT(store.BlocksOnNode("n1"), 0u);
  EXPECT_GT(store.BlocksOnNode("n2"), 0u);
  EXPECT_GT(store.BlocksOnNode("n3"), 0u);
}

TEST(ObjectStoreTest, GetAfterNodeRemovalStillWorks) {
  crystal::ObjectStore store(64, 16);
  ASSERT_TRUE(store.AddNode("n1").ok());
  ASSERT_TRUE(store.AddNode("n2").ok());
  std::string payload(300, 'y');
  ASSERT_TRUE(store.Put("doc", payload).ok());
  auto stats = store.RemoveNode("n2");
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->remapped_blocks, 0u);
  auto loaded = store.Get("doc");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, payload);
  EXPECT_EQ(store.BlocksOnNode("n2"), 0u);
}

TEST(ObjectStoreTest, RebalanceMovesMinority) {
  crystal::ObjectStore store(128, 16);
  ASSERT_TRUE(store.AddNode("n1").ok());
  ASSERT_TRUE(store.AddNode("n2").ok());
  ASSERT_TRUE(store.AddNode("n3").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Put("o" + std::to_string(i),
                          std::string(64, 'z')).ok());
  }
  auto stats = store.AddNodeWithRebalance("n4");
  ASSERT_TRUE(stats.ok());
  // Roughly 1/4 of blocks move to the new node.
  EXPECT_LT(stats->remap_ratio(), 0.5);
  EXPECT_GT(stats->remap_ratio(), 0.05);
  // Everything still readable.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(store.Get("o" + std::to_string(i)).ok());
  }
}

TEST(ObjectStoreTest, DeleteAndOverwrite) {
  crystal::ObjectStore store(64, 8);
  ASSERT_TRUE(store.AddNode("n1").ok());
  ASSERT_TRUE(store.Put("doc", "version-1").ok());
  ASSERT_TRUE(store.Put("doc", "v2").ok());  // replace
  auto loaded = store.Get("doc");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, "v2");
  ASSERT_TRUE(store.Delete("doc").ok());
  EXPECT_EQ(store.Get("doc").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Delete("doc").code(), StatusCode::kNotFound);
}

TEST(MetadataDirectoryTest, RegisterLookupUnregister) {
  crystal::MetadataDirectory directory;
  directory.Register("obj", 0, "n1");
  directory.Register("obj", 1, "n2");
  directory.Register("other", 0, "n3");
  auto node = directory.Lookup("obj", 1);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, "n2");
  auto placements = directory.Placements("obj");
  ASSERT_EQ(placements.size(), 2u);
  EXPECT_EQ(placements[0].second, "n1");
  directory.Unregister("obj");
  EXPECT_FALSE(directory.Lookup("obj", 0).ok());
  EXPECT_TRUE(directory.Lookup("other", 0).ok());
}

}  // namespace
}  // namespace rock
