#include <gtest/gtest.h>

#include "src/storage/dictionary.h"
#include "src/storage/relation.h"
#include "src/storage/schema.h"
#include "src/storage/stats.h"
#include "src/storage/value.h"

namespace rock {
namespace {

Schema PersonSchema() {
  return Schema("Person", {{"name", ValueType::kString},
                           {"age", ValueType::kInt},
                           {"salary", ValueType::kDouble},
                           {"joined", ValueType::kTime}});
}

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "null");
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Time(100).AsTime(), 100);
}

TEST(ValueTest, IntDoubleCrossComparison) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_LT(Value::Int(3), Value::Double(3.5));
  EXPECT_TRUE(Value::Int(3).ComparableWith(Value::Double(1.0)));
  EXPECT_FALSE(Value::Int(3).ComparableWith(Value::String("3")));
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Null(), Value::String(""));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::String("abc").Hash(), Value::String("abd").Hash());
  // Time and int with the same payload are distinct values.
  EXPECT_NE(Value::Time(5), Value::Int(5));
}

TEST(ValueTest, ParseRoundTrips) {
  auto i = Value::Parse("42", ValueType::kInt);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->AsInt(), 42);
  auto d = Value::Parse("3.25", ValueType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->AsDouble(), 3.25);
  auto s = Value::Parse(" hello ", ValueType::kString);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->AsString(), "hello");
  auto n = Value::Parse("", ValueType::kInt);
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(n->is_null());
}

TEST(ValueTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Value::Parse("12x", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("1.2.3", ValueType::kDouble).ok());
}

TEST(SchemaTest, AttributeLookup) {
  Schema s = PersonSchema();
  EXPECT_EQ(s.AttributeIndex("age"), 1);
  EXPECT_EQ(s.AttributeIndex("missing"), -1);
  EXPECT_EQ(s.AttributeType(2), ValueType::kDouble);
  EXPECT_EQ(s.AttributeName(0), "name");
}

TEST(DatabaseSchemaTest, RejectsDuplicateRelations) {
  DatabaseSchema db;
  EXPECT_TRUE(db.AddRelation(PersonSchema()).ok());
  Status s = db.AddRelation(PersonSchema());
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db.RelationIndex("Person"), 0);
  EXPECT_EQ(db.RelationIndex("Nope"), -1);
}

TEST(RelationTest, AppendChecksArity) {
  Relation rel(PersonSchema());
  Tuple t;
  t.values = {Value::String("a"), Value::Int(1)};
  EXPECT_EQ(rel.Append(std::move(t)).code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, AppendChecksTypes) {
  Relation rel(PersonSchema());
  Tuple t;
  t.values = {Value::String("a"), Value::String("not-an-int"),
              Value::Double(1.0), Value::Time(0)};
  EXPECT_EQ(rel.Append(std::move(t)).code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, IntPromotesToDoubleColumn) {
  Relation rel(PersonSchema());
  Tuple t;
  t.values = {Value::String("a"), Value::Int(30), Value::Int(1000),
              Value::Time(0)};
  EXPECT_TRUE(rel.Append(std::move(t)).ok());
}

TEST(RelationTest, NullAllowedEverywhere) {
  Relation rel(PersonSchema());
  Tuple t;
  t.values = {Value::Null(), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_TRUE(rel.Append(std::move(t)).ok());
}

TEST(DatabaseTest, InsertAssignsGlobalTids) {
  DatabaseSchema schema;
  ASSERT_TRUE(schema.AddRelation(PersonSchema()).ok());
  ASSERT_TRUE(schema
                  .AddRelation(Schema(
                      "Store", {{"name", ValueType::kString}}))
                  .ok());
  Database db(std::move(schema));

  Tuple p;
  p.values = {Value::String("ann"), Value::Int(30), Value::Double(1.0),
              Value::Time(0)};
  auto tid1 = db.Insert(0, p);
  ASSERT_TRUE(tid1.ok());
  Tuple s;
  s.values = {Value::String("shop")};
  auto tid2 = db.Insert(1, s);
  ASSERT_TRUE(tid2.ok());
  EXPECT_NE(*tid1, *tid2);
  EXPECT_EQ(db.TotalTuples(), 2u);
  // Default EID = tid.
  EXPECT_EQ(db.relation(0).tuple(0).eid, *tid1);
}

TEST(DatabaseTest, RowOfTid) {
  DatabaseSchema schema;
  ASSERT_TRUE(schema.AddRelation(PersonSchema()).ok());
  Database db(std::move(schema));
  for (int i = 0; i < 5; ++i) {
    Tuple t;
    t.values = {Value::String("p" + std::to_string(i)), Value::Int(i),
                Value::Double(0), Value::Time(0)};
    ASSERT_TRUE(db.Insert(0, t).ok());
  }
  const Relation& rel = db.relation(0);
  for (size_t row = 0; row < rel.size(); ++row) {
    EXPECT_EQ(rel.RowOfTid(rel.tuple(row).tid), static_cast<int>(row));
  }
  EXPECT_EQ(rel.RowOfTid(999), -1);
}

TEST(DatabaseTest, FindRelationByName) {
  DatabaseSchema schema;
  ASSERT_TRUE(schema.AddRelation(PersonSchema()).ok());
  Database db(std::move(schema));
  EXPECT_NE(db.FindRelation("Person"), nullptr);
  EXPECT_EQ(db.FindRelation("Ghost"), nullptr);
}

TEST(TupleTest, TimestampsDefaultUndefined) {
  Tuple t;
  t.values = {Value::Int(1)};
  EXPECT_EQ(t.timestamp(0), kNoTimestamp);
  t.timestamps = {100};
  EXPECT_EQ(t.timestamp(0), 100);
}

Relation SmallRelation() {
  Relation rel(Schema("T", {{"city", ValueType::kString},
                            {"pop", ValueType::kInt}}));
  auto add = [&rel](const char* city, int64_t pop) {
    Tuple t;
    t.values = {city ? Value::String(city) : Value::Null(), Value::Int(pop)};
    Status s = rel.Append(std::move(t));
    EXPECT_TRUE(s.ok());
  };
  add("beijing", 10);
  add("shanghai", 20);
  add("beijing", 10);
  add(nullptr, 30);
  return rel;
}

TEST(DictionaryTest, EncodesAndDecodes) {
  Relation rel = SmallRelation();
  auto dict = DictionaryEncodedRelation::Build(rel);
  EXPECT_EQ(dict.num_rows(), 4u);
  // city: null, beijing, shanghai => 3 distinct codes.
  EXPECT_EQ(dict.NumDistinct(0), 3u);
  // Rows 0 and 2 share the same code for "beijing".
  EXPECT_EQ(dict.CodeAt(0, 0), dict.CodeAt(2, 0));
  EXPECT_NE(dict.CodeAt(0, 0), dict.CodeAt(1, 0));
  // Null gets code 0.
  EXPECT_EQ(dict.CodeAt(3, 0), 0u);
  EXPECT_TRUE(dict.Decode(0, 0).is_null());
}

TEST(DictionaryTest, PostingsGroupRows) {
  Relation rel = SmallRelation();
  auto dict = DictionaryEncodedRelation::Build(rel);
  uint32_t beijing = dict.CodeAt(0, 0);
  const auto& rows = dict.RowsWithCode(0, beijing);
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 2}));
}

TEST(DictionaryTest, EncodeLookup) {
  Relation rel = SmallRelation();
  auto dict = DictionaryEncodedRelation::Build(rel);
  int64_t code = dict.Encode(0, Value::String("shanghai"));
  ASSERT_GE(code, 0);
  EXPECT_EQ(dict.Decode(0, static_cast<uint32_t>(code)).AsString(),
            "shanghai");
  EXPECT_EQ(dict.Encode(0, Value::String("tokyo")), -1);
  EXPECT_EQ(dict.Encode(0, Value::Null()), 0);
}

TEST(StringInternerTest, DedupsAndAssignsDenseIds) {
  StringInterner interner;
  EXPECT_EQ(interner.size(), 0u);
  const uint32_t apple = interner.Intern("apple");
  const uint32_t pear = interner.Intern("pear");
  EXPECT_EQ(apple, 0u);
  EXPECT_EQ(pear, 1u);
  // Re-interning (including via a non-owning view) returns the same id.
  std::string owned = "apple";
  EXPECT_EQ(interner.Intern(std::string_view(owned)), apple);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.Lookup(apple), "apple");
  EXPECT_EQ(interner.Lookup(pear), "pear");

  interner.Clear();
  EXPECT_EQ(interner.size(), 0u);
  EXPECT_EQ(interner.Intern("pear"), 0u);
}

TEST(StringInternerTest, IdsStableAcrossRehash) {
  StringInterner interner;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(interner.Intern("key-" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.Lookup(ids[static_cast<size_t>(i)]),
              "key-" + std::to_string(i));
    EXPECT_EQ(interner.Intern("key-" + std::to_string(i)),
              ids[static_cast<size_t>(i)]);
  }
}

TEST(StatsTest, CountsAndMoments) {
  Relation rel = SmallRelation();
  ColumnStats city = ComputeColumnStats(rel, 0);
  EXPECT_EQ(city.num_rows, 4u);
  EXPECT_EQ(city.num_nulls, 1u);
  EXPECT_EQ(city.num_distinct, 2u);  // distinct non-null values
  EXPECT_FALSE(city.signature.empty());

  ColumnStats pop = ComputeColumnStats(rel, 1);
  EXPECT_EQ(pop.num_nulls, 0u);
  EXPECT_DOUBLE_EQ(pop.mean, 17.5);
  EXPECT_DOUBLE_EQ(pop.min, 10);
  EXPECT_DOUBLE_EQ(pop.max, 30);
  EXPECT_TRUE(pop.signature.empty());
}

TEST(StatsTest, TopValuesOrdered) {
  Relation rel = SmallRelation();
  ColumnStats city = ComputeColumnStats(rel, 0);
  ASSERT_FALSE(city.top_values.empty());
  EXPECT_EQ(city.top_values[0].first.AsString(), "beijing");
  EXPECT_EQ(city.top_values[0].second, 2u);
}

TEST(StatsTest, SignatureSimilarityDetectsSameDomain) {
  Relation a(Schema("A", {{"addr", ValueType::kString}}));
  Relation b(Schema("B", {{"address", ValueType::kString}}));
  Relation c(Schema("C", {{"sku", ValueType::kString}}));
  for (int i = 0; i < 50; ++i) {
    std::string street = "street " + std::to_string(i % 10) + " beijing road";
    Tuple ta;
    ta.values = {Value::String(street)};
    ASSERT_TRUE(a.Append(std::move(ta)).ok());
    Tuple tb;
    tb.values = {Value::String(street)};
    ASSERT_TRUE(b.Append(std::move(tb)).ok());
    Tuple tc;
    tc.values = {Value::String("sku-" + std::to_string(i * 977))};
    ASSERT_TRUE(c.Append(std::move(tc)).ok());
  }
  ColumnStats sa = ComputeColumnStats(a, 0);
  ColumnStats sb = ComputeColumnStats(b, 0);
  ColumnStats sc = ComputeColumnStats(c, 0);
  EXPECT_GT(DatabaseStats::SignatureSimilarity(sa, sb), 0.9);
  EXPECT_LT(DatabaseStats::SignatureSimilarity(sa, sc), 0.5);
}

TEST(DatabaseStatsTest, ComputesAllColumns) {
  DatabaseSchema schema;
  ASSERT_TRUE(schema.AddRelation(PersonSchema()).ok());
  Database db(std::move(schema));
  Tuple t;
  t.values = {Value::String("ann"), Value::Int(30), Value::Double(9.5),
              Value::Time(1000)};
  ASSERT_TRUE(db.Insert(0, t).ok());
  DatabaseStats stats = DatabaseStats::Compute(db);
  EXPECT_EQ(stats.Get(0, 1).num_rows, 1u);
  EXPECT_DOUBLE_EQ(stats.Get(0, 3).mean, 1000.0);
}

}  // namespace
}  // namespace rock
