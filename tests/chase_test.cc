#include <memory>

#include <gtest/gtest.h>

#include "src/chase/chase.h"
#include "src/chase/fix_store.h"
#include "src/common/mutex.h"
#include "src/common/rng.h"
#include "src/ml/correlation.h"
#include "src/ml/her.h"
#include "src/ml/library.h"
#include "src/rules/parser.h"
#include "src/workload/ecommerce.h"

namespace rock::chase {
namespace {

using rules::ParseRee;
using rules::ParseRules;
using rules::Ree;
using workload::EcommerceData;
using workload::MakeEcommerceData;

TEST(UnionFindTest, FindDefaultsToSelf) {
  UnionFind uf;
  EXPECT_EQ(uf.Find(7), 7);
}

TEST(UnionFindTest, UnionPicksSmallestCanonical) {
  UnionFind uf;
  EXPECT_EQ(uf.Union(5, 3), 3);
  EXPECT_EQ(uf.Find(5), 3);
  EXPECT_EQ(uf.Union(5, 1), 1);
  EXPECT_EQ(uf.Find(3), 1);
  EXPECT_EQ(uf.Find(5), 1);
}

TEST(UnionFindTest, MergeOrderIndependent) {
  // The canonical id of a class is its minimum regardless of merge order.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> orders = {
      {{9, 4}, {4, 6}, {6, 2}},
      {{6, 2}, {9, 4}, {4, 6}},
      {{4, 6}, {6, 2}, {2, 9}},
  };
  for (auto& merges : orders) {
    UnionFind uf;
    for (auto& [a, b] : merges) uf.Union(a, b);
    EXPECT_EQ(uf.Find(9), 2);
    EXPECT_EQ(uf.Find(4), 2);
    EXPECT_EQ(uf.Find(6), 2);
  }
}

TEST(UnionFindTest, MembersCoverClass) {
  UnionFind uf;
  uf.Union(1, 2);
  uf.Union(2, 3);
  std::vector<int64_t> members = uf.Members(3);
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<int64_t>{1, 2, 3}));
}

TEST(TemporalOrderStoreTest, BasicAddAndQuery) {
  TemporalOrderStore store;
  bool added = false;
  ASSERT_TRUE(store.Add(1, 2, /*strict=*/false, &added).ok());
  EXPECT_TRUE(added);
  EXPECT_EQ(store.Holds(1, 2, false), std::optional<bool>(true));
  EXPECT_EQ(store.Holds(1, 2, true), std::nullopt);  // ⪯ known, ≺ not
  EXPECT_EQ(store.Holds(2, 1, false), std::nullopt);
}

TEST(TemporalOrderStoreTest, TransitivityViaReachability) {
  TemporalOrderStore store;
  bool added;
  ASSERT_TRUE(store.Add(1, 2, false, &added).ok());
  ASSERT_TRUE(store.Add(2, 3, true, &added).ok());
  EXPECT_EQ(store.Holds(1, 3, false), std::optional<bool>(true));
  EXPECT_EQ(store.Holds(1, 3, true), std::optional<bool>(true));
  // Strict edge forbids the reverse.
  EXPECT_EQ(store.Holds(3, 1, false), std::optional<bool>(false));
}

TEST(TemporalOrderStoreTest, RejectsStrictCycle) {
  TemporalOrderStore store;
  bool added;
  ASSERT_TRUE(store.Add(1, 2, true, &added).ok());
  Status s = store.Add(2, 1, false, &added);
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  s = store.Add(2, 1, true, &added);
  EXPECT_EQ(s.code(), StatusCode::kConflict);
}

TEST(TemporalOrderStoreTest, AllowsNonStrictCycle) {
  // t1 ⪯ t2 and t2 ⪯ t1 means "equally current" — valid (paper §4.1 only
  // rejects cycles that contradict a strict order).
  TemporalOrderStore store;
  bool added;
  ASSERT_TRUE(store.Add(1, 2, false, &added).ok());
  EXPECT_TRUE(store.Add(2, 1, false, &added).ok());
  EXPECT_EQ(store.Holds(2, 1, false), std::optional<bool>(true));
}

TEST(TemporalOrderStoreTest, StrictOnSelfConflicts) {
  TemporalOrderStore store;
  bool added;
  EXPECT_EQ(store.Add(4, 4, true, &added).code(), StatusCode::kConflict);
  EXPECT_TRUE(store.Add(4, 4, false, &added).ok());
  EXPECT_FALSE(added);  // reflexive ⪯ is implicit
}

class FixStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { data_ = MakeEcommerceData(); }
  EcommerceData data_;
};

TEST_F(FixStoreTest, GroundTruthValidatesCells) {
  FixStore store(&data_.db);
  common::RoleGuard apply(store.apply_role());  // single-threaded test body
  int64_t tid = data_.db.relation(data_.person).tuple(0).tid;
  ASSERT_TRUE(store.AddGroundTruthTuple(data_.person, tid).ok());
  EXPECT_TRUE(store.IsValidated(data_.person, tid, 1));
  EXPECT_EQ(store.ValidatedValue(data_.person, tid, 1)->AsString(), "Jones");
  EXPECT_GT(store.num_ground_truth_cells(), 0u);
}

TEST_F(FixStoreTest, SetValueConflictsOnDisagreement) {
  FixStore store(&data_.db);
  common::RoleGuard apply(store.apply_role());
  int64_t tid = data_.db.relation(data_.person).tuple(0).tid;
  bool changed = false;
  ASSERT_TRUE(store
                  .SetValue(data_.person, tid, 4,
                            Value::String("5 Beijing West Road"), "r1",
                            &changed)
                  .ok());
  EXPECT_TRUE(changed);
  // Same value again: idempotent.
  ASSERT_TRUE(store
                  .SetValue(data_.person, tid, 4,
                            Value::String("5 Beijing West Road"), "r1",
                            &changed)
                  .ok());
  EXPECT_FALSE(changed);
  // Different value: conflict.
  Status s = store.SetValue(data_.person, tid, 4, Value::String("elsewhere"),
                            "r2", &changed);
  EXPECT_EQ(s.code(), StatusCode::kConflict);
}

TEST_F(FixStoreTest, ValueFixesAreTupleScoped) {
  // Person rows 1 and 2 share eid 102 (p2) but are distinct versions of
  // the entity: a fix through one tid must NOT leak to the other (temporal
  // versions may legitimately hold different values; see DESIGN.md).
  FixStore store(&data_.db);
  common::RoleGuard apply(store.apply_role());
  const Relation& person = data_.db.relation(data_.person);
  int64_t tid_row1 = person.tuple(1).tid;
  int64_t tid_row2 = person.tuple(2).tid;
  bool changed;
  ASSERT_TRUE(store
                  .SetValue(data_.person, tid_row1, 4,
                            Value::String("12 Beijing Road"), "r", &changed)
                  .ok());
  EXPECT_EQ(store.ValidatedValue(data_.person, tid_row1, 4)->AsString(),
            "12 Beijing Road");
  EXPECT_FALSE(store.ValidatedValue(data_.person, tid_row2, 4).has_value());
}

TEST_F(FixStoreTest, MergeUnifiesCanonicalEids) {
  FixStore store(&data_.db);
  common::RoleGuard apply(store.apply_role());
  const Relation& person = data_.db.relation(data_.person);
  int64_t tid_p4 = person.tuple(4).tid;  // eid 104
  bool changed;
  ASSERT_TRUE(store.MergeEids(103, 104, "er", &changed).ok());
  EXPECT_TRUE(changed);
  EXPECT_EQ(store.CanonicalEid(data_.person, tid_p4), 103);
  // Idempotent.
  ASSERT_TRUE(store.MergeEids(104, 103, "er", &changed).ok());
  EXPECT_FALSE(changed);
}

TEST_F(FixStoreTest, DistinctnessBlocksMerge) {
  FixStore store(&data_.db);
  common::RoleGuard apply(store.apply_role());
  bool changed;
  ASSERT_TRUE(store.AddEidDistinct(1, 2, "r", &changed).ok());
  Status s = store.MergeEids(1, 2, "er", &changed);
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  // And the reverse: merging then distinct also conflicts.
  FixStore store2(&data_.db);
  common::RoleGuard apply2(store2.apply_role());
  ASSERT_TRUE(store2.MergeEids(1, 2, "er", &changed).ok());
  EXPECT_EQ(store2.AddEidDistinct(1, 2, "r", &changed).code(),
            StatusCode::kConflict);
}

TEST_F(FixStoreTest, PatchedTidsListsFixedTuples) {
  FixStore store(&data_.db);
  common::RoleGuard apply(store.apply_role());
  const Relation& person = data_.db.relation(data_.person);
  bool changed;
  ASSERT_TRUE(store
                  .SetValue(data_.person, person.tuple(1).tid, 4,
                            Value::String("x"), "r", &changed)
                  .ok());
  std::vector<int64_t> patched = store.PatchedTids(data_.person, 4);
  ASSERT_EQ(patched.size(), 1u);
  EXPECT_EQ(patched[0], person.tuple(1).tid);
}

class ChaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeEcommerceData();
    auto mer = std::make_shared<ml::SimilarityClassifier>(0.6);
    models_.RegisterPair("MER", mer);
    auto corr = std::make_shared<ml::CooccurrenceModel>();
    corr->TrainOnRelation(data_.db.relation(data_.trans));
    models_.RegisterCorrelation("Mc", corr);
    models_.RegisterPredictor("Md", corr);
  }

  Ree Parse(const std::string& text) {
    auto rule = ParseRee(text, data_.db.schema());
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    Ree out = rule.ok() ? *rule : Ree{};
    out.id = text.substr(0, 24);
    return out;
  }

  EcommerceData data_;
  ml::MlLibrary models_;
};

// The paper's Example 7: ER helps CR helps TD helps MI helps ER, all in one
// chase. We reproduce the chain on the example database.
TEST_F(ChaseTest, Example7InteractionChain) {
  std::vector<Ree> rules;
  // φ1 (ER): same discount code, date, store => same buyer entity.
  rules.push_back(Parse(
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ t0.date = t1.date ^ "
      "t0.sid = t1.sid -> t0.pid = t1.pid"));
  // φ13 (CR): same pid + same LN/FN/gender/status => same home.
  rules.push_back(Parse(
      "Person(t0) ^ Person(t1) ^ t0.pid = t1.pid ^ t0.LN = t1.LN ^ "
      "t0.FN = t1.FN ^ t0.status = t1.status -> t0.home = t1.home"));
  // φ14 (MI): spouse's more recent home fills a missing home.
  rules.push_back(Parse(
      "Person(t0) ^ Person(t1) ^ t0.spouse = t1.pid ^ "
      "null(t1.home) -> t1.home = t0.home"));
  // φ15 (ER): same name + home => same person.
  rules.push_back(Parse(
      "Person(t0) ^ Person(t1) ^ t0.LN = t1.LN ^ t0.FN = t1.FN ^ "
      "t0.home = t1.home ^ t0.gender = t1.gender -> t0.eid = t1.eid"));

  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  ChaseResult result = engine.Run(rules);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.fixes_applied, 0u);

  // MI: p4 (row 4) home imputed from spouse p2 (t3: 12 Beijing Road).
  const Relation& person = data_.db.relation(data_.person);
  auto home = engine.fix_store().ValidatedValue(data_.person,
                                                person.tuple(4).tid, 4);
  ASSERT_TRUE(home.has_value());
  EXPECT_EQ(home->AsString(), "12 Beijing Road");

  // ER: p3 and p4 identified (George Smith at 12 Beijing Road).
  EXPECT_EQ(engine.fix_store().eids().Find(104), 103);
}

TEST_F(ChaseTest, ChaseIsChurchRosser) {
  // Shuffling rule order must converge to the same fix store contents.
  std::vector<Ree> rules;
  rules.push_back(Parse(
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ t0.date = t1.date ^ "
      "t0.sid = t1.sid -> t0.pid = t1.pid"));
  rules.push_back(Parse(
      "Person(t0) ^ Person(t1) ^ t0.spouse = t1.pid ^ null(t1.home) -> "
      "t1.home = t0.home"));
  rules.push_back(Parse(
      "Person(t0) ^ Person(t1) ^ t0.LN = t1.LN ^ t0.FN = t1.FN ^ "
      "t0.home = t1.home ^ t0.gender = t1.gender -> t0.eid = t1.eid"));
  rules.push_back(
      Parse("Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'"));

  Rng rng(99);
  std::vector<std::string> baselines;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Ree> shuffled = rules;
    rng.Shuffle(shuffled);
    ChaseEngine engine(&data_.db, &data_.graph, &models_);
    engine.Run(shuffled);
    // Canonical summary: all cell fixes + canonical eids.
    std::string summary;
    for (const CellFix& fix : engine.CellFixes()) {
      summary += std::to_string(fix.rel) + ":" + std::to_string(fix.tid) +
                 ":" + std::to_string(fix.attr) + "=" +
                 fix.new_value.ToString() + ";";
    }
    for (int64_t eid = 100; eid < 330; ++eid) {
      summary += std::to_string(engine.fix_store().eids().Find(eid)) + ",";
    }
    baselines.push_back(summary);
  }
  for (size_t i = 1; i < baselines.size(); ++i) {
    EXPECT_EQ(baselines[i], baselines[0]) << "trial " << i;
  }
}

TEST_F(ChaseTest, ConstantRuleFillsAreaCodes) {
  std::vector<Ree> rules = {
      Parse("Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'")};
  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  ChaseResult result = engine.Run(rules);
  EXPECT_TRUE(result.converged);
  // Stores 0 and 2 are in Beijing with null area codes.
  std::vector<CellFix> fixes = engine.CellFixes();
  int area_fixes = 0;
  for (const CellFix& fix : fixes) {
    if (fix.rel == data_.store && fix.attr == 5) {
      EXPECT_EQ(fix.new_value.AsString(), "010");
      ++area_fixes;
    }
  }
  EXPECT_EQ(area_fixes, 2);
}

TEST_F(ChaseTest, CertainModeRequiresValidatedPremises) {
  std::vector<Ree> rules = {
      Parse("Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'")};
  ChaseOptions options;
  options.certain_fixes_only = true;
  ChaseEngine engine(&data_.db, &data_.graph, &models_, options);
  // Without ground truth nothing is validated, so nothing fires.
  ChaseResult result = engine.Run(rules);
  EXPECT_EQ(result.fixes_applied, 0u);

  // Validate store 0's location; now exactly one fix fires.
  ChaseEngine engine2(&data_.db, &data_.graph, &models_, options);
  const Relation& store = data_.db.relation(data_.store);
  {
    common::RoleGuard apply(engine2.fix_store().apply_role());
    ASSERT_TRUE(engine2.fix_store()
                    .AddGroundTruthValue(data_.store, store.tuple(0).tid, 3,
                                         Value::String("Beijing"))
                    .ok());
  }
  ChaseResult result2 = engine2.Run(rules);
  EXPECT_EQ(result2.fixes_applied, 1u);
}

TEST_F(ChaseTest, TemporalRulesDeduceOrders) {
  // φ4: single ⪯status married.
  std::vector<Ree> rules = {Parse(
      "Person(t0) ^ Person(t1) ^ t0.status = 'single' ^ "
      "t1.status = 'married' -> t0 <=[status] t1")};
  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  ChaseResult result = engine.Run(rules);
  EXPECT_TRUE(result.converged);
  const Relation& person = data_.db.relation(data_.person);
  // Row 1 (single) ⪯status row 2 (married).
  auto holds = engine.fix_store().Holds(data_.person, 5,
                                        person.tuple(1).tid,
                                        person.tuple(2).tid, false);
  EXPECT_EQ(holds, std::optional<bool>(true));
}

TEST_F(ChaseTest, ComonotonicTdChain) {
  // φ4 then φ5: status order propagates to home order.
  std::vector<Ree> rules;
  rules.push_back(Parse(
      "Person(t0) ^ Person(t1) ^ t0.status = 'single' ^ "
      "t1.status = 'married' -> t0 <=[status] t1"));
  rules.push_back(Parse(
      "Person(t0) ^ Person(t1) ^ t0 <=[status] t1 -> t0 <=[home] t1"));
  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  engine.Run(rules);
  const Relation& person = data_.db.relation(data_.person);
  auto holds = engine.fix_store().Holds(data_.person, 4,
                                        person.tuple(1).tid,
                                        person.tuple(2).tid, false);
  EXPECT_EQ(holds, std::optional<bool>(true));
}

TEST_F(ChaseTest, MiPredictionFillsMissingPrice) {
  // Seed Mc/Md with a price-bearing relation: prices correlate with com.
  std::vector<Ree> rules = {Parse(
      "Trans(t0) ^ null(t0.price) -> t0.price = Md(t0[com,mfg], price)")};
  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  ChaseResult result = engine.Run(rules);
  EXPECT_TRUE(result.converged);
  const Relation& trans = data_.db.relation(data_.trans);
  // Row 4 (Mate X2, price null) gets the price co-occurring with Mate X2.
  auto price = engine.fix_store().ValidatedValue(data_.trans,
                                                 trans.tuple(4).tid, 4);
  ASSERT_TRUE(price.has_value());
  EXPECT_DOUBLE_EQ(price->AsDouble(), 5200.0);
}

TEST_F(ChaseTest, GraphExtractionFillsLocation) {
  auto her = std::make_shared<ml::HerModel>();
  her->IndexGraph(data_.graph);
  models_.RegisterHer(her);
  auto matcher = std::make_shared<ml::PathMatchModel>();
  matcher->AddSynonym("location", {"LocationAt"});
  models_.RegisterPathMatcher(matcher);

  std::vector<Ree> rules = {Parse(
      "Store(t0) ^ vertex(x0, G) ^ HER(t0, x0) ^ "
      "match(t0.location, x0.(LocationAt)) -> "
      "t0.location = val(x0.(LocationAt))")};
  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  ChaseResult result = engine.Run(rules);
  EXPECT_TRUE(result.converged);
  // Store row 1 (Apple Taobao Flagship) had a null location; its graph
  // vertex points at Beijing.
  const Relation& store = data_.db.relation(data_.store);
  auto loc = engine.fix_store().ValidatedValue(data_.store,
                                               store.tuple(1).tid, 3);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->AsString(), "Beijing");
}

TEST_F(ChaseTest, IncrementalChaseOnlyTouchesDelta) {
  std::vector<Ree> rules = {
      Parse("Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'")};
  // Insert a new Beijing store, then chase incrementally.
  Tuple t;
  t.values = {Value::String("s6"), Value::String("Xiaomi Home"),
              Value::String("Electron."), Value::String("Beijing"),
              Value::Double(1e6), Value::Null()};
  auto tid = data_.db.Insert(data_.store, t);
  ASSERT_TRUE(tid.ok());

  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  ChaseResult result =
      engine.RunIncremental(rules, {{data_.store, *tid}});
  EXPECT_TRUE(result.converged);
  // Only the new store gets the fix; the two pre-existing Beijing stores
  // are untouched because they were not dirty.
  std::vector<CellFix> fixes = engine.CellFixes();
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes[0].tid, *tid);
  EXPECT_EQ(fixes[0].new_value.AsString(), "010");
}

TEST_F(ChaseTest, IncrementalAgreesWithBatchOnDelta) {
  std::vector<Ree> rules;
  rules.push_back(Parse(
      "Person(t0) ^ Person(t1) ^ t0.spouse = t1.pid ^ null(t1.home) -> "
      "t1.home = t0.home"));
  // Batch baseline.
  ChaseEngine batch(&data_.db, &data_.graph, &models_);
  batch.Run(rules);
  auto batch_fixes = batch.CellFixes();

  // Incremental with the whole database marked dirty must agree.
  std::vector<std::pair<int, int64_t>> all_dirty;
  for (size_t rel = 0; rel < data_.db.num_relations(); ++rel) {
    const Relation& relation = data_.db.relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      all_dirty.emplace_back(static_cast<int>(rel),
                             relation.tuple(row).tid);
    }
  }
  ChaseEngine inc(&data_.db, &data_.graph, &models_);
  inc.RunIncremental(rules, all_dirty);
  auto inc_fixes = inc.CellFixes();
  ASSERT_EQ(batch_fixes.size(), inc_fixes.size());
  for (size_t i = 0; i < batch_fixes.size(); ++i) {
    EXPECT_EQ(batch_fixes[i].tid, inc_fixes[i].tid);
    EXPECT_EQ(batch_fixes[i].new_value, inc_fixes[i].new_value);
  }
}

TEST_F(ChaseTest, FixLogJustifiesEveryFix) {
  std::vector<Ree> rules = {
      Parse("Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'")};
  rules[0].id = "phi12";
  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  engine.Run(rules);
  for (const FixRecord& record : engine.fix_store().fixes()) {
    EXPECT_EQ(record.rule_id, "phi12") << record.ToString();
  }
  EXPECT_EQ(engine.fix_store().fixes().size(), 2u);
}

TEST_F(ChaseTest, MaterializeAppliesAllFixes) {
  std::vector<Ree> rules = {
      Parse("Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'")};
  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  engine.Run(rules);
  Database repaired = engine.MaterializeRepairs();
  const Relation& store = repaired.relation(data_.store);
  EXPECT_EQ(store.tuple(0).value(5).AsString(), "010");
  EXPECT_EQ(store.tuple(2).value(5).AsString(), "010");
  // Shanghai store untouched.
  EXPECT_EQ(store.tuple(3).value(5).AsString(), "021");
}

TEST_F(ChaseTest, EntityGroupsReportMerges) {
  std::vector<Ree> rules = {Parse(
      "Person(t0) ^ Person(t1) ^ t0.LN = t1.LN ^ t0.FN = t1.FN ^ "
      "t0.home = t1.home ^ t0.gender = t1.gender -> t0.eid = t1.eid")};
  ChaseEngine engine(&data_.db, &data_.graph, &models_);
  engine.Run(rules);
  // p3 and p4 do not merge yet (p4.home is null) — only the two p2 rows
  // share an entity already, and they were the same entity to begin with.
  auto groups = engine.EntityGroups();
  // Rows 1,2 share eid 102 from construction: one group of size 2.
  ASSERT_GE(groups.size(), 1u);
}

}  // namespace
}  // namespace rock::chase
