// Tests for the live telemetry plane (src/obs/server.{h,cc}): request-line
// parsing, endpoint routing, HTTP serialization, and a live server driven
// through obs::HttpFetch (the lint keeps raw sockets out of tests). The
// *Concurrent* test runs under the CI TSan matrix.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/obs/exporters.h"
#include "src/obs/metrics.h"
#include "src/obs/server.h"
#include "src/obs/trace.h"
#include "src/workload/generator.h"

namespace rock::obs {
namespace {

TEST(ParseRequestLineTest, WellFormed) {
  HttpRequest request;
  ASSERT_TRUE(
      ParseRequestLine("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", &request)
          .ok());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(request.version, "HTTP/1.1");

  ASSERT_TRUE(ParseRequestLine("HEAD / HTTP/1.0\r\n\r\n", &request).ok());
  EXPECT_EQ(request.method, "HEAD");
}

TEST(ParseRequestLineTest, MalformedInputsRejected) {
  HttpRequest request;
  EXPECT_FALSE(ParseRequestLine("", &request).ok());
  EXPECT_FALSE(ParseRequestLine("\r\n", &request).ok());
  EXPECT_FALSE(ParseRequestLine("GET\r\n", &request).ok());
  EXPECT_FALSE(ParseRequestLine("GET /metrics\r\n", &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("GET /a b HTTP/1.1\r\n", &request).ok());
  EXPECT_FALSE(ParseRequestLine("GET /metrics HTTP/2\r\n", &request).ok());
  EXPECT_FALSE(ParseRequestLine("GET /metrics FTP/1.1\r\n", &request).ok());
  EXPECT_FALSE(
      ParseRequestLine(std::string("GET /\0 HTTP/1.1\r\n", 17), &request)
          .ok());
}

HttpRequest Get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  request.version = "HTTP/1.1";
  return request;
}

TEST(HandleTelemetryRequestTest, RoutesAllEndpoints) {
  HttpResponse metrics = HandleTelemetryRequest(Get("/metrics"), "b", 1.0);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("rock_obs_dropped_spans"), std::string::npos);

  HttpResponse telemetry =
      HandleTelemetryRequest(Get("/telemetry.json"), "b", 1.0);
  EXPECT_EQ(telemetry.status, 200);
  EXPECT_NE(telemetry.body.find("\"counters\""), std::string::npos);

  HttpResponse trace = HandleTelemetryRequest(Get("/trace.json"), "b", 1.0);
  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("\"traceEvents\""), std::string::npos);

  HttpResponse health =
      HandleTelemetryRequest(Get("/healthz"), "test-build", 2.5);
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("test-build"), std::string::npos);

  // Query strings route to the same endpoint.
  EXPECT_EQ(HandleTelemetryRequest(Get("/healthz?verbose=1"), "b", 1.0).status,
            200);
}

TEST(HandleTelemetryRequestTest, UnknownPathAndBadMethod) {
  HttpResponse missing = HandleTelemetryRequest(Get("/nope"), "b", 1.0);
  EXPECT_EQ(missing.status, 404);
  // The 404 body lists the endpoints that do exist.
  EXPECT_NE(missing.body.find("/metrics"), std::string::npos);

  HttpRequest post = Get("/metrics");
  post.method = "POST";
  EXPECT_EQ(HandleTelemetryRequest(post, "b", 1.0).status, 405);
}

TEST(SerializeHttpResponseTest, FullAndHeadForms) {
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain";
  response.body = "hello";
  std::string full = SerializeHttpResponse(response, true);
  EXPECT_EQ(full.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(full.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(full.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(full.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(full.substr(full.size() - 5), "hello");

  // HEAD keeps the Content-Length of the omitted body.
  std::string head = SerializeHttpResponse(response, false);
  EXPECT_NE(head.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
}

TEST(SerializeHttpResponseTest, ReasonPhrases) {
  EXPECT_STREQ(HttpStatusReason(200), "OK");
  EXPECT_STREQ(HttpStatusReason(400), "Bad Request");
  EXPECT_STREQ(HttpStatusReason(404), "Not Found");
  EXPECT_STREQ(HttpStatusReason(405), "Method Not Allowed");
  EXPECT_STREQ(HttpStatusReason(431), "Request Header Fields Too Large");
}

class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TelemetryServer::Options options;
    options.port = 0;  // ephemeral
    options.build_info = "server-test";
    auto server = TelemetryServer::Start(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
    ASSERT_GT(server_->port(), 0);
  }

  std::string Fetch(const std::string& raw) {
    auto response = HttpFetch(server_->port(), raw);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? std::move(response).value() : std::string();
  }

  std::unique_ptr<TelemetryServer> server_;
};

TEST_F(TelemetryServerTest, ServesAllFourEndpoints) {
  { ROCK_OBS_SPAN("server_test.phase"); }
  std::string metrics = Fetch("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(metrics.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(metrics.find("rock_obs_dropped_spans"), std::string::npos);

  std::string telemetry =
      Fetch("GET /telemetry.json HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(telemetry.find("\"spans\""), std::string::npos);

  std::string trace = Fetch("GET /trace.json HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);

  std::string health = Fetch("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("server-test"), std::string::npos);
}

TEST_F(TelemetryServerTest, ErrorResponses) {
  std::string missing = Fetch("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(missing.find("HTTP/1.1 404 Not Found\r\n"), 0u);

  std::string malformed = Fetch("how about no\r\n\r\n");
  EXPECT_EQ(malformed.find("HTTP/1.1 400 Bad Request\r\n"), 0u);

  // A request head past kMaxRequestBytes is answered 431.
  std::string oversized = "GET /metrics HTTP/1.1\r\nX-Pad: " +
                          std::string(kMaxRequestBytes + 1024, 'a') +
                          "\r\n\r\n";
  std::string too_large = Fetch(oversized);
  EXPECT_EQ(too_large.find("HTTP/1.1 431 "), 0u);
}

TEST_F(TelemetryServerTest, HeadOmitsBodyKeepsLength) {
  std::string head = Fetch("HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(head.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(head.find("Content-Length: "), std::string::npos);
  // Head ends at the blank line — no body follows.
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
  EXPECT_EQ(head.find("\"status\""), std::string::npos);
}

TEST_F(TelemetryServerTest, StopIsIdempotent) {
  server_->Stop();
  server_->Stop();
  EXPECT_FALSE(HttpFetch(server_->port(), "GET / HTTP/1.1\r\n\r\n").ok());
}

// 4 scraper threads hammer every endpoint while spans and metrics are
// being recorded — the TSan CI job runs this against the serving thread.
TEST_F(TelemetryServerTest, ConcurrentScrapesWhileRecording) {
  constexpr int kScrapers = 4;
  constexpr int kRequests = 8;
  const char* requests[] = {
      "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
      "GET /telemetry.json HTTP/1.1\r\nHost: x\r\n\r\n",
      "GET /trace.json HTTP/1.1\r\nHost: x\r\n\r\n",
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
  };
  // Start from an empty ring: under TSan a trace serialization is ~80x
  // slower, and spans accumulated by earlier tests would push the serial
  // /trace.json responses past the client timeout.
  Tracer::Global().Reset();
  std::atomic<bool> stop{false};
  std::thread recorder([&stop] {
    Tracer::Global().SetThisThreadName("recorder");
    Counter* counter =
        MetricsRegistry::Global().GetCounter("rock_server_test_total");
    while (!stop.load(std::memory_order_relaxed)) {
      ROCK_OBS_SPAN("server_test.record");
      counter->Add();
      // Keep racing the scrapers without hogging the core or growing the
      // ring unboundedly (single-core CI runners serve everything here).
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int scraper = 0; scraper < kScrapers; ++scraper) {
    scrapers.emplace_back([this, scraper, &requests, &failures] {
      for (int i = 0; i < kRequests; ++i) {
        auto response =
            HttpFetch(server_->port(), requests[(scraper + i) % 4]);
        if (!response.ok() ||
            response.value().find("HTTP/1.1 200 OK\r\n") != 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& scraper : scrapers) scraper.join();
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(RockFacadeTest, StartAndStopTelemetryServer) {
  workload::GeneratorOptions options;
  options.rows = 40;
  options.seed = 7;
  workload::GeneratedData data = workload::MakeBankData(options);
  core::Rock rock(&data.db, &data.graph);

  EXPECT_EQ(rock.telemetry_server_port(), -1);
  ASSERT_TRUE(rock.StartTelemetryServer(0).ok());
  int port = rock.telemetry_server_port();
  ASSERT_GT(port, 0);

  auto health = HttpFetch(port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_NE(health.value().find("rock core"), std::string::npos);

  // A second server on the same instance is refused, not leaked.
  Status again = rock.StartTelemetryServer(0);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);

  rock.StopTelemetryServer();
  EXPECT_EQ(rock.telemetry_server_port(), -1);
}

}  // namespace
}  // namespace rock::obs
