#include <memory>

#include <gtest/gtest.h>

#include "src/chase/chase.h"
#include "src/discovery/feedback.h"
#include "src/rules/parser.h"
#include "src/workload/generator.h"
#include "src/workload/scoring.h"

namespace rock {
namespace {

// ---------- User conflict queue (§4.2 (1)) ----------

class UserQueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two shipments with the same seller_id but conflicting names, and no
    // ground truth: only a user can settle which name is right.
    DatabaseSchema schema;
    ASSERT_TRUE(schema
                    .AddRelation(Schema("S",
                                        {{"seller_id", ValueType::kString},
                                         {"seller_name",
                                          ValueType::kString}}))
                    .ok());
    db_ = Database(std::move(schema));
    Tuple a;
    a.values = {Value::String("sel1"), Value::String("Acme Ltd")};
    ASSERT_TRUE(db_.Insert(0, a).ok());
    Tuple b;
    b.values = {Value::String("sel1"), Value::String("Acme Ltd.")};
    ASSERT_TRUE(db_.Insert(0, b).ok());
    auto rule = rules::ParseRee(
        "S(t0) ^ S(t1) ^ t0.seller_id = t1.seller_id -> "
        "t0.seller_name = t1.seller_name",
        db_.schema());
    ASSERT_TRUE(rule.ok());
    rule_ = *rule;
    rule_.id = "sn";
  }

  Database db_;
  rules::Ree rule_;
  ml::MlLibrary models_;
};

TEST_F(UserQueueTest, WithoutResolverConflictIsQueued) {
  chase::ChaseEngine engine(&db_, nullptr, &models_);
  chase::ChaseResult result = engine.Run({rule_});
  ASSERT_FALSE(result.conflicts.empty());
  EXPECT_EQ(result.conflicts[0].resolution, "user_queue");
  // No fix was forced.
  EXPECT_TRUE(engine.CellFixes().empty());
}

TEST_F(UserQueueTest, ResolverSettlesTheConflict) {
  chase::ChaseOptions options;
  int consultations = 0;
  options.user_resolver = [&](const chase::ConflictRecord& record,
                              const Value& a, const Value& b)
      -> std::optional<Value> {
    ++consultations;
    EXPECT_EQ(record.rule_id, "sn");
    // The user prefers the dotted form.
    return a.ToString().back() == '.' ? a : b;
  };
  chase::ChaseEngine engine(&db_, nullptr, &models_, options);
  chase::ChaseResult result = engine.Run({rule_});
  EXPECT_GT(consultations, 0);
  // Both tuples end with the chosen value.
  Database repaired = engine.MaterializeRepairs();
  EXPECT_EQ(repaired.relation(0).tuple(0).value(1).AsString(), "Acme Ltd.");
  EXPECT_EQ(repaired.relation(0).tuple(1).value(1).AsString(), "Acme Ltd.");
  // The conflict record documents the decision.
  bool resolved = false;
  for (const auto& conflict : result.conflicts) {
    if (conflict.resolution.rfind("user_resolved:", 0) == 0) resolved = true;
  }
  EXPECT_TRUE(resolved);
}

TEST_F(UserQueueTest, ResolverMayDecline) {
  chase::ChaseOptions options;
  options.user_resolver = [](const chase::ConflictRecord&, const Value&,
                             const Value&) -> std::optional<Value> {
    return std::nullopt;  // "come back later"
  };
  chase::ChaseEngine engine(&db_, nullptr, &models_, options);
  engine.Run({rule_});
  EXPECT_TRUE(engine.CellFixes().empty());
}

// ---------- Prior-knowledge learning (§5.2 / §5.4) ----------

TEST(PriorKnowledgeTest, OracleFeedbackReordersRules) {
  workload::GeneratorOptions options;
  options.rows = 80;
  options.seed = 3;
  auto data = workload::MakeLogisticsData(options);
  rules::EvalContext ctx;
  ctx.db = &data.db;
  rules::Evaluator eval(ctx);
  discovery::PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  auto space = discovery::BuildPairSpace(data.db, 0, space_options);
  discovery::RuleMiner miner;
  auto mined = miner.Mine(eval, space);
  ASSERT_GT(mined.size(), 3u);

  // Simulated user: only rules whose consequence touches seller_name are
  // useful for the SN task.
  int seller_name = data.db.schema().relation(0).AttributeIndex(
      "seller_name");
  discovery::PriorKnowledgeSession session(ctx);
  auto oracle = [&](const rules::Ree& rule,
                    const std::vector<std::pair<int, int64_t>>& flagged) {
    (void)flagged;
    return rule.consequence.kind == rules::PredicateKind::kAttrCompare &&
           rule.consequence.attr == seller_name;
  };
  session.Run(mined, oracle, /*rounds=*/3);
  EXPECT_GT(session.rules_labeled(), 8u);
  EXPECT_TRUE(session.scorer().trained());

  // The learned preference now ranks an SN rule above a non-SN rule of
  // comparable statistics.
  auto top = discovery::SelectTopK(mined, 3, session.scorer(), false);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].rule.consequence.attr, seller_name)
      << top[0].rule.ToString(data.db.schema());
}

TEST(PriorKnowledgeTest, FlaggedSamplesReachTheOracle) {
  workload::GeneratorOptions options;
  options.rows = 60;
  options.seed = 4;
  auto data = workload::MakeLogisticsData(options);
  rules::EvalContext ctx;
  ctx.db = &data.db;
  rules::Evaluator eval(ctx);
  discovery::PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  auto space = discovery::BuildPairSpace(data.db, 0, space_options);
  discovery::RuleMiner miner;
  auto mined = miner.Mine(eval, space);
  ASSERT_FALSE(mined.empty());

  size_t total_flagged = 0;
  discovery::PriorKnowledgeSession session(ctx);
  session.Run(
      mined,
      [&](const rules::Ree&,
          const std::vector<std::pair<int, int64_t>>& flagged) {
        total_flagged += flagged.size();
        return true;
      },
      /*rounds=*/1);
  // At least one shown rule flags something in the sample (the generator
  // injects errors into the first rows too).
  EXPECT_GT(total_flagged, 0u);
}

}  // namespace
}  // namespace rock
