// Equivalence harness for deterministic fault injection (DESIGN.md "Fault
// injection & recovery"): under any seeded FaultPlan — stragglers,
// transient failures with retry/backoff, worker crashes with hash-ring
// re-placement, exhausted attempt budgets replayed from the round
// checkpoint — detection reports, final fix stores and provenance
// summaries stay byte-identical to the fault-free serial run, across
// worker counts, seeds and both execution modes.

#include <atomic>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/chase/chase.h"
#include "src/core/engine.h"
#include "src/detect/detector.h"
#include "src/obs/metrics.h"
#include "src/par/executor.h"
#include "src/par/fault.h"
#include "src/rules/parser.h"
#include "src/workload/generator.h"

namespace rock {
namespace {

// Serializes everything a DetectionReport carries, in order, so two
// reports can be compared bitwise.
std::string ReportFingerprint(const detect::DetectionReport& report) {
  std::ostringstream out;
  out << report.violations << "|" << report.exhaustive_pairs_checked << "\n";
  for (const detect::ErrorRecord& error : report.errors) {
    out << error.rule_id << ":" << detect::ErrorClassName(error.error_class);
    for (const auto& cell : error.cells) {
      out << " (" << cell.rel << "," << cell.tid << "," << cell.attr << ")";
    }
    out << "\n";
  }
  return out.str();
}

std::string FixStoreDigest(const chase::ChaseEngine& engine,
                           const Database& db) {
  std::string digest;
  for (const chase::CellFix& fix : engine.CellFixes()) {
    digest += std::to_string(fix.rel) + ":" + std::to_string(fix.tid) + ":" +
              std::to_string(fix.attr) + "=" + fix.new_value.ToString() + ";";
  }
  for (size_t rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& relation = db.relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      digest += std::to_string(
                    engine.fix_store().eids().Find(relation.tuple(row).eid)) +
                ",";
    }
  }
  return digest;
}

// Canonical serialization of a ProvenanceSummary: recovery must preserve
// not just the fixes but the entire witness structure behind them.
std::string ProvenanceFingerprint(const obs::ProvenanceSummary& s) {
  std::ostringstream out;
  out << s.nodes << "|" << s.conflict_candidates << "|" << s.max_depth << "|"
      << s.ml_calls << "|" << s.premises_ground_truth << "|"
      << s.premises_prior_fix << "|" << s.premises_raw << "|"
      << s.premises_oracle << "\n";
  for (const auto& [rule, count] : s.fixes_by_rule) {
    out << rule << "=" << count << ";";
  }
  out << "\n";
  for (uint64_t d : s.depth_histogram) out << d << ",";
  return out.str();
}

workload::GeneratedData MakeData(uint64_t seed, size_t rows = 80) {
  workload::GeneratorOptions options;
  options.rows = rows;
  options.error_rate = 0.1;
  options.seed = seed;
  return workload::MakeAppData("Logistics", options);
}

std::vector<par::WorkUnit> MakeUnits(int count, int rule_index = 0) {
  std::vector<par::WorkUnit> units;
  for (int i = 0; i < count; ++i) {
    par::WorkUnit unit;
    unit.rule_index = rule_index;
    unit.ranges.push_back({0, i, i + 1});
    units.push_back(unit);
  }
  return units;
}

par::FaultPlan MustParse(const std::string& spec) {
  auto plan = par::FaultPlan::Parse(spec);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.ok() ? *plan : par::FaultPlan();
}

// ---------------- Plan determinism & round-trips ----------------

TEST(FaultPlanTest, SpecRoundTripsThroughParse) {
  par::FaultPlan plan = MustParse("crash:5@1;delay:3=20000us;flaky:7x2");
  EXPECT_EQ(plan.crash_at_attempt.at(5), 1);
  EXPECT_NEAR(plan.delay_seconds.at(3), 0.02, 1e-9);
  EXPECT_EQ(plan.transient_failures.at(7), 2);
  par::FaultPlan reparsed = MustParse(plan.ToSpec());
  EXPECT_EQ(reparsed.ToSpec(), plan.ToSpec());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(par::FaultPlan::Parse("crash:5").ok());
  EXPECT_FALSE(par::FaultPlan::Parse("delay:3=20000").ok());
  EXPECT_FALSE(par::FaultPlan::Parse("flaky:x2").ok());
  EXPECT_FALSE(par::FaultPlan::Parse("meteor:1@1").ok());
}

TEST(FaultPlanTest, FromSeedIsDeterministicAndRecoverable) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 99ull}) {
    par::FaultPlan a = par::FaultPlan::FromSeed(seed, 40, 4);
    par::FaultPlan b = par::FaultPlan::FromSeed(seed, 40, 4);
    EXPECT_EQ(a.ToSpec(), b.ToSpec()) << seed;
    EXPECT_FALSE(a.empty()) << seed;
    // Seeded plans stay below the default attempt budget: the pool alone
    // recovers them, no checkpoint replay needed.
    par::RetryPolicy retry;
    for (size_t unit = 0; unit < 40; ++unit) {
      EXPECT_FALSE(a.Unrecoverable(unit, retry)) << seed << ":" << unit;
    }
    // Crashes stay below the worker count so one worker always survives.
    EXPECT_LT(a.crash_at_attempt.size(), 4u) << seed;
  }
}

TEST(FaultPlanTest, BackoffIsCappedExponential) {
  par::RetryPolicy retry;
  retry.backoff_base_seconds = 0.001;
  retry.backoff_cap_seconds = 0.004;
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(1), 0.001);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(2), 0.002);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(3), 0.004);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(10), 0.004);
}

TEST(FaultPlanTest, FromEnvReadsSeedAndPlan) {
  // Tests are single-threaded at this point; nothing races the environment.
  ASSERT_EQ(setenv("ROCK_FAULT_PLAN", "flaky:1x2", 1), 0);  // NOLINT(concurrency-mt-unsafe)
  auto plan = par::FaultPlan::FromEnv(10, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->transient_failures.at(1), 2);
  ASSERT_EQ(unsetenv("ROCK_FAULT_PLAN"), 0);  // NOLINT(concurrency-mt-unsafe)

  ASSERT_EQ(setenv("ROCK_FAULT_SEED", "7", 1), 0);  // NOLINT(concurrency-mt-unsafe)
  auto seeded = par::FaultPlan::FromEnv(10, 4);
  ASSERT_TRUE(seeded.has_value());
  EXPECT_EQ(seeded->ToSpec(), par::FaultPlan::FromSeed(7, 10, 4).ToSpec());
  ASSERT_EQ(unsetenv("ROCK_FAULT_SEED"), 0);  // NOLINT(concurrency-mt-unsafe)

  EXPECT_FALSE(par::FaultPlan::FromEnv(10, 4).has_value());
}

// ---------------- Pool-level exactly-once under faults ----------------

TEST(FaultPoolTest, EveryUnitRunsExactlyOnceUnderSeededFaults) {
  const int kUnits = 120;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    std::vector<par::WorkUnit> units = MakeUnits(kUnits);
    par::FaultPlan plan = par::FaultPlan::FromSeed(seed, kUnits, 6);
    par::PoolOptions options;
    options.fault_plan = &plan;
    std::vector<std::atomic<int>> executed(kUnits);
    for (auto& e : executed) e.store(0);
    par::WorkerPool pool(6, par::ExecutionMode::kThreads, options);
    auto report = pool.Execute(
        units, [&](const par::WorkUnit&, size_t unit_index, int) {
          executed[unit_index].fetch_add(1);
        });
    for (const auto& e : executed) EXPECT_EQ(e.load(), 1) << seed;
    EXPECT_GT(report.faults.injected, 0) << seed;
    EXPECT_TRUE(report.faults.unrecovered_units.empty()) << seed;
  }
}

TEST(FaultPoolTest, CrashDuringStealRedistributesWithoutLoss) {
  // Fully skewed placement: every unit lands on one worker, so the other
  // workers acquire exclusively by stealing — and the crash victim is
  // whichever worker acquires the crash unit, stolen or not. Slow units
  // guarantee thieves are active when the crash fires.
  std::vector<par::WorkUnit> units;
  for (int i = 0; i < 48; ++i) {
    par::WorkUnit unit;
    unit.rule_index = 7;
    unit.ranges.push_back({0, 0, 0});  // identical block coordinates
    units.push_back(unit);
  }
  par::FaultPlan plan = MustParse("crash:20@1;crash:31@1");
  par::PoolOptions options;
  options.fault_plan = &plan;
  std::vector<std::atomic<int>> executed(units.size());
  for (auto& e : executed) e.store(0);
  par::WorkerPool pool(4, par::ExecutionMode::kThreads, options);
  auto report = pool.Execute(
      units, [&](const par::WorkUnit&, size_t unit_index, int) {
        executed[unit_index].fetch_add(1);
        volatile double x = 0;
        for (int i = 0; i < 50000; ++i) x = x + i * 0.5;
      });
  int max_initial = 0;
  for (int c : report.initial_units) max_initial = std::max(max_initial, c);
  ASSERT_EQ(max_initial, 48) << "placement should be fully skewed";
  for (const auto& e : executed) EXPECT_EQ(e.load(), 1);
  EXPECT_EQ(report.faults.worker_deaths + report.faults.crashes_suppressed,
            2);
  EXPECT_GT(report.faults.units_reassigned, 0);
  EXPECT_TRUE(report.faults.unrecovered_units.empty());
}

TEST(FaultPoolTest, AllWorkersButOneDie) {
  // Three crash units across four workers: exactly three deaths (a crash
  // unit kills at most one worker, and suppression requires a single
  // survivor, which requires all three prior deaths). The survivor drains
  // everything.
  const int kUnits = 40;
  std::vector<par::WorkUnit> units = MakeUnits(kUnits);
  par::FaultPlan plan = MustParse("crash:3@1;crash:17@1;crash:29@1");
  par::PoolOptions options;
  options.fault_plan = &plan;
  std::vector<std::atomic<int>> executed(kUnits);
  for (auto& e : executed) e.store(0);
  par::WorkerPool pool(4, par::ExecutionMode::kThreads, options);
  auto report = pool.Execute(
      units, [&](const par::WorkUnit&, size_t unit_index, int) {
        executed[unit_index].fetch_add(1);
      });
  for (const auto& e : executed) EXPECT_EQ(e.load(), 1);
  EXPECT_EQ(report.faults.worker_deaths, 3);
  EXPECT_EQ(report.faults.crashes_suppressed, 0);
  int run = 0;
  for (int c : report.executed_units) run += c;
  EXPECT_EQ(run, kUnits);
}

TEST(FaultPoolTest, LastWorkerCrashIsSuppressed) {
  std::vector<par::WorkUnit> units = MakeUnits(10);
  par::FaultPlan plan = MustParse("crash:4@1");
  par::PoolOptions options;
  options.fault_plan = &plan;
  std::vector<std::atomic<int>> executed(10);
  for (auto& e : executed) e.store(0);
  par::WorkerPool pool(1, par::ExecutionMode::kThreads, options);
  auto report = pool.Execute(
      units, [&](const par::WorkUnit&, size_t unit_index, int) {
        executed[unit_index].fetch_add(1);
      });
  for (const auto& e : executed) EXPECT_EQ(e.load(), 1);
  EXPECT_EQ(report.faults.worker_deaths, 0);
  EXPECT_EQ(report.faults.crashes_suppressed, 1);
}

TEST(FaultPoolTest, ExhaustedBudgetIsReportedAndReplayable) {
  // flaky:6x9 fails more attempts than the budget allows: the pool gives
  // the unit up, reports it, and ReplayUnrecovered runs it exactly once.
  const int kUnits = 20;
  std::vector<par::WorkUnit> units = MakeUnits(kUnits);
  par::FaultPlan plan = MustParse("flaky:6x9;flaky:11x1");
  par::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_base_seconds = 1e-4;
  par::PoolOptions options;
  options.fault_plan = &plan;
  options.retry = retry;
  ASSERT_TRUE(plan.Unrecoverable(6, retry));
  ASSERT_FALSE(plan.Unrecoverable(11, retry));
  for (par::ExecutionMode mode :
       {par::ExecutionMode::kThreads, par::ExecutionMode::kSimulated}) {
    std::vector<std::atomic<int>> executed(kUnits);
    for (auto& e : executed) e.store(0);
    par::WorkerPool pool(3, mode, options);
    auto body = [&](const par::WorkUnit&, size_t unit_index, int) {
      executed[unit_index].fetch_add(1);
    };
    auto report = pool.Execute(units, body);
    ASSERT_EQ(report.faults.unrecovered_units, std::vector<size_t>{6})
        << par::ExecutionModeName(mode);
    EXPECT_EQ(executed[6].load(), 0) << par::ExecutionModeName(mode);
    EXPECT_GT(report.faults.retries, 0);
    EXPECT_GT(report.faults.backoff_seconds, 0.0);
    EXPECT_EQ(par::WorkerPool::ReplayUnrecovered(units, &report, body), 1u);
    EXPECT_TRUE(report.faults.unrecovered_units.empty());
    for (const auto& e : executed) {
      EXPECT_EQ(e.load(), 1) << par::ExecutionModeName(mode);
    }
  }
}

TEST(FaultPoolTest, FaultAccountingMatchesAcrossModes) {
  // The report's fault counters are functions of the plan, not of thread
  // timing: threads and simulated modes must agree exactly.
  const int kUnits = 60;
  for (uint64_t seed : {5ull, 6ull}) {
    std::vector<par::WorkUnit> units = MakeUnits(kUnits);
    par::FaultPlan plan = par::FaultPlan::FromSeed(seed, kUnits, 4);
    par::PoolOptions options;
    options.fault_plan = &plan;
    par::WorkerPool threads(4, par::ExecutionMode::kThreads, options);
    par::WorkerPool sim(4, par::ExecutionMode::kSimulated, options);
    auto a = threads.Execute(units, [](const par::WorkUnit&) {});
    auto b = sim.Execute(units, [](const par::WorkUnit&) {});
    EXPECT_EQ(a.faults.injected, b.faults.injected) << seed;
    EXPECT_EQ(a.faults.retries, b.faults.retries) << seed;
    EXPECT_EQ(a.faults.worker_deaths, b.faults.worker_deaths) << seed;
    EXPECT_EQ(a.faults.unrecovered_units, b.faults.unrecovered_units)
        << seed;
    EXPECT_NEAR(a.faults.backoff_seconds, b.faults.backoff_seconds, 1e-12)
        << seed;
  }
}

// ---------------- End-to-end equivalence: detector & chase ----------------

struct FaultCase {
  const char* label;
  const char* spec;  // nullptr = derive from seed
  uint64_t seed = 0;
};

std::ostream& operator<<(std::ostream& os, const FaultCase& c) {
  return os << c.label;
}

par::FaultPlan PlanFor(const FaultCase& c, size_t num_units,
                       int num_workers) {
  if (c.spec != nullptr) return MustParse(c.spec);
  return par::FaultPlan::FromSeed(c.seed, num_units, num_workers);
}

class FaultEquivalenceTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultEquivalenceTest, DetectionSurvivesFaultsBitIdentically) {
  workload::GeneratedData data = MakeData(7);
  core::Rock rock(&data.db, &data.graph);
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok());

  rules::EvalContext ctx;
  ctx.db = &data.db;
  ctx.graph = &data.graph;
  ctx.models = rock.models();
  // Fault-free parallel baseline: the full report, bitwise. (Serial
  // Detect() may route ML rules through the blocking index, so its pair
  // accounting legitimately differs; its dirty cells must still match.)
  detect::DetectorOptions clean_options;
  clean_options.block_rows = 16;
  detect::ErrorDetector clean(ctx, clean_options);
  par::ScheduleReport clean_schedule;
  auto clean_report = clean.DetectParallel(*rules, 2, &clean_schedule);
  std::string expected = ReportFingerprint(clean_report);
  detect::ErrorDetector serial(ctx);
  EXPECT_EQ(clean_report.DirtyCells(), serial.Detect(*rules).DirtyCells());

  for (par::ExecutionMode mode :
       {par::ExecutionMode::kThreads, par::ExecutionMode::kSimulated}) {
    for (int workers : {2, 3, 5}) {
      par::FaultPlan plan = PlanFor(GetParam(), 64, workers);
      detect::DetectorOptions options;
      options.block_rows = 16;
      options.execution_mode = mode;
      options.fault_plan = &plan;
      options.retry.backoff_base_seconds = 1e-4;
      detect::ErrorDetector faulty(ctx, options);
      par::ScheduleReport schedule;
      auto report = faulty.DetectParallel(*rules, workers, &schedule);
      EXPECT_EQ(ReportFingerprint(report), expected)
          << GetParam() << " " << par::ExecutionModeName(mode) << " x"
          << workers << " plan=" << plan.ToSpec();
      // Recovery leaves nothing behind.
      EXPECT_TRUE(schedule.faults.unrecovered_units.empty());
    }
  }
}

TEST_P(FaultEquivalenceTest, ChaseSurvivesFaultsBitIdentically) {
  // Fault-free serial baseline: digest + provenance fingerprint.
  workload::GeneratedData serial_data = MakeData(7);
  core::Rock serial_rock(&serial_data.db, &serial_data.graph);
  auto rules = serial_rock.LoadRules(serial_data.rule_text);
  ASSERT_TRUE(rules.ok());
  chase::ChaseEngine serial_engine(&serial_data.db, &serial_data.graph,
                                   serial_rock.models());
  for (const auto& [rel, tid] : serial_data.clean_tuples) {
    Status ignored = serial_engine.fix_store().AddGroundTruthTuple(rel, tid);
    (void)ignored;
  }
  serial_engine.Run(*rules);
  std::string expected_digest =
      FixStoreDigest(serial_engine, serial_data.db);
  std::string expected_prov =
      ProvenanceFingerprint(serial_engine.ProvenanceSummary());

  for (par::ExecutionMode mode :
       {par::ExecutionMode::kThreads, par::ExecutionMode::kSimulated}) {
    for (int workers : {2, 3, 5}) {
      workload::GeneratedData data = MakeData(7);
      core::Rock rock(&data.db, &data.graph);
      par::FaultPlan plan = PlanFor(GetParam(), 64, workers);
      chase::ChaseOptions options;
      options.fault_plan = &plan;
      options.retry.backoff_base_seconds = 1e-4;
      chase::ChaseEngine engine(&data.db, &data.graph, rock.models(),
                                options);
      for (const auto& [rel, tid] : data.clean_tuples) {
        Status ignored = engine.fix_store().AddGroundTruthTuple(rel, tid);
        (void)ignored;
      }
      par::ScheduleReport schedule;
      auto result = engine.RunParallel(*rules, workers, /*block_rows=*/16,
                                       &schedule, mode);
      EXPECT_EQ(FixStoreDigest(engine, data.db), expected_digest)
          << GetParam() << " " << par::ExecutionModeName(mode) << " x"
          << workers << " plan=" << plan.ToSpec();
      EXPECT_EQ(ProvenanceFingerprint(engine.ProvenanceSummary()),
                expected_prov)
          << GetParam() << " " << par::ExecutionModeName(mode) << " x"
          << workers;
      EXPECT_TRUE(schedule.faults.unrecovered_units.empty());
      if (plan.transient_failures.count(0) ||
          plan.crash_at_attempt.count(0) || plan.delay_seconds.count(0)) {
        EXPECT_GT(schedule.faults.injected, 0);
      }
      (void)result;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Plans, FaultEquivalenceTest,
    ::testing::Values(
        FaultCase{"none", ""},
        FaultCase{"delays", "delay:0=300us;delay:3=800us;delay:9=200us"},
        FaultCase{"transient", "flaky:0x2;flaky:5x1;flaky:12x3"},
        FaultCase{"unrecoverable", "flaky:0x6;flaky:7x8"},
        FaultCase{"crashes", "crash:0@1;crash:8@1"},
        FaultCase{"mixed", "crash:1@1;delay:4=500us;flaky:2x2;flaky:9x7"},
        FaultCase{"seeded1", nullptr, 1}, FaultCase{"seeded2", nullptr, 2},
        FaultCase{"seeded3", nullptr, 3}));

// ---------------- Telemetry: recovery reaches the registry ----------------

TEST(FaultTelemetryTest, RetryAndRecoveryCountersAreExported) {
  obs::MetricsRegistry::Global().Reset();
  workload::GeneratedData data = MakeData(7, 40);
  core::Rock rock(&data.db, &data.graph);
  auto rules = rock.LoadRules(data.rule_text);
  ASSERT_TRUE(rules.ok());

  // flaky:0x8 exhausts the default budget (4 attempts) -> checkpoint
  // replay; flaky:2x2 retries within budget; a crash kills one worker.
  par::FaultPlan plan = MustParse("flaky:0x8;flaky:2x2;crash:1@1");
  par::RetryPolicy retry;
  retry.backoff_base_seconds = 1e-4;
  rock.SetFaultInjection(&plan, retry);

  core::CorrectionResult result;
  auto engine = rock.CorrectErrorsParallel(*rules, data.clean_tuples,
                                           /*num_workers=*/3, &result);
  ASSERT_NE(engine, nullptr);
  EXPECT_GT(result.chase.replayed_units, 0u);

  auto snap = obs::MetricsRegistry::Global().Snap();
  EXPECT_GT(snap.CounterValue("rock_par_faults_injected_total"), 0u);
  EXPECT_GT(snap.CounterValue("rock_par_unit_retries_total"), 0u);
  EXPECT_GT(snap.CounterValue("rock_par_backoff_micros_total"), 0u);
  EXPECT_EQ(snap.CounterValue("rock_par_worker_deaths_total"), 1u);
  EXPECT_GT(snap.CounterValue("rock_chase_checkpoints_total"), 0u);
  EXPECT_GT(snap.CounterValue("rock_chase_checkpoint_restores_total"), 0u);
  // The recovery layers settled every abandoned unit.
  EXPECT_EQ(snap.GaugeValue("rock_faults_unrecovered_units"), 0);
}

}  // namespace
}  // namespace rock
