// Positive-compilation fixture: the same guarded write as
// bad_unguarded_write.cc but holding the mutex through the RAII guard.
// Must compile cleanly under -Werror=thread-safety — this proves the
// negative test fails for the right reason (the missing lock) and not
// because the fixture or the annotation macros are broken.
#include "src/common/mutex.h"

class Account {
 public:
  void Deposit(int amount) {
    rock::common::MutexLock lock(mu_);
    balance_ += amount;
  }

 private:
  rock::common::Mutex mu_;
  int balance_ ROCK_GUARDED_BY(mu_) = 0;
};

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
