// Negative-compilation fixture: writing a ROCK_GUARDED_BY field without
// holding its mutex. Under Clang with -Werror=thread-safety this file MUST
// fail to compile; tests/thread_safety_compile_test.cmake asserts that it
// does (and that the diagnostic is a thread-safety one, not some other
// error masking a silently-disabled analysis).
#include "src/common/mutex.h"

class Account {
 public:
  // No lock taken: the analysis must reject this write.
  void Deposit(int amount) { balance_ += amount; }

 private:
  rock::common::Mutex mu_;
  int balance_ ROCK_GUARDED_BY(mu_) = 0;
};

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
