#include <algorithm>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/csv.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace rock {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing rule");
}

TEST(StatusTest, ConflictCodeExists) {
  Status s = Status::Conflict("t1 < t2 and t2 < t1");
  EXPECT_EQ(s.code(), StatusCode::kConflict);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MovableValue) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingle) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, JoinRoundTrips) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ToLowerAndAffixes) {
  EXPECT_EQ(ToLower("IPhone 14"), "iphone 14");
  EXPECT_TRUE(StartsWith("transaction", "trans"));
  EXPECT_FALSE(StartsWith("tr", "trans"));
  EXPECT_TRUE(EndsWith("store.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringsTest, TokenizeLowersAndSplitsOnPunct) {
  auto toks = Tokenize("IPhone 14 (Discount ID 41)");
  std::vector<std::string> expected = {"iphone", "14", "discount", "id", "41"};
  EXPECT_EQ(toks, expected);
}

TEST(StringsTest, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("", "xyz"), 3);
}

TEST(StringsTest, EditSimilarityRange) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_GT(EditSimilarity("smith", "smyth"), 0.7);
  EXPECT_LT(EditSimilarity("abc", "xyz"), 0.01);
}

TEST(StringsTest, JaroWinklerFavorsSharedPrefix) {
  EXPECT_DOUBLE_EQ(JaroWinkler("martha", "martha"), 1.0);
  double jw1 = JaroWinkler("martha", "marhta");
  EXPECT_GT(jw1, 0.94);
  // Different strings entirely.
  EXPECT_LT(JaroWinkler("abc", "xyz"), 0.1);
  // Prefix boost: marth~ closer than ~artha rearrangements.
  EXPECT_GT(JaroWinkler("prefixed", "prefixes"),
            JaroWinkler("prefixed", "refixedp"));
}

TEST(StringsTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
  EXPECT_NEAR(TokenJaccard("apple store", "apple shop"), 1.0 / 3.0, 1e-9);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(HashTest, Crc32KnownVector) {
  // Standard test vector for CRC-32/IEEE.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(HashTest, Hash64Disperses) {
  std::unordered_set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(Hash64("key" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, MixHashChangesValue) {
  EXPECT_NE(MixHash64(1), MixHash64(2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, WeightedRespectsZeroWeight) {
  Rng rng(13);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextWeighted(weights), 1u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(CsvTest, ParsesSimpleTable) {
  auto table = CsvTable::Parse("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "4");
}

TEST(CsvTest, HandlesQuotedFields) {
  auto table = CsvTable::Parse("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "Smith, John");
  EXPECT_EQ(table->rows[0][1], "said \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = CsvTable::Parse("a,b\n1\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto table = CsvTable::Parse("a\n\"oops\n");
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RoundTrips) {
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{"1", "a,b"}, {"2", "line\nbreak"}};
  auto parsed = CsvTable::Parse(t.ToCsv());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, t.rows);
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto table = CsvTable::ReadFile("/nonexistent/file.csv");
  EXPECT_EQ(table.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Vectorized kernel equivalence: the SWAR fast paths in strings.cc must be
// bitwise identical to straightforward reference formulations.

namespace reference {

int EditDistanceDp(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(n + 1), cur(n + 1);
  for (size_t i = 0; i <= n; ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= m; ++j) {
    cur[0] = static_cast<int>(j);
    for (size_t i = 1; i <= n; ++i) {
      int sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double JaroWinklerFlags(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  const int window = std::max(0, std::max(la, lb) / 2 - 1);
  std::vector<bool> matched_a(la, false), matched_b(lb, false);
  int matches = 0;
  for (int i = 0; i < la; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(lb - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = matched_b[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = matches;
  double jaro = (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
  int prefix = 0;
  for (int i = 0; i < std::min({la, lb, 4}); ++i) {
    if (a[i] == b[i]) {
      ++prefix;
    } else {
      break;
    }
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double TokenJaccardSets(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = Tokenize(a);
  std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const auto& tok : sa) inter += sb.count(tok);
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::string RandomWord(Rng& rng, size_t max_len, int alphabet) {
  std::string out;
  const size_t len = rng.NextBounded(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(
        static_cast<char>('a' + rng.NextBounded(
                                    static_cast<uint64_t>(alphabet))));
  }
  return out;
}

}  // namespace reference

TEST(StringsTest, MyersEditDistanceMatchesDpReference) {
  // Hand cases around the 64-char word boundary and then a fuzz sweep.
  std::string sixty_four(64, 'a');
  std::string sixty_five(65, 'a');
  EXPECT_EQ(EditDistance(sixty_four, sixty_five), 1);
  EXPECT_EQ(EditDistance(sixty_four, sixty_four), 0);
  Rng rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    // Small alphabet maximizes repeated characters (the peq-mask stress).
    std::string a = reference::RandomWord(rng, 70, 4);
    std::string b = reference::RandomWord(rng, 70, 4);
    ASSERT_EQ(EditDistance(a, b), reference::EditDistanceDp(a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST(StringsTest, SwarJaroWinklerMatchesFlagReferenceBitwise) {
  Rng rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    std::string a = reference::RandomWord(rng, 70, 5);
    std::string b = reference::RandomWord(rng, 70, 5);
    const double got = JaroWinkler(a, b);
    const double want = reference::JaroWinklerFlags(a, b);
    // Bitwise, not approximate: the SWAR path must pick the same matches.
    ASSERT_EQ(got, want) << "a=" << a << " b=" << b;
  }
}

TEST(StringsTest, MergeTokenJaccardMatchesSetReference) {
  Rng rng(13);
  for (int iter = 0; iter < 200; ++iter) {
    std::string a, b;
    for (uint64_t w = rng.NextBounded(6); w > 0; --w) {
      a += reference::RandomWord(rng, 5, 3) + " ";
    }
    for (uint64_t w = rng.NextBounded(6); w > 0; --w) {
      b += reference::RandomWord(rng, 5, 3) + " ";
    }
    ASSERT_EQ(TokenJaccard(a, b), reference::TokenJaccardSets(a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST(StringsTest, SortedUniqueTokensSortsAndDedups) {
  auto toks = SortedUniqueTokens("Beta alpha BETA gamma alpha");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "alpha");
  EXPECT_EQ(toks[1], "beta");
  EXPECT_EQ(toks[2], "gamma");
  EXPECT_TRUE(SortedUniqueTokens("").empty());
}

TEST(StringsTest, PreTokenizedEntryPointsMatchStringEntryPoints) {
  const char* samples[] = {"apple store",     "apple shop",
                           "Galaxy S21 5G",   "galaxy s21",
                           "one two two three", ""};
  for (const char* a : samples) {
    for (const char* b : samples) {
      EXPECT_EQ(TokenJaccard(a, b),
                TokenJaccardSorted(SortedUniqueTokens(a),
                                   SortedUniqueTokens(b)));
      EXPECT_EQ(SoftTokenSimilarity(a, b),
                SoftTokenSimilarityTokens(Tokenize(a), Tokenize(b)));
    }
  }
}

}  // namespace
}  // namespace rock
