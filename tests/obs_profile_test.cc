// Tests for the continuous-profiling plane: per-thread resource counters,
// per-span CPU/allocation attribution, the open-span registry, the
// sampling CPU profiler, the schedule-breakdown collector, and the stall
// watchdog.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/status.h"
#include "src/obs/exporters.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/resource.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"

namespace rock::obs {

// External linkage on purpose: -rdynamic exports it, so the profiler's
// offline symbolization can name the hot frame in the folded stacks.
__attribute__((noinline)) double ProfileTestBusyWork(int iters) {
  volatile double acc = 0.0;
  for (int i = 0; i < iters; ++i) {
    acc = acc + std::sqrt(static_cast<double>(i % 1000) + 1.0);
  }
  return acc;
}

namespace {

/// Burns roughly `cpu_seconds` of on-CPU time on the calling thread.
/// Checks the clock only every few calls: under sanitizers the
/// intercepted clock_gettime is expensive enough to otherwise dominate
/// the profile and starve the busy-work frame of samples.
void BurnCpu(double cpu_seconds) {
  double start = ThreadCpuSeconds();
  while (ThreadCpuSeconds() - start < cpu_seconds) {
    for (int i = 0; i < 16; ++i) ProfileTestBusyWork(20000);
  }
}

/// True when the sampled stacks mostly belong to a sanitizer runtime, in
/// which case asserting on a specific hot symbol is meaningless.
constexpr bool SanitizedBuild() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(ResourceTest, ThreadCpuSecondsAdvancesWithWork) {
  double before = ThreadCpuSeconds();
  ASSERT_GE(before, 0.0);
  BurnCpu(0.02);
  EXPECT_GE(ThreadCpuSeconds() - before, 0.02);
}

TEST(ResourceTest, ThreadCpuSecondsIsPerThread) {
  // A sleeping sibling burns (almost) nothing while this thread works.
  std::atomic<double> sibling_cpu{-1.0};
  std::thread sleeper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    sibling_cpu.store(ThreadCpuSeconds());
  });
  BurnCpu(0.05);
  sleeper.join();
  EXPECT_LT(sibling_cpu.load(), 0.04);
}

TEST(ResourceTest, ProcessRssBytesPositive) {
  EXPECT_GT(ProcessRssBytes(), 0u);
}

TEST(ResourceTest, AllocCountersTrackOperatorNew) {
  if (!AllocTrackingEnabled()) {
    // Release builds default to ROCK_OBS_ALLOC_TRACK=OFF; the counters
    // must then read zero rather than garbage.
    EXPECT_EQ(ThreadAllocBytes(), 0u);
    EXPECT_EQ(ThreadAllocCount(), 0u);
    return;
  }
  uint64_t bytes_before = ThreadAllocBytes();
  uint64_t count_before = ThreadAllocCount();
  {
    std::vector<char> block(1 << 16);
    // Defeat dead-store elimination of the allocation.
    block[0] = 1;
    ASSERT_EQ(block[0], 1);
  }
  EXPECT_GE(ThreadAllocBytes() - bytes_before, uint64_t{1} << 16);
  EXPECT_GT(ThreadAllocCount(), count_before);
}

#ifndef ROCK_OBS_DISABLE_PROFILER

TEST(ScopedSpanResourceTest, CpuSecondsAttributedToSpan) {
  Tracer tracer(64);
  {
    ScopedSpan span("profile.test.busy", tracer);
    BurnCpu(0.03);
  }
  auto stats = tracer.AggregateByName();
  ASSERT_EQ(stats.count("profile.test.busy"), 1u);
  EXPECT_GE(stats["profile.test.busy"].cpu_seconds, 0.02);
  // On-CPU time can never exceed wall time for a single thread.
  EXPECT_LE(stats["profile.test.busy"].cpu_seconds,
            stats["profile.test.busy"].total_seconds + 1e-3);
}

TEST(ScopedSpanResourceTest, AllocBytesAttributedToSpan) {
  if (!AllocTrackingEnabled()) GTEST_SKIP() << "alloc tracking off";
  Tracer tracer(64);
  {
    ScopedSpan span("profile.test.alloc", tracer);
    std::vector<char> block(1 << 18);
    block[0] = 1;
    ASSERT_EQ(block[0], 1);
  }
  auto stats = tracer.AggregateByName();
  ASSERT_EQ(stats.count("profile.test.alloc"), 1u);
  EXPECT_GE(stats["profile.test.alloc"].alloc_bytes, uint64_t{1} << 18);
}

TEST(OpenSpanRegistryTest, ListsInnermostAndRestoresParent) {
  Tracer tracer(64);
  uint32_t self = ThisThreadTraceId();
  auto mine = [&](const std::vector<OpenSpanInfo>& open) -> const char* {
    for (const OpenSpanInfo& span : open) {
      if (span.thread == self) return span.name;
    }
    return nullptr;
  };
  {
    ScopedSpan outer("profile.test.outer", tracer);
    EXPECT_STREQ(mine(OpenSpans()), "profile.test.outer");
    {
      ScopedSpan inner("profile.test.inner", tracer);
      EXPECT_STREQ(mine(OpenSpans()), "profile.test.inner");
    }
    // Closing the inner span restores the outer one in the registry.
    EXPECT_STREQ(mine(OpenSpans()), "profile.test.outer");
  }
  EXPECT_EQ(mine(OpenSpans()), nullptr);
}

TEST(CpuProfilerTest, RejectsBadOptions) {
  ProfileOptions options;
  options.sample_hz = 0;
  EXPECT_EQ(CpuProfiler::Global().Start(options).code(),
            StatusCode::kInvalidArgument);
  options.sample_hz = 97;
  options.max_samples = 0;
  EXPECT_EQ(CpuProfiler::Global().Start(options).code(),
            StatusCode::kInvalidArgument);
}

TEST(CpuProfilerTest, StopWithoutStartFailsCleanly) {
  EXPECT_EQ(CpuProfiler::Global().Stop().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CpuProfilerTest, CollectsAndSymbolizesBusyStacks) {
  ProfileOptions options;
  options.sample_hz = 997;  // fast sampling keeps the test short
  ASSERT_TRUE(CpuProfiler::Global().Start(options).ok());
  EXPECT_TRUE(CpuProfiler::Global().running());
  // Double start must fail while running.
  EXPECT_EQ(CpuProfiler::Global().Start(options).code(),
            StatusCode::kFailedPrecondition);

  BurnCpu(0.2);

  // Partial snapshot while still running (the watchdog's view).
  ProfileSnapshot partial = CpuProfiler::Global().TakeSnapshot();
  EXPECT_TRUE(partial.running);

  ASSERT_TRUE(CpuProfiler::Global().Stop().ok());
  EXPECT_FALSE(CpuProfiler::Global().running());

  ProfileSnapshot snap = CpuProfiler::Global().TakeSnapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_FALSE(snap.running);
  EXPECT_EQ(snap.sample_hz, 997);
  EXPECT_GT(snap.duration_seconds, 0.0);
  ASSERT_GT(snap.samples, 10u);
  ASSERT_FALSE(snap.folded.empty());

  // The busy frame has external linkage and the binary links -rdynamic,
  // so symbolization must find it by name. Under a sanitizer the runtime
  // burns most of the CPU, so only the stacks' existence is asserted.
  std::string folded = CpuProfiler::Global().Folded();
  std::string json = CpuProfiler::Global().Json();
  EXPECT_NE(json.find("\"enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"stacks\""), std::string::npos);
  EXPECT_FALSE(folded.empty());
  if (!SanitizedBuild()) {
    EXPECT_NE(folded.find("ProfileTestBusyWork"), std::string::npos) << folded;
    EXPECT_NE(folded.find("rock"), std::string::npos);
    EXPECT_NE(json.find("ProfileTestBusyWork"), std::string::npos);
  }
}

TEST(CpuProfilerTest, ConcurrentRegisteredThreadsAreSampled) {
  ProfileOptions options;
  options.sample_hz = 997;
  ASSERT_TRUE(CpuProfiler::Global().Start(options).ok());
  std::vector<std::thread> workers;
  workers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([] {
      ProfilerRegisterThisThread();
      BurnCpu(0.1);
    });
  }
  for (std::thread& worker : workers) worker.join();
  ASSERT_TRUE(CpuProfiler::Global().Stop().ok());
  ProfileSnapshot snap = CpuProfiler::Global().TakeSnapshot();
  EXPECT_GT(snap.samples, 0u);
}

TEST(ScheduleBreakdownsTest, RetainsBoundedNewestAndResets) {
  ScheduleBreakdowns collector;
  for (int i = 0; i < 40; ++i) {
    WorkerBreakdown breakdown;
    breakdown.label = "threads-2#" + std::to_string(i);
    breakdown.mode = "threads";
    breakdown.workers = 2;
    breakdown.busy_seconds = {0.1, 0.2};
    breakdown.wait_seconds = {0.0, 0.1};
    breakdown.idle_seconds = {0.2, 0.0};
    collector.Add(std::move(breakdown));
  }
  std::vector<WorkerBreakdown> snap = collector.Snapshot();
  ASSERT_EQ(snap.size(), ScheduleBreakdowns::kMaxRetained);
  // Oldest evicted, newest last.
  EXPECT_EQ(snap.front().label, "threads-2#8");
  EXPECT_EQ(snap.back().label, "threads-2#39");
  collector.Reset();
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(ScheduleBreakdownsTest, ExportJsonCarriesWaitBreakdown) {
  MetricsRegistry registry;
  WorkerBreakdown breakdown;
  breakdown.label = "threads-2#0";
  breakdown.mode = "threads";
  breakdown.workers = 2;
  breakdown.wall_seconds = 0.5;
  breakdown.busy_seconds = {0.4, 0.3};
  breakdown.wait_seconds = {0.05, 0.1};
  breakdown.idle_seconds = {0.05, 0.1};
  std::string json =
      ExportJson(registry.Snap(), {}, 0, {breakdown});
  EXPECT_NE(json.find("\"wait_breakdown\""), std::string::npos);
  EXPECT_NE(json.find("\"threads-2#0\""), std::string::npos);
  EXPECT_NE(json.find("\"busy_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"idle_seconds\""), std::string::npos);
}

TEST(StallWatchdogTest, StartValidatesAndStopIsIdempotent) {
  WatchdogOptions bad;
  bad.span_deadline_seconds = 0.0;
  EXPECT_EQ(StallWatchdog::Global().Start(bad).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(StallWatchdog::Global().Stop().ok());  // not running: no-op

  WatchdogOptions options;
  options.poll_interval_seconds = 0.02;
  ASSERT_TRUE(StallWatchdog::Global().Start(options).ok());
  EXPECT_TRUE(StallWatchdog::Global().running());
  EXPECT_EQ(StallWatchdog::Global().Start(options).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(StallWatchdog::Global().Stop().ok());
  EXPECT_FALSE(StallWatchdog::Global().running());
}

TEST(StallWatchdogTest, BuildDumpListsOpenSpansAndPool) {
  ScopedSpan span("profile.test.dumped", Tracer::Global());
  std::string dump = StallWatchdog::Global().BuildDump("unit test");
  EXPECT_NE(dump.find("reason: unit test"), std::string::npos);
  EXPECT_NE(dump.find("profile.test.dumped"), std::string::npos);
  EXPECT_NE(dump.find("queue_depth="), std::string::npos);
  EXPECT_NE(dump.find("partial profile"), std::string::npos);
}

TEST(StallWatchdogTest, ConcurrentStuckSpanTripsAndDumps) {
  std::string dump_path =
      ::testing::TempDir() + "rock_watchdog_dump.txt";
  std::remove(dump_path.c_str());

  uint64_t stalls_before = StallWatchdog::Global().stalls_detected();
  WatchdogOptions options;
  options.span_deadline_seconds = 0.05;
  options.progress_deadline_seconds = 60.0;
  options.poll_interval_seconds = 0.02;
  options.dump_path = dump_path;
  ASSERT_TRUE(StallWatchdog::Global().Start(options).ok());
  {
    ScopedSpan stuck("profile.test.stuck", Tracer::Global());
    // Hold the span open well past the deadline across several polls; the
    // per-span-id dedup must still report it exactly once.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  EXPECT_TRUE(StallWatchdog::Global().Stop().ok());
  EXPECT_EQ(StallWatchdog::Global().stalls_detected() - stalls_before, 1u);

  std::FILE* f = std::fopen(dump_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(dump_path.c_str());
  EXPECT_NE(contents.find("profile.test.stuck"), std::string::npos);
  EXPECT_NE(contents.find("watchdog diagnostic bundle"), std::string::npos);
}

TEST(StallWatchdogTest, QueuedWorkWithoutProgressTrips) {
  Gauge* depth = MetricsRegistry::Global().GetGauge("rock_par_queue_depth");
  int64_t saved_depth = depth->Value();
  depth->Set(4);  // queued units, and nothing will complete them

  uint64_t stalls_before = StallWatchdog::Global().stalls_detected();
  WatchdogOptions options;
  options.span_deadline_seconds = 60.0;
  options.progress_deadline_seconds = 0.05;
  options.poll_interval_seconds = 0.02;
  ASSERT_TRUE(StallWatchdog::Global().Start(options).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(StallWatchdog::Global().Stop().ok());
  depth->Set(saved_depth);
  EXPECT_EQ(StallWatchdog::Global().stalls_detected() - stalls_before, 1u);
}

#endif  // !ROCK_OBS_DISABLE_PROFILER

}  // namespace
}  // namespace rock::obs
