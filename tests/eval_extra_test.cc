#include <memory>

#include <gtest/gtest.h>

#include "src/chase/chase.h"
#include "src/common/mutex.h"
#include "src/ml/correlation.h"
#include "src/ml/library.h"
#include "src/rules/parser.h"
#include "src/workload/ecommerce.h"

namespace rock {
namespace {

using workload::EcommerceData;
using workload::MakeEcommerceData;

class EvalExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeEcommerceData();
    models_.RegisterPair("Mlimited",
                         std::make_shared<ml::SimilarityClassifier>(0.9));
  }
  rules::EvalContext Ctx() {
    rules::EvalContext ctx;
    ctx.db = &data_.db;
    ctx.graph = &data_.graph;
    ctx.models = &models_;
    return ctx;
  }
  rules::Ree Parse(const std::string& text) {
    auto rule = rules::ParseRee(text, data_.db.schema());
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    rules::Ree out = rule.ok() ? *rule : rules::Ree{};
    out.id = "x";
    return out;
  }
  EcommerceData data_;
  ml::MlLibrary models_;
};

TEST_F(EvalExtraTest, CrossRelationJoin) {
  // Transactions join stores through sid: every transaction's sid matches
  // exactly one store.
  rules::Ree rule = Parse(
      "Trans(t0) ^ Store(t1) ^ t0.sid = t1.sid -> t1.type = t1.type");
  rules::Evaluator eval(Ctx());
  size_t joins = 0;
  eval.ForEachSatisfying(rule, [&](const rules::Valuation& v) {
    // Verify the join key really matches.
    EXPECT_EQ(eval.GetCell(rule, v, 0, 1), eval.GetCell(rule, v, 1, 0));
    ++joins;
    return true;
  });
  EXPECT_EQ(joins, 5u);  // one store per transaction
}

TEST_F(EvalExtraTest, FourVariableRuleAcrossTwoRelations) {
  // φ10 (paper Example 4): Trans(t) ∧ Trans(t') ∧ Store(s) ∧ Store(s') ∧
  // t.sid = s.sid ∧ t'.sid = s'.sid ∧ Mlimited(t[com], t'[com]) →
  // s.type = s'.type. The two Mate X2 (Limited Sold) rows are sold in
  // stores s3 (Electron.) and s4 (Sports): a CR violation across tables.
  rules::Ree rule = Parse(
      "Trans(t0) ^ Trans(t1) ^ Store(t2) ^ Store(t3) ^ t0.sid = t2.sid ^ "
      "t1.sid = t3.sid ^ Mlimited(t0[com], t1[com]) ^ t0.pid != t1.pid -> "
      "t2.type = t3.type");
  rules::Evaluator eval(Ctx());
  size_t violations = 0;
  eval.ForEachViolation(rule, [&](const rules::Valuation& v) {
    // The violating commodity is the limited-sold Mate X2.
    EXPECT_NE(eval.GetCell(rule, v, 0, 2).AsString().find("Mate X2"),
              std::string::npos);
    ++violations;
    return true;
  });
  EXPECT_EQ(violations, 2u);  // both orientations
}

TEST_F(EvalExtraTest, ThreeVariableChainJoin) {
  // φ13-style: two persons joined through pid plus a third tuple variable
  // over transactions referencing the same person.
  rules::Ree rule = Parse(
      "Person(t0) ^ Person(t1) ^ Trans(t2) ^ t0.pid = t1.pid ^ "
      "t2.pid = t0.pid -> t0.LN = t1.LN");
  rules::Evaluator eval(Ctx());
  size_t count = 0;
  eval.ForEachSatisfying(rule, [&](const rules::Valuation&) {
    ++count;
    return true;
  });
  // p2 has two person rows (t2, t3) and one transaction; p1/p3/p4 have one
  // row each with their transactions. All satisfy the consequence (same
  // LN within a pid), so no violations:
  size_t violations = 0;
  eval.ForEachViolation(rule, [&](const rules::Valuation&) {
    ++violations;
    return true;
  });
  EXPECT_GT(count, 0u);
  EXPECT_EQ(violations, 0u);
}

TEST_F(EvalExtraTest, InequalityComparisonPredicates) {
  // φ6-style: accumulated sales comparisons.
  rules::Ree rule = Parse(
      "Store(t0) ^ Store(t1) ^ t0.accu_sales < t1.accu_sales -> "
      "t0.sid != t1.sid");
  rules::Evaluator eval(Ctx());
  size_t satisfied = 0;
  eval.ForEachSatisfying(rule, [&](const rules::Valuation& v) {
    EXPECT_LT(eval.GetCell(rule, v, 0, 4).AsDouble(),
              eval.GetCell(rule, v, 1, 4).AsDouble());
    ++satisfied;
    return true;
  });
  // Stores with non-null sales: 15M, 11M, 10M -> 3 ordered pairs.
  EXPECT_EQ(satisfied, 3u);
}

TEST_F(EvalExtraTest, NotEqualConsequenceIsDetectionOnly) {
  // A ≠-consequence deduces no fix in the chase (there is no value to
  // assign), but it still constrains EIDs via AddEidDistinct.
  rules::Ree rule = Parse(
      "Person(t0) ^ Person(t1) ^ t0.gender != t1.gender -> "
      "t0.eid != t1.eid");
  chase::ChaseEngine engine(&data_.db, &data_.graph, &models_);
  chase::ChaseResult result = engine.Run({rule});
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.fixes_applied, 0u);  // distinctness facts recorded
  // A later attempt to merge a male with a female person conflicts.
  bool changed = false;
  common::RoleGuard apply(engine.fix_store().apply_role());
  Status s = engine.fix_store().MergeEids(101, 103, "er", &changed);
  EXPECT_EQ(s.code(), StatusCode::kConflict);
}

// ---------- Conflict-resolution paths (§4.2 (2) and (3)) ----------

TEST_F(EvalExtraTest, MiConflictResolvedByMcArgmax) {
  // Two constant rules disagree about a store's area code; M_c (trained on
  // a relation where Beijing co-occurs with 010) picks the right one.
  Relation training(Schema("T", {{"location", ValueType::kString},
                                 {"area_code", ValueType::kString}}));
  for (int i = 0; i < 10; ++i) {
    Tuple t;
    t.values = {Value::String("Beijing"), Value::String("010")};
    ASSERT_TRUE(training.Append(std::move(t)).ok());
  }
  auto correlation = std::make_shared<ml::CooccurrenceModel>();
  correlation->TrainOnRelation(training);
  // The trained model keys on attribute indices; Store's location/area
  // are attrs 3/5, so train on the Store relation itself too.
  correlation->TrainOnRelation(data_.db.relation(data_.store));
  models_.RegisterCorrelation("Mc", correlation);

  std::vector<rules::Ree> conflicting;
  conflicting.push_back(Parse(
      "Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '999'"));
  conflicting.push_back(Parse(
      "Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '021'"));
  conflicting[0].id = "bad";
  conflicting[1].id = "alt";
  chase::ChaseEngine engine(&data_.db, &data_.graph, &models_);
  // M_c assesses candidates against the tuple's VALIDATED values (§2.3),
  // so the stores' locations must be ground truth first.
  const Relation& store = data_.db.relation(data_.store);
  {
    common::RoleGuard apply(engine.fix_store().apply_role());
    for (size_t row = 0; row < store.size(); ++row) {
      if (!store.tuple(row).value(3).is_null()) {
        ASSERT_TRUE(engine.fix_store()
                        .AddGroundTruthValue(data_.store,
                                             store.tuple(row).tid, 3,
                                             store.tuple(row).value(3))
                        .ok());
      }
    }
  }
  chase::ChaseResult result = engine.Run(conflicting);
  // A value conflict occurred and was resolved via M_c argmax (not the
  // user queue).
  bool argmax_used = false;
  for (const auto& conflict : result.conflicts) {
    if (conflict.resolution.rfind("mc_argmax", 0) == 0) argmax_used = true;
  }
  EXPECT_TRUE(argmax_used);
}

TEST_F(EvalExtraTest, TdConflictRecordsConfidence) {
  // Contradictory strict orders: the second is rejected and the conflict
  // log records the (attempted) resolution.
  rules::Ree forward = Parse(
      "Person(t0) ^ Person(t1) ^ t0.status = 'single' ^ "
      "t1.status = 'married' -> t0 <[status] t1");
  rules::Ree backward = Parse(
      "Person(t0) ^ Person(t1) ^ t0.status = 'single' ^ "
      "t1.status = 'married' -> t1 <[status] t0");
  forward.id = "fwd";
  backward.id = "bwd";
  chase::ChaseEngine engine(&data_.db, &data_.graph, &models_);
  chase::ChaseResult result = engine.Run({forward, backward});
  bool td_conflict = false;
  for (const auto& conflict : result.conflicts) {
    if (conflict.kind == chase::ConflictRecord::Kind::kTemporal) {
      td_conflict = true;
      EXPECT_FALSE(conflict.resolution.empty());
    }
  }
  EXPECT_TRUE(td_conflict);
  // The store stays valid: for any pair at most one strict direction.
  const Relation& person = data_.db.relation(data_.person);
  int64_t t2 = person.tuple(1).tid;
  int64_t t3 = person.tuple(2).tid;
  auto fwd_holds = engine.fix_store().Holds(data_.person, 5, t2, t3, true);
  auto bwd_holds = engine.fix_store().Holds(data_.person, 5, t3, t2, true);
  EXPECT_FALSE(fwd_holds == std::optional<bool>(true) &&
               bwd_holds == std::optional<bool>(true));
}

TEST_F(EvalExtraTest, OverlayChangesEvaluationOutcome) {
  // A fix store overlay flips a predicate: before the fix, the rule fires;
  // after validating the corrected value, it no longer does.
  chase::FixStore store(&data_.db);
  rules::EvalContext ctx = Ctx();
  ctx.overlay = &store;
  rules::Evaluator eval(ctx);
  rules::Ree rule = Parse(
      "Trans(t0) ^ t0.mfg = 'Apple' ^ t0.com = 'Mate X2 (Limited Sold)' -> "
      "t0.price = t0.price");
  size_t before = 0;
  eval.ForEachSatisfying(rule, [&](const rules::Valuation&) {
    ++before;
    return true;
  });
  EXPECT_EQ(before, 1u);  // the erroneous Apple-branded Mate X2

  const Relation& trans = data_.db.relation(data_.trans);
  bool changed = false;
  common::RoleGuard apply(store.apply_role());
  ASSERT_TRUE(store
                  .SetValue(data_.trans, trans.tuple(4).tid, 3,
                            Value::String("Huawei"), "fix", &changed)
                  .ok());
  size_t after = 0;
  eval.ForEachSatisfying(rule, [&](const rules::Valuation&) {
    ++after;
    return true;
  });
  EXPECT_EQ(after, 0u);
}

}  // namespace
}  // namespace rock
