#include <gtest/gtest.h>

#include "src/detect/detector.h"
#include "src/rules/classic.h"
#include "src/rules/eval.h"
#include "src/storage/loader.h"
#include "src/workload/ecommerce.h"

namespace rock {
namespace {

// ---------- CSV loader ----------

const char* kCsv =
    "entity,name,age,salary,city,city__ts\n"
    "e1,Ann,34,1000.5,Beijing,100\n"
    "e1,Ann,35,1100.5,Shanghai,200\n"
    "e2,Bob,NA,,Beijing,\n";

TEST(LoaderTest, InfersTypesAndSkipsSpecialColumns) {
  auto table = CsvTable::Parse(kCsv);
  ASSERT_TRUE(table.ok());
  CsvLoadOptions options;
  options.eid_column = "entity";
  auto schema = InferCsvSchema("People", *table, options);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 4u);  // name, age, salary, city
  EXPECT_EQ(schema->AttributeType(schema->AttributeIndex("name")),
            ValueType::kString);
  EXPECT_EQ(schema->AttributeType(schema->AttributeIndex("age")),
            ValueType::kInt);
  EXPECT_EQ(schema->AttributeType(schema->AttributeIndex("salary")),
            ValueType::kDouble);
  EXPECT_EQ(schema->AttributeIndex("entity"), -1);
  EXPECT_EQ(schema->AttributeIndex("city__ts"), -1);
}

TEST(LoaderTest, LoadsRowsEidsAndTimestamps) {
  auto table = CsvTable::Parse(kCsv);
  ASSERT_TRUE(table.ok());
  CsvLoadOptions options;
  options.eid_column = "entity";
  Database db;
  auto rel = AddRelationFromCsv(&db, "People", *table, options);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  const Relation& people = db.relation(*rel);
  ASSERT_EQ(people.size(), 3u);
  // Rows 0 and 1 share the textual entity key "e1".
  EXPECT_EQ(people.tuple(0).eid, people.tuple(1).eid);
  EXPECT_NE(people.tuple(0).eid, people.tuple(2).eid);
  // Timestamps landed on the city attribute.
  int city = people.schema().AttributeIndex("city");
  EXPECT_EQ(people.tuple(0).timestamp(city), 100);
  EXPECT_EQ(people.tuple(1).timestamp(city), 200);
  EXPECT_EQ(people.tuple(2).timestamp(city), kNoTimestamp);
  // Null literals parsed as nulls.
  int age = people.schema().AttributeIndex("age");
  int salary = people.schema().AttributeIndex("salary");
  EXPECT_TRUE(people.tuple(2).value(age).is_null());
  EXPECT_TRUE(people.tuple(2).value(salary).is_null());
}

TEST(LoaderTest, RejectsMissingColumns) {
  auto table = CsvTable::Parse("a,b\n1,2\n");
  ASSERT_TRUE(table.ok());
  DatabaseSchema schema;
  ASSERT_TRUE(schema
                  .AddRelation(Schema("T", {{"a", ValueType::kInt},
                                            {"missing", ValueType::kInt}}))
                  .ok());
  Database db(std::move(schema));
  auto loaded = LoadCsvInto(&db, 0, *table);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoaderTest, RejectsTypeErrorsWithRowContext) {
  auto table = CsvTable::Parse("a\n1\ntwo\n");
  ASSERT_TRUE(table.ok());
  DatabaseSchema schema;
  ASSERT_TRUE(
      schema.AddRelation(Schema("T", {{"a", ValueType::kInt}})).ok());
  Database db(std::move(schema));
  auto loaded = LoadCsvInto(&db, 0, *table);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("row 1"), std::string::npos);
}

TEST(LoaderTest, RoundTripsThroughCsv) {
  auto table = CsvTable::Parse(kCsv);
  ASSERT_TRUE(table.ok());
  CsvLoadOptions options;
  options.eid_column = "entity";
  Database db;
  auto rel = AddRelationFromCsv(&db, "People", *table, options);
  ASSERT_TRUE(rel.ok());

  CsvTable exported = RelationToCsv(db.relation(*rel));
  CsvLoadOptions reload_options;
  reload_options.eid_column = "eid";
  Database db2;
  auto rel2 = AddRelationFromCsv(&db2, "People", exported, reload_options);
  ASSERT_TRUE(rel2.ok()) << rel2.status().ToString();
  const Relation& a = db.relation(*rel);
  const Relation& b = db2.relation(*rel2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t row = 0; row < a.size(); ++row) {
    EXPECT_EQ(a.tuple(row).eid, b.tuple(row).eid);
    for (size_t attr = 0; attr < a.schema().num_attributes(); ++attr) {
      // Note: ints reloaded from a double-rendered CSV may differ in type
      // but compare equal through Value's numeric cross-comparison.
      EXPECT_EQ(a.tuple(row).value(static_cast<int>(attr)),
                b.tuple(row).value(static_cast<int>(attr)));
    }
  }
}

// ---------- Classic constraints ----------

class ClassicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = workload::MakeEcommerceData();
    models_.RegisterPair("MER",
                         std::make_shared<ml::SimilarityClassifier>(0.6));
  }
  rules::EvalContext Ctx() {
    rules::EvalContext ctx;
    ctx.db = &data_.db;
    ctx.models = &models_;
    return ctx;
  }
  workload::EcommerceData data_;
  ml::MlLibrary models_;
};

TEST_F(ClassicTest, CfdEmbedsWithPattern) {
  // CFD: Store([location] -> [area_code], (Shanghai || _)).
  rules::Cfd cfd;
  cfd.relation = "Store";
  cfd.lhs = {"location"};
  cfd.rhs = {"area_code"};
  cfd.pattern = {"Shanghai"};
  auto rees = rules::CfdToRees(cfd, data_.db.schema());
  ASSERT_TRUE(rees.ok()) << rees.status().ToString();
  ASSERT_EQ(rees->size(), 1u);
  // Shanghai stores agree on 021: no violations.
  detect::ErrorDetector detector(Ctx());
  EXPECT_EQ(detector.Detect(*rees).violations, 0u);

  // The unconditional variant catches the Beijing stores' null codes.
  cfd.pattern = {"_"};
  auto unconditional = rules::CfdToRees(cfd, data_.db.schema());
  ASSERT_TRUE(unconditional.ok());
  EXPECT_GT(detector.Detect(*unconditional).violations, 0u);
}

TEST_F(ClassicTest, DcEmbedsAsHeldOutNegation) {
  // DC: no two transactions with the same commodity may differ on mfg —
  // ¬(t0.com = t1.com ∧ t0.mfg != t1.mfg).
  rules::DenialConstraint dc;
  dc.relation = "Trans";
  dc.predicates = {{"com", rules::CmpOp::kEq, "com"},
                   {"mfg", rules::CmpOp::kNe, "mfg"}};
  auto ree = rules::DcToRee(dc, data_.db.schema());
  ASSERT_TRUE(ree.ok()) << ree.status().ToString();
  // Consequence is the negation of the last predicate: mfg = mfg.
  EXPECT_EQ(ree->consequence.op, rules::CmpOp::kEq);
  detect::ErrorDetector detector(Ctx());
  // The Mate X2 rows (Huawei vs Apple) witness the DC in both orders.
  EXPECT_EQ(detector.Detect({*ree}).violations, 2u);
}

TEST_F(ClassicTest, MdEmbedsWithMlMatcher) {
  rules::MatchingDependency md;
  md.relation = "Trans";
  md.similar_attrs = {"com"};
  auto ree = rules::MdToRee(md, data_.db.schema());
  ASSERT_TRUE(ree.ok()) << ree.status().ToString();
  EXPECT_TRUE(ree->UsesMl());
  EXPECT_EQ(ree->Task(), rules::RuleTask::kEr);
  detect::ErrorDetector detector(Ctx());
  auto report = detector.Detect({*ree});
  EXPECT_GT(report.violations, 0u);
  for (const auto& error : report.errors) {
    EXPECT_EQ(error.error_class, detect::ErrorClass::kDuplicate);
  }
}

TEST_F(ClassicTest, ConversionErrorsSurfaceCleanly) {
  rules::Cfd bad_cfd;
  bad_cfd.relation = "Nope";
  bad_cfd.lhs = {"x"};
  bad_cfd.rhs = {"y"};
  EXPECT_FALSE(rules::CfdToRees(bad_cfd, data_.db.schema()).ok());

  rules::DenialConstraint empty_dc;
  empty_dc.relation = "Trans";
  EXPECT_FALSE(rules::DcToRee(empty_dc, data_.db.schema()).ok());

  rules::MatchingDependency bad_md;
  bad_md.relation = "Trans";
  bad_md.similar_attrs = {"nosuch"};
  EXPECT_FALSE(rules::MdToRee(bad_md, data_.db.schema()).ok());
}

}  // namespace
}  // namespace rock
