// Why-provenance: witness capture in the chase, proof-tree expansion, the
// Explain API, conflict-record derivation links, and the JSON round-trip of
// the audit trail.

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/chase/chase.h"
#include "src/chase/fix_store.h"
#include "src/common/json.h"
#include "src/common/mutex.h"
#include "src/core/engine.h"
#include "src/ml/correlation.h"
#include "src/ml/library.h"
#include "src/ml/ranking.h"
#include "src/obs/provenance.h"
#include "src/rules/parser.h"
#include "src/workload/ecommerce.h"

namespace rock {
namespace {

using chase::ChaseEngine;
using chase::ChaseOptions;
using chase::ConflictRecord;
using chase::FixRecord;
using chase::FixStore;
using rules::Ree;

// The OFF build still runs this binary; capture-dependent assertions skip.
#define SKIP_WITHOUT_PROVENANCE()                         \
  if constexpr (!obs::kProvenanceEnabled) {               \
    GTEST_SKIP() << "provenance capture compiled out";    \
  }

Ree MustParse(const std::string& text, const DatabaseSchema& schema,
              const std::string& id) {
  auto rule = rules::ParseRee(text, schema);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString() << " for " << text;
  Ree out = *rule;
  out.id = id;
  return out;
}

// ---------- ProvenanceGraph unit tests ----------

obs::ProvenanceNode MakeNode(obs::ProvKind kind, const std::string& rule_id,
                             std::vector<int64_t> upstream) {
  obs::ProvenanceNode node;
  node.kind = kind;
  node.rule_id = rule_id;
  node.target = rule_id + " target";
  node.upstream = std::move(upstream);
  return node;
}

TEST(ProvenanceGraphTest, DepthAndBoundedExpansion) {
  obs::ProvenanceGraph graph;
  int64_t leaf = graph.Add(MakeNode(obs::ProvKind::kGroundTruth, "Γ", {}));
  int64_t mid = graph.Add(MakeNode(obs::ProvKind::kFix, "r1", {leaf}));
  int64_t top = graph.Add(MakeNode(obs::ProvKind::kFix, "r2", {mid}));

  EXPECT_EQ(graph.ProofDepth(leaf), 1u);
  EXPECT_EQ(graph.ProofDepth(top), 3u);

  obs::ProofTree full = graph.Expand(top);
  ASSERT_FALSE(full.empty());
  ASSERT_EQ(full.root.children.size(), 1u);
  ASSERT_EQ(full.root.children[0].children.size(), 1u);
  EXPECT_EQ(full.root.children[0].children[0].node->kind,
            obs::ProvKind::kGroundTruth);
  EXPECT_FALSE(full.root.truncated);

  obs::ProofTree bounded = graph.Expand(top, /*max_depth=*/2);
  ASSERT_EQ(bounded.root.children.size(), 1u);
  EXPECT_TRUE(bounded.root.children[0].truncated);
  EXPECT_TRUE(bounded.root.children[0].children.empty());
  EXPECT_NE(bounded.ToText().find("depth bound"), std::string::npos);
}

TEST(ProvenanceGraphTest, AddSanitizesUpstream) {
  obs::ProvenanceGraph graph;
  int64_t leaf = graph.Add(MakeNode(obs::ProvKind::kGroundTruth, "Γ", {}));
  // Forward references, negatives and duplicates cannot enter the DAG —
  // ProofDepth's recursion relies on upstream ids being strictly smaller.
  int64_t id = graph.Add(
      MakeNode(obs::ProvKind::kFix, "r", {leaf, leaf, -4, 99}));
  ASSERT_NE(graph.Get(id), nullptr);
  EXPECT_EQ(graph.Get(id)->upstream, std::vector<int64_t>{leaf});
}

TEST(ProvenanceGraphTest, MergeForestExplainsTransitivePath) {
  obs::ProvenanceGraph graph;
  int64_t m12 = graph.Add(MakeNode(obs::ProvKind::kFix, "m12", {}));
  int64_t m23 = graph.Add(MakeNode(obs::ProvKind::kFix, "m23", {}));
  graph.LinkMerge(1, 2, m12);
  graph.LinkMerge(2, 3, m23);

  std::vector<int64_t> path = graph.MergePath(1, 3);
  std::sort(path.begin(), path.end());
  EXPECT_EQ(path, (std::vector<int64_t>{m12, m23}));
  EXPECT_TRUE(graph.MergePath(1, 7).empty());

  obs::ProofTree tree = graph.ExplainMerge(1, 3);
  ASSERT_FALSE(tree.empty());
  EXPECT_EQ(tree.root.node, nullptr);  // synthetic root
  EXPECT_EQ(tree.root.children.size(), 2u);
  EXPECT_TRUE(graph.ExplainMerge(1, 7).empty());
}

// ---------- Witness capture through the chase ----------

class KvDb {
 public:
  // S(k: string, v: string, w: string, o: int)
  KvDb() {
    DatabaseSchema schema;
    Status s = schema.AddRelation(Schema("S",
                                         {{"k", ValueType::kString},
                                          {"v", ValueType::kString},
                                          {"w", ValueType::kString},
                                          {"o", ValueType::kInt}}));
    EXPECT_TRUE(s.ok());
    db = Database(std::move(schema));
  }

  int64_t Insert(const char* k, const char* v, const char* w, int64_t o) {
    Tuple t;
    t.values = {k == nullptr ? Value::Null() : Value::String(k),
                v == nullptr ? Value::Null() : Value::String(v),
                w == nullptr ? Value::Null() : Value::String(w),
                Value::Int(o)};
    auto tid = db.Insert(0, std::move(t));
    EXPECT_TRUE(tid.ok());
    return *tid;
  }

  Database db;
};

TEST(ChaseProvenanceTest, CertainFixProofReachesGroundTruth) {
  SKIP_WITHOUT_PROVENANCE();
  KvDb data;
  int64_t dirty = data.Insert("x", nullptr, "-", 0);
  int64_t trusted = data.Insert("x", "good", "-", 0);

  ChaseOptions options;
  options.certain_fixes_only = true;
  ml::MlLibrary models;
  ChaseEngine engine(&data.db, nullptr, &models, options);
  {
    common::RoleGuard apply(engine.fix_store().apply_role());
    ASSERT_TRUE(engine.fix_store().AddGroundTruthTuple(0, trusted).ok());
    ASSERT_TRUE(
        engine.fix_store()
            .AddGroundTruthValue(0, dirty, 0, Value::String("x"))
            .ok());
  }

  Ree rule = MustParse("S(t0) ^ S(t1) ^ t0.k = t1.k -> t0.v = t1.v",
                       data.db.schema(), "cr1");
  chase::ChaseResult result = engine.Run({rule});
  EXPECT_GT(result.fixes_applied, 0u);

  obs::ProofTree tree = engine.Explain(0, dirty, 1);
  ASSERT_FALSE(tree.empty());
  ASSERT_NE(tree.root.node, nullptr);
  EXPECT_EQ(tree.root.node->kind, obs::ProvKind::kFix);
  EXPECT_EQ(tree.root.node->rule_id, "cr1");
  EXPECT_FALSE(tree.root.node->witness.tuples.empty());
  // Every premise the precondition read is ground truth, and the proof
  // recurses to Γ leaves.
  ASSERT_FALSE(tree.root.node->witness.premises.empty());
  for (const obs::PremiseCell& premise : tree.root.node->witness.premises) {
    EXPECT_EQ(premise.source, obs::PremiseSource::kGroundTruth)
        << "attr " << premise.attr;
    EXPECT_GE(premise.upstream, 0);
  }
  ASSERT_FALSE(tree.root.children.empty());
  for (const auto& child : tree.root.children) {
    EXPECT_EQ(child.node->kind, obs::ProvKind::kGroundTruth);
    EXPECT_EQ(child.node->rule_id, "Γ");
  }

  obs::ProvenanceSummary summary = engine.ProvenanceSummary();
  EXPECT_GE(summary.max_depth, 2u);
  EXPECT_GT(summary.premises_ground_truth, 0u);
  EXPECT_EQ(summary.fixes_by_rule.count("cr1"), 1u);
}

TEST(ChaseProvenanceTest, PriorFixChainLinksUpstream) {
  SKIP_WITHOUT_PROVENANCE();
  KvDb data;
  int64_t tid = data.Insert("x", nullptr, nullptr, 0);

  ml::MlLibrary models;
  ChaseEngine engine(&data.db, nullptr, &models);
  std::vector<Ree> rules = {
      MustParse("S(t0) ^ t0.k = 'x' -> t0.v = 'a'", data.db.schema(), "r1"),
      MustParse("S(t0) ^ t0.v = 'a' -> t0.w = 'b'", data.db.schema(), "r2"),
  };
  chase::ChaseResult result = engine.Run(rules);
  EXPECT_GE(result.fixes_applied, 2u);

  obs::ProofTree tree = engine.Explain(0, tid, 2);
  ASSERT_FALSE(tree.empty());
  EXPECT_EQ(tree.root.node->rule_id, "r2");
  ASSERT_EQ(tree.root.children.size(), 1u);
  EXPECT_EQ(tree.root.children[0].node->rule_id, "r1");
  bool found_prior_fix = false;
  for (const obs::PremiseCell& premise : tree.root.node->witness.premises) {
    if (premise.source == obs::PremiseSource::kPriorFix) {
      found_prior_fix = true;
      EXPECT_EQ(premise.upstream, tree.root.children[0].node->id);
    }
  }
  EXPECT_TRUE(found_prior_fix);
  EXPECT_NE(tree.ToText().find("prior_fix"), std::string::npos);

  // The JSON rendering parses back and carries the same shape.
  auto parsed = json::Parse(tree.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("rule_id"), "r2");
  const json::Value* children = parsed->Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->AsArray().size(), 1u);
  EXPECT_EQ(children->AsArray()[0].GetString("rule_id"), "r1");
}

TEST(ChaseProvenanceTest, ExplainMergeCoversTransitiveMerges) {
  SKIP_WITHOUT_PROVENANCE();
  KvDb data;
  int64_t a = data.Insert("x", "1", "-", 0);
  int64_t b = data.Insert("x", "2", "-", 0);
  int64_t c = data.Insert("x", "3", "-", 0);
  (void)b;

  ml::MlLibrary models;
  ChaseEngine engine(&data.db, nullptr, &models);
  Ree rule = MustParse("S(t0) ^ S(t1) ^ t0.k = t1.k -> t0.eid = t1.eid",
                       data.db.schema(), "er1");
  engine.Run({rule});
  EXPECT_EQ(engine.fix_store().CanonicalEid(0, c),
            engine.fix_store().CanonicalEid(0, a));

  // Tuples inherit eid = tid here, so the merge proof is queried on eids.
  obs::ProofTree tree = engine.ExplainMerge(a, c);
  ASSERT_FALSE(tree.empty());
  ASSERT_FALSE(tree.root.children.empty());
  for (const auto& step : tree.root.children) {
    EXPECT_EQ(step.node->kind, obs::ProvKind::kFix);
    EXPECT_EQ(step.node->rule_id, "er1");
    EXPECT_FALSE(step.node->witness.tuples.empty());
  }
  EXPECT_GE(engine.fix_store().ProvOfMerge(a, c), 0);
  // Unrelated eids have no merge proof.
  EXPECT_TRUE(engine.ExplainMerge(a, 424242).empty());
}

std::vector<std::string> AllProofTexts(core::Rock& rock,
                                       chase::ChaseEngine& engine) {
  std::vector<std::string> texts;
  for (const chase::CellFix& fix : engine.CellFixes()) {
    texts.push_back(engine.Explain(fix.rel, fix.tid, fix.attr).ToText());
  }
  std::sort(texts.begin(), texts.end());
  (void)rock;
  return texts;
}

TEST(ChaseProvenanceTest, ProofsIdenticalAcrossWorkerCountsAndSerial) {
  SKIP_WITHOUT_PROVENANCE();
  auto rules_for = [](const Database& db) {
    return std::vector<Ree>{
        MustParse("Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg",
                  db.schema(), "p1"),
        MustParse("Store(t0) ^ t0.location = 'Beijing' -> "
                  "t0.area_code = '010'",
                  db.schema(), "p2"),
        MustParse("Person(t0) ^ Person(t1) ^ t0.spouse = t1.pid ^ "
                  "null(t1.home) -> t1.home = t0.home",
                  db.schema(), "p3"),
    };
  };

  workload::EcommerceData serial_data = workload::MakeEcommerceData();
  ml::MlLibrary models;
  ChaseEngine serial(&serial_data.db, nullptr, &models);
  serial.Run(rules_for(serial_data.db));
  std::vector<std::string> serial_texts;
  for (const chase::CellFix& fix : serial.CellFixes()) {
    serial_texts.push_back(serial.Explain(fix.rel, fix.tid, fix.attr).ToText());
  }
  std::sort(serial_texts.begin(), serial_texts.end());
  ASSERT_FALSE(serial_texts.empty());

  for (int workers : {1, 3, 6}) {
    workload::EcommerceData data = workload::MakeEcommerceData();
    ChaseEngine engine(&data.db, nullptr, &models);
    par::ScheduleReport schedule;
    engine.RunParallel(rules_for(data.db), workers, /*block_rows=*/4,
                       &schedule);
    std::vector<std::string> texts;
    for (const chase::CellFix& fix : engine.CellFixes()) {
      texts.push_back(engine.Explain(fix.rel, fix.tid, fix.attr).ToText());
    }
    std::sort(texts.begin(), texts.end());
    EXPECT_EQ(texts, serial_texts) << "workers=" << workers;
  }
}

// ---------- The Rock facade ----------

TEST(RockExplainTest, EndToEndExplainAfterCorrectErrors) {
  workload::EcommerceData data = workload::MakeEcommerceData();
  core::Rock rock(&data.db, &data.graph);

  // Before any correction there is nothing to explain.
  EXPECT_TRUE(rock.Explain(0, 0, 0).empty());
  EXPECT_TRUE(rock.ExplainMerge(101, 102).empty());
  EXPECT_EQ(rock.ProvenanceSummary().nodes, 0u);

  core::ModelTrainingSpec spec;
  spec.mer_threshold = 0.6;
  spec.path_synonyms = {{"location", {"LocationAt"}}, {"type", {"TypeOf"}}};
  rock.TrainModels(spec);
  auto rules = rock.LoadRules(
      "Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'\n"
      "Person(t0) ^ Person(t1) ^ t0.spouse = t1.pid ^ null(t1.home) -> "
      "t1.home = t0.home\n");
  ASSERT_TRUE(rules.ok());
  core::CorrectionResult result;
  auto engine = rock.CorrectErrors(*rules, {}, &result);
  ASSERT_NE(engine, nullptr);
  ASSERT_NE(rock.last_engine(), nullptr);
  ASSERT_GT(result.chase.fixes_applied, 0u);

  if constexpr (!obs::kProvenanceEnabled) return;

  // Every repaired cell in the audit trail explains itself with a
  // non-empty proof tree carrying rule text and witness tuples.
  std::vector<chase::CellFix> fixes = engine->CellFixes();
  ASSERT_FALSE(fixes.empty());
  for (const chase::CellFix& fix : fixes) {
    obs::ProofTree tree = rock.Explain(fix.rel, fix.tid, fix.attr);
    ASSERT_FALSE(tree.empty())
        << "rel " << fix.rel << " tid " << fix.tid << " attr " << fix.attr;
    EXPECT_FALSE(tree.root.node->witness.rule_text.empty());
    EXPECT_FALSE(tree.root.node->witness.tuples.empty());
    EXPECT_NE(tree.ToText().find("rule:"), std::string::npos);
  }
  EXPECT_GT(rock.ProvenanceSummary().nodes, 0u);
}

// ---------- Satellite: ReplaceValue hash-index regression ----------

TEST(FixStoreHashIndexTest, ReplaceValueErasesStaleHashEntry) {
  KvDb data;
  int64_t tid = data.Insert("x", nullptr, nullptr, 0);
  FixStore store(&data.db);
  common::RoleGuard apply(store.apply_role());  // single-threaded test body
  bool changed = false;
  ASSERT_TRUE(
      store.SetValue(0, tid, 1, Value::String("old"), "r1", &changed).ok());
  ASSERT_TRUE(store.ReplaceValue(0, tid, 1, Value::String("new"), "mc").ok());

  // The superseded value's hash bucket must no longer serve the tid.
  std::vector<int64_t> stale =
      store.PatchedTidsEq(0, 1, Value::String("old").Hash());
  EXPECT_TRUE(std::find(stale.begin(), stale.end(), tid) == stale.end());
  std::vector<int64_t> fresh =
      store.PatchedTidsEq(0, 1, Value::String("new").Hash());
  EXPECT_TRUE(std::find(fresh.begin(), fresh.end(), tid) != fresh.end());
  EXPECT_EQ(store.ValidatedValue(0, tid, 1)->AsString(), "new");
}

TEST(FixStoreHashIndexTest, PatchedTidsEqNeverServesMismatchedValues) {
  // Regression sweep: after a chain of SetValue/ReplaceValue, every tid an
  // equality probe returns must re-verify against its validated value.
  KvDb data;
  std::vector<int64_t> tids;
  for (int i = 0; i < 6; ++i) {
    tids.push_back(data.Insert("x", nullptr, nullptr, i));
  }
  FixStore store(&data.db);
  common::RoleGuard apply(store.apply_role());
  bool changed = false;
  std::vector<Value> candidates = {Value::String("a"), Value::String("b"),
                                   Value::String("c")};
  for (size_t i = 0; i < tids.size(); ++i) {
    ASSERT_TRUE(store
                    .SetValue(0, tids[i], 1, candidates[i % 3],
                              "r", &changed)
                    .ok());
  }
  for (size_t i = 0; i < tids.size(); i += 2) {
    ASSERT_TRUE(
        store.ReplaceValue(0, tids[i], 1, candidates[(i + 1) % 3], "mc").ok());
  }
  for (const Value& probe : candidates) {
    for (int64_t tid : store.PatchedTidsEq(0, 1, probe.Hash())) {
      auto validated = store.ValidatedValue(0, tid, 1);
      ASSERT_TRUE(validated.has_value());
      EXPECT_EQ(validated->Hash(), probe.Hash())
          << "tid " << tid << " served for " << probe.ToString()
          << " but holds " << validated->ToString();
    }
  }
}

// ---------- Satellite: JSON round-trip + golden file ----------

std::vector<FixRecord> GoldenFixRecords() {
  std::vector<FixRecord> records;
  FixRecord merge;
  merge.kind = FixRecord::Kind::kMergeEid;
  merge.rule_id = "φ1";
  merge.prov_id = 7;
  merge.eid_a = 101;
  merge.eid_b = 102;
  records.push_back(merge);

  FixRecord set;
  set.kind = FixRecord::Kind::kSetValue;
  set.rule_id = "φ12";
  set.rel = 1;
  set.attr = 5;
  set.eid = 211;
  set.tid1 = 5;
  set.value = Value::String("010");
  records.push_back(set);

  FixRecord time_fix;
  time_fix.kind = FixRecord::Kind::kSetValue;
  time_fix.rule_id = "Γ";
  time_fix.prov_id = 0;
  time_fix.rel = 0;
  time_fix.attr = 2;
  time_fix.eid = 9;
  time_fix.tid1 = 9;
  time_fix.value = Value::Time(1700000000);
  records.push_back(time_fix);

  FixRecord temporal;
  temporal.kind = FixRecord::Kind::kTemporalOrder;
  temporal.rule_id = "φ4";
  temporal.prov_id = 3;
  temporal.rel = 0;
  temporal.attr = 5;
  temporal.tid1 = 2;
  temporal.tid2 = 3;
  temporal.strict = false;
  records.push_back(temporal);
  return records;
}

ConflictRecord GoldenConflictRecord() {
  ConflictRecord conflict;
  conflict.kind = ConflictRecord::Kind::kValue;
  conflict.rule_id = "φ8";
  conflict.description = "MI candidates 4200 vs 9000";
  conflict.resolution = "mc_argmax:existing";
  conflict.prov_existing = 4;
  conflict.prov_candidate = 11;
  return conflict;
}

TEST(AuditJsonTest, MatchesGoldenFile) {
  std::ifstream golden(std::string(ROCK_TEST_SRCDIR) +
                       "/golden/fix_records.json");
  ASSERT_TRUE(golden.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(golden, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  std::vector<std::string> produced;
  for (const FixRecord& record : GoldenFixRecords()) {
    produced.push_back(record.ToJson());
  }
  produced.push_back(GoldenConflictRecord().ToJson());
  EXPECT_EQ(lines, produced);
}

TEST(AuditJsonTest, FixRecordRoundTrips) {
  for (const FixRecord& record : GoldenFixRecords()) {
    auto doc = json::Parse(record.ToJson());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    auto back = FixRecord::FromJson(*doc);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->kind, record.kind);
    EXPECT_EQ(back->rule_id, record.rule_id);
    EXPECT_EQ(back->prov_id, record.prov_id);
    EXPECT_EQ(back->eid_a, record.eid_a);
    EXPECT_EQ(back->eid_b, record.eid_b);
    EXPECT_EQ(back->rel, record.rel);
    EXPECT_EQ(back->attr, record.attr);
    EXPECT_EQ(back->eid, record.eid);
    EXPECT_EQ(back->tid1, record.tid1);
    EXPECT_EQ(back->tid2, record.tid2);
    EXPECT_EQ(back->strict, record.strict);
    EXPECT_EQ(back->value.type(), record.value.type());
    EXPECT_TRUE(back->value == record.value)
        << back->value.ToString() << " vs " << record.value.ToString();
  }
}

TEST(AuditJsonTest, ValueVariantsRoundTrip) {
  std::vector<Value> values = {Value::Null(), Value::Int(-42),
                               Value::Double(12.5),
                               Value::String("with \"quotes\" and \n"),
                               Value::Time(1700000123)};
  for (const Value& value : values) {
    FixRecord record;
    record.kind = FixRecord::Kind::kSetValue;
    record.rule_id = "r";
    record.value = value;
    auto doc = json::Parse(record.ToJson());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    auto back = FixRecord::FromJson(*doc);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->value.type(), value.type());
    EXPECT_TRUE(back->value == value)
        << back->value.ToString() << " vs " << value.ToString();
  }
}

TEST(AuditJsonTest, ConflictRecordRoundTrips) {
  ConflictRecord record = GoldenConflictRecord();
  auto doc = json::Parse(record.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto back = ConflictRecord::FromJson(*doc);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, record.kind);
  EXPECT_EQ(back->rule_id, record.rule_id);
  EXPECT_EQ(back->description, record.description);
  EXPECT_EQ(back->resolution, record.resolution);
  EXPECT_EQ(back->prov_existing, record.prov_existing);
  EXPECT_EQ(back->prov_candidate, record.prov_candidate);
}

TEST(AuditJsonTest, FromJsonRejectsMalformedRecords) {
  auto bad_kind = json::Parse(R"({"kind":"no_such_kind","rule_id":"r"})");
  ASSERT_TRUE(bad_kind.ok());
  EXPECT_FALSE(FixRecord::FromJson(*bad_kind).ok());
  auto no_value = json::Parse(R"({"kind":"set_value","rule_id":"r"})");
  ASSERT_TRUE(no_value.ok());
  EXPECT_FALSE(FixRecord::FromJson(*no_value).ok());
}

// ---------- Satellite: conflict resolutions link both derivations ----------

class MiConflictTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tid_ = data_.Insert("x", nullptr, nullptr, 0);
    rules_ = {
        MustParse("S(t0) ^ t0.k = 'x' -> t0.v = 'A'", data_.db.schema(),
                  "first"),
        MustParse("S(t0) ^ t0.k = 'x' -> t0.v = 'B'", data_.db.schema(),
                  "second"),
    };
  }

  KvDb data_;
  int64_t tid_ = -1;
  std::vector<Ree> rules_;
};

TEST_F(MiConflictTest, KeptExistingLinksBothDerivations) {
  ml::MlLibrary models;  // no Mc: resolution falls back to kept_existing
  ChaseEngine engine(&data_.db, nullptr, &models);
  chase::ChaseResult result = engine.Run(rules_);
  ASSERT_FALSE(result.conflicts.empty());
  const ConflictRecord& conflict = result.conflicts[0];
  EXPECT_EQ(conflict.resolution, "kept_existing");
  EXPECT_EQ(engine.fix_store().ValidatedValue(0, tid_, 1)->AsString(), "A");
  if constexpr (!obs::kProvenanceEnabled) return;
  // The existing derivation is the first rule's fix node; the losing
  // application is preserved as a conflict-candidate node with a witness.
  ASSERT_GE(conflict.prov_existing, 0);
  ASSERT_GE(conflict.prov_candidate, 0);
  const obs::ProvenanceGraph& graph = engine.fix_store().provenance();
  EXPECT_EQ(graph.Get(conflict.prov_existing)->rule_id, "first");
  EXPECT_EQ(graph.Get(conflict.prov_candidate)->kind,
            obs::ProvKind::kConflictCandidate);
  EXPECT_EQ(graph.Get(conflict.prov_candidate)->rule_id, "second");
  EXPECT_FALSE(
      graph.Get(conflict.prov_candidate)->witness.premises.empty());
}

// Forces the M_c argmax to a fixed preference.
class StubCorrelation : public ml::CorrelationModel {
 public:
  explicit StubCorrelation(std::string preferred)
      : preferred_(std::move(preferred)) {}
  double Strength(const std::vector<Value>&, const std::vector<int>&, int,
                  const Value& candidate) const override {
    return candidate.ToString() == preferred_ ? 0.9 : 0.1;
  }

 private:
  std::string preferred_;
};

TEST_F(MiConflictTest, McArgmaxCandidateReplacesAndRelinksProvenance) {
  ml::MlLibrary models;
  models.RegisterCorrelation("Mc", std::make_shared<StubCorrelation>("B"));
  ChaseEngine engine(&data_.db, nullptr, &models);
  // M_c needs at least one validated attribute to condition on.
  {
    common::RoleGuard apply(engine.fix_store().apply_role());
    ASSERT_TRUE(
        engine.fix_store()
            .AddGroundTruthValue(0, tid_, 0, Value::String("x"))
            .ok());
  }
  chase::ChaseResult result = engine.Run(rules_);
  ASSERT_FALSE(result.conflicts.empty());
  const ConflictRecord& conflict = result.conflicts[0];
  EXPECT_EQ(conflict.resolution, "mc_argmax:candidate");
  EXPECT_EQ(engine.fix_store().ValidatedValue(0, tid_, 1)->AsString(), "B");
  if constexpr (!obs::kProvenanceEnabled) return;
  ASSERT_GE(conflict.prov_existing, 0);
  ASSERT_GE(conflict.prov_candidate, 0);
  // After the replacement, the cell's provenance points at the winning
  // (replacing) derivation, not the overwritten one.
  int64_t current = engine.fix_store().ProvOfCell(0, tid_, 1);
  ASSERT_GE(current, 0);
  EXPECT_EQ(engine.fix_store().provenance().Get(current)->rule_id, "second");
  EXPECT_NE(current, conflict.prov_existing);
}

TEST_F(MiConflictTest, McArgmaxExistingKeepsCellAndProvenance) {
  ml::MlLibrary models;
  models.RegisterCorrelation("Mc", std::make_shared<StubCorrelation>("A"));
  ChaseEngine engine(&data_.db, nullptr, &models);
  {
    common::RoleGuard apply(engine.fix_store().apply_role());
    ASSERT_TRUE(
        engine.fix_store()
            .AddGroundTruthValue(0, tid_, 0, Value::String("x"))
            .ok());
  }
  chase::ChaseResult result = engine.Run(rules_);
  ASSERT_FALSE(result.conflicts.empty());
  EXPECT_EQ(result.conflicts[0].resolution, "mc_argmax:existing");
  EXPECT_EQ(engine.fix_store().ValidatedValue(0, tid_, 1)->AsString(), "A");
  if constexpr (!obs::kProvenanceEnabled) return;
  EXPECT_EQ(engine.fix_store().ProvOfCell(0, tid_, 1),
            result.conflicts[0].prov_existing);
}

TEST(UserQueueProvenanceTest, QueuedConflictCarriesCandidateWitness) {
  KvDb data;
  data.Insert("x", "Acme Ltd", "-", 0);
  data.Insert("x", "Acme Ltd.", "-", 0);
  ml::MlLibrary models;
  ChaseEngine engine(&data.db, nullptr, &models);
  Ree rule = MustParse("S(t0) ^ S(t1) ^ t0.k = t1.k -> t0.v = t1.v",
                       data.db.schema(), "cr");
  chase::ChaseResult result = engine.Run({rule});
  ASSERT_FALSE(result.conflicts.empty());
  const ConflictRecord& conflict = result.conflicts[0];
  EXPECT_EQ(conflict.resolution, "user_queue");
  if constexpr (!obs::kProvenanceEnabled) return;
  // Both sides are raw reads of one valuation: no validated existing
  // derivation exists, but the candidate witness is preserved for review.
  EXPECT_EQ(conflict.prov_existing, -1);
  ASSERT_GE(conflict.prov_candidate, 0);
  const obs::ProvenanceNode* node =
      engine.fix_store().provenance().Get(conflict.prov_candidate);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->kind, obs::ProvKind::kConflictCandidate);
  EXPECT_FALSE(node->witness.premises.empty());
}

TEST(UserQueueProvenanceTest, UserResolvedConflictKeepsCandidateNode) {
  KvDb data;
  data.Insert("x", "Acme Ltd", "-", 0);
  data.Insert("x", "Acme Ltd.", "-", 0);
  ChaseOptions options;
  options.user_resolver = [](const ConflictRecord&, const Value& a,
                             const Value& b) -> std::optional<Value> {
    return a.ToString().size() > b.ToString().size() ? a : b;
  };
  ml::MlLibrary models;
  ChaseEngine engine(&data.db, nullptr, &models, options);
  Ree rule = MustParse("S(t0) ^ S(t1) ^ t0.k = t1.k -> t0.v = t1.v",
                       data.db.schema(), "cr");
  chase::ChaseResult result = engine.Run({rule});
  bool resolved = false;
  for (const ConflictRecord& conflict : result.conflicts) {
    if (conflict.resolution.rfind("user_resolved:", 0) == 0) {
      resolved = true;
      if constexpr (obs::kProvenanceEnabled) {
        EXPECT_GE(conflict.prov_candidate, 0);
      }
    }
  }
  EXPECT_TRUE(resolved);
}

// Forces the TD ranker confidence.
class StubRanker : public ml::TemporalRanker {
 public:
  explicit StubRanker(double confidence) : confidence_(confidence) {}
  double Confidence(const Tuple&, const Tuple&, int, bool) const override {
    return confidence_;
  }

 private:
  double confidence_;
};

class TdConflictTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.Insert("a", "-", "-", 1);
    data_.Insert("b", "-", "-", 2);
    rules_ = {
        MustParse("S(t0) ^ S(t1) ^ t0.k = 'a' ^ t1.k = 'b' -> t0 <[o] t1",
                  data_.db.schema(), "td1"),
        MustParse("S(t0) ^ S(t1) ^ t0.k = 'a' ^ t1.k = 'b' -> t1 <[o] t0",
                  data_.db.schema(), "td2"),
    };
  }

  const ConflictRecord& RunAndGetConflict(ChaseEngine& engine) {
    result_ = engine.Run(rules_);
    EXPECT_FALSE(result_.conflicts.empty());
    return result_.conflicts.front();
  }

  KvDb data_;
  std::vector<Ree> rules_;
  chase::ChaseResult result_;
};

TEST_F(TdConflictTest, KeptExistingWithoutRanker) {
  ml::MlLibrary models;
  ChaseEngine engine(&data_.db, nullptr, &models);
  const ConflictRecord& conflict = RunAndGetConflict(engine);
  EXPECT_EQ(conflict.kind, ConflictRecord::Kind::kTemporal);
  EXPECT_EQ(conflict.resolution, "kept_existing");
  if constexpr (!obs::kProvenanceEnabled) return;
  // The stored direction's deduction and the losing one are both linked.
  ASSERT_GE(conflict.prov_existing, 0);
  ASSERT_GE(conflict.prov_candidate, 0);
  const obs::ProvenanceGraph& graph = engine.fix_store().provenance();
  EXPECT_EQ(graph.Get(conflict.prov_existing)->rule_id, "td1");
  EXPECT_EQ(graph.Get(conflict.prov_candidate)->rule_id, "td2");
}

TEST_F(TdConflictTest, ConfidencePrefersNewRecordsDecision) {
  ml::MlLibrary models;
  models.RegisterRanker("Mrank", std::make_shared<StubRanker>(0.9));
  ChaseEngine engine(&data_.db, nullptr, &models);
  const ConflictRecord& conflict = RunAndGetConflict(engine);
  EXPECT_EQ(conflict.resolution, "confidence_prefers_new(kept_existing)");
  if constexpr (!obs::kProvenanceEnabled) return;
  EXPECT_GE(conflict.prov_existing, 0);
  EXPECT_GE(conflict.prov_candidate, 0);
}

TEST_F(TdConflictTest, ConfidenceConfirmsExisting) {
  ml::MlLibrary models;
  models.RegisterRanker("Mrank", std::make_shared<StubRanker>(0.1));
  ChaseEngine engine(&data_.db, nullptr, &models);
  const ConflictRecord& conflict = RunAndGetConflict(engine);
  EXPECT_EQ(conflict.resolution, "confidence_confirms_existing");
}

TEST(EidConflictTest, BlockedMergeLinksDistinctnessDerivation) {
  KvDb data;
  data.Insert("a", "-", "-", 0);
  data.Insert("b", "-", "-", 0);
  ml::MlLibrary models;
  ChaseEngine engine(&data.db, nullptr, &models);
  std::vector<Ree> rules = {
      MustParse("S(t0) ^ S(t1) ^ t0.k = 'a' ^ t1.k = 'b' -> "
                "t0.eid != t1.eid",
                data.db.schema(), "neq"),
      MustParse("S(t0) ^ S(t1) ^ t0.k = 'a' ^ t1.k = 'b' -> "
                "t0.eid = t1.eid",
                data.db.schema(), "eq"),
  };
  chase::ChaseResult result = engine.Run(rules);
  ASSERT_FALSE(result.conflicts.empty());
  const ConflictRecord& conflict = result.conflicts.front();
  EXPECT_EQ(conflict.kind, ConflictRecord::Kind::kEid);
  if constexpr (!obs::kProvenanceEnabled) return;
  ASSERT_GE(conflict.prov_existing, 0);
  ASSERT_GE(conflict.prov_candidate, 0);
  const obs::ProvenanceGraph& graph = engine.fix_store().provenance();
  EXPECT_EQ(graph.Get(conflict.prov_existing)->rule_id, "neq");
  EXPECT_EQ(graph.Get(conflict.prov_candidate)->rule_id, "eq");
}

// ---------- Metrics export and the bench provenance block ----------

TEST(ProvenanceMetricsTest, ChaseExportsDeltaAndBlockRendersJson) {
  SKIP_WITHOUT_PROVENANCE();
  obs::MetricsRegistry::Global().Reset();
  KvDb data;
  data.Insert("x", nullptr, nullptr, 0);
  ml::MlLibrary models;
  ChaseEngine engine(&data.db, nullptr, &models);
  std::vector<Ree> rules = {
      MustParse("S(t0) ^ t0.k = 'x' -> t0.v = 'a'", data.db.schema(), "m1"),
      MustParse("S(t0) ^ t0.v = 'a' -> t0.w = 'b'", data.db.schema(), "m2"),
  };
  engine.Run(rules);

  obs::MetricsRegistry::Snapshot snap = obs::MetricsRegistry::Global().Snap();
  EXPECT_EQ(snap.CounterValue("rock_prov_nodes_total"),
            engine.fix_store().provenance().size());
  EXPECT_GE(snap.CounterValue(obs::ProvRuleCounterName("m1")), 1u);
  EXPECT_GE(snap.CounterValue(obs::ProvRuleCounterName("m2")), 1u);
  EXPECT_GT(snap.CounterValue("rock_prov_premises_raw_total"), 0u);
  EXPECT_GT(snap.CounterValue("rock_prov_premises_prior_fix_total"), 0u);

  // Running again must not double-count (watermark delta export).
  uint64_t before = snap.CounterValue("rock_prov_nodes_total");
  engine.Run(rules);
  obs::MetricsRegistry::Snapshot again = obs::MetricsRegistry::Global().Snap();
  EXPECT_EQ(again.CounterValue("rock_prov_nodes_total"),
            before + (engine.fix_store().provenance().size() - before));

  obs::JsonWriter w;
  w.BeginObject();
  obs::AppendProvenanceBlock(again, &w);
  w.EndObject();
  auto doc = json::Parse(w.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* block = doc->Find("provenance");
  ASSERT_NE(block, nullptr);
  EXPECT_TRUE(block->GetBool("enabled"));
  EXPECT_GT(block->GetInt("nodes"), 0);
  EXPECT_GE(block->GetInt("max_depth"), 2);
  const json::Value* by_rule = block->Find("fixes_by_rule");
  ASSERT_NE(by_rule, nullptr);
  EXPECT_NE(by_rule->Find("m1"), nullptr);
  const json::Value* premises = block->Find("premises");
  ASSERT_NE(premises, nullptr);
  EXPECT_GT(premises->GetInt("raw"), 0);
}

TEST(ProvenanceMetricsTest, DroppedSpanGaugeIsExported) {
  obs::TelemetrySnapshot snap = obs::CaptureGlobalTelemetry();
  bool found = false;
  for (const auto& gauge : snap.metrics.gauges) {
    if (gauge.name == "rock_obs_dropped_spans") {
      found = true;
      EXPECT_EQ(gauge.value, static_cast<int64_t>(snap.dropped_spans));
    }
  }
  EXPECT_TRUE(found);
  // A quiescent test process must not be dropping spans.
  EXPECT_EQ(snap.dropped_spans, 0u);
}

}  // namespace
}  // namespace rock
