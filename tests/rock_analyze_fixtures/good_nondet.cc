// rock_analyze fixture: nondeterministic-iteration (good).
// Every unordered drain here is order-insensitive: commutative
// accumulation, a collect-then-sort drain, an ordered re-keying, and an
// annotated drain with a justification.
#include "rock_analyze_stubs.h"

namespace rock::fixture {

struct CacheStats {
  std::unordered_map<std::string, int> hits_;

  // OK: addition commutes, so hash order is unobservable.
  int Total() const {
    int total = 0;
    for (const auto& [name, count] : hits_) {
      total += count;
    }
    return total;
  }

  // OK: the sort after the loop erases iteration order.
  std::vector<std::string> Names() const {
    std::vector<std::string> out;
    for (const auto& [name, count] : hits_) {
      out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // OK: re-keying into an ordered map is order-insensitive.
  std::map<std::string, int> Sorted() const {
    std::map<std::string, int> out;
    for (const auto& [name, count] : hits_) {
      out[name] = count;
    }
    return out;
  }

  int Peak(std::vector<int>& trace) const {
    int peak = 0;
    // ROCK_ANALYZE(ordered-ok: max is order-insensitive over unique keys)
    for (const auto& [name, count] : hits_) {
      if (count > peak) {
        peak = count;
        trace.push_back(count);
      }
    }
    return peak;
  }
};

}  // namespace rock::fixture
