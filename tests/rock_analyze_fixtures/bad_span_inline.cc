// rock_analyze fixture: span-coverage (bad).
// Public rock::core::Rock entry points with inline bodies that open no
// ScopedSpan: the operations are invisible in traces and latency tables.
#include "rock_analyze_stubs.h"

namespace rock::core {

class Rock {
 public:
  // BAD: multi-statement public entry point, no span.
  int DetectErrors(int rounds) {
    int violations = 0;
    for (int i = 0; i < rounds; ++i) {
      violations += RunRound(i);
    }
    return violations;
  }

  // BAD: mutating public entry point, no span.
  void CorrectErrors(std::vector<int64_t>& fixes) {
    fixes.clear();
    ApplyFixes(&fixes);
  }

 private:
  int RunRound(int round);
  void ApplyFixes(std::vector<int64_t>* fixes);
};

}  // namespace rock::core
