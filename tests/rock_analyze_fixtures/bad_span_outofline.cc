// rock_analyze fixture: span-coverage (bad).
// Out-of-line definitions of public rock::core::Rock entry points without
// a span: the check must find the bodies through the method qualifier.
#include "rock_analyze_stubs.h"

namespace rock::core {

class Rock {
 public:
  int TrainModels(int epochs);
  void DiscoverRules(std::vector<std::string>& out);

 private:
  int FitOne(int epoch);
  void Mine(std::vector<std::string>* out);
};

// BAD: no span in the training loop.
int Rock::TrainModels(int epochs) {
  int fitted = 0;
  for (int e = 0; e < epochs; ++e) {
    fitted += FitOne(e);
  }
  return fitted;
}

// BAD: no span around rule mining.
void Rock::DiscoverRules(std::vector<std::string>& out) {
  out.clear();
  Mine(&out);
}

}  // namespace rock::core
