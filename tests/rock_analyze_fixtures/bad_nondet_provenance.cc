// rock_analyze fixture: nondeterministic-iteration (bad).
// Hash-order walks that reach FixStore mutators / provenance capture: the
// fix log and witness order then depend on the hash seed.
#include "rock_analyze_stubs.h"

namespace rock::fixture {

void CaptureWitness(int64_t tid);
void MergeEids(int64_t a, int64_t b);

struct ChaseRound {
  std::unordered_set<int64_t> dirty_;
  std::unordered_map<int64_t, int64_t> merges_;

  // BAD: witness capture order follows hash order.
  void RecordWitnesses() const {
    for (int64_t tid : dirty_) {
      CaptureWitness(tid);
    }
  }

  // BAD: merge application order follows hash order.
  void ApplyMerges() const {
    for (const auto& [a, b] : merges_) {
      MergeEids(a, b);
    }
  }
};

}  // namespace rock::fixture
