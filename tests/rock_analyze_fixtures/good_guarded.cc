// rock_analyze fixture: guarded-field (good).
// Every mutable field of the mutex-owning class is either annotated,
// self-synchronizing (atomic), immutable (const), or carries a justified
// exemption.
#include "rock_analyze_stubs.h"

#include <atomic>

namespace rock::fixture {

class WorkQueue {
 public:
  void Push(int64_t unit);
  bool Pop(int64_t* unit);

 private:
  common::Mutex mu_;
  std::deque<int64_t> queue_ ROCK_GUARDED_BY(mu_);
  bool closed_ ROCK_GUARDED_BY(mu_) = false;
  std::atomic<int> depth_{0};
  const int capacity_ = 1024;
  // ROCK_ANALYZE(unguarded-ok: written once before any worker starts)
  int owner_tid_ = 0;
};

}  // namespace rock::fixture
