// rock_analyze fixture: guarded-field (bad).
// A mutex-owning class with unannotated mutable fields: Clang's
// thread-safety analysis silently skips them, so nothing checks that
// `pending_` and `closed_` are only touched under `mu_`.
#include "rock_analyze_stubs.h"

namespace rock::fixture {

class WorkQueue {
 public:
  void Push(int64_t unit);
  bool Pop(int64_t* unit);

 private:
  common::Mutex mu_;
  std::deque<int64_t> queue_ ROCK_GUARDED_BY(mu_);
  // BAD: no ROCK_GUARDED_BY and no exemption.
  int pending_ = 0;
  // BAD: no ROCK_GUARDED_BY and no exemption.
  bool closed_ = false;
};

}  // namespace rock::fixture
