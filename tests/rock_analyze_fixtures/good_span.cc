// rock_analyze fixture: span-coverage (good).
// Every non-trivial public rock::core::Rock entry point opens a span (or
// carries a justified exemption); trivial accessors are exempt by shape.
#include "rock_analyze_stubs.h"

namespace rock::core {

class Rock {
 public:
  // OK: opens a span.
  int DetectErrors(int rounds) {
    ROCK_OBS_SPAN("rock.detect_errors");
    int violations = 0;
    for (int i = 0; i < rounds; ++i) {
      violations += RunRound(i);
    }
    return violations;
  }

  // OK: trivial accessor, exempt by shape.
  int port() const { return port_; }

  // ROCK_ANALYZE(no-span-ok: pure delegation, DetectErrors opens the span)
  int Detect() { return DetectErrors(1); }

  void CorrectErrors(std::vector<int64_t>& fixes);

 private:
  int RunRound(int round);
  void ApplyFixes(std::vector<int64_t>* fixes);
  int port_ = 0;
};

// OK: out-of-line definition opens a span.
void Rock::CorrectErrors(std::vector<int64_t>& fixes) {
  ROCK_OBS_SPAN("rock.correct_errors");
  fixes.clear();
  ApplyFixes(&fixes);
}

}  // namespace rock::core
