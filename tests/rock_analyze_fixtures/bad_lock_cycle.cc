// rock_analyze fixture: lock-order (bad).
// The fixture edge list (lock_order_fixture.txt) declares
// Ledger::mu -> Queue::mu. `Backward` nests the other way: an undeclared
// edge that also closes a cycle with the declared one.
#include "rock_analyze_stubs.h"

namespace rock::fixture {

struct Ledger {
  common::Mutex mu;
  int live ROCK_GUARDED_BY(mu) = 0;
};

struct Queue {
  common::Mutex mu;
  std::deque<int64_t> work ROCK_GUARDED_BY(mu);
};

// OK: matches the declared Ledger::mu -> Queue::mu edge.
void Drain(Ledger& ledger, Queue& queue) {
  common::MutexLock hold(ledger.mu);
  common::MutexLock inner(queue.mu);
  ledger.live--;
}

// BAD: Queue::mu -> Ledger::mu is undeclared and cyclic with Drain's order.
void Backward(Ledger& ledger, Queue& queue) {
  common::MutexLock hold(queue.mu);
  common::MutexLock inner(ledger.mu);
  ledger.live++;
}

}  // namespace rock::fixture
