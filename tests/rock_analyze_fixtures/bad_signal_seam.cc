// rock_analyze fixture: signal-safety (bad).
// Signal handlers and profiling timers are installed outside the one
// audited seam (src/obs/profile.cc): two findings, one per escaped call.
#include "rock_analyze_stubs.h"

#include <csignal>
#include <ctime>

namespace rock::fixture {

void InstallHandler(struct sigaction* sa) {
  sigaction(42, sa, nullptr);  // BAD: handler installed outside the seam.
}

void ArmTimer(timer_t* timer, struct sigevent* ev) {
  timer_create(1, ev, timer);  // BAD: profiling timer outside the seam.
}

}  // namespace rock::fixture
