// rock_analyze fixture: signal-safety (bad).
// The call graph rooted at SigprofHandler reaches malloc (through a
// helper) and an unknown FlushBuffers: neither is async-signal-safe, so a
// sample landing mid-allocation corrupts the heap or deadlocks.
#include "rock_analyze_stubs.h"

#include <cstdlib>

namespace rock::fixture {

void FlushBuffers();

// Reached from the handler: the walk must follow the call edge.
static void* GrabChunk() {
  return malloc(64);  // BAD: malloc takes the allocator lock.
}

void SigprofHandler(int signo) {
  void* chunk = GrabChunk();
  FlushBuffers();  // BAD: unknown callee, not on the AS-safe allowlist.
  static_cast<void>(chunk);
  static_cast<void>(signo);
}

}  // namespace rock::fixture
