// rock_analyze fixture: guarded-field (bad).
// Raw std:: lock types outside src/common/: they carry no capability, so
// the thread-safety analysis cannot connect them to the data they guard.
#include "rock_analyze_stubs.h"

#include <mutex>

namespace rock::fixture {

class RawLocked {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);  // BAD: raw lock RAII.
    ++count_;
  }

 private:
  std::mutex mu_;  // BAD: raw mutex.
  int count_ = 0;
};

}  // namespace rock::fixture
