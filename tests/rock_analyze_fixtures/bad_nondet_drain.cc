// rock_analyze fixture: nondeterministic-iteration (bad).
// Two hash-order drains that make iteration order observable: one records
// it into a result vector, one emits it straight into a JSON document.
#include "rock_analyze_stubs.h"

namespace rock::fixture {

struct JsonWriter {
  void Key(const std::string& key);
  void BeginObject();
  void EndObject();
  void Int(int value);
};

struct CacheStats {
  std::unordered_map<std::string, int> hits_;

  // BAD: hash order decides the order of `out`.
  void Drain(std::vector<int>& out) const {
    for (const auto& [name, count] : hits_) {
      out.push_back(count);
    }
  }

  // BAD: hash order decides JSON key order.
  void Export(JsonWriter& writer) const {
    for (const auto& [name, count] : hits_) {
      writer.Key(name);
      writer.Int(count);
    }
  }
};

}  // namespace rock::fixture
