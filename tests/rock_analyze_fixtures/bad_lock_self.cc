// rock_analyze fixture: lock-order (bad).
// Nested acquisition of the same lock identity (Shard::mu under
// Shard::mu): a self-deadlock unless the two instances are provably
// distinct, which static analysis cannot establish here.
#include "rock_analyze_stubs.h"

namespace rock::fixture {

struct Shard {
  common::Mutex mu;
  std::map<int64_t, int64_t> entries ROCK_GUARDED_BY(mu);
};

// BAD: Shard::mu nested under Shard::mu.
void Move(Shard& from, Shard& to, int64_t key) {
  common::MutexLock hold(from.mu);
  common::MutexLock inner(to.mu);
  to.entries[key] = from.entries[key];
}

// BAD: same-identity nesting again, through an array element.
void Merge(std::vector<Shard>& shards, int64_t key) {
  common::MutexLock hold(shards[0].mu);
  common::MutexLock inner(shards[1].mu);
  shards[0].entries[key] = shards[1].entries[key];
}

}  // namespace rock::fixture
