// rock_analyze fixture: signal-safety (good).
// The handler touches only atomics, raw syscalls, and backtrace(3) (whose
// unwinder is primed outside signal context), plus one locally audited
// callee carrying an as-safe justification.
#include "rock_analyze_stubs.h"

#include <atomic>

namespace rock::fixture {

extern std::atomic<uint64_t> g_samples;
extern std::atomic<bool> g_armed;
void* g_frames[48];
int backtrace(void** frames, int depth);
long syscall(long number);

static int ThisTid() {
  return static_cast<int>(syscall(186));
}

int RestoreErrno(int saved);

void SigprofHandler(int signo) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  int tid = ThisTid();
  g_samples.fetch_add(1, std::memory_order_relaxed);
  backtrace(g_frames, 48);
  // ROCK_ANALYZE(as-safe: writes one errno int, no locks or allocation)
  RestoreErrno(tid);
  static_cast<void>(signo);
}

}  // namespace rock::fixture
