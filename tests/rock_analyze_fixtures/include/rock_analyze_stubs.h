#pragma once
// Minimal stand-ins for the fixture translation units under
// tests/rock_analyze_fixtures/. The fixtures are inputs to
// scripts/rock_analyze.py (asserted by the rock_analyze_contract_* ctests),
// not part of the build; these stubs keep them parseable as plain C++ so the
// libclang backend can load them too.

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#define ROCK_GUARDED_BY(x)
#define ROCK_PT_GUARDED_BY(x)
#define ROCK_REQUIRES(...)
#define ROCK_OBS_SPAN(name)
#define ROCK_OBS_SPAN_FLOW(name, flow)

namespace rock::common {

class Mutex {
 public:
  void lock();
  void unlock();
};

class SharedMutex {
 public:
  void lock();
  void unlock();
  void lock_shared();
  void unlock_shared();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu);
};

class WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu);
};

}  // namespace rock::common
