// rock_analyze fixture: lock-order (good).
// Nesting matches the declared Ledger::mu -> Queue::mu edge; every other
// acquisition is disjoint (the scopes close before the next lock), and the
// one deliberate same-identity nesting carries a justification.
#include "rock_analyze_stubs.h"

namespace rock::fixture {

struct Ledger {
  common::Mutex mu;
  int live ROCK_GUARDED_BY(mu) = 0;
};

struct Queue {
  common::Mutex mu;
  std::deque<int64_t> work ROCK_GUARDED_BY(mu);
};

struct Shard {
  common::Mutex mu;
  std::map<int64_t, int64_t> entries ROCK_GUARDED_BY(mu);
};

// OK: matches the declared edge.
void Drain(Ledger& ledger, Queue& queue) {
  common::MutexLock hold(ledger.mu);
  common::MutexLock inner(queue.mu);
  ledger.live--;
}

// OK: sequential scopes, never nested.
void Sweep(Ledger& ledger, Queue& queue) {
  {
    common::MutexLock hold(queue.mu);
    queue.work.clear();
  }
  {
    common::MutexLock hold(ledger.mu);
    ledger.live = 0;
  }
}

// OK: annotated same-identity nesting with an ordering argument.
void Move(Shard& from, Shard& to, int64_t key) {
  common::MutexLock hold(from.mu);
  // ROCK_ANALYZE(lock-order-ok: callers pass shards in ascending index order)
  common::MutexLock inner(to.mu);
  to.entries[key] = from.entries[key];
}

}  // namespace rock::fixture
