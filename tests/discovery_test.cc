#include <gtest/gtest.h>

#include "src/discovery/evidence.h"
#include "src/discovery/miner.h"
#include "src/discovery/poly.h"
#include "src/discovery/topk.h"
#include "src/rules/eval.h"
#include "src/workload/generator.h"

namespace rock::discovery {
namespace {

/// A relation with clean FDs: zip -> area (5 zips), plus noise-free rows so
/// mined statistics are exact.
Database FdDatabase(int rows, int corrupt_every = 0) {
  DatabaseSchema schema;
  Status s = schema.AddRelation(Schema("T", {{"zip", ValueType::kString},
                                             {"area", ValueType::kString},
                                             {"city", ValueType::kString}}));
  EXPECT_TRUE(s.ok());
  Database db(std::move(schema));
  const char* areas[] = {"A0", "A1", "A2", "A3", "A4"};
  const char* cities[] = {"C0", "C1"};
  for (int i = 0; i < rows; ++i) {
    int z = i % 5;
    Tuple t;
    const char* area = areas[z];
    if (corrupt_every > 0 && i % corrupt_every == corrupt_every - 1) {
      area = areas[(z + 1) % 5];
    }
    t.values = {Value::String("Z" + std::to_string(z)),
                Value::String(area), Value::String(cities[z % 2])};
    EXPECT_TRUE(db.Insert(0, t).ok());
  }
  return db;
}

TEST(EvidenceTest, PairSpaceContainsEqualityAndEr) {
  Database db = FdDatabase(20);
  PredicateSpaceOptions options;
  PredicateSpace space = BuildPairSpace(db, 0, options);
  EXPECT_EQ(space.tuple_vars, (std::vector<int>{0, 0}));
  // 3 equality predicates + constants + ER consequence.
  EXPECT_GE(space.predicates.size(), 4u);
  EXPECT_FALSE(space.consequence_candidates.empty());
}

TEST(EvidenceTest, TableCountsMatchSemantics) {
  Database db = FdDatabase(10);
  rules::EvalContext ctx;
  ctx.db = &db;
  rules::Evaluator eval(ctx);
  PredicateSpaceOptions options;
  options.max_constants_per_attr = 0;
  options.include_er_consequence = false;
  PredicateSpace space = BuildPairSpace(db, 0, options);
  Rng rng(1);
  EvidenceTable table = EvidenceTable::Build(eval, space, 0, &rng);
  // 10*9 ordered non-reflexive pairs.
  EXPECT_EQ(table.num_rows(), 90u);
  // zip equality (predicate 0): each zip has 2 rows -> 2 ordered pairs per
  // zip, 5 zips = 10.
  EXPECT_EQ(table.CountAll({0}), 10u);
  // zip-eq AND area-eq: the FD holds, so identical count.
  EXPECT_EQ(table.CountAllPlus({0}, 1), 10u);
}

TEST(EvidenceTest, SamplingReducesRows) {
  Database db = FdDatabase(60);
  rules::EvalContext ctx;
  ctx.db = &db;
  rules::Evaluator eval(ctx);
  PredicateSpaceOptions options;
  options.max_constants_per_attr = 0;
  PredicateSpace space = BuildPairSpace(db, 0, options);
  Rng rng(2);
  EvidenceTable table = EvidenceTable::Build(eval, space, 500, &rng);
  EXPECT_LT(table.num_rows(), 1000u);
  EXPECT_GT(table.num_rows(), 200u);
  EXPECT_LT(table.sample_ratio(), 1.0);
}

TEST(MinerTest, FindsCleanFd) {
  Database db = FdDatabase(50);
  rules::EvalContext ctx;
  ctx.db = &db;
  rules::Evaluator eval(ctx);
  PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  space_options.include_er_consequence = false;
  PredicateSpace space = BuildPairSpace(db, 0, space_options);
  RuleMiner miner;
  auto mined = miner.Mine(eval, space);
  bool found = false;
  for (const MinedRule& rule : mined) {
    std::string text = rule.rule.ToString(db.schema());
    if (text == "T(t0) ^ T(t1) ^ t0.zip = t1.zip -> t0.area = t1.area") {
      found = true;
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
      EXPECT_GT(rule.support, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, ConfidenceReflectsNoise) {
  // Corrupt every 10th row: zip->area confidence ~0.8 (ordered pairs), so
  // a 0.9 bar rejects it and a 0.5 bar accepts it.
  Database db = FdDatabase(50, /*corrupt_every=*/10);
  rules::EvalContext ctx;
  ctx.db = &db;
  rules::Evaluator eval(ctx);
  PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  space_options.include_er_consequence = false;
  PredicateSpace space = BuildPairSpace(db, 0, space_options);

  auto contains_fd = [&db](const std::vector<MinedRule>& rules) {
    for (const MinedRule& rule : rules) {
      if (rule.rule.ToString(db.schema()) ==
          "T(t0) ^ T(t1) ^ t0.zip = t1.zip -> t0.area = t1.area") {
        return true;
      }
    }
    return false;
  };

  MinerOptions strict;
  strict.min_confidence = 0.95;
  RuleMiner strict_miner(strict);
  EXPECT_FALSE(contains_fd(strict_miner.Mine(eval, space)));

  MinerOptions lenient;
  lenient.min_confidence = 0.5;
  RuleMiner lenient_miner(lenient);
  EXPECT_TRUE(contains_fd(lenient_miner.Mine(eval, space)));
}

TEST(MinerTest, MinimalityNoSupersets) {
  Database db = FdDatabase(50);
  rules::EvalContext ctx;
  ctx.db = &db;
  rules::Evaluator eval(ctx);
  PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  space_options.include_er_consequence = false;
  PredicateSpace space = BuildPairSpace(db, 0, space_options);
  RuleMiner miner;
  auto mined = miner.Mine(eval, space);
  // If zip->area is mined, zip+city->area (a superset precondition with
  // the same consequence) must not be.
  bool base = false, superset = false;
  for (const MinedRule& rule : mined) {
    std::string text = rule.rule.ToString(db.schema());
    if (text.find("-> t0.area = t1.area") == std::string::npos) continue;
    bool has_zip = text.find("t0.zip = t1.zip") != std::string::npos;
    bool has_city = text.find("t0.city = t1.city") != std::string::npos;
    if (has_zip && !has_city) base = true;
    if (has_zip && has_city) superset = true;
  }
  EXPECT_TRUE(base);
  EXPECT_FALSE(superset);
}

TEST(MinerTest, PruningExploresFewerCandidates) {
  Database db = FdDatabase(40);
  rules::EvalContext ctx;
  ctx.db = &db;
  rules::Evaluator eval(ctx);
  PredicateSpaceOptions space_options;
  PredicateSpace space = BuildPairSpace(db, 0, space_options);

  MinerOptions pruned_options;
  RuleMiner pruned(pruned_options);
  pruned.Mine(eval, space);

  MinerOptions exhaustive_options;
  exhaustive_options.disable_pruning = true;
  RuleMiner exhaustive(exhaustive_options);
  exhaustive.Mine(eval, space);

  EXPECT_LT(pruned.candidates_explored(),
            exhaustive.candidates_explored());
}

TEST(MinerTest, HoeffdingBoundFormula) {
  // m >= ln(2/δ)/(2ε²): spot values.
  EXPECT_EQ(HoeffdingSampleSize(0.1, 0.05), 185u);
  EXPECT_GT(HoeffdingSampleSize(0.01, 0.05), 18000u);
  EXPECT_LT(HoeffdingSampleSize(0.2, 0.2), 50u);
}

// ---------- Top-k / anytime ----------

std::vector<MinedRule> FakeRules() {
  std::vector<MinedRule> rules;
  for (int i = 0; i < 6; ++i) {
    MinedRule rule;
    rule.rule.id = "r" + std::to_string(i);
    rule.rule.tuple_vars = {0, 0};
    rule.rule.consequence =
        rules::Predicate::AttrCompare(0, i % 3, rules::CmpOp::kEq, 1, i % 3);
    rule.support = 0.1 * (i + 1);
    rule.confidence = 1.0 - 0.05 * i;
    rules.push_back(std::move(rule));
  }
  return rules;
}

TEST(TopKTest, ObjectiveFallbackOrdersByConfidence) {
  auto rules = FakeRules();
  RuleScoringModel scorer;
  auto top = SelectTopK(rules, 3, scorer, /*diversify=*/false);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].rule.id, "r0");  // highest confidence
  EXPECT_EQ(top[1].rule.id, "r1");
}

TEST(TopKTest, LearnedPreferenceOverridesObjective) {
  auto rules = FakeRules();
  // The user likes low-confidence/high-support rules (subjective measure).
  RuleScoringModel scorer;
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  scorer.Train(rules, labels);
  auto top = SelectTopK(rules, 2, scorer, false);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_TRUE(top[0].rule.id == "r5" || top[0].rule.id == "r4" ||
              top[0].rule.id == "r3")
      << top[0].rule.id;
}

TEST(AnytimeTest, StreamsAllRulesOnce) {
  auto rules = FakeRules();
  RuleScoringModel scorer;
  AnytimeRuleStream stream(rules, &scorer);
  std::set<std::string> seen;
  while (auto rule = stream.Next()) {
    EXPECT_TRUE(seen.insert(rule->rule.id).second);
  }
  EXPECT_EQ(seen.size(), rules.size());
  EXPECT_EQ(stream.remaining(), 0u);
}

TEST(AnytimeTest, FeedbackReranksRemainder) {
  auto rules = FakeRules();
  RuleScoringModel scorer;
  AnytimeRuleStream stream(rules, &scorer);
  auto first = stream.Next();
  ASSERT_TRUE(first.has_value());
  // Strong negative feedback on the leader's shape; the model adapts and
  // the stream still returns everything exactly once.
  stream.Feedback(*first, 0);
  std::set<std::string> seen = {first->rule.id};
  while (auto rule = stream.Next()) {
    EXPECT_TRUE(seen.insert(rule->rule.id).second);
  }
  EXPECT_EQ(seen.size(), rules.size());
}

TEST(TopKTest, DiversificationPrefersCoverage) {
  // Build evidence over a clean FD database and diversify: two rules with
  // disjoint supporting rows should both be picked over a redundant twin
  // of the first.
  Database db = FdDatabase(40);
  rules::EvalContext ctx;
  ctx.db = &db;
  rules::Evaluator eval(ctx);
  PredicateSpaceOptions space_options;
  space_options.max_constants_per_attr = 0;
  space_options.include_er_consequence = false;
  PredicateSpace space = BuildPairSpace(db, 0, space_options);
  Rng rng(1);
  EvidenceTable table = EvidenceTable::Build(eval, space, 0, &rng);

  RuleMiner miner;
  auto mined = miner.Mine(eval, space);
  ASSERT_GE(mined.size(), 2u);
  // Supporting rows per rule: the evidence rows satisfying X ∧ p0. The
  // mined predicates reference space indices, so recompute via counting.
  std::vector<std::vector<uint32_t>> rule_rows;
  for (const MinedRule& rule : mined) {
    std::vector<int> indices;
    for (const auto& p : rule.rule.precondition) {
      for (size_t i = 0; i < space.predicates.size(); ++i) {
        if (space.predicates[i] == p) indices.push_back(static_cast<int>(i));
      }
    }
    for (size_t i = 0; i < space.predicates.size(); ++i) {
      if (space.predicates[i] == rule.rule.consequence) {
        indices.push_back(static_cast<int>(i));
      }
    }
    rule_rows.push_back(table.RowsSatisfying(indices));
  }
  RuleScoringModel scorer;
  auto diversified = SelectTopK(mined, 2, scorer, /*diversify=*/true,
                                &table, &rule_rows);
  ASSERT_EQ(diversified.size(), 2u);
  // The two picks must not share the same consequence (redundant twins
  // cover the same rows and are down-weighted).
  EXPECT_FALSE(diversified[0].rule.consequence ==
               diversified[1].rule.consequence);
}

// ---------- Polynomials ----------

Relation MoneyRelation(int rows, bool with_outliers) {
  Relation relation(Schema("Pay", {{"amount", ValueType::kDouble},
                                   {"fee", ValueType::kDouble},
                                   {"total", ValueType::kDouble}}));
  Rng rng(9);
  for (int i = 0; i < rows; ++i) {
    double amount = 100 + static_cast<double>(rng.NextBounded(5000));
    double fee = 5 + static_cast<double>(rng.NextBounded(50));
    double total = amount + fee;
    if (with_outliers && i % 12 == 0) total *= 1.8;
    Tuple t;
    t.values = {Value::Double(amount), Value::Double(fee),
                Value::Double(total)};
    EXPECT_TRUE(relation.Append(std::move(t)).ok());
  }
  return relation;
}

TEST(PolyTest, ExactLinearInvariant) {
  Relation relation = MoneyRelation(120, false);
  PolyOptions options;
  auto expr = DiscoverPolynomial(relation, 2, options);
  ASSERT_TRUE(expr.ok());
  EXPECT_GT(expr->r_squared, 0.9999);
  EXPECT_GT(expr->exact_support, 0.99);
  // Evaluate on a fresh tuple.
  Tuple t;
  t.values = {Value::Double(1000), Value::Double(20), Value::Null()};
  auto predicted = expr->Evaluate(t);
  ASSERT_TRUE(predicted.ok());
  EXPECT_NEAR(*predicted, 1020.0, 0.5);
}

TEST(PolyTest, RobustToInjectedOutliers) {
  Relation relation = MoneyRelation(120, true);
  PolyOptions options;
  auto expr = DiscoverPolynomial(relation, 2, options);
  ASSERT_TRUE(expr.ok());
  EXPECT_GT(expr->r_squared, 0.9999);
  // ~8% corrupted rows are excluded from exact support.
  EXPECT_GT(expr->exact_support, 0.85);
  EXPECT_LT(expr->exact_support, 0.99);
}

TEST(PolyTest, ProductTerms) {
  Relation relation(Schema("O", {{"qty", ValueType::kDouble},
                                 {"price", ValueType::kDouble},
                                 {"total", ValueType::kDouble}}));
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    double qty = 1 + static_cast<double>(rng.NextBounded(9));
    double price = 10 + static_cast<double>(rng.NextBounded(500));
    Tuple t;
    t.values = {Value::Double(qty), Value::Double(price),
                Value::Double(qty * price)};
    ASSERT_TRUE(relation.Append(std::move(t)).ok());
  }
  PolyOptions options;
  auto expr = DiscoverPolynomial(relation, 2, options);
  ASSERT_TRUE(expr.ok());
  EXPECT_GT(expr->exact_support, 0.99);
  bool has_product = false;
  for (const auto& term : expr->terms) {
    if (term.attr_b >= 0) has_product = true;
  }
  EXPECT_TRUE(has_product);
}

TEST(PolyTest, RejectsNonNumericTargetAndTinyData) {
  Relation relation(Schema("T", {{"name", ValueType::kString},
                                 {"x", ValueType::kDouble}}));
  PolyOptions options;
  EXPECT_EQ(DiscoverPolynomial(relation, 0, options).status().code(),
            StatusCode::kInvalidArgument);
  Tuple t;
  t.values = {Value::String("a"), Value::Double(1)};
  ASSERT_TRUE(relation.Append(std::move(t)).ok());
  EXPECT_EQ(DiscoverPolynomial(relation, 1, options).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PolyTest, NullInputsSkipEvaluation) {
  Relation relation = MoneyRelation(50, false);
  PolyOptions options;
  auto expr = DiscoverPolynomial(relation, 2, options);
  ASSERT_TRUE(expr.ok());
  Tuple t;
  t.values = {Value::Null(), Value::Double(20), Value::Null()};
  EXPECT_EQ(expr->Evaluate(t).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace rock::discovery
