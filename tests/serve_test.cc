// End-to-end tests for rockd (src/serve/server.h): a real server on an
// ephemeral 127.0.0.1 port, real client connections, and the properties the
// service promises:
//
//   * served detect/explain results are bitwise identical to calling the
//     library API on the same engine;
//   * concurrent clients are safe (run under TSan in CI) and all see the
//     same read-only results;
//   * malformed input earns a diagnostic error response and a closed
//     connection — never a crash or a hang;
//   * shutdown drains: in-flight requests complete, new connections are
//     refused.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/workload/generator.h"

namespace rock::serve {
namespace {

workload::GeneratorOptions SmallOptions() {
  workload::GeneratorOptions options;
  options.rows = 120;
  options.error_rate = 0.08;
  options.seed = 17;
  return options;
}

core::ModelTrainingSpec BankSpec() {
  core::ModelTrainingSpec spec;
  spec.rank_targets = {{"Customer", "city"}};
  spec.monotone_attrs = {{"Customer", "points"}};
  spec.path_synonyms = {{"area", {"AreaOf"}}};
  return spec;
}

/// A fully-initialized engine + running server per test: trained models,
/// discovered polynomials, activated rules. Correction (for explain) is
/// opt-in per test — it is the slow part.
class ServeTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    data_ = workload::MakeBankData(SmallOptions());
    rock_ = std::make_unique<core::Rock>(&data_.db, &data_.graph);
    rock_->TrainModels(BankSpec());
    rock_->DiscoverPolynomials();
    ASSERT_TRUE(rock_->ActivateRules(data_.rule_text).ok());
    auto server = RockServer::Start(rock_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  std::unique_ptr<Client> MustConnect() {
    auto client = Client::Connect(server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  workload::GeneratedData data_;
  std::unique_ptr<core::Rock> rock_;
  std::unique_ptr<RockServer> server_;
};

TEST_F(ServeTest, PingTelemetryAndMultipleRequestsPerConnection) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->Ping().ok());  // connection survives many requests
  Result<std::string> telemetry = client->Telemetry();
  ASSERT_TRUE(telemetry.ok()) << telemetry.status().ToString();
  EXPECT_FALSE(telemetry->empty());
  EXPECT_EQ((*telemetry)[0], '{');
  EXPECT_GE(server_->requests_served(), 3u);
}

TEST_F(ServeTest, ServedDetectIsBitwiseIdenticalToLibraryCall) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  Result<WireDetectionReport> served = client->Detect(DetectScope::kFull);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  // The server is quiescent (our only request completed), so the library
  // call runs over exactly the state the served call saw.
  detect::DetectionReport library = rock_->DetectActive();
  EXPECT_GT(library.violations, 0u);
  EXPECT_TRUE(WireReportEquals(*served, library))
      << "served report differs from the library-API report";

  // And a second served call returns the identical report again
  // (determinism across the wire, not just within one encode).
  Result<WireDetectionReport> again = client->Detect(DetectScope::kFull);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(WireReportEquals(*again, library));
}

TEST_F(ServeTest, IngestAssignsFreshTidsAndFeedsSessionDetect) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();

  // Duplicate two existing Customer rows: fresh tids, guaranteed schema
  // match, and near-certain violations for the session-scoped detect.
  const Relation& customers = data_.db.relation(0);
  ASSERT_GE(customers.size(), 2u);
  Tuple a = customers.tuple(0);
  Tuple b = customers.tuple(1);
  const int64_t next_tid_before = data_.db.next_tid();
  a.tid = -1;
  a.eid = -1;
  b.tid = -1;
  b.eid = -1;

  Result<std::vector<int64_t>> tids = client->Ingest(0, {a, b});
  ASSERT_TRUE(tids.ok()) << tids.status().ToString();
  ASSERT_EQ(tids->size(), 2u);
  EXPECT_EQ((*tids)[0], next_tid_before);
  EXPECT_EQ((*tids)[1], next_tid_before + 1);

  Result<WireDetectionReport> served = client->Detect(DetectScope::kSession);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  detect::DetectionReport library = rock_->DetectActiveIncremental(
      {{0, (*tids)[0]}, {0, (*tids)[1]}});
  EXPECT_TRUE(WireReportEquals(*served, library));
  EXPECT_GT(served->violations, 0u) << "duplicated rows should violate";
}

TEST_F(ServeTest, IngestIntoBadRelationIsAnErrorResponseNotACrash) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  Tuple junk;
  junk.values = {Value::Int(1)};
  Result<std::vector<int64_t>> tids = client->Ingest(99, {junk});
  ASSERT_FALSE(tids.ok());
  EXPECT_EQ(tids.status().code(), StatusCode::kInvalidArgument);
  // The connection survives an application-level error.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServeTest, ServedExplainIsBitwiseIdenticalToLibraryCall) {
  StartServer();
  // A correction pass gives Explain a fix store to answer from.
  core::CorrectionResult result;
  auto engine =
      rock_->CorrectErrors(rock_->active_rules(), data_.clean_tuples, &result);
  ASSERT_TRUE(result.chase.converged);
  const auto& fixes = engine->CellFixes();
  ASSERT_FALSE(fixes.empty());

  std::unique_ptr<Client> client = MustConnect();
  size_t non_empty = 0;
  const size_t sample = std::min<size_t>(fixes.size(), 8);
  for (size_t i = 0; i < sample; ++i) {
    const auto& fix = fixes[i];
    Result<Client::Explanation> served =
        client->Explain(fix.rel, fix.tid, fix.attr);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    obs::ProofTree library = rock_->Explain(fix.rel, fix.tid, fix.attr);
    EXPECT_EQ(served->text, library.ToText());
    EXPECT_EQ(served->json, library.ToJson());
    if (!served->text.empty()) ++non_empty;
  }
  EXPECT_GT(non_empty, 0u) << "every sampled proof came back empty";

  // A never-fixed cell explains to an empty proof, not an error.
  Result<Client::Explanation> missing = client->Explain(0, 999999, 0);
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_EQ(missing->text, rock_->Explain(0, 999999, 0).ToText());
}

TEST_F(ServeTest, ConcurrentReadOnlyClientsAllSeeTheLibraryReport) {
  StartServer();
  // Reference report first; the concurrent phase is read-only, so every
  // served report must equal it bit for bit.
  detect::DetectionReport library = rock_->DetectActive();

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, &library, &mismatches, &failures] {
      auto client = Client::Connect(server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        if (!(*client)->Ping().ok()) ++failures;
        Result<WireDetectionReport> served =
            (*client)->Detect(DetectScope::kFull);
        if (!served.ok()) {
          ++failures;
          continue;
        }
        if (!WireReportEquals(*served, library)) ++mismatches;
        Result<std::string> telemetry = (*client)->Telemetry();
        if (!telemetry.ok() || telemetry->empty()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(server_->requests_served(),
            static_cast<uint64_t>(kClients * kRequestsPerClient * 3));
}

TEST_F(ServeTest, MalformedBytesEarnAnErrorResponseAndAClosedConnection) {
  StartServer();

  {
    // Oversized length prefix: rejected from the header, diagnostic
    // response, connection closed.
    std::unique_ptr<Client> client = MustConnect();
    WireWriter w;
    w.U32(kFrameMagic);
    w.U32(0xFFFFFF00u);
    w.U32(0);
    ASSERT_TRUE(client->SendRaw(w.bytes()).ok());
    Result<Response> response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->code, StatusCode::kResourceExhausted);
    EXPECT_FALSE(response->error.empty());
    // The server hangs up after a protocol error.
    EXPECT_FALSE(client->Ping().ok());
  }

  {
    // Bad magic.
    std::unique_ptr<Client> client = MustConnect();
    std::string frame = EncodeFrame(EncodeRequest(Request{}));
    frame[1] = 'X';
    ASSERT_TRUE(client->SendRaw(frame).ok());
    Result<Response> response = client->ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  }

  {
    // Corrupted payload (CRC mismatch).
    std::unique_ptr<Client> client = MustConnect();
    std::string frame = EncodeFrame(EncodeRequest(Request{}));
    frame.back() = static_cast<char>(frame.back() ^ 0x40);
    ASSERT_TRUE(client->SendRaw(frame).ok());
    Result<Response> response = client->ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  }

  {
    // Valid frame, garbage payload (undecodable request).
    std::unique_ptr<Client> client = MustConnect();
    ASSERT_TRUE(client->SendRaw(EncodeFrame("garbage payload")).ok());
    Result<Response> response = client->ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_NE(response->code, StatusCode::kOk);
  }

  // After all that abuse the server still serves fresh connections.
  std::unique_ptr<Client> client = MustConnect();
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServeTest, ShutdownDrainsInFlightWorkThenRefusesConnections) {
  ServerOptions options;
  // Hold every non-shutdown handler long enough that the drain demonstrably
  // begins while the detect below is still in flight.
  options.handler_delay_seconds = 0.4;
  StartServer(options);

  std::unique_ptr<Client> worker = MustConnect();
  std::unique_ptr<Client> controller = MustConnect();

  std::atomic<bool> detect_ok{false};
  std::thread in_flight([&worker, &detect_ok] {
    Result<WireDetectionReport> served = worker->Detect(DetectScope::kFull);
    detect_ok.store(served.ok());
  });

  // Give the detect frame time to arrive and enter its (delayed) handler,
  // then order the drain from a second session.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(controller->Shutdown().ok());
  EXPECT_TRUE(server_->draining());

  // The in-flight request must still complete with a full response.
  in_flight.join();
  EXPECT_TRUE(detect_ok.load()) << "in-flight request was not drained";

  server_->WaitUntilStopped();

  // New connections are refused (or at best connect and get no service).
  auto rejected = Client::Connect(server_->port());
  if (rejected.ok()) {
    EXPECT_FALSE((*rejected)->Ping().ok());
  }
  EXPECT_GE(server_->requests_served(), 2u);
}

TEST_F(ServeTest, StopIsIdempotentAndBeginDrainAloneStops) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_TRUE(client->Ping().ok());
  server_->BeginDrain();
  server_->WaitUntilStopped();
  server_->Stop();  // second stop: no deadlock, no double join
  auto rejected = Client::Connect(server_->port());
  if (rejected.ok()) {
    EXPECT_FALSE((*rejected)->Ping().ok());
  }
}

}  // namespace
}  // namespace rock::serve
