// The §6 "Logistics" case study: data that is fairly consistent but
// incomplete (many nulls). Rock first imputes missing values via the chase
// — logic rules, knowledge-graph extraction and M_d predictions — then the
// schema-mapping blocking step links correlated attributes via column
// signatures (the client's downstream application).
//
// Run: ./build/examples/logistics_imputation

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "src/core/engine.h"
#include "src/storage/stats.h"
#include "src/workload/generator.h"
#include "src/workload/scoring.h"

using namespace rock;  // NOLINT — example brevity

int main() {
  workload::GeneratorOptions options;
  options.rows = 400;
  options.error_rate = 0.1;
  workload::GeneratedData data = workload::MakeLogisticsData(options);

  size_t nulls_before = 0;
  const Relation& shipment = data.db.relation(0);
  for (size_t row = 0; row < shipment.size(); ++row) {
    for (const Value& v : shipment.tuple(row).values) {
      nulls_before += v.is_null();
    }
  }
  std::printf("Shipment relation: %zu rows, %zu null cells, KG with %zu "
              "vertices\n", shipment.size(), nulls_before,
              data.graph.num_vertices());

  core::Rock rock(&data.db, &data.graph);
  core::ModelTrainingSpec spec;
  spec.path_synonyms = {{"area", {"AreaOf"}}, {"city", {"CityOf"}}};
  rock.TrainModels(spec);

  auto rules = rock.LoadRules(data.rule_text);
  if (!rules.ok()) {
    std::printf("rule error: %s\n", rules.status().ToString().c_str());
    return 1;
  }

  core::CorrectionResult result;
  auto engine = rock.CorrectErrors(*rules, data.clean_tuples, &result);
  auto score = workload::ScoreCorrection(data, *engine);

  std::printf("\nChase finished in %d rounds with %zu fixes.\n",
              result.chase.rounds, result.chase.fixes_applied);
  auto it = score.by_type.find(workload::InjectedError::kNull);
  if (it != score.by_type.end()) {
    std::printf("Missing-value imputation: recovered %zu / %zu nulls "
                "(recall %.1f%%, precision of all fixes %.1f%%)\n",
                it->second.true_positives,
                it->second.true_positives + it->second.false_negatives,
                100 * it->second.recall(), 100 * score.overall.precision());
  }

  // Schema mapping support (§6): column signatures block attribute pairs
  // before the expensive verification — here between Shipment's address
  // columns and themselves as a demonstration of the signature space.
  DatabaseStats stats = DatabaseStats::Compute(data.db);
  std::printf("\nAttribute-signature similarity (schema-mapping blocking, "
              "top pairs):\n");
  const Schema& schema = shipment.schema();
  std::vector<std::tuple<double, size_t, size_t>> pairs;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    for (size_t b = a + 1; b < schema.num_attributes(); ++b) {
      pairs.emplace_back(DatabaseStats::SignatureSimilarity(
                             stats.Get(0, static_cast<int>(a)),
                             stats.Get(0, static_cast<int>(b))),
                         a, b);
    }
  }
  std::sort(pairs.rbegin(), pairs.rend());
  for (size_t i = 0; i < pairs.size() && i < 5; ++i) {
    auto [sim, a, b] = pairs[i];
    std::printf("  %-12s ~ %-12s signature similarity %.2f\n",
                schema.AttributeName(static_cast<int>(a)).c_str(),
                schema.AttributeName(static_cast<int>(b)).c_str(), sim);
  }
  std::printf("\nPairs above the blocking threshold proceed to "
              "verification; the rest are pruned (20K+ tables in the "
              "client's deployment).\n");
  return 0;
}
