// The §6 e-commerce case study: improving a recommender from the data
// cleaning side. External User/Item tables are dirty; Rock chases them
// with the paper's φ_ER / φ_CR / φ_TD / φ_MI rules, then an REE++ with the
// recommendation model in its precondition (φ_Enrich) overrides low-
// confidence predictions under logic conditions — "embedding ML in logic
// rules" end to end.
//
// Run: ./build/examples/recommendation_enrichment

#include <cstdio>

#include "src/core/engine.h"
#include "src/ml/library.h"
#include "src/rules/parser.h"

using namespace rock;  // NOLINT — example brevity

namespace {

/// The deepFM stand-in: a fixed scorer over (user, item) pairs exposed to
/// rules as a Boolean ML predicate (recommend / don't).
class DeepFm : public ml::PairClassifier {
 public:
  double Score(const std::vector<Value>& user,
               const std::vector<Value>& item) const override {
    // Toy factorization: users like items whose series follows their
    // latest product ("IPhone13" user -> "IPhone14" item).
    if (user.empty() || item.empty() || user[0].is_null() ||
        item[0].is_null()) {
      return 0.1;  // no information: low confidence
    }
    const std::string& latest = user[0].AsString();
    const std::string& candidate = item[0].AsString();
    if (latest.size() == candidate.size() &&
        latest.substr(0, latest.size() - 1) ==
            candidate.substr(0, candidate.size() - 1) &&
        latest.back() + 1 == candidate.back()) {
      return 0.9;
    }
    return 0.3;
  }
  double threshold() const override { return 0.5; }
};

Status Insert(Database& db, int rel, std::vector<Value> values) {
  Tuple t;
  t.values = std::move(values);
  return db.Insert(rel, std::move(t)).ok()
             ? Status::Ok()
             : Status::Internal("insert failed");
}

}  // namespace

int main() {
  // User(latestProduct, name) / UserExt(product, name) /
  // Item(name, year) / ItemExt(name, year).
  DatabaseSchema schema;
  (void)schema.AddRelation(Schema("User", {{"latestProduct",
                                            ValueType::kString},
                                           {"name", ValueType::kString}}));
  (void)schema.AddRelation(Schema("UserExt",
                                  {{"product", ValueType::kString},
                                   {"name", ValueType::kString}}));
  (void)schema.AddRelation(Schema("Item", {{"name", ValueType::kString},
                                           {"year", ValueType::kString}}));
  Database db(std::move(schema));

  // John's latest product is missing; the external table knows it. The
  // item's release year is wrong (the paper's example: IPhone14 / 2002).
  (void)Insert(db, 0, {Value::Null(), Value::String("John Keats")});
  (void)Insert(db, 1, {Value::String("IPhone3"),
                       Value::String("John Keats")});
  (void)Insert(db, 2, {Value::String("IPhone4"), Value::String("2002")});

  kg::KnowledgeGraph graph;
  core::Rock rock(&db, &graph);
  core::ModelTrainingSpec spec;
  spec.mer_threshold = 0.9;
  rock.TrainModels(spec);
  rock.models()->RegisterPair("deepFM", std::make_shared<DeepFm>());

  const char* kRules =
      "# φ_MI: impute the latest product from the external source, when\n"
      "# the ER model matches the user records\n"
      "User(t0) ^ UserExt(t1) ^ MER(t0[name], t1[name]) ^ "
      "null(t0.latestProduct) -> t0.latestProduct = t1.product\n"
      "# φ_CR: the release year of IPhone4 is 2010 in this toy catalog\n"
      "Item(t0) ^ t0.name = 'IPhone4' -> t0.year = '2010'\n"
      "# φ_Enrich: recommend the successor product — deepFM's prediction\n"
      "# as an ML predicate inside the rule\n"
      "User(t0) ^ Item(t1) ^ deepFM(t0[latestProduct], t1[name]) -> "
      "t0.latestProduct = t0.latestProduct\n";
  auto rules = rock.LoadRules(kRules);
  if (!rules.ok()) {
    std::printf("rule error: %s\n", rules.status().ToString().c_str());
    return 1;
  }

  std::printf("Before cleaning: deepFM(User[latestProduct]=null, "
              "Item[IPhone4]) cannot fire.\n");

  core::CorrectionResult result;
  auto engine = rock.CorrectErrors(*rules, {}, &result);
  Database repaired = engine->MaterializeRepairs();
  std::printf("\nAfter the chase (%zu fixes):\n", result.chase.fixes_applied);
  std::printf("  User.latestProduct = %s (imputed via φ_MI)\n",
              repaired.relation(0).tuple(0).value(0).ToString().c_str());
  std::printf("  Item.year          = %s (corrected via φ_CR)\n",
              repaired.relation(2).tuple(0).value(1).ToString().c_str());

  // φ_Enrich: evaluate deepFM inside a rule over the repaired view.
  rules::EvalContext ctx;
  ctx.db = &repaired;
  ctx.models = rock.models();
  rules::Evaluator eval(ctx);
  const rules::Ree& enrich = (*rules)[2];
  int recommendations = 0;
  eval.ForEachSatisfying(enrich, [&](const rules::Valuation& v) {
    std::printf("\nφ_Enrich fires: recommend item '%s' to user '%s' — the "
                "imputed latest product makes the pair a positive example "
                "for (incremental) deepFM training.\n",
                eval.GetCell(enrich, v, 1, 0).ToString().c_str(),
                eval.GetCell(enrich, v, 0, 1).ToString().c_str());
    ++recommendations;
    return true;
  });
  if (recommendations == 0) {
    std::printf("\nNo recommendation fired — unexpected.\n");
    return 1;
  }
  return 0;
}
