// Quickstart: clean the paper's running example (Tables 1-3) with the
// rules φ1..φ15 discussed in §2 and §4, and watch ER, CR, MI and TD
// interact in one chase (Example 7).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/chase/chase.h"
#include "src/core/engine.h"
#include "src/ml/correlation.h"
#include "src/ml/her.h"
#include "src/ml/library.h"
#include "src/rules/parser.h"
#include "src/workload/ecommerce.h"

using namespace rock;  // NOLINT — example brevity

int main() {
  // 1. The example e-commerce database: Person / Store / Trans with the
  //    erroneous values the paper prints in bold.
  workload::EcommerceData data = workload::MakeEcommerceData();
  std::printf("Loaded %zu tuples across %zu relations, %zu KG vertices\n\n",
              data.db.TotalTuples(), data.db.num_relations(),
              data.graph.num_vertices());

  // 2. The ML predicate pool: an entity matcher for commodity strings, the
  //    correlation/prediction models M_c / M_d, HER and the path matcher.
  core::Rock rock(&data.db, &data.graph);
  core::ModelTrainingSpec spec;
  spec.mer_threshold = 0.6;  // commodity descriptions share discount codes
  spec.path_synonyms = {{"location", {"LocationAt"}},
                        {"type", {"TypeOf"}}};
  rock.TrainModels(spec);

  // 3. Rules from the paper, in the textual rule language.
  const char* kRules =
      "# φ1: same discount code, same store, same date => same buyer\n"
      "Trans(t0) ^ Trans(t1) ^ MER(t0[com], t1[com]) ^ t0.date = t1.date ^ "
      "t0.sid = t1.sid -> t0.pid = t1.pid\n"
      "# φ2: same commodity => same manufactory\n"
      "Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg\n"
      "# φ12: Beijing's area code is 010\n"
      "Store(t0) ^ t0.location = 'Beijing' -> t0.area_code = '010'\n"
      "# φ4: marital status moves single -> married\n"
      "Person(t0) ^ Person(t1) ^ t0.status = 'single' ^ "
      "t1.status = 'married' -> t0 <=[status] t1\n"
      "# φ5: status and home are comonotonic\n"
      "Person(t0) ^ Person(t1) ^ t0 <=[status] t1 -> t0 <=[home] t1\n"
      "# φ7: extract a store's location from the knowledge graph\n"
      "Store(t0) ^ vertex(x0, G) ^ HER(t0, x0) ^ "
      "match(t0.location, x0.(LocationAt)) -> "
      "t0.location = val(x0.(LocationAt))\n"
      "# φ8: predict a missing price from validated values\n"
      "Trans(t0) ^ null(t0.price) -> t0.price = Md(t0[com,mfg], price)\n"
      "# φ14: a spouse's home fills a missing home\n"
      "Person(t0) ^ Person(t1) ^ t0.spouse = t1.pid ^ null(t1.home) -> "
      "t1.home = t0.home\n"
      "# φ15: same name and home => same person\n"
      "Person(t0) ^ Person(t1) ^ t0.LN = t1.LN ^ t0.FN = t1.FN ^ "
      "t0.home = t1.home ^ t0.gender = t1.gender -> t0.eid = t1.eid\n";
  auto rules = rock.LoadRules(kRules);
  if (!rules.ok()) {
    std::printf("rule parse error: %s\n", rules->empty()
                    ? rules.status().ToString().c_str() : "");
    return 1;
  }
  std::printf("Parsed %zu REE++s; for example:\n  %s\n\n", rules->size(),
              (*rules)[0].ToString(data.db.schema()).c_str());

  // 4. Detect errors (violations of the rules).
  auto report = rock.DetectErrors(*rules);
  std::printf("Detected %zu violations touching %zu tuples:\n",
              report.violations, report.DirtyTuples().size());
  for (size_t i = 0; i < report.errors.size() && i < 6; ++i) {
    const auto& error = report.errors[i];
    std::printf("  [%s] %s at", error.rule_id.c_str(),
                detect::ErrorClassName(error.error_class));
    for (const auto& cell : error.cells) {
      std::printf(" (%s tid=%lld attr=%d)",
                  data.db.schema().relation(cell.rel).name().c_str(),
                  static_cast<long long>(cell.tid), cell.attr);
    }
    std::printf("\n");
  }

  // 5. Correct them: chase with the rules; Example 7's interaction chain
  //    (ER helps CR helps TD helps MI helps ER) plays out below.
  core::CorrectionResult result;
  auto engine = rock.CorrectErrors(*rules, /*ground_truth=*/{}, &result);
  std::printf("\nChase: %d rounds, %zu fixes, converged=%s\n",
              result.chase.rounds, result.chase.fixes_applied,
              result.chase.converged ? "yes" : "no");
  for (const chase::FixRecord& fix : engine->fix_store().fixes()) {
    std::printf("  %s\n", fix.ToString().c_str());
  }

  // 6. The repaired database.
  Database repaired = engine->MaterializeRepairs();
  const Relation& person = repaired.relation(data.person);
  std::printf("\nRepaired Person relation:\n");
  for (size_t row = 0; row < person.size(); ++row) {
    const Tuple& t = person.tuple(row);
    std::printf("  eid=%lld pid=%s home=%-20s status=%s\n",
                static_cast<long long>(t.eid), t.value(0).ToString().c_str(),
                t.value(4).ToString().c_str(), t.value(5).ToString().c_str());
  }
  std::printf("\nGeorge's missing home was imputed from his spouse (φ14) "
              "and p3/p4 were identified (φ15):\n"
              "ER, CR, MI and TD in one process — the paper's Example 7.\n");

  // 7. Why-provenance: every fix carries the witness that derived it —
  //    the rule, the bound tuples, the premise cells read and the ML
  //    scores — so each repaired cell can be explained as a proof tree
  //    rooted at the fix and bottoming out in raw or ground-truth cells.
  std::vector<chase::CellFix> cell_fixes = engine->CellFixes();
  std::string explained;
  for (const chase::CellFix& fix : cell_fixes) {
    obs::ProofTree tree = rock.Explain(fix.rel, fix.tid, fix.attr);
    if (tree.empty()) continue;
    std::printf("\nWhy is %s tid=%lld attr=%d now %s?\n%s",
                data.db.schema().relation(fix.rel).name().c_str(),
                static_cast<long long>(fix.tid), fix.attr,
                fix.new_value.ToString().c_str(), tree.ToText().c_str());
    explained += tree.ToText();
    explained += "\n";
  }
  obs::ProvenanceSummary summary = rock.ProvenanceSummary();
  std::printf("\nProvenance: %llu nodes, max proof depth %llu, "
              "%llu ML calls; premises: %llu ground-truth, %llu prior-fix, "
              "%llu raw\n",
              static_cast<unsigned long long>(summary.nodes),
              static_cast<unsigned long long>(summary.max_depth),
              static_cast<unsigned long long>(summary.ml_calls),
              static_cast<unsigned long long>(summary.premises_ground_truth),
              static_cast<unsigned long long>(summary.premises_prior_fix),
              static_cast<unsigned long long>(summary.premises_raw));

  // CI uploads the rendered proof trees as an artifact: set
  // ROCK_EXPLAIN_OUT=<path> to write them to a file.
  // Single-threaded example binary; getenv cannot race anything here.
  if (const char* out = std::getenv("ROCK_EXPLAIN_OUT");  // NOLINT(concurrency-mt-unsafe)
      out != nullptr && *out != '\0') {
    Status s = obs::WriteFile(out, explained);
    std::printf("[explain] %s %s\n", s.ok() ? "wrote" : "FAILED writing",
                out);
    if (explained.empty()) {
      std::printf("[explain] ERROR: no non-empty proof trees\n");
      return 1;
    }
  }
  return 0;
}
