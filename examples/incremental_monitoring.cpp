// Incremental mode (paper §3 / §4.1): Rock monitors changes to D and
// detects + fixes errors in response to updates ΔD without re-running the
// batch pipeline. This example streams new shipments into the Logistics
// data; each batch is checked and chased incrementally.
//
// Run: ./build/examples/incremental_monitoring

#include <cstdio>

#include "src/chase/chase.h"
#include "src/common/timer.h"
#include "src/core/engine.h"
#include "src/workload/generator.h"

using namespace rock;  // NOLINT — example brevity

int main() {
  workload::GeneratorOptions options;
  options.rows = 400;
  workload::GeneratedData data = workload::MakeLogisticsData(options);
  core::Rock rock(&data.db, &data.graph);
  core::ModelTrainingSpec spec;
  spec.path_synonyms = {{"area", {"AreaOf"}}, {"city", {"CityOf"}}};
  rock.TrainModels(spec);
  auto rules = rock.LoadRules(data.rule_text);
  if (!rules.ok()) {
    std::printf("rule error: %s\n", rules.status().ToString().c_str());
    return 1;
  }

  // Baseline batch cost, for comparison.
  Timer batch_timer;
  auto batch_report = rock.DetectErrors(*rules);
  double batch_seconds = batch_timer.ElapsedSeconds();
  std::printf("Batch detection over %zu rows: %zu violations in %.3fs\n\n",
              data.db.relation(0).size(), batch_report.violations,
              batch_seconds);

  // A long-lived chase engine accumulates ground truth across batches.
  // The initial batch chase runs once up front; the stream below only
  // pays for its deltas.
  chase::ChaseEngine engine(&data.db, &data.graph, rock.models());
  for (const auto& [rel, tid] : data.clean_tuples) {
    Status ignored = engine.fix_store().AddGroundTruthTuple(rel, tid);
    (void)ignored;
  }
  Timer warmup_timer;
  chase::ChaseResult initial = engine.Run(*rules);
  std::printf("Initial batch chase: %zu fixes in %.3fs\n\n",
              initial.fixes_applied, warmup_timer.ElapsedSeconds());

  const Relation& shipment = data.db.relation(0);
  Rng rng(42);
  for (int batch = 1; batch <= 3; ++batch) {
    // ΔD: five new shipments; one has a wrong area for its zip, one has a
    // missing street.
    std::vector<std::pair<int, int64_t>> delta;
    for (int i = 0; i < 5; ++i) {
      Tuple t = shipment.tuple(rng.NextBounded(shipment.size()));
      t.tid = -1;
      t.eid = -1;
      if (i == 0) t.values[3] = Value::String("Mistyped Area");
      if (i == 1) t.values[2] = Value::Null();
      auto tid = data.db.Insert(0, t);
      if (tid.ok()) delta.emplace_back(0, *tid);
    }

    Timer detect_timer;
    auto report = rock.DetectErrorsIncremental(*rules, delta);
    double detect_seconds = detect_timer.ElapsedSeconds();
    chase::ChaseResult fixes = engine.RunIncremental(*rules, delta);

    std::printf("Batch %d (|ΔD|=5): %zu violations (%.4fs vs %.3fs batch, "
                "%.1fx), %zu incremental fixes\n",
                batch, report.violations, detect_seconds, batch_seconds,
                detect_seconds > 0 ? batch_seconds / detect_seconds : 0.0,
                fixes.fixes_applied);
    for (const auto& error : report.errors) {
      if (error.cells.empty()) continue;
      std::printf("    [%s] %s tid=%lld\n", error.rule_id.c_str(),
                  detect::ErrorClassName(error.error_class),
                  static_cast<long long>(error.cells[0].tid));
      break;  // one sample per batch keeps the output short
    }
  }

  std::printf("\nThe chase engine's ground truth now holds %zu validated "
              "cells; later batches reuse everything deduced so far.\n",
              engine.fix_store().num_value_fixes());
  return 0;
}
