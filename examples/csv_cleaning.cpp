// End-to-end cleaning of a CSV file: load with schema inference, mine
// REE++s from the (dirty) data itself, detect violations, chase them to
// fixes, and write the repaired table back out — the workflow a downstream
// user runs on their own files.
//
// Run: ./build/examples/csv_cleaning

#include <cstdio>

#include "src/core/engine.h"
#include "src/storage/loader.h"

using namespace rock;  // NOLINT — example brevity

namespace {

// An employee roster with classic defects: dept -> floor and dept ->
// manager should hold; row 4 has the wrong floor, row 5 is missing its
// manager, rows 6/7 are a double entry of the same person.
const char* kDirtyCsv =
    "emp,name,dept,floor,manager\n"
    "e1,Ann Chen,engineering,3,Dora Wu\n"
    "e2,Bo Liu,engineering,3,Dora Wu\n"
    "e3,Cy Park,sales,5,Eli Kim\n"
    "e4,Di Wang,sales,5,Eli Kim\n"
    "e5,Ed Zhou,engineering,9,Dora Wu\n"   // wrong floor
    "e6,Fay Sun,sales,5,\n"                // missing manager
    "e7,Gil Moe,engineering,3,Dora Wu\n"
    "e8,Gil Mo,engineering,3,Dora Wu\n";   // double entry of e7

}  // namespace

int main() {
  // 1. Load the CSV with schema inference (floor becomes an int column).
  auto table = CsvTable::Parse(kDirtyCsv);
  if (!table.ok()) {
    std::printf("csv error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  CsvLoadOptions load_options;
  load_options.eid_column = "emp";
  Database db;
  auto rel = AddRelationFromCsv(&db, "Employee", *table, load_options);
  if (!rel.ok()) {
    std::printf("load error: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu employees; schema:", db.relation(*rel).size());
  for (const auto& attr : db.relation(*rel).schema().attributes()) {
    std::printf(" %s(%s)", attr.name.c_str(), ValueTypeName(attr.type));
  }
  std::printf("\n\n");

  // 2. Mine rules from the dirty data (confidence < 1 tolerates the
  //    errors), plus one curated ER rule with the name matcher.
  core::RockOptions options;
  options.miner.min_confidence = 0.7;
  options.miner.min_support_rows = 3;
  core::Rock rock(&db, nullptr, options);
  core::ModelTrainingSpec spec;
  spec.mer_threshold = 0.85;
  rock.TrainModels(spec);

  discovery::PredicateSpaceOptions space;
  space.max_constants_per_attr = 0;
  auto mined = rock.DiscoverRules(space);
  std::printf("Mined %zu REE++s; the top ones:\n", mined.size());
  std::vector<rules::Ree> rule_set;
  for (size_t i = 0; i < mined.size(); ++i) {
    if (i < 4) {
      std::printf("  [conf %.2f] %s\n", mined[i].confidence,
                  mined[i].rule.ToString(db.schema()).c_str());
    }
    rule_set.push_back(mined[i].rule);
  }
  auto er_rule = rock.LoadRules(
      "Employee(t0) ^ Employee(t1) ^ MER(t0[name], t1[name]) ^ "
      "t0.dept = t1.dept -> t0.eid = t1.eid");
  if (er_rule.ok() && !er_rule->empty()) {
    rule_set.push_back((*er_rule)[0]);
  }

  // 3. Detect.
  auto detection = rock.DetectErrors(rule_set);
  std::printf("\nDetected %zu violations over %zu tuples.\n",
              detection.violations, detection.DirtyTuples().size());

  // 4. Correct: trust the first five employees as ground truth Γ.
  std::vector<std::pair<int, int64_t>> ground_truth;
  for (size_t row = 0; row < 5; ++row) {
    ground_truth.emplace_back(*rel, db.relation(*rel).tuple(row).tid);
  }
  core::CorrectionResult result;
  auto engine = rock.CorrectErrors(rule_set, ground_truth, &result);
  std::printf("Chase: %zu fixes in %d rounds.\n",
              result.chase.fixes_applied, result.chase.rounds);
  for (const auto& fix : engine->CellFixes()) {
    std::printf("  fixed %s[tid %lld].%s: %s -> %s\n",
                db.schema().relation(fix.rel).name().c_str(),
                static_cast<long long>(fix.tid),
                db.relation(fix.rel).schema().AttributeName(fix.attr).c_str(),
                fix.old_value.ToString().c_str(),
                fix.new_value.ToString().c_str());
  }
  for (const auto& group : engine->EntityGroups()) {
    if (group.size() < 2) continue;
    std::printf("  identified %zu records as one employee (tids:",
                group.size());
    for (const auto& [r, tid] : group) {
      std::printf(" %lld", static_cast<long long>(tid));
    }
    std::printf(")\n");
  }

  // 5. Write the repaired table back to CSV.
  Database repaired = engine->MaterializeRepairs();
  CsvTable out = RelationToCsv(repaired.relation(*rel));
  std::printf("\nRepaired CSV:\n%s", out.ToCsv().c_str());
  return 0;
}
