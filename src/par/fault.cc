#include "src/par/fault.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace rock::par {

double RetryPolicy::BackoffSeconds(int attempt) const {
  double backoff = backoff_base_seconds;
  for (int i = 1; i < attempt && backoff < backoff_cap_seconds; ++i) {
    backoff *= 2.0;
  }
  return std::min(backoff, backoff_cap_seconds);
}

bool FaultPlan::Unrecoverable(size_t unit, const RetryPolicy& retry) const {
  auto it = transient_failures.find(unit);
  return it != transient_failures.end() && it->second >= retry.max_attempts;
}

std::string FaultPlan::ToSpec() const {
  std::string spec;
  auto sep = [&] {
    if (!spec.empty()) spec += ";";
  };
  for (const auto& [unit, attempt] : crash_at_attempt) {
    sep();
    spec += "crash:" + std::to_string(unit) + "@" + std::to_string(attempt);
  }
  for (const auto& [unit, seconds] : delay_seconds) {
    sep();
    // Microsecond resolution keeps the spec short and round-trippable.
    spec += "delay:" + std::to_string(unit) + "=" +
            std::to_string(static_cast<int64_t>(seconds * 1e6)) + "us";
  }
  for (const auto& [unit, failures] : transient_failures) {
    sep();
    spec += "flaky:" + std::to_string(unit) + "x" + std::to_string(failures);
  }
  return spec;
}

namespace {

Status ParseEntry(const std::string& entry, FaultPlan* plan) {
  size_t colon = entry.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("fault entry lacks ':': " + entry);
  }
  std::string kind = entry.substr(0, colon);
  std::string body = entry.substr(colon + 1);
  auto parse_number = [&](const std::string& text, int64_t* out) {
    char* end = nullptr;
    *out = std::strtoll(text.c_str(), &end, 10);
    return end != text.c_str();
  };
  if (kind == "crash") {
    size_t at = body.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument("crash entry lacks '@': " + entry);
    }
    int64_t unit = 0, attempt = 0;
    if (!parse_number(body.substr(0, at), &unit) ||
        !parse_number(body.substr(at + 1), &attempt) || unit < 0 ||
        attempt < 1) {
      return Status::InvalidArgument("bad crash entry: " + entry);
    }
    plan->crash_at_attempt[static_cast<size_t>(unit)] =
        static_cast<int>(attempt);
    return Status::Ok();
  }
  if (kind == "delay") {
    size_t eq = body.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("delay entry lacks '=': " + entry);
    }
    std::string amount = body.substr(eq + 1);
    if (amount.size() < 2 || amount.substr(amount.size() - 2) != "us") {
      return Status::InvalidArgument("delay amount must end in 'us': " +
                                     entry);
    }
    int64_t unit = 0, micros = 0;
    if (!parse_number(body.substr(0, eq), &unit) ||
        !parse_number(amount.substr(0, amount.size() - 2), &micros) ||
        unit < 0 || micros < 0) {
      return Status::InvalidArgument("bad delay entry: " + entry);
    }
    plan->delay_seconds[static_cast<size_t>(unit)] =
        static_cast<double>(micros) * 1e-6;
    return Status::Ok();
  }
  if (kind == "flaky") {
    size_t x = body.find('x');
    if (x == std::string::npos) {
      return Status::InvalidArgument("flaky entry lacks 'x': " + entry);
    }
    int64_t unit = 0, failures = 0;
    if (!parse_number(body.substr(0, x), &unit) ||
        !parse_number(body.substr(x + 1), &failures) || unit < 0 ||
        failures < 1) {
      return Status::InvalidArgument("bad flaky entry: " + entry);
    }
    plan->transient_failures[static_cast<size_t>(unit)] =
        static_cast<int>(failures);
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown fault kind '" + kind + "'");
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    if (!entry.empty()) {
      Status s = ParseEntry(entry, &plan);
      if (!s.ok()) return s;
    }
    begin = end + 1;
  }
  return plan;
}

FaultPlan FaultPlan::FromSeed(uint64_t seed, size_t num_units,
                              int num_workers) {
  FaultPlan plan;
  if (num_units == 0) return plan;
  Rng rng(seed ^ 0xFA017C0DEull);
  // Roughly one fault per four units, bounded so small unit sets still get
  // at least one of each kind when possible.
  size_t budget = std::max<size_t>(3, num_units / 4);
  size_t crashes = 0;
  size_t max_crashes =
      num_workers > 1 ? static_cast<size_t>(num_workers - 1) : 0;
  for (size_t i = 0; i < budget; ++i) {
    size_t unit = rng.NextBounded(num_units);
    switch (rng.NextBounded(3)) {
      case 0:
        if (crashes < max_crashes &&
            plan.crash_at_attempt.insert({unit, 1}).second) {
          ++crashes;
        }
        break;
      case 1:
        // 0.2ms..2ms stragglers: visible in schedules, cheap in tests.
        plan.delay_seconds[unit] =
            0.0002 + 0.0018 * rng.NextDouble();
        break;
      default:
        // 1..2 failing attempts — always below the default attempt
        // budget, so seeded plans are recoverable by the pool alone.
        plan.transient_failures[unit] =
            static_cast<int>(1 + rng.NextBounded(2));
        break;
    }
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::FromEnv(size_t num_units,
                                            int num_workers) {
  // Read once per call; benches and tests configure the environment before
  // any pool runs, so there is no concurrent setenv.
  const char* spec = std::getenv("ROCK_FAULT_PLAN");  // NOLINT(concurrency-mt-unsafe)
  if (spec != nullptr && *spec != '\0') {
    Result<FaultPlan> plan = Parse(spec);
    ROCK_CHECK(plan.ok()) << "ROCK_FAULT_PLAN: "
                          << plan.status().ToString();
    return *plan;
  }
  const char* seed = std::getenv("ROCK_FAULT_SEED");  // NOLINT(concurrency-mt-unsafe)
  if (seed != nullptr && *seed != '\0') {
    return FromSeed(std::strtoull(seed, nullptr, 10), num_units,
                    num_workers);
  }
  return std::nullopt;
}

}  // namespace rock::par
