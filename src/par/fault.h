#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace rock::par {

/// Retry discipline for failed work units: capped exponential backoff with
/// a per-unit attempt budget. An "attempt" is one acquisition of the unit
/// by a worker; a unit whose failing attempt number reaches `max_attempts`
/// is declared unrecovered by the pool (the recovery layer above — the
/// chase's round checkpoint — replays it serially).
struct RetryPolicy {
  /// Maximum acquisitions per unit before the pool gives up on it.
  int max_attempts = 4;
  /// Backoff before retry k is min(base * 2^(k-1), cap) seconds.
  double backoff_base_seconds = 0.0005;
  double backoff_cap_seconds = 0.01;

  double BackoffSeconds(int attempt) const;
};

/// A deterministic fault schedule for one WorkerPool::Execute call
/// (DESIGN.md "Fault injection & recovery"). Faults are keyed by unit
/// index and attempt number — never by wall-clock or thread identity — so
/// a given plan injects exactly the same fault events on every run and on
/// both execution modes, and a failing run replays from its spec string.
///
///  - crash: the worker that acquires the unit at the given attempt dies.
///    Its acquired unit and remaining deque re-place onto surviving
///    workers via the pool's hash ring (salted probing past dead nodes).
///    A crash that would kill the last live worker is suppressed.
///  - delay: a straggler — the unit's first execution attempt stalls for
///    the given duration before the body runs.
///  - transient: the unit's first N acquisition attempts fail before the
///    body runs (the body itself still executes exactly once, on the
///    first surviving attempt), each followed by RetryPolicy backoff.
///    N >= RetryPolicy::max_attempts exhausts the attempt budget and the
///    unit is reported unrecovered.
struct FaultPlan {
  /// unit index -> attempt (1-based) at which the acquiring worker dies.
  std::map<size_t, int> crash_at_attempt;
  /// unit index -> straggler delay in seconds (first attempt only).
  std::map<size_t, double> delay_seconds;
  /// unit index -> number of leading attempts that fail.
  std::map<size_t, int> transient_failures;

  bool empty() const {
    return crash_at_attempt.empty() && delay_seconds.empty() &&
           transient_failures.empty();
  }
  size_t size() const {
    return crash_at_attempt.size() + delay_seconds.size() +
           transient_failures.size();
  }

  /// True when the plan exhausts `unit`'s attempt budget (the pool will
  /// report it unrecovered). Independent of crashes: transient failures
  /// are keyed by attempt *number*, so a unit fails unrecoverably iff its
  /// scheduled failures reach the budget.
  bool Unrecoverable(size_t unit, const RetryPolicy& retry) const;

  /// Replayable textual form, e.g.
  ///   "crash:5@1;delay:3=0.02;flaky:7x2"
  /// (crash unit 5 at attempt 1; delay unit 3 by 20ms; fail unit 7's
  /// first two attempts). Parse(ToSpec()) round-trips exactly.
  std::string ToSpec() const;
  static Result<FaultPlan> Parse(const std::string& spec);

  /// Deterministic pseudo-random plan over `num_units` units: a mix of
  /// stragglers, transient failures (always below the default attempt
  /// budget) and at most num_workers - 1 crashes. Same seed, same plan.
  static FaultPlan FromSeed(uint64_t seed, size_t num_units,
                            int num_workers);

  /// Plan configured through the environment: ROCK_FAULT_PLAN (a spec
  /// string, wins) or ROCK_FAULT_SEED (fed to FromSeed). nullopt when
  /// neither is set; an unparsable ROCK_FAULT_PLAN aborts.
  static std::optional<FaultPlan> FromEnv(size_t num_units,
                                          int num_workers);
};

/// Fault/recovery accounting for one Execute call. Event counts are
/// functions of the plan (not of thread timing), so they are identical
/// across runs and execution modes; the exception is crashes_suppressed,
/// which depends on how many workers are still alive when a crash fires.
struct FaultReport {
  /// Fault events that fired (crashes + stragglers + transient failures).
  int injected = 0;
  /// Transient failures that were retried after backoff.
  int retries = 0;
  int worker_deaths = 0;
  /// Crashes ignored because they would have killed the last live worker.
  int crashes_suppressed = 0;
  /// Units drained from a dead worker's deque to surviving peers.
  int steals_on_death = 0;
  /// Units re-placed off a dead worker (drained units + the one in hand).
  int units_reassigned = 0;
  /// Total backoff slept (threads) or modeled (simulated), seconds.
  double backoff_seconds = 0.0;
  /// Units whose attempt budget was exhausted — never executed by the
  /// pool, sorted ascending. The caller owns recovery (see
  /// WorkerPool::ReplayUnrecovered).
  std::vector<size_t> unrecovered_units;
};

}  // namespace rock::par
