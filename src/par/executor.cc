#include "src/par/executor.h"

#include <ctime>

#include <algorithm>
#include <deque>
#include <queue>
#include <thread>

#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/common/timer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rock::par {
namespace {

/// Pool metrics, registered once and cached (see obs::MetricsRegistry).
struct PoolMetrics {
  obs::Counter* units_executed;
  obs::Counter* units_stolen;
  obs::Counter* busy_micros;
  obs::Counter* idle_micros;
  obs::Gauge* queue_depth;
  obs::Histogram* unit_seconds;

  static const PoolMetrics& Get() {
    static PoolMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      PoolMetrics out;
      out.units_executed = reg.GetCounter("rock_par_units_executed_total");
      out.units_stolen = reg.GetCounter("rock_par_units_stolen_total");
      out.busy_micros = reg.GetCounter("rock_par_worker_busy_micros_total");
      out.idle_micros = reg.GetCounter("rock_par_worker_idle_micros_total");
      out.queue_depth = reg.GetGauge("rock_par_queue_depth");
      out.unit_seconds = reg.GetHistogram("rock_par_unit_seconds",
                                          obs::LatencyBucketsSeconds());
      return out;
    }();
    return m;
  }
};

uint64_t Micros(double seconds) {
  return seconds > 0 ? static_cast<uint64_t>(seconds * 1e6) : 0;
}

}  // namespace

std::string WorkUnit::PlacementKey() const {
  std::string key = "u" + std::to_string(rule_index);
  for (const Range& r : ranges) {
    key += ":" + std::to_string(r.rel) + "." + std::to_string(r.begin);
  }
  return key;
}

double CostModel::Estimate(const WorkUnit& unit, int join_attr) const {
  double cost = 1.0;
  for (const WorkUnit::Range& r : unit.ranges) {
    cost *= std::max(1, r.end - r.begin);
  }
  if (join_attr >= 0 && unit.ranges.size() >= 2) {
    const ColumnStats& stats =
        stats_->Get(unit.ranges[1].rel, join_attr);
    if (stats.num_distinct > 0) {
      // Equality join selectivity ~ 1 / distinct values.
      cost /= static_cast<double>(stats.num_distinct);
    }
  }
  return std::max(cost, 1.0);
}

std::vector<WorkUnit> BuildHyperCubeUnits(const Database& db, int rule_index,
                                          const std::vector<int>& tuple_vars,
                                          int block_rows) {
  std::vector<WorkUnit> units;
  // Block boundaries per variable.
  std::vector<std::vector<std::pair<int, int>>> blocks(tuple_vars.size());
  for (size_t var = 0; var < tuple_vars.size(); ++var) {
    int size = static_cast<int>(db.relation(tuple_vars[var]).size());
    for (int begin = 0; begin < size; begin += block_rows) {
      blocks[var].emplace_back(begin, std::min(begin + block_rows, size));
    }
    if (blocks[var].empty()) blocks[var].emplace_back(0, 0);
  }
  // Cross product of block choices (the HyperCube grid).
  std::vector<size_t> choice(tuple_vars.size(), 0);
  while (true) {
    WorkUnit unit;
    unit.rule_index = rule_index;
    for (size_t var = 0; var < tuple_vars.size(); ++var) {
      auto [begin, end] = blocks[var][choice[var]];
      unit.ranges.push_back({tuple_vars[var], begin, end});
    }
    units.push_back(std::move(unit));
    // Advance the odometer.
    size_t var = 0;
    while (var < choice.size()) {
      if (++choice[var] < blocks[var].size()) break;
      choice[var] = 0;
      ++var;
    }
    if (var == choice.size()) break;
  }
  return units;
}

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kThreads:
      return "threads";
    case ExecutionMode::kSimulated:
      return "simulated";
  }
  return "?";
}

WorkerPool::WorkerPool(int num_workers, ExecutionMode mode)
    : num_workers_(std::max(1, num_workers)), mode_(mode) {
  for (int w = 0; w < num_workers_; ++w) {
    Status s = ring_.AddNode("worker-" + std::to_string(w));
    ROCK_CHECK(s.ok());
  }
}

std::vector<std::vector<size_t>> WorkerPool::PlaceUnits(
    const std::vector<WorkUnit>& units) const {
  std::vector<std::vector<size_t>> queues(
      static_cast<size_t>(num_workers_));
  for (size_t i = 0; i < units.size(); ++i) {
    auto owner = ring_.Locate(units[i].PlacementKey());
    int worker = 0;
    if (owner.ok()) {
      worker = std::stoi(owner->substr(owner->find('-') + 1));
    }
    queues[static_cast<size_t>(worker)].push_back(i);
  }
  return queues;
}

namespace {

struct SimulationResult {
  double makespan = 0.0;
  std::vector<int> executed;
  int stolen = 0;
};

/// Event-driven replay of the placement + work-stealing schedule from
/// per-unit durations: when a worker's queue drains it steals the tail of
/// the longest remaining queue (paper §5.2: "when a node finishes its
/// assigned work units, it evokes the work manager to fetch work units from
/// other nodes").
SimulationResult SimulateSchedule(
    const std::vector<std::vector<size_t>>& placement,
    const std::vector<double>& durations, int num_workers) {
  SimulationResult result;
  result.executed.assign(static_cast<size_t>(num_workers), 0);
  std::vector<std::deque<size_t>> queues(static_cast<size_t>(num_workers));
  size_t remaining = 0;
  for (int w = 0; w < num_workers; ++w) {
    for (size_t unit : placement[static_cast<size_t>(w)]) {
      queues[static_cast<size_t>(w)].push_back(unit);
      ++remaining;
    }
  }

  std::vector<double> clock(static_cast<size_t>(num_workers), 0.0);
  using Event = std::pair<double, int>;  // (time ready, worker)
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> ready;
  for (int w = 0; w < num_workers; ++w) ready.emplace(0.0, w);

  while (remaining > 0 && !ready.empty()) {
    auto [now, worker] = ready.top();
    ready.pop();
    auto& queue = queues[static_cast<size_t>(worker)];
    if (queue.empty()) {
      // Steal from the worker with the most queued units.
      int victim = -1;
      size_t best = 0;
      for (int w = 0; w < num_workers; ++w) {
        if (w == worker) continue;
        if (queues[static_cast<size_t>(w)].size() > best) {
          best = queues[static_cast<size_t>(w)].size();
          victim = w;
        }
      }
      if (victim < 0) continue;  // nothing left anywhere
      queue.push_back(queues[static_cast<size_t>(victim)].back());
      queues[static_cast<size_t>(victim)].pop_back();
      ++result.stolen;
    }
    size_t unit = queue.front();
    queue.pop_front();
    double finish = now + durations[unit];
    clock[static_cast<size_t>(worker)] = finish;
    result.executed[static_cast<size_t>(worker)]++;
    --remaining;
    ready.emplace(finish, worker);
  }
  result.makespan = clock.empty()
                        ? 0.0
                        : *std::max_element(clock.begin(), clock.end());
  return result;
}

/// Per-thread CPU time. Unit durations must exclude time the thread spends
/// descheduled: with more workers than cores, wall-clock per unit inflates
/// by the oversubscription factor, which would corrupt serial_seconds and
/// the modeled makespan.
double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
  }
#endif
  return -1.0;
}

/// One worker's deque, guarded by its own mutex. Owners pop the front;
/// thieves pop the back, so a steal and a local pop only collide on the
/// victim's lock, never on the same end of a one-element queue unguarded.
/// The capability annotation makes the discipline compile-time: any access
/// to `queue` without holding `mu` — including the single-threaded seeding
/// before the workers start — fails the Clang thread-safety build.
struct WorkerQueue {
  common::Mutex mu;
  std::deque<size_t> queue ROCK_GUARDED_BY(mu);
};

}  // namespace

ScheduleReport WorkerPool::ExecuteThreads(const std::vector<WorkUnit>& units,
                                          const UnitBody& body) {
  ScheduleReport report;
  report.num_workers = num_workers_;
  report.mode = ExecutionMode::kThreads;
  report.initial_units.assign(static_cast<size_t>(num_workers_), 0);
  report.executed_units.assign(static_cast<size_t>(num_workers_), 0);

  std::vector<std::vector<size_t>> placement = PlaceUnits(units);
  std::vector<WorkerQueue> queues(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    auto& q = queues[static_cast<size_t>(w)];
    common::MutexLock lock(q.mu);  // uncontended: workers not started yet
    q.queue.assign(placement[static_cast<size_t>(w)].begin(),
                   placement[static_cast<size_t>(w)].end());
    report.initial_units[static_cast<size_t>(w)] =
        static_cast<int>(q.queue.size());
  }

  // Written concurrently, but each slot exactly once (a unit runs once, a
  // worker owns its own counters) — no synchronization beyond the joins.
  std::vector<double> durations(units.size(), 0.0);
  std::vector<int> executed(static_cast<size_t>(num_workers_), 0);
  std::vector<int> stolen(static_cast<size_t>(num_workers_), 0);
  std::vector<double> busy(static_cast<size_t>(num_workers_), 0.0);

  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.queue_depth->Add(static_cast<int64_t>(units.size()));

  auto worker_main = [&](int me) {
    auto& own = queues[static_cast<size_t>(me)];
    while (true) {
      size_t unit = 0;
      bool have_unit = false;
      {
        common::MutexLock lock(own.mu);
        if (!own.queue.empty()) {
          unit = own.queue.front();
          own.queue.pop_front();
          have_unit = true;
        }
      }
      if (!have_unit) {
        // Steal from the most loaded peer. Sizes are sampled under each
        // peer's lock; the re-check under the victim's lock keeps the pop
        // correct when the queue drained in between.
        int victim = -1;
        size_t best = 0;
        for (int w = 0; w < num_workers_; ++w) {
          if (w == me) continue;
          common::MutexLock lock(queues[static_cast<size_t>(w)].mu);
          size_t size = queues[static_cast<size_t>(w)].queue.size();
          if (size > best) {
            best = size;
            victim = w;
          }
        }
        if (victim < 0) {
          // Every queue is empty. Units never spawn new units, so no work
          // can reappear: the worker is done.
          return;
        }
        auto& vq = queues[static_cast<size_t>(victim)];
        {
          common::MutexLock lock(vq.mu);
          if (vq.queue.empty()) continue;  // lost the race; rescan
          unit = vq.queue.back();
          vq.queue.pop_back();
        }
        stolen[static_cast<size_t>(me)]++;
        metrics.units_stolen->Add(1);
      }
      Timer timer;
      double cpu_start = ThreadCpuSeconds();
      body(units[unit], unit, me);
      double cpu_end = ThreadCpuSeconds();
      durations[unit] = (cpu_start >= 0.0 && cpu_end >= 0.0)
                            ? cpu_end - cpu_start
                            : timer.ElapsedSeconds();
      executed[static_cast<size_t>(me)]++;
      busy[static_cast<size_t>(me)] += durations[unit];
      metrics.units_executed->Add(1);
      metrics.unit_seconds->Observe(durations[unit]);
      metrics.queue_depth->Add(-1);
    }
  };

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    threads.emplace_back(worker_main, w);
  }
  for (std::thread& t : threads) t.join();
  report.wall_seconds = wall.ElapsedSeconds();

  for (int w = 0; w < num_workers_; ++w) {
    report.executed_units[static_cast<size_t>(w)] =
        executed[static_cast<size_t>(w)];
    report.stolen_units += stolen[static_cast<size_t>(w)];
    metrics.busy_micros->Add(Micros(busy[static_cast<size_t>(w)]));
    metrics.idle_micros->Add(
        Micros(report.wall_seconds - busy[static_cast<size_t>(w)]));
  }
  for (double d : durations) report.serial_seconds += d;

  // The modeled makespan from the same durations, so benches can compare
  // the simulation against the measured wall-clock.
  SimulationResult sim = SimulateSchedule(placement, durations, num_workers_);
  report.makespan_seconds =
      sim.makespan > 0.0 ? sim.makespan : report.serial_seconds;
  return report;
}

ScheduleReport WorkerPool::ExecuteSimulated(
    const std::vector<WorkUnit>& units, const UnitBody& body) {
  ScheduleReport report;
  report.num_workers = num_workers_;
  report.mode = ExecutionMode::kSimulated;
  report.initial_units.assign(static_cast<size_t>(num_workers_), 0);
  report.executed_units.assign(static_cast<size_t>(num_workers_), 0);

  std::vector<std::vector<size_t>> placement = PlaceUnits(units);
  for (int w = 0; w < num_workers_; ++w) {
    report.initial_units[static_cast<size_t>(w)] =
        static_cast<int>(placement[static_cast<size_t>(w)].size());
  }
  // Owner of each unit, so the body sees a stable worker id even though
  // everything runs on the caller's thread.
  std::vector<int> owner(units.size(), 0);
  for (int w = 0; w < num_workers_; ++w) {
    for (size_t unit : placement[static_cast<size_t>(w)]) owner[unit] = w;
  }

  // Run every unit serially in unit order, measuring durations.
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.queue_depth->Add(static_cast<int64_t>(units.size()));
  Timer wall;
  std::vector<double> durations(units.size(), 0.0);
  for (size_t i = 0; i < units.size(); ++i) {
    Timer timer;
    body(units[i], i, owner[i]);
    durations[i] = timer.ElapsedSeconds();
    report.serial_seconds += durations[i];
    metrics.units_executed->Add(1);
    metrics.unit_seconds->Observe(durations[i]);
    metrics.queue_depth->Add(-1);
  }
  report.wall_seconds = wall.ElapsedSeconds();
  metrics.busy_micros->Add(Micros(report.serial_seconds));

  SimulationResult sim = SimulateSchedule(placement, durations, num_workers_);
  report.executed_units = sim.executed;
  report.stolen_units = sim.stolen;
  metrics.units_stolen->Add(static_cast<uint64_t>(sim.stolen));
  report.makespan_seconds =
      sim.makespan > 0.0 ? sim.makespan : report.serial_seconds;
  return report;
}

ScheduleReport WorkerPool::Execute(const std::vector<WorkUnit>& units,
                                   const UnitBody& body) {
  ROCK_OBS_SPAN("par.execute");
  if (mode_ == ExecutionMode::kThreads) {
    return ExecuteThreads(units, body);
  }
  return ExecuteSimulated(units, body);
}

ScheduleReport WorkerPool::Execute(
    const std::vector<WorkUnit>& units,
    const std::function<void(const WorkUnit&)>& body) {
  return Execute(units,
                 [&body](const WorkUnit& unit, size_t, int) { body(unit); });
}

}  // namespace rock::par
