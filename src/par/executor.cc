#include "src/par/executor.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "src/common/logging.h"
#include "src/common/timer.h"

namespace rock::par {

std::string WorkUnit::PlacementKey() const {
  std::string key = "u" + std::to_string(rule_index);
  for (const Range& r : ranges) {
    key += ":" + std::to_string(r.rel) + "." + std::to_string(r.begin);
  }
  return key;
}

double CostModel::Estimate(const WorkUnit& unit, int join_attr) const {
  double cost = 1.0;
  for (const WorkUnit::Range& r : unit.ranges) {
    cost *= std::max(1, r.end - r.begin);
  }
  if (join_attr >= 0 && unit.ranges.size() >= 2) {
    const ColumnStats& stats =
        stats_->Get(unit.ranges[1].rel, join_attr);
    if (stats.num_distinct > 0) {
      // Equality join selectivity ~ 1 / distinct values.
      cost /= static_cast<double>(stats.num_distinct);
    }
  }
  return std::max(cost, 1.0);
}

std::vector<WorkUnit> BuildHyperCubeUnits(const Database& db, int rule_index,
                                          const std::vector<int>& tuple_vars,
                                          int block_rows) {
  std::vector<WorkUnit> units;
  // Block boundaries per variable.
  std::vector<std::vector<std::pair<int, int>>> blocks(tuple_vars.size());
  for (size_t var = 0; var < tuple_vars.size(); ++var) {
    int size = static_cast<int>(db.relation(tuple_vars[var]).size());
    for (int begin = 0; begin < size; begin += block_rows) {
      blocks[var].emplace_back(begin, std::min(begin + block_rows, size));
    }
    if (blocks[var].empty()) blocks[var].emplace_back(0, 0);
  }
  // Cross product of block choices (the HyperCube grid).
  std::vector<size_t> choice(tuple_vars.size(), 0);
  while (true) {
    WorkUnit unit;
    unit.rule_index = rule_index;
    for (size_t var = 0; var < tuple_vars.size(); ++var) {
      auto [begin, end] = blocks[var][choice[var]];
      unit.ranges.push_back({tuple_vars[var], begin, end});
    }
    units.push_back(std::move(unit));
    // Advance the odometer.
    size_t var = 0;
    while (var < choice.size()) {
      if (++choice[var] < blocks[var].size()) break;
      choice[var] = 0;
      ++var;
    }
    if (var == choice.size()) break;
  }
  return units;
}

WorkerPool::WorkerPool(int num_workers) : num_workers_(num_workers) {
  for (int w = 0; w < num_workers; ++w) {
    Status s = ring_.AddNode("worker-" + std::to_string(w));
    ROCK_CHECK(s.ok());
  }
}

ScheduleReport WorkerPool::Execute(
    const std::vector<WorkUnit>& units,
    const std::function<void(const WorkUnit&)>& body) {
  ScheduleReport report;
  report.num_workers = num_workers_;
  report.initial_units.assign(static_cast<size_t>(num_workers_), 0);
  report.executed_units.assign(static_cast<size_t>(num_workers_), 0);

  // 1. Run every unit (real work), measuring durations.
  std::vector<double> durations(units.size(), 0.0);
  for (size_t i = 0; i < units.size(); ++i) {
    Timer timer;
    body(units[i]);
    durations[i] = timer.ElapsedSeconds();
    report.serial_seconds += durations[i];
  }

  // 2. Placement: each unit goes to its ring owner.
  std::vector<std::deque<size_t>> queues(static_cast<size_t>(num_workers_));
  for (size_t i = 0; i < units.size(); ++i) {
    auto owner = ring_.Locate(units[i].PlacementKey());
    int worker = 0;
    if (owner.ok()) {
      worker = std::stoi(owner->substr(owner->find('-') + 1));
    }
    queues[static_cast<size_t>(worker)].push_back(i);
    report.initial_units[static_cast<size_t>(worker)]++;
  }

  // 3. Event-driven schedule simulation with work stealing: when a worker's
  // queue drains it steals the tail of the longest remaining queue
  // (paper §5.2: "when a node finishes its assigned work units, it evokes
  // the work manager to fetch work units from other nodes").
  std::vector<double> clock(static_cast<size_t>(num_workers_), 0.0);
  using Event = std::pair<double, int>;  // (time ready, worker)
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> ready;
  for (int w = 0; w < num_workers_; ++w) ready.emplace(0.0, w);

  size_t remaining = units.size();
  while (remaining > 0 && !ready.empty()) {
    auto [now, worker] = ready.top();
    ready.pop();
    auto& queue = queues[static_cast<size_t>(worker)];
    if (queue.empty()) {
      // Steal from the worker with the most queued units.
      int victim = -1;
      size_t best = 0;
      for (int w = 0; w < num_workers_; ++w) {
        if (w == worker) continue;
        if (queues[static_cast<size_t>(w)].size() > best) {
          best = queues[static_cast<size_t>(w)].size();
          victim = w;
        }
      }
      if (victim < 0) continue;  // nothing left anywhere
      queue.push_back(queues[static_cast<size_t>(victim)].back());
      queues[static_cast<size_t>(victim)].pop_back();
      ++report.stolen_units;
    }
    size_t unit = queue.front();
    queue.pop_front();
    double finish = now + durations[unit];
    clock[static_cast<size_t>(worker)] = finish;
    report.executed_units[static_cast<size_t>(worker)]++;
    --remaining;
    ready.emplace(finish, worker);
  }
  report.makespan_seconds =
      *std::max_element(clock.begin(), clock.end());
  if (report.makespan_seconds <= 0.0) {
    report.makespan_seconds = report.serial_seconds;
  }
  return report;
}

}  // namespace rock::par
