#include "src/par/executor.h"

#include <ctime>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <queue>
#include <thread>

#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/common/timer.h"
#include "src/obs/exporters.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"

namespace rock::par {
namespace {

/// Pool metrics, registered once and cached (see obs::MetricsRegistry).
struct PoolMetrics {
  obs::Counter* units_executed;
  obs::Counter* units_stolen;
  obs::Counter* busy_micros;
  obs::Counter* idle_micros;
  obs::Counter* wait_micros;
  obs::Gauge* queue_depth;
  obs::Histogram* unit_seconds;
  obs::Histogram* unit_wait_seconds;
  // Fault injection & recovery (DESIGN.md "Fault injection & recovery").
  obs::Counter* faults_injected;
  obs::Counter* unit_retries;
  obs::Counter* backoff_micros;
  obs::Counter* worker_deaths;
  obs::Counter* crashes_suppressed;
  obs::Counter* steals_on_death;
  obs::Counter* units_reassigned;
  /// Outstanding units the pool gave up on; settled back to zero by
  /// WorkerPool::ReplayUnrecovered (the checkpoint-recovery layers).
  obs::Gauge* unrecovered_units;

  static const PoolMetrics& Get() {
    static PoolMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      PoolMetrics out;
      out.units_executed = reg.GetCounter("rock_par_units_executed_total");
      out.units_stolen = reg.GetCounter("rock_par_units_stolen_total");
      out.busy_micros = reg.GetCounter("rock_par_worker_busy_micros_total");
      out.idle_micros = reg.GetCounter("rock_par_worker_idle_micros_total");
      out.wait_micros = reg.GetCounter("rock_par_unit_wait_micros_total");
      out.queue_depth = reg.GetGauge("rock_par_queue_depth");
      out.unit_seconds = reg.GetHistogram("rock_par_unit_seconds",
                                          obs::LatencyBucketsSeconds());
      out.unit_wait_seconds = reg.GetHistogram(
          "rock_par_unit_wait_seconds", obs::LatencyBucketsSeconds());
      out.faults_injected = reg.GetCounter("rock_par_faults_injected_total");
      out.unit_retries = reg.GetCounter("rock_par_unit_retries_total");
      out.backoff_micros = reg.GetCounter("rock_par_backoff_micros_total");
      out.worker_deaths = reg.GetCounter("rock_par_worker_deaths_total");
      out.crashes_suppressed =
          reg.GetCounter("rock_par_crashes_suppressed_total");
      out.steals_on_death = reg.GetCounter("rock_par_steals_on_death_total");
      out.units_reassigned =
          reg.GetCounter("rock_par_units_reassigned_total");
      out.unrecovered_units = reg.GetGauge("rock_faults_unrecovered_units");
      reg.SetHelp("rock_par_units_executed_total",
                  "Work units executed by the pool (all Execute calls)");
      reg.SetHelp("rock_par_units_stolen_total",
                  "Work units taken from a peer's deque");
      reg.SetHelp("rock_par_queue_depth",
                  "Work units enqueued but not yet finished");
      reg.SetHelp("rock_par_unit_seconds",
                  "Per-unit execution latency (CPU seconds when available)");
      reg.SetHelp("rock_par_unit_wait_micros_total",
                  "Total submit-to-dequeue queue wait across units");
      reg.SetHelp("rock_par_unit_wait_seconds",
                  "Per-unit submit-to-dequeue queue wait");
      reg.SetHelp("rock_faults_unrecovered_units",
                  "Abandoned units awaiting replay; 0 after recovery");
      return out;
    }();
    return m;
  }
};

uint64_t Micros(double seconds) {
  return seconds > 0 ? static_cast<uint64_t>(seconds * 1e6) : 0;
}

/// Publishes one Execute call's fault accounting into the registry.
void ExportFaultMetrics(const FaultReport& faults) {
  const PoolMetrics& m = PoolMetrics::Get();
  if (faults.injected > 0) {
    m.faults_injected->Add(static_cast<uint64_t>(faults.injected));
  }
  if (faults.retries > 0) {
    m.unit_retries->Add(static_cast<uint64_t>(faults.retries));
  }
  if (faults.backoff_seconds > 0) {
    m.backoff_micros->Add(Micros(faults.backoff_seconds));
  }
  if (faults.worker_deaths > 0) {
    m.worker_deaths->Add(static_cast<uint64_t>(faults.worker_deaths));
  }
  if (faults.crashes_suppressed > 0) {
    m.crashes_suppressed->Add(
        static_cast<uint64_t>(faults.crashes_suppressed));
  }
  if (faults.steals_on_death > 0) {
    m.steals_on_death->Add(static_cast<uint64_t>(faults.steals_on_death));
  }
  if (faults.units_reassigned > 0) {
    m.units_reassigned->Add(static_cast<uint64_t>(faults.units_reassigned));
  }
  if (!faults.unrecovered_units.empty()) {
    m.unrecovered_units->Add(
        static_cast<int64_t>(faults.unrecovered_units.size()));
  }
}

/// Worker index from a ring node name ("worker-<id>").
int WorkerIdOf(const std::string& node) {
  return std::stoi(node.substr(node.find('-') + 1));
}

/// Hands one Execute call's per-worker wait-vs-run attribution to the
/// global collector /telemetry.json reports from.
void PublishBreakdown(const ScheduleReport& report) {
  static std::atomic<uint64_t> seq{0};
  obs::WorkerBreakdown breakdown;
  breakdown.mode = ExecutionModeName(report.mode);
  breakdown.workers = report.num_workers;
  breakdown.wall_seconds = report.wall_seconds;
  breakdown.label = breakdown.mode + "-" +
                    std::to_string(report.num_workers) + "#" +
                    std::to_string(
                        seq.fetch_add(1, std::memory_order_relaxed) + 1);
  breakdown.busy_seconds = report.busy_seconds;
  breakdown.wait_seconds = report.wait_seconds;
  breakdown.idle_seconds = report.idle_seconds;
  obs::ScheduleBreakdowns::Global().Add(std::move(breakdown));
}

}  // namespace

std::string WorkUnit::PlacementKey() const {
  std::string key = "u" + std::to_string(rule_index);
  for (const Range& r : ranges) {
    key += ":" + std::to_string(r.rel) + "." + std::to_string(r.begin);
  }
  return key;
}

double CostModel::Estimate(const WorkUnit& unit, int join_attr) const {
  double cost = 1.0;
  for (const WorkUnit::Range& r : unit.ranges) {
    cost *= std::max(1, r.end - r.begin);
  }
  if (join_attr >= 0 && unit.ranges.size() >= 2) {
    const ColumnStats& stats =
        stats_->Get(unit.ranges[1].rel, join_attr);
    if (stats.num_distinct > 0) {
      // Equality join selectivity ~ 1 / distinct values.
      cost /= static_cast<double>(stats.num_distinct);
    }
  }
  return std::max(cost, 1.0);
}

std::vector<WorkUnit> BuildHyperCubeUnits(const Database& db, int rule_index,
                                          const std::vector<int>& tuple_vars,
                                          int block_rows) {
  std::vector<WorkUnit> units;
  // Block boundaries per variable.
  std::vector<std::vector<std::pair<int, int>>> blocks(tuple_vars.size());
  for (size_t var = 0; var < tuple_vars.size(); ++var) {
    int size = static_cast<int>(db.relation(tuple_vars[var]).size());
    for (int begin = 0; begin < size; begin += block_rows) {
      blocks[var].emplace_back(begin, std::min(begin + block_rows, size));
    }
    if (blocks[var].empty()) blocks[var].emplace_back(0, 0);
  }
  // Cross product of block choices (the HyperCube grid).
  std::vector<size_t> choice(tuple_vars.size(), 0);
  while (true) {
    WorkUnit unit;
    unit.rule_index = rule_index;
    for (size_t var = 0; var < tuple_vars.size(); ++var) {
      auto [begin, end] = blocks[var][choice[var]];
      unit.ranges.push_back({tuple_vars[var], begin, end});
    }
    units.push_back(std::move(unit));
    // Advance the odometer.
    size_t var = 0;
    while (var < choice.size()) {
      if (++choice[var] < blocks[var].size()) break;
      choice[var] = 0;
      ++var;
    }
    if (var == choice.size()) break;
  }
  return units;
}

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kThreads:
      return "threads";
    case ExecutionMode::kSimulated:
      return "simulated";
  }
  return "?";
}

WorkerPool::WorkerPool(int num_workers, ExecutionMode mode,
                       PoolOptions options)
    : num_workers_(std::max(1, num_workers)),
      mode_(mode),
      options_(options) {
  ROCK_CHECK(options_.retry.max_attempts >= 1);
  for (int w = 0; w < num_workers_; ++w) {
    Status s = ring_.AddNode("worker-" + std::to_string(w));
    ROCK_CHECK(s.ok());
  }
}

int WorkerPool::LocateLiveWorker(const WorkUnit& unit,
                                 const std::vector<char>& alive) const {
  ROCK_CHECK(std::find(alive.begin(), alive.end(), 1) != alive.end())
      << "no live worker to place " << unit.PlacementKey();
  const std::string key = unit.PlacementKey();
  for (int salt = 0;; ++salt) {
    // Salted probing keeps the re-placement a pure function of the ring and
    // the alive set — identical across runs and execution modes.
    auto owner =
        ring_.Locate(salt == 0 ? key : key + "#" + std::to_string(salt));
    int worker = owner.ok() ? WorkerIdOf(*owner) : 0;
    if (alive[static_cast<size_t>(worker)]) return worker;
  }
}

std::vector<std::vector<size_t>> WorkerPool::PlaceUnits(
    const std::vector<WorkUnit>& units) const {
  std::vector<std::vector<size_t>> queues(
      static_cast<size_t>(num_workers_));
  for (size_t i = 0; i < units.size(); ++i) {
    auto owner = ring_.Locate(units[i].PlacementKey());
    int worker = 0;
    if (owner.ok()) {
      worker = std::stoi(owner->substr(owner->find('-') + 1));
    }
    queues[static_cast<size_t>(worker)].push_back(i);
  }
  return queues;
}

namespace {

struct SimulationResult {
  double makespan = 0.0;
  std::vector<int> executed;
  /// Virtual-time per-worker attribution: busy sums service time, wait
  /// sums each acquired unit's submit→dequeue queue wait.
  std::vector<double> busy;
  std::vector<double> wait;
  int stolen = 0;
  FaultReport faults;
};

/// Deterministic re-placement rule used when a (virtual or real) worker
/// dies; implemented by WorkerPool::LocateLiveWorker.
using RelocateFn = std::function<int(size_t unit, const std::vector<char>&)>;

/// Event-driven replay of the placement + work-stealing schedule from
/// per-unit durations: when a worker's queue drains it steals the tail of
/// the longest remaining queue (paper §5.2: "when a node finishes its
/// assigned work units, it evokes the work manager to fetch work units from
/// other nodes").
///
/// With a FaultPlan, the same fault pipeline as ExecuteThreads runs in
/// virtual time: a crash kills the acquiring virtual worker and drains its
/// queue via `relocate`, a straggler stretches the executing attempt, and a
/// transient failure costs one backoff and a requeue (or exhausts the
/// attempt budget). Because faults are keyed by (unit, attempt number),
/// never by time, the resulting FaultReport matches the threaded run.
SimulationResult SimulateSchedule(
    const std::vector<std::vector<size_t>>& placement,
    const std::vector<double>& durations, int num_workers,
    const FaultPlan* plan, const RetryPolicy& retry,
    const RelocateFn& relocate) {
  SimulationResult result;
  result.executed.assign(static_cast<size_t>(num_workers), 0);
  result.busy.assign(static_cast<size_t>(num_workers), 0.0);
  result.wait.assign(static_cast<size_t>(num_workers), 0.0);
  /// Virtual time each unit last became runnable: 0 at initial placement,
  /// updated when a retry or a death drain re-queues it.
  std::vector<double> submitted(durations.size(), 0.0);
  std::vector<std::deque<size_t>> queues(static_cast<size_t>(num_workers));
  size_t remaining = 0;
  for (int w = 0; w < num_workers; ++w) {
    for (size_t unit : placement[static_cast<size_t>(w)]) {
      queues[static_cast<size_t>(w)].push_back(unit);
      ++remaining;
    }
  }

  std::vector<int> attempts(durations.size(), 0);
  std::vector<char> alive(static_cast<size_t>(num_workers), 1);
  int live = num_workers;

  std::vector<double> clock(static_cast<size_t>(num_workers), 0.0);
  using Event = std::pair<double, int>;  // (time ready, worker)
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> ready;
  for (int w = 0; w < num_workers; ++w) ready.emplace(0.0, w);

  while (remaining > 0 && !ready.empty()) {
    auto [now, worker] = ready.top();
    ready.pop();
    if (!alive[static_cast<size_t>(worker)]) continue;
    auto& queue = queues[static_cast<size_t>(worker)];
    if (queue.empty()) {
      // Steal from the worker with the most queued units. Dead workers'
      // queues drained at death, so they are never chosen.
      int victim = -1;
      size_t best = 0;
      for (int w = 0; w < num_workers; ++w) {
        if (w == worker) continue;
        if (queues[static_cast<size_t>(w)].size() > best) {
          best = queues[static_cast<size_t>(w)].size();
          victim = w;
        }
      }
      if (victim < 0) continue;  // nothing left anywhere
      queue.push_back(queues[static_cast<size_t>(victim)].back());
      queues[static_cast<size_t>(victim)].pop_back();
      ++result.stolen;
    }
    size_t unit = queue.front();
    queue.pop_front();
    if (now > submitted[unit]) {
      result.wait[static_cast<size_t>(worker)] += now - submitted[unit];
    }
    double service = durations[unit];
    if (plan != nullptr) {
      int attempt = ++attempts[unit];
      auto crash = plan->crash_at_attempt.find(unit);
      if (crash != plan->crash_at_attempt.end() &&
          crash->second == attempt) {
        if (live > 1) {
          alive[static_cast<size_t>(worker)] = 0;
          --live;
          result.faults.injected++;
          result.faults.worker_deaths++;
          // The acquired unit and the remaining deque drain to survivors.
          std::vector<size_t> drained(queue.begin(), queue.end());
          queue.clear();
          queues[static_cast<size_t>(relocate(unit, alive))].push_back(unit);
          submitted[unit] = now;
          result.faults.units_reassigned++;
          for (size_t u : drained) {
            queues[static_cast<size_t>(relocate(u, alive))].push_back(u);
            submitted[u] = now;
            result.faults.units_reassigned++;
            result.faults.steals_on_death++;
          }
          continue;  // the dead worker schedules no further events
        }
        result.faults.crashes_suppressed++;
      }
      auto flaky = plan->transient_failures.find(unit);
      if (flaky != plan->transient_failures.end() &&
          attempt <= flaky->second) {
        result.faults.injected++;
        if (attempt >= retry.max_attempts) {
          // Budget exhausted: the unit is abandoned, never executed.
          result.faults.unrecovered_units.push_back(unit);
          --remaining;
          ready.emplace(now, worker);
          continue;
        }
        double backoff = retry.BackoffSeconds(attempt);
        result.faults.retries++;
        result.faults.backoff_seconds += backoff;
        queue.push_back(unit);
        // Runnable again once the worker's backoff expires: the deliberate
        // backoff sleep is not queue wait.
        submitted[unit] = now + backoff;
        clock[static_cast<size_t>(worker)] = now + backoff;
        ready.emplace(now + backoff, worker);
        continue;
      }
      auto delay = plan->delay_seconds.find(unit);
      if (delay != plan->delay_seconds.end()) {
        // Straggler: stalls the (unique) executing attempt.
        result.faults.injected++;
        service += delay->second;
      }
    }
    double finish = now + service;
    clock[static_cast<size_t>(worker)] = finish;
    result.executed[static_cast<size_t>(worker)]++;
    result.busy[static_cast<size_t>(worker)] += service;
    --remaining;
    ready.emplace(finish, worker);
  }
  std::sort(result.faults.unrecovered_units.begin(),
            result.faults.unrecovered_units.end());
  result.makespan = clock.empty()
                        ? 0.0
                        : *std::max_element(clock.begin(), clock.end());
  return result;
}

/// Per-thread CPU time. Unit durations must exclude time the thread spends
/// descheduled: with more workers than cores, wall-clock per unit inflates
/// by the oversubscription factor, which would corrupt serial_seconds and
/// the modeled makespan.
double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
  }
#endif
  return -1.0;
}

/// One worker's deque, guarded by its own mutex. Owners pop the front;
/// thieves pop the back, so a steal and a local pop only collide on the
/// victim's lock, never on the same end of a one-element queue unguarded.
/// The capability annotation makes the discipline compile-time: any access
/// to `queue` without holding `mu` — including the single-threaded seeding
/// before the workers start — fails the Clang thread-safety build.
///
/// `closed` flips (under `mu`, by the owner only) when the owner dies to an
/// injected crash: a closed queue accepts no pushes and yields no pops, so
/// a thief racing the death drain can never extract a unit the drain also
/// re-places. Owners and thieves alike must re-check it after acquiring the
/// lock — sampling a size and popping later spans two critical sections.
struct WorkerQueue {
  common::Mutex mu;
  std::deque<size_t> queue ROCK_GUARDED_BY(mu);
  bool closed ROCK_GUARDED_BY(mu) = false;
};

/// Cross-worker fault state. fault_mu orders death decisions and the
/// subsequent drain re-placement: a worker that holds it while re-placing
/// sees a frozen alive set (any other death blocks on the decision), so no
/// unit is ever pushed to a queue that closes concurrently.
/// Lock order: fault_mu before any WorkerQueue::mu; never the reverse.
struct FaultState {
  common::Mutex mu;
  std::vector<char> alive ROCK_GUARDED_BY(mu);
  int live ROCK_GUARDED_BY(mu) = 0;
  FaultReport faults ROCK_GUARDED_BY(mu);
};

}  // namespace

ScheduleReport WorkerPool::ExecuteThreads(const std::vector<WorkUnit>& units,
                                          const UnitBody& body) {
  ScheduleReport report;
  report.num_workers = num_workers_;
  report.mode = ExecutionMode::kThreads;
  report.initial_units.assign(static_cast<size_t>(num_workers_), 0);
  report.executed_units.assign(static_cast<size_t>(num_workers_), 0);

  std::vector<std::vector<size_t>> placement = PlaceUnits(units);
  std::vector<WorkerQueue> queues(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    auto& q = queues[static_cast<size_t>(w)];
    common::MutexLock lock(q.mu);  // uncontended: workers not started yet
    q.queue.assign(placement[static_cast<size_t>(w)].begin(),
                   placement[static_cast<size_t>(w)].end());
    report.initial_units[static_cast<size_t>(w)] =
        static_cast<int>(q.queue.size());
  }

  // Written concurrently, but each slot exactly once (a unit runs once, a
  // worker owns its own counters) — no synchronization beyond the joins.
  std::vector<double> durations(units.size(), 0.0);
  std::vector<int> executed(static_cast<size_t>(num_workers_), 0);
  std::vector<int> stolen(static_cast<size_t>(num_workers_), 0);
  std::vector<double> busy(static_cast<size_t>(num_workers_), 0.0);
  std::vector<double> wait(static_cast<size_t>(num_workers_), 0.0);
  // Submit stamp per unit (seconds on the execution's wall timer): 0 for
  // the initial placement, re-stamped when a retry or death drain
  // re-queues the unit. Atomic because the re-stamp (under the queue's
  // lock) and the dequeue read (under a possibly different queue's lock)
  // are not ordered by one mutex.
  std::vector<std::atomic<double>> submitted(units.size());

  const FaultPlan* plan = options_.fault_plan;
  const RetryPolicy& retry = options_.retry;
  FaultState fs;
  {
    common::MutexLock lock(fs.mu);  // uncontended: workers not started yet
    fs.alive.assign(static_cast<size_t>(num_workers_), 1);
    fs.live = num_workers_;
  }
  // Units finished (executed or declared unrecovered). With a plan, queues
  // can be transiently empty while a unit sits in a retry backoff or a
  // death drain, so "all queues empty" no longer implies "done" — workers
  // exit on this counter instead.
  std::atomic<size_t> completed{0};
  // 1-based acquisition counter per unit; faults key off this, never off
  // wall-clock or thread identity, which is what makes runs replayable.
  std::vector<std::atomic<int>> attempts(plan != nullptr ? units.size() : 0);
  for (auto& a : attempts) a.store(0, std::memory_order_relaxed);

  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.queue_depth->Add(static_cast<int64_t>(units.size()));

  // The open "par.execute" span on this (scheduling) thread; worker-side
  // unit spans carry it as their flow source, which is what lets the
  // Chrome trace exporter draw scheduler→worker arrows.
  const uint64_t submit_span = obs::CurrentSpanId();

  // Starts before the workers spawn: submit stamps and dequeue stamps
  // share this clock, so a unit's queue wait is a plain subtraction.
  Timer wall;

  auto worker_main = [&](int me) {
    obs::Tracer::Global().SetThisThreadName("worker-" + std::to_string(me));
    obs::ProfilerRegisterThisThread();
    auto& own = queues[static_cast<size_t>(me)];
    while (true) {
      if (plan != nullptr &&
          completed.load(std::memory_order_acquire) >= units.size()) {
        return;
      }
      size_t unit = 0;
      bool have_unit = false;
      {
        common::MutexLock lock(own.mu);
        if (!own.queue.empty()) {
          unit = own.queue.front();
          own.queue.pop_front();
          have_unit = true;
        }
      }
      if (!have_unit) {
        // Steal from the most loaded peer. Sizes are sampled under each
        // peer's lock; the re-check under the victim's lock keeps the pop
        // correct when the queue drained — or its owner died — in between.
        int victim = -1;
        size_t best = 0;
        for (int w = 0; w < num_workers_; ++w) {
          if (w == me) continue;
          common::MutexLock lock(queues[static_cast<size_t>(w)].mu);
          if (queues[static_cast<size_t>(w)].closed) continue;
          size_t size = queues[static_cast<size_t>(w)].queue.size();
          if (size > best) {
            best = size;
            victim = w;
          }
        }
        if (victim < 0) {
          if (plan == nullptr) {
            // Every queue is empty. Units never spawn new units, so no
            // work can reappear: the worker is done.
            return;
          }
          // Under a plan, work can reappear (retry requeue, death drain):
          // idle until the completion counter says everything finished.
          if (completed.load(std::memory_order_acquire) >= units.size()) {
            return;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          continue;
        }
        auto& vq = queues[static_cast<size_t>(victim)];
        {
          common::MutexLock lock(vq.mu);
          // Re-check under the lock: the sample above is stale, and a
          // victim picked as most-loaded may have drained — or died and
          // closed its queue — before this second acquisition.
          if (vq.closed || vq.queue.empty()) continue;
          unit = vq.queue.back();
          vq.queue.pop_back();
        }
        stolen[static_cast<size_t>(me)]++;
        metrics.units_stolen->Add(1);
      }
      // Dequeue stamp: how long the unit sat runnable before this worker
      // picked it up (wait attribution; run time is measured below).
      {
        double waited = wall.ElapsedSeconds() -
                        submitted[unit].load(std::memory_order_relaxed);
        if (waited < 0.0) waited = 0.0;
        wait[static_cast<size_t>(me)] += waited;
        metrics.unit_wait_seconds->Observe(waited);
        metrics.wait_micros->Add(Micros(waited));
      }
      if (plan != nullptr) {
        int attempt = attempts[unit].fetch_add(
                          1, std::memory_order_relaxed) + 1;
        auto crash = plan->crash_at_attempt.find(unit);
        if (crash != plan->crash_at_attempt.end() &&
            crash->second == attempt) {
          bool died = false;
          {
            common::MutexLock lock(fs.mu);
            if (fs.live > 1) {
              fs.alive[static_cast<size_t>(me)] = 0;
              --fs.live;
              fs.faults.injected++;
              fs.faults.worker_deaths++;
              died = true;
            } else {
              // Killing the last live worker would strand every remaining
              // unit; the crash is suppressed and the unit just runs.
              fs.faults.crashes_suppressed++;
            }
          }
          if (died) {
            // Graceful degradation: close the deque so thieves back off,
            // then drain it (plus the unit in hand) to survivors chosen by
            // salted ring placement. fault_mu freezes the alive set while
            // units are pushed, so no target can close concurrently.
            std::vector<size_t> drained;
            {
              common::MutexLock lock(own.mu);
              own.closed = true;
              drained.assign(own.queue.begin(), own.queue.end());
              own.queue.clear();
            }
            common::MutexLock flock(fs.mu);
            drained.insert(drained.begin(), unit);
            for (size_t u : drained) {
              int target = LocateLiveWorker(units[u], fs.alive);
              auto& tq = queues[static_cast<size_t>(target)];
              common::MutexLock lock(tq.mu);
              submitted[u].store(wall.ElapsedSeconds(),
                                 std::memory_order_relaxed);
              tq.queue.push_back(u);
              fs.faults.units_reassigned++;
              if (u != unit) fs.faults.steals_on_death++;
            }
            return;  // this worker is dead
          }
        }
        auto flaky = plan->transient_failures.find(unit);
        if (flaky != plan->transient_failures.end() &&
            attempt <= flaky->second) {
          if (attempt >= retry.max_attempts) {
            // Attempt budget exhausted: hand the unit to the caller's
            // recovery layer instead of looping forever.
            {
              common::MutexLock lock(fs.mu);
              fs.faults.injected++;
              fs.faults.unrecovered_units.push_back(unit);
            }
            metrics.queue_depth->Add(-1);
            completed.fetch_add(1, std::memory_order_release);
            continue;
          }
          double backoff = retry.BackoffSeconds(attempt);
          {
            common::MutexLock lock(fs.mu);
            fs.faults.injected++;
            fs.faults.retries++;
            fs.faults.backoff_seconds += backoff;
          }
          std::this_thread::sleep_for(
              std::chrono::duration<double>(backoff));
          common::MutexLock lock(own.mu);
          // Runnable again only now: the deliberate backoff sleep is not
          // queue wait.
          submitted[unit].store(wall.ElapsedSeconds(),
                                std::memory_order_relaxed);
          own.queue.push_back(unit);
          continue;
        }
        auto delay = plan->delay_seconds.find(unit);
        if (delay != plan->delay_seconds.end()) {
          // Straggler: stall the (unique) executing attempt. Injected
          // before the body so side effects still happen exactly once.
          {
            common::MutexLock lock(fs.mu);
            fs.faults.injected++;
          }
          std::this_thread::sleep_for(
              std::chrono::duration<double>(delay->second));
        }
      }
      Timer timer;
      double cpu_start = ThreadCpuSeconds();
      {
        ROCK_OBS_SPAN_FLOW("par.unit", submit_span);
        body(units[unit], unit, me);
      }
      double cpu_end = ThreadCpuSeconds();
      durations[unit] = (cpu_start >= 0.0 && cpu_end >= 0.0)
                            ? cpu_end - cpu_start
                            : timer.ElapsedSeconds();
      executed[static_cast<size_t>(me)]++;
      busy[static_cast<size_t>(me)] += durations[unit];
      metrics.units_executed->Add(1);
      metrics.unit_seconds->Observe(durations[unit]);
      metrics.queue_depth->Add(-1);
      completed.fetch_add(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    threads.emplace_back(worker_main, w);
  }
  for (std::thread& t : threads) t.join();
  report.wall_seconds = wall.ElapsedSeconds();

  report.busy_seconds.assign(static_cast<size_t>(num_workers_), 0.0);
  report.wait_seconds.assign(static_cast<size_t>(num_workers_), 0.0);
  report.idle_seconds.assign(static_cast<size_t>(num_workers_), 0.0);
  for (int w = 0; w < num_workers_; ++w) {
    report.executed_units[static_cast<size_t>(w)] =
        executed[static_cast<size_t>(w)];
    report.stolen_units += stolen[static_cast<size_t>(w)];
    report.busy_seconds[static_cast<size_t>(w)] =
        busy[static_cast<size_t>(w)];
    report.wait_seconds[static_cast<size_t>(w)] =
        wait[static_cast<size_t>(w)];
    // Clamped: per-thread CPU clocks can nominally exceed a short wall
    // interval, and a negative idle would poison downstream sums.
    double idle = ClampedIdleSeconds(report.wall_seconds,
                                     busy[static_cast<size_t>(w)]);
    report.idle_seconds[static_cast<size_t>(w)] = idle;
    metrics.busy_micros->Add(Micros(busy[static_cast<size_t>(w)]));
    metrics.idle_micros->Add(Micros(idle));
  }
  for (double d : durations) report.serial_seconds += d;

  {
    common::MutexLock lock(fs.mu);  // uncontended: workers joined
    report.faults = fs.faults;
  }
  std::sort(report.faults.unrecovered_units.begin(),
            report.faults.unrecovered_units.end());
  ExportFaultMetrics(report.faults);

  // The modeled makespan from the same durations, so benches can compare
  // the simulation against the measured wall-clock.
  SimulationResult sim = SimulateSchedule(
      placement, durations, num_workers_, plan, retry,
      [this, &units](size_t u, const std::vector<char>& alive) {
        return LocateLiveWorker(units[u], alive);
      });
  report.makespan_seconds =
      sim.makespan > 0.0 ? sim.makespan : report.serial_seconds;
  return report;
}

ScheduleReport WorkerPool::ExecuteSimulated(
    const std::vector<WorkUnit>& units, const UnitBody& body) {
  ScheduleReport report;
  report.num_workers = num_workers_;
  report.mode = ExecutionMode::kSimulated;
  report.initial_units.assign(static_cast<size_t>(num_workers_), 0);
  report.executed_units.assign(static_cast<size_t>(num_workers_), 0);

  std::vector<std::vector<size_t>> placement = PlaceUnits(units);
  for (int w = 0; w < num_workers_; ++w) {
    report.initial_units[static_cast<size_t>(w)] =
        static_cast<int>(placement[static_cast<size_t>(w)].size());
  }
  // Owner of each unit, so the body sees a stable worker id even though
  // everything runs on the caller's thread.
  std::vector<int> owner(units.size(), 0);
  for (int w = 0; w < num_workers_; ++w) {
    for (size_t unit : placement[static_cast<size_t>(w)]) owner[unit] = w;
  }

  // Run every recoverable unit serially in unit order, measuring
  // durations. Units whose attempt budget the plan exhausts are skipped —
  // exactly the units the threaded mode abandons — so both modes produce
  // identical side effects and identical unrecovered sets.
  const FaultPlan* plan = options_.fault_plan;
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.queue_depth->Add(static_cast<int64_t>(units.size()));
  const uint64_t submit_span = obs::CurrentSpanId();
  Timer wall;
  std::vector<double> durations(units.size(), 0.0);
  for (size_t i = 0; i < units.size(); ++i) {
    if (plan != nullptr && plan->Unrecoverable(i, options_.retry)) {
      metrics.queue_depth->Add(-1);
      continue;
    }
    Timer timer;
    {
      ROCK_OBS_SPAN_FLOW("par.unit", submit_span);
      body(units[i], i, owner[i]);
    }
    durations[i] = timer.ElapsedSeconds();
    report.serial_seconds += durations[i];
    metrics.units_executed->Add(1);
    metrics.unit_seconds->Observe(durations[i]);
    metrics.queue_depth->Add(-1);
  }
  report.wall_seconds = wall.ElapsedSeconds();
  metrics.busy_micros->Add(Micros(report.serial_seconds));

  SimulationResult sim = SimulateSchedule(
      placement, durations, num_workers_, plan, options_.retry,
      [this, &units](size_t u, const std::vector<char>& alive) {
        return LocateLiveWorker(units[u], alive);
      });
  report.executed_units = sim.executed;
  report.stolen_units = sim.stolen;
  report.faults = sim.faults;
  // Per-worker attribution comes from the virtual-time replay, like
  // executed_units: the whole point of kSimulated is a schedule shape
  // that is independent of the host's core count.
  report.busy_seconds = sim.busy;
  report.wait_seconds = sim.wait;
  report.idle_seconds.assign(static_cast<size_t>(num_workers_), 0.0);
  double horizon = sim.makespan > 0.0 ? sim.makespan : report.serial_seconds;
  for (int w = 0; w < num_workers_; ++w) {
    report.idle_seconds[static_cast<size_t>(w)] = ClampedIdleSeconds(
        horizon, report.busy_seconds[static_cast<size_t>(w)]);
    double waited = report.wait_seconds[static_cast<size_t>(w)];
    if (waited > 0.0) {
      metrics.wait_micros->Add(Micros(waited));
    }
  }
  metrics.units_stolen->Add(static_cast<uint64_t>(sim.stolen));
  ExportFaultMetrics(report.faults);
  report.makespan_seconds =
      sim.makespan > 0.0 ? sim.makespan : report.serial_seconds;
  return report;
}

size_t WorkerPool::ReplayUnrecovered(const std::vector<WorkUnit>& units,
                                     ScheduleReport* report,
                                     const UnitBody& body) {
  size_t replayed = 0;
  for (size_t unit : report->faults.unrecovered_units) {
    ROCK_CHECK(unit < units.size());
    body(units[unit], unit, /*worker=*/0);
    ++replayed;
  }
  if (replayed > 0) {
    // Settle the outstanding-unrecovered gauge: every abandoned unit has
    // now run, so a bench emitting after recovery reports zero.
    PoolMetrics::Get().unrecovered_units->Add(
        -static_cast<int64_t>(replayed));
    report->faults.unrecovered_units.clear();
  }
  return replayed;
}

ScheduleReport WorkerPool::Execute(const std::vector<WorkUnit>& units,
                                   const UnitBody& body) {
  ROCK_OBS_SPAN("par.execute");
  // Environment fallback (ROCK_FAULT_PLAN / ROCK_FAULT_SEED): lets CI's
  // fault-matrix and ad-hoc debugging inject schedules into any parallel
  // execution without touching call sites. An explicitly configured plan
  // always wins; the env plan is re-derived per Execute because it is
  // sized to this call's unit count.
  if (options_.fault_plan == nullptr) {
    env_plan_ = FaultPlan::FromEnv(units.size(), num_workers_);
    if (env_plan_.has_value()) {
      options_.fault_plan = &*env_plan_;
      ScheduleReport report = mode_ == ExecutionMode::kThreads
                                  ? ExecuteThreads(units, body)
                                  : ExecuteSimulated(units, body);
      options_.fault_plan = nullptr;
      PublishBreakdown(report);
      return report;
    }
  }
  ScheduleReport report = mode_ == ExecutionMode::kThreads
                              ? ExecuteThreads(units, body)
                              : ExecuteSimulated(units, body);
  PublishBreakdown(report);
  return report;
}

ScheduleReport WorkerPool::Execute(
    const std::vector<WorkUnit>& units,
    const std::function<void(const WorkUnit&)>& body) {
  return Execute(units,
                 [&body](const WorkUnit& unit, size_t, int) { body(unit); });
}

}  // namespace rock::par
