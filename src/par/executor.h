#ifndef ROCK_PAR_EXECUTOR_H_
#define ROCK_PAR_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/crystal/hash_ring.h"
#include "src/storage/stats.h"

namespace rock::par {

/// A work unit T = (φ, D_T) (paper §5.2): one rule against one data
/// partition. Partitions follow the HyperCube scheme of [41]: each tuple
/// variable's relation is cut into virtual blocks and a unit covers one
/// block combination.
struct WorkUnit {
  int rule_index = -1;
  /// Per tuple variable: (relation index, block begin row, block end row).
  struct Range {
    int rel = -1;
    int begin = 0;
    int end = 0;
  };
  std::vector<Range> ranges;
  /// Estimated cost from the cost model (used for placement accounting).
  double est_cost = 1.0;

  /// Placement key: units hash onto the ring by their block coordinates.
  std::string PlacementKey() const;
};

/// Cost estimation from Crystal's metadata (paper §5.2 (2)): a unit's cost
/// scales with the product of its block sizes, discounted by the
/// selectivity of its equality join (estimated from distinct counts).
class CostModel {
 public:
  explicit CostModel(const DatabaseStats* stats) : stats_(stats) {}

  /// Estimate for a unit whose rule joins on `join_attr` of the second
  /// variable's relation (-1 = no join restriction known).
  double Estimate(const WorkUnit& unit, int join_attr) const;

 private:
  const DatabaseStats* stats_;
};

/// Builds HyperCube work units for a rule shape: each variable's relation
/// is split into ceil(size / block_rows) blocks; one unit per combination.
std::vector<WorkUnit> BuildHyperCubeUnits(const Database& db, int rule_index,
                                          const std::vector<int>& tuple_vars,
                                          int block_rows);

/// Result of a (simulated-time) parallel execution.
struct ScheduleReport {
  int num_workers = 0;
  /// Sum of measured unit durations — the serial wall time.
  double serial_seconds = 0.0;
  /// Simulated parallel makespan under hash placement + work stealing.
  double makespan_seconds = 0.0;
  /// Units initially placed per worker (before stealing).
  std::vector<int> initial_units;
  /// Units actually executed per worker (after stealing).
  std::vector<int> executed_units;
  /// Units that moved between workers via stealing.
  int stolen_units = 0;

  double speedup() const {
    return makespan_seconds > 0 ? serial_seconds / makespan_seconds : 1.0;
  }
};

/// The worker pool (paper §5.2 (3)): a non-centralized set of workers under
/// consistent hashing; every unit is first placed on the ring by its
/// partition key, and idle workers steal queued units from the most loaded
/// peer. Units are executed serially on the caller's thread with measured
/// durations; the schedule (placement + stealing) is then simulated from
/// those durations, so speedup curves are reproducible on any host —
/// including single-core CI — while the placement/stealing logic is the
/// real algorithm.
class WorkerPool {
 public:
  explicit WorkerPool(int num_workers);

  /// Executes all units (serially, measuring each) and simulates the
  /// parallel schedule. `body` runs a unit's real work.
  ScheduleReport Execute(const std::vector<WorkUnit>& units,
                         const std::function<void(const WorkUnit&)>& body);

  int num_workers() const { return num_workers_; }

 private:
  int num_workers_;
  crystal::HashRing ring_;
};

}  // namespace rock::par

#endif  // ROCK_PAR_EXECUTOR_H_
