#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/crystal/hash_ring.h"
#include "src/par/fault.h"
#include "src/storage/stats.h"

namespace rock::par {

/// A work unit T = (φ, D_T) (paper §5.2): one rule against one data
/// partition. Partitions follow the HyperCube scheme of [41]: each tuple
/// variable's relation is cut into virtual blocks and a unit covers one
/// block combination.
struct WorkUnit {
  int rule_index = -1;
  /// Per tuple variable: (relation index, block begin row, block end row).
  struct Range {
    int rel = -1;
    int begin = 0;
    int end = 0;
  };
  std::vector<Range> ranges;
  /// Estimated cost from the cost model (used for placement accounting).
  double est_cost = 1.0;

  /// Placement key: units hash onto the ring by their block coordinates.
  std::string PlacementKey() const;
};

/// Cost estimation from Crystal's metadata (paper §5.2 (2)): a unit's cost
/// scales with the product of its block sizes, discounted by the
/// selectivity of its equality join (estimated from distinct counts).
class CostModel {
 public:
  explicit CostModel(const DatabaseStats* stats) : stats_(stats) {}

  /// Estimate for a unit whose rule joins on `join_attr` of the second
  /// variable's relation (-1 = no join restriction known).
  double Estimate(const WorkUnit& unit, int join_attr) const;

 private:
  const DatabaseStats* stats_;
};

/// Builds HyperCube work units for a rule shape: each variable's relation
/// is split into ceil(size / block_rows) blocks; one unit per combination.
std::vector<WorkUnit> BuildHyperCubeUnits(const Database& db, int rule_index,
                                          const std::vector<int>& tuple_vars,
                                          int block_rows);

/// How the pool runs unit bodies.
///  - kThreads: num_workers OS threads, each draining a mutex-guarded deque
///    seeded by hash-ring placement and stealing from the most loaded peer
///    when its own queue drains. This is the production path: detection and
///    correction get real multi-core speedup.
///  - kSimulated: every unit runs serially on the caller's thread with
///    measured durations, and the parallel schedule (placement + stealing)
///    is replayed event-driven from those durations. Deterministic and
///    hardware independent — speedup-*shape* benchmarks stay reproducible
///    on a 1-core CI runner.
enum class ExecutionMode { kThreads, kSimulated };

const char* ExecutionModeName(ExecutionMode mode);

/// Idle time of one worker over one execution: wall-clock minus busy time,
/// clamped at zero. The clamp matters for stragglers measured with
/// per-thread CPU clocks, where busy can nominally exceed a short wall
/// interval and the naive subtraction would go negative.
inline double ClampedIdleSeconds(double wall_seconds, double busy_seconds) {
  return wall_seconds > busy_seconds ? wall_seconds - busy_seconds : 0.0;
}

/// Result of a parallel execution. Both modes fill the simulated makespan
/// (replayed from per-unit measured durations); kThreads additionally
/// reports the measured wall-clock of the threaded region so benches can
/// compare the model against reality.
struct ScheduleReport {
  int num_workers = 0;
  ExecutionMode mode = ExecutionMode::kSimulated;
  /// Sum of measured unit durations — an estimate of the serial execution
  /// time. Under kThreads each duration is per-thread CPU time, so the sum
  /// stays faithful even when workers outnumber cores; under kSimulated it
  /// is the measured serial wall time.
  double serial_seconds = 0.0;
  /// Simulated parallel makespan under hash placement + work stealing.
  double makespan_seconds = 0.0;
  /// Measured wall-clock of the execution. Under kThreads this is the real
  /// elapsed time of the worker threads; under kSimulated it equals the
  /// serial execution time (units run on one thread).
  double wall_seconds = 0.0;
  /// Units initially placed per worker (before stealing).
  std::vector<int> initial_units;
  /// Units actually executed per worker (after stealing).
  std::vector<int> executed_units;
  /// Units that moved between workers via stealing (real transfers under
  /// kThreads, simulated transfers under kSimulated).
  int stolen_units = 0;
  /// Per-worker wait-vs-run attribution. busy_seconds[w] is the time
  /// worker w spent executing unit bodies; wait_seconds[w] sums the
  /// submit→dequeue queue wait of every unit w executed (how long its
  /// units sat enqueued before w picked them up); idle_seconds[w] is the
  /// remainder of the execution wall-clock the worker spent neither
  /// executing nor acquiring work, clamped at zero (per-thread CPU clocks
  /// can nominally exceed a short wall interval). Under kThreads these are
  /// measured; under kSimulated they come from the virtual-time replay.
  std::vector<double> busy_seconds;
  std::vector<double> wait_seconds;
  std::vector<double> idle_seconds;
  /// Fault-injection and recovery accounting (all zero without a plan).
  FaultReport faults;

  /// Simulated speedup (serial time over modeled makespan).
  double speedup() const {
    return makespan_seconds > 0 ? serial_seconds / makespan_seconds : 1.0;
  }
  /// Measured speedup (serial time over observed wall-clock).
  double measured_speedup() const {
    return wall_seconds > 0 ? serial_seconds / wall_seconds : 1.0;
  }
};

/// Pool-level execution knobs: retry discipline and an optional
/// deterministic fault schedule (see src/par/fault.h).
struct PoolOptions {
  RetryPolicy retry;
  /// Injected fault schedule, keyed by unit index + attempt so runs replay
  /// bit-identically. Not owned; nullptr disables injection entirely.
  const FaultPlan* fault_plan = nullptr;
};

/// The worker pool (paper §5.2 (3)): a non-centralized set of workers under
/// consistent hashing; every unit is first placed on the ring by its
/// partition key, and idle workers steal queued units from the most loaded
/// peer.
///
/// Fault tolerance (paper §6 "21-node cluster" deployment conditions,
/// DESIGN.md "Fault injection & recovery"): when a PoolOptions::fault_plan
/// is injected, units that fail transiently are retried with capped
/// exponential backoff under a per-unit attempt budget, a crashed worker's
/// deque drains to surviving peers via the hash ring, and units whose
/// budget is exhausted are reported (never silently dropped) for the
/// caller's checkpoint-recovery layer to replay.
///
/// Thread contract for kThreads: the body runs concurrently on
/// `num_workers` threads. Each unit is executed exactly once; bodies must
/// not share mutable state except through `unit_index` (write only to your
/// own unit's slot) or `worker` (write only to your own worker's scratch,
/// 0 <= worker < num_workers). Call sites merge per-unit results in unit
/// order after Execute returns, which makes results independent of the
/// worker count and of steal timing.
class WorkerPool {
 public:
  /// Bodies receive the unit, its index in `units`, and the id of the
  /// worker executing it.
  using UnitBody =
      std::function<void(const WorkUnit&, size_t unit_index, int worker)>;

  explicit WorkerPool(int num_workers,
                      ExecutionMode mode = ExecutionMode::kThreads,
                      PoolOptions options = PoolOptions());

  /// Executes all units under the selected mode and returns the schedule
  /// accounting.
  ScheduleReport Execute(const std::vector<WorkUnit>& units,
                         const UnitBody& body);

  /// Convenience overload for bodies that do not need the index/worker.
  ScheduleReport Execute(const std::vector<WorkUnit>& units,
                         const std::function<void(const WorkUnit&)>& body);

  /// Recovery hook for checkpoint layers: runs `body` serially (worker 0)
  /// for every unit `report` lists as unrecovered, clears the list, and
  /// settles the rock_par_unrecovered_units gauge. Returns the number of
  /// replayed units. Call sites that merge per-unit buffers in unit order
  /// therefore produce output identical to the fault-free run.
  static size_t ReplayUnrecovered(const std::vector<WorkUnit>& units,
                                  ScheduleReport* report,
                                  const UnitBody& body);

  int num_workers() const { return num_workers_; }
  ExecutionMode mode() const { return mode_; }
  const PoolOptions& options() const { return options_; }

 private:
  int num_workers_;
  ExecutionMode mode_;
  PoolOptions options_;
  /// Owns the plan parsed from ROCK_FAULT_PLAN / ROCK_FAULT_SEED when no
  /// explicit plan was configured (options_.fault_plan points into it for
  /// the duration of one Execute call).
  std::optional<FaultPlan> env_plan_;
  crystal::HashRing ring_;

  /// Hash-ring placement: queue of unit indices per worker.
  std::vector<std::vector<size_t>> PlaceUnits(
      const std::vector<WorkUnit>& units) const;

  /// Ring placement restricted to live workers: the unit's key is probed
  /// with increasing salts until it lands on a worker `alive[w]` — the
  /// deterministic re-placement rule for draining a dead worker's deque.
  int LocateLiveWorker(const WorkUnit& unit,
                       const std::vector<char>& alive) const;

  ScheduleReport ExecuteThreads(const std::vector<WorkUnit>& units,
                                const UnitBody& body);
  ScheduleReport ExecuteSimulated(const std::vector<WorkUnit>& units,
                                  const UnitBody& body);
};

}  // namespace rock::par

