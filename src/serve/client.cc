#include "src/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

namespace rock::serve {
namespace {

Status SendAllOrError(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Internal(std::string("send(): ") +
                              (n == 0 ? "connection closed"
                                      : std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status RecvExact(int fd, char* buf, size_t want) {
  size_t got = 0;
  while (got < want) {
    ssize_t n = ::recv(fd, buf + got, want - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Internal("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Internal("recv(): timed out waiting for the server");
    }
    return Status::Internal(std::string("recv(): ") + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(int port,
                                                double recv_timeout_seconds) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect(127.0.0.1:" + std::to_string(port) +
                            "): " + err);
  }
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(recv_timeout_seconds);
  timeout.tv_usec = static_cast<suseconds_t>(
      (recv_timeout_seconds - std::floor(recv_timeout_seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendRaw(std::string_view bytes) {
  return SendAllOrError(fd_, bytes);
}

Result<Response> Client::ReadResponse() {
  char header_bytes[kFrameHeaderBytes];
  ROCK_RETURN_IF_ERROR(RecvExact(fd_, header_bytes, kFrameHeaderBytes));
  FrameHeader header;
  ROCK_RETURN_IF_ERROR(
      DecodeFrameHeader(std::string_view(header_bytes, kFrameHeaderBytes),
                        kMaxFrameBytes, &header));
  std::string payload(header.length, '\0');
  if (header.length > 0) {
    ROCK_RETURN_IF_ERROR(RecvExact(fd_, payload.data(), header.length));
  }
  ROCK_RETURN_IF_ERROR(CheckFramePayload(header, payload));
  Response response;
  ROCK_RETURN_IF_ERROR(DecodeResponse(payload, &response));
  return response;
}

Result<Response> Client::RoundTrip(const Request& request) {
  ROCK_RETURN_IF_ERROR(SendRaw(EncodeFrame(EncodeRequest(request))));
  Result<Response> response = ReadResponse();
  if (!response.ok()) return response;
  if (response->id != request.id) {
    return Status::Internal(
        "response id " + std::to_string(response->id) +
        " does not match request id " + std::to_string(request.id));
  }
  return response;
}

namespace {

/// Lifts a wire-level error response into the client-side Status.
Status WireStatus(const Response& response) {
  if (response.code == StatusCode::kOk) return Status::Ok();
  return Status(response.code, response.error);
}

}  // namespace

Status Client::Ping() {
  Request request;
  request.verb = Verb::kPing;
  request.id = NextId();
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return WireStatus(*response);
}

Result<std::vector<int64_t>> Client::Ingest(int rel,
                                            const std::vector<Tuple>& tuples) {
  Request request;
  request.verb = Verb::kIngest;
  request.id = NextId();
  request.rel = rel;
  request.tuples = tuples;
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  ROCK_RETURN_IF_ERROR(WireStatus(*response));
  return std::move(response->tids);
}

Result<WireDetectionReport> Client::Detect(DetectScope scope) {
  Request request;
  request.verb = Verb::kDetect;
  request.id = NextId();
  request.scope = scope;
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  ROCK_RETURN_IF_ERROR(WireStatus(*response));
  return std::move(response->report);
}

Result<Client::Explanation> Client::Explain(int rel, int64_t tid, int attr,
                                            int max_depth) {
  Request request;
  request.verb = Verb::kExplain;
  request.id = NextId();
  request.explain_rel = rel;
  request.explain_tid = tid;
  request.explain_attr = attr;
  request.explain_max_depth = max_depth;
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  ROCK_RETURN_IF_ERROR(WireStatus(*response));
  Explanation explanation;
  explanation.text = std::move(response->explain_text);
  explanation.json = std::move(response->explain_json);
  return explanation;
}

Result<std::string> Client::Telemetry() {
  Request request;
  request.verb = Verb::kTelemetry;
  request.id = NextId();
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  ROCK_RETURN_IF_ERROR(WireStatus(*response));
  return std::move(response->telemetry_json);
}

Status Client::Shutdown() {
  Request request;
  request.verb = Verb::kShutdown;
  request.id = NextId();
  Result<Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return WireStatus(*response);
}

}  // namespace rock::serve
