#pragma once

// Client side of the rockd wire protocol: one blocking connection with a
// typed method per verb, plus raw frame access (SendRaw/ReadResponse) so
// the robustness tests can shove malformed bytes at a live server and
// still parse whatever diagnostic comes back.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/serve/protocol.h"

namespace rock::serve {

class Client {
 public:
  /// Connects to rockd on 127.0.0.1:port. `recv_timeout_seconds` bounds
  /// every read so a wedged server fails the call instead of hanging it.
  static Result<std::unique_ptr<Client>> Connect(
      int port, double recv_timeout_seconds = 10.0);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Typed verbs. Each is one request/response round trip; a non-OK wire
  // status comes back as the returned Status/Result error.

  Status Ping();

  /// Appends `tuples` to relation `rel`; returns the tids assigned, in
  /// order. The tuples also join this session's incremental-detect delta.
  Result<std::vector<int64_t>> Ingest(int rel, const std::vector<Tuple>& tuples);

  Result<WireDetectionReport> Detect(DetectScope scope = DetectScope::kFull);

  struct Explanation {
    std::string text;
    std::string json;
  };
  Result<Explanation> Explain(int rel, int64_t tid, int attr,
                              int max_depth = 32);

  /// The server's /telemetry.json document.
  Result<std::string> Telemetry();

  /// Asks the server to drain. OK means the server acknowledged before
  /// starting its wind-down.
  Status Shutdown();

  // Raw access for tests and the load generator.

  /// Encodes, frames, sends, and reads back the matching response.
  /// Verifies the echoed id.
  Result<Response> RoundTrip(const Request& request);

  /// Writes arbitrary bytes to the socket, unframed and unvalidated —
  /// the robustness tests' entry point for malformed frames.
  Status SendRaw(std::string_view bytes);

  /// Reads one framed Response off the socket.
  Result<Response> ReadResponse();

  /// Fresh request id (monotonic per connection).
  uint64_t NextId() { return next_id_++; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_;
  uint64_t next_id_ = 1;
};

}  // namespace rock::serve
