#pragma once

// rockd's wire protocol: a small length-prefixed binary request/response
// format over a byte stream (POSIX sockets in production, plain buffers in
// tests). Design goals, in order:
//
//   1. Robustness. The decoder is a pure function over untrusted bytes: it
//      never throws, never over-reads, never allocates proportionally to a
//      length field it has not bounds-checked against the bytes actually
//      present, and detects any corruption of a frame in transit via a
//      CRC-32 over the payload. tests/serve_protocol_test.cc fuzzes this
//      contract with seeded byte mutations under ASan/TSan.
//   2. Determinism. Encoding is canonical (fixed-width little-endian
//      integers, no padding), so Encode(Decode(x)) == x byte-for-byte and
//      served results can be compared bitwise against library-API results.
//   3. Simplicity. Five verbs, tagged structs, no schema compiler.
//
// Frame layout (kFrameHeaderBytes = 12 bytes of header):
//
//   offset  size  field
//   0       4     magic "ROCK" (kFrameMagic, little-endian u32)
//   4       4     payload length N (little-endian u32, <= max frame bytes)
//   8       4     CRC-32 (IEEE) of the N payload bytes
//   12      N     payload (one encoded Request or Response)
//
// Payload layout:
//
//   u8   protocol version (kProtocolVersion)
//   u8   kind (0 = request, 1 = response)
//   u8   verb
//   u64  request id (echoed verbatim in the response)
//   ...  verb-specific body (responses prepend status code + message)
//
// Every multi-byte integer is little-endian. Strings and repeated fields
// are a u32 count followed by that many elements; the decoder rejects any
// count larger than the bytes remaining in the frame *before* reserving
// memory for it.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/detect/detector.h"
#include "src/storage/relation.h"

namespace rock::serve {

/// "ROCK" as a little-endian u32 ('R' is the lowest byte on the wire).
inline constexpr uint32_t kFrameMagic = 0x4B434F52u;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
/// Default upper bound on a frame payload. A length prefix above the
/// configured maximum is rejected from the 12 header bytes alone — before
/// any payload is read or buffered.
inline constexpr size_t kMaxFrameBytes = 8u << 20;  // 8 MiB

/// The request verbs rockd serves.
enum class Verb : uint8_t {
  kPing = 0,
  kIngest = 1,
  kDetect = 2,
  kExplain = 3,
  kTelemetry = 4,
  kShutdown = 5,
};

const char* VerbName(Verb verb);

/// Validating conversion; false for bytes outside the verb range.
bool VerbFromByte(uint8_t raw, Verb* out);

/// What a detect request ranges over: the whole database, or only the
/// tuples this session has ingested (incremental detection over ΔD).
enum class DetectScope : uint8_t { kFull = 0, kSession = 1 };

/// One client request. A tagged struct: `verb` selects which body fields
/// are meaningful; the codec only encodes/decodes the selected body.
struct Request {
  Verb verb = Verb::kPing;
  uint64_t id = 0;

  // kIngest: append `tuples` to relation index `rel`. tid/eid fields of
  // the tuples are advisory (< 0 = assign fresh); the response returns the
  // tids actually assigned.
  int32_t rel = -1;
  std::vector<Tuple> tuples;

  // kDetect
  DetectScope scope = DetectScope::kFull;

  // kExplain: why-provenance of cell (explain_rel, explain_tid,
  // explain_attr) from the server's last correction pass.
  int32_t explain_rel = -1;
  int64_t explain_tid = -1;
  int32_t explain_attr = -1;
  int32_t explain_max_depth = 32;
};

/// A DetectionReport flattened for the wire. Field-for-field faithful so
/// the served report compares bitwise equal to a library-API report.
struct WireDetectionReport {
  uint64_t violations = 0;
  uint64_t blocked_pairs_checked = 0;
  uint64_t exhaustive_pairs_checked = 0;
  std::vector<detect::ErrorRecord> errors;
};

WireDetectionReport ToWire(const detect::DetectionReport& report);

/// Structural equality against a library-API report (same violation
/// counters, same errors in the same order, cell for cell).
bool WireReportEquals(const WireDetectionReport& wire,
                      const detect::DetectionReport& report);

/// One server response. `id` and `verb` echo the request; a non-OK `code`
/// carries `error` and an empty body.
struct Response {
  Verb verb = Verb::kPing;
  uint64_t id = 0;
  StatusCode code = StatusCode::kOk;
  std::string error;

  // kIngest: assigned tids, parallel to the request's tuples.
  std::vector<int64_t> tids;
  // kDetect
  WireDetectionReport report;
  // kExplain: rendered proof tree (text + JSON forms).
  std::string explain_text;
  std::string explain_json;
  // kTelemetry: the /telemetry.json document.
  std::string telemetry_json;
};

// ---------------------------------------------------------------------------
// Bounds-checked cursors. WireReader is the only way protocol bytes are
// consumed; every Read* checks the remaining length first and fails with
// InvalidArgument instead of over-reading.

class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// u32 length + raw bytes.
  void Str(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I32(int32_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  Status Str(std::string* v);

  /// Validates a repeated-field count against the bytes left: each element
  /// occupies at least `min_element_bytes` on the wire, so any count
  /// claiming more elements than could possibly be present is rejected
  /// here — before the caller allocates.
  Status Count(size_t min_element_bytes, uint32_t* count);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Value / Tuple codec (shared by ingest requests and future verbs).

void EncodeValue(const Value& value, WireWriter* w);
Status DecodeValue(WireReader* r, Value* out);
void EncodeTuple(const Tuple& tuple, WireWriter* w);
Status DecodeTuple(WireReader* r, Tuple* out);

// ---------------------------------------------------------------------------
// Message codec. Encode* produces the frame *payload* (no header);
// Decode* consumes exactly one payload and rejects trailing bytes, unknown
// verbs, bad versions, and any truncation.

std::string EncodeRequest(const Request& request);
Status DecodeRequest(std::string_view payload, Request* out);
std::string EncodeResponse(const Response& response);
Status DecodeResponse(std::string_view payload, Response* out);

// ---------------------------------------------------------------------------
// Framing.

struct FrameHeader {
  uint32_t length = 0;
  uint32_t crc = 0;
};

/// Header + payload, ready to write to a socket.
std::string EncodeFrame(std::string_view payload);

/// Parses and validates the 12 header bytes: magic, and length against
/// `max_frame_bytes`. An oversized length fails here — the caller must not
/// have buffered (or allocated for) the payload yet.
Status DecodeFrameHeader(std::string_view header_bytes,
                         size_t max_frame_bytes, FrameHeader* out);

/// Verifies `payload` against the header's length and CRC-32.
Status CheckFramePayload(const FrameHeader& header, std::string_view payload);

/// Whole-buffer conveniences for tests and the fuzzer: header validation,
/// CRC check and payload decode over a single contiguous frame.
Status DecodeFramedRequest(std::string_view frame, Request* out);
Status DecodeFramedResponse(std::string_view frame, Response* out);

}  // namespace rock::serve
