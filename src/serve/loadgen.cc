#include "src/serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

#include "src/common/rng.h"
#include "src/serve/client.h"

namespace rock::serve {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<std::vector<PlannedRequest>> BuildLoadPlan(
    const LoadGenOptions& options) {
  const std::vector<double> weights = {options.ingest_weight,
                                       options.detect_weight,
                                       options.explain_weight};
  const double weight_sum =
      weights[0] + weights[1] + weights[2];
  const size_t total = static_cast<size_t>(
      std::max(0, options.warmup_requests) +
      std::max(0, options.measure_requests));

  std::vector<std::vector<PlannedRequest>> plans;
  plans.reserve(static_cast<size_t>(std::max(0, options.clients)));
  for (int c = 0; c < options.clients; ++c) {
    // One independent deterministic stream per client: splitting by seed
    // arithmetic keeps client c's plan stable when the client count changes.
    Rng rng(options.seed * 0x9E3779B97F4A7C15ull +
            static_cast<uint64_t>(c) + 1);
    std::vector<PlannedRequest> plan;
    plan.reserve(total);
    for (size_t i = 0; i < total; ++i) {
      PlannedRequest planned;
      if (weight_sum <= 0) {
        planned.verb = Verb::kPing;
      } else {
        switch (rng.NextWeighted(weights)) {
          case 0:
            planned.verb = Verb::kIngest;
            planned.pick = static_cast<uint32_t>(rng.NextBounded(
                options.pool.empty() ? 1 : options.pool.size()));
            break;
          case 1:
            planned.verb = Verb::kDetect;
            break;
          default:
            planned.verb = Verb::kExplain;
            planned.pick = static_cast<uint32_t>(
                rng.NextBounded(options.explain_targets.empty()
                                    ? 1
                                    : options.explain_targets.size()));
            break;
        }
      }
      plan.push_back(planned);
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

double LoadReport::LatencyPercentile(double q) const {
  if (latencies_seconds.empty()) return 0;
  std::vector<double> sorted = latencies_seconds;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank: the smallest value with at least q of the mass below it.
  size_t rank = static_cast<size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

Result<LoadReport> RunLoad(const LoadGenOptions& options) {
  if (options.clients <= 0) {
    return Status::InvalidArgument("RunLoad: clients must be positive");
  }
  if (options.measure_requests < 0 || options.warmup_requests < 0) {
    return Status::InvalidArgument("RunLoad: request counts must be >= 0");
  }
  if (options.ingest_weight > 0 && options.pool.empty()) {
    return Status::InvalidArgument(
        "RunLoad: ingest weight is positive but the tuple pool is empty");
  }
  if (options.ingest_weight > 0 && options.ingest_batch_rows <= 0) {
    return Status::InvalidArgument(
        "RunLoad: ingest_batch_rows must be positive");
  }

  const std::vector<std::vector<PlannedRequest>> plans = BuildLoadPlan(options);

  // All connections come up before any request is issued, so every client
  // faces the same server state at its first request.
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(plans.size());
  for (size_t c = 0; c < plans.size(); ++c) {
    Result<std::unique_ptr<Client>> client =
        Client::Connect(options.port, options.recv_timeout_seconds);
    if (!client.ok()) return client.status();
    clients.push_back(std::move(client).value());
  }

  struct ClientResult {
    Status status = Status::Ok();
    LoadReport partial;  // counters + latencies for this client only
    double measure_start = 0;
    double measure_end = 0;
  };
  std::vector<ClientResult> results(plans.size());

  auto run_client = [&](size_t c) {
    Client& client = *clients[c];
    ClientResult& out = results[c];
    const std::vector<PlannedRequest>& plan = plans[c];
    const size_t warmup = static_cast<size_t>(options.warmup_requests);
    for (size_t i = 0; i < plan.size(); ++i) {
      const PlannedRequest& planned = plan[i];
      const bool measured = i >= warmup;
      Request request;
      request.verb = planned.verb;
      request.id = client.NextId();
      switch (planned.verb) {
        case Verb::kIngest: {
          request.rel = options.ingest_rel;
          request.tuples.reserve(
              static_cast<size_t>(options.ingest_batch_rows));
          for (int j = 0; j < options.ingest_batch_rows; ++j) {
            request.tuples.push_back(
                options.pool[(planned.pick + static_cast<size_t>(j)) %
                             options.pool.size()]);
          }
          break;
        }
        case Verb::kDetect:
          request.scope = options.detect_scope;
          break;
        case Verb::kExplain:
          if (!options.explain_targets.empty()) {
            const auto& target = options.explain_targets[planned.pick];
            request.explain_rel = std::get<0>(target);
            request.explain_tid = std::get<1>(target);
            request.explain_attr = std::get<2>(target);
          }
          break;
        default:
          break;
      }

      if (measured && out.measure_start == 0) {
        out.measure_start = SteadySeconds();
      }
      const double start = SteadySeconds();
      Result<Response> response = client.RoundTrip(request);
      const double elapsed = SteadySeconds() - start;
      if (!response.ok()) {
        out.status = response.status();
        return;
      }
      if (!measured) continue;
      out.measure_end = SteadySeconds();
      out.partial.latencies_seconds.push_back(elapsed);
      if (response->code != StatusCode::kOk) ++out.partial.error_responses;
      switch (planned.verb) {
        case Verb::kIngest: ++out.partial.ingest_requests; break;
        case Verb::kDetect: ++out.partial.detect_requests; break;
        case Verb::kExplain: ++out.partial.explain_requests; break;
        default: ++out.partial.ping_requests; break;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(plans.size());
  for (size_t c = 0; c < plans.size(); ++c) {
    threads.emplace_back(run_client, c);
  }
  for (std::thread& t : threads) t.join();

  LoadReport report;
  double first_start = 0, last_end = 0;
  for (const ClientResult& r : results) {
    if (!r.status.ok()) return r.status;
    report.ingest_requests += r.partial.ingest_requests;
    report.detect_requests += r.partial.detect_requests;
    report.explain_requests += r.partial.explain_requests;
    report.ping_requests += r.partial.ping_requests;
    report.error_responses += r.partial.error_responses;
    report.latencies_seconds.insert(report.latencies_seconds.end(),
                                    r.partial.latencies_seconds.begin(),
                                    r.partial.latencies_seconds.end());
    if (r.measure_start > 0 && (first_start == 0 ||
                                r.measure_start < first_start)) {
      first_start = r.measure_start;
    }
    last_end = std::max(last_end, r.measure_end);
  }
  report.measure_wall_seconds = std::max(0.0, last_end - first_start);
  if (report.measure_wall_seconds > 0) {
    report.throughput_rps =
        static_cast<double>(report.latencies_seconds.size()) /
        report.measure_wall_seconds;
  }
  return report;
}

}  // namespace rock::serve
