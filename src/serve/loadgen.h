#pragma once

// Closed-loop load generator for rockd: N client threads, each holding one
// connection, each issuing its next request only after the previous
// response arrives (closed loop — offered load adapts to service rate, so
// latency percentiles are honest rather than coordinated-omission noise).
//
// Determinism contract: the full request sequence — which verb each client
// issues at each step, and which tuples an ingest carries — is a pure
// function of LoadGenOptions (BuildLoadPlan below). Two runs with the same
// options differ only in measured timings; the workload-mix counters in
// the report are identical. tests/serve_loadgen_test.cc holds us to this.
//
// Phases: each client runs `warmup_requests` unmeasured requests (connection
// setup, cache warm, allocator steady-state) and then `measure_requests`
// measured ones. Phases are counted in requests, not wall time, precisely
// so the mix is reproducible.

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/status.h"
#include "src/serve/protocol.h"

namespace rock::serve {

struct LoadGenOptions {
  int port = 0;
  /// Concurrent closed-loop clients (one connection + thread each).
  int clients = 4;
  /// Unmeasured requests per client before the measured phase.
  int warmup_requests = 20;
  /// Measured requests per client.
  int measure_requests = 200;
  /// RNG seed for the request plan (verb choices, tuple picks).
  uint64_t seed = 42;

  /// Workload mix weights, ingest:detect:explain. Need not sum to
  /// anything; zero disables the verb.
  double ingest_weight = 1.0;
  double detect_weight = 8.0;
  double explain_weight = 1.0;

  /// Tuples per ingest request, drawn round-robin per client from `pool`.
  int ingest_batch_rows = 4;
  /// Relation ingest requests target.
  int ingest_rel = 0;
  /// Tuple pool for ingest bodies (cycled; may be empty when
  /// ingest_weight == 0).
  std::vector<Tuple> pool;
  /// Detect scope used by detect requests. kSession keeps measured work
  /// proportional to what this run ingested; kFull scans the database.
  DetectScope detect_scope = DetectScope::kSession;
  /// Cells to explain, cycled through by explain requests. May be empty
  /// when explain_weight == 0 (or explain then asks for a never-fixed cell
  /// and measures the empty-proof path).
  std::vector<std::tuple<int32_t, int64_t, int32_t>> explain_targets;

  /// Client receive timeout; a stuck server fails the run instead of
  /// hanging it.
  double recv_timeout_seconds = 30.0;
};

/// One planned request: the verb plus which pool/target index it uses.
struct PlannedRequest {
  Verb verb = Verb::kDetect;
  /// First pool index of the ingest batch, or explain-target index.
  uint32_t pick = 0;
};

/// The per-client request plans, warmup followed by measured requests —
/// plans[c] has warmup_requests + measure_requests entries. Pure function
/// of `options` (tuple pool contents aside, only counts/weights/seed
/// matter), the determinism anchor for everything downstream.
std::vector<std::vector<PlannedRequest>> BuildLoadPlan(
    const LoadGenOptions& options);

/// Results of one load run. Latencies are measured-phase only, seconds,
/// in completion order per client then concatenated by client index (so
/// the vector itself is reproducible modulo the timing values).
struct LoadReport {
  // Measured-phase workload-mix counters (deterministic given options).
  uint64_t ingest_requests = 0;
  uint64_t detect_requests = 0;
  uint64_t explain_requests = 0;
  uint64_t ping_requests = 0;
  /// Responses with a non-OK wire status (deterministically 0 on a
  /// healthy server).
  uint64_t error_responses = 0;

  std::vector<double> latencies_seconds;
  double measure_wall_seconds = 0;
  double throughput_rps = 0;

  double LatencyPercentile(double q) const;
};

/// Runs the closed loop against a live rockd. Fails if any connection or
/// transport operation fails (a non-OK *wire* status only increments
/// error_responses — the protocol exchange itself still succeeded).
Result<LoadReport> RunLoad(const LoadGenOptions& options);

}  // namespace rock::serve
