#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/exporters.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rock::serve {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SendAll(int fd, const std::string& bytes) {
  static obs::Counter* sent_total =
      obs::MetricsRegistry::Global().GetCounter("rock_serve_bytes_sent_total");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
  sent_total->Add(bytes.size());
}

}  // namespace

Result<std::unique_ptr<RockServer>> RockServer::Start(core::Rock* rock,
                                                      ServerOptions options) {
  if (rock == nullptr) {
    return Status::InvalidArgument("RockServer::Start: engine is null");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(options.port) +
                            "): " + err);
  }
  if (::listen(fd, 128) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen(): " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname(): " + err);
  }
  int port = ntohs(addr.sin_port);
  std::unique_ptr<RockServer> server(
      new RockServer(rock, fd, port, std::move(options)));
  return server;
}

RockServer::RockServer(core::Rock* rock, int listen_fd, int port,
                       ServerOptions options)
    : rock_(rock), listen_fd_(listen_fd), port_(port),
      options_(std::move(options)) {
  obs::MetricsRegistry::Global().SetHelp(
      "rock_serve_requests_total",
      "Requests answered by rockd, any verb and status.");
  obs::MetricsRegistry::Global().SetHelp(
      "rock_serve_protocol_errors_total",
      "Frames or payloads rejected by the wire-protocol decoder.");
  obs::MetricsRegistry::Global().SetHelp(
      "rock_serve_request_seconds",
      "Server-side request latency: frame decoded to response queued.");
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ROCK_LOG(kInfo) << "rockd listening on 127.0.0.1:" << port_;
}

RockServer::~RockServer() { Stop(); }

void RockServer::BeginDrain() {
  bool expected = false;
  if (draining_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    obs::MetricsRegistry::Global().GetGauge("rock_serve_draining")->Set(1);
    ROCK_LOG(kInfo) << "rockd draining: refusing new connections";
  }
}

void RockServer::WaitUntilStopped() {
  common::MutexLock join_lock(join_mu_);
  if (joined_) return;
  // The accept loop exits only once drain is requested, so this join doubles
  // as the wait-for-drain.
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    common::MutexLock lock(state_mu_);
    connections.swap(connection_threads_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
  ROCK_LOG(kInfo) << "rockd stopped after " << requests_served() << " requests";
}

void RockServer::Stop() {
  BeginDrain();
  WaitUntilStopped();
}

void RockServer::AcceptLoop() {
  static obs::Counter* connections_total =
      obs::MetricsRegistry::Global().GetCounter("rock_serve_connections_total");
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (re-check drain flag) or EINTR
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    connections_total->Add();
    uint64_t session_id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    common::MutexLock lock(state_mu_);
    connection_threads_.emplace_back(
        [this, client, session_id] { ServeConnection(client, session_id); });
  }
  // From here on connect() is refused, which is what "draining" promises.
  ::close(listen_fd_);
}

RockServer::FrameRead RockServer::ReadFrame(int client_fd,
                                            std::string* payload,
                                            Status* error) {
  // Reads exactly `want` bytes. The 100ms SO_RCVTIMEO turns a blocked recv
  // into a tick on which we notice drain: idle connections (nothing read
  // yet, `started` false) close immediately; a connection caught mid-frame
  // gets drain_grace_seconds to finish before we give up on it.
  double drain_deadline = -1.0;
  auto recv_exact = [&](char* buf, size_t want, bool started) -> FrameRead {
    size_t got = 0;
    while (got < want) {
      ssize_t n = ::recv(client_fd, buf + got, want - got, 0);
      if (n > 0) {
        got += static_cast<size_t>(n);
        started = true;
        continue;
      }
      if (n == 0) {  // EOF
        if (!started) return FrameRead::kClosed;
        *error = Status::InvalidArgument(
            "connection closed mid-frame (truncated frame)");
        return FrameRead::kProtocolError;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!draining_.load(std::memory_order_acquire)) continue;
        if (!started) return FrameRead::kClosed;
        if (drain_deadline < 0) {
          drain_deadline = SteadySeconds() + options_.drain_grace_seconds;
        } else if (SteadySeconds() >= drain_deadline) {
          return FrameRead::kClosed;  // grace expired: close, no response
        }
        continue;
      }
      return FrameRead::kClosed;  // connection error
    }
    return FrameRead::kOk;
  };

  char header_bytes[kFrameHeaderBytes];
  FrameRead read = recv_exact(header_bytes, kFrameHeaderBytes,
                              /*started=*/false);
  if (read != FrameRead::kOk) return read;

  // An oversized or garbage length prefix dies here, before any payload
  // buffer is allocated.
  FrameHeader header;
  Status status =
      DecodeFrameHeader(std::string_view(header_bytes, kFrameHeaderBytes),
                        options_.max_frame_bytes, &header);
  if (!status.ok()) {
    *error = std::move(status);
    return FrameRead::kProtocolError;
  }

  payload->resize(header.length);
  if (header.length > 0) {
    read = recv_exact(payload->data(), header.length, /*started=*/true);
    if (read != FrameRead::kOk) {
      if (read == FrameRead::kClosed) {
        *error = Status::InvalidArgument("timed out mid-frame during drain");
        return FrameRead::kProtocolError;
      }
      return read;
    }
  }
  status = CheckFramePayload(header, *payload);
  if (!status.ok()) {
    *error = std::move(status);
    return FrameRead::kProtocolError;
  }
  return FrameRead::kOk;
}

void RockServer::ServeConnection(int client_fd, uint64_t session_id) {
  static obs::Gauge* active_gauge =
      obs::MetricsRegistry::Global().GetGauge("rock_serve_connections_active");
  static obs::Counter* requests_total =
      obs::MetricsRegistry::Global().GetCounter("rock_serve_requests_total");
  static obs::Counter* protocol_errors = obs::MetricsRegistry::Global()
      .GetCounter("rock_serve_protocol_errors_total");
  static obs::Gauge* inflight =
      obs::MetricsRegistry::Global().GetGauge("rock_serve_inflight_requests");
  static obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
      "rock_serve_request_seconds", obs::LatencyBucketsSeconds());
  static obs::Counter* received_total = obs::MetricsRegistry::Global()
      .GetCounter("rock_serve_bytes_received_total");

  ROCK_OBS_SPAN("serve.connection");
  active_gauge->Add(1);
  timeval timeout{};
  timeout.tv_usec = 100 * 1000;  // the drain-notice tick; see ReadFrame
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  Session session;
  session.id = session_id;
  std::string payload;
  while (true) {
    Status error = Status::Ok();
    FrameRead read = ReadFrame(client_fd, &payload, &error);
    if (read == FrameRead::kClosed) break;
    received_total->Add(kFrameHeaderBytes + payload.size());

    Request request;
    if (read == FrameRead::kOk) {
      Status decoded = DecodeRequest(payload, &request);
      if (!decoded.ok()) {
        read = FrameRead::kProtocolError;
        error = std::move(decoded);
      }
    }
    if (read == FrameRead::kProtocolError) {
      // A malformed frame earns one diagnostic response, then the
      // connection closes: after a framing error the stream offset can no
      // longer be trusted.
      protocol_errors->Add();
      Response reject;
      reject.verb = Verb::kPing;
      reject.id = 0;  // the id, if any, was inside the bytes we rejected
      reject.code = error.code() == StatusCode::kOk ? StatusCode::kInternal
                                                    : error.code();
      reject.error = error.message();
      // Counters bump before the send: once the client holds the response,
      // requests_served() must already reflect it.
      requests_total->Add();
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      SendAll(client_fd, EncodeFrame(EncodeResponse(reject)));
      break;
    }

    inflight->Add(1);
    double start = SteadySeconds();
    Response response = Dispatch(request, &session);
    std::string frame = EncodeFrame(EncodeResponse(response));
    latency->Observe(SteadySeconds() - start);
    inflight->Add(-1);
    requests_total->Add();
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    SendAll(client_fd, frame);
  }
  ::close(client_fd);
  active_gauge->Add(-1);
}

Response RockServer::Dispatch(const Request& request, Session* session) {
  ROCK_OBS_SPAN("serve.dispatch");
  Response response;
  response.verb = request.verb;
  response.id = request.id;

  if (options_.handler_delay_seconds > 0 && request.verb != Verb::kShutdown) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.handler_delay_seconds));
  }

  switch (request.verb) {
    case Verb::kPing:
      break;

    case Verb::kIngest: {
      common::WriterLock lock(engine_mu_);
      Result<std::vector<int64_t>> tids =
          rock_->IngestBatch(request.rel, request.tuples);
      if (!tids.ok()) {
        response.code = tids.status().code();
        response.error = tids.status().message();
        break;
      }
      for (int64_t tid : tids.value()) {
        session->ingested.emplace_back(request.rel, tid);
      }
      response.tids = std::move(tids).value();
      break;
    }

    case Verb::kDetect: {
      common::ReaderLock lock(engine_mu_);
      if (rock_->active_rules().empty()) {
        response.code = StatusCode::kFailedPrecondition;
        response.error = "no rules activated on the server";
        break;
      }
      detect::DetectionReport report =
          request.scope == DetectScope::kSession
              ? rock_->DetectActiveIncremental(session->ingested)
              : rock_->DetectActive();
      response.report = ToWire(report);
      break;
    }

    case Verb::kExplain: {
      common::ReaderLock lock(engine_mu_);
      obs::ProofTree tree =
          rock_->Explain(request.explain_rel, request.explain_tid,
                         request.explain_attr, request.explain_max_depth);
      response.explain_text = tree.ToText();
      response.explain_json = tree.ToJson();
      break;
    }

    case Verb::kTelemetry:
      response.telemetry_json = obs::CaptureGlobalTelemetry().ToJson();
      break;

    case Verb::kShutdown:
      // Acknowledge first; the drain flag makes every read loop (including
      // this connection's) wind down on its next idle tick.
      BeginDrain();
      break;
  }
  return response;
}

}  // namespace rock::serve
