// rockd: the Rock online cleaning daemon.
//
// Boots a core::Rock engine over the generated bank workload (trained
// models, discovered polynomials, the curated rule set activated, and one
// correction pass so `explain` has provenance to answer from), then serves
// the src/serve/protocol.h wire protocol until a client sends `shutdown`.
//
//   rockd [--port=N] [--port-file=PATH] [--rows=N] [--error-rate=F]
//         [--seed=N] [--no-correct] [--metrics[=PORT]]
//         [--metrics-port-file=PATH] [--handler-delay-seconds=F]
//
// --port=0 (the default) binds an ephemeral port; --port-file writes the
// bound port for harnesses to poll. --metrics additionally starts the
// obs::TelemetryServer so /metrics exposes the rock_serve_* series while
// the daemon runs. There is no signal handler: the supported stop path is
// the protocol's own shutdown verb (graceful drain), keeping the signal
// seam untouched.

#include <cstdlib>
#include <memory>
#include <string>

#include "src/common/logging.h"
#include "src/core/engine.h"
#include "src/obs/exporters.h"
#include "src/obs/server.h"
#include "src/serve/server.h"
#include "src/workload/generator.h"

namespace {

struct RockdFlags {
  int port = 0;
  std::string port_file;
  int rows = 2000;
  double error_rate = 0.08;
  uint64_t seed = 17;
  bool correct = true;
  bool metrics = false;
  int metrics_port = 0;
  std::string metrics_port_file;
  double handler_delay_seconds = 0;
  bool ok = true;
};

RockdFlags ParseFlags(int argc, char** argv) {
  RockdFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--port=", 0) == 0) {
      flags.port = std::atoi(value("--port=").c_str());
    } else if (arg.rfind("--port-file=", 0) == 0) {
      flags.port_file = value("--port-file=");
    } else if (arg.rfind("--rows=", 0) == 0) {
      flags.rows = std::atoi(value("--rows=").c_str());
    } else if (arg.rfind("--error-rate=", 0) == 0) {
      flags.error_rate = std::atof(value("--error-rate=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = std::strtoull(value("--seed=").c_str(), nullptr, 10);
    } else if (arg == "--no-correct") {
      flags.correct = false;
    } else if (arg == "--metrics") {
      flags.metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      flags.metrics = true;
      flags.metrics_port = std::atoi(value("--metrics=").c_str());
    } else if (arg.rfind("--metrics-port-file=", 0) == 0) {
      flags.metrics_port_file = value("--metrics-port-file=");
    } else if (arg.rfind("--handler-delay-seconds=", 0) == 0) {
      flags.handler_delay_seconds =
          std::atof(value("--handler-delay-seconds=").c_str());
    } else {
      ROCK_LOG(kError) << "rockd: unknown flag " << arg;
      flags.ok = false;
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  using rock::core::ModelTrainingSpec;
  using rock::core::Rock;

  RockdFlags flags = ParseFlags(argc, argv);
  if (!flags.ok) return 2;

  rock::workload::GeneratorOptions data_options;
  data_options.rows = flags.rows;
  data_options.error_rate = flags.error_rate;
  data_options.seed = flags.seed;
  ROCK_LOG(kInfo) << "rockd: generating bank workload (rows=" << flags.rows
                  << " seed=" << flags.seed << ")";
  rock::workload::GeneratedData data =
      rock::workload::MakeBankData(data_options);

  Rock rock(&data.db, &data.graph);
  ModelTrainingSpec spec;
  spec.rank_targets = {{"Customer", "city"}};
  spec.monotone_attrs = {{"Customer", "points"}};
  spec.path_synonyms = {{"area", {"AreaOf"}}};
  rock.TrainModels(spec);
  rock.DiscoverPolynomials();
  rock::Status activated = rock.ActivateRules(data.rule_text);
  if (!activated.ok()) {
    ROCK_LOG(kError) << "rockd: rule activation failed: "
                     << activated.ToString();
    return 1;
  }
  if (flags.correct) {
    // One correction pass gives Explain() a fix store to answer from.
    rock::core::CorrectionResult correction;
    rock.CorrectErrors(rock.active_rules(), data.clean_tuples, &correction);
    ROCK_LOG(kInfo) << "rockd: correction pass done (converged="
                    << correction.chase.converged << ")";
  }

  std::unique_ptr<rock::obs::TelemetryServer> metrics_server;
  if (flags.metrics) {
    rock::obs::TelemetryServer::Options options;
    options.port = flags.metrics_port;
    options.build_info = "rockd";
    auto started = rock::obs::TelemetryServer::Start(options);
    if (!started.ok()) {
      ROCK_LOG(kError) << "rockd: telemetry server failed: "
                       << started.status().ToString();
      return 1;
    }
    metrics_server = std::move(started).value();
    if (!flags.metrics_port_file.empty()) {
      rock::obs::WriteFile(flags.metrics_port_file,
                           std::to_string(metrics_server->port()) + "\n");
    }
  }

  rock::serve::ServerOptions options;
  options.port = flags.port;
  options.handler_delay_seconds = flags.handler_delay_seconds;
  auto server = rock::serve::RockServer::Start(&rock, options);
  if (!server.ok()) {
    ROCK_LOG(kError) << "rockd: " << server.status().ToString();
    return 1;
  }
  if (!flags.port_file.empty()) {
    rock::Status wrote = rock::obs::WriteFile(
        flags.port_file, std::to_string((*server)->port()) + "\n");
    if (!wrote.ok()) {
      ROCK_LOG(kError) << "rockd: port file: " << wrote.ToString();
      return 1;
    }
  }

  (*server)->WaitUntilStopped();
  return 0;
}
