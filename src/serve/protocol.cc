#include "src/serve/protocol.h"

#include <bit>
#include <cstring>

#include "src/common/hash.h"

namespace rock::serve {

namespace {

constexpr uint8_t kKindRequest = 0;
constexpr uint8_t kKindResponse = 1;
constexpr uint8_t kMaxVerbByte = static_cast<uint8_t>(Verb::kShutdown);
constexpr uint8_t kMaxStatusByte =
    static_cast<uint8_t>(StatusCode::kResourceExhausted);
constexpr uint8_t kMaxValueTypeByte = static_cast<uint8_t>(ValueType::kTime);

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated frame: ") + what);
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kPing:
      return "ping";
    case Verb::kIngest:
      return "ingest";
    case Verb::kDetect:
      return "detect";
    case Verb::kExplain:
      return "explain";
    case Verb::kTelemetry:
      return "telemetry";
    case Verb::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

bool VerbFromByte(uint8_t raw, Verb* out) {
  if (raw > kMaxVerbByte) return false;
  *out = static_cast<Verb>(raw);
  return true;
}

WireDetectionReport ToWire(const detect::DetectionReport& report) {
  WireDetectionReport wire;
  wire.violations = report.violations;
  wire.blocked_pairs_checked = report.blocked_pairs_checked;
  wire.exhaustive_pairs_checked = report.exhaustive_pairs_checked;
  wire.errors = report.errors;
  return wire;
}

bool WireReportEquals(const WireDetectionReport& wire,
                      const detect::DetectionReport& report) {
  if (wire.violations != report.violations ||
      wire.blocked_pairs_checked != report.blocked_pairs_checked ||
      wire.exhaustive_pairs_checked != report.exhaustive_pairs_checked ||
      wire.errors.size() != report.errors.size()) {
    return false;
  }
  for (size_t i = 0; i < wire.errors.size(); ++i) {
    const detect::ErrorRecord& a = wire.errors[i];
    const detect::ErrorRecord& b = report.errors[i];
    if (a.error_class != b.error_class || a.rule_id != b.rule_id ||
        a.cells != b.cells) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Cursors.

void WireWriter::U32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(buf, 4);
}

void WireWriter::U64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(buf, 8);
}

void WireWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

Status WireReader::U8(uint8_t* v) {
  if (remaining() < 1) return Truncated("u8");
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status WireReader::U32(uint32_t* v) {
  if (remaining() < 4) return Truncated("u32");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::Ok();
}

Status WireReader::U64(uint64_t* v) {
  if (remaining() < 8) return Truncated("u64");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::Ok();
}

Status WireReader::I32(int32_t* v) {
  uint32_t raw = 0;
  ROCK_RETURN_IF_ERROR(U32(&raw));
  *v = static_cast<int32_t>(raw);
  return Status::Ok();
}

Status WireReader::I64(int64_t* v) {
  uint64_t raw = 0;
  ROCK_RETURN_IF_ERROR(U64(&raw));
  *v = static_cast<int64_t>(raw);
  return Status::Ok();
}

Status WireReader::F64(double* v) {
  uint64_t raw = 0;
  ROCK_RETURN_IF_ERROR(U64(&raw));
  *v = std::bit_cast<double>(raw);
  return Status::Ok();
}

Status WireReader::Str(std::string* v) {
  uint32_t len = 0;
  ROCK_RETURN_IF_ERROR(U32(&len));
  if (len > remaining()) {
    return Status::InvalidArgument(
        "string length " + std::to_string(len) + " exceeds the " +
        std::to_string(remaining()) + " bytes left in the frame");
  }
  v->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status WireReader::Count(size_t min_element_bytes, uint32_t* count) {
  uint32_t raw = 0;
  ROCK_RETURN_IF_ERROR(U32(&raw));
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (raw > remaining() / min_element_bytes) {
    return Status::InvalidArgument(
        "repeated-field count " + std::to_string(raw) +
        " cannot fit in the " + std::to_string(remaining()) +
        " bytes left in the frame");
  }
  *count = raw;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Value / Tuple.

void EncodeValue(const Value& value, WireWriter* w) {
  w->U8(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w->I64(value.AsInt());
      break;
    case ValueType::kDouble:
      w->F64(value.AsDouble());
      break;
    case ValueType::kString:
      w->Str(value.AsString());
      break;
    case ValueType::kTime:
      w->I64(value.AsTime());
      break;
  }
}

Status DecodeValue(WireReader* r, Value* out) {
  uint8_t type = 0;
  ROCK_RETURN_IF_ERROR(r->U8(&type));
  if (type > kMaxValueTypeByte) {
    return Status::InvalidArgument("unknown value type tag " +
                                   std::to_string(type));
  }
  switch (static_cast<ValueType>(type)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::Ok();
    case ValueType::kInt: {
      int64_t v = 0;
      ROCK_RETURN_IF_ERROR(r->I64(&v));
      *out = Value::Int(v);
      return Status::Ok();
    }
    case ValueType::kDouble: {
      double v = 0;
      ROCK_RETURN_IF_ERROR(r->F64(&v));
      *out = Value::Double(v);
      return Status::Ok();
    }
    case ValueType::kString: {
      std::string v;
      ROCK_RETURN_IF_ERROR(r->Str(&v));
      *out = Value::String(std::move(v));
      return Status::Ok();
    }
    case ValueType::kTime: {
      int64_t v = 0;
      ROCK_RETURN_IF_ERROR(r->I64(&v));
      *out = Value::Time(v);
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable value type");
}

void EncodeTuple(const Tuple& tuple, WireWriter* w) {
  w->I64(tuple.tid);
  w->I64(tuple.eid);
  w->U32(static_cast<uint32_t>(tuple.values.size()));
  for (const Value& value : tuple.values) EncodeValue(value, w);
  w->U32(static_cast<uint32_t>(tuple.timestamps.size()));
  for (int64_t ts : tuple.timestamps) w->I64(ts);
}

Status DecodeTuple(WireReader* r, Tuple* out) {
  Tuple tuple;
  ROCK_RETURN_IF_ERROR(r->I64(&tuple.tid));
  ROCK_RETURN_IF_ERROR(r->I64(&tuple.eid));
  uint32_t nvalues = 0;
  ROCK_RETURN_IF_ERROR(r->Count(/*min_element_bytes=*/1, &nvalues));
  tuple.values.reserve(nvalues);
  for (uint32_t i = 0; i < nvalues; ++i) {
    Value value;
    ROCK_RETURN_IF_ERROR(DecodeValue(r, &value));
    tuple.values.push_back(std::move(value));
  }
  uint32_t nstamps = 0;
  ROCK_RETURN_IF_ERROR(r->Count(/*min_element_bytes=*/8, &nstamps));
  tuple.timestamps.reserve(nstamps);
  for (uint32_t i = 0; i < nstamps; ++i) {
    int64_t ts = 0;
    ROCK_RETURN_IF_ERROR(r->I64(&ts));
    tuple.timestamps.push_back(ts);
  }
  *out = std::move(tuple);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Requests.

namespace {

void EncodeRequestBody(const Request& request, WireWriter* w) {
  switch (request.verb) {
    case Verb::kPing:
    case Verb::kTelemetry:
    case Verb::kShutdown:
      break;
    case Verb::kIngest:
      w->I32(request.rel);
      w->U32(static_cast<uint32_t>(request.tuples.size()));
      for (const Tuple& tuple : request.tuples) EncodeTuple(tuple, w);
      break;
    case Verb::kDetect:
      w->U8(static_cast<uint8_t>(request.scope));
      break;
    case Verb::kExplain:
      w->I32(request.explain_rel);
      w->I64(request.explain_tid);
      w->I32(request.explain_attr);
      w->I32(request.explain_max_depth);
      break;
  }
}

Status DecodeRequestBody(WireReader* r, Request* out) {
  switch (out->verb) {
    case Verb::kPing:
    case Verb::kTelemetry:
    case Verb::kShutdown:
      return Status::Ok();
    case Verb::kIngest: {
      ROCK_RETURN_IF_ERROR(r->I32(&out->rel));
      uint32_t count = 0;
      // A tuple is at least tid + eid + two counts = 24 bytes.
      ROCK_RETURN_IF_ERROR(r->Count(/*min_element_bytes=*/24, &count));
      out->tuples.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        Tuple tuple;
        ROCK_RETURN_IF_ERROR(DecodeTuple(r, &tuple));
        out->tuples.push_back(std::move(tuple));
      }
      return Status::Ok();
    }
    case Verb::kDetect: {
      uint8_t scope = 0;
      ROCK_RETURN_IF_ERROR(r->U8(&scope));
      if (scope > static_cast<uint8_t>(DetectScope::kSession)) {
        return Status::InvalidArgument("unknown detect scope " +
                                       std::to_string(scope));
      }
      out->scope = static_cast<DetectScope>(scope);
      return Status::Ok();
    }
    case Verb::kExplain:
      ROCK_RETURN_IF_ERROR(r->I32(&out->explain_rel));
      ROCK_RETURN_IF_ERROR(r->I64(&out->explain_tid));
      ROCK_RETURN_IF_ERROR(r->I32(&out->explain_attr));
      ROCK_RETURN_IF_ERROR(r->I32(&out->explain_max_depth));
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown request verb");
}

void EncodeErrorRecord(const detect::ErrorRecord& record, WireWriter* w) {
  w->U8(static_cast<uint8_t>(record.error_class));
  w->Str(record.rule_id);
  w->U32(static_cast<uint32_t>(record.cells.size()));
  for (const detect::ErrorRecord::Cell& cell : record.cells) {
    w->I32(cell.rel);
    w->I64(cell.tid);
    w->I32(cell.attr);
  }
}

Status DecodeErrorRecord(WireReader* r, detect::ErrorRecord* out) {
  uint8_t error_class = 0;
  ROCK_RETURN_IF_ERROR(r->U8(&error_class));
  if (error_class > static_cast<uint8_t>(detect::ErrorClass::kStale)) {
    return Status::InvalidArgument("unknown error class " +
                                   std::to_string(error_class));
  }
  out->error_class = static_cast<detect::ErrorClass>(error_class);
  ROCK_RETURN_IF_ERROR(r->Str(&out->rule_id));
  uint32_t ncells = 0;
  // A cell is rel(4) + tid(8) + attr(4) = 16 bytes.
  ROCK_RETURN_IF_ERROR(r->Count(/*min_element_bytes=*/16, &ncells));
  out->cells.reserve(ncells);
  for (uint32_t i = 0; i < ncells; ++i) {
    detect::ErrorRecord::Cell cell;
    ROCK_RETURN_IF_ERROR(r->I32(&cell.rel));
    ROCK_RETURN_IF_ERROR(r->I64(&cell.tid));
    ROCK_RETURN_IF_ERROR(r->I32(&cell.attr));
    out->cells.push_back(cell);
  }
  return Status::Ok();
}

void EncodeResponseBody(const Response& response, WireWriter* w) {
  if (response.code != StatusCode::kOk) return;  // error responses: no body
  switch (response.verb) {
    case Verb::kPing:
    case Verb::kShutdown:
      break;
    case Verb::kIngest:
      w->U32(static_cast<uint32_t>(response.tids.size()));
      for (int64_t tid : response.tids) w->I64(tid);
      break;
    case Verb::kDetect: {
      const WireDetectionReport& report = response.report;
      w->U64(report.violations);
      w->U64(report.blocked_pairs_checked);
      w->U64(report.exhaustive_pairs_checked);
      w->U32(static_cast<uint32_t>(report.errors.size()));
      for (const detect::ErrorRecord& record : report.errors) {
        EncodeErrorRecord(record, w);
      }
      break;
    }
    case Verb::kExplain:
      w->Str(response.explain_text);
      w->Str(response.explain_json);
      break;
    case Verb::kTelemetry:
      w->Str(response.telemetry_json);
      break;
  }
}

Status DecodeResponseBody(WireReader* r, Response* out) {
  if (out->code != StatusCode::kOk) return Status::Ok();
  switch (out->verb) {
    case Verb::kPing:
    case Verb::kShutdown:
      return Status::Ok();
    case Verb::kIngest: {
      uint32_t count = 0;
      ROCK_RETURN_IF_ERROR(r->Count(/*min_element_bytes=*/8, &count));
      out->tids.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        int64_t tid = 0;
        ROCK_RETURN_IF_ERROR(r->I64(&tid));
        out->tids.push_back(tid);
      }
      return Status::Ok();
    }
    case Verb::kDetect: {
      WireDetectionReport& report = out->report;
      ROCK_RETURN_IF_ERROR(r->U64(&report.violations));
      ROCK_RETURN_IF_ERROR(r->U64(&report.blocked_pairs_checked));
      ROCK_RETURN_IF_ERROR(r->U64(&report.exhaustive_pairs_checked));
      uint32_t nerrors = 0;
      // An error record is class(1) + rule string count(4) + cell count(4).
      ROCK_RETURN_IF_ERROR(r->Count(/*min_element_bytes=*/9, &nerrors));
      report.errors.reserve(nerrors);
      for (uint32_t i = 0; i < nerrors; ++i) {
        detect::ErrorRecord record;
        ROCK_RETURN_IF_ERROR(DecodeErrorRecord(r, &record));
        report.errors.push_back(std::move(record));
      }
      return Status::Ok();
    }
    case Verb::kExplain:
      ROCK_RETURN_IF_ERROR(r->Str(&out->explain_text));
      ROCK_RETURN_IF_ERROR(r->Str(&out->explain_json));
      return Status::Ok();
    case Verb::kTelemetry:
      ROCK_RETURN_IF_ERROR(r->Str(&out->telemetry_json));
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown response verb");
}

Status DecodeEnvelope(WireReader* r, uint8_t expected_kind, Verb* verb,
                      uint64_t* id) {
  uint8_t version = 0;
  ROCK_RETURN_IF_ERROR(r->U8(&version));
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("protocol version " +
                                   std::to_string(version) + " != " +
                                   std::to_string(kProtocolVersion));
  }
  uint8_t kind = 0;
  ROCK_RETURN_IF_ERROR(r->U8(&kind));
  if (kind != expected_kind) {
    return Status::InvalidArgument(
        kind > kKindResponse
            ? "unknown message kind " + std::to_string(kind)
            : std::string("unexpected message kind (request/response "
                          "direction mismatch)"));
  }
  uint8_t verb_byte = 0;
  ROCK_RETURN_IF_ERROR(r->U8(&verb_byte));
  if (!VerbFromByte(verb_byte, verb)) {
    return Status::InvalidArgument("unknown verb " +
                                   std::to_string(verb_byte));
  }
  return r->U64(id);
}

Status RejectTrailing(const WireReader& r) {
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        std::to_string(r.remaining()) +
        " trailing byte(s) after a complete message");
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  WireWriter w;
  w.U8(kProtocolVersion);
  w.U8(kKindRequest);
  w.U8(static_cast<uint8_t>(request.verb));
  w.U64(request.id);
  EncodeRequestBody(request, &w);
  return w.Take();
}

Status DecodeRequest(std::string_view payload, Request* out) {
  WireReader r(payload);
  Request request;
  ROCK_RETURN_IF_ERROR(
      DecodeEnvelope(&r, kKindRequest, &request.verb, &request.id));
  ROCK_RETURN_IF_ERROR(DecodeRequestBody(&r, &request));
  ROCK_RETURN_IF_ERROR(RejectTrailing(r));
  *out = std::move(request);
  return Status::Ok();
}

std::string EncodeResponse(const Response& response) {
  WireWriter w;
  w.U8(kProtocolVersion);
  w.U8(kKindResponse);
  w.U8(static_cast<uint8_t>(response.verb));
  w.U64(response.id);
  w.U8(static_cast<uint8_t>(response.code));
  w.Str(response.error);
  EncodeResponseBody(response, &w);
  return w.Take();
}

Status DecodeResponse(std::string_view payload, Response* out) {
  WireReader r(payload);
  Response response;
  ROCK_RETURN_IF_ERROR(
      DecodeEnvelope(&r, kKindResponse, &response.verb, &response.id));
  uint8_t code = 0;
  ROCK_RETURN_IF_ERROR(r.U8(&code));
  if (code > kMaxStatusByte) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  response.code = static_cast<StatusCode>(code);
  ROCK_RETURN_IF_ERROR(r.Str(&response.error));
  ROCK_RETURN_IF_ERROR(DecodeResponseBody(&r, &response));
  ROCK_RETURN_IF_ERROR(RejectTrailing(r));
  *out = std::move(response);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Framing.

std::string EncodeFrame(std::string_view payload) {
  WireWriter w;
  w.U32(kFrameMagic);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32(payload));
  std::string out = w.Take();
  out.append(payload.data(), payload.size());
  return out;
}

Status DecodeFrameHeader(std::string_view header_bytes,
                         size_t max_frame_bytes, FrameHeader* out) {
  if (header_bytes.size() < kFrameHeaderBytes) {
    return Truncated("frame header");
  }
  WireReader r(header_bytes.substr(0, kFrameHeaderBytes));
  uint32_t magic = 0;
  Status status = r.U32(&magic);  // 12 bytes present: cannot fail
  if (!status.ok()) return status;
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  FrameHeader header;
  status = r.U32(&header.length);
  if (!status.ok()) return status;
  status = r.U32(&header.crc);
  if (!status.ok()) return status;
  if (header.length > max_frame_bytes) {
    // Rejected from the header alone: the payload is never buffered, so an
    // adversarial length prefix cannot drive an allocation.
    return Status(StatusCode::kResourceExhausted,
                  "frame length " + std::to_string(header.length) +
                      " exceeds the " + std::to_string(max_frame_bytes) +
                      "-byte limit");
  }
  *out = header;
  return Status::Ok();
}

Status CheckFramePayload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.length) {
    return Status::InvalidArgument(
        "frame payload is " + std::to_string(payload.size()) +
        " bytes, header declared " + std::to_string(header.length));
  }
  uint32_t crc = Crc32(payload);
  if (crc != header.crc) {
    return Status::InvalidArgument("frame CRC mismatch (corrupt payload)");
  }
  return Status::Ok();
}

namespace {

Status SplitFrame(std::string_view frame, size_t max_frame_bytes,
                  std::string_view* payload) {
  FrameHeader header;
  ROCK_RETURN_IF_ERROR(DecodeFrameHeader(frame, max_frame_bytes, &header));
  std::string_view rest = frame.substr(kFrameHeaderBytes);
  ROCK_RETURN_IF_ERROR(CheckFramePayload(header, rest));
  *payload = rest;
  return Status::Ok();
}

}  // namespace

Status DecodeFramedRequest(std::string_view frame, Request* out) {
  std::string_view payload;
  ROCK_RETURN_IF_ERROR(SplitFrame(frame, kMaxFrameBytes, &payload));
  return DecodeRequest(payload, out);
}

Status DecodeFramedResponse(std::string_view frame, Response* out) {
  std::string_view payload;
  ROCK_RETURN_IF_ERROR(SplitFrame(frame, kMaxFrameBytes, &payload));
  return DecodeResponse(payload, out);
}

}  // namespace rock::serve
