#pragma once

// rockd: the online cleaning service. A RockServer owns a loaded
// core::Rock engine and serves the binary protocol in src/serve/protocol.h
// over POSIX sockets: ingest (submit tuples), detect (full or
// session-incremental), explain (why-provenance of a repaired cell),
// telemetry (the /telemetry.json document) and shutdown (graceful drain).
//
// Concurrency model: one accept-loop thread plus one thread per live
// connection. Engine access is serialized through a readers-writer lock —
// ingest takes the writer side, detect/explain the reader side — so served
// results are computed by exactly the same library calls a linked-in
// caller would make, on a quiescent engine, and compare bitwise equal to
// them (tests/serve_test.cc proves this).
//
// Session model: each connection is a session. A session accumulates the
// tids it has ingested; a detect request with DetectScope::kSession runs
// incremental detection over exactly that delta.
//
// Drain semantics (the shutdown verb, or BeginDrain()):
//   1. the listen socket closes — new connections are refused;
//   2. requests already received keep executing and their responses are
//      sent in full;
//   3. idle connections (no request in flight) close;
//   4. a connection caught mid-frame gets a short grace period to finish
//      sending, then closes without a response;
//   5. WaitUntilStopped()/Stop() joins every thread.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/core/engine.h"
#include "src/serve/protocol.h"

namespace rock::serve {

struct ServerOptions {
  /// TCP port; 0 picks an ephemeral port (read back via port()). Binds
  /// 127.0.0.1 only, like the telemetry plane.
  int port = 0;
  /// Frames with a length prefix above this are rejected from the header
  /// alone and the connection closes.
  size_t max_frame_bytes = kMaxFrameBytes;
  /// Seconds a connection caught mid-frame at drain time may take to
  /// finish transmitting before the server gives up on it.
  double drain_grace_seconds = 2.0;
  /// Test hook: every non-shutdown request handler sleeps this long before
  /// executing, so tests can deterministically hold a request in flight
  /// across a drain. 0 in production.
  double handler_delay_seconds = 0;
};

/// Long-lived server around a core::Rock engine. The engine (and the
/// database/graph behind it) must outlive the server; the server is the
/// engine's only user while running (it serializes its own access, but
/// cannot see external callers).
class RockServer {
 public:
  /// Binds, listens and starts the accept loop. The engine should already
  /// be set up: models trained, rules activated, and — if explain is to
  /// return non-empty proofs — a correction pass run.
  static Result<std::unique_ptr<RockServer>> Start(core::Rock* rock,
                                                   ServerOptions options);

  ~RockServer();

  RockServer(const RockServer&) = delete;
  RockServer& operator=(const RockServer&) = delete;

  /// The bound port (resolved when ServerOptions::port was 0).
  int port() const { return port_; }

  /// True once a shutdown request or BeginDrain() was observed.
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Initiates graceful drain (idempotent, non-blocking): stop accepting,
  /// finish in-flight requests, close sessions.
  void BeginDrain();

  /// Blocks until drain has been requested (by BeginDrain or a client's
  /// shutdown verb) and every server thread has exited. Safe to call from
  /// any thread except a connection handler.
  void WaitUntilStopped();

  /// BeginDrain() + WaitUntilStopped(). Idempotent.
  void Stop();

  /// Total requests answered (any status), across all sessions.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection session state; owned by the connection thread.
  struct Session {
    uint64_t id = 0;
    /// (rel, tid) of every tuple this session ingested — the ΔD that
    /// DetectScope::kSession ranges over.
    std::vector<std::pair<int, int64_t>> ingested;
  };

  RockServer(core::Rock* rock, int listen_fd, int port,
             ServerOptions options);

  enum class FrameRead {
    kOk,             // *payload holds one validated frame payload
    kClosed,         // close quietly: EOF, drain while idle, grace expired
    kProtocolError,  // *error explains; send an error response, then close
  };

  void AcceptLoop();
  void ServeConnection(int client_fd, uint64_t session_id);
  FrameRead ReadFrame(int client_fd, std::string* payload, Status* error);
  Response Dispatch(const Request& request, Session* session);

  // Set once in the constructor, immutable afterwards (listen_fd_ is
  // closed only by the accept loop as it exits).
  core::Rock* rock_;  // not owned  // ROCK_ANALYZE(unguarded-ok: construction-immutable)
  int listen_fd_;  // ROCK_ANALYZE(unguarded-ok: construction-immutable; closed only by the accept thread)
  int port_;  // ROCK_ANALYZE(unguarded-ok: construction-immutable)
  ServerOptions options_;  // ROCK_ANALYZE(unguarded-ok: construction-immutable)

  /// Serializes engine access across sessions: ingest writes, everything
  /// else reads.
  common::SharedMutex engine_mu_;

  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> next_session_id_{1};

  common::Mutex state_mu_;
  std::vector<std::thread> connection_threads_ ROCK_GUARDED_BY(state_mu_);

  /// Serializes WaitUntilStopped callers (std::thread::join is
  /// single-caller). Lock order: join_mu_ before state_mu_.
  common::Mutex join_mu_;
  bool joined_ ROCK_GUARDED_BY(join_mu_) = false;

  // Spawned in the constructor; joined exactly once by the joined_-gated
  // section of WaitUntilStopped, which runs under join_mu_.
  std::thread accept_thread_;  // ROCK_ANALYZE(unguarded-ok: join gated by joined_ under join_mu_)
};

}  // namespace rock::serve
