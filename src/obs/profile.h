#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "src/common/status.h"

namespace rock::obs {

/// Tuning for the sampling CPU profiler. The defaults suit the benches:
/// 97 Hz (prime, so sampling never phase-locks with periodic work) per
/// thread of *CPU time*, so idle threads cost nothing and busy threads
/// are sampled proportionally to the CPU they burn.
struct ProfileOptions {
  int sample_hz = 97;
  /// Sample buffer capacity, allocated once at Start(). At 97 Hz per busy
  /// thread, 1<<15 samples hold ~42 thread-CPU-seconds of profile;
  /// further samples are counted as dropped rather than wrapping.
  size_t max_samples = size_t{1} << 15;
};

/// One symbolized profile view: folded (flamegraph.pl-compatible) stacks
/// with sample counts, plus the bookkeeping the JSON export carries.
struct ProfileSnapshot {
  bool enabled = false;
  bool running = false;
  int sample_hz = 0;
  uint64_t samples = 0;
  uint64_t dropped = 0;
  double duration_seconds = 0.0;
  /// "root;caller;callee" -> sample count, root-first as flamegraph.pl
  /// expects.
  std::map<std::string, uint64_t> folded;
};

#ifndef ROCK_OBS_DISABLE_PROFILER

/// Sampling CPU profiler: a per-thread POSIX interval timer
/// (timer_create over CLOCK_THREAD_CPUTIME_ID) delivers SIGPROF to each
/// registered thread; the async-signal-safe handler appends a raw
/// backtrace(3) PC vector to a preallocated sample buffer. Symbolization
/// (backtrace_symbols + __cxa_demangle) happens offline in
/// TakeSnapshot(), never in the handler. Threads join the profiled set
/// via ProfilerRegisterThisThread() (WorkerPool workers do this
/// automatically; Start() registers the calling thread).
class CpuProfiler {
 public:
  /// Process-wide instance — SIGPROF disposition is process state, so
  /// there is exactly one.
  static CpuProfiler& Global();

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  /// Installs the SIGPROF handler (first call), primes backtrace(3)
  /// outside signal context, resets the sample buffer, and arms a timer
  /// for every registered thread plus the caller.
  /// FailedPrecondition if already running.
  Status Start(const ProfileOptions& options = {});

  /// Disarms and deletes all timers. Collected samples survive until the
  /// next Start(), so a profile can be exported after the run it covers.
  Status Stop();

  bool running() const;

  /// Adds the calling thread to the profiled set; armed immediately when
  /// the profiler is running, otherwise on the next Start(). A
  /// thread-exit hook unregisters automatically.
  void RegisterThisThread();
  void UnregisterThisThread();

  /// Symbolizes and folds the samples collected so far. Callable while
  /// running (the watchdog's "partial profile") or after Stop().
  ProfileSnapshot TakeSnapshot() const;

  /// flamegraph.pl input: one "frame;frame;frame count" line per unique
  /// stack. Empty string when no samples were collected.
  std::string Folded() const;

  /// The /profile.json document: options, sample/drop counts, and the
  /// folded stacks as structured records.
  std::string Json() const;

 private:
  CpuProfiler() = default;
};

#endif  // !ROCK_OBS_DISABLE_PROFILER

/// Call-site shims that compile to nothing when the profiler is compiled
/// out, so WorkerPool and the engine never reference profiler symbols
/// under -DROCK_OBS_PROFILER=OFF.
#ifdef ROCK_OBS_DISABLE_PROFILER
inline void ProfilerRegisterThisThread() {}
inline Status StartGlobalProfiler(const ProfileOptions& = {}) {
  return Status::Unimplemented("profiler compiled out (ROCK_OBS_PROFILER=OFF)");
}
inline Status StopGlobalProfiler() {
  return Status::Unimplemented("profiler compiled out (ROCK_OBS_PROFILER=OFF)");
}
#else
void ProfilerRegisterThisThread();
Status StartGlobalProfiler(const ProfileOptions& options = {});
Status StopGlobalProfiler();
#endif

}  // namespace rock::obs
