#include "src/obs/provenance.h"

#include <algorithm>

#include "src/common/strings.h"

namespace rock::obs {

namespace {

/// Proof-depth histogram cap: deeper chains land in the last bucket.
constexpr uint64_t kDepthCap = 16;

struct ProvMetrics {
  Counter* nodes;
  Counter* conflict_candidates;
  Counter* ml_calls;
  Counter* premises_ground_truth;
  Counter* premises_prior_fix;
  Counter* premises_raw;
  Counter* premises_oracle;
  Histogram* proof_depth;
  Gauge* max_depth;

  static const ProvMetrics& Get() {
    static ProvMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      ProvMetrics out;
      out.nodes = reg.GetCounter("rock_prov_nodes_total");
      out.conflict_candidates =
          reg.GetCounter("rock_prov_conflict_candidates_total");
      out.ml_calls = reg.GetCounter("rock_prov_ml_calls_total");
      out.premises_ground_truth =
          reg.GetCounter("rock_prov_premises_ground_truth_total");
      out.premises_prior_fix =
          reg.GetCounter("rock_prov_premises_prior_fix_total");
      out.premises_raw = reg.GetCounter("rock_prov_premises_raw_total");
      out.premises_oracle = reg.GetCounter("rock_prov_premises_oracle_total");
      out.proof_depth = reg.GetHistogram(
          "rock_prov_proof_depth", {1, 2, 3, 4, 6, 8, 12, 16});
      out.max_depth = reg.GetGauge("rock_prov_max_depth");
      return out;
    }();
    return m;
  }
};

}  // namespace

const char* PremiseSourceName(PremiseSource source) {
  switch (source) {
    case PremiseSource::kGroundTruth:
      return "ground_truth";
    case PremiseSource::kPriorFix:
      return "prior_fix";
    case PremiseSource::kRaw:
      return "raw";
    case PremiseSource::kOracle:
      return "oracle";
  }
  return "?";
}

const char* ProvKindName(ProvKind kind) {
  switch (kind) {
    case ProvKind::kGroundTruth:
      return "ground_truth";
    case ProvKind::kFix:
      return "fix";
    case ProvKind::kConflictCandidate:
      return "conflict_candidate";
  }
  return "?";
}

int64_t ProvenanceGraph::Add(ProvenanceNode node) {
  node.id = static_cast<int64_t>(nodes_.size());
  // Upstream ids must predate the node (the DAG is append-only), which is
  // what makes ProofDepth's recursion well-founded.
  node.upstream.erase(
      std::remove_if(node.upstream.begin(), node.upstream.end(),
                     [&](int64_t up) { return up < 0 || up >= node.id; }),
      node.upstream.end());
  std::sort(node.upstream.begin(), node.upstream.end());
  node.upstream.erase(
      std::unique(node.upstream.begin(), node.upstream.end()),
      node.upstream.end());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

const ProvenanceNode* ProvenanceGraph::Get(int64_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return nullptr;
  return &nodes_[static_cast<size_t>(id)];
}

uint64_t ProvenanceGraph::ProofDepth(int64_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return 0;
  if (depth_cache_.size() < nodes_.size()) {
    depth_cache_.resize(nodes_.size(), 0);
  }
  uint64_t& cached = depth_cache_[static_cast<size_t>(id)];
  if (cached != 0) return cached;
  uint64_t deepest = 0;
  for (int64_t up : nodes_[static_cast<size_t>(id)].upstream) {
    deepest = std::max(deepest, ProofDepth(up));
  }
  cached = deepest + 1;
  return cached;
}

ProofTree ProvenanceGraph::Expand(int64_t id, int max_depth) const {
  ProofTree tree;
  const ProvenanceNode* node = Get(id);
  if (node == nullptr) return tree;
  struct Builder {
    const ProvenanceGraph* graph;
    ProofTree::TreeNode Build(const ProvenanceNode& n, int budget) const {
      ProofTree::TreeNode out;
      out.node = &n;
      if (budget <= 1) {
        out.truncated = !n.upstream.empty();
        return out;
      }
      out.children.reserve(n.upstream.size());
      for (int64_t up : n.upstream) {
        const ProvenanceNode* child = graph->Get(up);
        if (child != nullptr) out.children.push_back(Build(*child, budget - 1));
      }
      return out;
    }
  };
  tree.root = Builder{this}.Build(*node, max_depth);
  return tree;
}

void ProvenanceGraph::Reroot(int64_t eid) {
  // Reverse every edge on eid's path to its proof-forest root so eid
  // becomes the root (labels travel with their edge).
  std::vector<std::pair<int64_t, ForestEdge>> path;
  int64_t cur = eid;
  auto it = forest_.find(cur);
  while (it != forest_.end()) {
    path.emplace_back(cur, it->second);
    cur = it->second.parent;
    it = forest_.find(cur);
  }
  for (auto& [child, edge] : path) {
    forest_[edge.parent] = {child, edge.label};
  }
  forest_.erase(eid);
}

void ProvenanceGraph::LinkMerge(int64_t a, int64_t b, int64_t node_id) {
  if (a == b) return;
  Reroot(a);
  forest_[a] = {b, node_id};
}

std::vector<int64_t> ProvenanceGraph::PathToRoot(int64_t eid) const {
  std::vector<int64_t> out = {eid};
  auto it = forest_.find(eid);
  while (it != forest_.end()) {
    out.push_back(it->second.parent);
    it = forest_.find(it->second.parent);
  }
  return out;
}

std::vector<int64_t> ProvenanceGraph::MergePath(int64_t a, int64_t b) const {
  if (a == b) return {};
  std::vector<int64_t> path_a = PathToRoot(a);
  std::vector<int64_t> path_b = PathToRoot(b);
  if (path_a.back() != path_b.back()) return {};  // different trees
  // Find the meeting point (lowest common ancestor in the proof forest).
  std::unordered_map<int64_t, size_t> index_a;
  for (size_t i = 0; i < path_a.size(); ++i) index_a[path_a[i]] = i;
  size_t meet_b = 0;
  while (index_a.find(path_b[meet_b]) == index_a.end()) ++meet_b;
  size_t meet_a = index_a[path_b[meet_b]];
  std::vector<int64_t> labels;
  auto collect = [&](const std::vector<int64_t>& path, size_t stop) {
    for (size_t i = 0; i < stop; ++i) {
      auto it = forest_.find(path[i]);
      if (it != forest_.end()) labels.push_back(it->second.label);
    }
  };
  collect(path_a, meet_a);
  collect(path_b, meet_b);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

ProofTree ProvenanceGraph::ExplainMerge(int64_t a, int64_t b,
                                        int max_depth) const {
  ProofTree tree;
  std::vector<int64_t> steps = MergePath(a, b);
  if (steps.empty()) return tree;
  tree.synthetic_label =
      StrFormat("merge path eid %lld = eid %lld (%zu step%s)",
                static_cast<long long>(a), static_cast<long long>(b),
                steps.size(), steps.size() == 1 ? "" : "s");
  for (int64_t step : steps) {
    ProofTree expanded = Expand(step, max_depth);
    if (expanded.root.node != nullptr) {
      tree.root.children.push_back(std::move(expanded.root));
    }
  }
  return tree;
}

ProvenanceSummary ProvenanceGraph::Summarize() const {
  ProvenanceSummary summary;
  summary.depth_histogram.assign(kDepthCap, 0);
  for (const ProvenanceNode& node : nodes_) {
    ++summary.nodes;
    if (node.kind == ProvKind::kConflictCandidate) {
      ++summary.conflict_candidates;
    } else {
      ++summary.fixes_by_rule[node.rule_id];
    }
    uint64_t depth = ProofDepth(node.id);
    summary.max_depth = std::max(summary.max_depth, depth);
    ++summary.depth_histogram[std::min(depth, kDepthCap) - 1];
    summary.ml_calls += node.witness.ml_calls.size();
    for (const PremiseCell& premise : node.witness.premises) {
      switch (premise.source) {
        case PremiseSource::kGroundTruth:
          ++summary.premises_ground_truth;
          break;
        case PremiseSource::kPriorFix:
          ++summary.premises_prior_fix;
          break;
        case PremiseSource::kRaw:
          ++summary.premises_raw;
          break;
        case PremiseSource::kOracle:
          ++summary.premises_oracle;
          break;
      }
    }
  }
  return summary;
}

void ProvenanceGraph::ExportDeltaToMetrics() {
  if (!kProvenanceEnabled) return;
  const ProvMetrics& metrics = ProvMetrics::Get();
  uint64_t max_depth =
      static_cast<uint64_t>(std::max<int64_t>(0, metrics.max_depth->Value()));
  for (size_t i = exported_watermark_; i < nodes_.size(); ++i) {
    const ProvenanceNode& node = nodes_[i];
    metrics.nodes->Add(1);
    if (node.kind == ProvKind::kConflictCandidate) {
      metrics.conflict_candidates->Add(1);
    } else {
      MetricsRegistry::Global()
          .GetCounter(ProvRuleCounterName(node.rule_id))
          ->Add(1);
    }
    uint64_t depth = ProofDepth(node.id);
    metrics.proof_depth->Observe(static_cast<double>(depth));
    max_depth = std::max(max_depth, depth);
    metrics.ml_calls->Add(node.witness.ml_calls.size());
    for (const PremiseCell& premise : node.witness.premises) {
      switch (premise.source) {
        case PremiseSource::kGroundTruth:
          metrics.premises_ground_truth->Add(1);
          break;
        case PremiseSource::kPriorFix:
          metrics.premises_prior_fix->Add(1);
          break;
        case PremiseSource::kRaw:
          metrics.premises_raw->Add(1);
          break;
        case PremiseSource::kOracle:
          metrics.premises_oracle->Add(1);
          break;
      }
    }
  }
  metrics.max_depth->Set(static_cast<int64_t>(max_depth));
  exported_watermark_ = nodes_.size();
}

std::string ProvRuleCounterName(const std::string& rule_id) {
  return "rock_prov_fixes_rule:" + rule_id;
}

namespace {

void AppendNodeText(const ProofTree::TreeNode& tn, int indent,
                    std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (tn.node == nullptr) return;
  const ProvenanceNode& n = *tn.node;
  *out += pad + "[" + ProvKindName(n.kind);
  if (!n.rule_id.empty()) *out += " " + n.rule_id;
  // Targets built from FixRecord::ToString() repeat the rule id; the
  // header already names it, so drop the duplicated prefix.
  std::string target = n.target;
  if (!n.rule_id.empty()) {
    const std::string dup = "[" + n.rule_id + "] ";
    if (target.rfind(dup, 0) == 0) target = target.substr(dup.size());
  }
  *out += "] " + target + "\n";
  const Witness& w = n.witness;
  if (!w.rule_text.empty()) {
    *out += pad + "  rule: " + w.rule_text + "\n";
  }
  if (!w.tuples.empty()) {
    *out += pad + "  bound:";
    for (const WitnessTuple& t : w.tuples) {
      *out += StrFormat(" t%d=rel%d#%lld", t.var, t.rel,
                        static_cast<long long>(t.tid));
    }
    *out += "\n";
  }
  for (const PremiseCell& p : w.premises) {
    *out += pad +
            StrFormat("  premise: rel%d tid=%lld attr=%d value=%s [%s]", p.rel,
                      static_cast<long long>(p.tid), p.attr, p.value.c_str(),
                      PremiseSourceName(p.source));
    if (p.upstream >= 0) {
      *out += StrFormat(" <- #%lld", static_cast<long long>(p.upstream));
    }
    *out += "\n";
  }
  for (const MlInvocation& m : w.ml_calls) {
    *out += pad + StrFormat("  ml: %s score=%.4f threshold=%.4f %s",
                            m.model.c_str(), m.score, m.threshold,
                            m.passed ? "pass" : "fail");
    if (!m.detail.empty()) *out += " (" + m.detail + ")";
    *out += "\n";
  }
  if (tn.truncated) {
    *out += pad + "  ... (depth bound reached)\n";
  }
  for (const ProofTree::TreeNode& child : tn.children) {
    AppendNodeText(child, indent + 1, out);
  }
}

void AppendNodeJson(const ProofTree::TreeNode& tn, JsonWriter* w) {
  w->BeginObject();
  if (tn.node != nullptr) {
    const ProvenanceNode& n = *tn.node;
    w->Key("id").Int(n.id);
    w->Key("kind").String(ProvKindName(n.kind));
    w->Key("rule_id").String(n.rule_id);
    w->Key("target").String(n.target);
    w->Key("witness").BeginObject();
    w->Key("rule").String(n.witness.rule_text);
    w->Key("tuples").BeginArray();
    for (const WitnessTuple& t : n.witness.tuples) {
      w->BeginObject();
      w->Key("var").Int(t.var);
      w->Key("rel").Int(t.rel);
      w->Key("tid").Int(t.tid);
      w->EndObject();
    }
    w->EndArray();
    w->Key("premises").BeginArray();
    for (const PremiseCell& p : n.witness.premises) {
      w->BeginObject();
      w->Key("rel").Int(p.rel);
      w->Key("tid").Int(p.tid);
      w->Key("attr").Int(p.attr);
      w->Key("value").String(p.value);
      w->Key("source").String(PremiseSourceName(p.source));
      w->Key("upstream").Int(p.upstream);
      w->EndObject();
    }
    w->EndArray();
    w->Key("ml_calls").BeginArray();
    for (const MlInvocation& m : n.witness.ml_calls) {
      w->BeginObject();
      w->Key("model").String(m.model);
      w->Key("detail").String(m.detail);
      w->Key("score").Number(m.score);
      w->Key("threshold").Number(m.threshold);
      w->Key("passed").Bool(m.passed);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->Key("truncated").Bool(tn.truncated);
  w->Key("children").BeginArray();
  for (const ProofTree::TreeNode& child : tn.children) {
    AppendNodeJson(child, w);
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string ProofTree::ToText() const {
  if (empty()) return "(no provenance recorded)\n";
  std::string out;
  if (root.node == nullptr) {
    out += synthetic_label.empty() ? std::string("proof")
                                   : synthetic_label;
    out += "\n";
    for (const TreeNode& child : root.children) {
      AppendNodeText(child, 1, &out);
    }
    return out;
  }
  AppendNodeText(root, 0, &out);
  return out;
}

std::string ProofTree::ToJson() const {
  JsonWriter w;
  if (root.node == nullptr) {
    w.BeginObject();
    w.Key("label").String(synthetic_label);
    w.Key("steps").BeginArray();
    for (const TreeNode& child : root.children) {
      AppendNodeJson(child, &w);
    }
    w.EndArray();
    w.EndObject();
    return w.str();
  }
  AppendNodeJson(root, &w);
  return w.str();
}

void AppendProvenanceBlock(const MetricsRegistry::Snapshot& snapshot,
                           JsonWriter* writer) {
  JsonWriter& w = *writer;
  w.Key("provenance").BeginObject();
  w.Key("enabled").Bool(kProvenanceEnabled);
  w.Key("nodes").Uint(snapshot.CounterValue("rock_prov_nodes_total"));
  w.Key("conflict_candidates")
      .Uint(snapshot.CounterValue("rock_prov_conflict_candidates_total"));
  int64_t max_depth = 0;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "rock_prov_max_depth") max_depth = gauge.value;
  }
  w.Key("max_depth").Int(max_depth);
  w.Key("ml_calls").Uint(snapshot.CounterValue("rock_prov_ml_calls_total"));
  w.Key("premises").BeginObject();
  w.Key("ground_truth")
      .Uint(snapshot.CounterValue("rock_prov_premises_ground_truth_total"));
  w.Key("prior_fix")
      .Uint(snapshot.CounterValue("rock_prov_premises_prior_fix_total"));
  w.Key("raw").Uint(snapshot.CounterValue("rock_prov_premises_raw_total"));
  w.Key("oracle")
      .Uint(snapshot.CounterValue("rock_prov_premises_oracle_total"));
  w.EndObject();
  const std::string rule_prefix = "rock_prov_fixes_rule:";
  w.Key("fixes_by_rule").BeginObject();
  for (const auto& counter : snapshot.counters) {
    if (counter.name.rfind(rule_prefix, 0) == 0) {
      w.Key(counter.name.substr(rule_prefix.size())).Uint(counter.value);
    }
  }
  w.EndObject();
  w.Key("proof_depth").BeginObject();
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name != "rock_prov_proof_depth") continue;
    w.Key("count").Uint(histogram.count);
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      w.BeginObject();
      w.Key("le").Number(histogram.bounds[i]);
      w.Key("count").Uint(histogram.cumulative_counts[i]);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  w.EndObject();
}

}  // namespace rock::obs
