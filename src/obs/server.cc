#include "src/obs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/common/logging.h"
#include "src/obs/exporters.h"
#include "src/obs/profile.h"

namespace rock::obs {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reads until the header terminator (CRLFCRLF), the size cap, EOF, or
/// the socket's receive timeout. Returns what was read; the caller
/// decides whether it is complete.
std::string ReadRequestHead(int fd) {
  std::string head;
  char buf[2048];
  while (head.size() < kMaxRequestBytes + 1) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos) break;
    // Accept bare-LF termination from sloppy clients.
    if (head.find("\n\n") != std::string::npos) break;
  }
  return head;
}

void SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    default:
      return "Unknown";
  }
}

Status ParseRequestLine(const std::string& raw, HttpRequest* out) {
  size_t eol = raw.find('\n');
  std::string line = raw.substr(0, eol == std::string::npos ? raw.size() : eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return Status::InvalidArgument("empty request line");
  if (line.find('\0') != std::string::npos) {
    return Status::InvalidArgument("NUL byte in request line");
  }
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return Status::InvalidArgument("request line needs three tokens: " + line);
  }
  HttpRequest request;
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  request.version = line.substr(sp2 + 1);
  if (request.method.empty() || request.target.empty() ||
      request.target.find(' ') != std::string::npos) {
    return Status::InvalidArgument("malformed request line: " + line);
  }
  if (request.version.rfind("HTTP/1.", 0) != 0) {
    return Status::InvalidArgument("unsupported version: " + request.version);
  }
  *out = std::move(request);
  return Status::Ok();
}

HttpResponse HandleTelemetryRequest(const HttpRequest& request,
                                    const std::string& build_info,
                                    double uptime_seconds) {
  HttpResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "only GET and HEAD are supported\n";
    return response;
  }
  // Strip a query string: scrapers append cache-busters.
  std::string path = request.target.substr(0, request.target.find('?'));
  if (path == "/metrics") {
    TelemetrySnapshot snap = CaptureGlobalTelemetry();
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = snap.ToPrometheus();
  } else if (path == "/telemetry.json") {
    response.content_type = "application/json";
    response.body = CaptureGlobalTelemetry().ToJson();
  } else if (path == "/trace.json") {
    response.content_type = "application/json";
    response.body = CaptureGlobalTelemetry().ToChromeTrace();
#ifndef ROCK_OBS_DISABLE_PROFILER
  } else if (path == "/profile.folded") {
    response.content_type = "text/plain; charset=utf-8";
    response.body = CpuProfiler::Global().Folded();
  } else if (path == "/profile.json") {
    response.content_type = "application/json";
    response.body = CpuProfiler::Global().Json();
#endif
  } else if (path == "/healthz") {
    JsonWriter w;
    w.BeginObject();
    w.Key("status").String("ok");
    w.Key("build_info").String(build_info);
    w.Key("uptime_seconds").Number(uptime_seconds);
    w.EndObject();
    response.content_type = "application/json";
    response.body = w.str();
  } else {
    response.status = 404;
    response.body =
        "unknown path " + path +
#ifndef ROCK_OBS_DISABLE_PROFILER
        " (try /metrics /telemetry.json /trace.json /profile.folded"
        " /profile.json /healthz)\n";
#else
        " (try /metrics /telemetry.json /trace.json /healthz)\n";
#endif
  }
  return response;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool include_body) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (include_body) out += response.body;
  return out;
}

Result<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    const Options& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" +
                            std::to_string(options.port) + "): " + err);
  }
  if (::listen(fd, 64) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen(): " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname(): " + err);
  }
  int port = ntohs(addr.sin_port);
  std::unique_ptr<TelemetryServer> server(
      new TelemetryServer(fd, port, options));
  return server;
}

TelemetryServer::TelemetryServer(int listen_fd, int port, Options options)
    : listen_fd_(listen_fd),
      port_(port),
      options_(std::move(options)),
      started_seconds_(SteadySeconds()) {
  thread_ = std::thread([this] { Serve(); });
  ROCK_LOG(kInfo) << "telemetry server listening on 127.0.0.1:" << port_;
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

void TelemetryServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void TelemetryServer::HandleConnection(int client_fd) {
  // A slow or stalled client must not wedge the serial accept loop.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string head = ReadRequestHead(client_fd);
  HttpResponse response;
  HttpRequest request;
  bool head_only = false;
  if (head.size() > kMaxRequestBytes) {
    response.status = 431;
    response.body = "request head exceeds " +
                    std::to_string(kMaxRequestBytes) + " bytes\n";
  } else {
    Status parsed = ParseRequestLine(head, &request);
    if (!parsed.ok()) {
      response.status = 400;
      response.body = parsed.message() + "\n";
    } else {
      head_only = request.method == "HEAD";
      response = HandleTelemetryRequest(
          request, options_.build_info, SteadySeconds() - started_seconds_);
    }
  }
  SendAll(client_fd, SerializeHttpResponse(response, !head_only));
  // Drain whatever the client is still sending (the tail of an oversized
  // head, say) before the caller closes the socket: closing with unread
  // input makes the kernel send RST, which can destroy the response in
  // flight. Bounded by the 2s receive timeout set above.
  ::shutdown(client_fd, SHUT_WR);
  char drain[2048];
  while (::recv(client_fd, drain, sizeof(drain), 0) > 0) {
  }
}

Result<std::string> HttpFetch(int port, const std::string& raw_request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect(127.0.0.1:" + std::to_string(port) +
                            "): " + err);
  }
  timeval timeout{};
  timeout.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  SendAll(fd, raw_request);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (response.empty()) return Status::Internal("empty response");
  return response;
}

}  // namespace rock::obs
