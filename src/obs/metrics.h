#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"

namespace rock::obs {

/// Number of independent shards per counter/histogram. Hot-path updates
/// hash the calling thread onto a shard so concurrent workers touch
/// different cache lines; reads sum across shards. 16 covers the worker
/// counts the benches sweep (4..20) without making reads expensive.
inline constexpr size_t kMetricShards = 16;

/// Shard index of the calling thread (stable for the thread's lifetime).
size_t ThisThreadShard();

/// Monotonically increasing counter, sharded per thread.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (queue depths, sizes). A single
/// atomic: gauges are set at phase boundaries, not in inner loops.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram, sharded per thread like Counter. Bucket i counts
/// observations <= bounds[i]; one implicit +Inf bucket catches the rest.
/// The observed sum is kept in integer nanounits (1e-9) so fetch_add stays
/// a plain integer RMW on every platform.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Cumulative counts per bucket (Prometheus convention), last entry is
  /// the total observation count (+Inf bucket).
  std::vector<uint64_t> CumulativeCounts() const;
  uint64_t Count() const;
  double Sum() const;
  /// Quantile estimate (q in [0,1]) by linear interpolation within the
  /// bucket holding the target rank — Prometheus histogram_quantile
  /// semantics. Returns 0 when empty; observations beyond the last finite
  /// bound clamp to that bound (the +Inf bucket has no width).
  double Percentile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  struct alignas(64) Shard {
    // counts[i] is the *non*-cumulative count of bucket i; size
    // bounds_.size() + 1 (last = +Inf).
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<uint64_t> sum_nano{0};
  };
  std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// Default bucket bounds for operation latencies in seconds (1µs .. 30s).
std::vector<double> LatencyBucketsSeconds();

/// Bucket-interpolation quantile shared by Histogram::Percentile and the
/// exporters (which work from snapshot data, not live histograms).
/// `cumulative` follows the CumulativeCounts() layout: one entry per finite
/// bound plus the trailing +Inf total.
double PercentileFromCumulative(const std::vector<double>& bounds,
                                const std::vector<uint64_t>& cumulative,
                                double q);

/// Process-wide metric registry. Registration (name -> metric) is guarded
/// by a mutex and returns a stable pointer; call sites cache that pointer
/// (typically in a function-local static) so the hot path never locks or
/// hashes a name. Re-registering an existing name returns the same metric.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies on first registration only.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Attaches HELP text to a metric name; exporters emit it (escaped per
  /// the Prometheus exposition format). Last write wins; help survives
  /// Reset().
  void SetHelp(const std::string& name, const std::string& help);

  /// Point-in-time copy of every metric, sorted by name — the exporters'
  /// input.
  struct CounterSample {
    std::string name;
    uint64_t value;
    std::string help;
  };
  struct GaugeSample {
    std::string name;
    int64_t value;
    std::string help;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> cumulative_counts;  // size bounds.size() + 1
    uint64_t count;
    double sum;
    double p50;
    double p95;
    double p99;
    std::string help;
  };
  struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    /// Counter value by name; 0 when absent.
    uint64_t CounterValue(const std::string& name) const;
    /// Gauge value by name; 0 when absent.
    int64_t GaugeValue(const std::string& name) const;
  };
  Snapshot Snap() const;

  /// Resets every registered metric to zero (tests and per-bench runs).
  void Reset();

 private:
  mutable common::Mutex mu_;
  // Linear lookup is fine: call sites cache the returned pointer, so each
  // name is looked up O(1) times. unique_ptr keeps those pointers stable
  // across later insertions (updating a metric through a cached pointer
  // needs no lock — the metrics themselves are atomic-sharded).
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_
      ROCK_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_
      ROCK_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_
      ROCK_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::string>> help_
      ROCK_GUARDED_BY(mu_);
};

}  // namespace rock::obs

