#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace rock::obs {

/// Upper bound on an accepted request's head (request line + headers).
/// Anything longer is answered with 431 and the connection is closed.
inline constexpr size_t kMaxRequestBytes = 16 * 1024;

/// A parsed HTTP/1.1 request head. Only what the telemetry endpoints
/// need: method, target, and the raw header block (unsplit — no endpoint
/// reads individual headers today).
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
};

/// Response as handler output; serialization adds status line, headers,
/// Content-Length, and Connection: close.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Parses the request line out of `raw` (everything up to the first CRLF).
/// InvalidArgument on malformed input: missing tokens, embedded NUL, or a
/// version that is not HTTP/1.x.
Status ParseRequestLine(const std::string& raw, HttpRequest* out);

/// Routes a parsed request to a telemetry endpoint. Pure apart from
/// snapshotting the global registry/tracer: GET|HEAD /metrics,
/// /telemetry.json, /trace.json, /healthz; 404 for unknown targets, 405
/// for other methods. `build_info` and `uptime_seconds` feed /healthz.
HttpResponse HandleTelemetryRequest(const HttpRequest& request,
                                    const std::string& build_info,
                                    double uptime_seconds);

/// Full wire bytes for `response`; `include_body` is false for HEAD (the
/// Content-Length still describes the omitted body).
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool include_body);

/// Reason phrase for the status codes the telemetry plane emits.
const char* HttpStatusReason(int status);

/// The live telemetry plane: a dependency-free HTTP/1.1 server over POSIX
/// sockets on one background thread, serving point-in-time views of the
/// process-global metrics registry and tracer. This is the repo's single
/// audited socket seam (scripts/lint_rock.py forbids socket()/bind()
/// anywhere else) and the seam a future `rockd` binds into.
///
/// Endpoints (GET and HEAD):
///   /metrics         Prometheus text exposition
///   /telemetry.json  counters/gauges/histograms/spans as JSON
///   /trace.json      Chrome trace-event timeline (Perfetto-loadable)
///   /healthz         liveness + build info + uptime
///
/// Connections are handled serially on the server thread; every response
/// closes its connection. Scrape traffic is a few requests per second, so
/// queueing in the listen backlog beats spawning per-connection threads.
class TelemetryServer {
 public:
  struct Options {
    /// TCP port to listen on; 0 picks an ephemeral port (read it back via
    /// port()). Binds 127.0.0.1 only — this is an introspection plane,
    /// not a public API.
    int port = 0;
    /// Free-text build/version string surfaced by /healthz.
    std::string build_info = "rock-dev";
  };

  /// Binds, listens, and starts the serving thread. Fails with Internal
  /// if the port cannot be bound.
  static Result<std::unique_ptr<TelemetryServer>> Start(
      const Options& options);

  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// The bound port (resolved when Options::port was 0).
  int port() const { return port_; }

  /// Stops the accept loop and joins the serving thread. Idempotent.
  void Stop();

 private:
  TelemetryServer(int listen_fd, int port, Options options);
  void Serve();
  void HandleConnection(int client_fd);

  int listen_fd_;
  int port_;
  Options options_;
  double started_seconds_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Sends `raw_request` verbatim to 127.0.0.1:`port` and returns the full
/// raw response (headers + body). Lives here — not in the tests — because
/// it needs the socket calls the lint confines to src/obs/server.cc.
Result<std::string> HttpFetch(int port, const std::string& raw_request);

}  // namespace rock::obs
