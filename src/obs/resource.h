#pragma once

#include <cstdint>

namespace rock::obs {

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
/// Two reads bracket a region; the delta is the region's on-CPU time,
/// excluding time spent blocked or preempted — the `cpu_seconds` column
/// ScopedSpan attributes to each span name.
double ThreadCpuSeconds();

/// Cumulative bytes the calling thread has requested through operator new
/// since it started, counted by the global allocation hook in resource.cc.
/// Monotonic (frees are not subtracted): two reads bracket a region and
/// the delta is the region's allocation volume. Always 0 when the hook is
/// compiled out (ROCK_OBS_ALLOC_TRACK undefined).
uint64_t ThreadAllocBytes();

/// Cumulative operator-new call count for the calling thread; same
/// lifecycle as ThreadAllocBytes().
uint64_t ThreadAllocCount();

/// Whether the allocation hook is compiled in. Exporters use this to mark
/// alloc columns as absent-by-configuration rather than genuinely zero.
constexpr bool AllocTrackingEnabled() {
#ifdef ROCK_OBS_ALLOC_TRACK
  return true;
#else
  return false;
#endif
}

/// Resident set size of this process in bytes, from /proc/self/statm;
/// 0 if unreadable. Cross-checks the per-span alloc_bytes attribution
/// (rock_process_rss_bytes gauge).
uint64_t ProcessRssBytes();

}  // namespace rock::obs
