#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rock::obs {

/// Per-worker wait-vs-run attribution for one WorkerPool::Execute call:
/// parallel arrays indexed by worker id. busy = executing unit bodies,
/// wait = summed submit→dequeue queue wait of the units each worker ran,
/// idle = wall-clock remainder (clamped at zero). Written by the pool,
/// surfaced as the "wait_breakdown" block of /telemetry.json and
/// BENCH_*.json.
struct WorkerBreakdown {
  /// "<mode>-<workers>#<seq>": unique per Execute call within a process.
  std::string label;
  std::string mode;
  int workers = 0;
  double wall_seconds = 0.0;
  std::vector<double> busy_seconds;
  std::vector<double> wait_seconds;
  std::vector<double> idle_seconds;
};

/// Process-global bounded collector of the most recent Execute
/// breakdowns (newest last, oldest evicted past kMaxRetained). The pool
/// publishes one entry per Execute; exporters snapshot them. Reset()
/// accompanies the registry/tracer resets the bench harness performs
/// between benches.
class ScheduleBreakdowns {
 public:
  static constexpr size_t kMaxRetained = 32;

  static ScheduleBreakdowns& Global();

  void Add(WorkerBreakdown breakdown);
  std::vector<WorkerBreakdown> Snapshot() const;
  void Reset();

 private:
  mutable common::Mutex mu_;
  std::deque<WorkerBreakdown> recent_ ROCK_GUARDED_BY(mu_);
};

/// Minimal streaming JSON writer (objects, arrays, scalars, comma
/// placement, string escaping). Shared by the telemetry exporter and the
/// bench harness's BENCH_*.json emitter.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Key inside an object; follow with a value or Begin*.
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Bool(bool value);
  /// Splices pre-rendered JSON in value position (comma placement still
  /// handled). The caller owns its validity — used by the bench emitter to
  /// nest blocks built with a separate JsonWriter.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void Separate();
  std::string out_;
  /// true = a value has been emitted at this nesting level (comma needed).
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

std::string JsonEscape(const std::string& raw);

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double-quote, and newline become \\ , \" , \n.
std::string PromEscapeLabelValue(const std::string& raw);

/// Escapes Prometheus HELP text: backslash and newline only (quotes are
/// legal in HELP).
std::string PromEscapeHelp(const std::string& raw);

/// Prometheus text exposition format (counters, gauges, histograms with
/// cumulative `le` buckets, `_sum`/`_count` and `_p50`/`_p95`/`_p99`
/// series; HELP lines where registered).
std::string ExportPrometheus(const MetricsRegistry::Snapshot& snapshot);

/// Full exposition: the metrics snapshot plus per-span-name latency
/// summaries (`rock_obs_span_seconds{name=...,quantile=...}` with
/// `_sum`/`_count`/`_max`) and the `rock_obs_dropped_spans` gauge. This is
/// what the /metrics endpoint serves.
std::string ExportPrometheus(const MetricsRegistry::Snapshot& snapshot,
                             const std::map<std::string, SpanStats>& spans,
                             uint64_t dropped_spans);

/// Chrome trace-event JSON (Perfetto-loadable): one complete ("X") event
/// per span on its recording thread, thread_name/process_name metadata
/// ("M") from `thread_names`, and an s→f flow-event pair for every span
/// whose `flow_from` resolves to a retained span — the arrow from the
/// scheduler-side submit span to the worker-side execution span.
std::string ExportChromeTrace(
    const std::vector<SpanRecord>& records,
    const std::map<uint32_t, std::string>& thread_names);

/// Everything the process knows about itself, as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {...},
///  "spans": {name: {count, total_seconds, ..., cpu_seconds, alloc_bytes}},
///  "wait_breakdown": [...], "dropped_spans": n}.
std::string ExportJson(const MetricsRegistry::Snapshot& snapshot,
                       const std::map<std::string, SpanStats>& spans,
                       uint64_t dropped_spans,
                       const std::vector<WorkerBreakdown>& breakdowns = {});

/// Emits the telemetry object's fields into an already-open JSON object —
/// the bench emitter nests telemetry next to its own sections.
void AppendTelemetryFields(const MetricsRegistry::Snapshot& snapshot,
                           const std::map<std::string, SpanStats>& spans,
                           uint64_t dropped_spans, JsonWriter* writer,
                           const std::vector<WorkerBreakdown>& breakdowns = {});

/// Emits the fault-injection/recovery accounting as a "faults" object into
/// an already-open JSON object (the bench emitter's `faults` block):
/// injected/retried fault events, backoff slept, worker deaths and the
/// resulting re-placements, chase checkpoints/restores, and the number of
/// units still unrecovered (0 after the recovery layers replayed them —
/// what scripts/check_bench_json.py --require-zero-unrecovered-faults
/// gates on).
void AppendFaultsBlock(const MetricsRegistry::Snapshot& snapshot,
                       JsonWriter* writer);

Status WriteFile(const std::string& path, const std::string& content);

/// Point-in-time view of the process-wide registry + tracer, with the
/// exporters pre-wired. This is what `core::Rock::Telemetry()` returns.
struct TelemetrySnapshot {
  MetricsRegistry::Snapshot metrics;
  std::map<std::string, SpanStats> spans;
  std::vector<SpanRecord> trace;
  std::map<uint32_t, std::string> thread_names;
  std::vector<WorkerBreakdown> breakdowns;
  uint64_t dropped_spans = 0;

  std::string ToJson() const {
    return ExportJson(metrics, spans, dropped_spans, breakdowns);
  }
  std::string ToPrometheus() const {
    return ExportPrometheus(metrics, spans, dropped_spans);
  }
  std::string ToChromeTrace() const {
    return ExportChromeTrace(trace, thread_names);
  }
};

TelemetrySnapshot CaptureGlobalTelemetry();

}  // namespace rock::obs

