#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rock::obs {

/// Minimal streaming JSON writer (objects, arrays, scalars, comma
/// placement, string escaping). Shared by the telemetry exporter and the
/// bench harness's BENCH_*.json emitter.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Key inside an object; follow with a value or Begin*.
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Bool(bool value);

  const std::string& str() const { return out_; }

 private:
  void Separate();
  std::string out_;
  /// true = a value has been emitted at this nesting level (comma needed).
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

std::string JsonEscape(const std::string& raw);

/// Prometheus text exposition format (counters, gauges, histograms with
/// cumulative `le` buckets, `_sum` and `_count` series).
std::string ExportPrometheus(const MetricsRegistry::Snapshot& snapshot);

/// Everything the process knows about itself, as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {...},
///  "spans": {name: {count, total_seconds, max_seconds}},
///  "dropped_spans": n}.
std::string ExportJson(const MetricsRegistry::Snapshot& snapshot,
                       const std::map<std::string, SpanStats>& spans,
                       uint64_t dropped_spans);

/// Emits the telemetry object's fields into an already-open JSON object —
/// the bench emitter nests telemetry next to its own sections.
void AppendTelemetryFields(const MetricsRegistry::Snapshot& snapshot,
                           const std::map<std::string, SpanStats>& spans,
                           uint64_t dropped_spans, JsonWriter* writer);

/// Emits the fault-injection/recovery accounting as a "faults" object into
/// an already-open JSON object (the bench emitter's `faults` block):
/// injected/retried fault events, backoff slept, worker deaths and the
/// resulting re-placements, chase checkpoints/restores, and the number of
/// units still unrecovered (0 after the recovery layers replayed them —
/// what scripts/check_bench_json.py --require-zero-unrecovered-faults
/// gates on).
void AppendFaultsBlock(const MetricsRegistry::Snapshot& snapshot,
                       JsonWriter* writer);

Status WriteFile(const std::string& path, const std::string& content);

/// Point-in-time view of the process-wide registry + tracer, with the
/// exporters pre-wired. This is what `core::Rock::Telemetry()` returns.
struct TelemetrySnapshot {
  MetricsRegistry::Snapshot metrics;
  std::map<std::string, SpanStats> spans;
  uint64_t dropped_spans = 0;

  std::string ToJson() const {
    return ExportJson(metrics, spans, dropped_spans);
  }
  std::string ToPrometheus() const { return ExportPrometheus(metrics); }
};

TelemetrySnapshot CaptureGlobalTelemetry();

}  // namespace rock::obs

