#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/mutex.h"

namespace rock::obs {

/// One finished span. `name` must be a string literal (or otherwise outlive
/// the tracer): the ring stores the pointer, never a copy, so recording a
/// span does no allocation.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  /// Cross-thread causality: id of the span (usually on another thread)
  /// that enqueued the work this span executes; 0 = none. The Chrome trace
  /// exporter turns it into a flow event scheduler → worker.
  uint64_t flow_from = 0;
  const char* name = "";
  /// Start offset from the tracer's epoch (steady clock), and duration.
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  /// On-CPU time of the recording thread over the span's lifetime
  /// (CLOCK_THREAD_CPUTIME_ID delta). duration − cpu is time blocked or
  /// preempted. 0 when the profiler plane is compiled out.
  double cpu_seconds = 0.0;
  /// Bytes requested through operator new on the recording thread during
  /// the span (ROCK_OBS_ALLOC_TRACK builds; 0 otherwise).
  uint64_t alloc_bytes = 0;
  uint32_t thread = 0;
};

/// Aggregate of all finished spans sharing one name. Percentiles are
/// nearest-rank over the retained ring spans — the per-phase latency
/// attribution the exporters surface as p50/p95/p99.
struct SpanStats {
  uint64_t count = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Summed resource attribution across the name's spans — the
  /// cpu_seconds / alloc_bytes columns every exporter surfaces.
  double cpu_seconds = 0.0;
  uint64_t alloc_bytes = 0;
};

/// Trace id of the calling thread (stable for the thread's lifetime);
/// SpanRecord::thread and the thread-name registry key off it.
uint32_t ThisThreadTraceId();

/// Ring capacity from the ROCK_OBS_TRACE_CAPACITY environment variable
/// (rounded up to a power of two by the Tracer); `fallback` when unset,
/// empty, or not a positive integer.
size_t TraceCapacityFromEnv(size_t fallback);

/// Default capacity of the process-global tracer: large enough that the
/// scale benches' per-unit spans never lap the ring (CI gates on zero
/// dropped spans). ~10 MB of slots; override via ROCK_OBS_TRACE_CAPACITY.
inline constexpr size_t kGlobalTraceCapacity = size_t{1} << 17;

/// Bounded MPMC span sink. Writers reserve a slot with one atomic
/// fetch_add, then publish the record under that slot's one-byte latch
/// (acquire/release exchange — uncontended unless the ring laps itself or
/// a snapshot reads the same slot, so the hot path is two uncontended
/// atomic RMWs plus a ~64-byte copy). When the ring wraps, the oldest
/// spans are overwritten; `dropped()` counts them. Each slot remembers the
/// reservation sequence of the record it holds, so a snapshot racing a
/// wrap never returns a record out of its window (the overwritten span
/// counts as dropped instead).
class Tracer {
 public:
  /// Capacity is rounded up to a power of two.
  explicit Tracer(size_t capacity = 1 << 14);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-global tracer; capacity kGlobalTraceCapacity unless
  /// ROCK_OBS_TRACE_CAPACITY overrides it (read once, at first use).
  static Tracer& Global();

  void Record(const SpanRecord& record);

  /// Seconds since this tracer's construction (span timestamps' epoch).
  double Now() const;

  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Copies the retained spans, oldest first. Records published after the
  /// scan started may be excluded (they appear in the next snapshot).
  std::vector<SpanRecord> Snapshot() const;

  /// Count/total/max plus p50/p95/p99 per span name over the retained
  /// spans — the benches' per-phase timing table.
  std::map<std::string, SpanStats> AggregateByName() const;

  /// Spans overwritten because the ring lapped. Read it *after* Snapshot()
  /// when exporting both: a wrap racing the snapshot then shows up here
  /// rather than being silently absent from both numbers.
  uint64_t dropped() const;

  size_t capacity() const { return capacity_; }

  /// Names the calling thread in trace exports ("main", "worker-3", ...).
  /// Last write wins; names survive Reset().
  void SetThisThreadName(const std::string& name);

  /// Thread-name registry snapshot, keyed by ThisThreadTraceId().
  std::map<uint32_t, std::string> ThreadNames() const;

  /// Forgets every retained span (tests and per-bench runs).
  void Reset();

 private:
  struct Slot;
  // Slot contents form the lock-free ring, synchronized through next_.
  // ROCK_ANALYZE(unguarded-ok: set in the constructor, immutable after)
  size_t capacity_;
  Slot* slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> next_id_{0};
  // ROCK_ANALYZE(unguarded-ok: set in the constructor, immutable after)
  double epoch_seconds_;
  mutable common::Mutex names_mu_;
  std::map<uint32_t, std::string> thread_names_ ROCK_GUARDED_BY(names_mu_);
};

/// The innermost open span on this thread (0 = none); maintained by
/// ScopedSpan so nested spans link to their parent automatically.
uint64_t CurrentSpanId();

/// RAII span: records [construction, destruction) into a tracer under the
/// current thread's span stack. `flow_from` stamps the record with the id
/// of the (other-thread) span that caused this work — see
/// SpanRecord::flow_from.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, Tracer::Global()) {}
  ScopedSpan(const char* name, uint64_t flow_from)
      : ScopedSpan(name, Tracer::Global(), flow_from) {}
  ScopedSpan(const char* name, Tracer& tracer, uint64_t flow_from = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t id() const { return record_.id; }

 private:
  Tracer& tracer_;
  SpanRecord record_;
  uint64_t saved_current_;
#ifndef ROCK_OBS_DISABLE_PROFILER
  double cpu_start_ = 0.0;
  uint64_t alloc_start_ = 0;
  /// Open-span registry bookkeeping: what this thread's slot held before
  /// this span opened (the parent span), restored on destruction.
  const char* saved_open_name_ = nullptr;
  uint64_t saved_open_id_ = 0;
  double saved_open_start_ = 0.0;
#endif
};

#ifndef ROCK_OBS_DISABLE_PROFILER
/// A span currently open on some thread, as seen by the open-span
/// registry ScopedSpan maintains (innermost span per thread). The stall
/// watchdog scans these to find spans stuck past their deadline. Reads
/// are seqlock-consistent per slot; if two threads hash to one slot the
/// losing thread's span is simply not listed (best-effort diagnostics,
/// never a correctness input).
struct OpenSpanInfo {
  uint32_t thread = 0;
  uint64_t id = 0;
  const char* name = "";
  /// Tracer-epoch start, comparable with Tracer::Global().Now().
  double start_seconds = 0.0;
};

/// Snapshot of every currently-open innermost span (one per live thread
/// that has a span open). Safe to call from any thread, including while
/// spans open and close concurrently.
std::vector<OpenSpanInfo> OpenSpans();
#endif

}  // namespace rock::obs

/// Span macros used by instrumented code paths. Compiled to nothing when
/// ROCK_OBS_DISABLE_SPANS is defined (the -DROCK_OBS_SPANS=OFF build used
/// to measure instrumentation overhead). ROCK_OBS_SPAN_FLOW additionally
/// links the span to a submitting span on another thread.
#ifdef ROCK_OBS_DISABLE_SPANS
#define ROCK_OBS_SPAN(name)
#define ROCK_OBS_SPAN_FLOW(name, flow_from)
#else
#define ROCK_OBS_CONCAT_INNER(a, b) a##b
#define ROCK_OBS_CONCAT(a, b) ROCK_OBS_CONCAT_INNER(a, b)
#define ROCK_OBS_SPAN(name) \
  ::rock::obs::ScopedSpan ROCK_OBS_CONCAT(rock_obs_span_, __LINE__)(name)
#define ROCK_OBS_SPAN_FLOW(name, flow_from)                            \
  ::rock::obs::ScopedSpan ROCK_OBS_CONCAT(rock_obs_span_, __LINE__)( \
      name, static_cast<uint64_t>(flow_from))
#endif
