#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rock::obs {

/// One finished span. `name` must be a string literal (or otherwise outlive
/// the tracer): the ring stores the pointer, never a copy, so recording a
/// span does no allocation.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  const char* name = "";
  /// Start offset from the tracer's epoch (steady clock), and duration.
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  uint32_t thread = 0;
};

/// Aggregate of all finished spans sharing one name.
struct SpanStats {
  uint64_t count = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Bounded MPMC span sink. Writers reserve a slot with one atomic
/// fetch_add, then publish the record under that slot's one-byte latch
/// (acquire/release exchange — uncontended unless the ring laps itself or
/// a snapshot reads the same slot, so the hot path is two uncontended
/// atomic RMWs plus a 48-byte copy). When the ring wraps, the oldest spans
/// are overwritten; `dropped()` counts them.
class Tracer {
 public:
  /// Capacity is rounded up to a power of two.
  explicit Tracer(size_t capacity = 1 << 14);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();

  void Record(const SpanRecord& record);

  /// Seconds since this tracer's construction (span timestamps' epoch).
  double Now() const;

  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Copies the retained spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// Count/total/max per span name over the retained spans — the benches'
  /// per-phase timing table.
  std::map<std::string, SpanStats> AggregateByName() const;

  /// Spans overwritten because the ring lapped.
  uint64_t dropped() const;

  /// Forgets every retained span (tests and per-bench runs).
  void Reset();

 private:
  struct Slot;
  size_t capacity_;
  Slot* slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> next_id_{0};
  double epoch_seconds_;
};

/// The innermost open span on this thread (0 = none); maintained by
/// ScopedSpan so nested spans link to their parent automatically.
uint64_t CurrentSpanId();

/// RAII span: records [construction, destruction) into a tracer under the
/// current thread's span stack.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, Tracer::Global()) {}
  ScopedSpan(const char* name, Tracer& tracer);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t id() const { return record_.id; }

 private:
  Tracer& tracer_;
  SpanRecord record_;
  uint64_t saved_current_;
};

}  // namespace rock::obs

/// Span macro used by instrumented code paths. Compiled to nothing when
/// ROCK_OBS_DISABLE_SPANS is defined (the -DROCK_OBS_SPANS=OFF build used
/// to measure instrumentation overhead).
#ifdef ROCK_OBS_DISABLE_SPANS
#define ROCK_OBS_SPAN(name)
#else
#define ROCK_OBS_CONCAT_INNER(a, b) a##b
#define ROCK_OBS_CONCAT(a, b) ROCK_OBS_CONCAT_INNER(a, b)
#define ROCK_OBS_SPAN(name) \
  ::rock::obs::ScopedSpan ROCK_OBS_CONCAT(rock_obs_span_, __LINE__)(name)
#endif

