#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace rock::obs {

/// Stall detection thresholds. A span open longer than
/// span_deadline_seconds, or a non-empty pool queue with no unit
/// completing for progress_deadline_seconds, counts as a stall and
/// produces one diagnostic dump per episode.
struct WatchdogOptions {
  double span_deadline_seconds = 30.0;
  double progress_deadline_seconds = 30.0;
  double poll_interval_seconds = 1.0;
  /// Crash-dump path the diagnostic bundle is appended to; "" keeps the
  /// bundle on stderr only.
  std::string dump_path;
};

#ifndef ROCK_OBS_DISABLE_PROFILER

/// Background stall detector: polls the open-span registry (spans stuck
/// past their deadline) and the pool's progress counters (queued units
/// with nothing completing). On a stall it dumps a diagnostic bundle —
/// open spans with ages, queue depth, executed-unit counters, and the
/// sampling profiler's partial profile when one is running — to stderr
/// and the configured dump path, and bumps
/// rock_obs_watchdog_stalls_total. Detection is per-episode: a stuck span
/// is reported once, not once per poll.
class StallWatchdog {
 public:
  static StallWatchdog& Global();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Spawns the polling thread. FailedPrecondition if already running.
  Status Start(const WatchdogOptions& options = {});

  /// Joins the polling thread. Safe to call when not running.
  Status Stop();

  bool running() const;

  /// Stall episodes detected since process start (tests and telemetry).
  uint64_t stalls_detected() const;

  /// Renders the diagnostic bundle the watchdog would dump right now.
  /// Public so tests (and crash paths) can exercise it directly.
  std::string BuildDump(const std::string& reason) const;

 private:
  StallWatchdog() = default;
  void Poll();
  void ReportStall(const std::string& reason, const WatchdogOptions& options);

  struct State;
  static State& GetState();
};

#endif  // !ROCK_OBS_DISABLE_PROFILER

/// Engine-facing shims, no-ops (Unimplemented) when the profiler plane is
/// compiled out so call sites build with zero watchdog references.
#ifdef ROCK_OBS_DISABLE_PROFILER
inline Status StartGlobalWatchdog(const WatchdogOptions& = {}) {
  return Status::Unimplemented("watchdog compiled out (ROCK_OBS_PROFILER=OFF)");
}
inline Status StopGlobalWatchdog() {
  return Status::Unimplemented("watchdog compiled out (ROCK_OBS_PROFILER=OFF)");
}
#else
Status StartGlobalWatchdog(const WatchdogOptions& options = {});
Status StopGlobalWatchdog();
#endif

}  // namespace rock::obs
