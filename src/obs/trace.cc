#include "src/obs/trace.h"

#include <chrono>

namespace rock::obs {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

thread_local uint64_t t_current_span = 0;

}  // namespace

/// One ring slot: a single-byte latch publishing `record`. The latch is
/// held only for the duration of a 48-byte copy, so contention (ring lap
/// or concurrent snapshot) resolves in nanoseconds.
struct Tracer::Slot {
  std::atomic<bool> busy{false};
  std::atomic<bool> filled{false};
  SpanRecord record;

  void Lock() {
    while (busy.exchange(true, std::memory_order_acquire)) {
    }
  }
  void Unlock() { busy.store(false, std::memory_order_release); }
};

Tracer::Tracer(size_t capacity)
    : capacity_(RoundUpPow2(capacity == 0 ? 1 : capacity)),
      slots_(new Slot[RoundUpPow2(capacity == 0 ? 1 : capacity)]),
      epoch_seconds_(SteadySeconds()) {}

Tracer::~Tracer() { delete[] slots_; }

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

double Tracer::Now() const { return SteadySeconds() - epoch_seconds_; }

void Tracer::Record(const SpanRecord& record) {
  uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index & (capacity_ - 1)];
  slot.Lock();
  slot.record = record;
  slot.filled.store(true, std::memory_order_relaxed);
  slot.Unlock();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  // Oldest retained slot first. `next_` may advance while we scan; the
  // per-slot latch keeps every copied record internally consistent.
  uint64_t written = next_.load(std::memory_order_acquire);
  uint64_t begin = written > capacity_ ? written - capacity_ : 0;
  out.reserve(static_cast<size_t>(written - begin));
  for (uint64_t index = begin; index < written; ++index) {
    Slot& slot = slots_[index & (capacity_ - 1)];
    slot.Lock();
    bool filled = slot.filled.load(std::memory_order_relaxed);
    SpanRecord record = slot.record;
    slot.Unlock();
    if (filled) out.push_back(record);
  }
  return out;
}

std::map<std::string, SpanStats> Tracer::AggregateByName() const {
  std::map<std::string, SpanStats> out;
  for (const SpanRecord& record : Snapshot()) {
    SpanStats& stats = out[record.name];
    ++stats.count;
    stats.total_seconds += record.duration_seconds;
    if (record.duration_seconds > stats.max_seconds) {
      stats.max_seconds = record.duration_seconds;
    }
  }
  return out;
}

uint64_t Tracer::dropped() const {
  uint64_t written = next_.load(std::memory_order_relaxed);
  return written > capacity_ ? written - capacity_ : 0;
}

void Tracer::Reset() {
  // Walk every slot under its latch rather than resetting next_: concurrent
  // writers may hold reserved indices, and monotonic next_ keeps their
  // slots valid.
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].Lock();
    slots_[i].filled.store(false, std::memory_order_relaxed);
    slots_[i].Unlock();
  }
  next_.store(0, std::memory_order_release);
  next_id_.store(0, std::memory_order_relaxed);
}

uint64_t CurrentSpanId() { return t_current_span; }

ScopedSpan::ScopedSpan(const char* name, Tracer& tracer)
    : tracer_(tracer), saved_current_(t_current_span) {
  record_.id = tracer_.NextSpanId();
  record_.parent_id = saved_current_;
  record_.name = name;
  record_.thread = ThisThreadTraceId();
  record_.start_seconds = tracer_.Now();
  t_current_span = record_.id;
}

ScopedSpan::~ScopedSpan() {
  record_.duration_seconds = tracer_.Now() - record_.start_seconds;
  t_current_span = saved_current_;
  tracer_.Record(record_);
}

}  // namespace rock::obs
