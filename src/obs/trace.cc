#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#ifndef ROCK_OBS_DISABLE_PROFILER
#include "src/obs/resource.h"
#endif

namespace rock::obs {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

thread_local uint64_t t_current_span = 0;

#ifndef ROCK_OBS_DISABLE_PROFILER
/// Open-span registry: one seqlocked slot per thread (hashed by trace id),
/// holding the thread's innermost open span. Writers are the owning
/// thread only; the watchdog reads concurrently. Writer protocol: bump
/// seq to odd, write fields, bump seq to even. A reader retries while seq
/// is odd or changed across the read. Hash collisions (>= kOpenSpanSlots
/// live threads) make colliding threads overwrite each other — tolerable,
/// the registry is a diagnostic surface, never a correctness input.
constexpr size_t kOpenSpanSlots = 256;

struct OpenSlot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> id{0};
  std::atomic<double> start{0.0};
  std::atomic<uint32_t> thread{0};
};

OpenSlot g_open_slots[kOpenSpanSlots];

OpenSlot& OpenSlotForThisThread() {
  return g_open_slots[ThisThreadTraceId() % kOpenSpanSlots];
}

void PublishOpenSpan(OpenSlot& slot, const char* name, uint64_t id,
                     double start, uint32_t thread) {
  slot.seq.fetch_add(1, std::memory_order_acq_rel);  // odd: write in flight
  slot.name.store(name, std::memory_order_relaxed);
  slot.id.store(id, std::memory_order_relaxed);
  slot.start.store(start, std::memory_order_relaxed);
  slot.thread.store(thread, std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_release);  // even: stable
}
#endif  // !ROCK_OBS_DISABLE_PROFILER

/// Nearest-rank percentile over an already-sorted duration list.
double NearestRank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

}  // namespace

uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

size_t TraceCapacityFromEnv(size_t fallback) {
  const char* raw = std::getenv("ROCK_OBS_TRACE_CAPACITY");  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0) return fallback;
  return static_cast<size_t>(value);
}

/// One ring slot: a single-byte latch publishing `record` plus the
/// reservation sequence that wrote it. The latch is held only for the
/// duration of a ~64-byte copy, so contention (ring lap or concurrent
/// snapshot) resolves in nanoseconds. `seq` lets Snapshot() reject a
/// record that a concurrent wrap wrote over the index it is scanning —
/// without it, a snapshot racing a lap could attribute a brand-new span
/// to the oldest retained index while dropped() already counted the span
/// that used to live there.
struct Tracer::Slot {
  std::atomic<bool> busy{false};
  bool filled = false;
  uint64_t seq = 0;
  SpanRecord record;

  void Lock() {
    while (busy.exchange(true, std::memory_order_acquire)) {
    }
  }
  void Unlock() { busy.store(false, std::memory_order_release); }
};

Tracer::Tracer(size_t capacity)
    : capacity_(RoundUpPow2(capacity == 0 ? 1 : capacity)),
      slots_(new Slot[RoundUpPow2(capacity == 0 ? 1 : capacity)]),
      epoch_seconds_(SteadySeconds()) {}

Tracer::~Tracer() { delete[] slots_; }

Tracer& Tracer::Global() {
  static Tracer* tracer =
      new Tracer(TraceCapacityFromEnv(kGlobalTraceCapacity));
  return *tracer;
}

double Tracer::Now() const { return SteadySeconds() - epoch_seconds_; }

void Tracer::Record(const SpanRecord& record) {
  uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index & (capacity_ - 1)];
  slot.Lock();
  slot.record = record;
  slot.seq = index;
  slot.filled = true;
  slot.Unlock();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  // Oldest retained slot first. `next_` may advance while we scan; the
  // per-slot latch keeps every copied record internally consistent, and
  // the slot's `seq` confirms the record still belongs to the index we
  // asked for (a lap during the scan leaves the record out — it will be
  // reflected in dropped() when read after this snapshot).
  uint64_t written = next_.load(std::memory_order_acquire);
  uint64_t begin = written > capacity_ ? written - capacity_ : 0;
  out.reserve(static_cast<size_t>(written - begin));
  for (uint64_t index = begin; index < written; ++index) {
    Slot& slot = slots_[index & (capacity_ - 1)];
    slot.Lock();
    bool keep = slot.filled && slot.seq == index;
    SpanRecord record = slot.record;
    slot.Unlock();
    if (keep) out.push_back(record);
  }
  return out;
}

std::map<std::string, SpanStats> Tracer::AggregateByName() const {
  std::map<std::string, SpanStats> out;
  std::map<std::string, std::vector<double>> durations;
  for (const SpanRecord& record : Snapshot()) {
    SpanStats& stats = out[record.name];
    ++stats.count;
    stats.total_seconds += record.duration_seconds;
    if (record.duration_seconds > stats.max_seconds) {
      stats.max_seconds = record.duration_seconds;
    }
    stats.cpu_seconds += record.cpu_seconds;
    stats.alloc_bytes += record.alloc_bytes;
    durations[record.name].push_back(record.duration_seconds);
  }
  for (auto& [name, values] : durations) {
    std::sort(values.begin(), values.end());
    SpanStats& stats = out[name];
    stats.p50_seconds = NearestRank(values, 0.50);
    stats.p95_seconds = NearestRank(values, 0.95);
    stats.p99_seconds = NearestRank(values, 0.99);
  }
  return out;
}

uint64_t Tracer::dropped() const {
  uint64_t written = next_.load(std::memory_order_relaxed);
  return written > capacity_ ? written - capacity_ : 0;
}

void Tracer::SetThisThreadName(const std::string& name) {
  common::MutexLock lock(names_mu_);
  thread_names_[ThisThreadTraceId()] = name;
}

std::map<uint32_t, std::string> Tracer::ThreadNames() const {
  common::MutexLock lock(names_mu_);
  return thread_names_;
}

void Tracer::Reset() {
  // Walk every slot under its latch rather than resetting next_: concurrent
  // writers may hold reserved indices, and monotonic next_ keeps their
  // slots valid.
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].Lock();
    slots_[i].filled = false;
    slots_[i].seq = 0;
    slots_[i].Unlock();
  }
  next_.store(0, std::memory_order_release);
  next_id_.store(0, std::memory_order_relaxed);
}

uint64_t CurrentSpanId() { return t_current_span; }

#ifndef ROCK_OBS_DISABLE_PROFILER
std::vector<OpenSpanInfo> OpenSpans() {
  std::vector<OpenSpanInfo> out;
  for (OpenSlot& slot : g_open_slots) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before & 1) continue;  // write in flight, retry
      // Acquire loads on the fields pin the seq re-check after them (an
      // acquire load forbids later operations from reordering above it),
      // so no fence is needed — which also keeps TSan happy: GCC rejects
      // atomic_thread_fence outright under -fsanitize=thread.
      OpenSpanInfo info;
      info.name = slot.name.load(std::memory_order_acquire);
      info.id = slot.id.load(std::memory_order_acquire);
      info.start_seconds = slot.start.load(std::memory_order_acquire);
      info.thread = slot.thread.load(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != before) continue;
      if (info.name != nullptr && info.id != 0) out.push_back(info);
      break;
    }
  }
  return out;
}
#endif

ScopedSpan::ScopedSpan(const char* name, Tracer& tracer, uint64_t flow_from)
    : tracer_(tracer), saved_current_(t_current_span) {
  record_.id = tracer_.NextSpanId();
  record_.parent_id = saved_current_;
  record_.flow_from = flow_from;
  record_.name = name;
  record_.thread = ThisThreadTraceId();
  record_.start_seconds = tracer_.Now();
  t_current_span = record_.id;
#ifndef ROCK_OBS_DISABLE_PROFILER
  OpenSlot& slot = OpenSlotForThisThread();
  // Owning thread is the only writer: plain relaxed reads see its own
  // last write (the parent span, or empty).
  saved_open_name_ = slot.name.load(std::memory_order_relaxed);
  saved_open_id_ = slot.id.load(std::memory_order_relaxed);
  saved_open_start_ = slot.start.load(std::memory_order_relaxed);
  PublishOpenSpan(slot, name, record_.id, record_.start_seconds,
                  record_.thread);
  cpu_start_ = ThreadCpuSeconds();
  alloc_start_ = ThreadAllocBytes();
#endif
}

ScopedSpan::~ScopedSpan() {
#ifndef ROCK_OBS_DISABLE_PROFILER
  record_.cpu_seconds = ThreadCpuSeconds() - cpu_start_;
  record_.alloc_bytes = ThreadAllocBytes() - alloc_start_;
  PublishOpenSpan(OpenSlotForThisThread(), saved_open_name_, saved_open_id_,
                  saved_open_start_, record_.thread);
#endif
  record_.duration_seconds = tracer_.Now() - record_.start_seconds;
  t_current_span = saved_current_;
  tracer_.Record(record_);
}

}  // namespace rock::obs
