#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace rock::obs {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

thread_local uint64_t t_current_span = 0;

/// Nearest-rank percentile over an already-sorted duration list.
double NearestRank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

}  // namespace

uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

size_t TraceCapacityFromEnv(size_t fallback) {
  const char* raw = std::getenv("ROCK_OBS_TRACE_CAPACITY");  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0) return fallback;
  return static_cast<size_t>(value);
}

/// One ring slot: a single-byte latch publishing `record` plus the
/// reservation sequence that wrote it. The latch is held only for the
/// duration of a ~64-byte copy, so contention (ring lap or concurrent
/// snapshot) resolves in nanoseconds. `seq` lets Snapshot() reject a
/// record that a concurrent wrap wrote over the index it is scanning —
/// without it, a snapshot racing a lap could attribute a brand-new span
/// to the oldest retained index while dropped() already counted the span
/// that used to live there.
struct Tracer::Slot {
  std::atomic<bool> busy{false};
  bool filled = false;
  uint64_t seq = 0;
  SpanRecord record;

  void Lock() {
    while (busy.exchange(true, std::memory_order_acquire)) {
    }
  }
  void Unlock() { busy.store(false, std::memory_order_release); }
};

Tracer::Tracer(size_t capacity)
    : capacity_(RoundUpPow2(capacity == 0 ? 1 : capacity)),
      slots_(new Slot[RoundUpPow2(capacity == 0 ? 1 : capacity)]),
      epoch_seconds_(SteadySeconds()) {}

Tracer::~Tracer() { delete[] slots_; }

Tracer& Tracer::Global() {
  static Tracer* tracer =
      new Tracer(TraceCapacityFromEnv(kGlobalTraceCapacity));
  return *tracer;
}

double Tracer::Now() const { return SteadySeconds() - epoch_seconds_; }

void Tracer::Record(const SpanRecord& record) {
  uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index & (capacity_ - 1)];
  slot.Lock();
  slot.record = record;
  slot.seq = index;
  slot.filled = true;
  slot.Unlock();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  // Oldest retained slot first. `next_` may advance while we scan; the
  // per-slot latch keeps every copied record internally consistent, and
  // the slot's `seq` confirms the record still belongs to the index we
  // asked for (a lap during the scan leaves the record out — it will be
  // reflected in dropped() when read after this snapshot).
  uint64_t written = next_.load(std::memory_order_acquire);
  uint64_t begin = written > capacity_ ? written - capacity_ : 0;
  out.reserve(static_cast<size_t>(written - begin));
  for (uint64_t index = begin; index < written; ++index) {
    Slot& slot = slots_[index & (capacity_ - 1)];
    slot.Lock();
    bool keep = slot.filled && slot.seq == index;
    SpanRecord record = slot.record;
    slot.Unlock();
    if (keep) out.push_back(record);
  }
  return out;
}

std::map<std::string, SpanStats> Tracer::AggregateByName() const {
  std::map<std::string, SpanStats> out;
  std::map<std::string, std::vector<double>> durations;
  for (const SpanRecord& record : Snapshot()) {
    SpanStats& stats = out[record.name];
    ++stats.count;
    stats.total_seconds += record.duration_seconds;
    if (record.duration_seconds > stats.max_seconds) {
      stats.max_seconds = record.duration_seconds;
    }
    durations[record.name].push_back(record.duration_seconds);
  }
  for (auto& [name, values] : durations) {
    std::sort(values.begin(), values.end());
    SpanStats& stats = out[name];
    stats.p50_seconds = NearestRank(values, 0.50);
    stats.p95_seconds = NearestRank(values, 0.95);
    stats.p99_seconds = NearestRank(values, 0.99);
  }
  return out;
}

uint64_t Tracer::dropped() const {
  uint64_t written = next_.load(std::memory_order_relaxed);
  return written > capacity_ ? written - capacity_ : 0;
}

void Tracer::SetThisThreadName(const std::string& name) {
  common::MutexLock lock(names_mu_);
  thread_names_[ThisThreadTraceId()] = name;
}

std::map<uint32_t, std::string> Tracer::ThreadNames() const {
  common::MutexLock lock(names_mu_);
  return thread_names_;
}

void Tracer::Reset() {
  // Walk every slot under its latch rather than resetting next_: concurrent
  // writers may hold reserved indices, and monotonic next_ keeps their
  // slots valid.
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].Lock();
    slots_[i].filled = false;
    slots_[i].seq = 0;
    slots_[i].Unlock();
  }
  next_.store(0, std::memory_order_release);
  next_id_.store(0, std::memory_order_relaxed);
}

uint64_t CurrentSpanId() { return t_current_span; }

ScopedSpan::ScopedSpan(const char* name, Tracer& tracer, uint64_t flow_from)
    : tracer_(tracer), saved_current_(t_current_span) {
  record_.id = tracer_.NextSpanId();
  record_.parent_id = saved_current_;
  record_.flow_from = flow_from;
  record_.name = name;
  record_.thread = ThisThreadTraceId();
  record_.start_seconds = tracer_.Now();
  t_current_span = record_.id;
}

ScopedSpan::~ScopedSpan() {
  record_.duration_seconds = tracer_.Now() - record_.start_seconds;
  t_current_span = saved_current_;
  tracer_.Record(record_);
}

}  // namespace rock::obs
