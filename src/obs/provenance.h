#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/exporters.h"
#include "src/obs/metrics.h"

namespace rock::obs {

/// Why-provenance for the chase (the data-level observability layer on top
/// of the metrics/tracing subsystem): every deduced fix records its full
/// witness — the rule, the bound tuples, the premise cells read (classified
/// as ground truth, prior fix, or raw data), and the ML-predicate
/// invocations with their scores — forming a DAG whose depth-bounded
/// expansion is a proof tree. `core::Rock::Explain()` renders it.
///
/// Compile-time switch: -DROCK_OBS_PROVENANCE=OFF defines
/// ROCK_OBS_DISABLE_PROVENANCE, which turns every capture site into a
/// branch on this false constant — the compiler removes witness
/// construction and graph growth entirely, so the overhead of the ON build
/// is measurable against a true zero baseline.
#ifdef ROCK_OBS_DISABLE_PROVENANCE
inline constexpr bool kProvenanceEnabled = false;
#else
inline constexpr bool kProvenanceEnabled = true;
#endif

/// Where a premise cell's value came from when the rule application read it.
enum class PremiseSource {
  kGroundTruth,  // validated by Γ
  kPriorFix,     // validated by an earlier chase deduction
  kRaw,          // read from the dirty data (relaxed mode only)
  kOracle,       // answered by a side structure (temporal order DAG, KG)
};

const char* PremiseSourceName(PremiseSource source);

/// One tuple binding of the satisfying valuation: rule variable t<var> was
/// bound to tuple `tid` of relation `rel`.
struct WitnessTuple {
  int var = -1;
  int rel = -1;
  int64_t tid = -1;
};

/// One cell the precondition read, with its value at capture time and its
/// validation status. `upstream` is the provenance node that validated the
/// cell (ground-truth leaf or prior fix), -1 for raw reads.
struct PremiseCell {
  int rel = -1;
  int64_t tid = -1;
  int attr = -1;
  std::string value;
  PremiseSource source = PremiseSource::kRaw;
  int64_t upstream = -1;
};

/// One ML-predicate invocation inside the witness: which model ran, the
/// score it produced, the threshold it was held to, and the verdict.
struct MlInvocation {
  std::string model;
  std::string detail;  // predicate shape, e.g. "MER(t0[com], t1[com])"
  double score = 0.0;
  double threshold = 0.0;
  bool passed = true;
};

/// The full witness of one rule application: the satisfying valuation's
/// bindings plus everything its precondition consumed.
struct Witness {
  std::string rule_text;
  std::vector<WitnessTuple> tuples;
  std::vector<PremiseCell> premises;
  std::vector<MlInvocation> ml_calls;
};

/// What the fix-store mutators take alongside each deduction. A null
/// witness means the fix has no rule application behind it (ground truth,
/// polynomial repair, direct store manipulation in tests) — it becomes a
/// leaf node in the proof DAG.
struct ProvenanceRef {
  const Witness* witness = nullptr;
};

/// Node kinds in the provenance DAG.
enum class ProvKind {
  kGroundTruth,        // Γ leaf
  kFix,                // an applied chase deduction
  kConflictCandidate,  // a derivation that lost a conflict resolution
};

const char* ProvKindName(ProvKind kind);

/// One deduction in the provenance DAG. `upstream` are the node ids of the
/// validated premises this deduction consumed (deduplicated); expanding
/// them recursively reaches ground-truth or raw-read leaves.
struct ProvenanceNode {
  int64_t id = -1;
  ProvKind kind = ProvKind::kFix;
  std::string rule_id;
  /// Rendered fix target (FixRecord::ToString of the recorded fix).
  std::string target;
  Witness witness;
  std::vector<int64_t> upstream;
};

/// A depth-bounded expansion of the DAG from one root: the proof tree the
/// Explain API returns. A synthetic root (node == nullptr) with children
/// models multi-step answers such as a merge path.
struct ProofTree {
  struct TreeNode {
    const ProvenanceNode* node = nullptr;
    /// True when the depth bound cut the expansion below this node.
    bool truncated = false;
    std::vector<TreeNode> children;
  };
  TreeNode root;
  /// Label printed for a synthetic root ("merge path", ...).
  std::string synthetic_label;

  bool empty() const {
    return root.node == nullptr && root.children.empty();
  }

  /// Indented human-readable rendering.
  std::string ToText() const;
  /// Nested JSON rendering (parses back with json::Parse).
  std::string ToJson() const;
};

/// Whole-run provenance aggregate: fix counts by rule, proof-depth
/// histogram, and the ML-vs-logic premise split.
struct ProvenanceSummary {
  uint64_t nodes = 0;
  uint64_t conflict_candidates = 0;
  std::map<std::string, uint64_t> fixes_by_rule;
  /// depth_histogram[d-1] = nodes whose proof depth is d (capped at 16).
  std::vector<uint64_t> depth_histogram;
  uint64_t max_depth = 0;
  uint64_t ml_calls = 0;
  uint64_t premises_ground_truth = 0;
  uint64_t premises_prior_fix = 0;
  uint64_t premises_raw = 0;
  uint64_t premises_oracle = 0;
};

/// The provenance DAG plus the union-find proof forest that explains EID
/// merges. Thread contract matches the owning FixStore: mutations happen
/// only in the chase's serial apply phases; the parallel evaluation phase
/// never touches it.
class ProvenanceGraph {
 public:
  /// Appends a node, assigns and returns its id.
  int64_t Add(ProvenanceNode node);

  const ProvenanceNode* Get(int64_t id) const;
  size_t size() const { return nodes_.size(); }
  const std::vector<ProvenanceNode>& nodes() const { return nodes_; }

  /// Proof depth of a node: 1 for leaves, 1 + max(upstream) otherwise.
  /// Memoized; the DAG is append-only so cached depths stay valid.
  uint64_t ProofDepth(int64_t id) const;

  /// Depth-bounded proof tree rooted at `id`.
  ProofTree Expand(int64_t id, int max_depth = 32) const;

  // ---- Merge proof forest (union-find explanation) ----

  /// Records that the merge fix `node_id` united the classes of `a` and
  /// `b` (the classic proof-forest construction: re-root a's tree at a,
  /// then hang it under b labeled with the deduction).
  void LinkMerge(int64_t a, int64_t b, int64_t node_id);

  /// The deductions on the proof-forest path between `a` and `b` — the
  /// minimal set of merge fixes explaining why the two eids coincide.
  /// Empty when they were never connected through recorded merges.
  std::vector<int64_t> MergePath(int64_t a, int64_t b) const;

  /// Proof tree over the merge path (synthetic root, one child per step).
  ProofTree ExplainMerge(int64_t a, int64_t b, int max_depth = 32) const;

  /// Aggregate over the whole DAG.
  ProvenanceSummary Summarize() const;

  /// Exports the summary of nodes added since the previous call into the
  /// global MetricsRegistry (counters rock_prov_*, histogram
  /// rock_prov_proof_depth, gauge rock_prov_max_depth) so provenance rides
  /// the existing exporters and BENCH_*.json files.
  void ExportDeltaToMetrics();

 private:
  struct ForestEdge {
    int64_t parent = -1;
    int64_t label = -1;  // provenance node id of the merge deduction
  };

  std::vector<int64_t> PathToRoot(int64_t eid) const;
  void Reroot(int64_t eid);

  std::vector<ProvenanceNode> nodes_;
  mutable std::vector<uint64_t> depth_cache_;
  std::unordered_map<int64_t, ForestEdge> forest_;
  size_t exported_watermark_ = 0;
};

/// Appends the `provenance` block of BENCH_<name>.json from a metrics
/// snapshot: {"enabled", "nodes", "max_depth", "ml_calls", "premises":
/// {ground_truth, prior_fix, raw, oracle}, "fixes_by_rule": {...}}.
/// All values come from the rock_prov_* metrics ExportDeltaToMetrics
/// published, so the block reflects every chase the process ran.
void AppendProvenanceBlock(const MetricsRegistry::Snapshot& snapshot,
                           JsonWriter* writer);

/// Registry name of the per-rule fix counter ("rock_prov_fixes_rule:φ1").
std::string ProvRuleCounterName(const std::string& rule_id);

}  // namespace rock::obs

