#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace rock::obs {

size_t ThisThreadShard() {
  // A per-thread id handed out on first use distributes threads over the
  // shards round-robin; hashing std::this_thread::get_id() clusters badly
  // on some libstdc++ builds where ids are consecutive pointers.
  static std::atomic<size_t> next{0};
  thread_local size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id % kMetricShards;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) s.counts[i] = 0;
  }
}

void Histogram::Observe(double value) {
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& s = shards_[ThisThreadShard()];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value) && value > 0) {
    s.sum_nano.fetch_add(static_cast<uint64_t>(value * 1e9),
                         std::memory_order_relaxed);
  }
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      out[i] += s.counts[i].load(std::memory_order_relaxed);
    }
  }
  for (size_t i = 1; i < out.size(); ++i) out[i] += out[i - 1];
  return out;
}

uint64_t Histogram::Count() const {
  std::vector<uint64_t> cumulative = CumulativeCounts();
  return cumulative.empty() ? 0 : cumulative.back();
}

double Histogram::Sum() const {
  uint64_t nano = 0;
  for (const Shard& s : shards_) {
    nano += s.sum_nano.load(std::memory_order_relaxed);
  }
  return static_cast<double>(nano) * 1e-9;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
    s.sum_nano.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Percentile(double q) const {
  return PercentileFromCumulative(bounds_, CumulativeCounts(), q);
}

std::vector<double> LatencyBucketsSeconds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 30.0};
}

double PercentileFromCumulative(const std::vector<double>& bounds,
                                const std::vector<uint64_t>& cumulative,
                                double q) {
  if (cumulative.empty() || cumulative.back() == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t total = cumulative.back();
  // Target rank in [1, total]; the bucket whose cumulative count first
  // reaches it holds the estimate.
  double rank = q * static_cast<double>(total);
  if (rank < 1.0) rank = 1.0;
  size_t bucket = 0;
  while (bucket < cumulative.size() &&
         static_cast<double>(cumulative[bucket]) < rank) {
    ++bucket;
  }
  if (bucket >= bounds.size()) {
    // +Inf bucket: no upper edge to interpolate toward; clamp to the last
    // finite bound (or 0 when there are no finite bounds at all).
    return bounds.empty() ? 0.0 : bounds.back();
  }
  double lower = bucket == 0 ? 0.0 : bounds[bucket - 1];
  double upper = bounds[bucket];
  uint64_t below = bucket == 0 ? 0 : cumulative[bucket - 1];
  uint64_t in_bucket = cumulative[bucket] - below;
  if (in_bucket == 0) return upper;
  double fraction = (rank - static_cast<double>(below)) /
                    static_cast<double>(in_bucket);
  return lower + (upper - lower) * fraction;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

template <typename Vec, typename Make>
auto* FindOrCreate(Vec& vec, const std::string& name, const Make& make) {
  for (auto& [existing, metric] : vec) {
    if (existing == name) return metric.get();
  }
  vec.emplace_back(name, make());
  return vec.back().second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  common::MutexLock lock(mu_);
  return FindOrCreate(counters_, name,
                      [] { return std::make_unique<Counter>(); });
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  common::MutexLock lock(mu_);
  return FindOrCreate(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  common::MutexLock lock(mu_);
  return FindOrCreate(histograms_, name, [&bounds] {
    return std::make_unique<Histogram>(std::move(bounds));
  });
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  common::MutexLock lock(mu_);
  for (auto& [existing, text] : help_) {
    if (existing == name) {
      text = help;
      return;
    }
  }
  help_.emplace_back(name, help);
}

uint64_t MetricsRegistry::Snapshot::CounterValue(
    const std::string& name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

int64_t MetricsRegistry::Snapshot::GaugeValue(
    const std::string& name) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  common::MutexLock lock(mu_);
  Snapshot snap;
  auto help_for = [this](const std::string& name)
                      ROCK_REQUIRES(mu_) -> std::string {
    for (const auto& [existing, text] : help_) {
      if (existing == name) return text;
    }
    return {};
  };
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value(), help_for(name)});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value(), help_for(name)});
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    sample.cumulative_counts = histogram->CumulativeCounts();
    sample.count = sample.cumulative_counts.empty()
                       ? 0
                       : sample.cumulative_counts.back();
    sample.sum = histogram->Sum();
    sample.p50 = PercentileFromCumulative(sample.bounds,
                                          sample.cumulative_counts, 0.50);
    sample.p95 = PercentileFromCumulative(sample.bounds,
                                          sample.cumulative_counts, 0.95);
    sample.p99 = PercentileFromCumulative(sample.bounds,
                                          sample.cumulative_counts, 0.99);
    sample.help = help_for(name);
    snap.histograms.push_back(std::move(sample));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::Reset() {
  common::MutexLock lock(mu_);
  // Pointers held by call sites stay valid: metrics are zeroed in place.
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->Set(0);
  }
  for (auto& [name, histogram] : histograms_) {
    (void)name;
    histogram->Reset();
  }
}

}  // namespace rock::obs
