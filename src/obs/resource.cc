#include "src/obs/resource.h"

#include <time.h>
#include <unistd.h>

#include <cstdio>

#ifdef ROCK_OBS_ALLOC_TRACK
#include <cstdlib>
#include <new>
#endif

namespace rock::obs {

#ifdef ROCK_OBS_ALLOC_TRACK
namespace internal {
// Constant-initialized PODs: safe to bump from the very first allocation,
// before any static constructor has run.
thread_local uint64_t t_alloc_bytes = 0;
thread_local uint64_t t_alloc_count = 0;
}  // namespace internal
#endif

double ThreadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

uint64_t ThreadAllocBytes() {
#ifdef ROCK_OBS_ALLOC_TRACK
  return internal::t_alloc_bytes;
#else
  return 0;
#endif
}

uint64_t ThreadAllocCount() {
#ifdef ROCK_OBS_ALLOC_TRACK
  return internal::t_alloc_count;
#else
  return 0;
#endif
}

uint64_t ProcessRssBytes() {
  // statm field 2 is resident pages; no allocation on this path so the
  // gauge can be polled from telemetry capture without perturbing the
  // numbers it reports.
  FILE* fp = std::fopen("/proc/self/statm", "r");
  if (fp == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long rss_pages = 0;
  int fields = std::fscanf(fp, "%llu %llu", &size_pages, &rss_pages);
  std::fclose(fp);
  if (fields != 2) return 0;
  long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return static_cast<uint64_t>(rss_pages) * static_cast<uint64_t>(page);
}

}  // namespace rock::obs

#ifdef ROCK_OBS_ALLOC_TRACK

namespace {

inline void* CountedAlloc(size_t size) {
  rock::obs::internal::t_alloc_bytes += size;
  ++rock::obs::internal::t_alloc_count;
  return std::malloc(size != 0 ? size : 1);
}

inline void* CountedAlignedAlloc(size_t size, size_t align) {
  rock::obs::internal::t_alloc_bytes += size;
  ++rock::obs::internal::t_alloc_count;
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align, size != 0 ? size : align) != 0) {
    return nullptr;
  }
  return ptr;
}

[[noreturn]] void ThrowBadAlloc() { throw std::bad_alloc(); }

}  // namespace

// Global allocation hook: every operator new funnels through malloc with a
// thread-local byte/count bump first. Sanitizers intercept malloc/free
// below this layer, so ASan/TSan checking is unaffected. Frees are not
// tracked — span attribution wants allocation volume, not live bytes.
void* operator new(size_t size) {
  void* ptr = CountedAlloc(size);
  if (ptr == nullptr) ThrowBadAlloc();
  return ptr;
}

void* operator new[](size_t size) {
  void* ptr = CountedAlloc(size);
  if (ptr == nullptr) ThrowBadAlloc();
  return ptr;
}

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(size_t size, std::align_val_t align) {
  void* ptr = CountedAlignedAlloc(size, static_cast<size_t>(align));
  if (ptr == nullptr) ThrowBadAlloc();
  return ptr;
}

void* operator new[](size_t size, std::align_val_t align) {
  void* ptr = CountedAlignedAlloc(size, static_cast<size_t>(align));
  if (ptr == nullptr) ThrowBadAlloc();
  return ptr;
}

void* operator new(size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}

void* operator new[](size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}

#endif  // ROCK_OBS_ALLOC_TRACK
