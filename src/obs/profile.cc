#include "src/obs/profile.h"

#ifndef ROCK_OBS_DISABLE_PROFILER

#include <cxxabi.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "src/common/mutex.h"
#include "src/obs/exporters.h"

// glibc only gained the public sigev_notify_thread_id accessor recently;
// older headers spell the SIGEV_THREAD_ID target via the internal union.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace rock::obs {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

pid_t ThisTid() { return static_cast<pid_t>(::syscall(SYS_gettid)); }

/// Deepest raw stack the handler captures. Deeper frames are truncated at
/// the root end — the leaf (hot) frames always survive.
constexpr int kMaxFrames = 48;

/// One raw sample, written inside the SIGPROF handler: PCs only, never
/// strings. `ready` is the publication flag a concurrent snapshot
/// honours, so a half-written sample is never symbolized.
struct Sample {
  std::atomic<bool> ready{false};
  int depth = 0;
  uint32_t tid = 0;
  void* pcs[kMaxFrames] = {};
};

/// Preallocated, never-wrapping sample arena. Reservation is one relaxed
/// fetch_add; overflow increments `dropped` instead of overwriting, so a
/// long run degrades to a truncated profile, never a corrupt one. Buffers
/// are retired (leaked) rather than freed: a SIGPROF already in flight
/// when the profiler stops may still dereference the pointer a beat
/// later.
struct SampleBuffer {
  explicit SampleBuffer(size_t cap)
      : capacity(cap), samples(new Sample[cap]) {}
  const size_t capacity;
  Sample* const samples;
  std::atomic<uint64_t> reserved{0};
  std::atomic<uint64_t> dropped{0};
};

std::atomic<SampleBuffer*> g_buffer{nullptr};
std::atomic<bool> g_armed{false};

/// Async-signal-safe by construction: atomics, a raw gettid syscall, and
/// backtrace(3) — whose lazy libgcc initialization Start() forces outside
/// signal context before arming any timer. errno is saved and restored so
/// an interrupted syscall's caller never sees it clobbered.
void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ucontext*/) {
  int saved_errno = errno;
  if (g_armed.load(std::memory_order_acquire)) {
    SampleBuffer* buffer = g_buffer.load(std::memory_order_acquire);
    if (buffer != nullptr) {
      uint64_t index = buffer->reserved.fetch_add(1, std::memory_order_relaxed);
      if (index < buffer->capacity) {
        Sample& sample = buffer->samples[index];
        sample.tid = static_cast<uint32_t>(ThisTid());
        sample.depth = ::backtrace(sample.pcs, kMaxFrames);
        sample.ready.store(true, std::memory_order_release);
      } else {
        buffer->dropped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  errno = saved_errno;
}

struct ThreadTimer {
  timer_t timer{};
  bool armed = false;
};

struct ProfilerState {
  common::Mutex mu;
  std::map<pid_t, ThreadTimer> threads ROCK_GUARDED_BY(mu);
  bool running ROCK_GUARDED_BY(mu) = false;
  bool handler_installed ROCK_GUARDED_BY(mu) = false;
  ProfileOptions options ROCK_GUARDED_BY(mu);
  double started_seconds ROCK_GUARDED_BY(mu) = 0.0;
  double duration_seconds ROCK_GUARDED_BY(mu) = 0.0;
};

ProfilerState& State() {
  static ProfilerState* state = new ProfilerState();
  return *state;
}

Status ArmTimer(pid_t tid, int hz, timer_t* out) {
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = tid;
  timer_t timer{};
  // CLOCK_THREAD_CPUTIME_ID ticks only while the target thread is on a
  // CPU: idle threads are never interrupted, busy threads are sampled in
  // proportion to the CPU they burn.
  if (::timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &timer) != 0) {
    return Status::Internal(std::string("timer_create(tid=") +
                            std::to_string(tid) + "): " +
                            std::strerror(errno));
  }
  itimerspec spec{};
  long interval_ns = 1000000000L / (hz > 0 ? hz : 1);
  spec.it_interval.tv_nsec = interval_ns;
  spec.it_value.tv_nsec = interval_ns;
  if (::timer_settime(timer, 0, &spec, nullptr) != 0) {
    std::string err = std::strerror(errno);
    ::timer_delete(timer);
    return Status::Internal("timer_settime: " + err);
  }
  *out = timer;
  return Status::Ok();
}

/// Unregisters a thread from the profiled set when it exits, so Start()
/// never arms a timer at a dead tid.
struct ThreadProfileGuard {
  bool registered = false;
  ~ThreadProfileGuard() {
    if (registered) CpuProfiler::Global().UnregisterThisThread();
  }
};
thread_local ThreadProfileGuard t_profile_guard;

/// Demangles one backtrace_symbols(3) line:
/// "module(_ZN4rock...+0x1f) [0x55...]" -> "rock::...". Falls back to the
/// module basename or the raw address when there is no symbol (static
/// functions, stripped binaries). Never returns a string containing ';'
/// or whitespace, the folded format's separators.
std::string SymbolizeFrame(const char* raw, void* pc) {
  std::string name;
  if (raw != nullptr) {
    const char* open = std::strchr(raw, '(');
    if (open != nullptr && open[1] != '\0' && open[1] != ')' &&
        open[1] != '+') {
      const char* end = open + 1;
      while (*end != '\0' && *end != '+' && *end != ')') ++end;
      std::string mangled(open + 1, end);
      int demangle_status = 0;
      char* demangled = abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr,
                                            &demangle_status);
      if (demangle_status == 0 && demangled != nullptr) {
        name = demangled;
      } else {
        name = mangled;
      }
      std::free(demangled);
    } else {
      // No symbol: keep "module+0xaddr" so the frame is at least
      // attributable to a library.
      const char* slash = std::strrchr(raw, '/');
      std::string module(slash != nullptr ? slash + 1 : raw);
      size_t paren = module.find('(');
      if (paren != std::string::npos) module.resize(paren);
      char addr[32];
      std::snprintf(addr, sizeof(addr), "+%p", pc);
      name = module + addr;
    }
  }
  if (name.empty()) {
    char addr[32];
    std::snprintf(addr, sizeof(addr), "%p", pc);
    name = addr;
  }
  for (char& c : name) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = ':';
  }
  return name;
}

bool IsHandlerFrame(const std::string& name) {
  return name.find("SigprofHandler") != std::string::npos ||
         name.find("__restore_rt") != std::string::npos ||
         name.find("killpg") != std::string::npos;
}

}  // namespace

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

Status CpuProfiler::Start(const ProfileOptions& options) {
  if (options.sample_hz <= 0 || options.sample_hz > 10000) {
    return Status::InvalidArgument("sample_hz must be in (0, 10000]");
  }
  if (options.max_samples == 0) {
    return Status::InvalidArgument("max_samples must be positive");
  }
  ProfilerState& state = State();
  common::MutexLock lock(state.mu);
  if (state.running) {
    return Status::FailedPrecondition("profiler already running");
  }
  if (!state.handler_installed) {
    struct sigaction sa {};
    sa.sa_sigaction = SigprofHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
      return Status::Internal(std::string("sigaction(SIGPROF): ") +
                              std::strerror(errno));
    }
    state.handler_installed = true;
  }
  // backtrace(3) lazily loads libgcc's unwinder on first use — which may
  // malloc and dlopen, neither async-signal-safe. Force that
  // initialization here, before any timer can fire.
  void* prime[4];
  ::backtrace(prime, 4);

  SampleBuffer* buffer = g_buffer.load(std::memory_order_acquire);
  if (buffer == nullptr || buffer->capacity < options.max_samples) {
    // The old buffer is retired, not freed — see SampleBuffer.
    g_buffer.store(new SampleBuffer(options.max_samples),
                   std::memory_order_release);
    buffer = g_buffer.load(std::memory_order_acquire);
  } else {
    uint64_t used = buffer->reserved.load(std::memory_order_relaxed);
    if (used > buffer->capacity) used = buffer->capacity;
    for (uint64_t i = 0; i < used; ++i) {
      buffer->samples[i].ready.store(false, std::memory_order_relaxed);
    }
    buffer->reserved.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }

  state.options = options;
  state.started_seconds = SteadySeconds();
  state.duration_seconds = 0.0;
  state.running = true;

  // The caller profiles too, without an explicit RegisterThisThread().
  pid_t self = ThisTid();
  state.threads.try_emplace(self);
  t_profile_guard.registered = true;

  g_armed.store(true, std::memory_order_release);
  size_t armed_count = 0;
  for (auto& [tid, entry] : state.threads) {
    if (entry.armed) continue;
    // A thread that exited between registering and now fails to arm;
    // that is not an error for the run as a whole, so keep going.
    if (ArmTimer(tid, options.sample_hz, &entry.timer).ok()) {
      entry.armed = true;
      ++armed_count;
    }
  }
  if (armed_count == 0) {
    state.running = false;
    g_armed.store(false, std::memory_order_release);
    return Status::Internal("no thread could be armed for sampling");
  }
  return Status::Ok();
}

Status CpuProfiler::Stop() {
  ProfilerState& state = State();
  common::MutexLock lock(state.mu);
  if (!state.running) {
    return Status::FailedPrecondition("profiler not running");
  }
  g_armed.store(false, std::memory_order_release);
  for (auto& [tid, entry] : state.threads) {
    if (entry.armed) {
      ::timer_delete(entry.timer);
      entry.armed = false;
    }
  }
  state.duration_seconds = SteadySeconds() - state.started_seconds;
  state.running = false;
  return Status::Ok();
}

bool CpuProfiler::running() const {
  ProfilerState& state = State();
  common::MutexLock lock(state.mu);
  return state.running;
}

void CpuProfiler::RegisterThisThread() {
  ProfilerState& state = State();
  pid_t tid = ThisTid();
  common::MutexLock lock(state.mu);
  auto [it, inserted] = state.threads.try_emplace(tid);
  t_profile_guard.registered = true;
  if (state.running && !it->second.armed) {
    if (ArmTimer(tid, state.options.sample_hz, &it->second.timer).ok()) {
      it->second.armed = true;
    }
  }
}

void CpuProfiler::UnregisterThisThread() {
  ProfilerState& state = State();
  pid_t tid = ThisTid();
  common::MutexLock lock(state.mu);
  auto it = state.threads.find(tid);
  if (it == state.threads.end()) return;
  if (it->second.armed) ::timer_delete(it->second.timer);
  state.threads.erase(it);
}

ProfileSnapshot CpuProfiler::TakeSnapshot() const {
  ProfileSnapshot snap;
  snap.enabled = true;
  {
    ProfilerState& state = State();
    common::MutexLock lock(state.mu);
    snap.running = state.running;
    snap.sample_hz = state.options.sample_hz;
    snap.duration_seconds = state.running
                                ? SteadySeconds() - state.started_seconds
                                : state.duration_seconds;
  }
  SampleBuffer* buffer = g_buffer.load(std::memory_order_acquire);
  if (buffer == nullptr) return snap;
  uint64_t reserved = buffer->reserved.load(std::memory_order_acquire);
  uint64_t count = reserved < buffer->capacity ? reserved : buffer->capacity;
  snap.dropped = buffer->dropped.load(std::memory_order_relaxed);

  // Pass 1: copy ready samples and collect unique PCs.
  std::vector<const Sample*> samples;
  samples.reserve(count);
  std::map<void*, std::string> names;
  for (uint64_t i = 0; i < count; ++i) {
    const Sample& sample = buffer->samples[i];
    if (!sample.ready.load(std::memory_order_acquire)) continue;
    samples.push_back(&sample);
    for (int f = 0; f < sample.depth; ++f) names.emplace(sample.pcs[f], "");
  }
  snap.samples = samples.size();

  // Pass 2: symbolize each unique PC once (backtrace_symbols + demangle —
  // allocation-heavy, which is exactly why it happens here and never in
  // the handler).
  {
    std::vector<void*> pcs;
    pcs.reserve(names.size());
    for (auto& [pc, name] : names) pcs.push_back(pc);
    char** raw = ::backtrace_symbols(pcs.data(), static_cast<int>(pcs.size()));
    for (size_t i = 0; i < pcs.size(); ++i) {
      names[pcs[i]] = SymbolizeFrame(raw != nullptr ? raw[i] : nullptr,
                                     pcs[i]);
    }
    std::free(raw);
  }

  // Pass 3: fold. backtrace() is leaf-first and its top frames are the
  // handler plus the kernel's signal trampoline; everything above the
  // last handler frame is the interrupted stack, emitted root-first as
  // flamegraph.pl expects.
  for (const Sample* sample : samples) {
    int start = 0;
    for (int f = 0; f < sample->depth; ++f) {
      if (IsHandlerFrame(names[sample->pcs[f]])) start = f + 1;
    }
    if (start >= sample->depth) start = sample->depth > 2 ? 2 : 0;
    std::string folded;
    for (int f = sample->depth - 1; f >= start; --f) {
      if (!folded.empty()) folded += ';';
      folded += names[sample->pcs[f]];
    }
    if (!folded.empty()) ++snap.folded[folded];
  }
  return snap;
}

std::string CpuProfiler::Folded() const {
  ProfileSnapshot snap = TakeSnapshot();
  std::string out;
  for (const auto& [stack, samples] : snap.folded) {
    out += stack;
    out += ' ';
    out += std::to_string(samples);
    out += '\n';
  }
  return out;
}

std::string CpuProfiler::Json() const {
  ProfileSnapshot snap = TakeSnapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("enabled").Bool(snap.enabled);
  w.Key("running").Bool(snap.running);
  w.Key("sample_hz").Int(snap.sample_hz);
  w.Key("samples").Uint(snap.samples);
  w.Key("dropped").Uint(snap.dropped);
  w.Key("duration_seconds").Number(snap.duration_seconds);
  w.Key("stacks").BeginArray();
  for (const auto& [stack, samples] : snap.folded) {
    w.BeginObject();
    w.Key("stack").String(stack);
    w.Key("count").Uint(samples);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void ProfilerRegisterThisThread() {
  CpuProfiler::Global().RegisterThisThread();
}

Status StartGlobalProfiler(const ProfileOptions& options) {
  return CpuProfiler::Global().Start(options);
}

Status StopGlobalProfiler() { return CpuProfiler::Global().Stop(); }

}  // namespace rock::obs

#endif  // !ROCK_OBS_DISABLE_PROFILER
