#include "src/obs/exporters.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/obs/resource.h"

namespace rock::obs {
namespace {

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return value > 0 ? "1e999" : "-1e999";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

ScheduleBreakdowns& ScheduleBreakdowns::Global() {
  static ScheduleBreakdowns* instance = new ScheduleBreakdowns();
  return *instance;
}

void ScheduleBreakdowns::Add(WorkerBreakdown breakdown) {
  common::MutexLock lock(mu_);
  recent_.push_back(std::move(breakdown));
  while (recent_.size() > kMaxRetained) recent_.pop_front();
}

std::vector<WorkerBreakdown> ScheduleBreakdowns::Snapshot() const {
  common::MutexLock lock(mu_);
  return std::vector<WorkerBreakdown>(recent_.begin(), recent_.end());
}

void ScheduleBreakdowns::Reset() {
  common::MutexLock lock(mu_);
  recent_.clear();
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Separate();
  // JSON has no Inf/NaN; clamp to null.
  out_ += std::isfinite(value) ? FormatDouble(value) : "null";
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  Separate();
  out_ += json;
  return *this;
}

std::string PromEscapeLabelValue(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromEscapeHelp(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

void AppendHelpLine(const std::string& name, const std::string& help,
                    std::string* out) {
  if (help.empty()) return;
  *out += "# HELP " + name + " " + PromEscapeHelp(help) + "\n";
}

}  // namespace

std::string ExportPrometheus(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  char buf[256];
  for (const auto& counter : snapshot.counters) {
    AppendHelpLine(counter.name, counter.help, &out);
    out += "# TYPE " + counter.name + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", counter.name.c_str(),
                  counter.value);
    out += buf;
  }
  for (const auto& gauge : snapshot.gauges) {
    AppendHelpLine(gauge.name, gauge.help, &out);
    out += "# TYPE " + gauge.name + " gauge\n";
    std::snprintf(buf, sizeof(buf), "%s %" PRId64 "\n", gauge.name.c_str(),
                  gauge.value);
    out += buf;
  }
  for (const auto& histogram : snapshot.histograms) {
    AppendHelpLine(histogram.name, histogram.help, &out);
    out += "# TYPE " + histogram.name + " histogram\n";
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %" PRIu64 "\n",
                    histogram.name.c_str(),
                    FormatDouble(histogram.bounds[i]).c_str(),
                    histogram.cumulative_counts[i]);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  histogram.name.c_str(), histogram.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum %s\n", histogram.name.c_str(),
                  FormatDouble(histogram.sum).c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n",
                  histogram.name.c_str(), histogram.count);
    out += buf;
    // Bucket-interpolated percentiles as companion gauges, so phase
    // latencies compare across runs without a PromQL evaluator.
    const struct {
      const char* suffix;
      double value;
    } percentiles[] = {{"_p50", histogram.p50},
                       {"_p95", histogram.p95},
                       {"_p99", histogram.p99}};
    for (const auto& p : percentiles) {
      out += "# TYPE " + histogram.name + p.suffix + " gauge\n";
      std::snprintf(buf, sizeof(buf), "%s%s %s\n", histogram.name.c_str(),
                    p.suffix, FormatDouble(p.value).c_str());
      out += buf;
    }
  }
  return out;
}

std::string ExportPrometheus(const MetricsRegistry::Snapshot& snapshot,
                             const std::map<std::string, SpanStats>& spans,
                             uint64_t dropped_spans) {
  std::string out = ExportPrometheus(snapshot);
  char buf[256];
  if (!spans.empty()) {
    // One summary family for every span name: quantile-labelled latency
    // series plus the conventional _sum/_count companions.
    out +=
        "# HELP rock_obs_span_seconds Span latency percentiles "
        "(nearest-rank over the retained trace ring)\n";
    out += "# TYPE rock_obs_span_seconds summary\n";
    for (const auto& [name, stats] : spans) {
      std::string label = PromEscapeLabelValue(name);
      const struct {
        const char* quantile;
        double value;
      } quantiles[] = {{"0.5", stats.p50_seconds},
                       {"0.95", stats.p95_seconds},
                       {"0.99", stats.p99_seconds}};
      for (const auto& q : quantiles) {
        std::snprintf(buf, sizeof(buf),
                      "rock_obs_span_seconds{name=\"%s\",quantile=\"%s\"} "
                      "%s\n",
                      label.c_str(), q.quantile,
                      FormatDouble(q.value).c_str());
        out += buf;
      }
      std::snprintf(buf, sizeof(buf),
                    "rock_obs_span_seconds_sum{name=\"%s\"} %s\n",
                    label.c_str(), FormatDouble(stats.total_seconds).c_str());
      out += buf;
      std::snprintf(buf, sizeof(buf),
                    "rock_obs_span_seconds_count{name=\"%s\"} %" PRIu64 "\n",
                    label.c_str(), stats.count);
      out += buf;
    }
    out += "# TYPE rock_obs_span_seconds_max gauge\n";
    for (const auto& [name, stats] : spans) {
      std::snprintf(buf, sizeof(buf),
                    "rock_obs_span_seconds_max{name=\"%s\"} %s\n",
                    PromEscapeLabelValue(name).c_str(),
                    FormatDouble(stats.max_seconds).c_str());
      out += buf;
    }
    // Resource attribution per span name: summed on-CPU time and
    // allocation volume of the name's spans.
    out +=
        "# HELP rock_obs_span_cpu_seconds_total On-CPU time summed over "
        "the name's spans (CLOCK_THREAD_CPUTIME_ID deltas)\n";
    out += "# TYPE rock_obs_span_cpu_seconds_total counter\n";
    for (const auto& [name, stats] : spans) {
      std::snprintf(buf, sizeof(buf),
                    "rock_obs_span_cpu_seconds_total{name=\"%s\"} %s\n",
                    PromEscapeLabelValue(name).c_str(),
                    FormatDouble(stats.cpu_seconds).c_str());
      out += buf;
    }
    out +=
        "# HELP rock_obs_span_alloc_bytes_total Bytes requested through "
        "operator new during the name's spans (ROCK_OBS_ALLOC_TRACK "
        "builds)\n";
    out += "# TYPE rock_obs_span_alloc_bytes_total counter\n";
    for (const auto& [name, stats] : spans) {
      std::snprintf(buf, sizeof(buf),
                    "rock_obs_span_alloc_bytes_total{name=\"%s\"} %" PRIu64
                    "\n",
                    PromEscapeLabelValue(name).c_str(), stats.alloc_bytes);
      out += buf;
    }
  }
  // Scrapers gate on the drop gauge; make sure it is present even when the
  // snapshot was taken before the registry ever saw it.
  bool have_drop_gauge = false;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "rock_obs_dropped_spans") {
      have_drop_gauge = true;
      break;
    }
  }
  if (!have_drop_gauge) {
    out += "# TYPE rock_obs_dropped_spans gauge\n";
    std::snprintf(buf, sizeof(buf), "rock_obs_dropped_spans %" PRIu64 "\n",
                  dropped_spans);
    out += buf;
  }
  return out;
}

void AppendTelemetryFields(const MetricsRegistry::Snapshot& snapshot,
                           const std::map<std::string, SpanStats>& spans,
                           uint64_t dropped_spans, JsonWriter* writer,
                           const std::vector<WorkerBreakdown>& breakdowns) {
  JsonWriter& w = *writer;
  w.Key("counters").BeginObject();
  for (const auto& counter : snapshot.counters) {
    w.Key(counter.name).Uint(counter.value);
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& gauge : snapshot.gauges) {
    w.Key(gauge.name).Int(gauge.value);
  }
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& histogram : snapshot.histograms) {
    w.Key(histogram.name).BeginObject();
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      w.BeginObject();
      w.Key("le").Number(histogram.bounds[i]);
      w.Key("count").Uint(histogram.cumulative_counts[i]);
      w.EndObject();
    }
    w.EndArray();
    w.Key("count").Uint(histogram.count);
    w.Key("sum").Number(histogram.sum);
    w.Key("p50").Number(histogram.p50);
    w.Key("p95").Number(histogram.p95);
    w.Key("p99").Number(histogram.p99);
    w.EndObject();
  }
  w.EndObject();

  w.Key("spans").BeginObject();
  for (const auto& [name, stats] : spans) {
    w.Key(name).BeginObject();
    w.Key("count").Uint(stats.count);
    w.Key("total_seconds").Number(stats.total_seconds);
    w.Key("max_seconds").Number(stats.max_seconds);
    w.Key("p50_seconds").Number(stats.p50_seconds);
    w.Key("p95_seconds").Number(stats.p95_seconds);
    w.Key("p99_seconds").Number(stats.p99_seconds);
    w.Key("cpu_seconds").Number(stats.cpu_seconds);
    w.Key("alloc_bytes").Uint(stats.alloc_bytes);
    w.EndObject();
  }
  w.EndObject();

  w.Key("wait_breakdown").BeginArray();
  for (const WorkerBreakdown& breakdown : breakdowns) {
    w.BeginObject();
    w.Key("label").String(breakdown.label);
    w.Key("mode").String(breakdown.mode);
    w.Key("workers").Int(breakdown.workers);
    w.Key("wall_seconds").Number(breakdown.wall_seconds);
    w.Key("busy_seconds").BeginArray();
    for (double v : breakdown.busy_seconds) w.Number(v);
    w.EndArray();
    w.Key("wait_seconds").BeginArray();
    for (double v : breakdown.wait_seconds) w.Number(v);
    w.EndArray();
    w.Key("idle_seconds").BeginArray();
    for (double v : breakdown.idle_seconds) w.Number(v);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("dropped_spans").Uint(dropped_spans);
}

void AppendFaultsBlock(const MetricsRegistry::Snapshot& snapshot,
                       JsonWriter* writer) {
  JsonWriter& w = *writer;
  w.Key("faults").BeginObject();
  w.Key("injected")
      .Uint(snapshot.CounterValue("rock_par_faults_injected_total"));
  w.Key("retries")
      .Uint(snapshot.CounterValue("rock_par_unit_retries_total"));
  w.Key("backoff_micros")
      .Uint(snapshot.CounterValue("rock_par_backoff_micros_total"));
  w.Key("worker_deaths")
      .Uint(snapshot.CounterValue("rock_par_worker_deaths_total"));
  w.Key("crashes_suppressed")
      .Uint(snapshot.CounterValue("rock_par_crashes_suppressed_total"));
  w.Key("steals_on_death")
      .Uint(snapshot.CounterValue("rock_par_steals_on_death_total"));
  w.Key("units_reassigned")
      .Uint(snapshot.CounterValue("rock_par_units_reassigned_total"));
  w.Key("checkpoints")
      .Uint(snapshot.CounterValue("rock_chase_checkpoints_total"));
  w.Key("checkpoint_restores")
      .Uint(snapshot.CounterValue("rock_chase_checkpoint_restores_total"));
  // Gauge, not counter: the pool adds abandoned units, the recovery
  // layers subtract them after replay, so a healthy bench reports 0.
  w.Key("unrecovered")
      .Int(snapshot.GaugeValue("rock_faults_unrecovered_units"));
  w.EndObject();
}

std::string ExportJson(const MetricsRegistry::Snapshot& snapshot,
                       const std::map<std::string, SpanStats>& spans,
                       uint64_t dropped_spans,
                       const std::vector<WorkerBreakdown>& breakdowns) {
  JsonWriter w;
  w.BeginObject();
  AppendTelemetryFields(snapshot, spans, dropped_spans, &w, breakdowns);
  w.EndObject();
  return w.str();
}

std::string ExportChromeTrace(
    const std::vector<SpanRecord>& records,
    const std::map<uint32_t, std::string>& thread_names) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();

  w.BeginObject();
  w.Key("ph").String("M");
  w.Key("name").String("process_name");
  w.Key("pid").Int(1);
  w.Key("tid").Int(0);
  w.Key("args").BeginObject().Key("name").String("rock").EndObject();
  w.EndObject();
  for (const auto& [tid, name] : thread_names) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("thread_name");
    w.Key("pid").Int(1);
    w.Key("tid").Int(static_cast<int64_t>(tid));
    w.Key("args").BeginObject().Key("name").String(name).EndObject();
    w.EndObject();
  }

  // Span id -> record, to resolve flow sources. Retained spans only: a
  // flow whose source fell off the ring is silently skipped.
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& record : records) by_id[record.id] = &record;

  for (const SpanRecord& record : records) {
    double ts_micros = record.start_seconds * 1e6;
    w.BeginObject();
    w.Key("ph").String("X");
    w.Key("name").String(record.name);
    w.Key("cat").String("rock");
    w.Key("pid").Int(1);
    w.Key("tid").Int(static_cast<int64_t>(record.thread));
    w.Key("ts").Number(ts_micros);
    w.Key("dur").Number(record.duration_seconds * 1e6);
    w.Key("args").BeginObject();
    w.Key("id").Uint(record.id);
    w.Key("parent").Uint(record.parent_id);
    w.EndObject();
    w.EndObject();

    auto source = by_id.find(record.flow_from);
    if (record.flow_from != 0 && source != by_id.end()) {
      // One flow (keyed by the destination span id) per scheduler→worker
      // hop: a start step on the submitting span's thread at its start
      // time, a finish step (bp:"e" binds to the enclosing slice) where
      // the execution span begins.
      const SpanRecord& from = *source->second;
      w.BeginObject();
      w.Key("ph").String("s");
      w.Key("id").Uint(record.id);
      w.Key("name").String("rock.flow");
      w.Key("cat").String("rock.flow");
      w.Key("pid").Int(1);
      w.Key("tid").Int(static_cast<int64_t>(from.thread));
      w.Key("ts").Number(from.start_seconds * 1e6);
      w.EndObject();
      w.BeginObject();
      w.Key("ph").String("f");
      w.Key("bp").String("e");
      w.Key("id").Uint(record.id);
      w.Key("name").String("rock.flow");
      w.Key("cat").String("rock.flow");
      w.Key("pid").Int(1);
      w.Key("tid").Int(static_cast<int64_t>(record.thread));
      w.Key("ts").Number(ts_micros);
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

TelemetrySnapshot CaptureGlobalTelemetry() {
  TelemetrySnapshot snap;
  // Snapshot the ring before reading dropped(): a wrap racing the capture
  // then shows up in dropped_spans instead of vanishing from both.
  snap.trace = Tracer::Global().Snapshot();
  snap.spans = Tracer::Global().AggregateByName();
  snap.thread_names = Tracer::Global().ThreadNames();
  snap.breakdowns = ScheduleBreakdowns::Global().Snapshot();
  snap.dropped_spans = Tracer::Global().dropped();
  // Mirror the ring's drop count as a gauge so it reaches the Prometheus
  // export (and the JSON "gauges" block) — the CI smoke asserts it is 0.
  MetricsRegistry::Global()
      .GetGauge("rock_obs_dropped_spans")
      ->Set(static_cast<int64_t>(snap.dropped_spans));
  // Process RSS, refreshed at every capture: the whole-process memory
  // total the per-span alloc_bytes attribution cross-checks against.
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetGauge("rock_process_rss_bytes")
      ->Set(static_cast<int64_t>(ProcessRssBytes()));
  reg.SetHelp("rock_process_rss_bytes",
              "Resident set size of the process (/proc/self/statm)");
  snap.metrics = MetricsRegistry::Global().Snap();
  return snap;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace rock::obs
