#include "src/obs/exporters.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace rock::obs {
namespace {

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return value > 0 ? "1e999" : "-1e999";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Separate();
  // JSON has no Inf/NaN; clamp to null.
  out_ += std::isfinite(value) ? FormatDouble(value) : "null";
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  return *this;
}

std::string ExportPrometheus(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  char buf[256];
  for (const auto& counter : snapshot.counters) {
    out += "# TYPE " + counter.name + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", counter.name.c_str(),
                  counter.value);
    out += buf;
  }
  for (const auto& gauge : snapshot.gauges) {
    out += "# TYPE " + gauge.name + " gauge\n";
    std::snprintf(buf, sizeof(buf), "%s %" PRId64 "\n", gauge.name.c_str(),
                  gauge.value);
    out += buf;
  }
  for (const auto& histogram : snapshot.histograms) {
    out += "# TYPE " + histogram.name + " histogram\n";
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %" PRIu64 "\n",
                    histogram.name.c_str(),
                    FormatDouble(histogram.bounds[i]).c_str(),
                    histogram.cumulative_counts[i]);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  histogram.name.c_str(), histogram.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum %s\n", histogram.name.c_str(),
                  FormatDouble(histogram.sum).c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n",
                  histogram.name.c_str(), histogram.count);
    out += buf;
  }
  return out;
}

void AppendTelemetryFields(const MetricsRegistry::Snapshot& snapshot,
                           const std::map<std::string, SpanStats>& spans,
                           uint64_t dropped_spans, JsonWriter* writer) {
  JsonWriter& w = *writer;
  w.Key("counters").BeginObject();
  for (const auto& counter : snapshot.counters) {
    w.Key(counter.name).Uint(counter.value);
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& gauge : snapshot.gauges) {
    w.Key(gauge.name).Int(gauge.value);
  }
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& histogram : snapshot.histograms) {
    w.Key(histogram.name).BeginObject();
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      w.BeginObject();
      w.Key("le").Number(histogram.bounds[i]);
      w.Key("count").Uint(histogram.cumulative_counts[i]);
      w.EndObject();
    }
    w.EndArray();
    w.Key("count").Uint(histogram.count);
    w.Key("sum").Number(histogram.sum);
    w.EndObject();
  }
  w.EndObject();

  w.Key("spans").BeginObject();
  for (const auto& [name, stats] : spans) {
    w.Key(name).BeginObject();
    w.Key("count").Uint(stats.count);
    w.Key("total_seconds").Number(stats.total_seconds);
    w.Key("max_seconds").Number(stats.max_seconds);
    w.EndObject();
  }
  w.EndObject();

  w.Key("dropped_spans").Uint(dropped_spans);
}

void AppendFaultsBlock(const MetricsRegistry::Snapshot& snapshot,
                       JsonWriter* writer) {
  JsonWriter& w = *writer;
  w.Key("faults").BeginObject();
  w.Key("injected")
      .Uint(snapshot.CounterValue("rock_par_faults_injected_total"));
  w.Key("retries")
      .Uint(snapshot.CounterValue("rock_par_unit_retries_total"));
  w.Key("backoff_micros")
      .Uint(snapshot.CounterValue("rock_par_backoff_micros_total"));
  w.Key("worker_deaths")
      .Uint(snapshot.CounterValue("rock_par_worker_deaths_total"));
  w.Key("crashes_suppressed")
      .Uint(snapshot.CounterValue("rock_par_crashes_suppressed_total"));
  w.Key("steals_on_death")
      .Uint(snapshot.CounterValue("rock_par_steals_on_death_total"));
  w.Key("units_reassigned")
      .Uint(snapshot.CounterValue("rock_par_units_reassigned_total"));
  w.Key("checkpoints")
      .Uint(snapshot.CounterValue("rock_chase_checkpoints_total"));
  w.Key("checkpoint_restores")
      .Uint(snapshot.CounterValue("rock_chase_checkpoint_restores_total"));
  // Gauge, not counter: the pool adds abandoned units, the recovery
  // layers subtract them after replay, so a healthy bench reports 0.
  w.Key("unrecovered")
      .Int(snapshot.GaugeValue("rock_faults_unrecovered_units"));
  w.EndObject();
}

std::string ExportJson(const MetricsRegistry::Snapshot& snapshot,
                       const std::map<std::string, SpanStats>& spans,
                       uint64_t dropped_spans) {
  JsonWriter w;
  w.BeginObject();
  AppendTelemetryFields(snapshot, spans, dropped_spans, &w);
  w.EndObject();
  return w.str();
}

TelemetrySnapshot CaptureGlobalTelemetry() {
  TelemetrySnapshot snap;
  snap.dropped_spans = Tracer::Global().dropped();
  // Mirror the ring's drop count as a gauge so it reaches the Prometheus
  // export (and the JSON "gauges" block) — the CI smoke asserts it is 0.
  MetricsRegistry::Global()
      .GetGauge("rock_obs_dropped_spans")
      ->Set(static_cast<int64_t>(snap.dropped_spans));
  snap.metrics = MetricsRegistry::Global().Snap();
  snap.spans = Tracer::Global().AggregateByName();
  return snap;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace rock::obs
