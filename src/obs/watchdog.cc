#include "src/obs/watchdog.h"

#ifndef ROCK_OBS_DISABLE_PROFILER

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"

namespace rock::obs {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<uint64_t> g_stalls{0};

Counter* StallCounter() {
  static Counter* counter = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    Counter* c = reg.GetCounter("rock_obs_watchdog_stalls_total");
    reg.SetHelp("rock_obs_watchdog_stalls_total",
                "Stall episodes the watchdog detected (stuck spans or "
                "queued work with no progress)");
    return c;
  }();
  return counter;
}

void AppendDump(const std::string& path, const std::string& dump) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    ROCK_LOG(kWarning) << "watchdog: cannot open dump path " << path;
    return;
  }
  std::fwrite(dump.data(), 1, dump.size(), f);
  std::fclose(f);
}

}  // namespace

struct StallWatchdog::State {
  common::Mutex mu;
  bool running ROCK_GUARDED_BY(mu) = false;
  WatchdogOptions options ROCK_GUARDED_BY(mu);
  std::thread thread ROCK_GUARDED_BY(mu);
  std::atomic<bool> stop{false};
};

StallWatchdog::State& StallWatchdog::GetState() {
  static State* state = new State();
  return *state;
}

StallWatchdog& StallWatchdog::Global() {
  static StallWatchdog* watchdog = new StallWatchdog();
  return *watchdog;
}

Status StallWatchdog::Start(const WatchdogOptions& options) {
  if (options.span_deadline_seconds <= 0 ||
      options.progress_deadline_seconds <= 0 ||
      options.poll_interval_seconds <= 0) {
    return Status::InvalidArgument("watchdog deadlines must be positive");
  }
  State& state = GetState();
  common::MutexLock lock(state.mu);
  if (state.running) {
    return Status::FailedPrecondition("watchdog already running");
  }
  state.options = options;
  state.stop.store(false, std::memory_order_release);
  state.thread = std::thread([this] { Poll(); });
  state.running = true;
  return Status::Ok();
}

Status StallWatchdog::Stop() {
  State& state = GetState();
  std::thread joinable;
  {
    common::MutexLock lock(state.mu);
    if (!state.running) return Status::Ok();
    state.stop.store(true, std::memory_order_release);
    joinable = std::move(state.thread);
    state.running = false;
  }
  if (joinable.joinable()) joinable.join();
  return Status::Ok();
}

bool StallWatchdog::running() const {
  State& state = GetState();
  common::MutexLock lock(state.mu);
  return state.running;
}

uint64_t StallWatchdog::stalls_detected() const {
  return g_stalls.load(std::memory_order_relaxed);
}

std::string StallWatchdog::BuildDump(const std::string& reason) const {
  std::string out;
  out += "==== rock watchdog diagnostic bundle ====\n";
  out += "reason: " + reason + "\n";

  double now = Tracer::Global().Now();
  out += "open spans:\n";
  std::vector<OpenSpanInfo> open = OpenSpans();
  std::sort(open.begin(), open.end(),
            [](const OpenSpanInfo& a, const OpenSpanInfo& b) {
              return a.start_seconds < b.start_seconds;
            });
  if (open.empty()) out += "  (none)\n";
  char line[256];
  for (const OpenSpanInfo& span : open) {
    std::snprintf(line, sizeof(line),
                  "  thread=%u span=%s id=%llu open_for=%.3fs\n", span.thread,
                  span.name, static_cast<unsigned long long>(span.id),
                  now - span.start_seconds);
    out += line;
  }

  MetricsRegistry::Snapshot snap = MetricsRegistry::Global().Snap();
  std::snprintf(
      line, sizeof(line),
      "pool: queue_depth=%lld units_executed=%llu units_stolen=%llu "
      "wait_micros=%llu\n",
      static_cast<long long>(snap.GaugeValue("rock_par_queue_depth")),
      static_cast<unsigned long long>(
          snap.CounterValue("rock_par_units_executed_total")),
      static_cast<unsigned long long>(
          snap.CounterValue("rock_par_units_stolen_total")),
      static_cast<unsigned long long>(
          snap.CounterValue("rock_par_unit_wait_micros_total")));
  out += line;

  if (CpuProfiler::Global().running()) {
    ProfileSnapshot profile = CpuProfiler::Global().TakeSnapshot();
    std::snprintf(line, sizeof(line),
                  "partial profile: %llu samples @ %d Hz (top stacks)\n",
                  static_cast<unsigned long long>(profile.samples),
                  profile.sample_hz);
    out += line;
    // Hottest stacks first; the bundle is a diagnostic, not the full
    // profile, so cap it.
    std::vector<std::pair<uint64_t, const std::string*>> ranked;
    ranked.reserve(profile.folded.size());
    for (const auto& [stack, count] : profile.folded) {
      ranked.emplace_back(count, &stack);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    size_t shown = 0;
    for (const auto& [count, stack] : ranked) {
      if (++shown > 10) break;
      out += "  " + *stack + " " + std::to_string(count) + "\n";
    }
  } else {
    out += "partial profile: profiler not running\n";
  }
  out += "==== end watchdog bundle ====\n";
  return out;
}

void StallWatchdog::ReportStall(const std::string& reason,
                                const WatchdogOptions& options) {
  g_stalls.fetch_add(1, std::memory_order_relaxed);
  StallCounter()->Add(1);
  std::string dump = BuildDump(reason);
  ROCK_LOG(kError) << "watchdog detected stall: " << reason << "\n" << dump;
  AppendDump(options.dump_path, dump);
}

void StallWatchdog::Poll() {
  State& state = GetState();
  // Episode bookkeeping lives on the poll thread: a stuck span is
  // reported once per span id, a progress stall once per episode.
  std::set<uint64_t> reported_spans;
  uint64_t last_executed = 0;
  bool have_last = false;
  bool progress_reported = false;
  double no_progress_seconds = 0.0;
  double last_tick = SteadySeconds();

  while (!state.stop.load(std::memory_order_acquire)) {
    WatchdogOptions options;
    {
      common::MutexLock lock(state.mu);
      options = state.options;
    }
    // Sleep in slices so Stop() never waits a full poll interval.
    double deadline = SteadySeconds() + options.poll_interval_seconds;
    while (SteadySeconds() < deadline &&
           !state.stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (state.stop.load(std::memory_order_acquire)) break;
    double tick = SteadySeconds();
    double elapsed = tick - last_tick;
    last_tick = tick;

    double now = Tracer::Global().Now();
    for (const OpenSpanInfo& span : OpenSpans()) {
      double age = now - span.start_seconds;
      if (age <= options.span_deadline_seconds) continue;
      if (!reported_spans.insert(span.id).second) continue;
      char reason[192];
      std::snprintf(reason, sizeof(reason),
                    "span '%s' (thread %u) open for %.3fs, deadline %.3fs",
                    span.name, span.thread, age,
                    options.span_deadline_seconds);
      ReportStall(reason, options);
    }

    MetricsRegistry::Snapshot snap = MetricsRegistry::Global().Snap();
    uint64_t executed = snap.CounterValue("rock_par_units_executed_total");
    int64_t depth = snap.GaugeValue("rock_par_queue_depth");
    if (depth > 0 && have_last && executed == last_executed) {
      no_progress_seconds += elapsed;
      if (no_progress_seconds > options.progress_deadline_seconds &&
          !progress_reported) {
        progress_reported = true;
        char reason[192];
        std::snprintf(reason, sizeof(reason),
                      "%lld unit(s) queued but none completed for %.3fs "
                      "(deadline %.3fs)",
                      static_cast<long long>(depth), no_progress_seconds,
                      options.progress_deadline_seconds);
        ReportStall(reason, options);
      }
    } else {
      no_progress_seconds = 0.0;
      progress_reported = false;
    }
    last_executed = executed;
    have_last = true;
  }
}

Status StartGlobalWatchdog(const WatchdogOptions& options) {
  return StallWatchdog::Global().Start(options);
}

Status StopGlobalWatchdog() { return StallWatchdog::Global().Stop(); }

}  // namespace rock::obs

#endif  // !ROCK_OBS_DISABLE_PROFILER
