#pragma once

#include <string>
#include <vector>

#include "src/rules/predicate.h"
#include "src/storage/schema.h"

namespace rock::rules {

/// The data-quality task a rule serves, derived from its consequence shape
/// (paper §4.2): ER (t.EID ⊕ s.EID), CR (t.A ⊕ c / t.A ⊕ s.B), TD
/// (t ⪯A s / t ≺A s), MI (t[A] = c on a null cell, val-extraction, or
/// M_d prediction).
enum class RuleTask { kEr, kCr, kTd, kMi, kGeneral };

const char* RuleTaskName(RuleTask task);

/// An extended entity enhancing rule (REE++)  φ : X → p0  (paper §2).
/// Tuple variable i is bound by the relation atom R(t_i) with
/// R = tuple_vars[i]; vertex variables are bound by vertex(x_j, G) atoms
/// (all over the single ambient knowledge graph).
struct Ree {
  std::string id;
  /// tuple_vars[i] = relation index (into the DatabaseSchema) binding t_i.
  std::vector<int> tuple_vars;
  int num_vertex_vars = 0;
  /// X — conjunction of non-atom predicates.
  std::vector<Predicate> precondition;
  /// p0.
  Predicate consequence;

  // Discovery metadata.
  double support = 0.0;
  double confidence = 0.0;
  double score = 0.0;

  /// Task classification from the consequence (see RuleTask).
  RuleTask Task() const;

  /// True when some predicate (X or p0) embeds an ML model — the property
  /// Rock_noML strips (paper §6).
  bool UsesMl() const;

  /// Renders the rule in the textual rule language understood by
  /// ParseRee(), e.g.
  ///   "Trans(t0) ^ Trans(t1) ^ t0.com = t1.com -> t0.mfg = t1.mfg".
  std::string ToString(const DatabaseSchema& schema) const;

  /// Structural equality ignoring metadata.
  bool SameRule(const Ree& other) const;
};

/// Renders one predicate (helper shared by Ree::ToString and diagnostics).
std::string PredicateToString(const Predicate& p, const Ree& rule,
                              const DatabaseSchema& schema);

}  // namespace rock::rules

