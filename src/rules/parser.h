#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/rules/ree.h"
#include "src/storage/schema.h"

namespace rock::rules {

/// Parses one REE++ from the textual rule language (the inverse of
/// Ree::ToString). The grammar, with parts joined by " ^ ":
///
///   Relation(t0) ^ ... ^ vertex(x0, G) ^ X-parts -> consequence
///
/// Predicate forms:
///   t0.attr = 'literal'        (also != < <= > >=, numbers, @epoch times)
///   t0.attr = t1.attr
///   t0.eid = t1.eid
///   null(t0.attr)
///   MER(t0[com], t1[com])                 -- ML pair predicate
///   t0 <=[status] t1    /   t0 <[status] t1      -- temporal ⪯ / ≺
///   Mrank(t0, t1, <=[status])             -- ranker-backed temporal
///   HER(t0, x0)
///   match(t0.location, x0.(LocationAt))
///   t0.location = val(x0.(LocationAt))
///   Mc(t0[a,b], t0.c) >= 0.8              -- correlation
///   Mc(t0[a,b], t0.c='v') >= 0.8
///   t0.price = Md(t0[a,b], price)         -- ML value prediction
///
/// Tuple variables must be t0, t1, ...; vertex variables x0, x1, ....
Result<Ree> ParseRee(std::string_view text, const DatabaseSchema& schema);

/// Parses a newline-separated rule list, skipping blank lines and lines
/// starting with '#'.
Result<std::vector<Ree>> ParseRules(std::string_view text,
                                    const DatabaseSchema& schema);

}  // namespace rock::rules

