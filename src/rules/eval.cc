#include "src/rules/eval.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/ml/correlation.h"
#include "src/ml/her.h"
#include "src/ml/ranking.h"

namespace rock::rules {

Value Evaluator::GetCell(const Ree& rule, const Valuation& v, int var,
                         int attr) const {
  int rel = rule.tuple_vars[static_cast<size_t>(var)];
  const Tuple& t = ctx_.db->relation(rel).tuple(
      static_cast<size_t>(v.rows[static_cast<size_t>(var)]));
  if (ctx_.overlay != nullptr) {
    std::optional<Value> patched = ctx_.overlay->GetCell(rel, t.tid, attr);
    if (patched.has_value()) return *patched;
  }
  return t.value(attr);
}

int64_t Evaluator::GetEid(const Ree& rule, const Valuation& v, int var) const {
  int rel = rule.tuple_vars[static_cast<size_t>(var)];
  const Tuple& t = ctx_.db->relation(rel).tuple(
      static_cast<size_t>(v.rows[static_cast<size_t>(var)]));
  if (ctx_.overlay != nullptr) {
    std::optional<int64_t> patched = ctx_.overlay->GetEid(rel, t.tid);
    if (patched.has_value()) return *patched;
  }
  return t.eid;
}

const Tuple& Evaluator::GetTuple(const Ree& rule, const Valuation& v,
                                 int var) const {
  int rel = rule.tuple_vars[static_cast<size_t>(var)];
  return ctx_.db->relation(rel).tuple(
      static_cast<size_t>(v.rows[static_cast<size_t>(var)]));
}

std::vector<Value> Evaluator::GetValues(const Ree& rule, const Valuation& v,
                                        int var) const {
  int rel = rule.tuple_vars[static_cast<size_t>(var)];
  const Schema& schema = ctx_.db->schema().relation(rel);
  std::vector<Value> out;
  out.reserve(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    out.push_back(GetCell(rule, v, var, static_cast<int>(a)));
  }
  return out;
}

bool Evaluator::Satisfies(const Ree& rule, const Valuation& v,
                          const Predicate& p) const {
  switch (p.kind) {
    case PredicateKind::kConstant: {
      Value cell = GetCell(rule, v, p.var, p.attr);
      if (cell.is_null() || p.constant.is_null()) return false;
      if (!cell.ComparableWith(p.constant)) return false;
      return EvalCmp(p.op, cell.Compare(p.constant));
    }
    case PredicateKind::kAttrCompare: {
      if (p.attr == kEidAttr) {
        int64_t e1 = GetEid(rule, v, p.var);
        int64_t e2 = GetEid(rule, v, p.var2);
        int tw = e1 < e2 ? -1 : (e1 > e2 ? 1 : 0);
        return EvalCmp(p.op, tw);
      }
      Value a = GetCell(rule, v, p.var, p.attr);
      Value b = GetCell(rule, v, p.var2, p.attr2);
      if (a.is_null() || b.is_null()) return false;
      if (!a.ComparableWith(b)) return false;
      return EvalCmp(p.op, a.Compare(b));
    }
    case PredicateKind::kMlPair: {
      if (ctx_.models == nullptr) return false;
      const ml::PairClassifier* model = ctx_.models->FindPair(p.model);
      if (model == nullptr) {
        ROCK_LOG(kWarning) << "unknown pair model " << p.model;
        return false;
      }
      std::vector<Value> a, b;
      a.reserve(p.attrs_a.size());
      b.reserve(p.attrs_b.size());
      for (int attr : p.attrs_a) a.push_back(GetCell(rule, v, p.var, attr));
      for (int attr : p.attrs_b) b.push_back(GetCell(rule, v, p.var2, attr));
      if (ctx_.ml_cache != nullptr) {
        // Double-checked memo: look up, score outside any lock on a miss,
        // first insert wins. The cached double is exactly what Score
        // returns for this content, so the thresholded result matches the
        // uncached (default-Predict) path bitwise.
        const ml::MlScoreCache::Key key =
            ml::MlScoreCache::MakeKey(p.model, a, b);
        double score;
        if (!ctx_.ml_cache->Lookup(key, &score)) {
          score = model->Score(a, b);
          ctx_.ml_cache->Insert(key, score);
        }
        return score >= model->threshold();
      }
      return model->Predict(a, b);
    }
    case PredicateKind::kTemporal: {
      int rel = rule.tuple_vars[static_cast<size_t>(p.var)];
      const Tuple& t1 = GetTuple(rule, v, p.var);
      const Tuple& t2 = GetTuple(rule, v, p.var2);
      if (!p.model.empty()) {
        // Ranker-backed ML predicate M_rank(t1, t2, ⊗A).
        const ml::TemporalRanker* ranker =
            ctx_.models == nullptr ? nullptr
                                   : ctx_.models->FindRanker(p.model);
        if (ranker == nullptr) return false;
        return ranker->Predict(t1, t2, p.attr, p.strict);
      }
      // Plain temporal predicate over the explicit partial order. ⪯ is
      // reflexive and ≺ irreflexive on the same tuple.
      if (t1.tid == t2.tid) return !p.strict;
      if (ctx_.temporal != nullptr) {
        std::optional<bool> known =
            ctx_.temporal->Holds(rel, p.attr, t1.tid, t2.tid, p.strict);
        if (known.has_value()) return *known;
      }
      int64_t ts1 = t1.timestamp(p.attr);
      int64_t ts2 = t2.timestamp(p.attr);
      if (ts1 != kNoTimestamp && ts2 != kNoTimestamp) {
        return p.strict ? ts1 < ts2 : ts1 <= ts2;
      }
      return false;
    }
    case PredicateKind::kHer: {
      if (ctx_.models == nullptr || ctx_.models->her() == nullptr ||
          ctx_.graph == nullptr) {
        return false;
      }
      int rel = rule.tuple_vars[static_cast<size_t>(p.var)];
      return ctx_.models->her()->Match(
          GetValues(rule, v, p.var), ctx_.db->schema().relation(rel),
          *ctx_.graph, v.vertices[static_cast<size_t>(p.vertex_var)]);
    }
    case PredicateKind::kPathMatch: {
      if (ctx_.graph == nullptr) return false;
      int rel = rule.tuple_vars[static_cast<size_t>(p.var)];
      const std::string& attr_name =
          ctx_.db->schema().relation(rel).AttributeName(p.attr);
      kg::VertexId x = v.vertices[static_cast<size_t>(p.vertex_var)];
      bool name_match =
          ctx_.models != nullptr && ctx_.models->path_matcher() != nullptr
              ? ctx_.models->path_matcher()->Matches(attr_name, p.path)
              : true;
      return name_match && ctx_.graph->HasPath(x, p.path);
    }
    case PredicateKind::kValExtract: {
      if (ctx_.graph == nullptr) return false;
      kg::VertexId x = v.vertices[static_cast<size_t>(p.vertex_var)];
      Result<Value> extracted = ctx_.graph->ValueAtPath(x, p.path);
      if (!extracted.ok()) return false;
      Value cell = GetCell(rule, v, p.var, p.attr);
      return !cell.is_null() && cell == *extracted;
    }
    case PredicateKind::kCorrelation: {
      if (ctx_.models == nullptr) return false;
      const ml::CorrelationModel* model =
          ctx_.models->FindCorrelation(p.model);
      if (model == nullptr) return false;
      std::vector<Value> values = GetValues(rule, v, p.var);
      Value candidate = p.has_constant
                            ? p.constant
                            : GetCell(rule, v, p.var, p.attr2);
      if (candidate.is_null()) return false;
      return model->Strength(values, p.attrs_a, p.attr2, candidate) >=
             p.threshold;
    }
    case PredicateKind::kPredictValue: {
      if (ctx_.models == nullptr) return false;
      const ml::ValuePredictor* model = ctx_.models->FindPredictor(p.model);
      if (model == nullptr) return false;
      std::vector<Value> values = GetValues(rule, v, p.var);
      Result<Value> predicted =
          model->PredictValue(values, p.attrs_a, p.attr2);
      if (!predicted.ok()) return false;
      Value cell = GetCell(rule, v, p.var, p.attr2);
      return !cell.is_null() && cell == *predicted;
    }
    case PredicateKind::kIsNull:
      return GetCell(rule, v, p.var, p.attr).is_null();
  }
  return false;
}

bool Evaluator::SatisfiesPrecondition(const Ree& rule,
                                      const Valuation& v) const {
  for (const Predicate& p : rule.precondition) {
    if (!Satisfies(rule, v, p)) return false;
  }
  return true;
}

obs::Witness Evaluator::CaptureWitness(const Ree& rule,
                                       const Valuation& v) const {
  obs::Witness w;
  const DatabaseSchema& schema = ctx_.db->schema();
  w.rule_text = rule.ToString(schema);
  w.tuples.reserve(rule.tuple_vars.size());
  for (size_t var = 0; var < rule.tuple_vars.size(); ++var) {
    obs::WitnessTuple t;
    t.var = static_cast<int>(var);
    t.rel = rule.tuple_vars[var];
    t.tid = GetTuple(rule, v, static_cast<int>(var)).tid;
    w.tuples.push_back(t);
  }

  auto add_cell = [&](int var, int attr,
                      obs::PremiseSource source = obs::PremiseSource::kRaw) {
    obs::PremiseCell cell;
    cell.rel = rule.tuple_vars[static_cast<size_t>(var)];
    cell.tid = GetTuple(rule, v, var).tid;
    cell.attr = attr;
    if (attr == kEidAttr) {
      cell.value = std::to_string(GetEid(rule, v, var));
      cell.source = obs::PremiseSource::kOracle;  // answered by E_=
    } else {
      cell.value = GetCell(rule, v, var, attr).ToString();
      cell.source = source;
    }
    w.premises.push_back(std::move(cell));
  };
  auto add_ml = [&](const Predicate& p, const std::string& model,
                    double score, double threshold, bool passed) {
    obs::MlInvocation call;
    call.model = model;
    call.detail = PredicateToString(p, rule, schema);
    call.score = score;
    call.threshold = threshold;
    call.passed = passed;
    w.ml_calls.push_back(std::move(call));
  };

  for (const Predicate& p : rule.precondition) {
    switch (p.kind) {
      case PredicateKind::kConstant:
      case PredicateKind::kIsNull:
        add_cell(p.var, p.attr);
        break;
      case PredicateKind::kAttrCompare:
        add_cell(p.var, p.attr);
        add_cell(p.var2, p.attr2 == kEidAttr || p.attr == kEidAttr
                             ? kEidAttr
                             : p.attr2);
        break;
      case PredicateKind::kMlPair: {
        for (int a : p.attrs_a) add_cell(p.var, a);
        for (int b : p.attrs_b) add_cell(p.var2, b);
        const ml::PairClassifier* model =
            ctx_.models == nullptr ? nullptr : ctx_.models->FindPair(p.model);
        if (model != nullptr) {
          std::vector<Value> a, b;
          for (int attr : p.attrs_a) a.push_back(GetCell(rule, v, p.var, attr));
          for (int attr : p.attrs_b) {
            b.push_back(GetCell(rule, v, p.var2, attr));
          }
          double score = model->Score(a, b);
          add_ml(p, p.model, score, model->threshold(),
                 score >= model->threshold());
        }
        break;
      }
      case PredicateKind::kTemporal: {
        add_cell(p.var, p.attr, obs::PremiseSource::kOracle);
        add_cell(p.var2, p.attr, obs::PremiseSource::kOracle);
        if (!p.model.empty() && ctx_.models != nullptr) {
          const ml::TemporalRanker* ranker = ctx_.models->FindRanker(p.model);
          if (ranker != nullptr) {
            const Tuple& t1 = GetTuple(rule, v, p.var);
            const Tuple& t2 = GetTuple(rule, v, p.var2);
            double conf = ranker->Confidence(t1, t2, p.attr, p.strict);
            add_ml(p, p.model, conf, 0.5, conf >= 0.5);
          }
        }
        break;
      }
      case PredicateKind::kHer: {
        if (ctx_.models != nullptr && ctx_.models->her() != nullptr &&
            ctx_.graph != nullptr) {
          int rel = rule.tuple_vars[static_cast<size_t>(p.var)];
          bool matched = ctx_.models->her()->Match(
              GetValues(rule, v, p.var), schema.relation(rel), *ctx_.graph,
              v.vertices[static_cast<size_t>(p.vertex_var)]);
          add_ml(p, "HER", matched ? 1.0 : 0.0, 0.5, matched);
        }
        break;
      }
      case PredicateKind::kPathMatch:
        add_cell(p.var, p.attr, obs::PremiseSource::kOracle);
        break;
      case PredicateKind::kValExtract:
        add_cell(p.var, p.attr, obs::PremiseSource::kOracle);
        break;
      case PredicateKind::kCorrelation: {
        for (int a : p.attrs_a) add_cell(p.var, a);
        const ml::CorrelationModel* model =
            ctx_.models == nullptr ? nullptr
                                   : ctx_.models->FindCorrelation(p.model);
        if (model != nullptr) {
          std::vector<Value> values = GetValues(rule, v, p.var);
          Value candidate = p.has_constant
                                ? p.constant
                                : GetCell(rule, v, p.var, p.attr2);
          if (!candidate.is_null()) {
            double strength =
                model->Strength(values, p.attrs_a, p.attr2, candidate);
            add_ml(p, p.model, strength, p.threshold,
                   strength >= p.threshold);
          }
        }
        break;
      }
      case PredicateKind::kPredictValue: {
        for (int a : p.attrs_a) add_cell(p.var, a);
        const ml::ValuePredictor* model =
            ctx_.models == nullptr ? nullptr
                                   : ctx_.models->FindPredictor(p.model);
        if (model != nullptr) {
          add_ml(p, p.model, 1.0, 0.0, true);
        }
        break;
      }
    }
  }
  return w;
}

bool Evaluator::LookupCandidates(int rel, int attr, const Value& value,
                                 std::vector<int>* out) const {
  out->clear();
  const Relation& relation = ctx_.db->relation(rel);
  auto key = std::make_pair(rel, attr);
  auto it = eq_index_.find(key);
  if (it == eq_index_.end()) {
    std::unordered_map<uint64_t, std::vector<int>> index;
    // The index covers raw values only; overlay-patched rows are unioned in
    // below on every lookup (their current value is unknown to the index).
    for (size_t row = 0; row < relation.size(); ++row) {
      const Value& cell = relation.tuple(row).value(attr);
      if (cell.is_null()) continue;
      index[cell.Hash()].push_back(static_cast<int>(row));
    }
    it = eq_index_.emplace(key, std::move(index)).first;
  }
  auto rows = it->second.find(value.Hash());
  if (rows != it->second.end()) {
    *out = rows->second;
  }
  if (ctx_.overlay != nullptr) {
    for (int64_t tid :
         ctx_.overlay->PatchedTidsEq(rel, attr, value.Hash())) {
      int row = relation.RowOfTid(tid);
      if (row >= 0) out->push_back(row);
    }
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  }
  return true;
}

void Evaluator::ForEachSatisfying(
    const Ree& rule, const std::function<bool(const Valuation&)>& cb,
    int pinned_var, int pinned_row) const {
  // ready_preds[d] = predicates fully bound once vars 0..d are assigned
  // (vertex-var predicates are deferred to the vertex phase).
  size_t num_vars = rule.tuple_vars.size();
  std::vector<std::vector<const Predicate*>> ready(num_vars);
  for (const Predicate& p : rule.precondition) {
    if (p.vertex_var >= 0) continue;
    int max_var = -1;
    for (int tv : p.TupleVars()) max_var = std::max(max_var, tv);
    if (max_var < 0) max_var = 0;
    if (static_cast<size_t>(max_var) < num_vars) {
      ready[static_cast<size_t>(max_var)].push_back(&p);
    }
  }
  Valuation v;
  v.rows.assign(num_vars, -1);
  v.vertices.assign(static_cast<size_t>(rule.num_vertex_vars), -1);
  bool keep_going = true;
  Recurse(rule, v, 0, ready, cb, keep_going, pinned_var, pinned_row);
}

size_t Evaluator::WarmMlCache(const Ree& rule, ml::BatchScratch* scratch,
                              int pinned_var, int pinned_row) const {
  if (ctx_.ml_cache == nullptr || ctx_.models == nullptr) return 0;
  if (rule.num_vertex_vars != 0) return 0;
  std::vector<const Predicate*> ml_preds;
  for (const Predicate& p : rule.precondition) {
    if (p.kind == PredicateKind::kMlPair) ml_preds.push_back(&p);
  }
  if (ml_preds.empty()) return 0;
  // Every ML predicate must bind at the deepest variable: the warm
  // enumeration below skips ML predicates entirely, which is free only
  // when they never prune an enumeration prefix.
  const size_t num_vars = rule.tuple_vars.size();
  const int last = static_cast<int>(num_vars) - 1;
  for (const Predicate* p : ml_preds) {
    int max_var = -1;
    for (int tv : p->TupleVars()) max_var = std::max(max_var, tv);
    if (max_var != last) return 0;
  }

  // Ready lists as in ForEachSatisfying, minus the ML predicates.
  std::vector<std::vector<const Predicate*>> ready(num_vars);
  for (const Predicate& p : rule.precondition) {
    if (p.vertex_var >= 0) continue;
    if (p.kind == PredicateKind::kMlPair) continue;
    int max_var = -1;
    for (int tv : p.TupleVars()) max_var = std::max(max_var, tv);
    if (max_var < 0) max_var = 0;
    if (static_cast<size_t>(max_var) < num_vars) {
      ready[static_cast<size_t>(max_var)].push_back(&p);
    }
  }

  // One pending batch per model; pairs dedup against the cache and the
  // round's own pending set (many valuations repeat the same cell values).
  struct Pending {
    const ml::PairClassifier* model = nullptr;
    ml::PairBatch batch;
    std::vector<ml::MlScoreCache::Key> keys;
  };
  std::map<std::string, Pending> pending;
  std::unordered_set<ml::MlScoreCache::Key, ml::MlScoreCache::KeyHash> queued;

  auto collect = [&](const Valuation& v) {
    for (const Predicate* p : ml_preds) {
      const ml::PairClassifier* model = ctx_.models->FindPair(p->model);
      if (model == nullptr) continue;
      std::vector<Value> a, b;
      a.reserve(p->attrs_a.size());
      b.reserve(p->attrs_b.size());
      for (int attr : p->attrs_a) a.push_back(GetCell(rule, v, p->var, attr));
      for (int attr : p->attrs_b) {
        b.push_back(GetCell(rule, v, p->var2, attr));
      }
      const ml::MlScoreCache::Key key =
          ml::MlScoreCache::MakeKey(p->model, a, b);
      if (!queued.insert(key).second) continue;
      if (ctx_.ml_cache->Contains(key)) continue;
      Pending& entry = pending[p->model];
      entry.model = model;
      entry.batch.Add(std::move(a), std::move(b));
      entry.keys.push_back(key);
    }
    return true;
  };

  Valuation v;
  v.rows.assign(num_vars, -1);
  v.vertices.clear();
  bool keep_going = true;
  Recurse(rule, v, 0, ready, collect, keep_going, pinned_var, pinned_row);

  size_t scored = 0;
  std::vector<double> scores;
  for (auto& [name, entry] : pending) {
    if (entry.batch.empty()) continue;
    entry.model->ScoreBatch(entry.batch, scratch, &scores);
    ctx_.ml_cache->InsertBatch(entry.keys, scores);
    scored += scores.size();
  }
  return scored;
}

void Evaluator::Recurse(
    const Ree& rule, Valuation& v, size_t depth,
    const std::vector<std::vector<const Predicate*>>& ready_preds,
    const std::function<bool(const Valuation&)>& cb, bool& keep_going,
    int pinned_var, int pinned_row) const {
  if (!keep_going) return;
  if (depth == rule.tuple_vars.size()) {
    // All tuple variables bound; handle vertex variables (if any), checking
    // the remaining predicates inside AssignVertices.
    AssignVertices(rule, v, 0, cb, keep_going);
    return;
  }
  int rel = rule.tuple_vars[depth];
  const Relation& relation = ctx_.db->relation(rel);

  // Try to restrict candidates by an equality predicate whose other side is
  // already bound (join index) or constant.
  std::vector<int> candidate_rows;
  bool restricted = false;
  for (const Predicate* p : ready_preds[depth]) {
    if (p->op != CmpOp::kEq) continue;
    if (p->kind == PredicateKind::kConstant &&
        p->var == static_cast<int>(depth)) {
      restricted = LookupCandidates(rel, p->attr, p->constant,
                                    &candidate_rows);
    } else if (p->kind == PredicateKind::kAttrCompare &&
               p->attr != kEidAttr) {
      // One side must be the new variable, the other already bound.
      if (p->var2 == static_cast<int>(depth) && p->var >= 0 &&
          static_cast<size_t>(p->var) < depth) {
        Value bound = GetCell(rule, v, p->var, p->attr);
        if (bound.is_null()) return;  // null never satisfies equality
        restricted = LookupCandidates(rel, p->attr2, bound, &candidate_rows);
      } else if (p->var == static_cast<int>(depth) && p->var2 >= 0 &&
                 static_cast<size_t>(p->var2) < depth) {
        Value bound = GetCell(rule, v, p->var2, p->attr2);
        if (bound.is_null()) return;
        restricted = LookupCandidates(rel, p->attr, bound, &candidate_rows);
      }
    }
    if (restricted) break;
  }

  auto try_row = [&](int row) {
    if (!keep_going) return;
    v.rows[depth] = row;
    for (const Predicate* p : ready_preds[depth]) {
      if (!Satisfies(rule, v, *p)) {
        v.rows[depth] = -1;
        return;
      }
    }
    Recurse(rule, v, depth + 1, ready_preds, cb, keep_going, pinned_var,
            pinned_row);
    v.rows[depth] = -1;
  };

  if (pinned_var == static_cast<int>(depth)) {
    if (pinned_row >= 0 && static_cast<size_t>(pinned_row) < relation.size()) {
      try_row(pinned_row);
    }
    return;
  }

  if (restricted) {
    for (int row : candidate_rows) {
      if (!keep_going) break;
      try_row(row);
    }
  } else {
    for (size_t row = 0; row < relation.size(); ++row) {
      if (!keep_going) break;
      try_row(static_cast<int>(row));
    }
  }
}

bool Evaluator::AssignVertices(
    const Ree& rule, Valuation& v, int vertex_depth,
    const std::function<bool(const Valuation&)>& cb, bool& keep_going) const {
  if (!keep_going) return false;
  if (vertex_depth == rule.num_vertex_vars) {
    // Check every predicate involving vertex variables (tuple-only
    // predicates were already checked during Recurse).
    for (const Predicate& p : rule.precondition) {
      if (p.vertex_var < 0) continue;
      if (!Satisfies(rule, v, p)) return true;
    }
    if (!cb(v)) keep_going = false;
    return true;
  }
  if (ctx_.graph == nullptr) return true;

  // Restrict candidates by a HER predicate's blocking index when present.
  std::vector<kg::VertexId> candidates;
  bool restricted = false;
  if (ctx_.models != nullptr && ctx_.models->her() != nullptr) {
    for (const Predicate& p : rule.precondition) {
      if (p.kind == PredicateKind::kHer && p.vertex_var == vertex_depth) {
        int rel = rule.tuple_vars[static_cast<size_t>(p.var)];
        candidates = ctx_.models->her()->Candidates(
            GetValues(rule, v, p.var), ctx_.db->schema().relation(rel));
        restricted = true;
        break;
      }
    }
  }
  if (!restricted) candidates = ctx_.graph->AllVertices();

  for (kg::VertexId x : candidates) {
    if (!keep_going) break;
    v.vertices[static_cast<size_t>(vertex_depth)] = x;
    AssignVertices(rule, v, vertex_depth + 1, cb, keep_going);
    v.vertices[static_cast<size_t>(vertex_depth)] = -1;
  }
  return true;
}

void Evaluator::ForEachViolation(
    const Ree& rule, const std::function<bool(const Valuation&)>& cb) const {
  ForEachSatisfying(rule, [&](const Valuation& v) {
    if (!Satisfies(rule, v, rule.consequence)) return cb(v);
    return true;
  });
}

std::pair<size_t, size_t> Evaluator::CountSupport(const Ree& rule,
                                                  size_t cap) const {
  size_t sat_x = 0;
  size_t sat_both = 0;
  ForEachSatisfying(rule, [&](const Valuation& v) {
    ++sat_x;
    if (Satisfies(rule, v, rule.consequence)) ++sat_both;
    return cap == 0 || sat_x < cap;
  });
  return {sat_x, sat_both};
}

}  // namespace rock::rules
