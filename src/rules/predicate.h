#pragma once

#include <string>
#include <vector>

#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace rock::rules {

/// Comparison operators ⊕ ∈ {=, ≠, <, ≤, >, ≥} (paper §2.1).
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);
bool EvalCmp(CmpOp op, int three_way);

/// Pseudo-attribute index denoting the built-in EID attribute, used by ER
/// predicates t.EID ⊕ s.EID.
inline constexpr int kEidAttr = -2;

/// The predicate kinds of REE++s. §2.1 contributes the first five, §2.2 the
/// temporal kind, §2.3 the extraction/correlation/prediction kinds.
enum class PredicateKind {
  kConstant,      // t.A ⊕ c
  kAttrCompare,   // t.A ⊕ s.B   (also t.EID ⊕ s.EID via kEidAttr)
  kMlPair,        // M(t[A], s[B])
  kTemporal,      // t ⪯A s  /  t ≺A s
  kHer,           // HER(t, x)
  kPathMatch,     // match(t.A, x.ρ)
  kValExtract,    // t[A] = val(x.ρ)
  kCorrelation,   // Mc(t[A], t[B]) ≥ δ  or  Mc(t[A], t[B]=c) ≥ δ
  kPredictValue,  // t[B] = Md(t[A], B)
  kIsNull,        // null(t[A])  (syntactic sugar, §2.3 example)
};

/// One predicate of an REE++. Tuple variables are indices into the owning
/// rule's variable table; vertex variables index its vertex-variable table.
/// Relation atoms R(t) and vertex atoms vertex(x, G) are represented by the
/// rule's binding tables rather than as predicate objects.
struct Predicate {
  PredicateKind kind = PredicateKind::kConstant;
  CmpOp op = CmpOp::kEq;

  int var = -1;    // t
  int var2 = -1;   // s (kAttrCompare / kMlPair / kTemporal)
  int vertex_var = -1;  // x (kHer / kPathMatch / kValExtract)

  int attr = -1;   // A (or kEidAttr)
  int attr2 = -1;  // B (kAttrCompare / kCorrelation / kPredictValue)

  Value constant;  // c (kConstant; optional candidate in kCorrelation)
  bool has_constant = false;

  std::string model;          // ML model name (kMlPair/kTemporal ranker/
                              // kCorrelation/kPredictValue)
  std::vector<int> attrs_a;   // A-vector (kMlPair/kCorrelation/kPredictValue)
  std::vector<int> attrs_b;   // B-vector (kMlPair)

  bool strict = false;        // kTemporal: ≺ vs ⪯
  std::vector<std::string> path;  // ρ (kPathMatch / kValExtract)
  double threshold = 0.0;         // δ (kCorrelation)

  // ---- Factories ----
  static Predicate Constant(int var, int attr, CmpOp op, Value c);
  static Predicate AttrCompare(int var, int attr, CmpOp op, int var2,
                               int attr2);
  static Predicate EidCompare(int var, CmpOp op, int var2);
  static Predicate MlPair(std::string model, int var, std::vector<int> attrs_a,
                          int var2, std::vector<int> attrs_b);
  static Predicate Temporal(int var, int var2, int attr, bool strict,
                            std::string ranker_model = "");
  static Predicate Her(int var, int vertex_var);
  static Predicate PathMatch(int var, int attr, int vertex_var,
                             std::vector<std::string> path);
  static Predicate ValExtract(int var, int attr, int vertex_var,
                              std::vector<std::string> path);
  static Predicate Correlation(std::string model, int var,
                               std::vector<int> attrs_a, int attr_b,
                               double threshold);
  static Predicate CorrelationConst(std::string model, int var,
                                    std::vector<int> attrs_a, int attr_b,
                                    Value candidate, double threshold);
  static Predicate PredictValue(std::string model, int var,
                                std::vector<int> attrs_a, int attr_b);
  static Predicate IsNull(int var, int attr);

  /// Tuple variables referenced by this predicate.
  std::vector<int> TupleVars() const;

  /// True when the predicate mentions attribute `attr` of variable `var`
  /// (including via attrs_a/attrs_b).
  bool Mentions(int var_index, int attr_index) const;

  /// Structural equality (used by discovery's duplicate elimination).
  bool operator==(const Predicate& other) const;
};

}  // namespace rock::rules

