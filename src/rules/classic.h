#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/rules/ree.h"
#include "src/storage/schema.h"

namespace rock::rules {

// Classic data-quality constraints and their embeddings into REE++s.
// The paper (§2.1, after [39]) claims REEs subsume conditional functional
// dependencies, denial constraints and matching dependencies as special
// cases; these converters make the embedding executable.

/// A conditional functional dependency R(X -> Y, tp): when the pattern
/// tuple tp matches (constants bind, "_" is a wildcard), the X attributes
/// functionally determine the Y attributes.
struct Cfd {
  std::string relation;
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;
  /// Pattern over LHS attributes; empty string = wildcard "_".
  std::vector<std::string> pattern;
};

/// A denial constraint ¬(R(t0) ∧ R(t1) ∧ p1 ∧ ... ∧ pk) over comparison
/// predicates between the two tuples' attributes.
struct DenialConstraint {
  std::string relation;
  struct Comparison {
    std::string attr_a;  // of t0
    CmpOp op;
    std::string attr_b;  // of t1
  };
  std::vector<Comparison> predicates;
};

/// A matching dependency R[A1 ≈ B1, ...] -> R[EID = EID]: similarity of
/// the listed attributes (via the named ML matcher) identifies entities.
struct MatchingDependency {
  std::string relation;
  std::vector<std::string> similar_attrs;
  std::string matcher = "MER";
};

/// Embeds a CFD as an REE++ φ: R(t0) ∧ R(t1) ∧ pattern ∧
/// ∧_{A∈X} t0.A = t1.A -> t0.B = t1.B (one rule per RHS attribute; this
/// returns them all). Violation sets coincide with the CFD's.
Result<std::vector<Ree>> CfdToRees(const Cfd& cfd,
                                   const DatabaseSchema& schema);

/// Embeds a DC: its predicates minus one become the precondition, the
/// negation of the held-out predicate the consequence. Any violation of
/// the REE++ is a witness of the DC and vice versa.
Result<Ree> DcToRee(const DenialConstraint& dc, const DatabaseSchema& schema);

/// Embeds an MD as an REE++ with an ML pair predicate in the precondition
/// and t0.EID = t1.EID as the consequence.
Result<Ree> MdToRee(const MatchingDependency& md,
                    const DatabaseSchema& schema);

}  // namespace rock::rules

