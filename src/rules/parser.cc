#include "src/rules/parser.h"

#include <cctype>
#include <cstdlib>

#include "src/common/strings.h"

namespace rock::rules {
namespace {

/// Splits on " ^ " at the top level (never inside parentheses or quotes).
std::vector<std::string> SplitParts(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  bool in_quote = false;
  char quote_char = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quote) {
      current.push_back(c);
      if (c == quote_char && (i == 0 || text[i - 1] != '\\')) {
        in_quote = false;
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      in_quote = true;
      quote_char = c;
      current.push_back(c);
      continue;
    }
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == '^' && depth == 0) {
      parts.emplace_back(Trim(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!Trim(current).empty()) parts.emplace_back(Trim(current));
  return parts;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

struct ParserState {
  const DatabaseSchema* schema;
  Ree rule;

  Result<int> TupleVar(std::string_view token) const {
    if (token.size() < 2 || token[0] != 't') {
      return Status::InvalidArgument("expected tuple variable, got '" +
                                     std::string(token) + "'");
    }
    char* end = nullptr;
    std::string num(token.substr(1));
    long idx = std::strtol(num.c_str(), &end, 10);
    if (end == num.c_str() || *end != '\0' || idx < 0 ||
        static_cast<size_t>(idx) >= rule.tuple_vars.size()) {
      return Status::InvalidArgument("unbound tuple variable '" +
                                     std::string(token) + "'");
    }
    return static_cast<int>(idx);
  }

  Result<int> VertexVar(std::string_view token) const {
    if (token.size() < 2 || token[0] != 'x') {
      return Status::InvalidArgument("expected vertex variable, got '" +
                                     std::string(token) + "'");
    }
    char* end = nullptr;
    std::string num(token.substr(1));
    long idx = std::strtol(num.c_str(), &end, 10);
    if (end == num.c_str() || *end != '\0' || idx < 0 ||
        idx >= rule.num_vertex_vars) {
      return Status::InvalidArgument("unbound vertex variable '" +
                                     std::string(token) + "'");
    }
    return static_cast<int>(idx);
  }

  Result<int> Attr(int var, std::string_view name) const {
    if (name == "eid") return kEidAttr;
    int rel = rule.tuple_vars[static_cast<size_t>(var)];
    int attr = schema->relation(rel).AttributeIndex(name);
    if (attr < 0) {
      return Status::InvalidArgument(
          "no attribute '" + std::string(name) + "' in relation " +
          schema->relation(rel).name());
    }
    return attr;
  }

  /// Parses "t0.attr" into (var, attr).
  Result<std::pair<int, int>> VarDotAttr(std::string_view text) const {
    size_t dot = text.find('.');
    if (dot == std::string_view::npos) {
      return Status::InvalidArgument("expected t.attr, got '" +
                                     std::string(text) + "'");
    }
    auto var = TupleVar(Trim(text.substr(0, dot)));
    if (!var.ok()) return var.status();
    auto attr = Attr(*var, Trim(text.substr(dot + 1)));
    if (!attr.ok()) return attr.status();
    return std::make_pair(*var, *attr);
  }

  /// Parses "t0[a,b,c]" into (var, attr list).
  Result<std::pair<int, std::vector<int>>> VarBracketAttrs(
      std::string_view text) const {
    size_t open = text.find('[');
    if (open == std::string_view::npos || text.back() != ']') {
      return Status::InvalidArgument("expected t[attrs], got '" +
                                     std::string(text) + "'");
    }
    auto var = TupleVar(Trim(text.substr(0, open)));
    if (!var.ok()) return var.status();
    std::vector<int> attrs;
    for (const std::string& name :
         Split(text.substr(open + 1, text.size() - open - 2), ',')) {
      auto attr = Attr(*var, Trim(name));
      if (!attr.ok()) return attr.status();
      attrs.push_back(*attr);
    }
    return std::make_pair(*var, std::move(attrs));
  }

  /// Parses "x0.(L1,L2)" into (vertex var, path).
  Result<std::pair<int, std::vector<std::string>>> VertexPath(
      std::string_view text) const {
    size_t dot = text.find(".(");
    if (dot == std::string_view::npos || text.back() != ')') {
      return Status::InvalidArgument("expected x.(path), got '" +
                                     std::string(text) + "'");
    }
    auto xv = VertexVar(Trim(text.substr(0, dot)));
    if (!xv.ok()) return xv.status();
    std::vector<std::string> path;
    for (const std::string& label :
         Split(text.substr(dot + 2, text.size() - dot - 3), ',')) {
      path.emplace_back(Trim(label));
    }
    return std::make_pair(*xv, std::move(path));
  }

  Result<Value> Literal(std::string_view text, ValueType hint) const {
    std::string_view t = Trim(text);
    if (t.size() >= 2 && (t.front() == '\'' || t.front() == '"') &&
        t.back() == t.front()) {
      std::string raw(t.substr(1, t.size() - 2));
      std::string out;
      for (size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '\\' && i + 1 < raw.size()) ++i;
        out.push_back(raw[i]);
      }
      return Value::String(std::move(out));
    }
    if (!t.empty() && t.front() == '@') {
      return Value::Parse(t.substr(1), ValueType::kTime);
    }
    if (t == "null") return Value::Null();
    if (hint == ValueType::kString) {
      return Value::String(std::string(t));
    }
    // Numeric literal: int unless it contains '.' or 'e'.
    if (t.find('.') != std::string_view::npos ||
        t.find('e') != std::string_view::npos) {
      return Value::Parse(t, ValueType::kDouble);
    }
    return Value::Parse(t, hint == ValueType::kDouble ? ValueType::kDouble
                                                      : ValueType::kInt);
  }
};

/// Finds a top-level comparison operator; returns (position, length, op).
bool FindTopLevelOp(std::string_view text, size_t* pos, size_t* len,
                    CmpOp* op) {
  int depth = 0;
  bool in_quote = false;
  char quote_char = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quote) {
      if (c == quote_char && text[i - 1] != '\\') in_quote = false;
      continue;
    }
    if (c == '\'' || c == '"') {
      in_quote = true;
      quote_char = c;
      continue;
    }
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (depth != 0) continue;
    auto two = text.substr(i, 2);
    if (two == "!=") {
      *pos = i;
      *len = 2;
      *op = CmpOp::kNe;
      return true;
    }
    if (two == "<=" || two == ">=") {
      // "<=[" is the temporal operator, not a comparison.
      if (i + 2 < text.size() && text[i + 2] == '[') continue;
      *pos = i;
      *len = 2;
      *op = two == "<=" ? CmpOp::kLe : CmpOp::kGe;
      return true;
    }
    if (c == '=' ) {
      *pos = i;
      *len = 1;
      *op = CmpOp::kEq;
      return true;
    }
    if (c == '<' || c == '>') {
      if (i + 1 < text.size() && text[i + 1] == '[') continue;  // temporal
      *pos = i;
      *len = 1;
      *op = c == '<' ? CmpOp::kLt : CmpOp::kGt;
      return true;
    }
  }
  return false;
}

/// Finds the temporal operator " <=[attr] " / " <[attr] " at top level;
/// returns (start of op, op length including "]", attr name, strict).
bool FindTemporalOp(std::string_view text, size_t* pos, size_t* end,
                    std::string* attr, bool* strict) {
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != '<') continue;
    size_t bracket;
    bool is_strict;
    if (text[i + 1] == '[') {
      bracket = i + 1;
      is_strict = true;
    } else if (text[i + 1] == '=' && i + 2 < text.size() &&
               text[i + 2] == '[') {
      bracket = i + 2;
      is_strict = false;
    } else {
      continue;
    }
    size_t close = text.find(']', bracket);
    if (close == std::string_view::npos) return false;
    *pos = i;
    *end = close + 1;
    *attr = std::string(Trim(text.substr(bracket + 1, close - bracket - 1)));
    *strict = is_strict;
    return true;
  }
  return false;
}

/// Splits "a, b, c" on top-level commas.
std::vector<std::string> SplitArgs(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  bool in_quote = false;
  char quote_char = 0;
  for (char c : text) {
    if (in_quote) {
      current.push_back(c);
      if (c == quote_char) in_quote = false;
      continue;
    }
    if (c == '\'' || c == '"') {
      in_quote = true;
      quote_char = c;
      current.push_back(c);
      continue;
    }
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.emplace_back(Trim(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!Trim(current).empty()) out.emplace_back(Trim(current));
  return out;
}

/// Parses a function-call-shaped part "Name(args)" or
/// "Name(args) >= 0.8"; returns false if not call-shaped.
bool SplitCall(std::string_view text, std::string* name, std::string* args,
               std::string* suffix) {
  size_t open = text.find('(');
  if (open == std::string_view::npos || open == 0) return false;
  for (size_t i = 0; i < open; ++i) {
    if (!IsIdentChar(text[i])) return false;
  }
  int depth = 0;
  size_t close = std::string_view::npos;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) {
        close = i;
        break;
      }
    }
  }
  if (close == std::string_view::npos) return false;
  *name = std::string(text.substr(0, open));
  *args = std::string(text.substr(open + 1, close - open - 1));
  *suffix = std::string(Trim(text.substr(close + 1)));
  return true;
}

Result<Predicate> ParsePredicate(const std::string& part, ParserState& st);

Result<Predicate> ParseCall(const std::string& name, const std::string& args,
                            const std::string& suffix, ParserState& st) {
  std::vector<std::string> arg_list = SplitArgs(args);
  if (name == "null") {
    if (arg_list.size() != 1) {
      return Status::InvalidArgument("null() takes one argument");
    }
    auto va = st.VarDotAttr(arg_list[0]);
    if (!va.ok()) return va.status();
    return Predicate::IsNull(va->first, va->second);
  }
  if (name == "HER") {
    if (arg_list.size() != 2) {
      return Status::InvalidArgument("HER() takes two arguments");
    }
    auto tv = st.TupleVar(Trim(arg_list[0]));
    if (!tv.ok()) return tv.status();
    auto xv = st.VertexVar(Trim(arg_list[1]));
    if (!xv.ok()) return xv.status();
    return Predicate::Her(*tv, *xv);
  }
  if (name == "match") {
    if (arg_list.size() != 2) {
      return Status::InvalidArgument("match() takes two arguments");
    }
    auto va = st.VarDotAttr(arg_list[0]);
    if (!va.ok()) return va.status();
    auto vp = st.VertexPath(arg_list[1]);
    if (!vp.ok()) return vp.status();
    return Predicate::PathMatch(va->first, va->second, vp->first, vp->second);
  }
  // Ranker-backed temporal: Model(t0, t1, <=[attr]).
  if (arg_list.size() == 3 &&
      (StartsWith(Trim(arg_list[2]), "<=[") ||
       StartsWith(Trim(arg_list[2]), "<["))) {
    auto tv1 = st.TupleVar(Trim(arg_list[0]));
    if (!tv1.ok()) return tv1.status();
    auto tv2 = st.TupleVar(Trim(arg_list[1]));
    if (!tv2.ok()) return tv2.status();
    std::string_view spec = Trim(arg_list[2]);
    bool strict = spec[1] != '=';
    size_t open = spec.find('[');
    size_t close = spec.find(']');
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("bad temporal spec: " +
                                     std::string(spec));
    }
    auto attr =
        st.Attr(*tv1, Trim(spec.substr(open + 1, close - open - 1)));
    if (!attr.ok()) return attr.status();
    return Predicate::Temporal(*tv1, *tv2, *attr, strict, name);
  }
  // ML pair / correlation: Model(t0[...], t1[...]) or
  // Model(t0[...], t0.c[='v']) >= δ.
  if (arg_list.size() == 2) {
    auto lhs = st.VarBracketAttrs(Trim(arg_list[0]));
    if (!lhs.ok()) return lhs.status();
    std::string_view rhs = Trim(arg_list[1]);
    if (!suffix.empty()) {
      // Correlation with threshold suffix ">= δ".
      if (!StartsWith(suffix, ">=")) {
        return Status::InvalidArgument("expected >= after " + name + "(...)");
      }
      double delta = std::strtod(std::string(Trim(suffix.substr(2))).c_str(),
                                 nullptr);
      size_t eq = rhs.find('=');
      if (eq != std::string_view::npos && rhs.find('[') == std::string_view::npos) {
        // t0.c='v' form.
        auto va = st.VarDotAttr(Trim(rhs.substr(0, eq)));
        if (!va.ok()) return va.status();
        int rel = st.rule.tuple_vars[static_cast<size_t>(va->first)];
        ValueType hint = va->second == kEidAttr
                             ? ValueType::kInt
                             : st.schema->relation(rel).AttributeType(
                                   va->second);
        auto lit = st.Literal(Trim(rhs.substr(eq + 1)), hint);
        if (!lit.ok()) return lit.status();
        return Predicate::CorrelationConst(name, lhs->first, lhs->second,
                                           va->second, *lit, delta);
      }
      auto va = st.VarDotAttr(rhs);
      if (!va.ok()) return va.status();
      return Predicate::Correlation(name, lhs->first, lhs->second,
                                    va->second, delta);
    }
    auto rhs_attrs = st.VarBracketAttrs(rhs);
    if (!rhs_attrs.ok()) return rhs_attrs.status();
    return Predicate::MlPair(name, lhs->first, lhs->second, rhs_attrs->first,
                             rhs_attrs->second);
  }
  return Status::InvalidArgument("unrecognized predicate call: " + name);
}

Result<Predicate> ParsePredicate(const std::string& part, ParserState& st) {
  // Temporal predicate t0 <=[attr] t1 (checked first: '<' would otherwise
  // be taken as a comparison).
  {
    size_t pos, end;
    std::string attr_name;
    bool strict;
    if (FindTemporalOp(part, &pos, &end, &attr_name, &strict)) {
      std::string lhs(Trim(std::string_view(part).substr(0, pos)));
      std::string rhs(Trim(std::string_view(part).substr(end)));
      if (lhs.find('(') == std::string::npos &&
          lhs.find('.') == std::string::npos) {
        auto tv1 = st.TupleVar(lhs);
        if (!tv1.ok()) return tv1.status();
        auto tv2 = st.TupleVar(rhs);
        if (!tv2.ok()) return tv2.status();
        auto attr = st.Attr(*tv1, attr_name);
        if (!attr.ok()) return attr.status();
        return Predicate::Temporal(*tv1, *tv2, *attr, strict);
      }
    }
  }
  // Function-call shapes.
  {
    std::string name, args, suffix;
    if (SplitCall(part, &name, &args, &suffix) &&
        part.find('.') > part.find('(')) {
      return ParseCall(name, args, suffix, st);
    }
  }
  // Comparison shapes: lhs OP rhs.
  size_t pos, len;
  CmpOp op;
  if (!FindTopLevelOp(part, &pos, &len, &op)) {
    return Status::InvalidArgument("cannot parse predicate: " + part);
  }
  std::string lhs(Trim(std::string_view(part).substr(0, pos)));
  std::string rhs(Trim(std::string_view(part).substr(pos + len)));
  auto va = st.VarDotAttr(lhs);
  if (!va.ok()) return va.status();

  // rhs: val(x.(path)) | Md(t[...], attr) | t.attr | literal.
  std::string name, args, suffix;
  if (SplitCall(rhs, &name, &args, &suffix) && suffix.empty()) {
    if (name == "val") {
      auto vp = st.VertexPath(args);
      if (!vp.ok()) return vp.status();
      if (op != CmpOp::kEq) {
        return Status::InvalidArgument("val() requires '='");
      }
      return Predicate::ValExtract(va->first, va->second, vp->first,
                                   vp->second);
    }
    std::vector<std::string> arg_list = SplitArgs(args);
    if (arg_list.size() == 2) {
      // t0.b = Md(t0[...], b)
      auto lhs_attrs = st.VarBracketAttrs(Trim(arg_list[0]));
      if (!lhs_attrs.ok()) return lhs_attrs.status();
      if (op != CmpOp::kEq) {
        return Status::InvalidArgument("M_d prediction requires '='");
      }
      return Predicate::PredictValue(name, va->first, lhs_attrs->second,
                                     va->second);
    }
    return Status::InvalidArgument("unrecognized rhs call: " + rhs);
  }
  if (rhs.find('.') != std::string::npos && rhs[0] == 't' &&
      std::isdigit(static_cast<unsigned char>(rhs[1]))) {
    auto vb = st.VarDotAttr(rhs);
    if (!vb.ok()) return vb.status();
    return Predicate::AttrCompare(va->first, va->second, op, vb->first,
                                  vb->second);
  }
  int rel = st.rule.tuple_vars[static_cast<size_t>(va->first)];
  ValueType hint =
      va->second == kEidAttr
          ? ValueType::kInt
          : st.schema->relation(rel).AttributeType(va->second);
  auto lit = st.Literal(rhs, hint);
  if (!lit.ok()) return lit.status();
  return Predicate::Constant(va->first, va->second, op, *lit);
}

}  // namespace

Result<Ree> ParseRee(std::string_view text, const DatabaseSchema& schema) {
  size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("rule has no '->': " + std::string(text));
  }
  ParserState st;
  st.schema = &schema;

  std::vector<std::string> body_parts = SplitParts(text.substr(0, arrow));
  std::vector<std::string> deferred;

  // First pass: bind variables from relation and vertex atoms (they must
  // precede predicate uses, as in the paper's examples).
  for (const std::string& part : body_parts) {
    std::string name, args, suffix;
    bool is_call = SplitCall(part, &name, &args, &suffix);
    if (is_call && suffix.empty() && name == "vertex") {
      std::vector<std::string> arg_list = SplitArgs(args);
      if (arg_list.size() != 2) {
        return Status::InvalidArgument("vertex() takes (x, G)");
      }
      std::string expected = "x" + std::to_string(st.rule.num_vertex_vars);
      if (Trim(arg_list[0]) != expected) {
        return Status::InvalidArgument("vertex variables must be bound in "
                                       "order x0, x1, ...");
      }
      ++st.rule.num_vertex_vars;
      continue;
    }
    if (is_call && suffix.empty() && schema.RelationIndex(name) >= 0 &&
        args.find('.') == std::string::npos &&
        args.find('[') == std::string::npos &&
        args.find(',') == std::string::npos) {
      std::string expected = "t" + std::to_string(st.rule.tuple_vars.size());
      if (Trim(args) != expected) {
        return Status::InvalidArgument("tuple variables must be bound in "
                                       "order t0, t1, ...; got " + args);
      }
      st.rule.tuple_vars.push_back(schema.RelationIndex(name));
      continue;
    }
    deferred.push_back(part);
  }

  for (const std::string& part : deferred) {
    auto pred = ParsePredicate(part, st);
    if (!pred.ok()) return pred.status();
    st.rule.precondition.push_back(*pred);
  }

  std::string cons(Trim(text.substr(arrow + 2)));
  auto pred = ParsePredicate(cons, st);
  if (!pred.ok()) return pred.status();
  st.rule.consequence = *pred;
  return st.rule;
}

Result<std::vector<Ree>> ParseRules(std::string_view text,
                                    const DatabaseSchema& schema) {
  std::vector<Ree> out;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto rule = ParseRee(trimmed, schema);
    if (!rule.ok()) return rule.status();
    rule->id = "r" + std::to_string(out.size());
    out.push_back(std::move(*rule));
  }
  return out;
}

}  // namespace rock::rules
