#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/kg/graph.h"
#include "src/ml/library.h"
#include "src/obs/provenance.h"
#include "src/rules/ree.h"
#include "src/storage/relation.h"

namespace rock::rules {

/// Overlay of repaired cells and merged EIDs. The chase evaluates rules
/// against the repaired view of the data without mutating the raw relations;
/// it implements this interface over its fix store U.
class CellOverlay {
 public:
  virtual ~CellOverlay() = default;
  /// Repaired value of (rel, tid, attr), or nullopt to fall through to the
  /// raw data.
  virtual std::optional<Value> GetCell(int rel, int64_t tid,
                                       int attr) const = 0;
  /// Canonical EID of (rel, tid), or nullopt to use the stored EID.
  virtual std::optional<int64_t> GetEid(int rel, int64_t tid) const = 0;

  /// Tids whose (rel, attr) cell may differ from the raw data. The
  /// evaluator unions these with raw-value index hits so hash-join
  /// acceleration stays sound under an overlay (candidates are always
  /// re-verified against the overlay-aware predicate).
  virtual std::vector<int64_t> PatchedTids(int rel, int attr) const {
    (void)rel;
    (void)attr;
    return {};
  }

  /// Patched tids whose overlay value hashes to `value_hash` — the
  /// narrow variant the equality index uses (a patched cell with a
  /// different value cannot satisfy the equality anyway). Defaults to the
  /// broad set.
  virtual std::vector<int64_t> PatchedTidsEq(int rel, int attr,
                                             uint64_t value_hash) const {
    (void)value_hash;
    return PatchedTids(rel, attr);
  }
};

/// Oracle for the explicit temporal orders ⪯A of a temporal instance
/// (paper §2.2). Returns true/false when the order status of (tid1, tid2)
/// on `attr` is known, nullopt when unknown.
class TemporalOracle {
 public:
  virtual ~TemporalOracle() = default;
  virtual std::optional<bool> Holds(int rel, int attr, int64_t tid1,
                                    int64_t tid2, bool strict) const = 0;
};

/// Everything needed to evaluate REE++ predicates. graph/models/overlay/
/// temporal may be null when the rule set does not use them.
struct EvalContext {
  const Database* db = nullptr;
  const kg::KnowledgeGraph* graph = nullptr;
  const ml::MlLibrary* models = nullptr;
  const CellOverlay* overlay = nullptr;
  const TemporalOracle* temporal = nullptr;
  /// Shared memo of ML pair-predicate scores keyed by (model, pair
  /// content); nullptr disables caching. With a cache, kMlPair predicates
  /// threshold the memoized Score — identical to the default Predict, so
  /// only models relying on the default Score-vs-threshold Predict should
  /// run with a cache. Keys hash the overlay-aware cell *values*, so the
  /// cache stays sound across overlays, rules and workers.
  ml::MlScoreCache* ml_cache = nullptr;
};

/// A valuation h of a rule's variables: a row index per tuple variable and
/// a vertex id per vertex variable (paper §2.1/§2.3 semantics).
struct Valuation {
  std::vector<int> rows;
  std::vector<kg::VertexId> vertices;

  bool operator==(const Valuation& other) const {
    return rows == other.rows && vertices == other.vertices;
  }
};

/// Evaluates REE++s over a database (+ optional graph/models/overlay).
/// Satisfaction follows §2: comparisons touching null are unsatisfied
/// (except the explicit null(t[A]) predicate); ML predicates delegate to
/// the model library; temporal predicates consult the oracle, then
/// timestamps, then (for ranker-backed predicates) M_rank.
class Evaluator {
 public:
  explicit Evaluator(EvalContext ctx) : ctx_(ctx) {}

  const EvalContext& context() const { return ctx_; }

  /// The (overlay-aware) value of attribute `attr` of the tuple bound to
  /// variable `var`.
  Value GetCell(const Ree& rule, const Valuation& v, int var, int attr) const;

  /// The (overlay-aware) EID of the tuple bound to `var`.
  int64_t GetEid(const Ree& rule, const Valuation& v, int var) const;

  /// The bound tuple itself (raw, without overlay).
  const Tuple& GetTuple(const Ree& rule, const Valuation& v, int var) const;

  /// Overlay-aware copy of the full value vector of `var`'s tuple.
  std::vector<Value> GetValues(const Ree& rule, const Valuation& v,
                               int var) const;

  /// h |= p.
  bool Satisfies(const Ree& rule, const Valuation& v,
                 const Predicate& p) const;

  /// h |= X (every precondition predicate).
  bool SatisfiesPrecondition(const Ree& rule, const Valuation& v) const;

  /// The full witness of `v` satisfying `rule`'s precondition: the rule
  /// text, the tuple bindings, every cell the precondition read (with its
  /// overlay-aware value; sources default to kRaw / kOracle — the fix
  /// store upgrades them to ground-truth / prior-fix when it knows the
  /// cell is validated), and every ML-predicate invocation re-scored so
  /// the proof records the actual score against its threshold. Call only
  /// for valuations that satisfy the precondition.
  obs::Witness CaptureWitness(const Ree& rule, const Valuation& v) const;

  /// Enumerates valuations with h |= X. The callback returns false to stop
  /// early. Equality predicates against already-bound variables and
  /// constants are pushed into hash-index lookups; HER predicates restrict
  /// vertex candidates via the model's blocking index.
  ///
  /// When pinned_var >= 0, that tuple variable is fixed to row pinned_row —
  /// the delta enumeration used by incremental detection and the
  /// incremental chase (only valuations touching an updated tuple fire).
  void ForEachSatisfying(const Ree& rule,
                         const std::function<bool(const Valuation&)>& cb,
                         int pinned_var = -1, int pinned_row = -1) const;

  /// Pre-scores the rule's ML pair predicates into ctx().ml_cache with one
  /// ScoreBatch per model: enumerates valuations satisfying the *non-ML*
  /// precondition predicates, collects each ML predicate's (a, b) value
  /// pair, dedups against the cache and the round's pending set, then
  /// scores every pending batch through the model's batched path. Later
  /// Satisfies calls hit the memo instead of re-scoring per pair.
  ///
  /// Warms only rules where every ML pair predicate binds at the deepest
  /// tuple variable and no vertex variables exist — skipping the ML
  /// predicates then loses no pruning at shallower depths, so the warm
  /// enumeration visits no more prefixes than the real one. Other rules
  /// return 0 and fall back to per-pair scoring (which still populates the
  /// cache). Cached values equal the scalar path's bitwise, so warming
  /// never changes detection results. Returns the number of pairs scored.
  size_t WarmMlCache(const Ree& rule, ml::BatchScratch* scratch,
                     int pinned_var = -1, int pinned_row = -1) const;

  /// Enumerates violations: h |= X but h !|= p0.
  void ForEachViolation(const Ree& rule,
                        const std::function<bool(const Valuation&)>& cb) const;

  /// Counts (#h |= X, #h |= X ∧ p0) — the support/confidence counters used
  /// by discovery. Stops early after `cap` satisfying valuations when
  /// cap > 0.
  std::pair<size_t, size_t> CountSupport(const Ree& rule,
                                         size_t cap = 0) const;

 private:
  EvalContext ctx_;
  // Lazily built equality indexes: (rel, attr) -> value hash -> rows.
  mutable std::map<std::pair<int, int>,
                   std::unordered_map<uint64_t, std::vector<int>>>
      eq_index_;

  /// Fills `out` with candidate rows for value equality on (rel, attr):
  /// raw-index hits plus overlay-patched rows. Returns false when no
  /// restriction is possible.
  bool LookupCandidates(int rel, int attr, const Value& value,
                        std::vector<int>* out) const;
  void Recurse(const Ree& rule, Valuation& v, size_t depth,
               const std::vector<std::vector<const Predicate*>>& ready_preds,
               const std::function<bool(const Valuation&)>& cb,
               bool& keep_going, int pinned_var, int pinned_row) const;
  bool AssignVertices(const Ree& rule, Valuation& v, int vertex_depth,
                      const std::function<bool(const Valuation&)>& cb,
                      bool& keep_going) const;
};

}  // namespace rock::rules

