#include "src/rules/classic.h"

namespace rock::rules {
namespace {

/// Negates a comparison operator (for DC consequence construction).
CmpOp Negate(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return CmpOp::kNe;
}

Result<int> RequireAttr(const Schema& schema, const std::string& name) {
  int attr = schema.AttributeIndex(name);
  if (attr < 0) {
    return Status::InvalidArgument("no attribute '" + name + "' in " +
                                   schema.name());
  }
  return attr;
}

}  // namespace

Result<std::vector<Ree>> CfdToRees(const Cfd& cfd,
                                   const DatabaseSchema& schema) {
  int rel = schema.RelationIndex(cfd.relation);
  if (rel < 0) {
    return Status::InvalidArgument("no relation " + cfd.relation);
  }
  const Schema& relation = schema.relation(rel);
  if (!cfd.pattern.empty() && cfd.pattern.size() != cfd.lhs.size()) {
    return Status::InvalidArgument("pattern arity != LHS arity");
  }

  std::vector<Predicate> precondition;
  for (size_t i = 0; i < cfd.lhs.size(); ++i) {
    auto attr = RequireAttr(relation, cfd.lhs[i]);
    if (!attr.ok()) return attr.status();
    precondition.push_back(
        Predicate::AttrCompare(0, *attr, CmpOp::kEq, 1, *attr));
    if (!cfd.pattern.empty() && !cfd.pattern[i].empty() &&
        cfd.pattern[i] != "_") {
      auto constant = Value::Parse(cfd.pattern[i],
                                   relation.AttributeType(*attr));
      if (!constant.ok()) return constant.status();
      precondition.push_back(
          Predicate::Constant(0, *attr, CmpOp::kEq, *constant));
      precondition.push_back(
          Predicate::Constant(1, *attr, CmpOp::kEq, *constant));
    }
  }

  std::vector<Ree> out;
  for (const std::string& rhs : cfd.rhs) {
    auto attr = RequireAttr(relation, rhs);
    if (!attr.ok()) return attr.status();
    Ree rule;
    rule.id = "cfd:" + cfd.relation + ":" + rhs;
    rule.tuple_vars = {rel, rel};
    rule.precondition = precondition;
    rule.consequence = Predicate::AttrCompare(0, *attr, CmpOp::kEq, 1, *attr);
    out.push_back(std::move(rule));
  }
  if (out.empty()) {
    return Status::InvalidArgument("CFD has no RHS attributes");
  }
  return out;
}

Result<Ree> DcToRee(const DenialConstraint& dc,
                    const DatabaseSchema& schema) {
  int rel = schema.RelationIndex(dc.relation);
  if (rel < 0) {
    return Status::InvalidArgument("no relation " + dc.relation);
  }
  if (dc.predicates.empty()) {
    return Status::InvalidArgument("DC needs at least one predicate");
  }
  const Schema& relation = schema.relation(rel);
  Ree rule;
  rule.id = "dc:" + dc.relation;
  rule.tuple_vars = {rel, rel};
  // ¬(p1 ∧ ... ∧ pk)  ≡  p1 ∧ ... ∧ p(k-1) -> ¬pk.
  for (size_t i = 0; i + 1 < dc.predicates.size(); ++i) {
    auto a = RequireAttr(relation, dc.predicates[i].attr_a);
    if (!a.ok()) return a.status();
    auto b = RequireAttr(relation, dc.predicates[i].attr_b);
    if (!b.ok()) return b.status();
    rule.precondition.push_back(
        Predicate::AttrCompare(0, *a, dc.predicates[i].op, 1, *b));
  }
  const auto& last = dc.predicates.back();
  auto a = RequireAttr(relation, last.attr_a);
  if (!a.ok()) return a.status();
  auto b = RequireAttr(relation, last.attr_b);
  if (!b.ok()) return b.status();
  rule.consequence =
      Predicate::AttrCompare(0, *a, Negate(last.op), 1, *b);
  return rule;
}

Result<Ree> MdToRee(const MatchingDependency& md,
                    const DatabaseSchema& schema) {
  int rel = schema.RelationIndex(md.relation);
  if (rel < 0) {
    return Status::InvalidArgument("no relation " + md.relation);
  }
  if (md.similar_attrs.empty()) {
    return Status::InvalidArgument("MD needs at least one attribute");
  }
  const Schema& relation = schema.relation(rel);
  std::vector<int> attrs;
  for (const std::string& name : md.similar_attrs) {
    auto attr = RequireAttr(relation, name);
    if (!attr.ok()) return attr.status();
    attrs.push_back(*attr);
  }
  Ree rule;
  rule.id = "md:" + md.relation;
  rule.tuple_vars = {rel, rel};
  rule.precondition.push_back(
      Predicate::MlPair(md.matcher, 0, attrs, 1, attrs));
  rule.consequence = Predicate::EidCompare(0, CmpOp::kEq, 1);
  return rule;
}

}  // namespace rock::rules
