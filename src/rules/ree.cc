#include "src/rules/ree.h"

#include "src/common/strings.h"

namespace rock::rules {
namespace {

std::string AttrName(const Ree& rule, const DatabaseSchema& schema, int var,
                     int attr) {
  if (attr == kEidAttr) return "eid";
  int rel = rule.tuple_vars[static_cast<size_t>(var)];
  return schema.relation(rel).AttributeName(attr);
}

std::string AttrList(const Ree& rule, const DatabaseSchema& schema, int var,
                     const std::vector<int>& attrs) {
  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (int a : attrs) names.push_back(AttrName(rule, schema, var, a));
  return Join(names, ",");
}

std::string ConstantLiteral(const Value& v) {
  if (v.type() == ValueType::kString) {
    std::string out = "'";
    for (char c : v.AsString()) {
      if (c == '\'') out += "\\'";
      else out.push_back(c);
    }
    out += "'";
    return out;
  }
  return v.ToString();
}

}  // namespace

const char* RuleTaskName(RuleTask task) {
  switch (task) {
    case RuleTask::kEr:
      return "ER";
    case RuleTask::kCr:
      return "CR";
    case RuleTask::kTd:
      return "TD";
    case RuleTask::kMi:
      return "MI";
    case RuleTask::kGeneral:
      return "GEN";
  }
  return "?";
}

RuleTask Ree::Task() const {
  const Predicate& p = consequence;
  switch (p.kind) {
    case PredicateKind::kAttrCompare:
      return p.attr == kEidAttr ? RuleTask::kEr : RuleTask::kCr;
    case PredicateKind::kConstant: {
      // A constant consequence guarded by null(t[A]) is imputation;
      // otherwise it is conflict resolution.
      for (const Predicate& q : precondition) {
        if (q.kind == PredicateKind::kIsNull && q.var == p.var &&
            q.attr == p.attr) {
          return RuleTask::kMi;
        }
      }
      return RuleTask::kCr;
    }
    case PredicateKind::kTemporal:
      return RuleTask::kTd;
    case PredicateKind::kValExtract:
    case PredicateKind::kPredictValue:
      return RuleTask::kMi;
    case PredicateKind::kMlPair:
    case PredicateKind::kCorrelation:
    case PredicateKind::kHer:
    case PredicateKind::kPathMatch:
    case PredicateKind::kIsNull:
      return RuleTask::kGeneral;
  }
  return RuleTask::kGeneral;
}

bool Ree::UsesMl() const {
  auto is_ml = [](const Predicate& p) {
    switch (p.kind) {
      case PredicateKind::kMlPair:
      case PredicateKind::kHer:
      case PredicateKind::kPathMatch:
      case PredicateKind::kCorrelation:
      case PredicateKind::kPredictValue:
        return true;
      case PredicateKind::kTemporal:
        return !p.model.empty();  // ranker-backed temporal predicate
      default:
        return false;
    }
  };
  for (const Predicate& p : precondition) {
    if (is_ml(p)) return true;
  }
  return is_ml(consequence);
}

std::string PredicateToString(const Predicate& p, const Ree& rule,
                              const DatabaseSchema& schema) {
  auto var_name = [](int v) { return "t" + std::to_string(v); };
  auto vertex_name = [](int v) { return "x" + std::to_string(v); };
  switch (p.kind) {
    case PredicateKind::kConstant:
      return var_name(p.var) + "." + AttrName(rule, schema, p.var, p.attr) +
             " " + CmpOpName(p.op) + " " + ConstantLiteral(p.constant);
    case PredicateKind::kAttrCompare:
      return var_name(p.var) + "." + AttrName(rule, schema, p.var, p.attr) +
             " " + CmpOpName(p.op) + " " + var_name(p.var2) + "." +
             AttrName(rule, schema, p.var2, p.attr2);
    case PredicateKind::kMlPair:
      return p.model + "(" + var_name(p.var) + "[" +
             AttrList(rule, schema, p.var, p.attrs_a) + "], " +
             var_name(p.var2) + "[" +
             AttrList(rule, schema, p.var2, p.attrs_b) + "])";
    case PredicateKind::kTemporal: {
      std::string op = p.strict ? "<" : "<=";
      std::string base = var_name(p.var) + " " + op + "[" +
                         AttrName(rule, schema, p.var, p.attr) + "] " +
                         var_name(p.var2);
      if (!p.model.empty()) {
        return p.model + "(" + var_name(p.var) + ", " + var_name(p.var2) +
               ", " + op + "[" + AttrName(rule, schema, p.var, p.attr) + "])";
      }
      return base;
    }
    case PredicateKind::kHer:
      return "HER(" + var_name(p.var) + ", " + vertex_name(p.vertex_var) + ")";
    case PredicateKind::kPathMatch:
      return "match(" + var_name(p.var) + "." +
             AttrName(rule, schema, p.var, p.attr) + ", " +
             vertex_name(p.vertex_var) + ".(" + Join(p.path, ",") + "))";
    case PredicateKind::kValExtract:
      return var_name(p.var) + "." + AttrName(rule, schema, p.var, p.attr) +
             " = val(" + vertex_name(p.vertex_var) + ".(" +
             Join(p.path, ",") + "))";
    case PredicateKind::kCorrelation: {
      std::string target =
          var_name(p.var) + "." + AttrName(rule, schema, p.var, p.attr2);
      if (p.has_constant) target += "=" + ConstantLiteral(p.constant);
      return p.model + "(" + var_name(p.var) + "[" +
             AttrList(rule, schema, p.var, p.attrs_a) + "], " + target +
             ") >= " + StrFormat("%g", p.threshold);
    }
    case PredicateKind::kPredictValue:
      return var_name(p.var) + "." + AttrName(rule, schema, p.var, p.attr2) +
             " = " + p.model + "(" + var_name(p.var) + "[" +
             AttrList(rule, schema, p.var, p.attrs_a) + "], " +
             AttrName(rule, schema, p.var, p.attr2) + ")";
    case PredicateKind::kIsNull:
      return "null(" + var_name(p.var) + "." +
             AttrName(rule, schema, p.var, p.attr) + ")";
  }
  return "?";
}

std::string Ree::ToString(const DatabaseSchema& schema) const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < tuple_vars.size(); ++i) {
    parts.push_back(schema.relation(tuple_vars[i]).name() + "(t" +
                    std::to_string(i) + ")");
  }
  for (int j = 0; j < num_vertex_vars; ++j) {
    parts.push_back("vertex(x" + std::to_string(j) + ", G)");
  }
  for (const Predicate& p : precondition) {
    parts.push_back(PredicateToString(p, *this, schema));
  }
  return Join(parts, " ^ ") + " -> " +
         PredicateToString(consequence, *this, schema);
}

bool Ree::SameRule(const Ree& other) const {
  if (tuple_vars != other.tuple_vars ||
      num_vertex_vars != other.num_vertex_vars ||
      !(consequence == other.consequence) ||
      precondition.size() != other.precondition.size()) {
    return false;
  }
  // Order-insensitive precondition comparison.
  std::vector<bool> used(other.precondition.size(), false);
  for (const Predicate& p : precondition) {
    bool found = false;
    for (size_t j = 0; j < other.precondition.size(); ++j) {
      if (!used[j] && p == other.precondition[j]) {
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace rock::rules
