#include "src/rules/predicate.h"

#include <algorithm>

namespace rock::rules {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, int three_way) {
  switch (op) {
    case CmpOp::kEq:
      return three_way == 0;
    case CmpOp::kNe:
      return three_way != 0;
    case CmpOp::kLt:
      return three_way < 0;
    case CmpOp::kLe:
      return three_way <= 0;
    case CmpOp::kGt:
      return three_way > 0;
    case CmpOp::kGe:
      return three_way >= 0;
  }
  return false;
}

Predicate Predicate::Constant(int var, int attr, CmpOp op, Value c) {
  Predicate p;
  p.kind = PredicateKind::kConstant;
  p.var = var;
  p.attr = attr;
  p.op = op;
  p.constant = std::move(c);
  p.has_constant = true;
  return p;
}

Predicate Predicate::AttrCompare(int var, int attr, CmpOp op, int var2,
                                 int attr2) {
  Predicate p;
  p.kind = PredicateKind::kAttrCompare;
  p.var = var;
  p.attr = attr;
  p.op = op;
  p.var2 = var2;
  p.attr2 = attr2;
  return p;
}

Predicate Predicate::EidCompare(int var, CmpOp op, int var2) {
  return AttrCompare(var, kEidAttr, op, var2, kEidAttr);
}

Predicate Predicate::MlPair(std::string model, int var,
                            std::vector<int> attrs_a, int var2,
                            std::vector<int> attrs_b) {
  Predicate p;
  p.kind = PredicateKind::kMlPair;
  p.model = std::move(model);
  p.var = var;
  p.attrs_a = std::move(attrs_a);
  p.var2 = var2;
  p.attrs_b = std::move(attrs_b);
  return p;
}

Predicate Predicate::Temporal(int var, int var2, int attr, bool strict,
                              std::string ranker_model) {
  Predicate p;
  p.kind = PredicateKind::kTemporal;
  p.var = var;
  p.var2 = var2;
  p.attr = attr;
  p.strict = strict;
  p.model = std::move(ranker_model);
  return p;
}

Predicate Predicate::Her(int var, int vertex_var) {
  Predicate p;
  p.kind = PredicateKind::kHer;
  p.var = var;
  p.vertex_var = vertex_var;
  return p;
}

Predicate Predicate::PathMatch(int var, int attr, int vertex_var,
                               std::vector<std::string> path) {
  Predicate p;
  p.kind = PredicateKind::kPathMatch;
  p.var = var;
  p.attr = attr;
  p.vertex_var = vertex_var;
  p.path = std::move(path);
  return p;
}

Predicate Predicate::ValExtract(int var, int attr, int vertex_var,
                                std::vector<std::string> path) {
  Predicate p;
  p.kind = PredicateKind::kValExtract;
  p.var = var;
  p.attr = attr;
  p.vertex_var = vertex_var;
  p.path = std::move(path);
  return p;
}

Predicate Predicate::Correlation(std::string model, int var,
                                 std::vector<int> attrs_a, int attr_b,
                                 double threshold) {
  Predicate p;
  p.kind = PredicateKind::kCorrelation;
  p.model = std::move(model);
  p.var = var;
  p.attrs_a = std::move(attrs_a);
  p.attr2 = attr_b;
  p.threshold = threshold;
  return p;
}

Predicate Predicate::CorrelationConst(std::string model, int var,
                                      std::vector<int> attrs_a, int attr_b,
                                      Value candidate, double threshold) {
  Predicate p = Correlation(std::move(model), var, std::move(attrs_a), attr_b,
                            threshold);
  p.constant = std::move(candidate);
  p.has_constant = true;
  return p;
}

Predicate Predicate::PredictValue(std::string model, int var,
                                  std::vector<int> attrs_a, int attr_b) {
  Predicate p;
  p.kind = PredicateKind::kPredictValue;
  p.model = std::move(model);
  p.var = var;
  p.attrs_a = std::move(attrs_a);
  p.attr2 = attr_b;
  return p;
}

Predicate Predicate::IsNull(int var, int attr) {
  Predicate p;
  p.kind = PredicateKind::kIsNull;
  p.var = var;
  p.attr = attr;
  return p;
}

std::vector<int> Predicate::TupleVars() const {
  std::vector<int> out;
  if (var >= 0) out.push_back(var);
  if (var2 >= 0 && var2 != var) out.push_back(var2);
  return out;
}

bool Predicate::Mentions(int var_index, int attr_index) const {
  auto in = [attr_index](const std::vector<int>& v) {
    return std::find(v.begin(), v.end(), attr_index) != v.end();
  };
  if (var == var_index) {
    if (attr == attr_index) return true;
    if (kind == PredicateKind::kCorrelation ||
        kind == PredicateKind::kPredictValue) {
      if (attr2 == attr_index) return true;
    }
    if (in(attrs_a)) return true;
  }
  if (var2 == var_index) {
    if (kind == PredicateKind::kAttrCompare && attr2 == attr_index) {
      return true;
    }
    if (kind == PredicateKind::kTemporal && attr == attr_index) return true;
    if (in(attrs_b)) return true;
  }
  return false;
}

bool Predicate::operator==(const Predicate& other) const {
  return kind == other.kind && op == other.op && var == other.var &&
         var2 == other.var2 && vertex_var == other.vertex_var &&
         attr == other.attr && attr2 == other.attr2 &&
         has_constant == other.has_constant &&
         (!has_constant || constant == other.constant) &&
         model == other.model && attrs_a == other.attrs_a &&
         attrs_b == other.attrs_b && strict == other.strict &&
         path == other.path && threshold == other.threshold;
}

}  // namespace rock::rules
