#include "src/storage/schema.h"

namespace rock {

int Schema::AttributeIndex(std::string_view attr) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == attr) return static_cast<int>(i);
  }
  return -1;
}

Status DatabaseSchema::AddRelation(Schema schema) {
  if (RelationIndex(schema.name()) >= 0) {
    return Status::AlreadyExists("relation already defined: " + schema.name());
  }
  relations_.push_back(std::move(schema));
  return Status::Ok();
}

int DatabaseSchema::RelationIndex(std::string_view name) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace rock
