#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/value.h"

namespace rock {

/// One attribute of a relation schema: a name and a type τ.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kString;
};

/// A relation schema R(A1:τ1, ..., Ak:τk). Following [21] (paper §2), every
/// tuple additionally carries a built-in EID identifying the entity it
/// represents; EID is not listed among the attributes.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<AttributeDef> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t num_attributes() const { return attributes_.size(); }

  /// Index of the attribute named `attr`, or -1 if absent.
  int AttributeIndex(std::string_view attr) const;

  /// Type of attribute `index`; precondition: valid index.
  ValueType AttributeType(int index) const {
    return attributes_[static_cast<size_t>(index)].type;
  }

  const std::string& AttributeName(int index) const {
    return attributes_[static_cast<size_t>(index)].name;
  }

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
};

/// A database schema R = (R1, ..., Rm).
class DatabaseSchema {
 public:
  /// Adds a relation schema; names must be unique.
  Status AddRelation(Schema schema);

  int RelationIndex(std::string_view name) const;
  const Schema& relation(int index) const {
    return relations_[static_cast<size_t>(index)];
  }
  size_t num_relations() const { return relations_.size(); }
  const std::vector<Schema>& relations() const { return relations_; }

 private:
  std::vector<Schema> relations_;
};

}  // namespace rock

