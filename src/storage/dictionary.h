#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/storage/relation.h"

namespace rock {

/// Dense string interning for batch feature extraction: the first Intern of
/// a string assigns the next uint32 id, later calls return the same id, and
/// per-id derived data (tokenizations, similarity memos) can live in plain
/// vectors indexed by id. Not thread-safe; batch callers keep one per
/// worker scratch and Clear() it between rounds.
class StringInterner {
 public:
  /// Id for `s`, assigning the next dense id on first sight.
  uint32_t Intern(std::string_view s);

  /// The string for a previously returned id.
  const std::string& Lookup(uint32_t id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  /// Rough heap footprint: string payloads (counted twice — the dense
  /// vector and the id map each hold a copy), per-entry map nodes, and the
  /// bucket array. Cross-check for the allocation-delta columns.
  size_t ApproxBytes() const {
    size_t bytes = strings_.capacity() * sizeof(std::string) +
                   ids_.bucket_count() * sizeof(void*);
    for (const std::string& s : strings_) {
      const size_t payload = s.capacity() > kSsoCapacity ? s.capacity() : 0;
      bytes += 2 * payload +
               sizeof(std::pair<const std::string, uint32_t>) + sizeof(void*);
    }
    return bytes;
  }

  /// Drops all ids; previously returned ids become invalid.
  void Clear();

 private:
  /// Typical SSO threshold: strings at or under this capacity allocate
  /// no heap payload.
  static constexpr size_t kSsoCapacity = 15;

  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, uint32_t, TransparentHash, std::equal_to<>>
      ids_;
  std::vector<std::string> strings_;
};

/// Dictionary encoding for one relation (paper §5.1: Crystal "transforms
/// attribute values to unique ids, and builds (a) a row-oriented copy ...
/// and (b) a column-oriented copy such that similar values are gathered
/// together"). Value ids are dense uint32 per attribute; the column copy
/// stores, per attribute, the row lists grouped by value id, ordered so
/// that similar values (by sort order, a stand-in for the paper's pretrained
/// clustering model) are adjacent.
class DictionaryEncodedRelation {
 public:
  /// Builds both copies from `relation`. Null gets its own value id 0.
  static DictionaryEncodedRelation Build(const Relation& relation);

  /// Number of distinct values (including null if present) in `attr`.
  size_t NumDistinct(int attr) const {
    return dictionaries_[static_cast<size_t>(attr)].size();
  }

  /// The value id of cell (row, attr) in the row-oriented copy.
  uint32_t CodeAt(size_t row, int attr) const {
    return rows_[row][static_cast<size_t>(attr)];
  }

  /// Decoded value for a value id.
  const Value& Decode(int attr, uint32_t code) const {
    return dictionaries_[static_cast<size_t>(attr)][code];
  }

  /// Value id for `v` in `attr`, or -1 when `v` never occurs there.
  int64_t Encode(int attr, const Value& v) const;

  /// Row indices holding value id `code` in `attr` (column-oriented copy).
  const std::vector<uint32_t>& RowsWithCode(int attr, uint32_t code) const {
    return postings_[static_cast<size_t>(attr)][code];
  }

  /// Codes of `attr` in similarity order (sorted values): adjacent codes in
  /// this list are the most similar values.
  const std::vector<uint32_t>& SimilarityOrder(int attr) const {
    return similarity_order_[static_cast<size_t>(attr)];
  }

  size_t num_rows() const { return rows_.size(); }

 private:
  // rows_[row][attr] = value id (row-oriented copy).
  std::vector<std::vector<uint32_t>> rows_;
  // dictionaries_[attr][code] = value.
  std::vector<std::vector<Value>> dictionaries_;
  // postings_[attr][code] = rows containing that code (column copy).
  std::vector<std::vector<std::vector<uint32_t>>> postings_;
  // similarity_order_[attr] = codes sorted by value.
  std::vector<std::vector<uint32_t>> similarity_order_;
};

}  // namespace rock

