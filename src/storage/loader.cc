#include "src/storage/loader.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace rock {
namespace {

bool IsNullLiteral(const std::string& cell, const CsvLoadOptions& options) {
  std::string trimmed(Trim(cell));
  for (const std::string& literal : options.null_literals) {
    if (trimmed == literal) return true;
  }
  return false;
}

bool ParsesAsInt(const std::string& cell) {
  std::string trimmed(Trim(cell));
  if (trimmed.empty()) return false;
  char* end = nullptr;
  std::strtoll(trimmed.c_str(), &end, 10);
  return end != trimmed.c_str() && *end == '\0';
}

bool ParsesAsDouble(const std::string& cell) {
  std::string trimmed(Trim(cell));
  if (trimmed.empty()) return false;
  char* end = nullptr;
  std::strtod(trimmed.c_str(), &end);
  return end != trimmed.c_str() && *end == '\0';
}

bool IsTimestampColumn(const std::string& name,
                       const CsvLoadOptions& options) {
  return !options.timestamp_suffix.empty() &&
         EndsWith(name, options.timestamp_suffix);
}

}  // namespace

Result<Schema> InferCsvSchema(const std::string& relation_name,
                              const CsvTable& table,
                              const CsvLoadOptions& options) {
  std::vector<AttributeDef> attributes;
  for (size_t col = 0; col < table.header.size(); ++col) {
    const std::string& name = table.header[col];
    if (name == options.eid_column || IsTimestampColumn(name, options)) {
      continue;
    }
    bool any_value = false;
    bool all_int = true;
    bool all_double = true;
    for (const auto& row : table.rows) {
      const std::string& cell = row[col];
      if (IsNullLiteral(cell, options)) continue;
      any_value = true;
      all_int = all_int && ParsesAsInt(cell);
      all_double = all_double && ParsesAsDouble(cell);
    }
    ValueType type = ValueType::kString;
    if (any_value && all_int) {
      type = ValueType::kInt;
    } else if (any_value && all_double) {
      type = ValueType::kDouble;
    }
    attributes.push_back({name, type});
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("CSV has no data columns");
  }
  return Schema(relation_name, std::move(attributes));
}

Result<size_t> LoadCsvInto(Database* db, int rel_index,
                           const CsvTable& table,
                           const CsvLoadOptions& options) {
  if (rel_index < 0 ||
      rel_index >= static_cast<int>(db->num_relations())) {
    return Status::OutOfRange("bad relation index");
  }
  const Schema& schema = db->relation(rel_index).schema();

  // Map schema attributes to CSV columns.
  std::vector<int> column_of(schema.num_attributes(), -1);
  int eid_column = -1;
  std::vector<std::pair<int, int>> timestamp_columns;  // (attr, col)
  for (size_t col = 0; col < table.header.size(); ++col) {
    const std::string& name = table.header[col];
    if (!options.eid_column.empty() && name == options.eid_column) {
      eid_column = static_cast<int>(col);
      continue;
    }
    if (IsTimestampColumn(name, options)) {
      std::string base =
          name.substr(0, name.size() - options.timestamp_suffix.size());
      int attr = schema.AttributeIndex(base);
      if (attr >= 0) timestamp_columns.emplace_back(attr, col);
      continue;
    }
    int attr = schema.AttributeIndex(name);
    if (attr >= 0) column_of[static_cast<size_t>(attr)] = static_cast<int>(col);
  }
  for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
    if (column_of[attr] < 0) {
      return Status::InvalidArgument("CSV is missing column '" +
                                     schema.AttributeName(
                                         static_cast<int>(attr)) + "'");
    }
  }

  size_t inserted = 0;
  for (const auto& row : table.rows) {
    Tuple t;
    t.values.reserve(schema.num_attributes());
    for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
      const std::string& cell = row[static_cast<size_t>(column_of[attr])];
      if (IsNullLiteral(cell, options)) {
        t.values.push_back(Value::Null());
        continue;
      }
      auto value = Value::Parse(cell, schema.AttributeType(
                                          static_cast<int>(attr)));
      if (!value.ok()) {
        return Status::InvalidArgument(
            "row " + std::to_string(inserted) + ", column '" +
            schema.AttributeName(static_cast<int>(attr)) +
            "': " + value.status().message());
      }
      t.values.push_back(std::move(*value));
    }
    if (!timestamp_columns.empty()) {
      t.timestamps.assign(schema.num_attributes(), kNoTimestamp);
      for (const auto& [attr, col] : timestamp_columns) {
        const std::string& cell = row[static_cast<size_t>(col)];
        if (IsNullLiteral(cell, options)) continue;
        auto ts = Value::Parse(cell, ValueType::kInt);
        if (ts.ok() && !ts->is_null()) {
          t.timestamps[static_cast<size_t>(attr)] = ts->AsInt();
        }
      }
    }
    if (eid_column >= 0) {
      const std::string& cell = row[static_cast<size_t>(eid_column)];
      if (!IsNullLiteral(cell, options)) {
        if (ParsesAsInt(cell)) {
          t.eid = std::strtoll(std::string(Trim(cell)).c_str(), nullptr, 10);
        } else {
          // Textual entity keys hash into the (collision-checked-by-type)
          // eid space above any plausible tid.
          t.eid = static_cast<int64_t>(
              Hash64(std::string(Trim(cell))) >> 1);
        }
      }
    }
    ROCK_RETURN_IF_ERROR(db->Insert(rel_index, std::move(t)).status());
    ++inserted;
  }
  return inserted;
}

Result<int> AddRelationFromCsv(Database* db,
                               const std::string& relation_name,
                               const CsvTable& table,
                               const CsvLoadOptions& options) {
  auto schema = InferCsvSchema(relation_name, table, options);
  if (!schema.ok()) return schema.status();
  // Database's schema is fixed at construction; rebuild with the new
  // relation appended, preserving existing data.
  DatabaseSchema new_schema;
  for (size_t rel = 0; rel < db->num_relations(); ++rel) {
    ROCK_RETURN_IF_ERROR(
        new_schema.AddRelation(db->relation(static_cast<int>(rel)).schema()));
  }
  ROCK_RETURN_IF_ERROR(new_schema.AddRelation(*schema));
  Database rebuilt(std::move(new_schema));
  for (size_t rel = 0; rel < db->num_relations(); ++rel) {
    const Relation& relation = db->relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      Tuple copy = relation.tuple(row);
      copy.tid = -1;
      ROCK_RETURN_IF_ERROR(
          rebuilt.Insert(static_cast<int>(rel), std::move(copy)).status());
    }
  }
  int new_index = static_cast<int>(rebuilt.num_relations()) - 1;
  auto inserted = LoadCsvInto(&rebuilt, new_index, table, options);
  if (!inserted.ok()) return inserted.status();
  *db = std::move(rebuilt);
  return new_index;
}

CsvTable RelationToCsv(const Relation& relation,
                       const CsvLoadOptions& options) {
  CsvTable out;
  const Schema& schema = relation.schema();
  out.header.push_back("eid");
  bool any_timestamps = false;
  for (size_t row = 0; row < relation.size(); ++row) {
    if (!relation.tuple(row).timestamps.empty()) any_timestamps = true;
  }
  for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
    out.header.push_back(schema.AttributeName(static_cast<int>(attr)));
  }
  if (any_timestamps) {
    for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
      out.header.push_back(schema.AttributeName(static_cast<int>(attr)) +
                           options.timestamp_suffix);
    }
  }
  for (size_t row = 0; row < relation.size(); ++row) {
    const Tuple& t = relation.tuple(row);
    std::vector<std::string> record;
    record.push_back(std::to_string(t.eid));
    for (const Value& v : t.values) {
      record.push_back(v.is_null() ? "" : v.ToString());
    }
    if (any_timestamps) {
      for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
        int64_t ts = t.timestamp(static_cast<int>(attr));
        record.push_back(ts == kNoTimestamp ? "" : std::to_string(ts));
      }
    }
    out.rows.push_back(std::move(record));
  }
  return out;
}

}  // namespace rock
