#pragma once

#include <string>

#include "src/common/csv.h"
#include "src/common/status.h"
#include "src/storage/relation.h"

namespace rock {

/// Options for CSV ingestion into a relation.
struct CsvLoadOptions {
  /// Name of the column carrying the entity id; empty = every tuple is its
  /// own entity. The column is consumed (not stored as an attribute).
  std::string eid_column;
  /// Per-attribute timestamp columns are recognized by this suffix, e.g.
  /// "city__ts" carries T(t[city]) as epoch seconds; empty disables.
  std::string timestamp_suffix = "__ts";
  /// Cells equal to any of these (after trimming) parse as null.
  std::vector<std::string> null_literals = {"", "null", "NULL", "NA"};
};

/// Infers a schema from a CSV header + rows: a column is kInt if every
/// non-null cell parses as an integer, else kDouble if numeric, else
/// kString. Timestamp columns (suffix) and the EID column are excluded
/// from the schema.
Result<Schema> InferCsvSchema(const std::string& relation_name,
                              const CsvTable& table,
                              const CsvLoadOptions& options = {});

/// Loads a CSV table into `db`'s relation `rel_index` (whose schema must
/// match the CSV's non-special columns by name). Returns the number of
/// tuples inserted.
Result<size_t> LoadCsvInto(Database* db, int rel_index,
                           const CsvTable& table,
                           const CsvLoadOptions& options = {});

/// One-shot: infer a schema, add the relation to `db`, load the rows.
/// Returns the new relation's index.
Result<int> AddRelationFromCsv(Database* db,
                               const std::string& relation_name,
                               const CsvTable& table,
                               const CsvLoadOptions& options = {});

/// Serializes a relation back to CSV (EID as a leading "eid" column;
/// timestamps appended with the configured suffix when present).
CsvTable RelationToCsv(const Relation& relation,
                       const CsvLoadOptions& options = {});

}  // namespace rock

