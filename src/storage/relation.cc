#include "src/storage/relation.h"

#include <algorithm>

namespace rock {

Status Relation::Append(Tuple tuple) {
  if (tuple.values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "tuple arity mismatch for " + schema_.name() + ": expected " +
        std::to_string(schema_.num_attributes()) + " got " +
        std::to_string(tuple.values.size()));
  }
  for (size_t i = 0; i < tuple.values.size(); ++i) {
    const Value& v = tuple.values[i];
    if (v.is_null()) continue;
    ValueType expected = schema_.attributes()[i].type;
    bool ok = v.type() == expected ||
              (expected == ValueType::kDouble && v.type() == ValueType::kInt);
    if (!ok) {
      return Status::InvalidArgument(
          "type mismatch for " + schema_.name() + "." +
          schema_.attributes()[i].name + ": expected " +
          ValueTypeName(expected) + " got " + ValueTypeName(v.type()));
    }
  }
  if (!tuple.timestamps.empty() &&
      tuple.timestamps.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("timestamp arity mismatch for " +
                                   schema_.name());
  }
  if (tuple.tid < 0) {
    tuple.tid = static_cast<int64_t>(tuples_.size());
  }
  // Keep tid_index_ sorted on the write side so RowOfTid stays a pure
  // read: concurrent lookups under a shared lock (the rockd detect path)
  // must not race on a lazy re-sort. Database::Insert hands out monotonic
  // tids, so the common case is an O(1) append; only preassigned
  // out-of-order tids pay for the sorted insert.
  std::pair<int64_t, int> key(tuple.tid, static_cast<int>(tuples_.size()));
  if (tid_index_.empty() || tid_index_.back() < key) {
    tid_index_.push_back(key);
  } else {
    tid_index_.insert(
        std::lower_bound(tid_index_.begin(), tid_index_.end(), key), key);
  }
  tuples_.push_back(std::move(tuple));
  return Status::Ok();
}

int Relation::RowOfTid(int64_t tid) const {
  auto it = std::lower_bound(
      tid_index_.begin(), tid_index_.end(), std::make_pair(tid, -1));
  if (it != tid_index_.end() && it->first == tid) return it->second;
  return -1;
}

Database::Database(DatabaseSchema schema) : schema_(std::move(schema)) {
  relations_.reserve(schema_.num_relations());
  for (const Schema& rel : schema_.relations()) {
    relations_.emplace_back(rel);
  }
}

Relation* Database::FindRelation(std::string_view name) {
  int idx = schema_.RelationIndex(name);
  return idx < 0 ? nullptr : &relations_[static_cast<size_t>(idx)];
}

const Relation* Database::FindRelation(std::string_view name) const {
  int idx = schema_.RelationIndex(name);
  return idx < 0 ? nullptr : &relations_[static_cast<size_t>(idx)];
}

Result<int64_t> Database::Insert(int rel_index, Tuple tuple) {
  if (rel_index < 0 || rel_index >= static_cast<int>(relations_.size())) {
    return Status::OutOfRange("no such relation index: " +
                              std::to_string(rel_index));
  }
  tuple.tid = next_tid_++;
  if (tuple.eid < 0) tuple.eid = tuple.tid;
  int64_t tid = tuple.tid;
  Status s = relations_[static_cast<size_t>(rel_index)].Append(std::move(tuple));
  if (!s.ok()) {
    --next_tid_;
    return s;
  }
  return tid;
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const Relation& rel : relations_) total += rel.size();
  return total;
}

}  // namespace rock
