#include "src/storage/value.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace rock {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kTime:
      return "time";
  }
  return "?";
}

Value Value::Int(int64_t v) {
  Value out;
  out.type_ = ValueType::kInt;
  out.int_ = v;
  return out;
}

Value Value::Double(double v) {
  Value out;
  out.type_ = ValueType::kDouble;
  out.double_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.type_ = ValueType::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::Time(int64_t epoch_seconds) {
  Value out;
  out.type_ = ValueType::kTime;
  out.int_ = epoch_seconds;
  return out;
}

Result<Value> Value::Parse(std::string_view text, ValueType type) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty() || trimmed == "null") return Value::Null();
  std::string buf(trimmed);
  char* end = nullptr;
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      long long v = std::strtoll(buf.c_str(), &end, 10);
      if (end == buf.c_str() || *end != '\0') {
        return Status::InvalidArgument("not an int: " + buf);
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      double v = std::strtod(buf.c_str(), &end);
      if (end == buf.c_str() || *end != '\0') {
        return Status::InvalidArgument("not a double: " + buf);
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(std::move(buf));
    case ValueType::kTime: {
      long long v = std::strtoll(buf.c_str(), &end, 10);
      if (end == buf.c_str() || *end != '\0') {
        return Status::InvalidArgument("not a time: " + buf);
      }
      return Value::Time(v);
    }
  }
  return Status::InvalidArgument("unknown value type");
}

bool Value::ComparableWith(const Value& other) const {
  if (type_ == other.type_) return true;
  auto numeric = [](ValueType t) {
    return t == ValueType::kInt || t == ValueType::kDouble;
  };
  return numeric(type_) && numeric(other.type_);
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  auto numeric = [](ValueType t) {
    return t == ValueType::kInt || t == ValueType::kDouble;
  };
  if (numeric(type_) && numeric(other.type_)) {
    if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case ValueType::kString: {
      int c = string_.compare(other.string_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kTime:
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    default:
      return 0;
  }
}

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x6E756C6Cull;
    case ValueType::kInt:
      return MixHash64(static_cast<uint64_t>(int_));
    case ValueType::kDouble: {
      // Hash integral doubles like ints so 3 == 3.0 hashes identically.
      double rounded = std::nearbyint(double_);
      if (rounded == double_ && std::abs(double_) < 9.2e18) {
        return MixHash64(static_cast<uint64_t>(static_cast<int64_t>(double_)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double_));
      __builtin_memcpy(&bits, &double_, sizeof(bits));
      return MixHash64(bits);
    }
    case ValueType::kString:
      return Hash64(string_);
    case ValueType::kTime:
      return HashCombine(0x74696D65ull, static_cast<uint64_t>(int_));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kDouble: {
      // Shortest representation that parses back to the same double, so
      // printed rules round-trip through the parser.
      for (int precision = 6; precision <= 17; ++precision) {
        std::string out = StrFormat("%.*g", precision, double_);
        if (std::strtod(out.c_str(), nullptr) == double_) return out;
      }
      return StrFormat("%.17g", double_);
    }
    case ValueType::kString:
      return string_;
    case ValueType::kTime:
      return "@" + std::to_string(int_);
  }
  return "?";
}

}  // namespace rock
