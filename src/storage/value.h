#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace rock {

/// Attribute types supported by the relational model (paper §2, schema
/// R(A1:τ1, ..., Ak:τk)). kTime values are epoch seconds; they back the
/// timestamps T(t[A]) of temporal relations as well as date attributes.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt,
  kDouble,
  kString,
  kTime,
};

const char* ValueTypeName(ValueType type);

/// A single attribute value: a tagged scalar with a total order within each
/// type. Null compares equal only to null and is less than every non-null
/// value (needed for deterministic sorting; rule predicates treat any
/// comparison involving null as unsatisfied, which the evaluator enforces).
class Value {
 public:
  /// Null value.
  Value() : type_(ValueType::kNull), int_(0), double_(0) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  static Value Time(int64_t epoch_seconds);

  /// Parses `text` into the requested type ("" parses to null for any type).
  static Result<Value> Parse(std::string_view text, ValueType type);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  /// Typed accessors; preconditions: matching type().
  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == ValueType::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }
  int64_t AsTime() const { return int_; }

  /// True when both values can appear in the same comparison predicate
  /// (identical types, or int/double which are mutually comparable).
  bool ComparableWith(const Value& other) const;

  /// Three-way comparison: -1, 0, +1. Nulls sort first; values of
  /// incomparable types are ordered by type tag for determinism.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash consistent with operator== across int/double when
  /// the double holds an integral value.
  uint64_t Hash() const;

  /// Human-readable form; null renders as "null".
  std::string ToString() const;

 private:
  ValueType type_;
  int64_t int_;
  double double_;
  std::string string_;
};

}  // namespace rock

