#include "src/storage/dictionary.h"

#include <algorithm>
#include <map>

namespace rock {

uint32_t StringInterner::Intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

void StringInterner::Clear() {
  ids_.clear();
  strings_.clear();
}

DictionaryEncodedRelation DictionaryEncodedRelation::Build(
    const Relation& relation) {
  DictionaryEncodedRelation out;
  const size_t num_attrs = relation.schema().num_attributes();
  const size_t num_rows = relation.size();

  out.rows_.assign(num_rows, std::vector<uint32_t>(num_attrs, 0));
  out.dictionaries_.resize(num_attrs);
  out.postings_.resize(num_attrs);
  out.similarity_order_.resize(num_attrs);

  for (size_t attr = 0; attr < num_attrs; ++attr) {
    // std::map orders values, giving the similarity ordering for free.
    std::map<Value, uint32_t, std::less<Value>> codes;
    // Reserve id 0 for null so a missing cell is always code 0.
    codes.emplace(Value::Null(), 0);
    for (size_t row = 0; row < num_rows; ++row) {
      const Value& v = relation.tuple(row).value(static_cast<int>(attr));
      auto [it, inserted] = codes.emplace(v, 0);
      (void)it;
      (void)inserted;
    }
    // Assign dense codes: null first (code 0), then value order.
    uint32_t next = 0;
    out.dictionaries_[attr].resize(codes.size());
    for (auto& [value, code] : codes) {
      code = next;
      out.dictionaries_[attr][next] = value;
      ++next;
    }
    out.postings_[attr].assign(codes.size(), {});
    for (size_t row = 0; row < num_rows; ++row) {
      const Value& v = relation.tuple(row).value(static_cast<int>(attr));
      uint32_t code = codes.at(v);
      out.rows_[row][attr] = code;
      out.postings_[attr][code].push_back(static_cast<uint32_t>(row));
    }
    out.similarity_order_[attr].reserve(codes.size());
    for (uint32_t c = 0; c < codes.size(); ++c) {
      out.similarity_order_[attr].push_back(c);
    }
  }
  return out;
}

int64_t DictionaryEncodedRelation::Encode(int attr, const Value& v) const {
  const auto& dict = dictionaries_[static_cast<size_t>(attr)];
  // Dictionary is stored null-first then sorted; binary-search the sorted
  // suffix and check code 0 for null explicitly.
  if (v.is_null()) {
    return (!dict.empty() && dict[0].is_null()) ? 0 : -1;
  }
  auto begin = dict.begin() + (dict.empty() || !dict[0].is_null() ? 0 : 1);
  auto it = std::lower_bound(begin, dict.end(), v);
  if (it != dict.end() && *it == v) {
    return static_cast<int64_t>(it - dict.begin());
  }
  return -1;
}

}  // namespace rock
