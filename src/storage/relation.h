#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace rock {

/// Timestamp value meaning "T(t[A]) is undefined" — the partial function T of
/// a temporal relation (D, T) need not cover every cell (paper §2.2).
inline constexpr int64_t kNoTimestamp = INT64_MIN;

/// A tuple: a row of attribute values plus the built-in tid/EID. `tid` is
/// globally unique within the database; `eid` identifies the real-world
/// entity the tuple (currently) represents.
struct Tuple {
  int64_t tid = -1;
  int64_t eid = -1;
  std::vector<Value> values;
  /// Per-attribute timestamps T(t[A]); kNoTimestamp where undefined.
  /// Empty when the relation carries no temporal information.
  std::vector<int64_t> timestamps;

  const Value& value(int attr) const {
    return values[static_cast<size_t>(attr)];
  }
  int64_t timestamp(int attr) const {
    if (timestamps.empty()) return kNoTimestamp;
    return timestamps[static_cast<size_t>(attr)];
  }
};

/// A relation D of schema R: an append-only vector of tuples with index
/// lookup by tid. Mutation happens through the chase's repair view rather
/// than in place, so the raw data stays available as evidence.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// Appends `tuple` after checking arity and attribute types (null is
  /// allowed for every type). Assigns a fresh tid when tuple.tid < 0.
  Status Append(Tuple tuple);

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(size_t row) const { return tuples_[row]; }
  Tuple& mutable_tuple(size_t row) { return tuples_[row]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Row index of the tuple with the given tid, or -1. A pure read (the
  /// index is kept sorted by Append), so concurrent calls are safe on a
  /// quiescent relation — e.g. under rockd's shared engine lock.
  int RowOfTid(int64_t tid) const;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
  std::vector<std::pair<int64_t, int>> tid_index_;  // sorted (tid, row)
};

/// An instance D = (D1, ..., Dm) of a database schema. Owns tid allocation
/// so tids are unique across relations.
class Database {
 public:
  Database() = default;
  explicit Database(DatabaseSchema schema);

  const DatabaseSchema& schema() const { return schema_; }
  size_t num_relations() const { return relations_.size(); }

  Relation& relation(int index) { return relations_[static_cast<size_t>(index)]; }
  const Relation& relation(int index) const {
    return relations_[static_cast<size_t>(index)];
  }

  /// Relation by name; nullptr when absent.
  Relation* FindRelation(std::string_view name);
  const Relation* FindRelation(std::string_view name) const;

  /// Appends to relation `rel_index`, assigning a globally fresh tid (and an
  /// eid equal to the tid when eid < 0, i.e. each tuple starts as its own
  /// entity). Returns the assigned tid.
  Result<int64_t> Insert(int rel_index, Tuple tuple);

  /// Total tuple count across relations.
  size_t TotalTuples() const;

  int64_t next_tid() const { return next_tid_; }

 private:
  DatabaseSchema schema_;
  std::vector<Relation> relations_;
  int64_t next_tid_ = 0;
};

/// A batch of updates ΔD for incremental detection/correction: tuples to be
/// inserted (the incremental algorithms treat value modifications as
/// delete+insert of the affected tuple).
struct Delta {
  struct Insertion {
    int rel_index;
    Tuple tuple;
  };
  std::vector<Insertion> insertions;
};

}  // namespace rock

