#include "src/storage/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace rock {
namespace {

constexpr size_t kSignatureSlots = 8;
constexpr size_t kTopValues = 16;

struct ValueHashEq {
  size_t operator()(const Value& v) const { return v.Hash(); }
  bool operator()(const Value& a, const Value& b) const { return a == b; }
};

}  // namespace

ColumnStats ComputeColumnStats(const Relation& relation, int attr) {
  ColumnStats stats;
  stats.num_rows = relation.size();
  const ValueType type = relation.schema().AttributeType(attr);
  const bool numeric = type == ValueType::kInt || type == ValueType::kDouble ||
                       type == ValueType::kTime;

  std::unordered_map<Value, size_t, ValueHashEq, ValueHashEq> counts;
  double sum = 0.0, sum_sq = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  size_t numeric_count = 0;
  std::vector<uint64_t> signature(kSignatureSlots,
                                  std::numeric_limits<uint64_t>::max());

  for (size_t row = 0; row < relation.size(); ++row) {
    const Value& v = relation.tuple(row).value(attr);
    if (v.is_null()) {
      ++stats.num_nulls;
      continue;
    }
    ++counts[v];
    if (numeric) {
      double x = (type == ValueType::kTime)
                     ? static_cast<double>(v.AsTime())
                     : v.AsDouble();
      sum += x;
      sum_sq += x * x;
      mn = std::min(mn, x);
      mx = std::max(mx, x);
      ++numeric_count;
    } else if (type == ValueType::kString) {
      for (const std::string& tok : Tokenize(v.AsString())) {
        uint64_t h = Hash64(tok);
        for (size_t slot = 0; slot < kSignatureSlots; ++slot) {
          uint64_t slot_hash = MixHash64(h ^ (0x1234ull + slot * 0x9E37ull));
          signature[slot] = std::min(signature[slot], slot_hash);
        }
      }
    }
  }

  stats.num_distinct = counts.size();
  if (numeric_count > 0) {
    double n = static_cast<double>(numeric_count);
    stats.mean = sum / n;
    double var = std::max(0.0, sum_sq / n - stats.mean * stats.mean);
    stats.stddev = std::sqrt(var);
    stats.min = mn;
    stats.max = mx;
  }
  if (type == ValueType::kString && stats.num_distinct > 0) {
    stats.signature = std::move(signature);
  }

  std::vector<std::pair<Value, size_t>> ordered(counts.begin(), counts.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (ordered.size() > kTopValues) ordered.resize(kTopValues);
  stats.top_values = std::move(ordered);
  return stats;
}

DatabaseStats DatabaseStats::Compute(const Database& db) {
  DatabaseStats out;
  out.stats_.resize(db.num_relations());
  for (size_t rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& relation = db.relation(static_cast<int>(rel));
    size_t num_attrs = relation.schema().num_attributes();
    out.stats_[rel].resize(num_attrs);
    for (size_t attr = 0; attr < num_attrs; ++attr) {
      out.stats_[rel][attr] =
          ComputeColumnStats(relation, static_cast<int>(attr));
    }
  }
  return out;
}

double DatabaseStats::SignatureSimilarity(const ColumnStats& a,
                                          const ColumnStats& b) {
  if (a.signature.empty() || b.signature.empty()) return 0.0;
  size_t slots = std::min(a.signature.size(), b.signature.size());
  size_t matches = 0;
  for (size_t i = 0; i < slots; ++i) {
    if (a.signature[i] == b.signature[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(slots);
}

}  // namespace rock
