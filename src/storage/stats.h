#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/relation.h"

namespace rock {

/// Per-attribute statistics — the "column distribution" and "attribute
/// summary" metadata Crystal maintains (paper §5.1). Consumed by the cost
/// model (§5.2) and the FDX-style predicate pruning (§5.4).
struct ColumnStats {
  size_t num_rows = 0;
  size_t num_nulls = 0;
  size_t num_distinct = 0;
  /// Numeric moments (0 when the column is non-numeric).
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Most frequent values with counts (top 16), the categorical distribution.
  std::vector<std::pair<Value, size_t>> top_values;
  /// Signature of a textual attribute: the 64-bit MinHash-style sketch of
  /// its token universe (8 hash slots). Attributes with similar content
  /// have close signatures; used for schema-mapping blocking (§6 Logistics).
  std::vector<uint64_t> signature;

  double null_ratio() const {
    return num_rows == 0 ? 0.0
                         : static_cast<double>(num_nulls) /
                               static_cast<double>(num_rows);
  }
  double distinct_ratio() const {
    return num_rows == 0 ? 0.0
                         : static_cast<double>(num_distinct) /
                               static_cast<double>(num_rows);
  }
};

/// Computes statistics for one attribute of `relation`.
ColumnStats ComputeColumnStats(const Relation& relation, int attr);

/// Computes statistics for every attribute of every relation.
/// Keyed by (relation index, attribute index).
class DatabaseStats {
 public:
  static DatabaseStats Compute(const Database& db);

  const ColumnStats& Get(int rel, int attr) const {
    return stats_[static_cast<size_t>(rel)][static_cast<size_t>(attr)];
  }

  /// Similarity in [0,1] between two attribute signatures (fraction of
  /// matching MinHash slots); 0 when either lacks a signature.
  static double SignatureSimilarity(const ColumnStats& a,
                                    const ColumnStats& b);

 private:
  std::vector<std::vector<ColumnStats>> stats_;
};

}  // namespace rock

