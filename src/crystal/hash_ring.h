#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace rock::crystal {

/// Consistent-hash ring (paper §5.1): data objects and computing nodes are
/// assigned positions on a virtual ring; node addresses are hashed with
/// CRC-32. Each physical node occupies `virtual_nodes` ring positions so
/// load stays balanced, and membership changes remap only ~K/n keys.
class HashRing {
 public:
  explicit HashRing(int virtual_nodes = 64);

  /// Registers a node (e.g. an IP address). Idempotent by name.
  Status AddNode(const std::string& node);

  /// Unregisters a node; its keys flow to ring successors.
  Status RemoveNode(const std::string& node);

  /// The node owning `key`. Error when the ring is empty.
  Result<std::string> Locate(std::string_view key) const;

  /// The node owning a pre-hashed key (Crystal hashes data objects with a
  /// self-defined function; callers supply that hash directly).
  Result<std::string> LocateHash(uint64_t key_hash) const;

  size_t num_nodes() const { return nodes_.size(); }
  std::vector<std::string> Nodes() const;

 private:
  int virtual_nodes_;
  std::map<uint64_t, std::string> ring_;  // position -> node
  std::vector<std::string> nodes_;

  uint64_t VirtualPosition(const std::string& node, int replica) const;
};

}  // namespace rock::crystal

