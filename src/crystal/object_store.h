#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/crystal/hash_ring.h"

namespace rock::crystal {

/// One block of a partitioned object. Crystal partitions each data object
/// into blocks stored as a linked list on a node (paper §5.1); here a block
/// is a byte string with a sequence number.
struct Block {
  std::string object;
  int seq = 0;
  std::string bytes;
};

/// The metadata directory — Crystal's ETCD stand-in. "The mapping between
/// hash codes and nodes are registered in ETCD"; here it maps every
/// (object, block) to its owning node and is the first level of the
/// two-level addressing model, always resident in memory.
class MetadataDirectory {
 public:
  void Register(const std::string& object, int seq, const std::string& node);
  void Unregister(const std::string& object);

  /// Node holding block `seq` of `object`.
  Result<std::string> Lookup(const std::string& object, int seq) const;

  /// All (seq, node) placements for `object`, ordered by seq.
  std::vector<std::pair<int, std::string>> Placements(
      const std::string& object) const;

  size_t num_entries() const { return entries_.size(); }

 private:
  // key = object + '\0' + seq
  std::map<std::string, std::string> entries_;
  static std::string Key(const std::string& object, int seq);
};

/// Statistics on a membership change; exercised by bench_design_micro to
/// reproduce the "minimize remapped keys" claim of §5.1.
struct RemapStats {
  size_t total_blocks = 0;
  size_t remapped_blocks = 0;
  double remap_ratio() const {
    return total_blocks == 0
               ? 0.0
               : static_cast<double>(remapped_blocks) /
                     static_cast<double>(total_blocks);
  }
};

/// An in-process model of Crystal: objects are split into fixed-size blocks,
/// blocks are placed on nodes via the consistent-hash ring, and reads go
/// through the two-level addressing model (directory lookup, then the
/// per-node block map).
class ObjectStore {
 public:
  /// `block_size` bytes per block; smaller blocks → more work units (§5.2).
  explicit ObjectStore(int virtual_nodes = 64, size_t block_size = 1024);

  Status AddNode(const std::string& node);

  /// Removes a node and migrates its blocks to their new ring owners.
  /// Returns how many blocks moved.
  Result<RemapStats> RemoveNode(const std::string& node);

  /// Adds a node and migrates the blocks whose ring owner changed.
  Result<RemapStats> AddNodeWithRebalance(const std::string& node);

  /// Writes (or replaces) an object, partitioning it into blocks.
  Status Put(const std::string& object, std::string bytes);

  /// Reassembles an object from its blocks.
  Result<std::string> Get(const std::string& object) const;

  Status Delete(const std::string& object);

  /// Number of blocks currently placed on `node`.
  size_t BlocksOnNode(const std::string& node) const;

  /// Node that owns block `seq` of `object` (directory lookup).
  Result<std::string> LocateBlock(const std::string& object, int seq) const {
    return directory_.Lookup(object, seq);
  }

  size_t num_objects() const { return object_num_blocks_.size(); }
  const HashRing& ring() const { return ring_; }

 private:
  HashRing ring_;
  size_t block_size_;
  MetadataDirectory directory_;
  // node -> (object-block key -> block). Second level of addressing.
  std::unordered_map<std::string, std::map<std::string, Block>> node_blocks_;
  std::unordered_map<std::string, int> object_num_blocks_;

  static std::string BlockKey(const std::string& object, int seq);
  std::string OwnerOf(const std::string& object, int seq) const;
  RemapStats Rebalance();
};

}  // namespace rock::crystal

