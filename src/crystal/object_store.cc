#include "src/crystal/object_store.h"

#include <algorithm>

namespace rock::crystal {

void MetadataDirectory::Register(const std::string& object, int seq,
                                 const std::string& node) {
  entries_[Key(object, seq)] = node;
}

void MetadataDirectory::Unregister(const std::string& object) {
  std::string prefix = object + '\0';
  auto it = entries_.lower_bound(prefix);
  while (it != entries_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = entries_.erase(it);
  }
}

Result<std::string> MetadataDirectory::Lookup(const std::string& object,
                                              int seq) const {
  auto it = entries_.find(Key(object, seq));
  if (it == entries_.end()) {
    return Status::NotFound("no placement for " + object + " block " +
                            std::to_string(seq));
  }
  return it->second;
}

std::vector<std::pair<int, std::string>> MetadataDirectory::Placements(
    const std::string& object) const {
  std::vector<std::pair<int, std::string>> out;
  std::string prefix = object + '\0';
  for (auto it = entries_.lower_bound(prefix);
       it != entries_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    int seq = std::stoi(it->first.substr(prefix.size()));
    out.emplace_back(seq, it->second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string MetadataDirectory::Key(const std::string& object, int seq) {
  return object + '\0' + std::to_string(seq);
}

ObjectStore::ObjectStore(int virtual_nodes, size_t block_size)
    : ring_(virtual_nodes), block_size_(block_size) {}

std::string ObjectStore::BlockKey(const std::string& object, int seq) {
  return object + '\0' + std::to_string(seq);
}

std::string ObjectStore::OwnerOf(const std::string& object, int seq) const {
  auto owner = ring_.Locate(BlockKey(object, seq));
  return owner.ok() ? *owner : std::string();
}

Status ObjectStore::AddNode(const std::string& node) {
  ROCK_RETURN_IF_ERROR(ring_.AddNode(node));
  node_blocks_.emplace(node, std::map<std::string, Block>());
  return Status::Ok();
}

Result<RemapStats> ObjectStore::AddNodeWithRebalance(const std::string& node) {
  ROCK_RETURN_IF_ERROR(ring_.AddNode(node));
  node_blocks_.emplace(node, std::map<std::string, Block>());
  return Rebalance();
}

Result<RemapStats> ObjectStore::RemoveNode(const std::string& node) {
  ROCK_RETURN_IF_ERROR(ring_.RemoveNode(node));
  if (ring_.num_nodes() == 0) {
    return Status::FailedPrecondition("cannot remove the last node");
  }
  auto stats = Rebalance();
  node_blocks_.erase(node);
  return stats;
}

RemapStats ObjectStore::Rebalance() {
  RemapStats stats;
  std::vector<Block> moved;
  // Drain nodes in sorted order: node_blocks_ is an unordered_map, and the
  // order blocks land in `moved` decides directory registration order, so a
  // hash-order walk would leak the hash seed into RemapStats consumers.
  std::vector<std::string> nodes;
  nodes.reserve(node_blocks_.size());
  for (const auto& [node, blocks] : node_blocks_) nodes.push_back(node);
  std::sort(nodes.begin(), nodes.end());
  for (const std::string& node : nodes) {
    auto& blocks = node_blocks_[node];
    for (auto it = blocks.begin(); it != blocks.end();) {
      stats.total_blocks++;
      std::string owner = OwnerOf(it->second.object, it->second.seq);
      if (owner != node) {
        moved.push_back(std::move(it->second));
        it = blocks.erase(it);
        stats.remapped_blocks++;
      } else {
        ++it;
      }
    }
  }
  for (Block& block : moved) {
    std::string owner = OwnerOf(block.object, block.seq);
    directory_.Register(block.object, block.seq, owner);
    std::string key = BlockKey(block.object, block.seq);
    node_blocks_[owner][key] = std::move(block);
  }
  return stats;
}

Status ObjectStore::Put(const std::string& object, std::string bytes) {
  if (ring_.num_nodes() == 0) {
    return Status::FailedPrecondition("object store has no nodes");
  }
  // Replace semantics: drop any previous version (NotFound is fine).
  Status ignored = Delete(object);
  (void)ignored;
  int seq = 0;
  size_t offset = 0;
  do {
    Block block;
    block.object = object;
    block.seq = seq;
    block.bytes = bytes.substr(offset, block_size_);
    std::string owner = OwnerOf(object, seq);
    directory_.Register(object, seq, owner);
    node_blocks_[owner][BlockKey(object, seq)] = std::move(block);
    offset += block_size_;
    ++seq;
  } while (offset < bytes.size());
  object_num_blocks_[object] = seq;
  return Status::Ok();
}

Result<std::string> ObjectStore::Get(const std::string& object) const {
  auto it = object_num_blocks_.find(object);
  if (it == object_num_blocks_.end()) {
    return Status::NotFound("no such object: " + object);
  }
  std::string out;
  for (int seq = 0; seq < it->second; ++seq) {
    auto node = directory_.Lookup(object, seq);
    if (!node.ok()) return node.status();
    auto node_it = node_blocks_.find(*node);
    if (node_it == node_blocks_.end()) {
      return Status::Internal("directory points at missing node " + *node);
    }
    auto block_it = node_it->second.find(BlockKey(object, seq));
    if (block_it == node_it->second.end()) {
      return Status::Internal("block missing on node " + *node);
    }
    out += block_it->second.bytes;
  }
  return out;
}

Status ObjectStore::Delete(const std::string& object) {
  auto it = object_num_blocks_.find(object);
  if (it == object_num_blocks_.end()) {
    return Status::NotFound("no such object: " + object);
  }
  for (int seq = 0; seq < it->second; ++seq) {
    auto node = directory_.Lookup(object, seq);
    if (node.ok()) {
      auto node_it = node_blocks_.find(*node);
      if (node_it != node_blocks_.end()) {
        node_it->second.erase(BlockKey(object, seq));
      }
    }
  }
  directory_.Unregister(object);
  object_num_blocks_.erase(it);
  return Status::Ok();
}

size_t ObjectStore::BlocksOnNode(const std::string& node) const {
  auto it = node_blocks_.find(node);
  return it == node_blocks_.end() ? 0 : it->second.size();
}

}  // namespace rock::crystal
