#include "src/crystal/hash_ring.h"

#include <algorithm>

#include "src/common/hash.h"

namespace rock::crystal {

HashRing::HashRing(int virtual_nodes) : virtual_nodes_(virtual_nodes) {}

uint64_t HashRing::VirtualPosition(const std::string& node,
                                   int replica) const {
  // CRC-32 of "node#replica", widened by mixing so 2^32 positions do not
  // collide for large rings.
  std::string key = node + "#" + std::to_string(replica);
  return MixHash64(Crc32(key));
}

Status HashRing::AddNode(const std::string& node) {
  if (std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end()) {
    return Status::AlreadyExists("node already on ring: " + node);
  }
  nodes_.push_back(node);
  for (int r = 0; r < virtual_nodes_; ++r) {
    ring_[VirtualPosition(node, r)] = node;
  }
  return Status::Ok();
}

Status HashRing::RemoveNode(const std::string& node) {
  auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end()) {
    return Status::NotFound("node not on ring: " + node);
  }
  nodes_.erase(it);
  for (int r = 0; r < virtual_nodes_; ++r) {
    ring_.erase(VirtualPosition(node, r));
  }
  return Status::Ok();
}

Result<std::string> HashRing::Locate(std::string_view key) const {
  return LocateHash(MixHash64(Crc32(key)));
}

Result<std::string> HashRing::LocateHash(uint64_t key_hash) const {
  if (ring_.empty()) {
    return Status::FailedPrecondition("hash ring has no nodes");
  }
  auto it = ring_.lower_bound(key_hash);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::string> HashRing::Nodes() const { return nodes_; }

}  // namespace rock::crystal
