#include "src/discovery/feedback.h"

#include <algorithm>
#include <set>

namespace rock::discovery {

PriorKnowledgeSession::PriorKnowledgeSession(rules::EvalContext ctx)
    : PriorKnowledgeSession(ctx, Options()) {}

PriorKnowledgeSession::PriorKnowledgeSession(rules::EvalContext ctx,
                                             Options options)
    : ctx_(ctx), options_(options) {}

RuleScoringModel& PriorKnowledgeSession::Run(
    const std::vector<MinedRule>& candidates, const Oracle& oracle,
    int rounds) {
  // Build the testing sample: the first sample_rows of every relation
  // (deterministic, so interaction transcripts are reproducible).
  std::set<std::pair<int, int64_t>> sample;
  for (size_t rel = 0; rel < ctx_.db->num_relations(); ++rel) {
    const Relation& relation = ctx_.db->relation(static_cast<int>(rel));
    for (size_t row = 0;
         row < relation.size() && row < options_.sample_rows; ++row) {
      sample.emplace(static_cast<int>(rel), relation.tuple(row).tid);
    }
  }

  detect::ErrorDetector detector(ctx_);
  std::set<size_t> labeled;
  for (int round = 0; round < rounds; ++round) {
    // Pick the currently-top unlabeled rules.
    std::vector<std::pair<double, size_t>> ranked;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (labeled.count(i)) continue;
      ranked.emplace_back(scorer_.Score(candidates[i]), i);
    }
    if (ranked.empty()) break;
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    size_t shown = std::min(options_.rules_per_round, ranked.size());
    for (size_t k = 0; k < shown; ++k) {
      size_t index = ranked[k].second;
      labeled.insert(index);
      // Detect on the sample with this one rule.
      auto report = detector.Detect({candidates[index].rule});
      std::vector<std::pair<int, int64_t>> flagged_sample;
      for (const auto& tuple : report.DirtyTuples()) {
        if (sample.count(tuple)) flagged_sample.push_back(tuple);
      }
      bool useful = oracle(candidates[index].rule, flagged_sample);
      scorer_.AddFeedback(candidates[index], useful ? 1 : 0);
      ++rules_labeled_;
    }
  }
  return scorer_;
}

}  // namespace rock::discovery
