#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/relation.h"

namespace rock::discovery {

/// A discovered arithmetic correlation among numeric attributes
/// (paper §5.4 "Polynomial expressions"): target ≈ bias + Σ w_i · term_i,
/// where each term is an attribute or a product of two attributes.
struct PolyExpression {
  int target_attr = -1;
  struct Term {
    int attr_a = -1;
    int attr_b = -1;  // -1 => linear term, else product attr_a * attr_b
    double weight = 0.0;
  };
  double bias = 0.0;
  std::vector<Term> terms;
  /// In-sample coefficient of determination (on the robust inliers).
  double r_squared = 0.0;
  /// Fraction of ALL rows whose relative residual is below 1e-4 — the
  /// share of data satisfying the expression exactly. True arithmetic
  /// invariants score ≈ 1 - error rate; statistical pseudo-fits (high R²
  /// but nonzero residuals everywhere) score ≈ 0.
  double exact_support = 0.0;

  /// Predicted target value for a tuple; NotFound when an input is null.
  Result<double> Evaluate(const Tuple& tuple) const;

  /// Human-readable form, e.g. "total ≈ 1.13*price + 0.0".
  std::string ToString(const Schema& schema) const;
};

struct PolyOptions {
  /// Keep at most this many features after GBT importance ranking
  /// (paper: "XGBoost ranks the importance ... and prunes irrelevant
  /// features").
  int max_features = 6;
  /// Include degree-2 product terms.
  bool include_products = true;
  /// LASSO regularization strength (applied on max-scaled columns, so it
  /// acts as a selection pressure only; an OLS refit debiases the kept
  /// terms). Unimportant features get zero weight.
  double lasso_lambda = 1e-4;
  /// Drop terms whose scaled contribution falls below this after the
  /// refit (relative to the target's magnitude).
  double min_weight = 1e-3;
  /// Robust refit rounds: after each fit, rows whose relative residual
  /// exceeds `outlier_threshold` are dropped (the data being fit is dirty
  /// — that is the point) and the expression is refit on the inliers.
  int robust_rounds = 4;
  double outlier_threshold = 0.05;
  /// Give up when more than this fraction of rows are outliers (the
  /// attribute is then not governed by a polynomial invariant).
  double max_outlier_fraction = 0.3;
};

/// Discovers a polynomial expression predicting `target_attr` (numeric)
/// from the other numeric attributes of `relation`: GBT ranks feature
/// importance, LASSO fits the predefined polynomial form (paper §5.4).
/// Rows with nulls in the involved attributes are skipped.
Result<PolyExpression> DiscoverPolynomial(const Relation& relation,
                                          int target_attr,
                                          const PolyOptions& options);

}  // namespace rock::discovery

