#include "src/discovery/evidence.h"

#include <algorithm>

#include "src/storage/stats.h"

namespace rock::discovery {

using rules::CmpOp;
using rules::Predicate;

namespace {

void AddConstantPredicates(const Database& db, int rel, int var,
                           const PredicateSpaceOptions& options,
                           PredicateSpace* space,
                           bool consequences) {
  const Relation& relation = db.relation(rel);
  for (size_t attr = 0; attr < relation.schema().num_attributes(); ++attr) {
    ColumnStats stats = ComputeColumnStats(relation, static_cast<int>(attr));
    if (stats.num_distinct == 0 ||
        stats.num_distinct > options.max_constant_domain) {
      continue;
    }
    int added = 0;
    for (const auto& [value, count] : stats.top_values) {
      (void)count;
      if (added >= options.max_constants_per_attr) break;
      space->predicates.push_back(Predicate::Constant(
          var, static_cast<int>(attr), CmpOp::kEq, value));
      if (consequences) {
        space->consequence_candidates.push_back(
            static_cast<int>(space->predicates.size()) - 1);
      }
      ++added;
    }
  }
}

}  // namespace

PredicateSpace BuildPairSpace(const Database& db, int rel,
                              const PredicateSpaceOptions& options) {
  PredicateSpace space;
  space.tuple_vars = {rel, rel};
  const Schema& schema = db.schema().relation(rel);

  // Equality predicates t0.A = t1.A per attribute — both precondition and
  // consequence candidates (CR shapes).
  for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
    space.predicates.push_back(Predicate::AttrCompare(
        0, static_cast<int>(attr), CmpOp::kEq, 1, static_cast<int>(attr)));
    space.consequence_candidates.push_back(
        static_cast<int>(space.predicates.size()) - 1);
  }

  // Constant predicates on t0 (precondition-only in pair shapes).
  AddConstantPredicates(db, rel, 0, options, &space, /*consequences=*/false);

  // ML pair predicates from the configured bindings.
  for (const auto& [model, attr_names] : options.ml_bindings) {
    std::vector<int> attrs;
    bool ok = true;
    for (const std::string& name : attr_names) {
      int idx = schema.AttributeIndex(name);
      if (idx < 0) {
        ok = false;
        break;
      }
      attrs.push_back(idx);
    }
    if (!ok || attrs.empty()) continue;
    space.predicates.push_back(Predicate::MlPair(model, 0, attrs, 1, attrs));
  }

  // ER consequence t0.eid = t1.eid.
  if (options.include_er_consequence) {
    space.predicates.push_back(Predicate::EidCompare(0, CmpOp::kEq, 1));
    space.consequence_candidates.push_back(
        static_cast<int>(space.predicates.size()) - 1);
  }

  // TD consequences t0 ⪯A t1.
  if (options.include_td_consequences) {
    for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
      space.predicates.push_back(Predicate::Temporal(
          0, 1, static_cast<int>(attr), /*strict=*/false));
      space.consequence_candidates.push_back(
          static_cast<int>(space.predicates.size()) - 1);
    }
  }
  return space;
}

PredicateSpace BuildSingleSpace(const Database& db, int rel,
                                const PredicateSpaceOptions& options) {
  PredicateSpace space;
  space.tuple_vars = {rel};
  AddConstantPredicates(db, rel, 0, options, &space, /*consequences=*/true);
  return space;
}

EvidenceTable EvidenceTable::Build(const rules::Evaluator& eval,
                                   const PredicateSpace& space,
                                   size_t max_rows, Rng* rng) {
  EvidenceTable table;
  table.num_predicates_ = space.predicates.size();
  const size_t words = (space.predicates.size() + 63) / 64;

  const Database& db = *eval.context().db;
  // Enumerate valuations of the shape (1 or 2 variables over the bound
  // relations) with uniform row sampling to respect max_rows.
  std::vector<size_t> sizes;
  size_t total = 1;
  for (int rel : space.tuple_vars) {
    sizes.push_back(db.relation(rel).size());
    total *= db.relation(rel).size();
  }
  double keep = max_rows == 0 || total <= max_rows
                    ? 1.0
                    : static_cast<double>(max_rows) /
                          static_cast<double>(total);
  table.sample_ratio_ = keep;

  rules::Ree shape;
  shape.tuple_vars = space.tuple_vars;

  rules::Valuation v;
  v.rows.assign(space.tuple_vars.size(), 0);

  auto emit = [&]() {
    if (keep < 1.0 && rng != nullptr && !rng->NextBernoulli(keep)) return;
    std::vector<uint64_t> bits(words, 0);
    for (size_t p = 0; p < space.predicates.size(); ++p) {
      if (eval.Satisfies(shape, v, space.predicates[p])) {
        bits[p >> 6] |= (1ull << (p & 63));
      }
    }
    table.rows_.push_back(std::move(bits));
  };

  if (space.tuple_vars.size() == 1) {
    for (size_t r0 = 0; r0 < sizes[0]; ++r0) {
      v.rows[0] = static_cast<int>(r0);
      emit();
    }
  } else if (space.tuple_vars.size() == 2) {
    for (size_t r0 = 0; r0 < sizes[0]; ++r0) {
      for (size_t r1 = 0; r1 < sizes[1]; ++r1) {
        if (space.tuple_vars[0] == space.tuple_vars[1] && r0 == r1) {
          continue;  // reflexive pairs carry no mining signal
        }
        v.rows[0] = static_cast<int>(r0);
        v.rows[1] = static_cast<int>(r1);
        emit();
      }
    }
  }
  return table;
}

size_t EvidenceTable::CountAll(const std::vector<int>& predicates) const {
  size_t count = 0;
  for (size_t row = 0; row < rows_.size(); ++row) {
    bool all = true;
    for (int p : predicates) {
      if (!Holds(row, p)) {
        all = false;
        break;
      }
    }
    if (all) ++count;
  }
  return count;
}

size_t EvidenceTable::CountAllPlus(const std::vector<int>& predicates,
                                   int extra) const {
  size_t count = 0;
  for (size_t row = 0; row < rows_.size(); ++row) {
    if (!Holds(row, extra)) continue;
    bool all = true;
    for (int p : predicates) {
      if (!Holds(row, p)) {
        all = false;
        break;
      }
    }
    if (all) ++count;
  }
  return count;
}

std::vector<uint32_t> EvidenceTable::RowsSatisfying(
    const std::vector<int>& predicates) const {
  std::vector<uint32_t> out;
  for (size_t row = 0; row < rows_.size(); ++row) {
    bool all = true;
    for (int p : predicates) {
      if (!Holds(row, p)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(static_cast<uint32_t>(row));
  }
  return out;
}

}  // namespace rock::discovery
