#include "src/discovery/topk.h"

#include <algorithm>
#include <set>

namespace rock::discovery {

ml::FeatureVector RuleFeatures(const MinedRule& rule) {
  ml::FeatureVector features = {
      rule.support,
      rule.confidence,
      static_cast<double>(rule.rule.precondition.size()),
      rule.rule.UsesMl() ? 1.0 : 0.0,
      rule.rule.Task() == rules::RuleTask::kEr ? 1.0 : 0.0,
      rule.rule.Task() == rules::RuleTask::kCr ? 1.0 : 0.0,
      rule.rule.Task() == rules::RuleTask::kTd ? 1.0 : 0.0,
      rule.rule.Task() == rules::RuleTask::kMi ? 1.0 : 0.0,
  };
  // Subjective preferences are usually *about something* — a target
  // attribute or relation the user cares about — so the consequence's
  // identity must be representable: bucketed one-hots for its relation
  // and attribute.
  constexpr int kBuckets = 8;
  int rel = rule.rule.tuple_vars.empty() ? 0 : rule.rule.tuple_vars[0];
  int attr = rule.rule.consequence.kind == rules::PredicateKind::kPredictValue
                 ? rule.rule.consequence.attr2
                 : rule.rule.consequence.attr;
  if (attr < 0) attr = kBuckets - 1;  // EID / structural consequences
  for (int b = 0; b < kBuckets; ++b) {
    features.push_back(rel % kBuckets == b ? 1.0 : 0.0);
  }
  for (int b = 0; b < kBuckets; ++b) {
    features.push_back(attr % kBuckets == b ? 1.0 : 0.0);
  }
  return features;
}

void RuleScoringModel::Train(const std::vector<MinedRule>& rules,
                             const std::vector<int>& labels) {
  examples_.clear();
  labels_.clear();
  for (size_t i = 0; i < rules.size() && i < labels.size(); ++i) {
    examples_.push_back(RuleFeatures(rules[i]));
    labels_.push_back(labels[i]);
  }
  if (!examples_.empty()) model_.Train(examples_, labels_);
}

void RuleScoringModel::AddFeedback(const MinedRule& rule, int label) {
  examples_.push_back(RuleFeatures(rule));
  labels_.push_back(label);
  model_.Train(examples_, labels_);
}

double RuleScoringModel::Score(const MinedRule& rule) const {
  if (!model_.trained()) {
    // Objective fallback: confidence, tie-broken by support.
    return rule.confidence + 0.01 * rule.support;
  }
  return model_.Score(RuleFeatures(rule));
}

std::vector<MinedRule> SelectTopK(
    const std::vector<MinedRule>& rules, size_t k,
    const RuleScoringModel& scorer, bool diversify,
    const EvidenceTable* evidence,
    const std::vector<std::vector<uint32_t>>* rule_rows) {
  std::vector<MinedRule> out;
  if (!diversify || evidence == nullptr || rule_rows == nullptr) {
    std::vector<std::pair<double, size_t>> scored;
    for (size_t i = 0; i < rules.size(); ++i) {
      scored.emplace_back(scorer.Score(rules[i]), i);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (size_t i = 0; i < scored.size() && out.size() < k; ++i) {
      out.push_back(rules[scored[i].second]);
      out.back().rule.score = scored[i].first;
    }
    return out;
  }

  // Diversified greedy max-coverage: marginal value = score × fraction of
  // uncovered supporting rows.
  std::set<uint32_t> covered;
  std::vector<bool> taken(rules.size(), false);
  while (out.size() < k) {
    double best_value = -1.0;
    size_t best_index = rules.size();
    for (size_t i = 0; i < rules.size(); ++i) {
      if (taken[i]) continue;
      const std::vector<uint32_t>& rows = (*rule_rows)[i];
      size_t uncovered = 0;
      for (uint32_t row : rows) uncovered += covered.count(row) == 0;
      double coverage =
          rows.empty() ? 0.0
                       : static_cast<double>(uncovered) /
                             static_cast<double>(rows.size());
      double value = scorer.Score(rules[i]) * (0.2 + 0.8 * coverage);
      if (value > best_value) {
        best_value = value;
        best_index = i;
      }
    }
    if (best_index == rules.size()) break;
    taken[best_index] = true;
    out.push_back(rules[best_index]);
    out.back().rule.score = best_value;
    for (uint32_t row : (*rule_rows)[best_index]) covered.insert(row);
  }
  return out;
}

AnytimeRuleStream::AnytimeRuleStream(std::vector<MinedRule> rules,
                                     RuleScoringModel* scorer)
    : rules_(std::move(rules)), scorer_(scorer) {
  Rerank();
}

void AnytimeRuleStream::Rerank() {
  std::stable_sort(rules_.begin() + static_cast<long>(emitted_),
                   rules_.end(), [this](const MinedRule& a,
                                        const MinedRule& b) {
                     return scorer_->Score(a) > scorer_->Score(b);
                   });
}

std::optional<MinedRule> AnytimeRuleStream::Next() {
  if (emitted_ >= rules_.size()) return std::nullopt;
  return rules_[emitted_++];
}

void AnytimeRuleStream::Feedback(const MinedRule& rule, int label) {
  scorer_->AddFeedback(rule, label);
  Rerank();
}

}  // namespace rock::discovery
