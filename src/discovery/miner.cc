#include "src/discovery/miner.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rock::discovery {
namespace {

struct MinerMetrics {
  obs::Counter* candidates_explored;
  obs::Counter* candidates_pruned;
  obs::Counter* rules_mined;
  obs::Gauge* evidence_rows;

  static const MinerMetrics& Get() {
    static MinerMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      MinerMetrics out;
      out.candidates_explored =
          reg.GetCounter("rock_discovery_candidates_explored_total");
      out.candidates_pruned =
          reg.GetCounter("rock_discovery_candidates_pruned_total");
      out.rules_mined = reg.GetCounter("rock_discovery_rules_mined_total");
      out.evidence_rows = reg.GetGauge("rock_discovery_evidence_rows");
      return out;
    }();
    return m;
  }
};

/// Evidence-level correlation of predicate `p` with consequence `c`:
/// |P(c|p) - P(c)| — the FDX-style structure signal used for pruning.
double EvidenceCorrelation(const EvidenceTable& table, int p, int c) {
  size_t n = table.num_rows();
  if (n == 0) return 0.0;
  size_t np = 0, nc = 0, npc = 0;
  for (size_t row = 0; row < n; ++row) {
    bool hp = table.Holds(row, p);
    bool hc = table.Holds(row, c);
    np += hp;
    nc += hc;
    npc += hp && hc;
  }
  if (np == 0) return 0.0;
  double p_c = static_cast<double>(nc) / static_cast<double>(n);
  double p_c_given_p = static_cast<double>(npc) / static_cast<double>(np);
  return std::abs(p_c_given_p - p_c);
}

/// True when `candidate` is a superset of any precondition in `minimal`.
bool SubsumedByMinimal(const std::vector<int>& candidate,
                       const std::vector<std::vector<int>>& minimal) {
  for (const auto& base : minimal) {
    if (std::includes(candidate.begin(), candidate.end(), base.begin(),
                      base.end())) {
      return true;
    }
  }
  return false;
}

}  // namespace

size_t HoeffdingSampleSize(double epsilon, double delta) {
  // m >= ln(2/δ) / (2 ε²) keeps an empirical mean within ε of the true
  // mean with probability >= 1 - δ.
  return static_cast<size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

std::vector<MinedRule> RuleMiner::Mine(const rules::Evaluator& eval,
                                       const PredicateSpace& space) {
  ROCK_OBS_SPAN("discovery.mine");
  candidates_explored_ = 0;
  candidates_pruned_ = 0;

  Rng rng(options_.seed);
  size_t cap = options_.disable_pruning ? 0 : options_.max_evidence_rows;
  EvidenceTable table = EvidenceTable::Build(eval, space, cap, &rng);
  const size_t n = table.num_rows();
  MinerMetrics::Get().evidence_rows->Set(static_cast<int64_t>(n));
  std::vector<MinedRule> out;
  if (n == 0) return out;

  size_t min_rows = std::max<size_t>(
      options_.min_support_rows,
      static_cast<size_t>(options_.min_support * static_cast<double>(n)));
  if (options_.disable_pruning) min_rows = 1;

  for (int consequence : space.consequence_candidates) {
    // Precondition candidates: every other predicate (FDX filter applies
    // unless pruning is disabled).
    std::vector<int> pool;
    for (size_t p = 0; p < space.predicates.size(); ++p) {
      if (static_cast<int>(p) == consequence) continue;
      // Skip preconditions that trivially contain the consequence's cell
      // (e.g. X includes p0 itself structurally).
      if (space.predicates[p] == space.predicates[
              static_cast<size_t>(consequence)]) {
        continue;
      }
      if (!options_.disable_pruning && options_.fdx_min_correlation > 0.0) {
        if (EvidenceCorrelation(table, static_cast<int>(p), consequence) <
            options_.fdx_min_correlation) {
          ++candidates_pruned_;
          continue;
        }
      }
      pool.push_back(static_cast<int>(p));
    }

    // Levelwise search.
    std::vector<std::vector<int>> frontier = {{}};
    std::vector<std::vector<int>> minimal_found;
    for (int level = 1; level <= options_.max_precondition; ++level) {
      std::vector<std::vector<int>> next;
      std::set<std::vector<int>> seen;
      for (const std::vector<int>& base : frontier) {
        int last = base.empty() ? -1 : base.back();
        for (int p : pool) {
          if (p <= last) continue;  // canonical order
          std::vector<int> candidate = base;
          candidate.push_back(p);
          if (!options_.disable_pruning &&
              SubsumedByMinimal(candidate, minimal_found)) {
            continue;
          }
          if (!seen.insert(candidate).second) continue;
          ++candidates_explored_;

          size_t support_x = table.CountAll(candidate);
          if (!options_.disable_pruning && support_x < min_rows) {
            ++candidates_pruned_;
            continue;  // anti-monotone: no superset can reach min support
          }
          size_t support_both = table.CountAllPlus(candidate, consequence);
          if (support_both >= min_rows && support_x > 0) {
            double confidence = static_cast<double>(support_both) /
                                static_cast<double>(support_x);
            if (confidence >= options_.min_confidence) {
              MinedRule mined;
              mined.rule.tuple_vars = space.tuple_vars;
              for (int q : candidate) {
                mined.rule.precondition.push_back(
                    space.predicates[static_cast<size_t>(q)]);
              }
              mined.rule.consequence =
                  space.predicates[static_cast<size_t>(consequence)];
              mined.support_rows = support_both;
              mined.support = static_cast<double>(support_both) /
                              static_cast<double>(n);
              mined.confidence = confidence;
              mined.rule.support = mined.support;
              mined.rule.confidence = mined.confidence;
              out.push_back(std::move(mined));
              minimal_found.push_back(candidate);
              continue;  // minimal: do not extend a confident rule
            }
          }
          if (support_x >= min_rows || options_.disable_pruning) {
            next.push_back(std::move(candidate));
          }
        }
      }
      frontier = std::move(next);
      if (frontier.empty()) break;
    }
  }

  // Deterministic id assignment.
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].rule.id = "mined_" + std::to_string(i);
  }
  const MinerMetrics& metrics = MinerMetrics::Get();
  metrics.candidates_explored->Add(candidates_explored_);
  metrics.candidates_pruned->Add(candidates_pruned_);
  metrics.rules_mined->Add(out.size());
  return out;
}

}  // namespace rock::discovery
