#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/rules/eval.h"
#include "src/rules/ree.h"

namespace rock::discovery {

/// The candidate predicate space for rule discovery over one "shape": a
/// fixed binding of tuple variables to relations (e.g. two variables over
/// the same relation for ER/CR shapes, or one variable for constant CFD
/// shapes). Predicates are indexed; evidence rows are bitsets over them.
struct PredicateSpace {
  /// tuple_vars[i] = relation index, as in Ree.
  std::vector<int> tuple_vars;
  std::vector<rules::Predicate> predicates;
  /// Indices of predicates allowed as a consequence p0.
  std::vector<int> consequence_candidates;
};

struct PredicateSpaceOptions {
  /// Max distinct constants per attribute for constant predicates (taken
  /// from the most frequent values).
  int max_constants_per_attr = 3;
  /// Attributes with more distinct values than this get no constant
  /// predicates (they cannot generalize).
  size_t max_constant_domain = 64;
  /// ML pair models to bind: (model name, attribute names) — each becomes
  /// M(t0[A], t1[A]) over same-relation pairs.
  std::vector<std::pair<std::string, std::vector<std::string>>> ml_bindings;
  /// Include t0.eid = t1.eid as a consequence (ER shape).
  bool include_er_consequence = true;
  /// Include temporal consequences t0 ⪯A t1 for every attribute (TD shape).
  bool include_td_consequences = false;
};

/// Builds the two-variable predicate space over relation `rel`:
/// equality/comparison predicates between the variables' attributes,
/// constant predicates from frequent values, ML predicates from bindings,
/// and the ER/CR/TD consequence candidates.
PredicateSpace BuildPairSpace(const Database& db, int rel,
                              const PredicateSpaceOptions& options);

/// Builds the single-variable space over `rel` (CFD shapes:
/// constant preconditions -> constant consequence).
PredicateSpace BuildSingleSpace(const Database& db, int rel,
                                const PredicateSpaceOptions& options);

/// The evidence table (after [72] / paper §6 "ES"): one row per sampled
/// valuation, holding the bitset of satisfied predicates. Mining support
/// and confidence of any candidate rule then reduces to bitset counting.
class EvidenceTable {
 public:
  /// Builds evidence over (a sample of) the valuations of `space`.
  /// `max_rows` caps the sample (0 = all valuations, quadratic for pairs);
  /// sampling is uniform via `rng`.
  static EvidenceTable Build(const rules::Evaluator& eval,
                             const PredicateSpace& space, size_t max_rows,
                             Rng* rng);

  size_t num_rows() const { return rows_.size(); }
  size_t num_predicates() const { return num_predicates_; }

  bool Holds(size_t row, int predicate) const {
    return (rows_[row][static_cast<size_t>(predicate) >> 6] >>
            (static_cast<size_t>(predicate) & 63)) &
           1;
  }

  /// Count of rows satisfying all of `predicates`.
  size_t CountAll(const std::vector<int>& predicates) const;

  /// Count of rows satisfying all of `predicates` and predicate `extra`.
  size_t CountAllPlus(const std::vector<int>& predicates, int extra) const;

  /// Rows satisfying all of `predicates` (indices into the table).
  std::vector<uint32_t> RowsSatisfying(
      const std::vector<int>& predicates) const;

  /// Fraction of valuations in the underlying population this table
  /// covers (1.0 when unsampled).
  double sample_ratio() const { return sample_ratio_; }

 private:
  std::vector<std::vector<uint64_t>> rows_;  // bitsets
  size_t num_predicates_ = 0;
  double sample_ratio_ = 1.0;
};

}  // namespace rock::discovery

