#pragma once

#include <functional>
#include <vector>

#include "src/detect/detector.h"
#include "src/discovery/topk.h"
#include "src/rules/eval.h"

namespace rock::discovery {

/// The prior-knowledge learning workflow of §5.2/§5.4: ranking rules is
/// easy for data-quality experts but hard for novices, so Rock detects
/// errors on a small testing sample with each candidate rule, invites the
/// user to confirm whether those detections are unknown true positives,
/// and incrementally trains the scoring model from the confirmations.
class PriorKnowledgeSession {
 public:
  /// The (possibly human) oracle: shown one rule and the tuples it flags
  /// on the sample, answers whether the rule surfaces real errors.
  using Oracle = std::function<bool(
      const rules::Ree& rule,
      const std::vector<std::pair<int, int64_t>>& flagged_sample)>;

  struct Options {
    /// Rows per relation in the testing sample.
    size_t sample_rows = 64;
    /// Rules shown to the oracle per round.
    size_t rules_per_round = 8;
  };

  explicit PriorKnowledgeSession(rules::EvalContext ctx);
  PriorKnowledgeSession(rules::EvalContext ctx, Options options);

  /// Runs `rounds` interaction rounds over `candidates`: each round picks
  /// the currently-top unlabeled rules, detects with them on the sample,
  /// asks the oracle, and feeds the labels to the scoring model. Returns
  /// the model (also exposed via scorer()).
  RuleScoringModel& Run(const std::vector<MinedRule>& candidates,
                        const Oracle& oracle, int rounds);

  RuleScoringModel& scorer() { return scorer_; }
  size_t rules_labeled() const { return rules_labeled_; }

 private:
  rules::EvalContext ctx_;
  Options options_;
  RuleScoringModel scorer_;
  size_t rules_labeled_ = 0;
};

}  // namespace rock::discovery

