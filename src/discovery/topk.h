#pragma once

#include <optional>
#include <vector>

#include "src/discovery/miner.h"
#include "src/ml/linear.h"

namespace rock::discovery {

/// Features of a mined rule for the interestingness scoring model
/// (paper §3/§5.2, after [37]: objective measures — support, confidence —
/// plus subjective measures learned from user labels).
ml::FeatureVector RuleFeatures(const MinedRule& rule);

/// The learned scoring model for ranking REE++s. Users label a handful of
/// rules as useful / not useful; the model generalizes their preference.
class RuleScoringModel {
 public:
  /// Trains from labeled rules (1 = useful). Falls back to the objective
  /// score (support-weighted confidence) until trained.
  void Train(const std::vector<MinedRule>& rules,
             const std::vector<int>& labels);

  /// Incremental refinement with additional feedback (paper §5.2: the
  /// anytime algorithm "iteratively gathers feedback ... and incrementally
  /// trains the model"). Previous examples are retained.
  void AddFeedback(const MinedRule& rule, int label);

  double Score(const MinedRule& rule) const;
  bool trained() const { return model_.trained(); }

 private:
  ml::LogisticRegression model_;
  std::vector<ml::FeatureVector> examples_;
  std::vector<int> labels_;
};

/// Greedy top-k selection with optional data-coverage diversification
/// (paper §5.2): each rule's marginal value is its score times the fraction
/// of its supporting evidence rows not yet covered by selected rules.
std::vector<MinedRule> SelectTopK(
    const std::vector<MinedRule>& rules, size_t k,
    const RuleScoringModel& scorer, bool diversify,
    const EvidenceTable* evidence = nullptr,
    const std::vector<std::vector<uint32_t>>* rule_rows = nullptr);

/// Anytime iterator (paper §3 rule discovery (b)): returns successive
/// batches of next-best rules via lazy evaluation, so callers can stop —
/// or keep asking — at any time.
class AnytimeRuleStream {
 public:
  AnytimeRuleStream(std::vector<MinedRule> rules, RuleScoringModel* scorer);

  /// The next best unreturned rule; nullopt when exhausted.
  std::optional<MinedRule> Next();

  /// Feedback on a returned rule; re-ranks the remaining stream.
  void Feedback(const MinedRule& rule, int label);

  size_t remaining() const { return rules_.size() - emitted_; }

 private:
  std::vector<MinedRule> rules_;
  RuleScoringModel* scorer_;
  size_t emitted_ = 0;

  void Rerank();
};

}  // namespace rock::discovery

