#include "src/discovery/poly.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"
#include "src/ml/linear.h"
#include "src/ml/tree.h"

namespace rock::discovery {
namespace {

/// Solves (A + εI) w = b by Gaussian elimination with partial pivoting —
/// the OLS refit used to debias LASSO-selected terms.
bool SolveLinearSystem(std::vector<std::vector<double>> a,
                       std::vector<double> b, std::vector<double>* out) {
  const size_t n = b.size();
  for (size_t i = 0; i < n; ++i) a[i][i] += 1e-9;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-30) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  out->assign(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[i][k] * (*out)[k];
    (*out)[i] = sum / a[i][i];
  }
  return true;
}

bool IsNumeric(ValueType type) {
  return type == ValueType::kInt || type == ValueType::kDouble;
}

double NumericOf(const Value& v) { return v.AsDouble(); }

}  // namespace

Result<double> PolyExpression::Evaluate(const Tuple& tuple) const {
  double out = bias;
  for (const Term& term : terms) {
    const Value& a = tuple.values[static_cast<size_t>(term.attr_a)];
    if (a.is_null()) return Status::NotFound("null input attribute");
    double x = NumericOf(a);
    if (term.attr_b >= 0) {
      const Value& b = tuple.values[static_cast<size_t>(term.attr_b)];
      if (b.is_null()) return Status::NotFound("null input attribute");
      x *= NumericOf(b);
    }
    out += term.weight * x;
  }
  return out;
}

std::string PolyExpression::ToString(const Schema& schema) const {
  std::string out = schema.AttributeName(target_attr) + " ≈ ";
  for (const Term& term : terms) {
    out += StrFormat("%+.4g*%s", term.weight,
                     schema.AttributeName(term.attr_a).c_str());
    if (term.attr_b >= 0) {
      out += "*" + schema.AttributeName(term.attr_b);
    }
    out += " ";
  }
  out += StrFormat("%+.4g", bias);
  return out;
}

Result<PolyExpression> DiscoverPolynomial(const Relation& relation,
                                          int target_attr,
                                          const PolyOptions& options) {
  const Schema& schema = relation.schema();
  if (!IsNumeric(schema.AttributeType(target_attr))) {
    return Status::InvalidArgument("target attribute is not numeric");
  }
  std::vector<int> numeric_attrs;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (static_cast<int>(a) == target_attr) continue;
    if (IsNumeric(schema.AttributeType(static_cast<int>(a)))) {
      numeric_attrs.push_back(static_cast<int>(a));
    }
  }
  if (numeric_attrs.empty()) {
    return Status::FailedPrecondition("no numeric feature attributes");
  }

  // Rows with a defined target and all numeric attrs defined.
  std::vector<ml::FeatureVector> x_linear;
  std::vector<double> y;
  for (size_t row = 0; row < relation.size(); ++row) {
    const Tuple& t = relation.tuple(row);
    if (t.value(target_attr).is_null()) continue;
    ml::FeatureVector features;
    bool ok = true;
    for (int a : numeric_attrs) {
      if (t.value(a).is_null()) {
        ok = false;
        break;
      }
      features.push_back(NumericOf(t.value(a)));
    }
    if (!ok) continue;
    x_linear.push_back(std::move(features));
    y.push_back(NumericOf(t.value(target_attr)));
  }
  if (x_linear.size() < 8) {
    return Status::FailedPrecondition("too few complete rows to fit");
  }

  // Stage 1: GBT importance ranking prunes irrelevant attributes.
  ml::GradientBoostedTrees gbt;
  gbt.Train(x_linear, y);
  std::vector<double> importance = gbt.FeatureImportance();
  std::vector<std::pair<double, int>> ranked;
  for (size_t i = 0; i < numeric_attrs.size(); ++i) {
    ranked.emplace_back(importance[i], numeric_attrs[i]);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<int> selected;
  for (const auto& [gain, attr] : ranked) {
    if (static_cast<int>(selected.size()) >= options.max_features) break;
    if (gain <= 0.0 && !selected.empty()) break;
    selected.push_back(attr);
  }

  // Stage 2: LASSO over the polynomial feature expansion.
  struct FeatureDef {
    int attr_a;
    int attr_b;  // -1 for linear
  };
  std::vector<FeatureDef> defs;
  for (int a : selected) defs.push_back({a, -1});
  if (options.include_products) {
    for (size_t i = 0; i < selected.size(); ++i) {
      for (size_t j = i; j < selected.size(); ++j) {
        defs.push_back({selected[i], selected[static_cast<size_t>(j)]});
      }
    }
  }
  // Column scaling keeps LASSO's single lambda meaningful across features
  // of very different magnitudes.
  std::vector<double> scale(defs.size(), 1.0);
  std::vector<ml::FeatureVector> x_poly(x_linear.size());
  auto attr_pos = [&](int attr) {
    return std::find(numeric_attrs.begin(), numeric_attrs.end(), attr) -
           numeric_attrs.begin();
  };
  for (size_t f = 0; f < defs.size(); ++f) {
    double max_abs = 0.0;
    for (size_t row = 0; row < x_linear.size(); ++row) {
      double v = x_linear[row][static_cast<size_t>(attr_pos(defs[f].attr_a))];
      if (defs[f].attr_b >= 0) {
        v *= x_linear[row][static_cast<size_t>(attr_pos(defs[f].attr_b))];
      }
      max_abs = std::max(max_abs, std::abs(v));
    }
    scale[f] = max_abs > 0 ? max_abs : 1.0;
  }
  double y_scale = 0.0;
  for (double v : y) y_scale = std::max(y_scale, std::abs(v));
  if (y_scale == 0.0) y_scale = 1.0;
  std::vector<double> y_scaled(y.size());
  for (size_t row = 0; row < y.size(); ++row) y_scaled[row] = y[row] / y_scale;

  for (size_t row = 0; row < x_linear.size(); ++row) {
    x_poly[row].resize(defs.size());
    for (size_t f = 0; f < defs.size(); ++f) {
      double v = x_linear[row][static_cast<size_t>(attr_pos(defs[f].attr_a))];
      if (defs[f].attr_b >= 0) {
        v *= x_linear[row][static_cast<size_t>(attr_pos(defs[f].attr_b))];
      }
      x_poly[row][f] = v / scale[f];
    }
  }

  // Fit core: LASSO selection + centered OLS refit over a row subset.
  struct Fit {
    std::vector<double> weights;  // scaled space
    double bias = 0.0;            // scaled space
    double r2 = 0.0;
    bool ok = false;
  };
  auto fit_rows = [&](const std::vector<int>& rows) {
    Fit fit;
    std::vector<ml::FeatureVector> xs;
    std::vector<double> ys;
    xs.reserve(rows.size());
    ys.reserve(rows.size());
    for (int r : rows) {
      xs.push_back(x_poly[static_cast<size_t>(r)]);
      ys.push_back(y_scaled[static_cast<size_t>(r)]);
    }
    ml::Lasso::Options lasso_options;
    lasso_options.lambda = options.lasso_lambda;
    ml::Lasso lasso(lasso_options);
    lasso.Train(xs, ys);

    // LASSO provides the support; a centered OLS refit on that support
    // debiases the shrunken weights (otherwise exact invariants like
    // total = amount + fee + tax fit with systematic error).
    // Support = every linear term (cheap, and tiny-variance terms like a
    // small fee are exactly what LASSO under-selects) plus the product
    // terms LASSO kept.
    std::vector<int> support;
    for (size_t f = 0; f < defs.size(); ++f) {
      if (defs[f].attr_b < 0) support.push_back(static_cast<int>(f));
    }
    for (int f : lasso.SelectedFeatures()) {
      if (defs[static_cast<size_t>(f)].attr_b >= 0) support.push_back(f);
    }
    if (support.empty()) {
      for (size_t f = 0; f < defs.size(); ++f) {
        support.push_back(static_cast<int>(f));
      }
    }
    const size_t k = support.size();
    std::vector<double> sup_mean(k, 0.0);
    for (const auto& row : xs) {
      for (size_t i = 0; i < k; ++i) {
        sup_mean[i] += row[static_cast<size_t>(support[i])];
      }
    }
    for (double& m : sup_mean) m /= static_cast<double>(xs.size());
    double y_mean = 0.0;
    for (double v : ys) y_mean += v;
    y_mean /= static_cast<double>(ys.size());
    std::vector<std::vector<double>> gram(k, std::vector<double>(k, 0.0));
    std::vector<double> xty(k, 0.0);
    for (size_t row = 0; row < xs.size(); ++row) {
      for (size_t i = 0; i < k; ++i) {
        double xi = xs[row][static_cast<size_t>(support[i])] - sup_mean[i];
        xty[i] += xi * (ys[row] - y_mean);
        for (size_t j = i; j < k; ++j) {
          double xj = xs[row][static_cast<size_t>(support[j])] - sup_mean[j];
          gram[i][j] += xi * xj;
        }
      }
    }
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < i; ++j) gram[i][j] = gram[j][i];
    }
    std::vector<double> refit;
    fit.weights.assign(defs.size(), 0.0);
    if (SolveLinearSystem(gram, xty, &refit)) {
      fit.bias = y_mean;
      for (size_t i = 0; i < k; ++i) {
        fit.weights[static_cast<size_t>(support[i])] = refit[i];
        fit.bias -= refit[i] * sup_mean[i];
      }
    } else {
      fit.bias = lasso.bias();
      for (size_t f = 0; f < defs.size(); ++f) {
        fit.weights[f] = lasso.weights()[f];
      }
    }
    // R² on the subset.
    double ss_res = 0.0, ss_tot = 0.0;
    for (size_t row = 0; row < xs.size(); ++row) {
      double pred = fit.bias;
      for (size_t f = 0; f < defs.size(); ++f) {
        pred += fit.weights[f] * xs[row][f];
      }
      ss_res += (ys[row] - pred) * (ys[row] - pred);
      ss_tot += (ys[row] - y_mean) * (ys[row] - y_mean);
    }
    fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    fit.ok = true;
    return fit;
  };

  // Robust rounds: the data being fit is dirty by assumption; rows whose
  // relative residual exceeds the outlier threshold are dropped and the
  // expression refit on the inliers.
  std::vector<int> active(x_poly.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = static_cast<int>(i);
  Fit fit = fit_rows(active);
  for (int round = 0; round < options.robust_rounds && fit.ok; ++round) {
    // MAD-style trimming: rows whose residual exceeds 6× the median
    // absolute residual are outliers (gross corruptions, not fit noise).
    std::vector<double> residuals;
    residuals.reserve(active.size());
    for (int r : active) {
      double pred = fit.bias;
      for (size_t f = 0; f < defs.size(); ++f) {
        pred += fit.weights[f] * x_poly[static_cast<size_t>(r)][f];
      }
      residuals.push_back(
          std::abs(y_scaled[static_cast<size_t>(r)] - pred));
    }
    std::vector<double> sorted = residuals;
    std::sort(sorted.begin(), sorted.end());
    double median = sorted[sorted.size() / 2];
    double cut = std::max(6.0 * median, 1e-9);
    std::vector<int> inliers;
    for (size_t i = 0; i < active.size(); ++i) {
      if (residuals[i] <= cut) inliers.push_back(active[i]);
    }
    if (inliers.size() == active.size()) break;  // nothing dropped
    if (static_cast<double>(x_poly.size() - inliers.size()) >
        options.max_outlier_fraction * static_cast<double>(x_poly.size())) {
      return Status::FailedPrecondition(
          "attribute is not governed by a polynomial invariant "
          "(too many outliers)");
    }
    if (inliers.size() < 8) break;
    active = std::move(inliers);
    fit = fit_rows(active);
  }

  PolyExpression expr;
  expr.target_attr = target_attr;
  expr.bias = fit.bias * y_scale;
  for (size_t f = 0; f < defs.size(); ++f) {
    // fit.weights is in the max-scaled space (columns and target in
    // [-1, 1]), so its magnitude IS the relative contribution.
    if (std::abs(fit.weights[f]) < options.min_weight) continue;
    double w = fit.weights[f] * y_scale / scale[f];
    expr.terms.push_back({defs[f].attr_a, defs[f].attr_b, w});
  }
  expr.r_squared = fit.r2;
  // Exact support over ALL rows (outliers included): the share of data the
  // expression reproduces to within float/cents rounding.
  size_t exact = 0;
  for (size_t row = 0; row < x_poly.size(); ++row) {
    double pred = fit.bias;
    for (size_t f = 0; f < defs.size(); ++f) {
      pred += fit.weights[f] * x_poly[row][f];
    }
    double scale_ref = std::max(1e-6, std::abs(pred));
    if (std::abs(y_scaled[row] - pred) / scale_ref <= 1e-4) ++exact;
  }
  expr.exact_support =
      static_cast<double>(exact) / static_cast<double>(x_poly.size());
  return expr;
}

}  // namespace rock::discovery
