#pragma once

#include <string>
#include <vector>

#include "src/discovery/evidence.h"
#include "src/ml/library.h"
#include "src/rules/eval.h"
#include "src/rules/ree.h"

namespace rock::discovery {

struct MinerOptions {
  /// Minimum support: fraction of (sampled) valuations satisfying X ∧ p0.
  /// The paper's experiments use 1e-8 on billions of pairs; at laptop scale
  /// an absolute row floor (min_support_rows) does the real work.
  double min_support = 1e-8;
  size_t min_support_rows = 4;
  double min_confidence = 0.9;
  /// Maximum precondition size |X|.
  int max_precondition = 3;
  /// Evidence sample cap (valuations). 0 = exhaustive.
  size_t max_evidence_rows = 200000;
  /// When true, no pruning is applied (the "ES" baseline behaviour:
  /// exhaustive levelwise enumeration with exact counting on the full
  /// evidence set, no anti-monotone cuts, no FDX predicate filtering).
  bool disable_pruning = false;
  /// FDX-style predicate pruning (paper §5.4): drop precondition
  /// candidates whose evidence correlation with the consequence is below
  /// this threshold (0 disables).
  double fdx_min_correlation = 0.0;
  uint64_t seed = 7;
};

/// One discovered rule plus its measured statistics.
struct MinedRule {
  rules::Ree rule;
  size_t support_rows = 0;
  double support = 0.0;
  double confidence = 0.0;
};

/// Levelwise REE++ miner over an evidence table (paper §3 "Rule discovery",
/// after [36, 41]): for each consequence candidate p0, grows preconditions
/// X levelwise, pruning by anti-monotone support, confidence-closing
/// minimal rules (no mined rule's precondition is a superset of another
/// mined rule's with the same consequence).
class RuleMiner {
 public:
  RuleMiner() = default;
  explicit RuleMiner(MinerOptions options) : options_(options) {}

  /// Mines rules from one predicate space. `eval` supplies predicate
  /// semantics (including ML models).
  std::vector<MinedRule> Mine(const rules::Evaluator& eval,
                              const PredicateSpace& space);

  /// Statistics of the last Mine() call.
  size_t candidates_explored() const { return candidates_explored_; }
  size_t candidates_pruned() const { return candidates_pruned_; }

 private:
  MinerOptions options_;
  size_t candidates_explored_ = 0;
  size_t candidates_pruned_ = 0;
};

/// Multi-round sampling (paper §5.2, after [36]): mines on samples with a
/// Hoeffding-style accuracy bound. Returns the required sample size so
/// that support/confidence estimates are within `epsilon` of their true
/// values with probability 1 - delta.
size_t HoeffdingSampleSize(double epsilon, double delta);

}  // namespace rock::discovery

