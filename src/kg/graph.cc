#include "src/kg/graph.h"

#include <algorithm>

namespace rock::kg {

VertexId KnowledgeGraph::AddVertex(std::string label) {
  VertexId id = static_cast<VertexId>(labels_.size());
  label_index_[label].push_back(id);
  labels_.push_back(std::move(label));
  adjacency_.emplace_back();
  return id;
}

Status KnowledgeGraph::AddEdge(VertexId from, const std::string& label,
                               VertexId to) {
  if (!HasVertex(from) || !HasVertex(to)) {
    return Status::OutOfRange("edge endpoint does not exist");
  }
  adjacency_[static_cast<size_t>(from)][label].push_back(to);
  ++num_edges_;
  return Status::Ok();
}

std::vector<VertexId> KnowledgeGraph::Neighbors(
    VertexId v, const std::string& label) const {
  if (!HasVertex(v)) return {};
  const auto& edges = adjacency_[static_cast<size_t>(v)];
  auto it = edges.find(label);
  return it == edges.end() ? std::vector<VertexId>{} : it->second;
}

std::vector<std::pair<std::string, VertexId>> KnowledgeGraph::OutEdges(
    VertexId v) const {
  std::vector<std::pair<std::string, VertexId>> out;
  if (!HasVertex(v)) return out;
  for (const auto& [label, targets] : adjacency_[static_cast<size_t>(v)]) {
    for (VertexId t : targets) out.emplace_back(label, t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VertexId> KnowledgeGraph::MatchPath(
    VertexId start, const std::vector<std::string>& path) const {
  if (!HasVertex(start)) return {};
  std::vector<VertexId> frontier = {start};
  for (const std::string& label : path) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (VertexId t : Neighbors(v, label)) next.push_back(t);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

bool KnowledgeGraph::HasPath(VertexId start,
                             const std::vector<std::string>& path) const {
  return !MatchPath(start, path).empty();
}

Result<Value> KnowledgeGraph::ValueAtPath(
    VertexId start, const std::vector<std::string>& path) const {
  std::vector<VertexId> terminals = MatchPath(start, path);
  if (terminals.empty()) {
    return Status::NotFound("no match of path from vertex " +
                            std::to_string(start));
  }
  const std::string* best = nullptr;
  for (VertexId v : terminals) {
    const std::string& label = Label(v);
    if (best == nullptr || label < *best) best = &label;
  }
  return Value::String(*best);
}

std::vector<VertexId> KnowledgeGraph::FindByLabel(
    const std::string& label) const {
  auto it = label_index_.find(label);
  return it == label_index_.end() ? std::vector<VertexId>{} : it->second;
}

std::vector<VertexId> KnowledgeGraph::AllVertices() const {
  std::vector<VertexId> out(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) {
    out[i] = static_cast<VertexId>(i);
  }
  return out;
}

}  // namespace rock::kg
