#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/value.h"

namespace rock::kg {

using VertexId = int64_t;

/// A knowledge graph G = (V, E, L) (paper §2): vertices and edges carry
/// labels; edge labels typify predicates while vertex labels may carry
/// values. Missing-value imputation extracts data from G via label paths.
class KnowledgeGraph {
 public:
  /// Adds a vertex with the given label (the label doubles as the carried
  /// value, e.g. an entity name or a literal). Returns its id.
  VertexId AddVertex(std::string label);

  /// Adds a directed labeled edge; both endpoints must exist.
  Status AddEdge(VertexId from, const std::string& label, VertexId to);

  size_t num_vertices() const { return labels_.size(); }
  size_t num_edges() const { return num_edges_; }

  bool HasVertex(VertexId v) const {
    return v >= 0 && static_cast<size_t>(v) < labels_.size();
  }
  const std::string& Label(VertexId v) const {
    return labels_[static_cast<size_t>(v)];
  }

  /// Outgoing neighbours of `v` through edges labeled `label`.
  std::vector<VertexId> Neighbors(VertexId v, const std::string& label) const;

  /// All outgoing (label, target) pairs of `v`.
  std::vector<std::pair<std::string, VertexId>> OutEdges(VertexId v) const;

  /// A match of label path ρ = (l1, ..., ln) from `start` is a vertex list
  /// (v0=start, v1, ..., vn) whose consecutive edges carry ρ's labels
  /// (paper §2 Preliminaries). Returns every terminal vertex vn reachable
  /// via such a match.
  std::vector<VertexId> MatchPath(VertexId start,
                                  const std::vector<std::string>& path) const;

  /// True when at least one match of `path` exists from `start`.
  bool HasPath(VertexId start, const std::vector<std::string>& path) const;

  /// val(x.ρ): the value (label) of the vertex reached by the match of ρ
  /// from `start` (paper §2.3). When several matches exist the
  /// lexicographically-least terminal label is returned so the chase stays
  /// deterministic; NotFound when no match exists.
  Result<Value> ValueAtPath(VertexId start,
                            const std::vector<std::string>& path) const;

  /// Vertices whose label exactly equals `label` (an inverted index used by
  /// HER blocking).
  std::vector<VertexId> FindByLabel(const std::string& label) const;

  /// All vertex ids (for scans in tests/benches).
  std::vector<VertexId> AllVertices() const;

 private:
  std::vector<std::string> labels_;
  // adjacency_[v] : edge label -> targets.
  std::vector<std::unordered_map<std::string, std::vector<VertexId>>>
      adjacency_;
  std::unordered_map<std::string, std::vector<VertexId>> label_index_;
  size_t num_edges_ = 0;
};

}  // namespace rock::kg

