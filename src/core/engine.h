#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/chase/chase.h"
#include "src/detect/detector.h"
#include "src/discovery/miner.h"
#include "src/discovery/poly.h"
#include "src/discovery/topk.h"
#include "src/kg/graph.h"
#include "src/ml/library.h"
#include "src/obs/exporters.h"
#include "src/obs/server.h"
#include "src/rules/parser.h"
#include "src/storage/relation.h"

namespace rock::core {

/// System variants evaluated in the paper's ablations (§6):
///  - kRock: the full system;
///  - kNoMl (Rock_noML): ML predicates stripped from the rule set, no
///    ML-based conflict resolution or polynomial expressions;
///  - kSequential (Rock_seq): ER, CR, MI, TD chased one task at a time,
///    iterated to fixpoint;
///  - kNoChase (Rock_noC): each task executed once, no iteration.
enum class Variant { kRock, kNoMl, kSequential, kNoChase };

const char* VariantName(Variant variant);

/// Everything needed to instantiate the built-in model suite from (dirty)
/// data — the paper's pre-trained ML pool (§5.1).
struct ModelTrainingSpec {
  /// Threshold for the default entity-matching model "MER".
  double mer_threshold = 0.80;
  /// M_rank training targets: (relation name, attribute name). The first
  /// target's model registers as "Mrank".
  std::vector<std::pair<std::string, std::string>> rank_targets;
  /// Monotone numeric attributes per relation (critic knowledge for the
  /// creator-critic loop): larger value => at least as current.
  std::vector<std::pair<std::string, std::string>> monotone_attrs;
  /// Path-matcher synonyms: attribute name -> label path.
  std::vector<std::pair<std::string, std::vector<std::string>>>
      path_synonyms;
  /// Train M_c / M_d co-occurrence models per relation (registered as
  /// "Mc" / "Md", shared across relations via attribute indices).
  bool train_correlation = true;
};

struct RockOptions {
  Variant variant = Variant::kRock;
  discovery::MinerOptions miner;
  chase::ChaseOptions chase;
  detect::DetectorOptions detector;
  /// Discover and enforce polynomial expressions over numeric attributes
  /// (§5.4); disabled for kNoMl.
  bool enable_polynomials = true;
  /// Relative tolerance for polynomial violations.
  double poly_tolerance = 0.02;
  /// Minimum fit quality before a polynomial is enforced. Arithmetic
  /// invariants (total = amount + fee + tax) fit exactly; near-miss fits
  /// are spurious correlations (e.g. qty ≈ total/price) and must not be
  /// enforced, so the bar is strict.
  double poly_min_r2 = 0.999;
  /// Additionally, at least this fraction of rows must satisfy the
  /// expression exactly (see PolyExpression::exact_support) — a
  /// statistical pseudo-fit never does.
  double poly_min_exact_support = 0.7;
};

/// A discovered-and-enforced polynomial expression bound to a relation.
struct PolyRule {
  int rel = -1;
  discovery::PolyExpression expr;
};

struct CorrectionResult {
  chase::ChaseResult chase;
  /// Value fixes contributed by polynomial imputation/repair.
  size_t poly_fixes = 0;
  /// Chase passes executed (1 for kRock; per-task passes otherwise).
  int passes = 0;
};

/// The Rock system facade: model training, rule discovery, error
/// detection and error correction over one database (+ optional knowledge
/// graph), under a selected variant. This is the API the examples and the
/// benchmark harness drive.
class Rock {
 public:
  Rock(Database* db, kg::KnowledgeGraph* graph);
  Rock(Database* db, kg::KnowledgeGraph* graph, RockOptions options);

  const RockOptions& options() const { return options_; }
  ml::MlLibrary* models() { return &models_; }
  Database* db() { return db_; }

  /// Recovery knobs for the parallel paths: injects a deterministic fault
  /// schedule (see src/par/fault.h; not owned, may be nullptr to disable)
  /// and a retry discipline into both DetectErrorsParallel and the chase's
  /// RunParallel. Faulty runs produce output identical to fault-free runs:
  /// the pool retries transient failures with capped backoff, re-places a
  /// crashed worker's units via the hash ring, and the chase/detector
  /// replay anything the pool abandons from the round checkpoint.
  // ROCK_ANALYZE(no-span-ok: configuration setter, performs no traced work)
  void SetFaultInjection(const par::FaultPlan* plan,
                         par::RetryPolicy retry = par::RetryPolicy()) {
    options_.chase.fault_plan = plan;
    options_.chase.retry = retry;
    options_.detector.fault_plan = plan;
    options_.detector.retry = retry;
  }

  /// Trains and registers the built-in model suite (MER similarity
  /// matcher, M_c/M_d co-occurrence, M_rank creator-critic, HER, path
  /// matcher). Under kNoMl only registers nothing (rules using models are
  /// stripped anyway).
  void TrainModels(const ModelTrainingSpec& spec);

  /// Parses curated rules in the textual rule language; under kNoMl,
  /// ML-predicate rules are dropped (the paper's Rock_noML).
  Result<std::vector<rules::Ree>> LoadRules(const std::string& text) const;

  /// Mines REE++s from the data over per-relation predicate spaces (pair
  /// and single shapes). Returns them ranked by the scoring model.
  std::vector<discovery::MinedRule> DiscoverRules(
      const discovery::PredicateSpaceOptions& space_options,
      size_t top_k = 0);

  /// Discovers polynomial expressions for every numeric attribute that
  /// fits well enough (§5.4); they participate in Detect/Correct.
  std::vector<PolyRule> DiscoverPolynomials();

  /// Installs `rules` as the engine's *active rule set*: the set every
  /// session/batch-oriented entry point (DetectActive,
  /// DetectActiveIncremental — and rockd's detect verb through them)
  /// evaluates without the caller shipping rules per call. Parses with
  /// LoadRules, so kNoMl stripping applies.
  Status ActivateRules(const std::string& text);

  /// Installs pre-parsed rules as the active rule set.
  void ActivateRules(std::vector<rules::Ree> rules);

  /// The currently active rule set (empty before ActivateRules).
  const std::vector<rules::Ree>& active_rules() const {
    return active_rules_;
  }

  /// Batch ingest: appends `tuples` to relation `rel_index`, assigning
  /// globally fresh tids (returned in input order). This is the write-side
  /// entry point behind rockd's ingest verb: one call, many tuples, one
  /// span, so a served workload is batches rather than one-shot appends.
  /// Fails atomically per tuple (earlier tuples in the batch stay
  /// inserted; the returned status names the offending tuple).
  Result<std::vector<int64_t>> IngestBatch(int rel_index,
                                           std::vector<Tuple> tuples);

  /// Batch detection over the active rule set.
  detect::DetectionReport DetectActive() const;

  /// Incremental detection over ΔD with the active rule set.
  detect::DetectionReport DetectActiveIncremental(
      const std::vector<std::pair<int, int64_t>>& dirty) const;

  /// Batch error detection (violations + polynomial violations).
  detect::DetectionReport DetectErrors(
      const std::vector<rules::Ree>& rules) const;

  /// Incremental detection over ΔD.
  detect::DetectionReport DetectErrorsIncremental(
      const std::vector<rules::Ree>& rules,
      const std::vector<std::pair<int, int64_t>>& dirty) const;

  /// Parallel detection with schedule accounting, under the execution mode
  /// configured in RockOptions::detector (real worker threads by default).
  detect::DetectionReport DetectErrorsParallel(
      const std::vector<rules::Ree>& rules, int num_workers,
      par::ScheduleReport* schedule) const;

  /// Same, with an explicit execution mode — benches use this to compare
  /// the measured threaded wall-clock against the simulated makespan on
  /// the same workload.
  detect::DetectionReport DetectErrorsParallel(
      const std::vector<rules::Ree>& rules, int num_workers,
      par::ExecutionMode mode, par::ScheduleReport* schedule) const;

  /// Error correction: chases the data with (rules, Γ) under the variant's
  /// execution policy. `ground_truth` tuples seed Γ.
  /// The returned engine owns the fix store (inspect or materialize); Rock
  /// keeps a reference to the most recent engine so Explain() can answer
  /// "why was this cell changed?" after the call returns.
  std::shared_ptr<chase::ChaseEngine> CorrectErrors(
      const std::vector<rules::Ree>& rules,
      const std::vector<std::pair<int, int64_t>>& ground_truth,
      CorrectionResult* result);

  /// Parallel correction: the dominant first chase round runs under the
  /// worker pool (block size from RockOptions::detector.block_rows), with
  /// any SetFaultInjection schedule applied and recovered. Produces the
  /// same fix store as CorrectErrors under the kRock variant; fills
  /// `schedule` with the pool accounting when non-null.
  std::shared_ptr<chase::ChaseEngine> CorrectErrorsParallel(
      const std::vector<rules::Ree>& rules,
      const std::vector<std::pair<int, int64_t>>& ground_truth,
      int num_workers, CorrectionResult* result,
      par::ScheduleReport* schedule = nullptr);

  /// Why-provenance of a fix from the last CorrectErrors run: the proof
  /// tree of the validated cell (rule + witness tuples + premise cells,
  /// recursively to ground truth or raw reads). Empty when no correction
  /// ran, the cell was never validated, or capture is compiled out.
  obs::ProofTree Explain(int rel, int64_t tid, int attr,
                         int max_depth = 32) const;

  /// Why two eids denote the same entity: proof trees for every merge
  /// deduction on the union-find proof-forest path between them.
  obs::ProofTree ExplainMerge(int64_t eid_a, int64_t eid_b,
                              int max_depth = 32) const;

  /// Whole-run provenance aggregate of the last CorrectErrors run.
  obs::ProvenanceSummary ProvenanceSummary() const;

  /// The engine of the most recent CorrectErrors call (nullptr before the
  /// first call).
  std::shared_ptr<chase::ChaseEngine> last_engine() const {
    return last_engine_;
  }

  /// The polynomial rules currently enforced.
  const std::vector<PolyRule>& poly_rules() const { return poly_rules_; }

  /// Point-in-time telemetry: every registered metric plus per-span timing
  /// aggregates for the instrumented phases (discovery, detection, chase,
  /// worker pool). Metrics are process-wide — concurrent Rock instances
  /// share one registry.
  obs::TelemetrySnapshot Telemetry() const;

  /// Writes Telemetry() as a JSON document to `path`.
  Status DumpJson(const std::string& path) const;

  /// Starts the live telemetry plane (obs::TelemetryServer) on `port`
  /// (0 = ephemeral; read back via telemetry_server_port()). The server
  /// snapshots the process-global registry/tracer per request, so it
  /// observes every Rock instance in the process. Fails if a server is
  /// already running on this instance or the port cannot be bound.
  Status StartTelemetryServer(int port);

  /// Stops the server started by StartTelemetryServer. Safe to call when
  /// none is running.
  void StopTelemetryServer();

  /// Bound port of the running telemetry server, or -1.
  int telemetry_server_port() const;

  /// Starts the process-global sampling CPU profiler (obs::CpuProfiler):
  /// per-thread interval timers at `sample_hz`, results served as folded
  /// stacks / JSON at /profile.folded and /profile.json on the telemetry
  /// server. Unimplemented when built with -DROCK_OBS_PROFILER=OFF;
  /// FailedPrecondition if already running.
  Status StartProfiler(int sample_hz = 97);

  /// Stops the profiler; the captured profile stays queryable.
  Status StopProfiler();

  /// Starts the background stall watchdog (obs::StallWatchdog): spans
  /// open past `deadline_seconds` or queued units with no completions for
  /// that long dump a diagnostic bundle to stderr (and `dump_path` when
  /// non-empty). Unimplemented when built with -DROCK_OBS_PROFILER=OFF.
  Status StartStallWatchdog(double deadline_seconds = 30.0,
                            const std::string& dump_path = "");

  /// Stops the watchdog. Safe to call when none is running.
  Status StopStallWatchdog();

 private:
  Database* db_;
  kg::KnowledgeGraph* graph_;
  RockOptions options_;
  ml::MlLibrary models_;
  std::vector<rules::Ree> active_rules_;
  std::vector<PolyRule> poly_rules_;
  std::shared_ptr<chase::ChaseEngine> last_engine_;
  std::unique_ptr<obs::TelemetryServer> telemetry_server_;

  rules::EvalContext Context() const;
  /// Appends polynomial violations to `report`.
  void DetectPolyViolations(detect::DetectionReport* report) const;
  /// Applies polynomial repairs/imputations into `engine`'s fix store.
  size_t ApplyPolyFixes(chase::ChaseEngine* engine) const;
};

}  // namespace rock::core

