#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/rules/eval.h"
#include "src/rules/ree.h"
#include "src/storage/relation.h"

namespace rock::core {

/// Data-quality assessment (paper §4.1 end: "Rock adopts built-in
/// constraints and user-defined templates to monitor data quality in terms
/// of completeness, timeliness, validity and consistency, e.g. checking
/// nulls/duplicates in an attribute").
struct AttributeQuality {
  int rel = -1;
  int attr = -1;
  std::string name;
  /// Completeness: fraction of non-null cells.
  double completeness = 0.0;
  /// Validity: fraction of non-null cells whose value falls in the
  /// attribute's observed majority domain (top values covering >= 90% of
  /// the column) — a light built-in domain check.
  double validity = 0.0;
  /// Duplication: fraction of non-null cells carrying a repeated value.
  double duplication = 0.0;
  /// Timeliness: fraction of cells carrying a timestamp (temporal
  /// coverage), when the relation is temporal; 1.0 otherwise.
  double timeliness = 1.0;
};

struct QualityReport {
  std::vector<AttributeQuality> attributes;
  /// Consistency: 1 - (violating tuples / total tuples) under the given
  /// rule set; 1.0 when no rules are supplied.
  double consistency = 1.0;
  size_t violations = 0;

  /// Mean completeness across attributes.
  double OverallCompleteness() const;
};

/// A user-defined quality template: a named predicate over single tuples
/// evaluated per relation, contributing a pass rate to the report (e.g.
/// "price must be positive").
struct QualityTemplate {
  std::string name;
  int rel = -1;
  std::function<bool(const Tuple&)> check;
};

struct TemplateResult {
  std::string name;
  size_t checked = 0;
  size_t passed = 0;
  double pass_rate() const {
    return checked == 0 ? 1.0
                        : static_cast<double>(passed) /
                              static_cast<double>(checked);
  }
};

/// Computes the built-in quality monitors over `db`, measuring consistency
/// as the fraction of tuples not implicated in a violation of `rules`.
QualityReport AssessQuality(const Database& db,
                            const std::vector<rules::Ree>& rules,
                            const rules::EvalContext& ctx);

/// Evaluates user-defined templates.
std::vector<TemplateResult> RunQualityTemplates(
    const Database& db, const std::vector<QualityTemplate>& templates);

}  // namespace rock::core

