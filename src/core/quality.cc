#include "src/core/quality.h"

#include <algorithm>
#include <set>

#include "src/detect/detector.h"
#include "src/storage/stats.h"

namespace rock::core {

double QualityReport::OverallCompleteness() const {
  if (attributes.empty()) return 1.0;
  double sum = 0.0;
  for (const AttributeQuality& a : attributes) sum += a.completeness;
  return sum / static_cast<double>(attributes.size());
}

QualityReport AssessQuality(const Database& db,
                            const std::vector<rules::Ree>& rules,
                            const rules::EvalContext& ctx) {
  QualityReport report;
  for (size_t rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& relation = db.relation(static_cast<int>(rel));
    const Schema& schema = relation.schema();
    for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
      AttributeQuality quality;
      quality.rel = static_cast<int>(rel);
      quality.attr = static_cast<int>(attr);
      quality.name =
          schema.name() + "." + schema.AttributeName(static_cast<int>(attr));

      ColumnStats stats =
          ComputeColumnStats(relation, static_cast<int>(attr));
      size_t non_null = stats.num_rows - stats.num_nulls;
      quality.completeness =
          stats.num_rows == 0
              ? 1.0
              : static_cast<double>(non_null) /
                    static_cast<double>(stats.num_rows);

      // Majority domain: the most frequent values covering >= 90% of the
      // non-null cells; the remainder are potential domain violations.
      size_t covered = 0;
      for (const auto& [value, count] : stats.top_values) {
        (void)value;
        if (covered >= non_null * 9 / 10) break;
        covered += count;
      }
      quality.validity =
          non_null == 0 ? 1.0
                        : std::min(1.0, static_cast<double>(covered) /
                                            static_cast<double>(non_null) +
                                       0.1);

      // Duplication: repeated non-null values.
      size_t distinct = stats.num_distinct;
      quality.duplication =
          non_null == 0 ? 0.0
                        : 1.0 - static_cast<double>(distinct) /
                                    static_cast<double>(non_null);

      // Timeliness: timestamp coverage.
      size_t stamped = 0;
      bool any_temporal = false;
      for (size_t row = 0; row < relation.size(); ++row) {
        const Tuple& t = relation.tuple(row);
        if (!t.timestamps.empty()) any_temporal = true;
        if (t.timestamp(static_cast<int>(attr)) != kNoTimestamp) ++stamped;
      }
      quality.timeliness =
          !any_temporal || relation.empty()
              ? 1.0
              : static_cast<double>(stamped) /
                    static_cast<double>(relation.size());
      report.attributes.push_back(std::move(quality));
    }
  }

  if (!rules.empty() && ctx.db != nullptr) {
    detect::ErrorDetector detector(ctx);
    detect::DetectionReport detection = detector.Detect(rules);
    report.violations = detection.violations;
    std::set<std::pair<int, int64_t>> dirty = detection.DirtyTuples();
    size_t total = db.TotalTuples();
    report.consistency =
        total == 0 ? 1.0
                   : 1.0 - static_cast<double>(dirty.size()) /
                               static_cast<double>(total);
  }
  return report;
}

std::vector<TemplateResult> RunQualityTemplates(
    const Database& db, const std::vector<QualityTemplate>& templates) {
  std::vector<TemplateResult> out;
  for (const QualityTemplate& tmpl : templates) {
    TemplateResult result;
    result.name = tmpl.name;
    if (tmpl.rel >= 0 && tmpl.rel < static_cast<int>(db.num_relations())) {
      const Relation& relation = db.relation(tmpl.rel);
      for (size_t row = 0; row < relation.size(); ++row) {
        ++result.checked;
        if (tmpl.check(relation.tuple(row))) ++result.passed;
      }
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace rock::core
