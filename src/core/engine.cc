#include "src/core/engine.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/ml/correlation.h"
#include "src/ml/her.h"
#include "src/ml/ranking.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"

namespace rock::core {

using rules::Ree;
using rules::RuleTask;

const char* VariantName(Variant variant) {
  switch (variant) {
    case Variant::kRock:
      return "Rock";
    case Variant::kNoMl:
      return "Rock_noML";
    case Variant::kSequential:
      return "Rock_seq";
    case Variant::kNoChase:
      return "Rock_noC";
  }
  return "?";
}

Rock::Rock(Database* db, kg::KnowledgeGraph* graph)
    : Rock(db, graph, RockOptions()) {}

Rock::Rock(Database* db, kg::KnowledgeGraph* graph, RockOptions options)
    : db_(db), graph_(graph), options_(options) {
  if (options_.variant == Variant::kNoMl) {
    options_.enable_polynomials = false;
    options_.chase.resolve_mi_by_mc = false;
  }
  if (options_.variant == Variant::kNoChase) {
    options_.chase.max_rounds = 1;
  }
}

rules::EvalContext Rock::Context() const {
  rules::EvalContext ctx;
  ctx.db = db_;
  ctx.graph = graph_;
  ctx.models = &models_;
  return ctx;
}

void Rock::TrainModels(const ModelTrainingSpec& spec) {
  ROCK_OBS_SPAN("rock.train_models");
  if (options_.variant == Variant::kNoMl) return;

  models_.RegisterPair(
      "MER", std::make_shared<ml::SimilarityClassifier>(spec.mer_threshold));

  if (spec.train_correlation) {
    auto correlation = std::make_shared<ml::CooccurrenceModel>();
    for (size_t rel = 0; rel < db_->num_relations(); ++rel) {
      correlation->TrainOnRelation(db_->relation(static_cast<int>(rel)));
    }
    models_.RegisterCorrelation("Mc", correlation);
    models_.RegisterPredictor("Md", correlation);
  }

  // M_rank per configured target, creator-critic trained with timestamp +
  // monotone-attribute currency constraints (§2.2).
  bool first_ranker = true;
  for (const auto& [rel_name, attr_name] : spec.rank_targets) {
    const Relation* relation = db_->FindRelation(rel_name);
    if (relation == nullptr) continue;
    int attr = relation->schema().AttributeIndex(attr_name);
    if (attr < 0) continue;

    std::vector<ml::CurrencyConstraint> constraints;
    constraints.push_back(
        {"timestamps",
         [](const Schema&, const Tuple& t1, const Tuple& t2, int a) {
           int64_t ts1 = t1.timestamp(a);
           int64_t ts2 = t2.timestamp(a);
           if (ts1 == kNoTimestamp || ts2 == kNoTimestamp) return 0;
           if (ts1 == ts2) return 0;
           return ts1 < ts2 ? 1 : -1;
         }});
    for (const auto& [mono_rel, mono_attr] : spec.monotone_attrs) {
      if (mono_rel != rel_name) continue;
      int mono_idx = relation->schema().AttributeIndex(mono_attr);
      if (mono_idx < 0) continue;
      constraints.push_back(
          {"monotone:" + mono_attr,
           [mono_idx](const Schema&, const Tuple& t1, const Tuple& t2,
                      int) {
             // Same entity only: monotone attributes order versions.
             if (t1.eid != t2.eid) return 0;
             const Value& a = t1.values[static_cast<size_t>(mono_idx)];
             const Value& b = t2.values[static_cast<size_t>(mono_idx)];
             if (a.is_null() || b.is_null()) return 0;
             int cmp = a.Compare(b);
             if (cmp == 0) return 0;
             return cmp < 0 ? 1 : -1;
           }});
    }

    auto ranker =
        std::make_shared<ml::RankingModel>(relation->schema(), attr);
    ranker->TrainCreatorCritic(*relation, constraints);
    models_.RegisterRanker(first_ranker ? "Mrank"
                                        : "Mrank_" + rel_name + "_" +
                                              attr_name,
                           ranker);
    first_ranker = false;
  }

  if (graph_ != nullptr && graph_->num_vertices() > 0) {
    auto her = std::make_shared<ml::HerModel>();
    her->IndexGraph(*graph_);
    models_.RegisterHer(her);
  }
  auto matcher = std::make_shared<ml::PathMatchModel>();
  for (const auto& [attr, path] : spec.path_synonyms) {
    matcher->AddSynonym(attr, path);
  }
  models_.RegisterPathMatcher(matcher);
}

Result<std::vector<Ree>> Rock::LoadRules(const std::string& text) const {
  ROCK_OBS_SPAN("rock.load_rules");
  auto rules = rules::ParseRules(text, db_->schema());
  if (!rules.ok()) return rules.status();
  if (options_.variant != Variant::kNoMl) return rules;
  std::vector<Ree> kept;
  for (Ree& rule : *rules) {
    if (!rule.UsesMl()) kept.push_back(std::move(rule));
  }
  return kept;
}

std::vector<discovery::MinedRule> Rock::DiscoverRules(
    const discovery::PredicateSpaceOptions& space_options, size_t top_k) {
  ROCK_OBS_SPAN("rock.discover_rules");
  discovery::PredicateSpaceOptions effective = space_options;
  if (options_.variant == Variant::kNoMl) effective.ml_bindings.clear();

  rules::Evaluator eval(Context());
  discovery::RuleMiner miner(options_.miner);
  std::vector<discovery::MinedRule> mined;
  for (size_t rel = 0; rel < db_->num_relations(); ++rel) {
    discovery::PredicateSpace pair_space =
        discovery::BuildPairSpace(*db_, static_cast<int>(rel), effective);
    std::vector<discovery::MinedRule> rules = miner.Mine(eval, pair_space);
    mined.insert(mined.end(), rules.begin(), rules.end());
    discovery::PredicateSpace single_space =
        discovery::BuildSingleSpace(*db_, static_cast<int>(rel), effective);
    rules = miner.Mine(eval, single_space);
    mined.insert(mined.end(), rules.begin(), rules.end());
  }
  for (size_t i = 0; i < mined.size(); ++i) {
    mined[i].rule.id = "mined_" + std::to_string(i);
  }
  discovery::RuleScoringModel scorer;
  if (top_k == 0 || top_k >= mined.size()) {
    std::sort(mined.begin(), mined.end(),
              [&scorer](const discovery::MinedRule& a,
                        const discovery::MinedRule& b) {
                return scorer.Score(a) > scorer.Score(b);
              });
    return mined;
  }
  return discovery::SelectTopK(mined, top_k, scorer, /*diversify=*/false);
}

std::vector<PolyRule> Rock::DiscoverPolynomials() {
  ROCK_OBS_SPAN("rock.discover_polynomials");
  poly_rules_.clear();
  if (!options_.enable_polynomials) return poly_rules_;
  discovery::PolyOptions poly_options;
  for (size_t rel = 0; rel < db_->num_relations(); ++rel) {
    const Relation& relation = db_->relation(static_cast<int>(rel));
    const Schema& schema = relation.schema();
    for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
      ValueType type = schema.AttributeType(static_cast<int>(attr));
      if (type != ValueType::kDouble && type != ValueType::kInt) continue;
      auto expr = discovery::DiscoverPolynomial(
          relation, static_cast<int>(attr), poly_options);
      if (!expr.ok()) continue;
      if (expr->r_squared < options_.poly_min_r2) continue;
      if (expr->exact_support < options_.poly_min_exact_support) continue;
      if (expr->terms.empty()) continue;
      poly_rules_.push_back({static_cast<int>(rel), std::move(*expr)});
    }
  }
  return poly_rules_;
}

void Rock::DetectPolyViolations(detect::DetectionReport* report) const {
  for (const PolyRule& poly : poly_rules_) {
    const Relation& relation = db_->relation(poly.rel);
    for (size_t row = 0; row < relation.size(); ++row) {
      const Tuple& t = relation.tuple(row);
      auto predicted = poly.expr.Evaluate(t);
      if (!predicted.ok()) continue;  // some input is null
      const Value& actual = t.values[static_cast<size_t>(
          poly.expr.target_attr)];
      detect::ErrorRecord record;
      record.rule_id = "poly_" + std::to_string(poly.rel) + "_" +
                       std::to_string(poly.expr.target_attr);
      if (actual.is_null()) {
        record.error_class = detect::ErrorClass::kMissing;
      } else {
        double scale = std::max(1.0, std::abs(*predicted));
        if (std::abs(actual.AsDouble() - *predicted) / scale <=
            options_.poly_tolerance) {
          continue;
        }
        record.error_class = detect::ErrorClass::kConflict;
      }
      record.cells.push_back(
          {poly.rel, t.tid, poly.expr.target_attr});
      report->errors.push_back(std::move(record));
      ++report->violations;
    }
  }
}

Status Rock::ActivateRules(const std::string& text) {
  ROCK_OBS_SPAN("rock.activate_rules");
  Result<std::vector<Ree>> rules = LoadRules(text);
  if (!rules.ok()) return rules.status();
  active_rules_ = std::move(rules).value();
  obs::MetricsRegistry::Global()
      .GetGauge("rock_core_active_rules")
      ->Set(static_cast<int64_t>(active_rules_.size()));
  return Status::Ok();
}

void Rock::ActivateRules(std::vector<Ree> rules) {
  ROCK_OBS_SPAN("rock.activate_rules");
  active_rules_ = std::move(rules);
  obs::MetricsRegistry::Global()
      .GetGauge("rock_core_active_rules")
      ->Set(static_cast<int64_t>(active_rules_.size()));
}

Result<std::vector<int64_t>> Rock::IngestBatch(int rel_index,
                                               std::vector<Tuple> tuples) {
  ROCK_OBS_SPAN("rock.ingest_batch");
  if (rel_index < 0 ||
      static_cast<size_t>(rel_index) >= db_->num_relations()) {
    return Status::InvalidArgument("IngestBatch: no relation with index " +
                                   std::to_string(rel_index));
  }
  std::vector<int64_t> tids;
  tids.reserve(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    Result<int64_t> tid = db_->Insert(rel_index, std::move(tuples[i]));
    if (!tid.ok()) {
      return Status(tid.status().code(),
                    "IngestBatch: tuple " + std::to_string(i) + ": " +
                        tid.status().message());
    }
    tids.push_back(*tid);
  }
  static obs::Counter* ingested =
      obs::MetricsRegistry::Global().GetCounter("rock_core_tuples_ingested_total");
  ingested->Add(tids.size());
  return tids;
}

detect::DetectionReport Rock::DetectActive() const {
  return DetectErrors(active_rules_);
}

detect::DetectionReport Rock::DetectActiveIncremental(
    const std::vector<std::pair<int, int64_t>>& dirty) const {
  return DetectErrorsIncremental(active_rules_, dirty);
}

detect::DetectionReport Rock::DetectErrors(
    const std::vector<Ree>& rules) const {
  ROCK_OBS_SPAN("rock.detect");
  detect::ErrorDetector detector(Context(), options_.detector);
  detect::DetectionReport report = detector.Detect(rules);
  DetectPolyViolations(&report);
  return report;
}

detect::DetectionReport Rock::DetectErrorsIncremental(
    const std::vector<Ree>& rules,
    const std::vector<std::pair<int, int64_t>>& dirty) const {
  ROCK_OBS_SPAN("rock.detect_errors_incremental");
  detect::ErrorDetector detector(Context(), options_.detector);
  return detector.DetectIncremental(rules, dirty);
}

detect::DetectionReport Rock::DetectErrorsParallel(
    const std::vector<Ree>& rules, int num_workers,
    par::ScheduleReport* schedule) const {
  return DetectErrorsParallel(rules, num_workers,
                              options_.detector.execution_mode, schedule);
}

detect::DetectionReport Rock::DetectErrorsParallel(
    const std::vector<Ree>& rules, int num_workers, par::ExecutionMode mode,
    par::ScheduleReport* schedule) const {
  detect::DetectorOptions detector_options = options_.detector;
  detector_options.execution_mode = mode;
  detect::ErrorDetector detector(Context(), detector_options);
  detect::DetectionReport report =
      detector.DetectParallel(rules, num_workers, schedule);
  DetectPolyViolations(&report);
  return report;
}

size_t Rock::ApplyPolyFixes(chase::ChaseEngine* engine) const {
  // Runs before the chase starts — the caller is the apply thread.
  common::RoleGuard apply(engine->fix_store().apply_role());
  size_t applied = 0;
  for (const PolyRule& poly : poly_rules_) {
    const Relation& relation = db_->relation(poly.rel);
    std::string rule_id = "poly_" + std::to_string(poly.rel) + "_" +
                          std::to_string(poly.expr.target_attr);
    for (size_t row = 0; row < relation.size(); ++row) {
      const Tuple& t = relation.tuple(row);
      auto predicted = poly.expr.Evaluate(t);
      if (!predicted.ok()) continue;
      const Value& actual =
          t.values[static_cast<size_t>(poly.expr.target_attr)];
      double scale = std::max(1.0, std::abs(*predicted));
      bool needs_fix =
          actual.is_null() ||
          std::abs(actual.AsDouble() - *predicted) / scale >
              options_.poly_tolerance;
      if (!needs_fix) continue;
      // Round to cents to match the generators' monetary values.
      double rounded = std::round(*predicted * 100.0) / 100.0;
      bool changed = false;
      Status s = engine->fix_store().SetValue(
          poly.rel, t.tid, poly.expr.target_attr, Value::Double(rounded),
          rule_id, &changed);
      if (s.ok() && changed) ++applied;
    }
  }
  return applied;
}

std::shared_ptr<chase::ChaseEngine> Rock::CorrectErrors(
    const std::vector<Ree>& rules,
    const std::vector<std::pair<int, int64_t>>& ground_truth,
    CorrectionResult* result) {
  ROCK_OBS_SPAN("rock.correct");
  auto engine = std::make_shared<chase::ChaseEngine>(db_, graph_, &models_,
                                                     options_.chase);
  {
    // Ground truth is seeded before any chase runs (apply thread).
    common::RoleGuard apply(engine->fix_store().apply_role());
    for (const auto& [rel, tid] : ground_truth) {
      Status s = engine->fix_store().AddGroundTruthTuple(rel, tid);
      if (!s.ok()) {
        ROCK_LOG(kWarning) << "ground truth rejected: " << s.ToString();
      }
    }
  }
  CorrectionResult local;
  local.poly_fixes = ApplyPolyFixes(engine.get());

  switch (options_.variant) {
    case Variant::kRock:
    case Variant::kNoMl: {
      local.chase = engine->Run(rules);
      local.passes = 1;
      break;
    }
    case Variant::kSequential: {
      // ER, CR, MI, TD one task at a time, iterated until no task makes
      // progress (the paper's Rock_seq).
      const RuleTask order[] = {RuleTask::kEr, RuleTask::kCr, RuleTask::kMi,
                                RuleTask::kTd};
      size_t total_before = 0;
      for (int iteration = 0; iteration < options_.chase.max_rounds;
           ++iteration) {
        size_t fixes_this_iteration = 0;
        for (RuleTask task : order) {
          std::vector<Ree> subset;
          for (const Ree& rule : rules) {
            if (rule.Task() == task) subset.push_back(rule);
          }
          if (subset.empty()) continue;
          chase::ChaseResult pass = engine->Run(subset);
          fixes_this_iteration += pass.fixes_applied;
          local.chase.applications += pass.applications;
          local.chase.conflicts = pass.conflicts;
          ++local.passes;
        }
        local.chase.fixes_applied = total_before + fixes_this_iteration;
        total_before = local.chase.fixes_applied;
        ++local.chase.rounds;
        if (fixes_this_iteration == 0) {
          local.chase.converged = true;
          break;
        }
      }
      break;
    }
    case Variant::kNoChase: {
      // Each task exactly once, no iteration.
      const RuleTask order[] = {RuleTask::kEr, RuleTask::kCr, RuleTask::kMi,
                                RuleTask::kTd};
      for (RuleTask task : order) {
        std::vector<Ree> subset;
        for (const Ree& rule : rules) {
          if (rule.Task() == task) subset.push_back(rule);
        }
        if (subset.empty()) continue;
        chase::ChaseResult pass = engine->Run(subset);
        local.chase.fixes_applied += pass.fixes_applied;
        local.chase.applications += pass.applications;
        ++local.passes;
      }
      local.chase.converged = true;
      break;
    }
  }
  if (result != nullptr) *result = local;
  last_engine_ = engine;
  return engine;
}

std::shared_ptr<chase::ChaseEngine> Rock::CorrectErrorsParallel(
    const std::vector<Ree>& rules,
    const std::vector<std::pair<int, int64_t>>& ground_truth,
    int num_workers, CorrectionResult* result,
    par::ScheduleReport* schedule) {
  ROCK_OBS_SPAN("rock.correct_parallel");
  auto engine = std::make_shared<chase::ChaseEngine>(db_, graph_, &models_,
                                                     options_.chase);
  {
    common::RoleGuard apply(engine->fix_store().apply_role());
    for (const auto& [rel, tid] : ground_truth) {
      Status s = engine->fix_store().AddGroundTruthTuple(rel, tid);
      if (!s.ok()) {
        ROCK_LOG(kWarning) << "ground truth rejected: " << s.ToString();
      }
    }
  }
  CorrectionResult local;
  local.poly_fixes = ApplyPolyFixes(engine.get());
  local.chase = engine->RunParallel(rules, num_workers,
                                    options_.detector.block_rows, schedule,
                                    options_.detector.execution_mode);
  local.passes = 1;
  if (result != nullptr) *result = local;
  last_engine_ = engine;
  return engine;
}

obs::ProofTree Rock::Explain(int rel, int64_t tid, int attr,
                             int max_depth) const {
  ROCK_OBS_SPAN("rock.explain");
  if (last_engine_ == nullptr) return obs::ProofTree();
  return last_engine_->Explain(rel, tid, attr, max_depth);
}

obs::ProofTree Rock::ExplainMerge(int64_t eid_a, int64_t eid_b,
                                  int max_depth) const {
  ROCK_OBS_SPAN("rock.explain_merge");
  if (last_engine_ == nullptr) return obs::ProofTree();
  return last_engine_->ExplainMerge(eid_a, eid_b, max_depth);
}

obs::ProvenanceSummary Rock::ProvenanceSummary() const {
  ROCK_OBS_SPAN("rock.provenance_summary");
  if (last_engine_ == nullptr) return obs::ProvenanceSummary();
  return last_engine_->ProvenanceSummary();
}

obs::TelemetrySnapshot Rock::Telemetry() const {
  return obs::CaptureGlobalTelemetry();
}

Status Rock::DumpJson(const std::string& path) const {
  return obs::WriteFile(path, Telemetry().ToJson());
}

// ROCK_ANALYZE(no-span-ok: observability-plane control, starts the exporter)
Status Rock::StartTelemetryServer(int port) {
  if (telemetry_server_ != nullptr) {
    return Status::AlreadyExists(
        "telemetry server already running on port " +
        std::to_string(telemetry_server_->port()));
  }
  obs::TelemetryServer::Options options;
  options.port = port;
  options.build_info = "rock core (" + std::string(VariantName(
                           options_.variant)) + " variant)";
  auto server = obs::TelemetryServer::Start(options);
  if (!server.ok()) return server.status();
  telemetry_server_ = std::move(server).value();
  return Status::Ok();
}

// ROCK_ANALYZE(no-span-ok: observability-plane control, stops the exporter)
void Rock::StopTelemetryServer() { telemetry_server_.reset(); }

int Rock::telemetry_server_port() const {
  return telemetry_server_ == nullptr ? -1 : telemetry_server_->port();
}

// ROCK_ANALYZE(no-span-ok: observability-plane control, arms the profiler)
Status Rock::StartProfiler(int sample_hz) {
  obs::ProfileOptions options;
  options.sample_hz = sample_hz;
  return obs::StartGlobalProfiler(options);
}

Status Rock::StopProfiler() { return obs::StopGlobalProfiler(); }

// ROCK_ANALYZE(no-span-ok: observability-plane control, arms the watchdog)
Status Rock::StartStallWatchdog(double deadline_seconds,
                                const std::string& dump_path) {
  obs::WatchdogOptions options;
  options.span_deadline_seconds = deadline_seconds;
  options.progress_deadline_seconds = deadline_seconds;
  options.dump_path = dump_path;
  return obs::StartGlobalWatchdog(options);
}

Status Rock::StopStallWatchdog() { return obs::StopGlobalWatchdog(); }

}  // namespace rock::core
