#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/detect/detector.h"
#include "src/discovery/miner.h"
#include "src/ml/correlation.h"
#include "src/ml/feature.h"
#include "src/ml/tree.h"
#include "src/rules/eval.h"

namespace rock::baselines {

/// "ES" (paper §6): a rule-discovery baseline using evidence sets in a
/// purely mining manner [72] — exhaustive evidence construction, no
/// anti-monotone pruning, no sampling, no FDX predicate filtering. Slower
/// by construction and precision-oriented (it never optimizes recall).
class EsMiner {
 public:
  explicit EsMiner(double min_confidence = 0.95)
      : min_confidence_(min_confidence) {}

  std::vector<discovery::MinedRule> Mine(
      const rules::Evaluator& eval, const discovery::PredicateSpace& space);

  size_t candidates_explored() const { return candidates_explored_; }

 private:
  double min_confidence_;
  size_t candidates_explored_ = 0;
};

/// "T5s" (paper §6): a pre-trained-language-model cleaner. The stand-in
/// keeps the cost/accuracy profile: per-attribute character-level language
/// models over cell text with a large hashed parameter vector tuned over
/// many epochs ("millions of parameters to tune"), scoring a cell as
/// erroneous when its text is improbable for its column. Strong on textual
/// regularities, near-blind on numeric attributes (digits carry no
/// character-level signal) — the paper's observed weakness.
class T5sModel {
 public:
  struct Options {
    int hashed_parameters = 1 << 18;
    int epochs = 30;
    int ngram = 3;
    /// Cells below this percentile of their column's score distribution
    /// are flagged.
    double flag_percentile = 0.05;
  };

  T5sModel();
  explicit T5sModel(Options options);

  /// "Fine-tunes" on the database (unsupervised column LMs).
  void Train(const Database& db);

  /// Per-cell plausibility in [0,1]-ish (higher = more plausible).
  double CellScore(int rel, const Tuple& t, int attr) const;

  /// Flags improbable cells across the database.
  detect::DetectionReport Detect(const Database& db) const;

  /// Suggests a replacement for a flagged cell: the most frequent column
  /// value within small edit distance; null when no candidate.
  Value SuggestCorrection(const Database& db, int rel, const Tuple& t,
                          int attr) const;

  size_t parameters_trained() const { return parameters_trained_; }

 private:
  Options options_;
  // (rel, attr) -> hashed n-gram log-frequency table.
  std::map<std::pair<int, int>, std::vector<float>> column_lm_;
  // (rel, attr) -> flagging threshold.
  std::map<std::pair<int, int>, double> thresholds_;
  // (rel, attr) -> value frequencies for correction suggestions.
  std::map<std::pair<int, int>, std::map<std::string, int>> vocab_;
  size_t parameters_trained_ = 0;

  double TextLogProb(const std::vector<float>& lm, const std::string& text)
      const;
};

/// "RB" (paper §6, after Baran [65]): holistic feature engineering + a
/// tree-ensemble error classifier per attribute, trained from a labeled
/// sample, plus a context-based value corrector. Feature generation is the
/// dominant cost (as the paper observes).
class RbCleaner {
 public:
  struct Options {
    int trees = 40;
    int feature_dim = 128;
  };

  RbCleaner();
  explicit RbCleaner(Options options);

  /// Trains per-attribute error classifiers from labeled tuples:
  /// `labeled_errors` lists known-dirty cells; every other cell of
  /// `labeled_tuples` counts as clean.
  void Train(const Database& db,
             const std::vector<std::pair<int, int64_t>>& labeled_tuples,
             const std::vector<std::tuple<int, int64_t, int>>& labeled_errors);

  detect::DetectionReport Detect(const Database& db) const;

  /// Context-based correction: the value most correlated with the rest of
  /// the tuple (Baran's value models, via the co-occurrence corrector).
  Value SuggestCorrection(const Database& db, int rel, const Tuple& t,
                          int attr) const;

  size_t features_generated() const { return features_generated_; }

 private:
  Options options_;
  ml::HashedTextFeaturizer text_;
  std::map<std::pair<int, int>, ml::GradientBoostedTrees> classifiers_;
  ml::CooccurrenceModel corrector_;
  mutable size_t features_generated_ = 0;

  ml::FeatureVector CellFeatures(const Database& db, int rel, const Tuple& t,
                                 int attr) const;
};

/// SparkSQL / Presto stand-in (paper §6): executes REE++ violation queries
/// as a generic SQL engine would — hash joins on equality predicates but
/// no ML-predicate blocking, no partial-valuation caching, and iterated
/// full re-execution for the chase simulation. Also renders the REE++→SQL
/// translation the paper describes (ML predicates become UDFs).
class NaiveSqlEngine {
 public:
  explicit NaiveSqlEngine(rules::EvalContext ctx) : ctx_(ctx) {}

  /// The SQL string for a rule's violation query.
  std::string ToSql(const rules::Ree& rule) const;

  /// Violation detection by block-nested-loop evaluation (no blocking).
  detect::DetectionReport Detect(const std::vector<rules::Ree>& rules) const;

  /// Simulated error correction: iterates Detect + naive single-pass
  /// repairs until no new violations, re-running every query from scratch
  /// each round (what "iteratively executed SQL" costs, §6 Exp-3).
  /// Returns the number of full re-executions.
  int IterativeClean(const std::vector<rules::Ree>& rules, int max_rounds,
                     size_t* violations_fixed);

 private:
  rules::EvalContext ctx_;
};

}  // namespace rock::baselines

