#include "src/baselines/baselines.h"

#include <algorithm>
#include <cmath>

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace rock::baselines {

using rules::Predicate;
using rules::PredicateKind;
using rules::Ree;

std::vector<discovery::MinedRule> EsMiner::Mine(
    const rules::Evaluator& eval, const discovery::PredicateSpace& space) {
  // Exhaustive evidence + pruning disabled: the miner walks the full
  // lattice up to the size cap.
  discovery::MinerOptions options;
  options.disable_pruning = true;
  options.max_evidence_rows = 0;
  options.min_confidence = min_confidence_;
  options.max_precondition = 3;
  discovery::RuleMiner miner(options);
  auto rules = miner.Mine(eval, space);
  candidates_explored_ = miner.candidates_explored();
  for (size_t i = 0; i < rules.size(); ++i) {
    rules[i].rule.id = "es_" + std::to_string(i);
  }
  return rules;
}

T5sModel::T5sModel() : T5sModel(Options()) {}
T5sModel::T5sModel(Options options) : options_(options) {}

void T5sModel::Train(const Database& db) {
  column_lm_.clear();
  thresholds_.clear();
  vocab_.clear();
  parameters_trained_ = 0;

  for (size_t rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& relation = db.relation(static_cast<int>(rel));
    for (size_t attr = 0; attr < relation.schema().num_attributes();
         ++attr) {
      auto key = std::make_pair(static_cast<int>(rel),
                                static_cast<int>(attr));
      std::vector<float>& lm = column_lm_[key];
      lm.assign(static_cast<size_t>(options_.hashed_parameters), 0.0f);
      parameters_trained_ += lm.size();

      // "Fine-tuning": several epochs over the column accumulating n-gram
      // counts into the hashed parameter vector.
      for (int epoch = 0; epoch < options_.epochs; ++epoch) {
        for (size_t row = 0; row < relation.size(); ++row) {
          const Value& v = relation.tuple(row).value(static_cast<int>(attr));
          if (v.is_null()) continue;
          std::string text = "^" + ToLower(v.ToString()) + "$";
          if (static_cast<int>(text.size()) < options_.ngram) continue;
          for (size_t i = 0;
               i + static_cast<size_t>(options_.ngram) <= text.size(); ++i) {
            uint64_t h = Hash64(
                std::string_view(text).substr(i, options_.ngram));
            lm[h % lm.size()] += 1.0f;
          }
          vocab_[key][v.ToString()]++;
        }
      }
      // Normalize to log-frequencies.
      double total = 1.0;
      for (float c : lm) total += c;
      for (float& c : lm) {
        c = static_cast<float>(std::log((c + 0.5) / total));
      }
      // Flagging threshold: the configured percentile of per-cell scores.
      std::vector<double> scores;
      for (size_t row = 0; row < relation.size(); ++row) {
        const Tuple& t = relation.tuple(row);
        scores.push_back(CellScore(static_cast<int>(rel), t,
                                   static_cast<int>(attr)));
      }
      std::sort(scores.begin(), scores.end());
      size_t cut = static_cast<size_t>(options_.flag_percentile *
                                       static_cast<double>(scores.size()));
      thresholds_[key] = scores.empty() ? -1e30 : scores[std::min(
          cut, scores.size() - 1)];
    }
  }
}

double T5sModel::TextLogProb(const std::vector<float>& lm,
                             const std::string& text) const {
  std::string padded = "^" + ToLower(text) + "$";
  if (static_cast<int>(padded.size()) < options_.ngram) return 0.0;
  double total = 0.0;
  size_t count = 0;
  for (size_t i = 0; i + static_cast<size_t>(options_.ngram) <= padded.size();
       ++i) {
    uint64_t h = Hash64(std::string_view(padded).substr(i, options_.ngram));
    total += lm[h % lm.size()];
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

double T5sModel::CellScore(int rel, const Tuple& t, int attr) const {
  auto it = column_lm_.find({rel, attr});
  if (it == column_lm_.end()) return 0.0;
  const Value& v = t.value(attr);
  if (v.is_null()) return -1e30;  // nulls always flag
  return TextLogProb(it->second, v.ToString());
}

detect::DetectionReport T5sModel::Detect(const Database& db) const {
  detect::DetectionReport report;
  for (size_t rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& relation = db.relation(static_cast<int>(rel));
    for (size_t attr = 0; attr < relation.schema().num_attributes();
         ++attr) {
      auto key = std::make_pair(static_cast<int>(rel),
                                static_cast<int>(attr));
      auto threshold = thresholds_.find(key);
      if (threshold == thresholds_.end()) continue;
      for (size_t row = 0; row < relation.size(); ++row) {
        const Tuple& t = relation.tuple(row);
        double score = CellScore(static_cast<int>(rel), t,
                                 static_cast<int>(attr));
        if (score <= threshold->second) {
          detect::ErrorRecord record;
          record.rule_id = "t5s";
          record.error_class = t.value(static_cast<int>(attr)).is_null()
                                   ? detect::ErrorClass::kMissing
                                   : detect::ErrorClass::kConflict;
          record.cells.push_back(
              {static_cast<int>(rel), t.tid, static_cast<int>(attr)});
          report.errors.push_back(std::move(record));
          ++report.violations;
        }
      }
    }
  }
  return report;
}

Value T5sModel::SuggestCorrection(const Database& db, int rel, const Tuple& t,
                                  int attr) const {
  auto it = vocab_.find({rel, attr});
  if (it == vocab_.end()) return Value::Null();
  const Value& current = t.value(attr);
  std::string text = current.is_null() ? "" : current.ToString();
  const std::string* best = nullptr;
  int best_count = 0;
  for (const auto& [value, count] : it->second) {
    // A defined cell is corrected towards a near-identical frequent value;
    // a null cell gets the most frequent value outright (the generative
    // guess — usually wrong, as the paper observes for numeric columns).
    if (!text.empty() &&
        EditDistance(ToLower(value), ToLower(text)) > 2) {
      continue;
    }
    if (count > best_count) {
      best_count = count;
      best = &value;
    }
  }
  if (best == nullptr) return Value::Null();
  ValueType type = db.relation(rel).schema().AttributeType(attr);
  auto parsed = Value::Parse(*best, type);
  return parsed.ok() ? *parsed : Value::String(*best);
}

RbCleaner::RbCleaner() : RbCleaner(Options()) {}
RbCleaner::RbCleaner(Options options)
    : options_(options), text_(options.feature_dim) {}

ml::FeatureVector RbCleaner::CellFeatures(const Database& db, int rel,
                                          const Tuple& t, int attr) const {
  ++features_generated_;
  const Value& v = t.value(attr);
  // Value-level features: hashed n-grams of the cell text.
  ml::FeatureVector features =
      text_.ExtractNormalized(v.is_null() ? "" : v.ToString());
  // Row-context feature: correlation of the cell with the rest of its row.
  std::vector<int> context;
  for (size_t a = 0; a < t.values.size(); ++a) {
    if (static_cast<int>(a) != attr && !t.values[a].is_null()) {
      context.push_back(static_cast<int>(a));
    }
  }
  double corr = v.is_null() ? 0.0
                            : corrector_.Strength(t.values, context, attr, v);
  features.push_back(corr);
  features.push_back(v.is_null() ? 1.0 : 0.0);
  // Column-frequency feature.
  const Relation& relation = db.relation(rel);
  size_t same = 0;
  for (size_t row = 0; row < relation.size(); ++row) {
    if (relation.tuple(row).value(attr) == v) ++same;
  }
  features.push_back(static_cast<double>(same) /
                     std::max<size_t>(1, relation.size()));
  return features;
}

void RbCleaner::Train(
    const Database& db,
    const std::vector<std::pair<int, int64_t>>& labeled_tuples,
    const std::vector<std::tuple<int, int64_t, int>>& labeled_errors) {
  corrector_ = ml::CooccurrenceModel();
  for (size_t rel = 0; rel < db.num_relations(); ++rel) {
    corrector_.TrainOnRelation(db.relation(static_cast<int>(rel)));
  }

  std::set<std::tuple<int, int64_t, int>> dirty(labeled_errors.begin(),
                                                labeled_errors.end());
  // Per-attribute training sets.
  std::map<std::pair<int, int>, std::vector<ml::FeatureVector>> features;
  std::map<std::pair<int, int>, std::vector<double>> labels;
  for (const auto& [rel, tid] : labeled_tuples) {
    const Relation& relation = db.relation(rel);
    int row = relation.RowOfTid(tid);
    if (row < 0) continue;
    const Tuple& t = relation.tuple(static_cast<size_t>(row));
    for (size_t attr = 0; attr < t.values.size(); ++attr) {
      auto key = std::make_pair(rel, static_cast<int>(attr));
      features[key].push_back(
          CellFeatures(db, rel, t, static_cast<int>(attr)));
      labels[key].push_back(
          dirty.count({rel, tid, static_cast<int>(attr)}) ? 1.0 : 0.0);
    }
  }
  for (auto& [key, x] : features) {
    ml::GradientBoostedTrees::Options gbt_options;
    gbt_options.num_trees = options_.trees;
    ml::GradientBoostedTrees model(gbt_options);
    model.Train(x, labels[key]);
    classifiers_[key] = std::move(model);
  }
}

detect::DetectionReport RbCleaner::Detect(const Database& db) const {
  detect::DetectionReport report;
  for (size_t rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& relation = db.relation(static_cast<int>(rel));
    for (size_t attr = 0; attr < relation.schema().num_attributes();
         ++attr) {
      auto it = classifiers_.find(
          {static_cast<int>(rel), static_cast<int>(attr)});
      if (it == classifiers_.end() || !it->second.trained()) continue;
      for (size_t row = 0; row < relation.size(); ++row) {
        const Tuple& t = relation.tuple(row);
        double score = it->second.Predict(CellFeatures(
            db, static_cast<int>(rel), t, static_cast<int>(attr)));
        if (score >= 0.5) {
          detect::ErrorRecord record;
          record.rule_id = "rb";
          record.error_class =
              t.value(static_cast<int>(attr)).is_null()
                  ? detect::ErrorClass::kMissing
                  : detect::ErrorClass::kConflict;
          record.cells.push_back(
              {static_cast<int>(rel), t.tid, static_cast<int>(attr)});
          report.errors.push_back(std::move(record));
          ++report.violations;
        }
      }
    }
  }
  return report;
}

Value RbCleaner::SuggestCorrection(const Database& db, int rel,
                                   const Tuple& t, int attr) const {
  (void)db;
  (void)rel;
  std::vector<int> context;
  for (size_t a = 0; a < t.values.size(); ++a) {
    if (static_cast<int>(a) != attr && !t.values[a].is_null()) {
      context.push_back(static_cast<int>(a));
    }
  }
  auto predicted = corrector_.PredictValue(t.values, context, attr);
  return predicted.ok() ? *predicted : Value::Null();
}

std::string NaiveSqlEngine::ToSql(const Ree& rule) const {
  const DatabaseSchema& schema = ctx_.db->schema();
  std::string sql = "SELECT ";
  for (size_t var = 0; var < rule.tuple_vars.size(); ++var) {
    if (var > 0) sql += ", ";
    sql += "t" + std::to_string(var) + ".*";
  }
  sql += " FROM ";
  for (size_t var = 0; var < rule.tuple_vars.size(); ++var) {
    if (var > 0) sql += ", ";
    sql += schema.relation(rule.tuple_vars[var]).name() + " t" +
           std::to_string(var);
  }
  sql += " WHERE ";
  std::vector<std::string> conjuncts;
  auto attr_ref = [&](int var, int attr) {
    if (attr == rules::kEidAttr) {
      return "t" + std::to_string(var) + ".eid";
    }
    return "t" + std::to_string(var) + "." +
           schema.relation(rule.tuple_vars[static_cast<size_t>(var)])
               .AttributeName(attr);
  };
  auto render = [&](const Predicate& p, bool negate) {
    std::string out;
    switch (p.kind) {
      case PredicateKind::kConstant:
        out = attr_ref(p.var, p.attr) + " " + rules::CmpOpName(p.op) + " '" +
              p.constant.ToString() + "'";
        break;
      case PredicateKind::kAttrCompare:
        out = attr_ref(p.var, p.attr) + " " + rules::CmpOpName(p.op) + " " +
              attr_ref(p.var2, p.attr2);
        break;
      case PredicateKind::kMlPair:
        // ML predicates become UDF calls (paper §6 Exp-2).
        out = "udf_" + p.model + "(t" + std::to_string(p.var) + ", t" +
              std::to_string(p.var2) + ")";
        break;
      case PredicateKind::kIsNull:
        out = attr_ref(p.var, p.attr) + " IS NULL";
        break;
      default:
        out = "udf_predicate(t" + std::to_string(std::max(p.var, 0)) + ")";
    }
    return negate ? "NOT (" + out + ")" : out;
  };
  for (const Predicate& p : rule.precondition) {
    conjuncts.push_back(render(p, false));
  }
  conjuncts.push_back(render(rule.consequence, true));
  sql += Join(conjuncts, " AND ");
  return sql;
}

detect::DetectionReport NaiveSqlEngine::Detect(
    const std::vector<Ree>& rules) const {
  // Generic engine: hash joins on equality predicates are available (any
  // SQL engine does this), but ML predicates run exhaustively — no
  // blocking — and every query is planned independently.
  detect::DetectorOptions options;
  options.use_ml_blocking = false;
  detect::ErrorDetector detector(ctx_, options);
  return detector.Detect(rules);
}

int NaiveSqlEngine::IterativeClean(const std::vector<Ree>& rules,
                                   int max_rounds,
                                   size_t* violations_fixed) {
  size_t fixed = 0;
  int rounds = 0;
  size_t previous = SIZE_MAX;
  for (int round = 0; round < max_rounds; ++round) {
    ++rounds;
    detect::DetectionReport report = Detect(rules);
    if (report.violations == 0 || report.violations >= previous) break;
    // "Fix" one batch: a real deployment would UPDATE; the simulation
    // counts the work of re-running every query per round.
    fixed += previous == SIZE_MAX ? report.violations
                                  : previous - report.violations;
    previous = report.violations;
  }
  if (violations_fixed != nullptr) *violations_fixed = fixed;
  return rounds;
}

}  // namespace rock::baselines
