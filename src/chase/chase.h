#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/chase/fix_store.h"
#include "src/kg/graph.h"
#include "src/ml/library.h"
#include "src/par/executor.h"
#include "src/rules/eval.h"
#include "src/rules/ree.h"
#include "src/storage/relation.h"

namespace rock::chase {

/// User-queue callback for ER/CR conflicts (paper §4.2 (1): "Rock
/// presents the conflicts to the users for correction, together with the
/// rules and ground truth that identify the conflicts"). Given the
/// conflict and the two candidate values, returns the value to keep, or
/// nullopt to leave the conflict unresolved.
using UserConflictResolver = std::function<std::optional<Value>(
    const ConflictRecord& conflict, const Value& a, const Value& b)>;

struct ChaseOptions {
  /// Certain-fix mode (paper §4.1 condition (1)): a rule application is
  /// admitted only when every cell its precondition reads is validated
  /// (ground truth or previously deduced). When false, the precondition is
  /// evaluated over the repaired view (validated values override raw data)
  /// — the "deep cleaning" configuration used when little ground truth is
  /// available.
  bool certain_fixes_only = false;
  /// Fixpoint guard.
  int max_rounds = 64;
  /// Resolve MI value conflicts by M_c argmax (paper §4.2 (3)).
  bool resolve_mi_by_mc = true;
  /// Name of the correlation model used for MI conflict resolution.
  std::string mc_model = "Mc";
  /// Name of the ranking model used for TD conflict resolution (§4.2 (2)).
  std::string mrank_model = "Mrank";
  /// Optional user queue for ER/CR value conflicts; when unset, conflicts
  /// are recorded and left for offline review.
  UserConflictResolver user_resolver;
  /// Deterministic fault schedule injected into RunParallel's worker pool
  /// (not owned; nullptr disables injection). Units lost to exhausted
  /// attempt budgets are replayed serially against the round checkpoint,
  /// so the chase output is identical to the fault-free run.
  const par::FaultPlan* fault_plan = nullptr;
  /// Retry discipline for the pool when a fault plan is set.
  par::RetryPolicy retry;
};

/// Per-cell difference between the raw database and the repaired view.
struct CellFix {
  int rel = -1;
  int64_t tid = -1;
  int attr = -1;
  Value old_value;
  Value new_value;
};

struct ChaseResult {
  /// Rounds until fixpoint (a round applies every activated rule once).
  int rounds = 0;
  /// Fixes that extended U (merges + value validations + temporal pairs),
  /// excluding ground truth.
  size_t fixes_applied = 0;
  /// Rule applications admitted (including re-derivations of known fixes).
  size_t applications = 0;
  bool converged = false;
  std::vector<ConflictRecord> conflicts;
  /// Units the pool abandoned (attempt budget exhausted under an injected
  /// fault plan) and RunParallel replayed serially from the round
  /// checkpoint. Zero on fault-free runs.
  size_t replayed_units = 0;
};

/// The chase engine (paper §4): deduces fixes by chasing D with (Σ, Γ),
/// with lazy activation — after the first full round, a rule is re-examined
/// only against tuples whose entity acquired new fixes — and the §4.2
/// conflict-resolution strategies. The chase is Church-Rosser: U only grows
/// (value validations, EID merges, temporal pairs), conflict resolutions
/// are deterministic functions of the conflicting fixes, and canonical EIDs
/// are order-independent minima, so all application orders converge.
class ChaseEngine {
 public:
  ChaseEngine(const Database* db, const kg::KnowledgeGraph* graph,
              const ml::MlLibrary* models);
  ChaseEngine(const Database* db, const kg::KnowledgeGraph* graph,
              const ml::MlLibrary* models, ChaseOptions options);

  FixStore& fix_store() { return fixes_; }
  const FixStore& fix_store() const { return fixes_; }

  /// Batch mode: chases the whole database to fixpoint.
  ChaseResult Run(const std::vector<rules::Ree>& rules);

  /// Incremental mode: only valuations touching `dirty` tuples (e.g. a ΔD
  /// of freshly inserted tids) are activated initially; deduced fixes
  /// propagate as in batch mode.
  ChaseResult RunIncremental(const std::vector<rules::Ree>& rules,
                             const std::vector<std::pair<int, int64_t>>& dirty);

  /// Batch mode with HyperCube data-partitioned parallelism for the first
  /// (dominant) round: rule×block work units are executed under the worker
  /// pool, producing the schedule accounting used by the scalability
  /// benches (Fig 4(l)); later rounds are small and run serially.
  ///
  /// Workers only *evaluate* preconditions — each unit accumulates its
  /// satisfying valuations into a per-unit buffer, the fix store stays
  /// read-only, and the buffers are merged at the pool's barrier in unit
  /// order. Consequences are then applied serially (re-verifying each
  /// precondition against the growing overlay), so the chase reaches the
  /// same fixpoint as Run() for every worker count and both execution
  /// modes; valuations a round-0 fix newly enables are picked up by the
  /// serial propagation rounds through the dirty set.
  ChaseResult RunParallel(const std::vector<rules::Ree>& rules,
                          int num_workers, int block_rows,
                          par::ScheduleReport* schedule,
                          par::ExecutionMode mode =
                              par::ExecutionMode::kThreads);

  /// Applies U to a copy of the database: validated values overwrite cells,
  /// EIDs become canonical.
  Database MaterializeRepairs() const;

  /// Cells whose repaired value differs from the raw data.
  std::vector<CellFix> CellFixes() const;

  /// Tuple pairs identified as the same entity (canonical-EID groups of
  /// size > 1), as (rel, tid) lists per entity.
  std::vector<std::vector<std::pair<int, int64_t>>> EntityGroups() const;

  /// Why-provenance of a repaired cell / an identified entity pair: the
  /// depth-bounded proof tree over the witnesses captured during the chase
  /// (empty when the cell was never validated or capture is compiled out).
  obs::ProofTree Explain(int rel, int64_t tid, int attr,
                         int max_depth = 32) const {
    return fixes_.ExplainCell(rel, tid, attr, max_depth);
  }
  obs::ProofTree ExplainMerge(int64_t eid_a, int64_t eid_b,
                              int max_depth = 32) const {
    return fixes_.ExplainMerge(eid_a, eid_b, max_depth);
  }

  /// Whole-run provenance aggregate over the fix store's DAG.
  obs::ProvenanceSummary ProvenanceSummary() const {
    return fixes_.provenance().Summarize();
  }

 private:
  const Database* db_;
  const kg::KnowledgeGraph* graph_;
  const ml::MlLibrary* models_;
  ChaseOptions options_;
  FixStore fixes_;
  std::vector<ConflictRecord> conflicts_;

  rules::EvalContext Context() const;

  /// Runs the chase loop from an initial dirty set (empty = full scan).
  ChaseResult Loop(const std::vector<rules::Ree>& rules,
                   std::vector<std::pair<int, int64_t>> dirty,
                   bool initial_full_scan);

  /// Applies one admitted rule application; appends to `newly_dirty` the
  /// tuples whose repaired view changed. Returns number of new fixes.
  size_t ApplyConsequence(const rules::Ree& rule, const rules::Valuation& v,
                          const rules::Evaluator& eval,
                          std::vector<std::pair<int, int64_t>>* newly_dirty);

  /// Certain-fix admission: every cell the precondition reads is validated.
  bool PremisesValidated(const rules::Ree& rule,
                         const rules::Valuation& v) const;

  void MarkEntityDirty(int rel, int64_t tid,
                       std::vector<std::pair<int, int64_t>>* out) const;

  /// Resolves an MI value conflict by M_c argmax; returns the value to keep.
  /// `prov` is the losing/candidate derivation's witness, recorded on the
  /// ConflictRecord alongside the existing derivation's node.
  Value ResolveMiConflict(int rel, int64_t tid, int attr,
                          const Value& existing, const Value& candidate,
                          const std::string& rule_id,
                          const obs::ProvenanceRef& prov);
};

}  // namespace rock::chase

