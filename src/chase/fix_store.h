#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/json.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/obs/provenance.h"
#include "src/rules/eval.h"
#include "src/storage/relation.h"

namespace rock::chase {

/// Union-find over entity ids. EID classes only grow (entities are
/// identified, never split), matching the chase's inflationary semantics.
///
/// Thread contract: Find/Members are pure reads (path compression happens
/// eagerly inside Union, never in Find), so any number of threads may Find
/// concurrently as long as no Union runs — the invariant the parallel
/// chase's read-only evaluation phase relies on.
class UnionFind {
 public:
  /// Canonical representative of `eid` (the smallest eid in its class, so
  /// results are independent of merge order — part of Church-Rosser).
  int64_t Find(int64_t eid) const;

  /// Merges the classes of `a` and `b`; returns the new canonical id.
  int64_t Union(int64_t a, int64_t b);

  /// All members of `eid`'s class (including eids never explicitly added).
  std::vector<int64_t> Members(int64_t eid) const;

  size_t num_merges() const { return num_merges_; }

 private:
  std::unordered_map<int64_t, int64_t> parent_;
  std::unordered_map<int64_t, std::vector<int64_t>> members_;
  size_t num_merges_ = 0;
};

/// One temporal-order store [A]⪯ for a (relation, attribute): a DAG over
/// tids whose edges are validated ⪯/≺ pairs. Conflicts (a cycle through a
/// strict edge) are rejected at insertion so the store always stays valid.
class TemporalOrderStore {
 public:
  /// Adds tid1 ⪯ tid2 (strict=false) or tid1 ≺ tid2 (strict=true).
  /// Returns kConflict when the pair contradicts the stored order; OK and
  /// `*added=false` when the pair was already known.
  Status Add(int64_t tid1, int64_t tid2, bool strict, bool* added);

  /// Ternary query: true/false when implied by the stored order (via
  /// reachability), nullopt when unknown.
  std::optional<bool> Holds(int64_t tid1, int64_t tid2, bool strict) const;

  size_t num_pairs() const { return num_pairs_; }

 private:
  struct Edge {
    int64_t to;
    bool strict;
  };
  std::unordered_map<int64_t, std::vector<Edge>> out_;

  /// Reachability tid1 -> tid2; sets *via_strict when some path uses a
  /// strict edge.
  bool Reaches(int64_t from, int64_t to, bool* via_strict) const;
  size_t num_pairs_ = 0;
};

/// A single deduced fix, kept for the certain-fix audit trail (every fix is
/// a logical consequence of one rule application over validated premises).
struct FixRecord {
  enum class Kind { kMergeEid, kSetValue, kTemporalOrder };
  Kind kind;
  std::string rule_id;
  // kMergeEid
  int64_t eid_a = -1, eid_b = -1;
  // kSetValue
  int rel = -1;
  int attr = -1;
  int64_t eid = -1;
  Value value;
  // kTemporalOrder
  int64_t tid1 = -1, tid2 = -1;
  bool strict = false;
  /// Provenance node recording this fix's witness (-1 when capture is off
  /// or the fix was installed without a rule application behind it).
  int64_t prov_id = -1;

  std::string ToString() const;

  /// Round-trippable JSON object (see FromJson); reused by the provenance
  /// exporter's proof-tree rendering.
  std::string ToJson() const;
  static Result<FixRecord> FromJson(const json::Value& v);
};

/// A conflict surfaced during chasing, together with how it was resolved
/// (paper §4.2 "Resolving conflicts").
struct ConflictRecord {
  enum class Kind { kValue, kEid, kTemporal };
  Kind kind;
  std::string rule_id;
  std::string description;
  /// "kept_existing", "kept_new", "confidence", "mc_argmax", "user_queue".
  std::string resolution;
  /// Provenance of the two competing derivations: the fix that installed
  /// the existing state, and the conflict-candidate node capturing the
  /// losing rule application's witness (-1 when unknown / capture off).
  int64_t prov_existing = -1;
  int64_t prov_candidate = -1;

  std::string ToJson() const;
  static Result<ConflictRecord> FromJson(const json::Value& v);
};

/// The fix collection U = (E_=, E_⪯) plus ground truth Γ (paper §4.1):
///  - an EID union-find ([EID]_= classes),
///  - validated attribute values ([EID.A]_= singletons),
///  - validated EID-distinctness constraints (consequences t.EID != s.EID),
///  - per-(relation, attribute) temporal orders ([A]_⪯).
/// Deviation from the paper, documented in DESIGN.md: validated values are
/// scoped to TUPLES rather than entities. The paper's temporal relations
/// allow one entity to have several versions in the same relation with
/// different (all correct at their time) attribute values, so a single
/// value per [EID.A] would conflate versions; cross-tuple propagation
/// instead happens through explicit REE++s (e.g. with t0.eid = t1.eid and
/// temporal predicates in the precondition).
/// The store also implements the evaluator's CellOverlay/TemporalOracle so
/// rules are evaluated over the repaired view, and tracks which cells are
/// *validated* (in Γ or deduced) for certain-fix mode.
///
/// Thread contract (compile-time checked under Clang, see
/// src/common/thread_annotations.h): the store is phase-confined, not
/// internally locked. Mutators carry ROCK_REQUIRES(apply_role_) — callers
/// must hold the store's apply role (common::RoleGuard role(
/// store.apply_role())), which asserts "this is the chase's single serial
/// apply thread". The read side (GetCell/GetEid/Holds/Find...) is lock-free
/// and safe for any number of concurrent readers while no role holder
/// mutates — the invariant RunParallel's read-only evaluation phase relies
/// on. The role costs nothing at runtime; it exists so every new mutation
/// path must visibly acknowledge the phase discipline or fail the
/// -Werror=thread-safety build.
class FixStore : public rules::CellOverlay, public rules::TemporalOracle {
 public:
  explicit FixStore(const Database* db);

  /// A cheap structural snapshot of the store's size vector. The store is
  /// inflationary (fixes only accumulate, merges only grow classes), so
  /// "no counter moved" is equivalent to "no state changed" — which makes
  /// the checkpoint a sufficient barrier invariant for the parallel
  /// chase's recovery protocol: RunParallel checkpoints before its
  /// read-only evaluation phase and verifies at the apply barrier that the
  /// store is bit-for-bit where the checkpoint left it, so replaying lost
  /// or unrecovered units can never double-apply a fix.
  struct Checkpoint {
    size_t fixes = 0;
    size_t value_cells = 0;
    size_t merges = 0;
    size_t distinct = 0;
    size_t ground_truth_cells = 0;
    int64_t provenance_nodes = 0;

    bool operator==(const Checkpoint&) const = default;
  };
  Checkpoint TakeCheckpoint() const;

  /// The apply-phase role; pass to common::RoleGuard before mutating.
  const common::ThreadRole& apply_role() const
      ROCK_RETURN_CAPABILITY(apply_role_) {
    return apply_role_;
  }

  /// Registers a tuple inserted after construction (incremental mode).
  void RegisterTuple(int rel, int64_t tid) ROCK_REQUIRES(apply_role_);

  /// All tuples whose (possibly merged) entity is `eid`'s entity.
  std::vector<std::pair<int, int64_t>> TuplesOfEntity(int64_t eid) const;

  // ---- Ground truth Γ ----

  /// Marks every cell of (rel, tid) as validated with its current value.
  Status AddGroundTruthTuple(int rel, int64_t tid) ROCK_REQUIRES(apply_role_);

  /// Marks one cell as validated with the given (trusted) value.
  Status AddGroundTruthValue(int rel, int64_t tid, int attr, Value value)
      ROCK_REQUIRES(apply_role_);

  /// Seeds [A]_⪯ with an initial order (e.g. from timestamps).
  Status AddGroundTruthOrder(int rel, int attr, int64_t tid1, int64_t tid2,
                             bool strict) ROCK_REQUIRES(apply_role_);

  // ---- Chase-deduced fixes ----

  /// t.EID = s.EID. Returns kConflict when a distinctness constraint
  /// forbids the merge. `*changed` reports whether the store grew.
  /// `prov` carries the witness of the deducing rule application; the
  /// default (no witness) records a leaf provenance node.
  Status MergeEids(int64_t a, int64_t b, const std::string& rule_id,
                   bool* changed, const obs::ProvenanceRef& prov = {})
      ROCK_REQUIRES(apply_role_);

  /// t.EID != s.EID.
  Status AddEidDistinct(int64_t a, int64_t b, const std::string& rule_id,
                        bool* changed, const obs::ProvenanceRef& prov = {})
      ROCK_REQUIRES(apply_role_);

  /// Validates value `v` for attribute `attr` of tuple `tid`.
  /// kConflict when a different value is already validated.
  Status SetValue(int rel, int64_t tid, int attr, Value v,
                  const std::string& rule_id, bool* changed,
                  const obs::ProvenanceRef& prov = {})
      ROCK_REQUIRES(apply_role_);

  /// Overwrites a validated value — used only by deterministic conflict
  /// resolution (M_c argmax for MI, §4.2), never by plain chase steps.
  Status ReplaceValue(int rel, int64_t tid, int attr, Value v,
                      const std::string& rule_id,
                      const obs::ProvenanceRef& prov = {})
      ROCK_REQUIRES(apply_role_);

  /// Validated value of the cell, if any.
  std::optional<Value> ValidatedValue(int rel, int64_t tid, int attr) const;

  /// True when the cell's value is validated (ground truth or deduced).
  bool IsValidated(int rel, int64_t tid, int attr) const;

  /// Adds a temporal pair; kConflict on contradiction.
  Status AddTemporal(int rel, int attr, int64_t tid1, int64_t tid2,
                     bool strict, const std::string& rule_id, bool* changed,
                     const obs::ProvenanceRef& prov = {})
      ROCK_REQUIRES(apply_role_);

  // ---- CellOverlay / TemporalOracle (the repaired view) ----
  std::optional<Value> GetCell(int rel, int64_t tid,
                               int attr) const override;
  std::optional<int64_t> GetEid(int rel, int64_t tid) const override;
  std::vector<int64_t> PatchedTids(int rel, int attr) const override;
  std::vector<int64_t> PatchedTidsEq(int rel, int attr,
                                     uint64_t value_hash) const override;
  std::optional<bool> Holds(int rel, int attr, int64_t tid1, int64_t tid2,
                            bool strict) const override;

  // ---- Introspection ----
  const UnionFind& eids() const { return eids_; }
  const std::vector<FixRecord>& fixes() const { return fixes_; }
  std::vector<FixRecord>& mutable_fixes() ROCK_REQUIRES(apply_role_) {
    return fixes_;
  }
  size_t num_value_fixes() const { return values_.size(); }
  size_t num_ground_truth_cells() const { return ground_truth_cells_; }

  /// Canonical eid of a tuple (through the union-find).
  int64_t CanonicalEid(int rel, int64_t tid) const;

  // ---- Provenance ----
  const obs::ProvenanceGraph& provenance() const { return prov_; }
  obs::ProvenanceGraph& mutable_provenance() ROCK_REQUIRES(apply_role_) {
    return prov_;
  }

  /// Provenance node that validated the cell / installed the temporal pair
  /// (unordered) / the distinctness constraint; -1 when unknown.
  int64_t ProvOfCell(int rel, int64_t tid, int attr) const;
  int64_t ProvOfTemporal(int rel, int attr, int64_t tid1, int64_t tid2) const;
  int64_t ProvOfDistinct(int64_t a, int64_t b) const;
  /// Most recent merge deduction on the proof-forest path between `a` and
  /// `b`; -1 when their classes were never connected by recorded merges.
  int64_t ProvOfMerge(int64_t a, int64_t b) const;

  /// Records a derivation that LOST a conflict resolution (its witness is
  /// kept so ConflictRecord links both sides). Returns the node id, -1
  /// when capture is compiled out.
  int64_t AddConflictCandidate(const std::string& rule_id, std::string target,
                               const obs::ProvenanceRef& prov)
      ROCK_REQUIRES(apply_role_);

  /// Depth-bounded proof tree for a validated cell / an eid merge.
  obs::ProofTree ExplainCell(int rel, int64_t tid, int attr,
                             int max_depth = 32) const;
  obs::ProofTree ExplainMerge(int64_t eid_a, int64_t eid_b,
                              int max_depth = 32) const;

 private:
  const Database* db_;
  /// Zero-cost capability for the serial apply phase (see class comment).
  common::ThreadRole apply_role_;
  UnionFind eids_;
  // (rel, attr, tid) -> validated value.
  std::map<std::tuple<int, int, int64_t>, Value> values_;
  // (rel, attr, value hash) -> tids validated to that value. ReplaceValue
  // erases the superseded bucket entry so the index never serves a tid
  // whose current validated value hashes differently.
  std::map<std::tuple<int, int, uint64_t>, std::vector<int64_t>>
      values_by_hash_;
  // Distinctness constraints between canonical eids (stored unordered).
  std::set<std::pair<int64_t, int64_t>> distinct_;
  // (rel, attr) -> temporal order DAG.
  std::map<std::pair<int, int>, TemporalOrderStore> temporal_;
  std::vector<FixRecord> fixes_;
  size_t ground_truth_cells_ = 0;
  // Raw eid -> tuples carrying it (for entity-level dirty propagation and
  // PatchedTids).
  std::map<int64_t, std::vector<std::pair<int, int64_t>>> eid_index_;

  // ---- Provenance capture (all empty when compiled out) ----
  obs::ProvenanceGraph prov_;
  // (rel, attr, tid) -> node that validated the cell.
  std::map<std::tuple<int, int, int64_t>, int64_t> prov_by_cell_;
  // (rel, attr, min tid, max tid) -> node that installed the pair.
  std::map<std::tuple<int, int, int64_t, int64_t>, int64_t> prov_by_temporal_;
  // Canonical (lo, hi) eid pair -> node of the distinctness deduction
  // (re-canonicalized alongside distinct_ on merges).
  std::map<std::pair<int64_t, int64_t>, int64_t> prov_by_distinct_;

  const Tuple* FindTuple(int rel, int64_t tid) const;

  /// Copies the witness, upgrades premise sources against the validated
  /// state (raw -> ground-truth / prior-fix with upstream edges), and
  /// appends the node. Returns -1 when capture is compiled out.
  int64_t AddProvNode(obs::ProvKind kind, const std::string& rule_id,
                      std::string target, const obs::ProvenanceRef& prov)
      ROCK_REQUIRES(apply_role_);
};

}  // namespace rock::chase

