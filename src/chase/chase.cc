#include "src/chase/chase.h"

#include <algorithm>
#include <set>

#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/ml/correlation.h"
#include "src/ml/ranking.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/par/executor.h"

namespace rock::chase {

using rules::Predicate;
using rules::PredicateKind;
using rules::Ree;
using rules::Valuation;

namespace {

struct ChaseMetrics {
  obs::Counter* applications;
  obs::Counter* conflicts;
  obs::Counter* rounds;
  /// Fixes broken down by the applying rule's task — the error classes the
  /// paper reports (ER = duplicates, CR = conflicts, MI = missing values,
  /// TD = stale values).
  obs::Counter* fixes_er;
  obs::Counter* fixes_cr;
  obs::Counter* fixes_mi;
  obs::Counter* fixes_td;
  obs::Counter* fixes_general;
  /// Round checkpoints taken / units replayed from one after the pool gave
  /// up on them (fault-injection recovery, DESIGN.md).
  obs::Counter* checkpoints;
  obs::Counter* checkpoint_restores;
  /// 1-based round in flight, 0 when no chase is running — gives the
  /// stall watchdog (and live scrapes) a progress signal for long chases.
  obs::Gauge* current_round;

  static const ChaseMetrics& Get() {
    static ChaseMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      ChaseMetrics out;
      out.applications = reg.GetCounter("rock_chase_applications_total");
      out.conflicts = reg.GetCounter("rock_chase_conflicts_total");
      out.rounds = reg.GetCounter("rock_chase_rounds_total");
      out.fixes_er = reg.GetCounter("rock_chase_fixes_er_total");
      out.fixes_cr = reg.GetCounter("rock_chase_fixes_cr_total");
      out.fixes_mi = reg.GetCounter("rock_chase_fixes_mi_total");
      out.fixes_td = reg.GetCounter("rock_chase_fixes_td_total");
      out.fixes_general = reg.GetCounter("rock_chase_fixes_general_total");
      out.checkpoints = reg.GetCounter("rock_chase_checkpoints_total");
      out.checkpoint_restores =
          reg.GetCounter("rock_chase_checkpoint_restores_total");
      out.current_round = reg.GetGauge("rock_chase_current_round");
      reg.SetHelp("rock_chase_current_round",
                  "1-based chase round in flight; 0 when idle");
      return out;
    }();
    return m;
  }

  obs::Counter* FixCounter(rules::RuleTask task) const {
    switch (task) {
      case rules::RuleTask::kEr:
        return fixes_er;
      case rules::RuleTask::kCr:
        return fixes_cr;
      case rules::RuleTask::kMi:
        return fixes_mi;
      case rules::RuleTask::kTd:
        return fixes_td;
      case rules::RuleTask::kGeneral:
        return fixes_general;
    }
    return fixes_general;
  }
};

}  // namespace

ChaseEngine::ChaseEngine(const Database* db, const kg::KnowledgeGraph* graph,
                         const ml::MlLibrary* models)
    : ChaseEngine(db, graph, models, ChaseOptions()) {}

ChaseEngine::ChaseEngine(const Database* db, const kg::KnowledgeGraph* graph,
                         const ml::MlLibrary* models, ChaseOptions options)
    : db_(db), graph_(graph), models_(models), options_(options),
      fixes_(db) {}

rules::EvalContext ChaseEngine::Context() const {
  rules::EvalContext ctx;
  ctx.db = db_;
  ctx.graph = graph_;
  ctx.models = models_;
  ctx.overlay = &fixes_;
  ctx.temporal = &fixes_;
  return ctx;
}

ChaseResult ChaseEngine::Run(const std::vector<Ree>& rules) {
  ROCK_OBS_SPAN("chase.run");
  return Loop(rules, {}, /*initial_full_scan=*/true);
}

ChaseResult ChaseEngine::RunIncremental(
    const std::vector<Ree>& rules,
    const std::vector<std::pair<int, int64_t>>& dirty) {
  // Register any tuples inserted after construction. The chase has not
  // started, so this caller is trivially the (sole) apply thread.
  common::RoleGuard apply(fixes_.apply_role());
  for (const auto& [rel, tid] : dirty) {
    fixes_.RegisterTuple(rel, tid);
  }
  return Loop(rules, dirty, /*initial_full_scan=*/false);
}

void ChaseEngine::MarkEntityDirty(
    int rel, int64_t tid, std::vector<std::pair<int, int64_t>>* out) const {
  const Relation& relation = db_->relation(rel);
  int row = relation.RowOfTid(tid);
  if (row < 0) return;
  int64_t eid = relation.tuple(static_cast<size_t>(row)).eid;
  for (const auto& member : fixes_.TuplesOfEntity(eid)) {
    out->push_back(member);
  }
}

bool ChaseEngine::PremisesValidated(const Ree& rule,
                                    const Valuation& v) const {
  for (const Predicate& p : rule.precondition) {
    auto cell_validated = [&](int var, int attr) {
      if (attr == rules::kEidAttr) return true;  // EIDs are always known
      int rel = rule.tuple_vars[static_cast<size_t>(var)];
      const Tuple& t = db_->relation(rel).tuple(
          static_cast<size_t>(v.rows[static_cast<size_t>(var)]));
      return fixes_.IsValidated(rel, t.tid, attr);
    };
    switch (p.kind) {
      case PredicateKind::kConstant:
      case PredicateKind::kIsNull:
        if (p.kind == PredicateKind::kConstant &&
            !cell_validated(p.var, p.attr)) {
          return false;
        }
        break;
      case PredicateKind::kAttrCompare:
        if (!cell_validated(p.var, p.attr)) return false;
        if (!cell_validated(p.var2, p.attr2)) return false;
        break;
      case PredicateKind::kMlPair:
        for (int a : p.attrs_a) {
          if (!cell_validated(p.var, a)) return false;
        }
        for (int b : p.attrs_b) {
          if (!cell_validated(p.var2, b)) return false;
        }
        break;
      case PredicateKind::kCorrelation:
      case PredicateKind::kPredictValue:
        for (int a : p.attrs_a) {
          if (!cell_validated(p.var, a)) return false;
        }
        break;
      case PredicateKind::kTemporal:
      case PredicateKind::kHer:
      case PredicateKind::kPathMatch:
      case PredicateKind::kValExtract:
        break;  // validated through the oracle / graph themselves
    }
  }
  return true;
}

Value ChaseEngine::ResolveMiConflict(int rel, int64_t tid, int attr,
                                     const Value& existing,
                                     const Value& candidate,
                                     const std::string& rule_id,
                                     const obs::ProvenanceRef& prov) {
  // Only reached from ApplyConsequence, which already runs on the serial
  // apply thread (the role is recursion-safe: acquiring it is a no-op).
  common::RoleGuard apply(fixes_.apply_role());
  const ml::CorrelationModel* mc =
      models_ == nullptr ? nullptr
                         : models_->FindCorrelation(options_.mc_model);
  Value keep = existing;
  std::string resolution = "kept_existing";
  if (options_.resolve_mi_by_mc && mc != nullptr) {
    const Relation& relation = db_->relation(rel);
    int row = relation.RowOfTid(tid);
    if (row >= 0) {
      const Tuple& t = relation.tuple(static_cast<size_t>(row));
      // Validated attributes of the tuple form t[Ā].
      std::vector<int> validated;
      std::vector<Value> values = t.values;
      for (size_t a = 0; a < values.size(); ++a) {
        if (static_cast<int>(a) == attr) continue;
        auto fixed = fixes_.ValidatedValue(rel, tid, static_cast<int>(a));
        if (fixed.has_value()) {
          values[a] = *fixed;
          validated.push_back(static_cast<int>(a));
        }
      }
      if (!validated.empty()) {
        double s_existing = mc->Strength(values, validated, attr, existing);
        double s_candidate = mc->Strength(values, validated, attr, candidate);
        if (s_candidate > s_existing) {
          keep = candidate;
          resolution = "mc_argmax:candidate";
        } else {
          resolution = "mc_argmax:existing";
        }
      }
    }
  }
  ConflictRecord record;
  record.kind = ConflictRecord::Kind::kValue;
  record.rule_id = rule_id;
  record.description = "MI candidates " + existing.ToString() + " vs " +
                       candidate.ToString();
  record.resolution = resolution;
  record.prov_existing = fixes_.ProvOfCell(rel, tid, attr);
  record.prov_candidate = fixes_.AddConflictCandidate(
      rule_id, "MI candidate " + candidate.ToString() + " for rel " +
                   std::to_string(rel) + " tid " + std::to_string(tid) +
                   " attr " + std::to_string(attr),
      prov);
  conflicts_.push_back(std::move(record));
  return keep;
}

size_t ChaseEngine::ApplyConsequence(
    const Ree& rule, const Valuation& v, const rules::Evaluator& eval,
    std::vector<std::pair<int, int64_t>>* newly_dirty) {
  // ApplyConsequence is the chase's single mutation funnel; both Loop and
  // RunParallel invoke it strictly after the parallel evaluation barrier,
  // so it always executes on the serial apply thread (see FixStore's
  // thread contract).
  common::RoleGuard apply(fixes_.apply_role());
  const Predicate& p = rule.consequence;
  size_t new_fixes = 0;
  auto rel_of = [&](int var) {
    return rule.tuple_vars[static_cast<size_t>(var)];
  };
  auto tid_of = [&](int var) { return eval.GetTuple(rule, v, var).tid; };

  // Witness capture: record the satisfying valuation's bindings, premise
  // cells and ML scores BEFORE mutating the store (the premises must
  // reflect the state the deduction actually read). Compiled out with
  // ROCK_OBS_PROVENANCE=OFF.
  obs::Witness witness;
  obs::ProvenanceRef prov;
  if constexpr (obs::kProvenanceEnabled) {
    witness = eval.CaptureWitness(rule, v);
    prov.witness = &witness;
  }

  switch (p.kind) {
    case PredicateKind::kAttrCompare: {
      if (p.attr == rules::kEidAttr) {
        int64_t e1 = eval.GetTuple(rule, v, p.var).eid;
        int64_t e2 = eval.GetTuple(rule, v, p.var2).eid;
        bool changed = false;
        Status s;
        if (p.op == rules::CmpOp::kEq) {
          s = fixes_.MergeEids(e1, e2, rule.id, &changed, prov);
        } else if (p.op == rules::CmpOp::kNe) {
          s = fixes_.AddEidDistinct(e1, e2, rule.id, &changed, prov);
        } else {
          return 0;
        }
        if (!s.ok()) {
          ConflictRecord record;
          record.kind = ConflictRecord::Kind::kEid;
          record.rule_id = rule.id;
          record.description = s.message();
          record.resolution = "user_queue";
          // The existing derivation: a merge is blocked by a distinctness
          // deduction; a distinctness claim by the merge chain that already
          // identified the pair.
          record.prov_existing = p.op == rules::CmpOp::kEq
                                     ? fixes_.ProvOfDistinct(e1, e2)
                                     : fixes_.ProvOfMerge(e1, e2);
          record.prov_candidate =
              fixes_.AddConflictCandidate(rule.id, s.message(), prov);
          conflicts_.push_back(std::move(record));
          return 0;
        }
        if (changed) {
          ++new_fixes;
          MarkEntityDirty(rel_of(p.var), tid_of(p.var), newly_dirty);
          MarkEntityDirty(rel_of(p.var2), tid_of(p.var2), newly_dirty);
        }
        return new_fixes;
      }
      if (p.op != rules::CmpOp::kEq) return 0;  // detection-only shape
      // Value propagation t.A = s.B: push the defined/validated side onto
      // the other.
      Value va = eval.GetCell(rule, v, p.var, p.attr);
      Value vb = eval.GetCell(rule, v, p.var2, p.attr2);
      bool validated_a =
          fixes_.IsValidated(rel_of(p.var), tid_of(p.var), p.attr);
      bool validated_b =
          fixes_.IsValidated(rel_of(p.var2), tid_of(p.var2), p.attr2);
      auto assign = [&](int var, int attr, const Value& value) {
        bool changed = false;
        Status s = fixes_.SetValue(rel_of(var), tid_of(var), attr, value,
                                   rule.id, &changed, prov);
        if (!s.ok()) {
          ConflictRecord record;
          record.kind = ConflictRecord::Kind::kValue;
          record.rule_id = rule.id;
          record.description = s.message();
          record.resolution = "user_queue";
          record.prov_existing =
              fixes_.ProvOfCell(rel_of(var), tid_of(var), attr);
          record.prov_candidate =
              fixes_.AddConflictCandidate(rule.id, s.message(), prov);
          conflicts_.push_back(std::move(record));
          return;
        }
        if (changed) {
          ++new_fixes;
          MarkEntityDirty(rel_of(var), tid_of(var), newly_dirty);
        }
      };
      if (validated_a && !validated_b && !va.is_null()) {
        assign(p.var2, p.attr2, va);
      } else if (validated_b && !validated_a && !vb.is_null()) {
        assign(p.var, p.attr, vb);
      } else if (!validated_a && !validated_b) {
        // Neither side validated: imputation into a null cell is justified
        // (the defined side is the only evidence); two agreeing defined
        // values deduce nothing new, and are NOT validated — raw data never
        // self-certifies (only Γ and deduced fixes validate cells).
        if (!va.is_null() && vb.is_null()) {
          assign(p.var2, p.attr2, va);
        } else if (!vb.is_null() && va.is_null()) {
          assign(p.var, p.attr, vb);
        } else if (!va.is_null() && !vb.is_null() && !(va == vb)) {
          // Two defined, unvalidated, conflicting values: a CR conflict —
          // surfaced to the user queue (paper §4.2 (1)). An attached user
          // resolver may settle it immediately.
          ConflictRecord record;
          record.kind = ConflictRecord::Kind::kValue;
          record.rule_id = rule.id;
          record.description = "CR conflict: " + va.ToString() + " vs " +
                               vb.ToString();
          record.resolution = "user_queue";
          // Both sides are raw reads of the same valuation; one candidate
          // node carries the shared witness (there is no validated
          // "existing" derivation to link).
          record.prov_candidate = fixes_.AddConflictCandidate(
              rule.id, record.description, prov);
          if (options_.user_resolver) {
            std::optional<Value> keep =
                options_.user_resolver(record, va, vb);
            if (keep.has_value()) {
              record.resolution = "user_resolved:" + keep->ToString();
              assign(p.var, p.attr, *keep);
              assign(p.var2, p.attr2, *keep);
            }
          }
          conflicts_.push_back(std::move(record));
        }
      } else if (validated_a && validated_b && !(va == vb)) {
        ConflictRecord record;
        record.kind = ConflictRecord::Kind::kValue;
        record.rule_id = rule.id;
        record.description = "validated values disagree: " + va.ToString() +
                             " vs " + vb.ToString();
        record.resolution = "user_queue";
        // Two competing VALIDATED derivations: link both fix nodes.
        record.prov_existing =
            fixes_.ProvOfCell(rel_of(p.var), tid_of(p.var), p.attr);
        record.prov_candidate =
            fixes_.ProvOfCell(rel_of(p.var2), tid_of(p.var2), p.attr2);
        conflicts_.push_back(std::move(record));
      }
      return new_fixes;
    }
    case PredicateKind::kConstant: {
      if (p.op != rules::CmpOp::kEq) return 0;
      int rel = rel_of(p.var);
      int64_t tid = tid_of(p.var);
      auto existing = fixes_.ValidatedValue(rel, tid, p.attr);
      if (existing.has_value() && !(*existing == p.constant)) {
        Value keep = ResolveMiConflict(rel, tid, p.attr, *existing,
                                       p.constant, rule.id, prov);
        if (!(keep == *existing)) {
          Status s =
              fixes_.ReplaceValue(rel, tid, p.attr, keep, rule.id, prov);
          if (s.ok()) {
            ++new_fixes;
            MarkEntityDirty(rel, tid, newly_dirty);
          }
        }
        return new_fixes;
      }
      bool changed = false;
      Status s = fixes_.SetValue(rel, tid, p.attr, p.constant, rule.id,
                                 &changed, prov);
      if (s.ok() && changed) {
        ++new_fixes;
        MarkEntityDirty(rel, tid, newly_dirty);
      }
      return new_fixes;
    }
    case PredicateKind::kTemporal: {
      int rel = rel_of(p.var);
      int64_t t1 = tid_of(p.var);
      int64_t t2 = tid_of(p.var2);
      bool changed = false;
      Status s = fixes_.AddTemporal(rel, p.attr, t1, t2, p.strict, rule.id,
                                    &changed, prov);
      if (!s.ok()) {
        // TD conflict: keep the direction with the higher M_rank confidence
        // (paper §4.2 (2)). The stored direction came first; replacing it
        // would invalidate downstream deductions, so the resolution keeps
        // whichever the ranker prefers and records the decision.
        const ml::TemporalRanker* ranker =
            models_ == nullptr ? nullptr
                               : models_->FindRanker(options_.mrank_model);
        std::string resolution = "kept_existing";
        if (ranker != nullptr) {
          const Relation& relation = db_->relation(rel);
          int r1 = relation.RowOfTid(t1);
          int r2 = relation.RowOfTid(t2);
          if (r1 >= 0 && r2 >= 0) {
            double conf = ranker->Confidence(
                relation.tuple(static_cast<size_t>(r1)),
                relation.tuple(static_cast<size_t>(r2)), p.attr, p.strict);
            resolution = conf > 0.5 ? "confidence_prefers_new(kept_existing)"
                                    : "confidence_confirms_existing";
          }
        }
        ConflictRecord record;
        record.kind = ConflictRecord::Kind::kTemporal;
        record.rule_id = rule.id;
        record.description = s.message();
        record.resolution = resolution;
        record.prov_existing = fixes_.ProvOfTemporal(rel, p.attr, t1, t2);
        record.prov_candidate =
            fixes_.AddConflictCandidate(rule.id, s.message(), prov);
        conflicts_.push_back(std::move(record));
        return 0;
      }
      if (changed) {
        ++new_fixes;
        MarkEntityDirty(rel, t1, newly_dirty);
        MarkEntityDirty(rel, t2, newly_dirty);
      }
      return new_fixes;
    }
    case PredicateKind::kValExtract: {
      if (graph_ == nullptr) return 0;
      kg::VertexId x = v.vertices[static_cast<size_t>(p.vertex_var)];
      Result<Value> extracted = graph_->ValueAtPath(x, p.path);
      if (!extracted.ok()) return 0;
      int rel = rel_of(p.var);
      int64_t tid = tid_of(p.var);
      auto existing = fixes_.ValidatedValue(rel, tid, p.attr);
      if (existing.has_value() && !(*existing == *extracted)) {
        Value keep = ResolveMiConflict(rel, tid, p.attr, *existing,
                                       *extracted, rule.id, prov);
        if (!(keep == *existing)) {
          Status s =
              fixes_.ReplaceValue(rel, tid, p.attr, keep, rule.id, prov);
          if (s.ok()) {
            ++new_fixes;
            MarkEntityDirty(rel, tid, newly_dirty);
          }
        }
        return new_fixes;
      }
      bool changed = false;
      Status s = fixes_.SetValue(rel, tid, p.attr, *extracted, rule.id,
                                 &changed, prov);
      if (s.ok() && changed) {
        ++new_fixes;
        MarkEntityDirty(rel, tid, newly_dirty);
      }
      return new_fixes;
    }
    case PredicateKind::kPredictValue: {
      if (models_ == nullptr) return 0;
      const ml::ValuePredictor* predictor = models_->FindPredictor(p.model);
      if (predictor == nullptr) return 0;
      std::vector<Value> values = eval.GetValues(rule, v, p.var);
      Result<Value> predicted =
          predictor->PredictValue(values, p.attrs_a, p.attr2);
      if (!predicted.ok()) return 0;
      int rel = rel_of(p.var);
      int64_t tid = tid_of(p.var);
      auto existing = fixes_.ValidatedValue(rel, tid, p.attr2);
      if (existing.has_value() && !(*existing == *predicted)) {
        Value keep = ResolveMiConflict(rel, tid, p.attr2, *existing,
                                       *predicted, rule.id, prov);
        if (!(keep == *existing)) {
          Status s =
              fixes_.ReplaceValue(rel, tid, p.attr2, keep, rule.id, prov);
          if (s.ok()) {
            ++new_fixes;
            MarkEntityDirty(rel, tid, newly_dirty);
          }
        }
        return new_fixes;
      }
      bool changed = false;
      Status s = fixes_.SetValue(rel, tid, p.attr2, *predicted, rule.id,
                                 &changed, prov);
      if (s.ok() && changed) {
        ++new_fixes;
        MarkEntityDirty(rel, tid, newly_dirty);
      }
      return new_fixes;
    }
    case PredicateKind::kMlPair:
    case PredicateKind::kCorrelation:
    case PredicateKind::kHer:
    case PredicateKind::kPathMatch:
    case PredicateKind::kIsNull:
      // Explanation-style consequences (e.g. φ3) deduce no fix.
      return 0;
  }
  return 0;
}

ChaseResult ChaseEngine::Loop(const std::vector<Ree>& rules,
                              std::vector<std::pair<int, int64_t>> dirty,
                              bool initial_full_scan) {
  ChaseResult result;
  rules::Evaluator eval(Context());
  const ChaseMetrics& metrics = ChaseMetrics::Get();
  size_t conflicts_before = conflicts_.size();

  auto process_valuation = [&](const Ree& rule, const Valuation& v,
                               std::vector<std::pair<int, int64_t>>* next) {
    if (options_.certain_fixes_only && !PremisesValidated(rule, v)) {
      return true;
    }
    ++result.applications;
    metrics.applications->Add(1);
    size_t new_fixes = ApplyConsequence(rule, v, eval, next);
    result.fixes_applied += new_fixes;
    if (new_fixes > 0) metrics.FixCounter(rule.Task())->Add(new_fixes);
    return true;
  };

  for (int round = 0; round < options_.max_rounds; ++round) {
    ROCK_OBS_SPAN("chase.round");
    metrics.rounds->Add(1);
    metrics.current_round->Set(round + 1);
    result.rounds = round + 1;
    std::vector<std::pair<int, int64_t>> next_dirty;
    size_t fixes_before = result.fixes_applied;

    if (round == 0 && initial_full_scan) {
      for (const Ree& rule : rules) {
        eval.ForEachSatisfying(rule, [&](const Valuation& v) {
          return process_valuation(rule, v, &next_dirty);
        });
      }
    } else {
      // Lazy activation: re-examine only valuations touching dirty tuples.
      std::sort(dirty.begin(), dirty.end());
      dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
      std::set<std::vector<int>> seen;  // dedup valuations per rule
      for (const Ree& rule : rules) {
        seen.clear();
        for (size_t var = 0; var < rule.tuple_vars.size(); ++var) {
          int rel = rule.tuple_vars[var];
          for (const auto& [drel, dtid] : dirty) {
            if (drel != rel) continue;
            int row = db_->relation(rel).RowOfTid(dtid);
            if (row < 0) continue;
            eval.ForEachSatisfying(
                rule,
                [&](const Valuation& v) {
                  if (!seen.insert(v.rows).second) return true;
                  return process_valuation(rule, v, &next_dirty);
                },
                static_cast<int>(var), row);
          }
        }
      }
    }

    if (result.fixes_applied == fixes_before) {
      result.converged = true;
      break;
    }
    dirty = std::move(next_dirty);
    if (dirty.empty()) {
      result.converged = true;
      break;
    }
  }
  metrics.current_round->Set(0);
  metrics.conflicts->Add(conflicts_.size() - conflicts_before);
  result.conflicts = conflicts_;
  // Publish provenance added since the previous export (watermark-based,
  // so repeated Run/RunIncremental calls on one engine never double-count).
  // Runs after every worker has joined, i.e. on the apply thread.
  common::RoleGuard apply(fixes_.apply_role());
  fixes_.mutable_provenance().ExportDeltaToMetrics();
  return result;
}

ChaseResult ChaseEngine::RunParallel(const std::vector<Ree>& rules,
                                     int num_workers, int block_rows,
                                     par::ScheduleReport* schedule,
                                     par::ExecutionMode mode) {
  ROCK_OBS_SPAN("chase.run_parallel");
  ChaseResult result;
  rules::Evaluator eval(Context());
  const ChaseMetrics& metrics = ChaseMetrics::Get();
  size_t conflicts_before = conflicts_.size();
  std::vector<std::pair<int, int64_t>> next_dirty;

  auto process_valuation = [&](const Ree& rule, const Valuation& v) {
    if (options_.certain_fixes_only && !PremisesValidated(rule, v)) return;
    ++result.applications;
    metrics.applications->Add(1);
    size_t new_fixes = ApplyConsequence(rule, v, eval, &next_dirty);
    result.fixes_applied += new_fixes;
    if (new_fixes > 0) metrics.FixCounter(rule.Task())->Add(new_fixes);
  };

  // Round 0 under the worker pool: one unit per rule × block combination,
  // evaluated block-locally (no vertex-variable rules — those run in the
  // serial tail).
  std::vector<par::WorkUnit> units;
  std::vector<const Ree*> unit_rules;
  for (const Ree& rule : rules) {
    if (rule.num_vertex_vars > 0) continue;
    std::vector<par::WorkUnit> rule_units = par::BuildHyperCubeUnits(
        *db_, static_cast<int>(unit_rules.size()), rule.tuple_vars,
        block_rows);
    for (par::WorkUnit& unit : rule_units) {
      unit.rule_index = static_cast<int>(&rule - rules.data());
      units.push_back(std::move(unit));
    }
    unit_rules.push_back(&rule);
  }

  // Evaluation phase: workers scan their blocks and record satisfying
  // valuations into per-unit buffers. The fix store is read-only here —
  // nothing is applied until every worker reaches the barrier — so
  // concurrent precondition evaluation needs no locks. One evaluator per
  // worker keeps the evaluator's lazy equality indexes thread-local.
  par::PoolOptions pool_options;
  pool_options.retry = options_.retry;
  pool_options.fault_plan = options_.fault_plan;
  par::WorkerPool pool(num_workers, mode, pool_options);
  std::vector<rules::Evaluator> evals;
  evals.reserve(static_cast<size_t>(pool.num_workers()));
  for (int w = 0; w < pool.num_workers(); ++w) {
    evals.emplace_back(Context());
  }
  std::vector<std::vector<Valuation>> unit_hits(units.size());
  // Round checkpoint: the recovery protocol's invariant. Evaluation writes
  // only the per-unit buffers, so a unit lost mid-round (worker crash,
  // exhausted retry budget) can be replayed in isolation — the checkpoint
  // verification at the barrier proves no fix leaked in early, hence
  // nothing is ever applied twice.
  FixStore::Checkpoint checkpoint = fixes_.TakeCheckpoint();
  metrics.checkpoints->Add(1);
  auto eval_unit = [&](const par::WorkUnit& unit, size_t unit_index,
                       int worker) {
    const Ree& rule = rules[static_cast<size_t>(unit.rule_index)];
    const rules::Evaluator& worker_eval =
        evals[static_cast<size_t>(worker)];
    std::vector<Valuation>& hits = unit_hits[unit_index];
    hits.clear();  // replayed units overwrite, never append
    Valuation v;
    v.rows.assign(rule.tuple_vars.size(), 0);
    std::function<void(size_t)> recurse = [&](size_t var) {
      if (var == rule.tuple_vars.size()) {
        if (worker_eval.SatisfiesPrecondition(rule, v)) {
          hits.push_back(v);
        }
        return;
      }
      for (int row = unit.ranges[var].begin; row < unit.ranges[var].end;
           ++row) {
        v.rows[var] = row;
        recurse(var + 1);
      }
    };
    recurse(0);
  };
  par::ScheduleReport local;
  {
    ROCK_OBS_SPAN("chase.parallel_eval");
    local = pool.Execute(units, eval_unit);
  }
  // Barrier: every surviving worker joined. Verify the checkpoint before
  // touching the store — evaluation (even with injected crashes and
  // retries) must not have advanced it.
  ROCK_CHECK(fixes_.TakeCheckpoint() == checkpoint)
      << "fix store advanced during the read-only evaluation phase";
  // Recovery: re-run abandoned units serially against the checkpoint.
  // Their buffers were never merged (the apply loop below runs in unit
  // order, after this), so replaying preserves the fault-free output and
  // provenance bit-for-bit.
  result.replayed_units = par::WorkerPool::ReplayUnrecovered(
      units, &local, eval_unit);
  if (result.replayed_units > 0) {
    metrics.checkpoint_restores->Add(result.replayed_units);
  }
  if (schedule != nullptr) *schedule = local;

  // Apply phase (after the barrier): consequences are deduced serially in
  // unit order. Preconditions are re-verified against the now-growing
  // overlay so a fix applied earlier in this loop can retract a later
  // candidate, exactly as in the serial chase.
  {
    ROCK_OBS_SPAN("chase.parallel_apply");
    for (size_t unit_index = 0; unit_index < units.size(); ++unit_index) {
      const Ree& rule =
          rules[static_cast<size_t>(units[unit_index].rule_index)];
      for (const Valuation& v : unit_hits[unit_index]) {
        if (!eval.SatisfiesPrecondition(rule, v)) continue;
        process_valuation(rule, v);
      }
    }
  }
  // Vertex-variable rules + propagation rounds run through the ordinary
  // incremental loop seeded by the tuples the first round touched.
  for (const Ree& rule : rules) {
    if (rule.num_vertex_vars == 0) continue;
    eval.ForEachSatisfying(rule, [&](const Valuation& v) {
      process_valuation(rule, v);
      return true;
    });
  }
  result.rounds = 1;
  // The tail Loop() accounts for its own conflicts; record round 0's here.
  metrics.conflicts->Add(conflicts_.size() - conflicts_before);
  ChaseResult tail = Loop(rules, std::move(next_dirty),
                          /*initial_full_scan=*/false);
  result.rounds += tail.rounds;
  result.fixes_applied += tail.fixes_applied;
  result.applications += tail.applications;
  result.converged = tail.converged;
  result.conflicts = conflicts_;
  return result;
}

Database ChaseEngine::MaterializeRepairs() const {
  Database repaired = *db_;
  for (size_t rel = 0; rel < repaired.num_relations(); ++rel) {
    Relation& relation = repaired.relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      Tuple& t = relation.mutable_tuple(row);
      t.eid = fixes_.eids().Find(t.eid);
      for (size_t attr = 0; attr < t.values.size(); ++attr) {
        auto fixed = fixes_.ValidatedValue(static_cast<int>(rel), t.tid,
                                           static_cast<int>(attr));
        if (fixed.has_value()) t.values[attr] = *fixed;
      }
    }
  }
  return repaired;
}

std::vector<CellFix> ChaseEngine::CellFixes() const {
  std::vector<CellFix> out;
  for (size_t rel = 0; rel < db_->num_relations(); ++rel) {
    const Relation& relation = db_->relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      const Tuple& t = relation.tuple(row);
      for (size_t attr = 0; attr < t.values.size(); ++attr) {
        auto fixed = fixes_.ValidatedValue(static_cast<int>(rel), t.tid,
                                           static_cast<int>(attr));
        if (fixed.has_value() && !(*fixed == t.values[attr])) {
          CellFix fix;
          fix.rel = static_cast<int>(rel);
          fix.tid = t.tid;
          fix.attr = static_cast<int>(attr);
          fix.old_value = t.values[attr];
          fix.new_value = *fixed;
          out.push_back(std::move(fix));
        }
      }
    }
  }
  return out;
}

std::vector<std::vector<std::pair<int, int64_t>>> ChaseEngine::EntityGroups()
    const {
  std::map<int64_t, std::vector<std::pair<int, int64_t>>> groups;
  for (size_t rel = 0; rel < db_->num_relations(); ++rel) {
    const Relation& relation = db_->relation(static_cast<int>(rel));
    for (size_t row = 0; row < relation.size(); ++row) {
      const Tuple& t = relation.tuple(row);
      groups[fixes_.eids().Find(t.eid)].emplace_back(static_cast<int>(rel),
                                                     t.tid);
    }
  }
  std::vector<std::vector<std::pair<int, int64_t>>> out;
  for (auto& [canon, members] : groups) {
    (void)canon;
    if (members.size() > 1) out.push_back(std::move(members));
  }
  return out;
}

}  // namespace rock::chase
